// Package datasets provides synthetic stand-ins for the six agricultural
// datasets of the paper's Table 2. Each dataset reproduces the published
// class count, sample count, image-size distribution (Fig. 4), storage
// format family and task-specific preprocessing requirements, with fully
// deterministic content so experiments are reproducible.
package datasets

import (
	"harvest/internal/stats"
)

// SizeDistribution samples (width, height) pairs for a dataset.
type SizeDistribution interface {
	// Sample draws one image size.
	Sample(r *stats.RNG) (w, h int)
	// Modal returns the most common size, the value Fig. 4 labels.
	Modal() (w, h int)
}

// FixedSize is a dataset whose images all share one size (e.g. Plant
// Village 256x256, Fruits-360 100x100, Corn Growth Stage 224x224,
// CRSA 3840x2160).
type FixedSize struct{ W, H int }

// Sample returns the fixed size.
func (f FixedSize) Sample(*stats.RNG) (int, int) { return f.W, f.H }

// Modal returns the fixed size.
func (f FixedSize) Modal() (int, int) { return f.W, f.H }

// SpreadSize models datasets with a dominant square mode plus a broad
// spread (Fig. 4a/4b): with probability ModeFrac the modal size is
// returned; otherwise width and height are drawn from a truncated
// normal around the mode with independent jitter, clamped to
// [Min, Max].
type SpreadSize struct {
	ModeW, ModeH int
	ModeFrac     float64 // fraction of samples exactly at the mode
	Sigma        float64 // pixel std-dev of the spread
	Min, Max     int
}

// Sample draws a size.
func (s SpreadSize) Sample(r *stats.RNG) (int, int) {
	if r.Float64() < s.ModeFrac {
		return s.ModeW, s.ModeH
	}
	tw := stats.TruncNormal{Mu: float64(s.ModeW), Sigma: s.Sigma,
		Lo: float64(s.Min), Hi: float64(s.Max)}
	th := stats.TruncNormal{Mu: float64(s.ModeH), Sigma: s.Sigma,
		Lo: float64(s.Min), Hi: float64(s.Max)}
	return int(tw.Sample(r) + 0.5), int(th.Sample(r) + 0.5)
}

// Modal returns the mode.
func (s SpreadSize) Modal() (int, int) { return s.ModeW, s.ModeH }

// SizeSample is one observed (width, height) pair.
type SizeSample struct{ W, H int }

// SampleSizes draws n sizes from a distribution, used to regenerate the
// Fig. 4 density plots.
func SampleSizes(d SizeDistribution, n int, seed uint64) []SizeSample {
	r := stats.NewRNG(seed)
	out := make([]SizeSample, n)
	for i := range out {
		w, h := d.Sample(r)
		out[i] = SizeSample{W: w, H: h}
	}
	return out
}

// SizeDensity builds the 2-D width x height density of Fig. 4 from
// samples, with the given bin count per axis over [0, maxDim).
func SizeDensity(samples []SizeSample, maxDim, bins int) *stats.Hist2D {
	h := stats.NewHist2D(0, float64(maxDim), bins, 0, float64(maxDim), bins)
	for _, s := range samples {
		h.Add(float64(s.W), float64(s.H))
	}
	return h
}
