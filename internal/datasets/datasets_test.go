package datasets

import (
	"testing"
	"testing/quick"

	"harvest/internal/imaging"
	"harvest/internal/stats"
)

func TestAllMatchesTable2(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("got %d datasets, want 6", len(specs))
	}
	want := []struct {
		name    string
		classes int
		samples int
		modalW  int
		modalH  int
	}{
		{"Plant Village", 39, 43430, 256, 256},
		{"Weed Detection in Soybean", 4, 10635, 233, 233},
		{"Sugar Cane-Spittle Bug", 2, 10100, 61, 61},
		{"Fruits-360", 81, 40998, 100, 100},
		{"Corn Growth Stage", 23, 52198, 224, 224},
		{"CRSA", 0, 992, 3840, 2160},
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.Classes != w.classes || s.Samples != w.samples {
			t.Errorf("row %d: got %s/%d/%d, want %s/%d/%d",
				i, s.Name, s.Classes, s.Samples, w.name, w.classes, w.samples)
		}
		mw, mh := s.ModalSize()
		if mw != w.modalW || mh != w.modalH {
			t.Errorf("%s modal %dx%d, want %dx%d", s.Name, mw, mh, w.modalW, w.modalH)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName(SlugCRSA); err != nil {
		t.Error(err)
	}
	if _, err := ByName("Plant Village"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("no-such-dataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEvalSetExcludesCRSA(t *testing.T) {
	es := EvalSet()
	if len(es) != 5 {
		t.Fatalf("eval set has %d datasets, want 5", len(es))
	}
	for _, s := range es {
		if s.Slug == SlugCRSA {
			t.Error("CRSA in eval set")
		}
	}
}

func TestRecordDeterminismAndRanges(t *testing.T) {
	spec, err := ByName(SlugWeedSoybean)
	if err != nil {
		t.Fatal(err)
	}
	ds := MustNew(spec, 7)
	for i := 0; i < 200; i++ {
		a, err := ds.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ds.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("record %d not deterministic: %+v vs %+v", i, a, b)
		}
		if a.W < 40 || a.W > 400 || a.H < 40 || a.H > 400 {
			t.Fatalf("record %d size %dx%d outside distribution bounds", i, a.W, a.H)
		}
		if a.Label < 0 || a.Label >= spec.Classes {
			t.Fatalf("record %d label %d outside [0,%d)", i, a.Label, spec.Classes)
		}
	}
}

func TestRecordOrderIndependence(t *testing.T) {
	spec, _ := ByName(SlugSpittleBug)
	a := MustNew(spec, 3)
	b := MustNew(spec, 3)
	// Access b in reverse order; records must match a's.
	for i := 99; i >= 0; i-- {
		rb, err := b.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := a.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("record %d depends on access order", i)
		}
	}
}

func TestRecordErrors(t *testing.T) {
	spec, _ := ByName(SlugFruits360)
	ds := MustNew(spec, 1)
	if _, err := ds.Record(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := ds.Record(ds.Len()); err == nil {
		t.Error("index == len accepted")
	}
}

func TestCRSAUnlabeled(t *testing.T) {
	spec, _ := ByName(SlugCRSA)
	ds := MustNew(spec, 1)
	rec, err := ds.Record(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label != -1 {
		t.Errorf("CRSA label %d, want -1", rec.Label)
	}
	if rec.W != 3840 || rec.H != 2160 {
		t.Errorf("CRSA frame %dx%d", rec.W, rec.H)
	}
	if spec.Task != TaskPerspective {
		t.Error("CRSA should require perspective preprocessing")
	}
}

func TestImageMatchesRecord(t *testing.T) {
	spec, _ := ByName(SlugSpittleBug)
	ds := MustNew(spec, 11)
	for i := 0; i < 5; i++ {
		rec, err := ds.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		im, err := ds.Image(i)
		if err != nil {
			t.Fatal(err)
		}
		if im.W != rec.W || im.H != rec.H {
			t.Errorf("image %d is %dx%d, record says %dx%d", i, im.W, im.H, rec.W, rec.H)
		}
	}
}

func TestEncodedRoundTrip(t *testing.T) {
	spec, _ := ByName(SlugFruits360)
	ds := MustNew(spec, 5)
	data, rec, err := ds.Encoded(3)
	if err != nil {
		t.Fatal(err)
	}
	im, err := imaging.DecodeBytes(data, spec.Format)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != rec.W || im.H != rec.H {
		t.Errorf("decoded %dx%d, record %dx%d", im.W, im.H, rec.W, rec.H)
	}
}

func TestBatchWrapsAround(t *testing.T) {
	spec := Spec{Name: "tiny", Slug: "tiny", Classes: 2, Samples: 3,
		Sizes: FixedSize{W: 8, H: 8}, Format: imaging.FormatPPM}
	ds := MustNew(spec, 1)
	batch, err := ds.Batch(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	if batch[0].Index != 2 || batch[1].Index != 0 || batch[3].Index != 2 {
		t.Errorf("wraparound indices wrong: %+v", batch)
	}
	if _, err := ds.Batch(0, 0); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestSpreadSizeModeDominates(t *testing.T) {
	d := SpreadSize{ModeW: 233, ModeH: 233, ModeFrac: 0.35, Sigma: 70, Min: 40, Max: 400}
	r := stats.NewRNG(5)
	exact := 0
	const n = 10000
	for i := 0; i < n; i++ {
		w, h := d.Sample(r)
		if w == 233 && h == 233 {
			exact++
		}
		if w < 40 || w > 400 || h < 40 || h > 400 {
			t.Fatalf("sample %dx%d outside bounds", w, h)
		}
	}
	frac := float64(exact) / n
	if frac < 0.30 || frac > 0.42 {
		t.Errorf("modal fraction %.3f, want ~0.35", frac)
	}
}

func TestSampleSizesDeterministic(t *testing.T) {
	d := SpreadSize{ModeW: 61, ModeH: 61, ModeFrac: 0.45, Sigma: 55, Min: 24, Max: 400}
	a := SampleSizes(d, 100, 9)
	b := SampleSizes(d, 100, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleSizes not deterministic")
		}
	}
}

func TestSizeDensityModeAnchor(t *testing.T) {
	// The Fig. 4a anchor: Weed Detection mode near 233x233.
	spec, _ := ByName(SlugWeedSoybean)
	samples := SampleSizes(spec.Sizes, 4000, 1)
	h := SizeDensity(samples, 401, 50)
	mx, my := h.Mode()
	if mx < 210 || mx > 260 || my < 210 || my > 260 {
		t.Errorf("weed-soybean 2D mode (%v,%v), want near 233", mx, my)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x", Slug: "x", Samples: 0, Sizes: FixedSize{W: 1, H: 1}},
		{Name: "x", Slug: "x", Samples: 1, Classes: -1, Sizes: FixedSize{W: 1, H: 1}},
		{Name: "x", Slug: "x", Samples: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Spec{}, 0); err == nil {
		t.Error("New accepted invalid spec")
	}
}

func TestMeanPixels(t *testing.T) {
	spec, _ := ByName(SlugPlantVillage)
	if got := spec.MeanPixels(100, 1); got != 256*256 {
		t.Errorf("fixed-size mean pixels %v, want %d", got, 256*256)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad spec did not panic")
		}
	}()
	MustNew(Spec{}, 0)
}

func TestRecordQuickProperties(t *testing.T) {
	spec, _ := ByName(SlugCornGrowth)
	ds := MustNew(spec, 17)
	f := func(raw uint16) bool {
		i := int(raw) % ds.Len()
		rec, err := ds.Record(i)
		if err != nil {
			return false
		}
		return rec.Index == i && rec.W == 224 && rec.H == 224 &&
			rec.Label >= 0 && rec.Label < spec.Classes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTaskPreprocString(t *testing.T) {
	if TaskNone.String() != "none" || TaskPerspective.String() != "perspective" || TaskTiling.String() != "tiling" {
		t.Error("TaskPreproc names wrong")
	}
	if TaskPreproc(9).String() == "" {
		t.Error("unknown TaskPreproc produced empty string")
	}
}
