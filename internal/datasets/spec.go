package datasets

import (
	"fmt"

	"harvest/internal/imaging"
)

// TaskPreproc identifies dataset-specific preprocessing the pipeline
// must run before model-specific preprocessing (paper §3.2).
type TaskPreproc int

// Task-specific preprocessing kinds.
const (
	// TaskNone: the dataset needs only model preprocessing.
	TaskNone TaskPreproc = iota
	// TaskPerspective: raw camera frames need a perspective transform
	// (CRSA ground-vehicle feed).
	TaskPerspective
	// TaskTiling: stitched orthomosaics are tiled before inference
	// (UAS workflows; handled by internal/stitch in the offline path).
	TaskTiling
)

// String names the preprocessing kind.
func (t TaskPreproc) String() string {
	switch t {
	case TaskNone:
		return "none"
	case TaskPerspective:
		return "perspective"
	case TaskTiling:
		return "tiling"
	}
	return fmt.Sprintf("TaskPreproc(%d)", int(t))
}

// Spec describes one dataset exactly as Table 2 of the paper does.
type Spec struct {
	Name    string
	Slug    string // short identifier for CLI flags and file names
	Classes int    // 0 for CRSA, which has no classification labels
	Samples int
	Sizes   SizeDistribution
	Format  imaging.Format
	Texture imaging.SyntheticKind
	UseCase string
	Task    TaskPreproc
}

// Validate sanity-checks a spec.
func (s Spec) Validate() error {
	if s.Name == "" || s.Slug == "" {
		return fmt.Errorf("datasets: spec missing name/slug")
	}
	if s.Samples <= 0 {
		return fmt.Errorf("datasets: %s has non-positive sample count", s.Name)
	}
	if s.Classes < 0 {
		return fmt.Errorf("datasets: %s has negative class count", s.Name)
	}
	if s.Sizes == nil {
		return fmt.Errorf("datasets: %s has no size distribution", s.Name)
	}
	w, h := s.Sizes.Modal()
	if w <= 0 || h <= 0 {
		return fmt.Errorf("datasets: %s modal size %dx%d invalid", s.Name, w, h)
	}
	return nil
}

// ModalSize returns the Fig. 4 modal label of the dataset.
func (s Spec) ModalSize() (int, int) { return s.Sizes.Modal() }

// MeanPixels estimates the mean pixel count per image by sampling; used
// by cost models.
func (s Spec) MeanPixels(n int, seed uint64) float64 {
	samples := SampleSizes(s.Sizes, n, seed)
	total := 0.0
	for _, sz := range samples {
		total += float64(sz.W * sz.H)
	}
	return total / float64(len(samples))
}
