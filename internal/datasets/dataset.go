package datasets

import (
	"fmt"

	"harvest/internal/imaging"
	"harvest/internal/stats"
)

// Record describes one sample's metadata without materializing pixels.
type Record struct {
	Index int
	W, H  int
	Label int // class id; -1 when the dataset is unlabeled (CRSA)
}

// Dataset is a deterministic synthetic dataset: record i always has the
// same size, label and pixel content for a given seed, regardless of
// access order.
type Dataset struct {
	spec Spec
	seed uint64
}

// New creates a dataset from a spec. The seed namespaces all content.
func New(spec Spec, seed uint64) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Dataset{spec: spec, seed: seed}, nil
}

// MustNew is New but panics on error; for use with the built-in specs.
func MustNew(spec Spec, seed uint64) *Dataset {
	d, err := New(spec, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the dataset's specification.
func (d *Dataset) Spec() Spec { return d.spec }

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.spec.Samples }

// recordRNG returns the per-record RNG; record identity is a pure
// function of (seed, index).
func (d *Dataset) recordRNG(i int) *stats.RNG {
	return stats.NewRNG(d.seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
}

// Record returns sample i's metadata.
func (d *Dataset) Record(i int) (Record, error) {
	if i < 0 || i >= d.spec.Samples {
		return Record{}, fmt.Errorf("datasets: index %d out of range [0,%d)", i, d.spec.Samples)
	}
	r := d.recordRNG(i)
	w, h := d.spec.Sizes.Sample(r)
	label := -1
	if d.spec.Classes > 0 {
		label = r.Intn(d.spec.Classes)
	}
	return Record{Index: i, W: w, H: h, Label: label}, nil
}

// Image materializes sample i's pixels.
func (d *Dataset) Image(i int) (*imaging.Image, error) {
	rec, err := d.Record(i)
	if err != nil {
		return nil, err
	}
	// Fresh stream for content so size/label draws stay stable even if
	// texture generation changes its consumption pattern.
	content := stats.NewRNG(d.seed ^ 0xA5A5A5A5 ^ (uint64(i)+1)*0xD1B54A32D192ED03)
	return imaging.Synthesize(rec.W, rec.H, d.spec.Texture, content), nil
}

// Encoded materializes sample i in the dataset's on-disk format, i.e.
// the bytes the inference frontend would read or receive.
func (d *Dataset) Encoded(i int) ([]byte, Record, error) {
	rec, err := d.Record(i)
	if err != nil {
		return nil, Record{}, err
	}
	im, err := d.Image(i)
	if err != nil {
		return nil, Record{}, err
	}
	data, err := imaging.EncodeBytes(im, d.spec.Format)
	if err != nil {
		return nil, Record{}, err
	}
	return data, rec, nil
}

// Batch returns records [start, start+n), wrapping around the dataset
// end so arbitrarily long streams can be drawn.
func (d *Dataset) Batch(start, n int) ([]Record, error) {
	if n <= 0 {
		return nil, fmt.Errorf("datasets: non-positive batch size %d", n)
	}
	out := make([]Record, n)
	for k := 0; k < n; k++ {
		rec, err := d.Record((start + k) % d.spec.Samples)
		if err != nil {
			return nil, err
		}
		out[k] = rec
	}
	return out, nil
}

// Sizes returns up to n sampled sizes for density plots, using the
// dataset's own deterministic per-record sizes.
func (d *Dataset) Sizes(n int) []SizeSample {
	if n > d.spec.Samples {
		n = d.spec.Samples
	}
	out := make([]SizeSample, n)
	for i := range out {
		rec, _ := d.Record(i)
		out[i] = SizeSample{W: rec.W, H: rec.H}
	}
	return out
}
