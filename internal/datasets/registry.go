package datasets

import (
	"fmt"

	"harvest/internal/imaging"
)

// Dataset slugs, usable with ByName and the CLI tools.
const (
	SlugPlantVillage = "plant-village"
	SlugWeedSoybean  = "weed-soybean"
	SlugSpittleBug   = "spittle-bug"
	SlugFruits360    = "fruits-360"
	SlugCornGrowth   = "corn-growth"
	SlugCRSA         = "crsa"
)

// All returns the six dataset specs of Table 2, in the paper's order.
func All() []Spec {
	return []Spec{
		{
			Name:    "Plant Village",
			Slug:    SlugPlantVillage,
			Classes: 39,
			Samples: 43430,
			Sizes:   FixedSize{W: 256, H: 256},
			Format:  imaging.FormatJPEG,
			Texture: imaging.KindLeaf,
			UseCase: "Plant disease classification",
			Task:    TaskNone,
		},
		{
			Name:    "Weed Detection in Soybean",
			Slug:    SlugWeedSoybean,
			Classes: 4,
			Samples: 10635,
			// Fig. 4a: broad spread with mode 233x233 (TIFF crops of
			// varying size). PPM stands in for TIFF's raw decode path.
			Sizes:   SpreadSize{ModeW: 233, ModeH: 233, ModeFrac: 0.35, Sigma: 70, Min: 40, Max: 400},
			Format:  imaging.FormatPPM,
			Texture: imaging.KindRows,
			UseCase: "Weed detection in soybeans",
			Task:    TaskNone,
		},
		{
			Name:    "Sugar Cane-Spittle Bug",
			Slug:    SlugSpittleBug,
			Classes: 2,
			Samples: 10100,
			// Fig. 4b: small crops, mode 61x61, spread up to ~400.
			Sizes:   SpreadSize{ModeW: 61, ModeH: 61, ModeFrac: 0.45, Sigma: 55, Min: 24, Max: 400},
			Format:  imaging.FormatJPEG,
			Texture: imaging.KindLeaf,
			UseCase: "Pest bugs detection",
			Task:    TaskNone,
		},
		{
			Name:    "Fruits-360",
			Slug:    SlugFruits360,
			Classes: 81,
			Samples: 40998,
			Sizes:   FixedSize{W: 100, H: 100},
			Format:  imaging.FormatJPEG,
			Texture: imaging.KindFruit,
			UseCase: "Fruits classification",
			Task:    TaskNone,
		},
		{
			Name:    "Corn Growth Stage",
			Slug:    SlugCornGrowth,
			Classes: 23,
			Samples: 52198,
			Sizes:   FixedSize{W: 224, H: 224},
			Format:  imaging.FormatJPEG,
			Texture: imaging.KindRows,
			UseCase: "Corn Growth Stage Classification, UAS Based",
			Task:    TaskTiling,
		},
		{
			Name:    "CRSA",
			Slug:    SlugCRSA,
			Classes: 0,
			Samples: 992,
			Sizes:   FixedSize{W: 3840, H: 2160},
			Format:  imaging.FormatPPM,
			Texture: imaging.KindSoil,
			UseCase: "Crop Residue Soil Aggregate, Ground Vehicle based",
			Task:    TaskPerspective,
		},
	}
}

// ByName returns the spec whose Slug or Name matches name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Slug == name || s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// EvalSet returns the five classification datasets used in the Fig. 8
// end-to-end evaluation (CRSA is excluded there, as in the paper).
func EvalSet() []Spec {
	out := make([]Spec, 0, 5)
	for _, s := range All() {
		if s.Slug != SlugCRSA {
			out = append(out, s)
		}
	}
	return out
}
