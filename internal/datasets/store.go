package datasets

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"harvest/internal/imaging"
)

// ManifestName is the index file a materialized dataset directory
// carries.
const ManifestName = "manifest.json"

// ManifestEntry describes one materialized sample.
type ManifestEntry struct {
	File  string `json:"file"`
	Index int    `json:"index"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Label int    `json:"label"`
}

// Manifest indexes a materialized dataset directory, making synthetic
// data behave like the on-disk datasets the HARVEST frontend reads
// (paper §3: the frontend "transmits or locally reads input data").
type Manifest struct {
	Dataset string          `json:"dataset"`
	Format  string          `json:"format"`
	Seed    uint64          `json:"seed"`
	Entries []ManifestEntry `json:"entries"`
}

// Materialize writes the first count samples of the dataset into dir in
// the dataset's native format plus a manifest, returning the manifest.
func Materialize(ds *Dataset, dir string, count int) (*Manifest, error) {
	if count <= 0 {
		return nil, fmt.Errorf("datasets: non-positive count %d", count)
	}
	if count > ds.Len() {
		count = ds.Len()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	spec := ds.Spec()
	ext := "jpg"
	if spec.Format == imaging.FormatPPM {
		ext = "ppm"
	}
	m := &Manifest{Dataset: spec.Slug, Format: spec.Format.String(), Seed: ds.seed}
	for i := 0; i < count; i++ {
		data, rec, err := ds.Encoded(i)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%06d.%s", i, ext)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return nil, fmt.Errorf("datasets: %w", err)
		}
		m.Entries = append(m.Entries, ManifestEntry{
			File: name, Index: rec.Index, W: rec.W, H: rec.H, Label: rec.Label,
		})
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), blob, 0o644); err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	return m, nil
}

// Store reads a materialized dataset directory.
type Store struct {
	Dir      string
	Manifest Manifest
	spec     Spec
}

// OpenStore opens a directory written by Materialize.
func OpenStore(dir string) (*Store, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("datasets: open store: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("datasets: manifest: %w", err)
	}
	spec, err := ByName(m.Dataset)
	if err != nil {
		return nil, err
	}
	if got := spec.Format.String(); got != m.Format {
		return nil, fmt.Errorf("datasets: manifest format %q, spec says %q", m.Format, got)
	}
	for i, e := range m.Entries {
		if e.File == "" || e.W <= 0 || e.H <= 0 {
			return nil, fmt.Errorf("datasets: manifest entry %d invalid: %+v", i, e)
		}
	}
	return &Store{Dir: dir, Manifest: m, spec: spec}, nil
}

// Spec returns the stored dataset's specification.
func (s *Store) Spec() Spec { return s.spec }

// Len returns the number of materialized samples.
func (s *Store) Len() int { return len(s.Manifest.Entries) }

// Encoded reads sample i's bytes from disk.
func (s *Store) Encoded(i int) ([]byte, Record, error) {
	if i < 0 || i >= s.Len() {
		return nil, Record{}, fmt.Errorf("datasets: store index %d out of range [0,%d)", i, s.Len())
	}
	e := s.Manifest.Entries[i]
	data, err := os.ReadFile(filepath.Join(s.Dir, e.File))
	if err != nil {
		return nil, Record{}, fmt.Errorf("datasets: %w", err)
	}
	return data, Record{Index: e.Index, W: e.W, H: e.H, Label: e.Label}, nil
}

// Image reads and decodes sample i.
func (s *Store) Image(i int) (*imaging.Image, error) {
	data, rec, err := s.Encoded(i)
	if err != nil {
		return nil, err
	}
	im, err := imaging.DecodeBytes(data, s.spec.Format)
	if err != nil {
		return nil, err
	}
	if im.W != rec.W || im.H != rec.H {
		return nil, fmt.Errorf("datasets: stored sample %d is %dx%d, manifest says %dx%d",
			i, im.W, im.H, rec.W, rec.H)
	}
	return im, nil
}
