package datasets

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMaterializeAndOpenStore(t *testing.T) {
	spec, err := ByName(SlugFruits360)
	if err != nil {
		t.Fatal(err)
	}
	ds := MustNew(spec, 77)
	dir := t.TempDir()
	m, err := Materialize(ds, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 5 {
		t.Fatalf("manifest entries %d", len(m.Entries))
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 5 || st.Spec().Slug != SlugFruits360 {
		t.Fatalf("store %+v", st.Manifest)
	}
	// Stored bytes identical to freshly generated ones.
	for i := 0; i < st.Len(); i++ {
		stored, rec, err := st.Encoded(i)
		if err != nil {
			t.Fatal(err)
		}
		fresh, frec, err := ds.Encoded(i)
		if err != nil {
			t.Fatal(err)
		}
		if rec != frec {
			t.Fatalf("sample %d record mismatch: %+v vs %+v", i, rec, frec)
		}
		if !bytes.Equal(stored, fresh) {
			t.Fatalf("sample %d bytes differ from generator", i)
		}
	}
	// Decoded image matches the manifest dimensions.
	im, err := st.Image(2)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 100 || im.H != 100 {
		t.Errorf("stored image %dx%d", im.W, im.H)
	}
}

func TestMaterializeClampsCount(t *testing.T) {
	spec := Spec{Name: "t", Slug: SlugFruits360, Classes: 2, Samples: 3,
		Sizes: FixedSize{W: 8, H: 8}, Format: ByNameMust(SlugFruits360).Format}
	ds := MustNew(spec, 1)
	m, err := Materialize(ds, t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 3 {
		t.Errorf("entries %d, want clamped 3", len(m.Entries))
	}
	if _, err := Materialize(ds, t.TempDir(), 0); err == nil {
		t.Error("zero count accepted")
	}
}

// ByNameMust is a test helper.
func ByNameMust(name string) Spec {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

func TestOpenStoreErrors(t *testing.T) {
	if _, err := OpenStore(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	// Unknown dataset slug.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, ManifestName),
		[]byte(`{"dataset":"ghost","format":"jpeg"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir2); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Format mismatch.
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, ManifestName),
		[]byte(`{"dataset":"fruits-360","format":"ppm"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir3); err == nil {
		t.Error("format mismatch accepted")
	}
	// Invalid entry.
	dir4 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir4, ManifestName),
		[]byte(`{"dataset":"fruits-360","format":"jpeg","entries":[{"file":"","w":0,"h":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir4); err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestStoreIndexErrors(t *testing.T) {
	spec, _ := ByName(SlugFruits360)
	ds := MustNew(spec, 1)
	dir := t.TempDir()
	if _, err := Materialize(ds, dir, 2); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Encoded(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, _, err := st.Encoded(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Missing file on disk.
	if err := os.Remove(filepath.Join(dir, st.Manifest.Entries[0].File)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Encoded(0); err == nil {
		t.Error("missing file accepted")
	}
}
