// Package experiments contains one runner per evaluation artifact of
// the paper — Tables 1-3 and Figures 4-8 — each regenerating the same
// rows/series the paper reports from this repository's substrates, plus
// paper-anchor comparisons used by tests and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"harvest/internal/metrics"
)

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID    string // "table1" ... "fig8"
	Title string

	Tables  []*metrics.Table
	Figures []*metrics.Figure
	Notes   []string
}

// AddNote appends a free-form note line.
func (a *Artifact) AddNote(format string, args ...any) {
	a.Notes = append(a.Notes, fmt.Sprintf(format, args...))
}

// Render produces the printable artifact.
func (a *Artifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n\n", a.ID, a.Title)
	for _, t := range a.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range a.Figures {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderCharts renders the artifact's figures as ASCII charts (the
// visual counterpart of the paper's log-scaled plots).
func (a *Artifact) RenderCharts(logX, logY bool) string {
	var b strings.Builder
	for _, f := range a.Figures {
		b.WriteString(f.Chart(metrics.ChartOptions{LogX: logX, LogY: logY}))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCSV renders the artifact's tables as CSV blocks.
func (a *Artifact) RenderCSV() string {
	var b strings.Builder
	for _, t := range a.Tables {
		if t.Title != "" {
			fmt.Fprintf(&b, "# %s\n", t.Title)
		}
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// IDs lists all artifact identifiers in paper order.
func IDs() []string {
	return []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8"}
}

// Options tunes experiment runtime cost.
type Options struct {
	// Quick reduces sample counts for CPU-measured experiments (used
	// by tests); the full counts are used otherwise.
	Quick bool
	// HostGEMM additionally runs a real GEMM benchmark on this machine
	// for the Table 1 methodology note.
	HostGEMM bool
	// Seed namespaces all synthetic data.
	Seed uint64
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 42} }

// Run executes the artifact with the given id.
func Run(id string, opts Options) (*Artifact, error) {
	switch id {
	case "table1":
		return Table1(opts)
	case "table2":
		return Table2(opts)
	case "table3":
		return Table3(opts)
	case "fig4":
		return Fig4(opts)
	case "fig5":
		return Fig5(opts)
	case "fig6":
		return Fig6(opts)
	case "fig7":
		return Fig7(opts)
	case "fig8":
		return Fig8(opts)
	}
	return nil, fmt.Errorf("experiments: unknown artifact %q (want one of %v)", id, IDs())
}
