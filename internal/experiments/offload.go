package experiments

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/transfer"
)

// Offload answers the §2.2.1 transmission question: for each wireless
// link and JPEG quality, is it faster to infer on the Jetson in the
// field or to upload to the A100 cloud pipeline? Image payload sizes
// are real (the images are actually JPEG-encoded at each quality).
func Offload(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "offload", Title: "Edge vs Cloud Offload Under Field Connectivity (extension)"}

	// Representative image: a Plant Village sample, really encoded.
	spec, err := datasets.ByName(datasets.SlugPlantVillage)
	if err != nil {
		return nil, err
	}
	ds, err := datasets.New(spec, opts.Seed)
	if err != nil {
		return nil, err
	}
	im, err := ds.Image(0)
	if err != nil {
		return nil, err
	}

	jetson := hw.Jetson()
	a100 := hw.A100()
	px := im.W * im.H
	qualities := []int{95, 85, 60, 30}
	if opts.Quick {
		qualities = []int{85, 30}
	}

	// Latency view: single-frame decision per model (real-time style,
	// batch 1 on both sides).
	lat := metrics.NewTable(
		fmt.Sprintf("Single %dx%d frame latency: on-device Jetson vs upload+A100", im.W, im.H),
		"Model", "Link", "JPEG q", "Payload(KiB)", "Upload(ms)", "Cloud e2e(ms)", "Edge(ms)", "Winner")
	for _, name := range []string{models.NameResNet50, models.NameViTBase} {
		edgeSec, err := perImagePipelineSeconds(jetson, name, px, 1)
		if err != nil {
			return nil, err
		}
		cloudSec, err := perImagePipelineSeconds(a100, name, px, 1)
		if err != nil {
			return nil, err
		}
		for _, link := range transfer.Links() {
			for _, q := range qualities {
				size, err := transfer.CompressedSize(im, q)
				if err != nil {
					return nil, err
				}
				d := transfer.DecideOffload(link, size, edgeSec, cloudSec)
				winner := "cloud"
				if d.EdgeWins {
					winner = "edge"
				}
				lat.AddRow(name, link.Name, q, float64(size)/1024, d.UploadLatency*1000,
					d.CloudLatency*1000, d.EdgeLatency*1000, winner)
			}
		}
	}
	a.Tables = append(a.Tables, lat)

	// Throughput view: offline campaigns are link-bound to the cloud.
	thr := metrics.NewTable("Sustained campaign throughput (img/s): edge device vs link-capped cloud",
		"Model", "Edge img/s", "Cloud img/s", "via WiFi", "via 5G", "via LTE", "via Satellite")
	size85, err := transfer.CompressedSize(im, 85)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{models.NameResNet50, models.NameViTBase} {
		edgeThr, err := pipelineThroughput(jetson, name, px)
		if err != nil {
			return nil, err
		}
		cloudThr, err := pipelineThroughput(a100, name, px)
		if err != nil {
			return nil, err
		}
		row := []any{name, edgeThr, cloudThr}
		for _, link := range transfer.Links() {
			capped := link.ThroughputImagesPerSec(size85)
			if cloudThr < capped {
				capped = cloudThr
			}
			row = append(row, capped)
		}
		thr.AddRow(row...)
	}
	a.Tables = append(a.Tables, thr)
	a.AddNote("payload sizes are real JPEG encodings of the synthetic sample at each quality")
	a.AddNote("the crossover moves with model size, link quality and compression — the paper's motivation for supporting both edge and cloud deployment from one training run")
	return a, nil
}

// perImagePipelineSeconds returns preprocessing + inference seconds per
// image at the given batch on the platform.
func perImagePipelineSeconds(p *hw.Platform, model string, inPixels, batch int) (float64, error) {
	eng, err := engine.New(p, model)
	if err != nil {
		return 0, err
	}
	eng.Pipeline = true
	st, err := eng.Infer(batch)
	if err != nil {
		return 0, err
	}
	outRes := eng.Entry.Spec.InputSize
	pre := hw.GPUPreprocImageSeconds(p, inPixels, outRes*outRes) * float64(batch)
	return (pre + st.Seconds) / float64(batch), nil
}

// pipelineThroughput returns the overlapped pipeline throughput at the
// platform's largest end-to-end batch.
func pipelineThroughput(p *hw.Platform, model string, inPixels int) (float64, error) {
	eng, err := engine.New(p, model)
	if err != nil {
		return 0, err
	}
	eng.Pipeline = true
	batch := eng.MaxBatch(hw.EndToEndMaxBatch)
	if batch == 0 {
		return 0, fmt.Errorf("experiments: %s does not fit on %s", model, p.Name)
	}
	st, err := eng.Infer(batch)
	if err != nil {
		return 0, err
	}
	outRes := eng.Entry.Spec.InputSize
	inPx := make([]int, batch)
	for i := range inPx {
		inPx[i] = inPixels
	}
	preSec := hw.GPUPreprocBatchSeconds(p, inPx, outRes*outRes)
	// Overlapped: the slower stage bounds throughput.
	bottleneck := st.Seconds
	if preSec > bottleneck {
		bottleneck = preSec
	}
	return float64(batch) / bottleneck, nil
}
