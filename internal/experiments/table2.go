package experiments

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/metrics"
)

// Table2 regenerates the paper's Table 2: the six agriculture datasets
// with their class counts, sample counts, image sizes and use cases,
// verified against instantiated synthetic datasets.
func Table2(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "table2", Title: "Agriculture Datasets Used in The Evaluation"}
	t := metrics.NewTable("", "Dataset", "Classes", "Samples", "Image Size", "Format", "Task Preproc", "Use Case")
	for _, spec := range datasets.All() {
		ds, err := datasets.New(spec, opts.Seed)
		if err != nil {
			return nil, err
		}
		mw, mh := spec.ModalSize()
		sizeLabel := fmt.Sprintf("%dx%d", mw, mh)
		if _, fixed := spec.Sizes.(datasets.FixedSize); !fixed {
			sizeLabel += " (modal, spread)"
		}
		classes := fmt.Sprintf("%d", spec.Classes)
		if spec.Classes == 0 {
			classes = "-"
		}
		t.AddRow(spec.Name, classes, ds.Len(), sizeLabel,
			spec.Format.String(), spec.Task.String(), spec.UseCase)
	}
	a.Tables = append(a.Tables, t)
	a.AddNote("sizes for spread datasets follow Fig. 4's distributions; see fig4 for densities")
	return a, nil
}
