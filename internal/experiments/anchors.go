package experiments

import (
	"fmt"
	"math"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

// Anchor is one published number from the paper with the value this
// repository reproduces.
type Anchor struct {
	Source   string // e.g. "Fig5/A100"
	Quantity string
	Paper    float64
	Measured float64
}

// RelErr returns |measured-paper|/paper.
func (an Anchor) RelErr() float64 {
	if an.Paper == 0 {
		return math.Abs(an.Measured)
	}
	return math.Abs(an.Measured-an.Paper) / math.Abs(an.Paper)
}

// String renders the anchor comparison.
func (an Anchor) String() string {
	return fmt.Sprintf("%-12s %-42s paper=%12.2f ours=%12.2f err=%5.1f%%",
		an.Source, an.Quantity, an.Paper, an.Measured, an.RelErr()*100)
}

// fig5Anchors are the legend labels of Fig. 5 (throughput at the best
// published batch size per platform/model).
var fig5Anchors = []struct {
	Platform, Model string
	Batch           int
	ImgPerSec       float64
}{
	{hw.KeyA100, models.NameViTTiny, 1024, 22879.3},
	{hw.KeyA100, models.NameViTSmall, 1024, 9344.2},
	{hw.KeyA100, models.NameViTBase, 1024, 4095.9},
	{hw.KeyA100, models.NameResNet50, 1024, 16230.7},
	{hw.KeyV100, models.NameViTTiny, 1024, 7179.0},
	{hw.KeyV100, models.NameViTSmall, 1024, 2929.3},
	{hw.KeyV100, models.NameViTBase, 1024, 1482.6},
	{hw.KeyV100, models.NameResNet50, 1024, 8107.3},
	{hw.KeyJetson, models.NameViTTiny, 196, 1170.1},
	{hw.KeyJetson, models.NameViTSmall, 64, 469.4},
	{hw.KeyJetson, models.NameViTBase, 8, 201.0},
	{hw.KeyJetson, models.NameResNet50, 64, 842.9},
}

// table3UpperBounds are Table 3's published throughput upper bounds
// (images/second).
var table3UpperBounds = []struct {
	Platform, Model string
	ImgPerSec       float64
}{
	{hw.KeyA100, models.NameViTTiny, 172508},
	{hw.KeyA100, models.NameViTSmall, 43214},
	{hw.KeyA100, models.NameViTBase, 14013},
	{hw.KeyA100, models.NameResNet50, 57775},
	{hw.KeyV100, models.NameViTTiny, 67602},
	{hw.KeyV100, models.NameViTSmall, 16935},
	{hw.KeyV100, models.NameViTBase, 5491},
	{hw.KeyV100, models.NameResNet50, 22641},
	{hw.KeyJetson, models.NameViTTiny, 8322},
	{hw.KeyJetson, models.NameViTSmall, 2085},
	{hw.KeyJetson, models.NameViTBase, 676},
	{hw.KeyJetson, models.NameResNet50, 2787},
}

// e2eMaxBatches are the Fig. 8 per-platform largest-batch-before-OOM
// labels.
var e2eMaxBatches = []struct {
	Platform, Model string
	Batch           int
}{
	{hw.KeyA100, models.NameViTTiny, 64},
	{hw.KeyA100, models.NameViTSmall, 64},
	{hw.KeyA100, models.NameViTBase, 64},
	{hw.KeyA100, models.NameResNet50, 64},
	{hw.KeyV100, models.NameViTTiny, 64},
	{hw.KeyV100, models.NameViTSmall, 32},
	{hw.KeyV100, models.NameViTBase, 2},
	{hw.KeyV100, models.NameResNet50, 32},
	{hw.KeyJetson, models.NameViTTiny, 64},
	{hw.KeyJetson, models.NameViTSmall, 32},
	{hw.KeyJetson, models.NameViTBase, 2},
	{hw.KeyJetson, models.NameResNet50, 32},
}

// CompareAnchors recomputes every published anchor with this
// repository's models and returns the comparisons. Tests assert the
// relative errors; EXPERIMENTS.md records them.
func CompareAnchors() ([]Anchor, error) {
	var out []Anchor

	// Table 1: practical TFLOPS.
	paperPractical := map[string]float64{hw.KeyV100: 92.6, hw.KeyA100: 236.3, hw.KeyJetson: 11.4}
	for _, p := range hw.All() {
		out = append(out, Anchor{
			Source:   "Table1",
			Quantity: p.Name + " practical TFLOPS",
			Paper:    paperPractical[p.Name],
			Measured: hw.PracticalTFLOPSMeasured(p),
		})
	}

	// Table 3: GFLOPs/image and parameters.
	for _, e := range models.MustTable3() {
		out = append(out,
			Anchor{Source: "Table3", Quantity: e.Spec.Name + " GFLOPs/image",
				Paper: e.PaperGFLOPs, Measured: e.Spec.GFLOPsPerImage()},
			Anchor{Source: "Table3", Quantity: e.Spec.Name + " params (M)",
				Paper: e.PaperParamsM, Measured: float64(e.Spec.Params()) / 1e6})
	}

	// Table 3: throughput upper bounds.
	for _, ub := range table3UpperBounds {
		p, err := hw.ByName(ub.Platform)
		if err != nil {
			return nil, err
		}
		e, err := models.ByName(ub.Model)
		if err != nil {
			return nil, err
		}
		out = append(out, Anchor{
			Source:   "Table3",
			Quantity: fmt.Sprintf("%s %s UB (img/s)", ub.Platform, ub.Model),
			Paper:    ub.ImgPerSec,
			Measured: p.PracticalTFLOPS * 1e12 / float64(e.Spec.ParamMACs()),
		})
	}

	// §4.0.2: compute breakdowns.
	vt, err := models.ByName(models.NameViTTiny)
	if err != nil {
		return nil, err
	}
	mlp, attn := vt.Spec.MLPAttentionShares()
	out = append(out,
		Anchor{Source: "Sec4.0.2", Quantity: "ViT_Tiny MLP share (%)", Paper: 81.73, Measured: mlp * 100},
		Anchor{Source: "Sec4.0.2", Quantity: "ViT_Tiny attention share (%)", Paper: 18.23, Measured: attn * 100})
	rn, err := models.ByName(models.NameResNet50)
	if err != nil {
		return nil, err
	}
	out = append(out, Anchor{Source: "Sec4.0.2", Quantity: "ResNet50 conv share (%)",
		Paper: 99.5, Measured: rn.Spec.BreakdownByKind()[models.KindConv] * 100})

	// Fig. 5 legend anchors.
	for _, an := range fig5Anchors {
		p, err := hw.ByName(an.Platform)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(p, an.Model)
		if err != nil {
			return nil, err
		}
		st, err := eng.Infer(an.Batch)
		if err != nil {
			return nil, fmt.Errorf("anchor %s/%s@%d: %w", an.Platform, an.Model, an.Batch, err)
		}
		out = append(out, Anchor{
			Source:   "Fig5/" + an.Platform,
			Quantity: fmt.Sprintf("%s img/s @BS%d", an.Model, an.Batch),
			Paper:    an.ImgPerSec,
			Measured: st.ImgPerSec,
		})
	}

	// Fig. 8 OOM boundaries.
	for _, mb := range e2eMaxBatches {
		p, err := hw.ByName(mb.Platform)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(p, mb.Model)
		if err != nil {
			return nil, err
		}
		eng.Pipeline = true
		out = append(out, Anchor{
			Source:   "Fig8/" + mb.Platform,
			Quantity: mb.Model + " max batch before OOM",
			Paper:    float64(mb.Batch),
			Measured: float64(eng.MaxBatch(hw.EndToEndMaxBatch)),
		})
	}
	return out, nil
}
