package experiments

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/pipeline"
)

// Fig8 regenerates the paper's Fig. 8: end-to-end pipeline latency and
// throughput for the five classification datasets across models and
// platforms, using the largest batch before OOM (capped at 64) with
// preprocessing/inference overlap.
func Fig8(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "fig8", Title: "End-To-End Pipeline Inference Latency And Throughput"}
	batches := 24
	if opts.Quick {
		batches = 6
	}
	for _, p := range hw.FigureOrder() {
		t := metrics.NewTable(fmt.Sprintf("(%s) end-to-end, largest batch before OOM (cap %d)", p.Name, hw.EndToEndMaxBatch),
			"Model", "Dataset", "Batch", "Latency(ms)", "Throughput(img/s)", "EngineBound(img/s)", "Bottleneck")
		for _, name := range models.Names() {
			for _, spec := range datasets.EvalSet() {
				res, err := pipeline.Run(pipeline.Config{
					Platform: p,
					Model:    name,
					Dataset:  spec,
					Batches:  batches,
					Overlap:  true,
				})
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/%s/%s: %w", p.Name, name, spec.Slug, err)
				}
				t.AddRow(name, spec.Name, res.Batch, res.LatencyMs, res.Throughput,
					res.EngineBoundThroughput, res.Bottleneck)
			}
		}
		a.Tables = append(a.Tables, t)
	}
	a.AddNote("paper findings to check: on A100 large models approach the engine bound (preprocessing overlapped); small models are preprocessing-bottlenecked, worse on V100; on Jetson shared memory shrinks usable batches (ViT_Base to BS2) and degrades ViT_Base the most")
	return a, nil
}
