package experiments

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/metrics"
	"harvest/internal/stats"
)

// Fig4 regenerates the paper's Fig. 4: image-size distributions across
// datasets. For each dataset it samples the deterministic size
// distribution, reports the modal (width x height) label the paper
// prints on each panel, and emits width/height marginal densities.
func Fig4(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "fig4", Title: "Image Size Distribution Across Different Datasets"}
	n := 4000
	if opts.Quick {
		n = 400
	}

	modes := metrics.NewTable("Modal image sizes",
		"Dataset", "Modal Size", "Mean W", "Mean H", "Std W", "Std H", "Spread")
	widthFig := metrics.NewFigure("Width marginal density", "width(px)", "density")
	heightFig := metrics.NewFigure("Height marginal density", "height(px)", "density")

	for _, spec := range datasets.All() {
		ds, err := datasets.New(spec, opts.Seed)
		if err != nil {
			return nil, err
		}
		count := n
		if count > ds.Len() {
			count = ds.Len()
		}
		samples := ds.Sizes(count)
		ws := make([]float64, len(samples))
		hs := make([]float64, len(samples))
		maxDim := 0
		for i, s := range samples {
			ws[i], hs[i] = float64(s.W), float64(s.H)
			if s.W > maxDim {
				maxDim = s.W
			}
			if s.H > maxDim {
				maxDim = s.H
			}
		}
		// 2-D histogram mode = the Fig. 4 panel label.
		h2 := datasets.SizeDensity(samples, maxDim+1, 64)
		mx, my := h2.Mode()
		// Refine the modal label with the most frequent exact size.
		exact := map[[2]int]int{}
		for _, s := range samples {
			exact[[2]int{s.W, s.H}]++
		}
		var bestKey [2]int
		best := -1
		for k, c := range exact {
			if c > best {
				best, bestKey = c, k
			}
		}
		spread := "uniform"
		if len(exact) > 1 {
			spread = fmt.Sprintf("%d distinct sizes", len(exact))
		}
		modes.AddRow(spec.Name,
			fmt.Sprintf("%dx%d", bestKey[0], bestKey[1]),
			stats.Mean(ws), stats.Mean(hs), stats.StdDev(ws), stats.StdDev(hs), spread)
		_ = mx
		_ = my

		// Marginal KDEs over a fixed grid for figure output.
		grid := make([]float64, 0, 32)
		for x := 0.0; x <= float64(maxDim); x += float64(maxDim) / 31 {
			grid = append(grid, x)
		}
		wDens := stats.KDE1D(ws, grid, 0)
		hDens := stats.KDE1D(hs, grid, 0)
		sw := widthFig.AddSeries(spec.Slug)
		sh := heightFig.AddSeries(spec.Slug)
		for i, x := range grid {
			sw.Add(x, wDens[i]*1000) // scale for readable output
			sh.Add(x, hDens[i]*1000)
		}
	}
	a.Tables = append(a.Tables, modes)
	a.Figures = append(a.Figures, widthFig, heightFig)
	a.AddNote("paper anchors: Weed Detection in Soybean modal 233x233; Sugar Cane-Spittle Bug modal 61x61")
	a.AddNote("density values scaled x1000")
	return a, nil
}
