package experiments

import (
	"fmt"

	"harvest/internal/hw"
	"harvest/internal/metrics"
)

// Table1 regenerates the paper's Table 1: evaluated cloud and edge
// platforms with theoretical and GEMM-measured practical TFLOPS.
func Table1(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "table1", Title: "Evaluated Cloud and Edge Platforms"}
	t := metrics.NewTable("",
		"Platform", "CPU", "GPU", "Memory", "Scenario",
		"Precision", "Theory TFLOPS", "Practical TFLOPS", "Efficiency %")
	// Paper column order: Pitzer (V100), MRI (A100), Jetson.
	for _, p := range hw.All() {
		t.AddRow(
			p.FullName,
			fmt.Sprintf("%d cores", p.CPUCores),
			p.GPUDesc,
			fmt.Sprintf("%d GB", p.HostMemBytes>>30),
			p.Scenarios,
			string(p.Precision),
			p.TheoreticalTFLOPS,
			hw.PracticalTFLOPSMeasured(p),
			p.FLOPSEfficiency()*100,
		)
	}
	a.Tables = append(a.Tables, t)

	// The GEMM sweep behind the practical numbers.
	sweep := metrics.NewFigure("GEMM efficiency sweep (fraction of theoretical)", "N", "TFLOPS")
	for _, p := range hw.All() {
		s := sweep.AddSeries(p.Name)
		for _, pt := range hw.GemmSweep(p, []int{256, 512, 1024, 2048, 4096, 8192}) {
			s.Add(float64(pt.N), pt.TFLOPS)
		}
	}
	a.Figures = append(a.Figures, sweep)

	a.AddNote("cloud V100/A100 efficiencies span %.2f%%-%.2f%% (paper: 75.74%%-82.68%%)",
		hw.A100().FLOPSEfficiency()*100, hw.V100().FLOPSEfficiency()*100)
	a.AddNote("V100 and A100 experiments use one of the two available GPUs; Jetson runs in 25W mode with 8GB unified memory")
	if opts.HostGEMM {
		n := 512
		if !opts.Quick {
			n = 1024
		}
		a.AddNote("real host GEMM (float32, N=%d, internal/tensor): %.1f GFLOPS on this machine", n, hw.HostGemmGFLOPS(n))
	}
	return a, nil
}
