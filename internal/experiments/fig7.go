package experiments

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/preprocess"
)

// dali output resolutions evaluated in Fig. 7.
var daliResolutions = []int{224, 96, 32}

// fig7CPUBaseline holds one dataset's measured single-thread host cost.
type fig7CPUBaseline struct {
	pyTorchSec float64 // per image, resize-to-224 pipeline
	cv2Sec     float64 // per image, full-res perspective pipeline (CRSA only)
}

// measureCPUBaselines really runs the CPU preprocessing engines on
// synthetic samples of each dataset and returns per-image host seconds.
func measureCPUBaselines(opts Options) (map[string]fig7CPUBaseline, error) {
	out := make(map[string]fig7CPUBaseline)
	// Reference platform with CPUSingleThreadRel == 1 so reported
	// seconds equal host seconds.
	ref := hw.A100()
	for _, spec := range datasets.All() {
		ds, err := datasets.New(spec, opts.Seed)
		if err != nil {
			return nil, err
		}
		n := 12
		if spec.Slug == datasets.SlugCRSA {
			n = 2
		}
		if opts.Quick {
			n = 2
			if spec.Slug == datasets.SlugCRSA {
				n = 1
			}
		}
		items := make([]preprocess.Item, 0, n)
		for i := 0; i < n; i++ {
			it, err := preprocess.ItemFromDataset(ds, i)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		}
		var base fig7CPUBaseline
		// PyTorch-style path: decode + resize + crop + normalize. The
		// CRSA perspective step uses the working-resolution warp here;
		// the full-resolution warp is the CV2 engine below.
		py := &preprocess.CPUEngine{Platform: ref, Out: 224}
		res, err := py.ProcessBatch(items)
		if err != nil {
			return nil, err
		}
		base.pyTorchSec = res.Seconds / float64(len(items))
		if spec.Task == datasets.TaskPerspective {
			cv := preprocess.NewCV2Engine(ref, 224)
			res, err := cv.ProcessBatch(items)
			if err != nil {
				return nil, err
			}
			base.cv2Sec = res.Seconds / float64(len(items))
		}
		out[spec.Slug] = base
	}
	return out, nil
}

// Fig7 regenerates the paper's Fig. 7: preprocessing latency and
// throughput for each dataset under DALI 224/96/32 @BS64 (modeled GPU
// engines), PyTorch @BS1 and CV2 @BS1 (really executed CPU engines,
// scaled to each platform's CPU).
func Fig7(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "fig7", Title: "Preprocessing Throughput And Latency For Different Datasets Across Platforms"}
	cpu, err := measureCPUBaselines(opts)
	if err != nil {
		return nil, err
	}
	const daliBatch = 64
	for _, p := range hw.FigureOrder() {
		lat := metrics.NewTable(fmt.Sprintf("(%s) preprocessing latency (ms per request)", p.Name),
			"Dataset", "DALI 224@BS64", "DALI 96@BS64", "DALI 32@BS64", "PyTorch@BS1", "CV2@BS1")
		thr := metrics.NewTable(fmt.Sprintf("(%s) preprocessing throughput (images/second)", p.Name),
			"Dataset", "DALI 224@BS64", "DALI 96@BS64", "DALI 32@BS64", "PyTorch@BS1", "CV2@BS1")
		for _, spec := range datasets.All() {
			meanPx := spec.MeanPixels(256, opts.Seed)
			latRow := []any{spec.Name}
			thrRow := []any{spec.Name}
			for _, res := range daliResolutions {
				inPixels := make([]int, daliBatch)
				for i := range inPixels {
					inPixels[i] = int(meanPx)
				}
				sec := hw.GPUPreprocBatchSeconds(p, inPixels, res*res)
				latRow = append(latRow, sec*1000)
				thrRow = append(thrRow, float64(daliBatch)/sec)
			}
			base := cpu[spec.Slug]
			pySec := hw.ScaleCPUSeconds(p, base.pyTorchSec)
			latRow = append(latRow, pySec*1000)
			thrRow = append(thrRow, 1/pySec)
			if base.cv2Sec > 0 {
				cvSec := hw.ScaleCPUSeconds(p, base.cv2Sec)
				latRow = append(latRow, cvSec*1000)
				thrRow = append(thrRow, 1/cvSec)
			} else {
				latRow = append(latRow, "-")
				thrRow = append(thrRow, "-")
			}
			lat.AddRow(latRow...)
			thr.AddRow(thrRow...)
		}
		a.Tables = append(a.Tables, lat, thr)
	}
	a.AddNote("DALI engines are modeled on the calibrated platforms; PyTorch/CV2 are real CPU executions scaled by per-core speed")
	a.AddNote("paper findings to check: DALI 32 fastest (decode constant, transform scales with output); dataset differences converge at DALI 224; CV2 on 4K CRSA unusable for real time")
	return a, nil
}
