package experiments

import (
	"fmt"

	"harvest/internal/energy"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/predict"
	"harvest/internal/scaleout"
)

// ExtensionIDs lists the beyond-the-paper artifacts.
func ExtensionIDs() []string {
	return []string{"energy", "prediction", "scaleout", "offload", "roofline", "ablations"}
}

// RunAny dispatches to paper artifacts or extensions.
func RunAny(id string, opts Options) (*Artifact, error) {
	switch id {
	case "energy":
		return Energy(opts)
	case "prediction":
		return Prediction(opts)
	case "scaleout":
		return ScaleOut(opts)
	case "offload":
		return Offload(opts)
	case "roofline":
		return Roofline(opts)
	case "ablations":
		return Ablations(opts)
	}
	return Run(id, opts)
}

// Energy quantifies the paper's §5 energy-efficiency remark: joules
// per image and images per joule for every platform/model at the
// Fig. 8 operating point.
func Energy(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "energy", Title: "Energy Efficiency Across the Compute Continuum (extension)"}
	t := metrics.NewTable("Per-image energy at the end-to-end operating point",
		"Platform", "Power(W)", "Model", "Batch", "img/s", "MFU%", "J/img", "img/J")
	type best struct {
		platform string
		ipj      float64
	}
	perModelBest := map[string]best{}
	for _, p := range hw.FigureOrder() {
		em := energy.New(p)
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				return nil, err
			}
			eng.Pipeline = true
			batch := eng.MaxBatch(hw.EndToEndMaxBatch)
			if batch == 0 {
				continue
			}
			st, err := eng.Infer(batch)
			if err != nil {
				return nil, err
			}
			jpi, err := em.JoulesPerImage(st.ImgPerSec, st.MFU)
			if err != nil {
				return nil, err
			}
			ipj := 1 / jpi
			t.AddRow(p.Name, p.PowerW, name, batch, st.ImgPerSec, st.MFU*100, jpi, ipj)
			if b, ok := perModelBest[name]; !ok || ipj > b.ipj {
				perModelBest[name] = best{platform: p.Name, ipj: ipj}
			}
		}
	}
	a.Tables = append(a.Tables, t)
	for _, name := range models.Names() {
		if b, ok := perModelBest[name]; ok {
			a.AddNote("%s: best images/joule on %s (%.1f img/J)", name, b.platform, b.ipj)
		}
	}
	a.AddNote("idle power fraction modeled at 30%% of the Table 1 budget")
	_ = opts
	return a, nil
}

// Prediction exercises the deployment-planning toolkit: profile two
// batches, fit the latency law, validate against the full sweep, and
// plan deployments for three requirement profiles.
func Prediction(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "prediction", Title: "Pre-deployment Performance Prediction (paper future work)"}

	val := metrics.NewTable("Two-point profile -> full-sweep prediction error",
		"Platform", "Model", "Profiled", "Points", "MeanErr%", "MaxErr%")
	for _, p := range hw.FigureOrder() {
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				return nil, err
			}
			// Profile at BS1 and the largest of {16, max feasible}.
			second := 16
			if mb := eng.MaxBatch(0); mb < second {
				second = mb
			}
			var samples, truth []predict.Sample
			for _, b := range []int{1, second} {
				if st, err := eng.Infer(b); err == nil {
					samples = append(samples, predict.Sample{Batch: b, Seconds: st.Seconds})
				}
			}
			for _, b := range hw.BatchSweep(p.Name) {
				st, err := eng.Infer(b)
				if err != nil {
					break
				}
				truth = append(truth, predict.Sample{Batch: b, Seconds: st.Seconds})
			}
			pr, err := predict.Fit(samples)
			if err != nil {
				return nil, fmt.Errorf("prediction %s/%s: %w", p.Name, name, err)
			}
			rep := pr.Validate(truth)
			val.AddRow(p.Name, name, "BS1,BS16", rep.Points, rep.MeanRelErr*100, rep.MaxRelErr*100)
		}
	}
	a.Tables = append(a.Tables, val)

	plans := metrics.NewTable("Planner recommendations",
		"Requirement", "Rank", "Platform", "Model", "Batch", "PredLat(ms)", "Pred img/s", "img/J")
	reqs := []struct {
		name string
		req  predict.Requirements
	}{
		{"online 60QPS cloud", predict.Requirements{SLOSeconds: hw.QPS60LatencyMs / 1000, Objective: predict.MaxThroughput}},
		{"real-time 30FPS", predict.Requirements{SLOSeconds: 1.0 / 30, Objective: predict.MinLatency, MinImgPerSec: 30}},
		{"battery edge campaign", predict.Requirements{SLOSeconds: 0.5, Objective: predict.MaxImagesPerJoule, Pipeline: true}},
	}
	for _, rc := range reqs {
		optsList, err := predict.Plan(rc.req, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("planning %q: %w", rc.name, err)
		}
		for rank, o := range optsList {
			if rank >= 3 {
				break
			}
			plans.AddRow(rc.name, rank+1, o.Platform, o.Model, o.Batch,
				o.PredLatencySeconds*1000, o.PredImgPerSec, o.ImagesPerJoule)
		}
	}
	a.Tables = append(a.Tables, plans)
	a.AddNote("prediction uses only two profiling batches per target; errors vs the full sweep quantify the toolkit's trustworthiness")
	_ = opts
	return a, nil
}

// ScaleOut evaluates data-parallel replication across the node's two
// GPUs (Table 1 lists two; the paper used one) under open-loop load.
func ScaleOut(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "scaleout", Title: "Data-Parallel Scale-Out Across Node GPUs (extension)"}
	horizon := 20.0
	if opts.Quick {
		horizon = 5
	}
	for _, p := range []*hw.Platform{hw.A100(), hw.V100()} {
		t := metrics.NewTable(fmt.Sprintf("(%s) ViT_Base @BS64, open-loop load", p.Name),
			"Replicas", "Offered(img/s)", "Throughput(img/s)", "MeanLat(ms)", "P99Lat(ms)", "Util%")
		eng, err := engine.New(p, models.NameViTBase)
		if err != nil {
			return nil, err
		}
		st, err := eng.Infer(64)
		if err != nil {
			return nil, err
		}
		single := 1 / st.Seconds // batches/sec one replica sustains
		for _, replicas := range []int{1, 2} {
			for _, frac := range []float64{0.5, 0.9, 1.4} {
				res, err := scaleout.Run(scaleout.Config{
					Platform:             p,
					Model:                models.NameViTBase,
					Replicas:             replicas,
					Batch:                64,
					OfferedBatchesPerSec: single * frac * float64(replicas),
					HorizonSeconds:       horizon,
					Seed:                 opts.Seed,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(res.Replicas, res.OfferedImgPerSec, res.Throughput,
					res.MeanLatencySeconds*1000, res.P99LatencySeconds*1000,
					res.Utilization*100)
			}
		}
		a.Tables = append(a.Tables, t)
	}
	a.AddNote("two replicas double sustainable throughput at matched utilization; overload (1.4x) shows unbounded queueing either way")
	return a, nil
}
