package experiments

import (
	"fmt"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/quant"
)

// Roofline quantifies the paper's §5 framing — "a performance roofline
// constrained by either compute saturation or memory exhaustion" — by
// computing each model's effective arithmetic intensity per batch size
// and comparing the attainable (roofline) throughput with the
// calibrated achieved throughput.
func Roofline(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "roofline", Title: "Roofline Analysis: Compute vs Memory Bounds (extension)"}
	for _, p := range hw.FigureOrder() {
		t := metrics.NewTable(
			fmt.Sprintf("(%s) ridge at AI=%.0f FLOPs/byte; peak %.1f TFLOPS, BW %.0f GB/s",
				p.Name, hw.RidgeAI(p), p.PracticalTFLOPS, p.MemBWBytesPerSec()/1e9),
			"Model", "Batch", "AI(F/B)", "Attainable TFLOPS", "Achieved TFLOPS", "Bound", "Roofline MFU%")
		bytesPer, err := quant.BytesPerValue(string(p.Precision))
		if err != nil {
			return nil, err
		}
		for _, e := range models.MustTable3() {
			s := e.Spec
			traffic := hw.ModelTraffic{
				FLOPsPerImage: float64(s.ParamMACs()),
				WeightBytes:   float64(s.WeightBytes(bytesPer)),
				// Write + re-read each activation at engine precision.
				ActBytesPerImg: float64(s.TotalActivationElems()) * float64(bytesPer) * 2,
			}
			eng, err := engine.New(p, s.Name)
			if err != nil {
				return nil, err
			}
			batches := []int{1, 8, 64}
			if p.Name != hw.KeyJetson {
				batches = append(batches, 1024)
			}
			pts := hw.Roofline(p, traffic, batches)
			for _, pt := range pts {
				st, err := eng.Infer(pt.Batch)
				if err != nil {
					continue // OOM points drop out
				}
				bound := "memory"
				if pt.ComputeBound {
					bound = "compute"
				}
				t.AddRow(s.Name, pt.Batch, pt.AI, pt.AttainableTFLOPS,
					st.TFLOPS, bound, st.TFLOPS/pt.AttainableTFLOPS*100)
			}
		}
		a.Tables = append(a.Tables, t)
	}
	a.AddNote("batching raises effective AI (weights amortize over the batch): the mechanism behind Fig. 5's MFU growth")
	a.AddNote("achieved stays below attainable because the roofline ignores launch overhead, dependency stalls and non-GEMM layers — the gap the paper calls 'a substantial gap between MFU and the practical upper bound'")
	_ = opts
	return a, nil
}
