package experiments

import (
	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/pipeline"
	"harvest/internal/scaleout"
)

// Ablations regenerates the DESIGN.md §5 design-choice studies as
// deterministic tables: preprocessing/inference overlap, serving batch
// size under load, multi-instance replication, and preprocessing
// placement. (The wall-clock counterparts live in bench_test.go.)
func Ablations(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "ablations", Title: "Design-Choice Ablations (DESIGN.md §5)"}
	horizon := 10.0
	if opts.Quick {
		horizon = 3
	}
	spec, err := datasets.ByName(datasets.SlugCornGrowth)
	if err != nil {
		return nil, err
	}

	// 1. Overlap on/off across platforms (the Fig. 8 mechanism).
	ov := metrics.NewTable("Preprocessing/inference overlap (ViT_Base, Corn Growth Stage)",
		"Platform", "Batch", "Sequential img/s", "Overlapped img/s", "Speedup")
	for _, p := range hw.FigureOrder() {
		cfg := pipeline.Config{Platform: p, Model: models.NameViTBase, Dataset: spec, Batches: 16}
		seq, err := pipeline.Sequential(cfg)
		if err != nil {
			return nil, err
		}
		over, err := pipeline.Overlapped(cfg)
		if err != nil {
			return nil, err
		}
		ov.AddRow(p.Name, over.Batch, seq.Throughput, over.Throughput,
			over.Throughput/seq.Throughput)
	}
	a.Tables = append(a.Tables, ov)

	// 2. Serving batch size under fixed offered load: latency cost of
	//    larger batches vs their throughput headroom.
	bt := metrics.NewTable("Batch size under 1000 img/s offered load (A100, ViT_Small, online)",
		"Batch", "Goodput img/s", "Mean lat(ms)", "P99 lat(ms)", "SLO miss %")
	for _, batch := range []int{4, 16, 64} {
		res, err := pipeline.RunOnline(pipeline.OnlineConfig{
			Platform: hw.A100(), Model: models.NameViTSmall,
			Batch: batch, RatePerSec: 1000 / float64(batch),
			HorizonSeconds: horizon, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		bt.AddRow(batch, res.Goodput, res.MeanMs, res.P99Ms, res.SLOMissRate*100)
	}
	a.Tables = append(a.Tables, bt)

	// 3. Multi-instance replication at fixed per-replica load.
	mi := metrics.NewTable("Instance replication (V100, ViT_Base @BS64, 80% per-replica load)",
		"Replicas", "Offered img/s", "Throughput img/s", "Mean lat(ms)", "P99 lat(ms)")
	for _, replicas := range []int{1, 2, 4} {
		res, err := scaleout.Run(scaleout.Config{
			Platform: hw.V100(), Model: models.NameViTBase,
			Replicas: replicas, Batch: 64,
			OfferedBatchesPerSec: 0.8 * float64(replicas) / 0.0432, // ~80% of capacity each
			HorizonSeconds:       horizon, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		mi.AddRow(res.Replicas, res.OfferedImgPerSec, res.Throughput,
			res.MeanLatencySeconds*1000, res.P99LatencySeconds*1000)
	}
	a.Tables = append(a.Tables, mi)

	// 4. Preprocessing placement: GPU vs CPU feeding the same engine.
	pp := metrics.NewTable("Preprocessing placement (ResNet50, Plant Village, overlapped)",
		"Platform", "Placement", "Batch", "Throughput img/s", "Bottleneck")
	for _, p := range hw.FigureOrder() {
		for _, cpu := range []bool{false, true} {
			cfg := pipeline.Config{
				Platform: p, Model: models.NameResNet50,
				Dataset: mustSpec(datasets.SlugPlantVillage),
				Batches: 12, Overlap: true,
			}
			placement := "GPU (DALI)"
			if cpu {
				cfg.CPUPreproc = true
				// Single-thread host cost of the PyTorch path on this
				// dataset (measured magnitude; fixed for determinism).
				cfg.HostCPUSecondsPerImage = 0.0035
				placement = "CPU (1 thread)"
			}
			res, err := pipeline.Run(cfg)
			if err != nil {
				return nil, err
			}
			pp.AddRow(p.Name, placement, res.Batch, res.Throughput, res.Bottleneck)
		}
	}
	a.Tables = append(a.Tables, pp)

	a.AddNote("overlap pays most where preprocessing and inference costs are comparable")
	a.AddNote("replication keeps P99 flat while scaling offered load — §5's multi-instance guidance")
	a.AddNote("CPU preprocessing caps every platform at the single thread's rate: the paper's §4.2 bottleneck")
	return a, nil
}

func mustSpec(slug string) datasets.Spec {
	s, err := datasets.ByName(slug)
	if err != nil {
		panic(err)
	}
	return s
}
