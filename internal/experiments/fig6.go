package experiments

import (
	"fmt"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
)

// Fig6 regenerates the paper's Fig. 6: per-batch request latency vs
// batch size against the ideal-scaling dashed line, with the 16.7 ms
// (60 QPS) threshold and each model's largest batch meeting it.
func Fig6(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "fig6", Title: "Request Latency Vs. Batch Size Across Hardware Platforms"}
	for _, p := range hw.FigureOrder() {
		fig := metrics.NewFigure(
			fmt.Sprintf("(%s) batch latency (ms); 60 QPS threshold = %.1f ms", p.Name, hw.QPS60LatencyMs),
			"batch", "latency(ms)")
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				return nil, err
			}
			s := fig.AddSeries(name)
			ideal := fig.AddSeries(name + "(ideal)")
			bestUnder := 0
			for _, pt := range eng.Sweep() {
				if pt.Err != nil {
					continue
				}
				ms := pt.Seconds * 1000
				s.Add(float64(pt.Batch), ms)
				ideal.Add(float64(pt.Batch), eng.Perf.TheoreticalLatencySeconds(pt.Batch)*1000)
				if ms <= hw.QPS60LatencyMs && pt.Batch > bestUnder {
					bestUnder = pt.Batch
				}
			}
			if bestUnder > 0 {
				thr, _ := eng.Infer(bestUnder)
				a.AddNote("%s %s: largest batch meeting 60 QPS latency = %d (%.1f img/s, MFU %.1f%%)",
					p.Name, name, bestUnder, thr.ImgPerSec, thr.MFU*100)
			} else {
				a.AddNote("%s %s: no batch meets the 60 QPS latency threshold", p.Name, name)
			}
		}
		a.Figures = append(a.Figures, fig)
	}
	a.AddNote("paper: A100 needs BS>16 for near-saturated operation under 16.7ms; V100 saturates by BS8; Jetson margins are narrow, ViT_Tiny MFU deteriorates below BS8")
	_ = opts
	return a, nil
}
