package experiments

import (
	"fmt"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
)

// Fig5 regenerates the paper's Fig. 5: achieved TFLOPS vs batch size
// for every model on every platform, against the theoretical and
// practical rooflines, with the "img/s @ best batch" legend anchors.
func Fig5(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "fig5", Title: "Scaling Behavior Of Compute Intensity With Varying Batch Sizes"}
	for _, p := range hw.FigureOrder() {
		fig := metrics.NewFigure(
			fmt.Sprintf("(%s) achieved TFLOPS vs batch size [theoretical %.0f, practical %.1f]",
				p.Name, p.TheoreticalTFLOPS, p.PracticalTFLOPS),
			"batch", "TFLOPS")
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				return nil, err
			}
			s := fig.AddSeries(name)
			var bestBatch int
			var bestThr float64
			for _, pt := range eng.Sweep() {
				if pt.Err != nil {
					continue
				}
				s.Add(float64(pt.Batch), pt.TFLOPS)
				if pt.ImgPerSec > bestThr {
					bestThr, bestBatch = pt.ImgPerSec, pt.Batch
				}
			}
			a.AddNote("%s %s: %.1f img/s @ BS%d (MFU %.1f%%)",
				p.Name, name, bestThr, bestBatch, eng.Perf.MFU(bestBatch)*100)
		}
		a.Figures = append(a.Figures, fig)
	}
	a.AddNote("paper legend anchors: A100 ViT_Tiny 22879.3 img/s @BS1024 ... Jetson ViT_Base 201.0 img/s @BS8")
	_ = opts
	return a, nil
}
