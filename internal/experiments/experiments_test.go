package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 42}
}

func TestAllArtifactsRun(t *testing.T) {
	for _, id := range IDs() {
		a, err := Run(id, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.ID != id {
			t.Errorf("artifact id %q, want %q", a.ID, id)
		}
		out := a.Render()
		if len(out) < 100 {
			t.Errorf("%s rendered only %d bytes", id, len(out))
		}
		if !strings.Contains(out, a.Title) {
			t.Errorf("%s render missing title", id)
		}
	}
	if _, err := Run("fig99", quickOpts()); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestTable1Content(t *testing.T) {
	a, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"V100", "A100", "Jetson", "92.60", "236.30", "11.40"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	if a.Tables[0].NumRows() != 3 {
		t.Errorf("table1 has %d rows", a.Tables[0].NumRows())
	}
}

func TestTable1HostGEMM(t *testing.T) {
	a, err := Table1(Options{Quick: true, HostGEMM: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Render(), "real host GEMM") {
		t.Error("host GEMM note missing")
	}
}

func TestTable2Content(t *testing.T) {
	a, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"Plant Village", "43430", "CRSA", "3840x2160", "perspective", "61x61"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
	if a.Tables[0].NumRows() != 6 {
		t.Errorf("table2 has %d rows, want 6", a.Tables[0].NumRows())
	}
}

func TestTable3Content(t *testing.T) {
	a, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"ViT_Tiny", "ResNet50", "Transformer Based", "CNN Based", "MLP", "convolutions"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

func TestFig4ModalAnchors(t *testing.T) {
	a, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	// The two labeled modes of the paper's Fig. 4 panels.
	for _, want := range []string{"233x233", "61x61", "256x256", "100x100"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 missing modal size %q", want)
		}
	}
}

func TestFig5LegendAnchors(t *testing.T) {
	a, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	// The best-throughput legend entries must reproduce the paper's.
	for _, want := range []string{
		"A100 ViT_Tiny: 22879.3 img/s @ BS1024",
		"V100 ResNet50: 8107.3 img/s @ BS1024",
		"Jetson ViT_Base: 201.0 img/s @ BS8",
		"Jetson ViT_Tiny: 1170.1 img/s @ BS196",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing legend anchor %q\n%s", want, out[:min(len(out), 2000)])
		}
	}
	if len(a.Figures) != 3 {
		t.Errorf("fig5 has %d sub-figures, want 3", len(a.Figures))
	}
}

func TestFig6ThresholdFindings(t *testing.T) {
	a, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	if !strings.Contains(out, "largest batch meeting 60 QPS") {
		t.Error("fig6 missing 60 QPS analysis")
	}
	if len(a.Figures) != 3 {
		t.Errorf("fig6 has %d sub-figures", len(a.Figures))
	}
}

func TestFig7Shape(t *testing.T) {
	a, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables) != 6 { // latency + throughput per platform
		t.Fatalf("fig7 has %d tables, want 6", len(a.Tables))
	}
	out := a.Render()
	for _, want := range []string{"DALI 224@BS64", "DALI 32@BS64", "PyTorch@BS1", "CV2@BS1", "CRSA"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	a, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables) != 3 {
		t.Fatalf("fig8 has %d tables, want 3", len(a.Tables))
	}
	out := a.Render()
	for _, want := range []string{"ViT_Base", "Plant Village", "Bottleneck", "preprocess", "inference"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q", want)
		}
	}
	// 4 models x 5 datasets per platform.
	for _, tb := range a.Tables {
		if tb.NumRows() != 20 {
			t.Errorf("fig8 table %q has %d rows, want 20", tb.Title, tb.NumRows())
		}
	}
}

// TestAnchorsWithinTolerance is the headline reproduction test: every
// published number this repository claims to reproduce must match
// within tolerance.
func TestAnchorsWithinTolerance(t *testing.T) {
	anchors, err := CompareAnchors()
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) < 40 {
		t.Fatalf("only %d anchors compared", len(anchors))
	}
	for _, an := range anchors {
		tol := 0.01
		switch {
		case strings.Contains(an.Quantity, "params"):
			tol = 0.05
		case strings.Contains(an.Quantity, "max batch"):
			tol = 0 // OOM boundaries must be exact
		case strings.Contains(an.Quantity, "share"):
			tol = 0.01
		}
		if an.RelErr() > tol+1e-12 {
			t.Errorf("anchor out of tolerance: %s", an)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
