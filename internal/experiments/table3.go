package experiments

import (
	"fmt"

	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
)

// Table3 regenerates the paper's Table 3: the evaluated models, their
// layer-wise computed GFLOPs/image and parameters, and the per-platform
// throughput upper bounds (practical FLOPS / model FLOPs).
func Table3(opts Options) (*Artifact, error) {
	a := &Artifact{ID: "table3", Title: "Model Evaluated and Computational Intensity"}
	entries, err := models.Table3()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("",
		"Model", "Parameters (M)", "Architecture", "GFLOPs/Image", "Input Size",
		"UB A100 (img/s)", "UB V100 (img/s)", "UB Jetson (img/s)")
	plats := map[string]*hw.Platform{
		hw.KeyA100: hw.A100(), hw.KeyV100: hw.V100(), hw.KeyJetson: hw.Jetson(),
	}
	ub := func(p *hw.Platform, gflops float64) float64 {
		return p.PracticalTFLOPS * 1e3 / gflops
	}
	for _, e := range entries {
		s := e.Spec
		g := s.GFLOPsPerImage()
		t.AddRow(
			s.Name,
			float64(s.Params())/1e6,
			s.Arch.String(),
			g,
			fmt.Sprintf("%dx%d", s.InputSize, s.InputSize),
			ub(plats[hw.KeyA100], g),
			ub(plats[hw.KeyV100], g),
			ub(plats[hw.KeyJetson], g),
		)
	}
	a.Tables = append(a.Tables, t)

	// Paper-reported reference values for comparison.
	ref := metrics.NewTable("Computed vs paper-reported",
		"Model", "GFLOPs (ours)", "GFLOPs (paper)", "Params M (ours)", "Params M (paper)")
	for _, e := range entries {
		ref.AddRow(e.Spec.Name, e.Spec.GFLOPsPerImage(), e.PaperGFLOPs,
			float64(e.Spec.Params())/1e6, e.PaperParamsM)
	}
	a.Tables = append(a.Tables, ref)

	// The §4.0.2 compute breakdowns.
	for _, e := range entries {
		s := e.Spec
		if s.Arch == models.ArchTransformer {
			mlp, attn := s.MLPAttentionShares()
			a.AddNote("%s: MLP (parameterized linears) %.2f%% of compute, attention matmuls %.2f%%",
				s.Name, mlp*100, attn*100)
		} else {
			conv := s.BreakdownByKind()[models.KindConv]
			a.AddNote("%s: convolutions account for %.2f%% of compute", s.Name, conv*100)
		}
	}
	a.AddNote("FLOPs counted as multiply-accumulates of parameterized layers (the paper's convention)")
	_ = opts
	return a, nil
}
