package experiments

import (
	"strings"
	"testing"
)

func TestExtensionArtifactsRun(t *testing.T) {
	for _, id := range ExtensionIDs() {
		a, err := RunAny(id, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a.Render()) < 100 {
			t.Errorf("%s rendered too little", id)
		}
	}
}

func TestRunAnyDispatchesPaperArtifacts(t *testing.T) {
	a, err := RunAny("table2", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "table2" {
		t.Errorf("dispatched to %s", a.ID)
	}
	if _, err := RunAny("nope", quickOpts()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestEnergyContent(t *testing.T) {
	a, err := Energy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"Jetson", "25.00", "img/J", "best images/joule"} {
		if !strings.Contains(out, want) {
			t.Errorf("energy missing %q", want)
		}
	}
	// 3 platforms x 4 models = 12 rows.
	if a.Tables[0].NumRows() != 12 {
		t.Errorf("energy rows %d, want 12", a.Tables[0].NumRows())
	}
	// ViT_Tiny must be most efficient on the 25W Jetson.
	if !strings.Contains(out, "ViT_Tiny: best images/joule on Jetson") {
		t.Error("Jetson not winning ViT_Tiny images/joule")
	}
}

func TestPredictionContent(t *testing.T) {
	a, err := Prediction(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"prediction error", "Planner recommendations", "online 60QPS cloud", "real-time 30FPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("prediction missing %q", want)
		}
	}
	if a.Tables[0].NumRows() != 12 {
		t.Errorf("validation rows %d, want 12", a.Tables[0].NumRows())
	}
}

func TestScaleOutContent(t *testing.T) {
	a, err := ScaleOut(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"Replicas", "A100", "V100", "Util%"} {
		if !strings.Contains(out, want) {
			t.Errorf("scaleout missing %q", want)
		}
	}
	if len(a.Tables) != 2 {
		t.Errorf("scaleout tables %d, want 2", len(a.Tables))
	}
}
