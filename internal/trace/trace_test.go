package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderSortsSpans(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Name: "b", Track: "t", Start: 2, Duration: 1})
	r.Add(Span{Name: "a", Track: "t", Start: 0, Duration: 1})
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans not sorted: %+v", spans)
	}
	if r.Len() != 2 {
		t.Errorf("len %d", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Add(Span{Name: "x", Track: "t", Start: float64(i), Duration: 0.1})
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("lost spans: %d", r.Len())
	}
}

func TestWriteChromeFormat(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Name: "batch 0", Track: "engine", Start: 0.001, Duration: 0.002,
		Args: map[string]any{"batch": 64}})
	r.Add(Span{Name: "batch 0", Track: "preprocess", Start: 0, Duration: 0.001})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 2 thread_name metadata + 2 spans.
	if len(events) != 4 {
		t.Fatalf("got %d events", len(events))
	}
	out := buf.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"M"`, "thread_name", "engine", "preprocess"} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
	// Microsecond conversion: 0.002s -> 2000us.
	found := false
	for _, e := range events {
		if e["dur"] == 2000.0 {
			found = true
		}
	}
	if !found {
		t.Error("duration not converted to microseconds")
	}
}

func TestTrackBusy(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Name: "a", Track: "gpu", Start: 0, Duration: 1})
	r.Add(Span{Name: "b", Track: "gpu", Start: 2, Duration: 3})
	r.Add(Span{Name: "c", Track: "cpu", Start: 0, Duration: 0.5})
	busy := r.TrackBusy()
	if busy["gpu"] != 4 || busy["cpu"] != 0.5 {
		t.Errorf("busy %v", busy)
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	good := NewRecorder()
	good.Add(Span{Name: "a", Track: "t", Start: 0, Duration: 1})
	good.Add(Span{Name: "b", Track: "t", Start: 1, Duration: 1})
	good.Add(Span{Name: "c", Track: "u", Start: 0.5, Duration: 1}) // other track may overlap
	if err := good.Validate(); err != nil {
		t.Errorf("valid timeline rejected: %v", err)
	}
	bad := NewRecorder()
	bad.Add(Span{Name: "a", Track: "t", Start: 0, Duration: 2})
	bad.Add(Span{Name: "b", Track: "t", Start: 1, Duration: 1})
	if err := bad.Validate(); err == nil {
		t.Error("overlapping timeline accepted")
	}
	neg := NewRecorder()
	neg.Add(Span{Name: "a", Track: "t", Start: 0, Duration: -1})
	if err := neg.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRingRecorderBoundsMemory(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Span{Name: "s", Track: "t", Start: float64(i), Duration: 0.5})
	}
	if r.Len() != 4 {
		t.Errorf("len %d, want capacity 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", r.Dropped())
	}
	// Only the most recent spans survive.
	spans := r.Spans()
	if spans[0].Start != 6 || spans[len(spans)-1].Start != 9 {
		t.Errorf("retained window %v..%v, want 6..9", spans[0].Start, spans[len(spans)-1].Start)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("ring timeline invalid: %v", err)
	}
}

func TestRingRecorderUnboundedFallback(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 100; i++ {
		r.Add(Span{Name: "s", Track: "t", Start: float64(i), Duration: 1})
	}
	if r.Len() != 100 || r.Dropped() != 0 {
		t.Errorf("len %d dropped %d, want unbounded behaviour", r.Len(), r.Dropped())
	}
}

func TestRingRecorderConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Span{Name: "s", Track: "t", Start: float64(g*1000 + i), Duration: 0.1})
				if i%50 == 0 {
					_ = r.Spans()
					_ = r.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("len %d, want 64", r.Len())
	}
	if got := r.Dropped(); got != 8*500-64 {
		t.Errorf("dropped %d, want %d", got, 8*500-64)
	}
}
