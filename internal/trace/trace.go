// Package trace records execution timelines and exports them in the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), giving
// the characterization study visual evidence of preprocessing/inference
// overlap and pipeline bubbles.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Span is one complete-event ("ph":"X") on a named track.
type Span struct {
	Name string
	// Track is the display row (e.g. "preprocess", "engine").
	Track string
	// Start and Duration are in seconds (virtual or wall).
	Start    float64
	Duration float64
	// Args are free-form metadata shown on click.
	Args map[string]any
}

// Recorder accumulates spans; safe for concurrent use. An unbounded
// recorder (NewRecorder) keeps every span — right for finite offline
// experiments. A ring recorder (NewRing) keeps the most recent spans
// in a fixed-capacity buffer and counts the rest as dropped — right
// for long-lived servers, where the trace must not grow with uptime.
type Recorder struct {
	mu      sync.Mutex
	spans   []Span
	cap     int    // 0 = unbounded
	head    int    // next write position when the ring is full
	dropped uint64 // spans evicted from the ring
}

// NewRecorder returns an empty unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRing returns a recorder that retains only the most recent
// capacity spans; older spans are evicted and counted by Dropped.
// capacity <= 0 falls back to unbounded.
func NewRing(capacity int) *Recorder {
	if capacity <= 0 {
		return NewRecorder()
	}
	return &Recorder{cap: capacity}
}

// Add records a span.
func (r *Recorder) Add(s Span) {
	r.mu.Lock()
	if r.cap > 0 && len(r.spans) == r.cap {
		r.spans[r.head] = s
		r.head = (r.head + 1) % r.cap
		r.dropped++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Dropped returns the number of spans evicted from a ring recorder.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the recorded spans sorted by start time.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	cp := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Start < cp[j].Start })
	return cp
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// chromeEvent is the trace-event wire format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChrome serializes the recording as a Chrome trace-event JSON
// array. Tracks become thread rows with stable ids.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return r.WriteChromeFiltered(w, nil)
}

// WriteChromeFiltered is WriteChrome restricted to spans satisfying
// keep (nil keeps everything). Tracks with no surviving spans are
// omitted.
func (r *Recorder) WriteChromeFiltered(w io.Writer, keep func(Span) bool) error {
	spans := r.Spans()
	if keep != nil {
		kept := spans[:0]
		for _, s := range spans {
			if keep(s) {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	trackIDs := map[string]int{}
	var tracks []string
	for _, s := range spans {
		if _, ok := trackIDs[s.Track]; !ok {
			trackIDs[s.Track] = len(tracks)
			tracks = append(tracks, s.Track)
		}
	}
	var events []any
	for _, name := range tracks {
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: trackIDs[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Track, Ph: "X",
			Ts: s.Start * 1e6, Dur: s.Duration * 1e6,
			Pid: 1, Tid: trackIDs[s.Track], Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// TrackBusy sums span durations per track.
func (r *Recorder) TrackBusy() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Spans() {
		out[s.Track] += s.Duration
	}
	return out
}

// Validate checks that no track has overlapping spans (each track is a
// serial resource). It returns nil when the timeline is consistent.
func (r *Recorder) Validate() error {
	byTrack := map[string][]Span{}
	for _, s := range r.Spans() {
		if s.Duration < 0 {
			return fmt.Errorf("trace: span %q has negative duration", s.Name)
		}
		byTrack[s.Track] = append(byTrack[s.Track], s)
	}
	for track, spans := range byTrack {
		for i := 1; i < len(spans); i++ {
			prevEnd := spans[i-1].Start + spans[i-1].Duration
			if spans[i].Start < prevEnd-1e-9 {
				return fmt.Errorf("trace: track %q spans %q and %q overlap",
					track, spans[i-1].Name, spans[i].Name)
			}
		}
	}
	return nil
}
