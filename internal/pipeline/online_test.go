package pipeline

import (
	"testing"

	"harvest/internal/hw"
	"harvest/internal/models"
)

func TestRunOnlineValidation(t *testing.T) {
	if _, err := RunOnline(OnlineConfig{}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := RunOnline(OnlineConfig{Platform: hw.A100(), Model: models.NameViTTiny,
		RatePerSec: 10}); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := RunOnline(OnlineConfig{Platform: hw.A100(), Model: models.NameViTTiny,
		Batch: 8}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RunOnline(OnlineConfig{Platform: hw.A100(), Model: "ghost",
		Batch: 8, RatePerSec: 10}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunOnlineUnderload(t *testing.T) {
	res, err := RunOnline(OnlineConfig{
		Platform: hw.A100(), Model: models.NameViTSmall,
		Batch: 16, RatePerSec: 30, HorizonSeconds: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Served == 0 {
		t.Fatalf("nothing served: %+v", res)
	}
	// Underloaded: goodput tracks offered load.
	if res.Goodput < res.Offered*0.85 {
		t.Errorf("goodput %v well below offered %v", res.Goodput, res.Offered)
	}
	if res.MeanMs <= 0 || res.P99Ms < res.P95Ms || res.P95Ms < res.MeanMs*0.5 {
		t.Errorf("latency stats inconsistent: %+v", res)
	}
}

func TestRunOnlineLatencyGrowsWithLoad(t *testing.T) {
	cfg := OnlineConfig{
		Platform: hw.V100(), Model: models.NameViTSmall,
		Batch: 32, HorizonSeconds: 10, Seed: 2,
	}
	results, err := OnlineRateSweep(cfg, []float64{10, 40, 70})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep results %d", len(results))
	}
	if results[2].MeanMs <= results[0].MeanMs {
		t.Errorf("latency did not grow with load: %v vs %v", results[0].MeanMs, results[2].MeanMs)
	}
	if results[2].EngineUtilization <= results[0].EngineUtilization {
		t.Error("utilization did not grow with load")
	}
}

func TestRunOnlineOverloadCapsGoodput(t *testing.T) {
	res, err := RunOnline(OnlineConfig{
		Platform: hw.Jetson(), Model: models.NameViTSmall,
		Batch: 16, RatePerSec: 200, HorizonSeconds: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput >= res.Offered {
		t.Errorf("overloaded goodput %v not below offered %v", res.Goodput, res.Offered)
	}
	if res.SLOMissRate < 0.5 {
		t.Errorf("overload miss rate %v suspiciously low", res.SLOMissRate)
	}
}

func TestRunOnlineOOMBatch(t *testing.T) {
	if _, err := RunOnline(OnlineConfig{
		Platform: hw.Jetson(), Model: models.NameViTBase,
		Batch: 64, RatePerSec: 1,
	}); err == nil {
		t.Error("OOM batch accepted")
	}
}
