package pipeline

import (
	"bytes"
	"testing"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/trace"
)

func TestPipelineTraceTimeline(t *testing.T) {
	rec := trace.NewRecorder()
	_, err := Run(Config{
		Platform: hw.A100(),
		Model:    models.NameViTBase,
		Dataset:  evalSpec(t, datasets.SlugPlantVillage),
		Batches:  6,
		Overlap:  true,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 batches x 3 stages.
	if rec.Len() != 18 {
		t.Fatalf("recorded %d spans, want 18", rec.Len())
	}
	// Each track is a serial resource: no overlap within a track.
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlap across tracks must exist: total busy time exceeds the
	// makespan of any single track.
	busy := rec.TrackBusy()
	if busy["preprocess"] <= 0 || busy["engine"] <= 0 {
		t.Fatalf("missing stage activity: %v", busy)
	}
	spans := rec.Spans()
	var engineStart, preEnd float64
	for _, s := range spans {
		if s.Track == "engine" && s.Name == "batch 0" {
			engineStart = s.Start
		}
		if s.Track == "preprocess" && s.Name == "batch 1" {
			preEnd = s.Start + s.Duration
		}
	}
	// Batch 1's preprocessing must start before batch 0's inference
	// completes under overlap — otherwise the pipeline is serial.
	if preEnd <= engineStart {
		t.Error("no cross-stage overlap visible in trace")
	}
	// Chrome export produces valid JSON.
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 {
		t.Error("chrome trace suspiciously small")
	}
}

func TestPipelineNoTraceByDefault(t *testing.T) {
	// Trace nil must be safe (no panic, no recording).
	if _, err := Run(Config{
		Platform: hw.V100(),
		Model:    models.NameViTTiny,
		Dataset:  evalSpec(t, datasets.SlugFruits360),
		Batches:  2,
		Overlap:  true,
	}); err != nil {
		t.Fatal(err)
	}
}
