package pipeline

import (
	"testing"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/models"
)

func evalSpec(t *testing.T, slug string) datasets.Spec {
	t.Helper()
	spec, err := datasets.ByName(slug)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{
		Platform: hw.A100(),
		Model:    models.NameViTBase,
		Dataset:  evalSpec(t, datasets.SlugPlantVillage),
		Batches:  8,
		Overlap:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch != 64 {
		t.Errorf("auto batch %d, want 64 (A100 Fig. 8)", res.Batch)
	}
	if res.Throughput <= 0 || res.LatencyMs <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
	if res.Throughput > res.EngineBoundThroughput {
		t.Errorf("e2e throughput %v exceeds engine bound %v", res.Throughput, res.EngineBoundThroughput)
	}
}

func TestOverlapBeatsSequential(t *testing.T) {
	cfg := Config{
		Platform: hw.V100(),
		Model:    models.NameViTTiny,
		Dataset:  evalSpec(t, datasets.SlugCornGrowth),
		Batches:  16,
	}
	over, err := Overlapped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if over.Throughput <= seq.Throughput {
		t.Errorf("overlap throughput %v not above sequential %v", over.Throughput, seq.Throughput)
	}
	// Per-batch latency of a single batch is the same stages either
	// way; sequential must not have *lower* latency.
	if seq.LatencyMs < over.LatencyMs*0.5 {
		t.Errorf("sequential latency %v suspiciously below overlapped %v", seq.LatencyMs, over.LatencyMs)
	}
}

func TestFig8MaxBatchBoundaries(t *testing.T) {
	cases := []struct {
		platform *hw.Platform
		model    string
		batch    int
	}{
		{hw.A100(), models.NameViTBase, 64},
		{hw.V100(), models.NameViTBase, 2},
		{hw.V100(), models.NameViTSmall, 32},
		{hw.V100(), models.NameResNet50, 32},
		{hw.Jetson(), models.NameViTBase, 2},
		{hw.Jetson(), models.NameViTTiny, 64},
	}
	for _, c := range cases {
		res, err := Run(Config{
			Platform: c.platform, Model: c.model,
			Dataset: evalSpec(t, datasets.SlugPlantVillage),
			Batches: 4, Overlap: true,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.platform.Name, c.model, err)
		}
		if res.Batch != c.batch {
			t.Errorf("%s/%s auto batch %d, want %d", c.platform.Name, c.model, res.Batch, c.batch)
		}
	}
}

func TestBottleneckIdentification(t *testing.T) {
	// A100 ViT_Base is inference-bound (paper: approaches engine
	// bound); A100 ViT_Tiny is preprocessing-bound.
	base, err := Run(Config{Platform: hw.A100(), Model: models.NameViTBase,
		Dataset: evalSpec(t, datasets.SlugPlantVillage), Batches: 4, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Bottleneck != "inference" {
		t.Errorf("A100 ViT_Base bottleneck %q, want inference", base.Bottleneck)
	}
	tiny, err := Run(Config{Platform: hw.A100(), Model: models.NameViTTiny,
		Dataset: evalSpec(t, datasets.SlugPlantVillage), Batches: 4, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Bottleneck != "preprocess" {
		t.Errorf("A100 ViT_Tiny bottleneck %q, want preprocess", tiny.Bottleneck)
	}
}

func TestLargeModelsApproachEngineBound(t *testing.T) {
	// Paper Fig. 8 (A100): larger models overlap preprocessing behind
	// inference and approach the engine's bound.
	res, err := Run(Config{Platform: hw.A100(), Model: models.NameViTBase,
		Dataset: evalSpec(t, datasets.SlugCornGrowth), Batches: 24, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.Throughput / res.EngineBoundThroughput; ratio < 0.85 {
		t.Errorf("A100 ViT_Base e2e/engine ratio %.2f, want >= 0.85", ratio)
	}
	// Small models are preprocessing-bottlenecked: clearly below bound.
	tiny, err := Run(Config{Platform: hw.V100(), Model: models.NameViTTiny,
		Dataset: evalSpec(t, datasets.SlugCornGrowth), Batches: 24, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := tiny.Throughput / tiny.EngineBoundThroughput; ratio > 0.8 {
		t.Errorf("V100 ViT_Tiny e2e/engine ratio %.2f, want preprocessing-bound (< 0.8)", ratio)
	}
}

func TestCPUPreprocPath(t *testing.T) {
	cfg := Config{
		Platform:               hw.V100(),
		Model:                  models.NameResNet50,
		Dataset:                evalSpec(t, datasets.SlugPlantVillage),
		Batches:                4,
		Overlap:                true,
		CPUPreproc:             true,
		HostCPUSecondsPerImage: 0.004,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck != "preprocess" {
		t.Errorf("CPU preprocessing should bottleneck: %+v", res)
	}
	gpu := cfg
	gpu.CPUPreproc = false
	gres, err := Run(gpu)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Throughput <= res.Throughput {
		t.Errorf("GPU preprocessing (%v img/s) not faster than CPU (%v img/s)",
			gres.Throughput, res.Throughput)
	}
}

func TestConfigErrors(t *testing.T) {
	spec := evalSpec(t, datasets.SlugPlantVillage)
	if _, err := Run(Config{Model: models.NameViTTiny, Dataset: spec}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Run(Config{Platform: hw.A100(), Model: "ghost", Dataset: spec}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Run(Config{Platform: hw.A100(), Model: models.NameViTTiny,
		Dataset: spec, CPUPreproc: true}); err == nil {
		t.Error("CPUPreproc without host seconds accepted")
	}
}

func TestExplicitBatchOOM(t *testing.T) {
	if _, err := Run(Config{
		Platform: hw.Jetson(), Model: models.NameViTBase,
		Dataset: evalSpec(t, datasets.SlugPlantVillage),
		Batch:   64, Batches: 2, Overlap: true,
	}); err == nil {
		t.Error("Jetson ViT_Base batch 64 should OOM in pipeline mode")
	}
}

func TestStageCostsSumConsistency(t *testing.T) {
	res, err := Run(Config{Platform: hw.V100(), Model: models.NameViTSmall,
		Dataset: evalSpec(t, datasets.SlugFruits360), Batches: 8, Overlap: false})
	if err != nil {
		t.Fatal(err)
	}
	sumMs := (res.PreprocSeconds + res.TransferSeconds + res.InferSeconds) * 1000
	if diff := res.LatencyMs - sumMs; diff < -0.01 || diff > 0.01 {
		t.Errorf("sequential latency %v ms != stage sum %v ms", res.LatencyMs, sumMs)
	}
}
