package pipeline

import (
	"fmt"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/sim"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

// OnlineConfig describes an open-loop online-inference simulation
// (paper §2.2.1): requests arrive as a Poisson stream, each carrying a
// batch of images that flows through preprocessing and inference.
type OnlineConfig struct {
	Platform *hw.Platform
	Model    string
	// Batch is the images per request (the serving batch size).
	Batch int
	// RatePerSec is the request arrival rate.
	RatePerSec float64
	// HorizonSeconds is the simulated duration (default 30).
	HorizonSeconds float64
	// MeanInputPixels sizes the per-image GPU preprocessing cost
	// (default 256x256).
	MeanInputPixels float64
	// SLOSeconds is the per-request latency objective for miss-rate
	// accounting (default 16.7ms, the paper's 60 QPS line).
	SLOSeconds float64
	Seed       uint64
}

// OnlineResult summarizes the online simulation.
type OnlineResult struct {
	Requests          int
	Served            int
	Offered           float64 // img/s offered
	Goodput           float64 // img/s completed within horizon
	MeanMs            float64
	P95Ms             float64
	P99Ms             float64
	SLOMissRate       float64
	EngineUtilization float64
}

// RunOnline simulates the online scenario and returns latency and SLO
// statistics.
func RunOnline(cfg OnlineConfig) (OnlineResult, error) {
	if cfg.Platform == nil {
		return OnlineResult{}, fmt.Errorf("pipeline: nil platform")
	}
	if cfg.Batch <= 0 {
		return OnlineResult{}, fmt.Errorf("pipeline: non-positive batch %d", cfg.Batch)
	}
	if cfg.RatePerSec <= 0 {
		return OnlineResult{}, fmt.Errorf("pipeline: non-positive rate")
	}
	if cfg.HorizonSeconds <= 0 {
		cfg.HorizonSeconds = 30
	}
	if cfg.MeanInputPixels <= 0 {
		cfg.MeanInputPixels = 256 * 256
	}
	if cfg.SLOSeconds <= 0 {
		cfg.SLOSeconds = hw.QPS60LatencyMs / 1000
	}
	eng, err := engine.New(cfg.Platform, cfg.Model)
	if err != nil {
		return OnlineResult{}, err
	}
	eng.Pipeline = true
	st, err := eng.Infer(cfg.Batch)
	if err != nil {
		return OnlineResult{}, err
	}
	outRes := eng.Entry.Spec.InputSize
	inPixels := make([]int, cfg.Batch)
	for i := range inPixels {
		inPixels[i] = int(cfg.MeanInputPixels)
	}
	preprocSec := hw.GPUPreprocBatchSeconds(cfg.Platform, inPixels, outRes*outRes)
	transferSec := eng.Perf.TransferSeconds(int64(cfg.Batch) * int64(3*outRes*outRes) * 4)

	s := sim.New()
	pre := sim.NewResource(s, "preprocess", 1)
	cp := sim.NewResource(s, "copy", 1)
	gpu := sim.NewResource(s, "engine", 1)
	rng := stats.NewRNG(cfg.Seed)
	traceArr := workload.PoissonTrace(rng, cfg.RatePerSec, cfg.HorizonSeconds, cfg.Batch)
	slo := workload.NewSLOTracker(cfg.SLOSeconds)

	var latencies []float64
	served := 0
	for _, a := range traceArr {
		arrival := a.Time
		s.Schedule(arrival, func() {
			pre.Submit(preprocSec, func(_, _ float64) {
				cp.Submit(transferSec, func(_, _ float64) {
					gpu.Submit(st.Seconds, func(_, end float64) {
						if end > cfg.HorizonSeconds {
							return
						}
						lat := end - arrival
						latencies = append(latencies, lat)
						slo.Observe(lat)
						served++
					})
				})
			})
		})
	}
	s.Run()

	res := OnlineResult{
		Requests:          len(traceArr),
		Served:            served,
		Offered:           cfg.RatePerSec * float64(cfg.Batch),
		EngineUtilization: gpu.Utilization(cfg.HorizonSeconds),
	}
	if served > 0 {
		res.Goodput = float64(served*cfg.Batch) / cfg.HorizonSeconds
		res.MeanMs = stats.Mean(latencies) * 1000
		res.P95Ms = stats.Percentile(latencies, 95) * 1000
		res.P99Ms = stats.Percentile(latencies, 99) * 1000
		res.SLOMissRate = slo.MissRate()
	}
	return res, nil
}

// OnlineRateSweep runs the online scenario at increasing request rates
// and returns one result per rate — the saturation curve an operator
// uses to size a deployment.
func OnlineRateSweep(cfg OnlineConfig, rates []float64) ([]OnlineResult, error) {
	out := make([]OnlineResult, 0, len(rates))
	for _, r := range rates {
		c := cfg
		c.RatePerSec = r
		res, err := RunOnline(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
