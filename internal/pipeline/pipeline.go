// Package pipeline composes the full HARVEST inference path — dataset
// read, dataset-specific preprocessing, model-specific preprocessing,
// host-device transfer and engine inference — and evaluates its
// end-to-end latency and throughput with the discrete-event simulator,
// including the preprocessing/inference overlap that drives the
// paper's Fig. 8 results.
package pipeline

import (
	"fmt"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/sim"
	"harvest/internal/trace"
)

// Config selects one (platform, model, dataset) end-to-end combination.
type Config struct {
	Platform *hw.Platform
	Model    string
	Dataset  datasets.Spec

	// Batch is the request batch size; 0 selects the largest batch
	// before OOM capped at hw.EndToEndMaxBatch, the Fig. 8 policy.
	Batch int
	// Batches is how many batches to push through (default 32).
	Batches int
	// Overlap enables pipelined execution of preprocessing, transfer
	// and inference on their respective resources (default behaviour of
	// the HARVEST backend); when false, stages run strictly serially.
	Overlap bool
	// CPUPreproc switches preprocessing from the GPU (DALI-analogue)
	// engine to the modeled single-thread CPU path.
	CPUPreproc bool
	// HostCPUSecondsPerImage must be provided when CPUPreproc is set:
	// the measured single-thread host seconds per image for this
	// dataset (from a real internal/preprocess run).
	HostCPUSecondsPerImage float64
	// Trace, when non-nil, receives the simulated timeline (one span
	// per batch per stage) for Chrome trace export.
	Trace *trace.Recorder
}

// Result reports the end-to-end behaviour of the pipeline.
type Result struct {
	Batch int
	// LatencyMs is the mean per-batch end-to-end latency (preprocess
	// start to inference completion).
	LatencyMs float64
	// Throughput is total images divided by makespan.
	Throughput float64
	// Per-batch stage costs (seconds).
	PreprocSeconds  float64
	TransferSeconds float64
	InferSeconds    float64
	// Bottleneck names the stage with the largest per-batch cost.
	Bottleneck string
	// EngineBoundThroughput is the inference-only throughput at this
	// batch size — what Fig. 8 calls the model engine's upper bound.
	EngineBoundThroughput float64
}

// Run simulates the pipeline and returns its steady behaviour.
func Run(cfg Config) (Result, error) {
	if cfg.Platform == nil {
		return Result{}, fmt.Errorf("pipeline: nil platform")
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 32
	}
	eng, err := engine.New(cfg.Platform, cfg.Model)
	if err != nil {
		return Result{}, err
	}
	eng.Pipeline = true

	batch := cfg.Batch
	if batch == 0 {
		batch = eng.MaxBatch(hw.EndToEndMaxBatch)
		if batch == 0 {
			return Result{}, fmt.Errorf("pipeline: %s does not fit on %s with co-located preprocessing",
				cfg.Model, cfg.Platform.Name)
		}
	}
	inferStats, err := eng.Infer(batch)
	if err != nil {
		return Result{}, err
	}

	outRes := eng.Entry.Spec.InputSize
	meanPixels := cfg.Dataset.MeanPixels(256, 1)

	var preprocSec float64
	if cfg.CPUPreproc {
		if cfg.HostCPUSecondsPerImage <= 0 {
			return Result{}, fmt.Errorf("pipeline: CPUPreproc requires HostCPUSecondsPerImage")
		}
		preprocSec = hw.ScaleCPUSeconds(cfg.Platform, cfg.HostCPUSecondsPerImage) * float64(batch)
	} else {
		inPixels := make([]int, batch)
		for i := range inPixels {
			inPixels[i] = int(meanPixels)
		}
		preprocSec = hw.GPUPreprocBatchSeconds(cfg.Platform, inPixels, outRes*outRes)
	}

	// Host-to-device copy of the normalized fp32 batch.
	batchBytes := int64(batch) * int64(3*outRes*outRes) * 4
	transferSec := eng.Perf.TransferSeconds(batchBytes)

	res := Result{
		Batch:                 batch,
		PreprocSeconds:        preprocSec,
		TransferSeconds:       transferSec,
		InferSeconds:          inferStats.Seconds,
		EngineBoundThroughput: inferStats.ImgPerSec,
	}
	switch {
	case preprocSec >= inferStats.Seconds && preprocSec >= transferSec:
		res.Bottleneck = "preprocess"
	case inferStats.Seconds >= transferSec:
		res.Bottleneck = "inference"
	default:
		res.Bottleneck = "transfer"
	}

	// Discrete-event simulation of cfg.Batches batches through the
	// three stages.
	s := sim.New()
	pre := sim.NewResource(s, "preprocess", 1)
	cp := sim.NewResource(s, "copy", 1)
	gpu := sim.NewResource(s, "engine", 1)

	record := func(track, name string, start, end float64) {
		if cfg.Trace == nil {
			return
		}
		cfg.Trace.Add(trace.Span{Name: name, Track: track,
			Start: start, Duration: end - start})
	}
	latencies := make([]float64, 0, cfg.Batches)
	var makespan float64
	for i := 0; i < cfg.Batches; i++ {
		batchID := i
		submit := func() {
			// Latency is measured from the batch's actual
			// preprocessing start (service latency including pipeline
			// backpressure, excluding offline queueing of the whole
			// input set).
			pre.Submit(preprocSec, func(preStart, preEnd float64) {
				record("preprocess", fmt.Sprintf("batch %d", batchID), preStart, preEnd)
				cp.Submit(transferSec, func(cpStart, cpEnd float64) {
					record("transfer", fmt.Sprintf("batch %d", batchID), cpStart, cpEnd)
					gpu.Submit(inferStats.Seconds, func(gpuStart, gpuEnd float64) {
						record("engine", fmt.Sprintf("batch %d", batchID), gpuStart, gpuEnd)
						latencies = append(latencies, gpuEnd-preStart)
						if gpuEnd > makespan {
							makespan = gpuEnd
						}
					})
				})
			})
		}
		if cfg.Overlap {
			// All batches are available up front (offline scenario);
			// the resources pipeline them.
			submit()
		} else {
			// Strictly serial: batch i+1 starts when batch i finishes.
			delay := float64(i) * (preprocSec + transferSec + inferStats.Seconds)
			s.Schedule(delay, submit)
		}
	}
	s.Run()

	var sum float64
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		res.LatencyMs = sum / float64(len(latencies)) * 1000
	}
	if makespan > 0 {
		res.Throughput = float64(batch*cfg.Batches) / makespan
	}
	return res, nil
}

// Sequential returns the result with Overlap disabled, for the
// overlap-on/off ablation.
func Sequential(cfg Config) (Result, error) {
	cfg.Overlap = false
	return Run(cfg)
}

// Overlapped returns the result with Overlap enabled.
func Overlapped(cfg Config) (Result, error) {
	cfg.Overlap = true
	return Run(cfg)
}
