// Package quant implements the reduced-precision numeric formats the
// paper's inference engines rely on: IEEE-754 half precision (FP16),
// bfloat16 (BF16), and INT8 affine quantization. The paper runs its
// engines in FP16 (V100, Jetson) and BF16 (A100); this package provides
// real software conversions so precision effects can be measured rather
// than assumed.
package quant

import "math"

// Float16 is an IEEE-754 binary16 value stored in a uint16.
type Float16 uint16

// FromFloat32 converts a float32 to half precision with
// round-to-nearest-even, handling subnormals, infinities and NaN.
func FromFloat32(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF

	switch {
	case int32(bits>>23&0xFF) == 0xFF: // Inf / NaN
		if mant != 0 {
			return Float16(sign | 0x7E00) // quiet NaN
		}
		return Float16(sign | 0x7C00)
	case exp >= 0x1F: // overflow -> Inf
		return Float16(sign | 0x7C00)
	case exp <= 0: // subnormal or underflow
		if exp < -10 {
			return Float16(sign) // underflow to signed zero
		}
		mant |= 0x800000 // restore implicit bit
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// round to nearest even
		if rounded&((half<<1)-1) == half && mant&(1<<shift) == 0 {
			rounded = mant
		}
		return Float16(sign | uint16(rounded>>shift))
	default:
		// normal: round mantissa from 23 to 10 bits, nearest-even.
		roundBit := uint32(1) << 12
		rounded := mant + (roundBit - 1) + (mant >> 13 & 1)
		if rounded&0x800000 != 0 { // mantissa overflowed into exponent
			rounded = 0
			exp++
			if exp >= 0x1F {
				return Float16(sign | 0x7C00)
			}
		}
		return Float16(sign | uint16(exp)<<10 | uint16(rounded>>13)&0x3FF)
	}
}

// Float32 converts the half-precision value back to float32 exactly.
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// BFloat16 is a bfloat16 value (truncated float32) stored in a uint16.
type BFloat16 uint16

// BF16FromFloat32 converts with round-to-nearest-even on the dropped
// 16 mantissa bits, matching hardware behaviour on A100.
func BF16FromFloat32(f float32) BFloat16 {
	bits := math.Float32bits(f)
	if bits&0x7FFFFFFF > 0x7F800000 { // NaN: keep quiet
		return BFloat16(bits>>16 | 0x0040)
	}
	rounded := bits + 0x7FFF + (bits >> 16 & 1)
	return BFloat16(rounded >> 16)
}

// Float32 converts the bfloat16 back to float32 exactly.
func (b BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// RoundTripF16 converts a slice through FP16 and back, in place,
// simulating execution of a tensor in half precision.
func RoundTripF16(xs []float32) {
	for i, x := range xs {
		xs[i] = FromFloat32(x).Float32()
	}
}

// RoundTripBF16 converts a slice through BF16 and back, in place.
func RoundTripBF16(xs []float32) {
	for i, x := range xs {
		xs[i] = BF16FromFloat32(x).Float32()
	}
}
