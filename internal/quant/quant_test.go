package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat16KnownEncodings(t *testing.T) {
	cases := []struct {
		f    float32
		bits Float16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},        // max normal half
		{5.9604645e-8, 0x0001}, // smallest subnormal
		{6.1035156e-5, 0x0400}, // smallest normal
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, uint16(got), uint16(c.bits))
		}
	}
}

func TestFloat16RoundTripExact(t *testing.T) {
	// All half-precision values must round-trip exactly.
	vals := []float32{0, -0, 1, -1, 0.5, 0.25, 1.5, 2048, 65504, 6.1035156e-5, 5.9604645e-8}
	for _, v := range vals {
		h := FromFloat32(v)
		back := h.Float32()
		if back != v {
			t.Errorf("round trip %v -> %#04x -> %v", v, uint16(h), back)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if got := FromFloat32(1e6); got != 0x7C00 {
		t.Errorf("overflow = %#04x, want +Inf (0x7C00)", uint16(got))
	}
	if got := FromFloat32(-1e6); got != 0xFC00 {
		t.Errorf("negative overflow = %#04x, want -Inf", uint16(got))
	}
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("underflow = %#04x, want 0", uint16(got))
	}
}

func TestFloat16NaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !math.IsNaN(float64(h.Float32())) {
		t.Error("NaN did not survive fp16 round trip")
	}
}

func TestFloat16RelativeErrorBound(t *testing.T) {
	// Property: for normal-range inputs, round trip error <= 2^-11
	// relative (half has 10 mantissa bits + round-to-nearest).
	f := func(raw float32) bool {
		x := raw
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		ax := math.Abs(float64(x))
		if ax > 60000 || (ax < 6.2e-5 && ax != 0) {
			return true // outside half's normal range
		}
		back := float64(FromFloat32(x).Float32())
		if x == 0 {
			return back == 0
		}
		return math.Abs(back-float64(x)) <= math.Abs(float64(x))*(1.0/2048)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloat16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next half value
	// 1+2^-10; nearest-even rounds down to 1.0.
	x := float32(1 + 1.0/2048)
	if got := FromFloat32(x); got != 0x3C00 {
		t.Errorf("halfway case rounded to %#04x, want 0x3C00", uint16(got))
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is
	// 1+2^-9 (mantissa 0b10).
	y := float32(1 + 3.0/2048)
	if got := FromFloat32(y); got != 0x3C02 {
		t.Errorf("halfway case rounded to %#04x, want 0x3C02", uint16(got))
	}
}

func TestBF16KnownAndRoundTrip(t *testing.T) {
	if got := BF16FromFloat32(1); got.Float32() != 1 {
		t.Errorf("bf16(1) -> %v", got.Float32())
	}
	if got := BF16FromFloat32(-2.5); got.Float32() != -2.5 {
		t.Errorf("bf16(-2.5) -> %v", got.Float32())
	}
	// BF16 keeps float32's exponent range: no overflow at 1e38.
	if got := BF16FromFloat32(1e38); math.IsInf(float64(got.Float32()), 0) {
		t.Error("bf16 overflowed inside float32 range")
	}
	if !math.IsNaN(float64(BF16FromFloat32(float32(math.NaN())).Float32())) {
		t.Error("bf16 NaN lost")
	}
}

func TestBF16RelativeErrorBound(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		if math.Abs(float64(x)) > 3.38e38 {
			// Near float32 max, round-to-nearest legitimately
			// overflows bf16 to infinity (hardware does the same).
			return true
		}
		back := float64(BF16FromFloat32(x).Float32())
		if x == 0 {
			return back == 0
		}
		// 7 mantissa bits -> 2^-8 relative with rounding.
		return math.Abs(back-float64(x)) <= math.Abs(float64(x))/256+1e-45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripSlices(t *testing.T) {
	xs := []float32{0, 1, -3.75, 100.25}
	f16 := append([]float32(nil), xs...)
	RoundTripF16(f16)
	bf := append([]float32(nil), xs...)
	RoundTripBF16(bf)
	for i := range xs {
		if math.Abs(float64(f16[i]-xs[i])) > math.Abs(float64(xs[i]))/1024 {
			t.Errorf("fp16 slice round trip too lossy at %d: %v -> %v", i, xs[i], f16[i])
		}
		if math.Abs(float64(bf[i]-xs[i])) > math.Abs(float64(xs[i]))/128 {
			t.Errorf("bf16 slice round trip too lossy at %d: %v -> %v", i, xs[i], bf[i])
		}
	}
}

func TestCalibrateInt8Errors(t *testing.T) {
	if _, err := CalibrateInt8(nil); err == nil {
		t.Error("calibrating empty tensor should fail")
	}
}

func TestInt8RoundTripBound(t *testing.T) {
	xs := []float32{-1, -0.5, 0, 0.25, 0.9, 1.2}
	p, err := CalibrateInt8(xs)
	if err != nil {
		t.Fatal(err)
	}
	qs := p.Quantize(xs)
	back := p.Dequantize(qs)
	for i := range xs {
		if math.Abs(float64(back[i]-xs[i])) > float64(p.MaxError())+1e-6 {
			t.Errorf("int8 error at %d: %v -> %v (max %v)", i, xs[i], back[i], p.MaxError())
		}
	}
}

func TestInt8ZeroExact(t *testing.T) {
	// Zero must be exactly representable (padding/ReLU preservation).
	xs := []float32{0.1, 0.9, 3.3}
	p, err := CalibrateInt8(xs)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Quantize([]float32{0})
	back := p.Dequantize(q)
	if math.Abs(float64(back[0])) > 1e-6 {
		t.Errorf("zero reconstructed as %v", back[0])
	}
}

func TestInt8ConstantTensor(t *testing.T) {
	p, err := CalibrateInt8([]float32{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	back := p.Dequantize(p.Quantize([]float32{5}))
	if math.Abs(float64(back[0]-5)) > float64(p.MaxError())+1e-6 {
		t.Errorf("constant tensor reconstructed as %v", back[0])
	}
}

func TestInt8QuickBound(t *testing.T) {
	f := func(raw []float32) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p, err := CalibrateInt8(xs)
		if err != nil {
			return false
		}
		back := p.Dequantize(p.Quantize(xs))
		for i := range xs {
			if math.Abs(float64(back[i]-xs[i])) > float64(p.MaxError())*1.01+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBytesPerValue(t *testing.T) {
	cases := map[string]int{"fp32": 4, "fp16": 2, "bf16": 2, "int8": 1}
	for name, want := range cases {
		got, err := BytesPerValue(name)
		if err != nil || got != want {
			t.Errorf("BytesPerValue(%s) = %d, %v", name, got, err)
		}
	}
	if _, err := BytesPerValue("fp8"); err == nil {
		t.Error("unknown precision should error")
	}
}
