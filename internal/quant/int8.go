package quant

import (
	"fmt"
	"math"
)

// Int8Params holds the affine quantization parameters q = round(x/Scale)
// + ZeroPoint for symmetric or asymmetric INT8 quantization.
type Int8Params struct {
	Scale     float32
	ZeroPoint int32
}

// CalibrateInt8 derives asymmetric quantization parameters that map
// [min(xs), max(xs)] onto [-128, 127].
func CalibrateInt8(xs []float32) (Int8Params, error) {
	if len(xs) == 0 {
		return Int8Params{}, fmt.Errorf("quant: calibrating empty tensor")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	// Always include zero in the representable range so that padding
	// and ReLU zeros survive quantization exactly.
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		// All-zero (constant inputs always span zero after the clamp
		// above, so hi==lo implies everything is 0): any scale maps 0
		// to code 0 exactly; use 1 so Quantize/Dequantize stay
		// division-safe and round-trip to exact zeros.
		return Int8Params{Scale: 1}, nil
	}
	scale := (hi - lo) / 255
	zp := int32(math.Round(float64(-128 - lo/scale)))
	if zp < -128 {
		zp = -128
	}
	if zp > 127 {
		zp = 127
	}
	return Int8Params{Scale: scale, ZeroPoint: zp}, nil
}

// Quantize converts xs into int8 codes.
func (p Int8Params) Quantize(xs []float32) []int8 {
	out := make([]int8, len(xs))
	p.QuantizeInto(out, xs)
	return out
}

// QuantizeInto writes the int8 codes of xs into dst without allocating;
// dst must hold len(xs) values. This is the variant the executable
// quantized forward path uses on its pooled buffers.
func (p Int8Params) QuantizeInto(dst []int8, xs []float32) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("quant: QuantizeInto dst holds %d codes, want %d", len(dst), len(xs)))
	}
	for i, x := range xs {
		q := math.Round(float64(x/p.Scale)) + float64(p.ZeroPoint)
		if q < -128 {
			q = -128
		}
		if q > 127 {
			q = 127
		}
		dst[i] = int8(q)
	}
}

// Dequantize reconstructs approximate float32 values.
func (p Int8Params) Dequantize(qs []int8) []float32 {
	out := make([]float32, len(qs))
	p.DequantizeInto(out, qs)
	return out
}

// DequantizeInto reconstructs values into dst without allocating; dst
// must hold len(qs) values.
func (p Int8Params) DequantizeInto(dst []float32, qs []int8) {
	if len(dst) < len(qs) {
		panic(fmt.Sprintf("quant: DequantizeInto dst holds %d values, want %d", len(dst), len(qs)))
	}
	for i, q := range qs {
		dst[i] = float32(int32(q)-p.ZeroPoint) * p.Scale
	}
}

// MaxError returns the worst-case reconstruction error of the
// quantization grid, i.e. half the scale step.
func (p Int8Params) MaxError() float32 { return p.Scale / 2 }

// BytesPerValue reports storage cost per element for a precision name,
// used by the memory model. Recognized: fp32, fp16, bf16, int8.
func BytesPerValue(precision string) (int, error) {
	switch precision {
	case "fp32":
		return 4, nil
	case "fp16", "bf16":
		return 2, nil
	case "int8":
		return 1, nil
	}
	return 0, fmt.Errorf("quant: unknown precision %q", precision)
}
