package quant

import (
	"fmt"
	"math"
)

// 7-bit quantization for the SWAR integer GEMM in internal/tensor.
//
// The packed kernel multiplies four code pairs per 64-bit multiply by
// placing codes in 16-bit fields; keeping every code in [0, 127] bounds
// each partial sum of ≤4 products below 2^16 so fields never carry into
// their neighbours. Activations use asymmetric unsigned 7-bit codes
// (per-row scale + zero point); weights use symmetric signed 7-bit
// codes in [-63, 63] (per output channel), stored biased by +64 into
// [1, 127] at pack time. Restricting weights to 7 bits to keep a packed
// multiply exact is the same trade x86 int8 kernels make for
// pmaddubsw saturation (e.g. onnxruntime's reduce_range mode).

// Q7Params maps x to unsigned 7-bit codes q = clamp(round(x/Scale) +
// ZeroPoint, 0, 127).
type Q7Params struct {
	Scale     float32
	ZeroPoint int32
}

// CalibrateQ7 derives asymmetric parameters mapping [min(xs), max(xs)]
// (widened to include zero, so padding and ReLU zeros are exact) onto
// [0, 127]. A constant slice spans zero after widening, so the
// degenerate hi==lo case means all-zero input: Scale 1 / ZeroPoint 0
// keeps quantization division-safe and round-trips zeros exactly.
func CalibrateQ7(xs []float32) (Q7Params, error) {
	if len(xs) == 0 {
		return Q7Params{}, fmt.Errorf("quant: calibrating empty tensor")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return Q7Params{Scale: 1}, nil
	}
	scale := (hi - lo) / 127
	zp := int32(math.Round(float64(-lo / scale)))
	if zp < 0 {
		zp = 0
	}
	if zp > 127 {
		zp = 127
	}
	return Q7Params{Scale: scale, ZeroPoint: zp}, nil
}

// QuantizeInto writes the unsigned 7-bit codes of xs into dst without
// allocating; dst must hold len(xs) values.
func (p Q7Params) QuantizeInto(dst []uint8, xs []float32) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("quant: Q7 QuantizeInto dst holds %d codes, want %d", len(dst), len(xs)))
	}
	for i, x := range xs {
		q := math.Round(float64(x/p.Scale)) + float64(p.ZeroPoint)
		if q < 0 {
			q = 0
		}
		if q > 127 {
			q = 127
		}
		dst[i] = uint8(q)
	}
}

// Dequantize reconstructs the value of a single code.
func (p Q7Params) Dequantize(q uint8) float32 {
	return float32(int32(q)-p.ZeroPoint) * p.Scale
}

// CalibrateQ7Sym returns the symmetric scale mapping [-maxAbs, maxAbs]
// onto [-63, 63] for a weight channel. An all-zero channel yields scale
// 1 (codes are all zero either way).
func CalibrateQ7Sym(xs []float32) float32 {
	var maxAbs float32
	for _, x := range xs {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 63
}

// QuantizeQ7SymInto writes symmetric signed 7-bit codes q =
// clamp(round(x/scale), -63, 63) into dst; dst must hold len(xs)
// values.
func QuantizeQ7SymInto(dst []int8, xs []float32, scale float32) {
	if len(dst) < len(xs) {
		panic(fmt.Sprintf("quant: Q7 sym QuantizeInto dst holds %d codes, want %d", len(dst), len(xs)))
	}
	for i, x := range xs {
		q := math.Round(float64(x / scale))
		if q < -63 {
			q = -63
		}
		if q > 63 {
			q = 63
		}
		dst[i] = int8(q)
	}
}
