// Package tensor implements dense float32 tensors and the numeric
// kernels (GEMM, convolution, attention primitives) needed to execute
// real forward passes of the paper's vision models on the CPU.
//
// The kernels are written for clarity first and cache behaviour second:
// GEMM is blocked and parallelized across goroutines, convolution uses
// im2col + GEMM. They serve two purposes in this repository: (1) a
// functional backend so model outputs and shapes can be validated for
// real, and (2) the host-side GEMM microbenchmark behind the "practical
// FLOPS" methodology of Table 1.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape. The slice is not copied.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d != shape product %d", len(data), n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// NumDims returns the rank.
func (t *Tensor) NumDims() int { return len(t.Shape) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape; the element count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size", t.Shape, shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", ix, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Rand64 is the minimal randomness source the tensor package needs to
// initialize weights; *stats.RNG satisfies it.
type Rand64 interface {
	Float64() float64
}

// RandInit fills the tensor with values uniform in [-scale, scale].
func (t *Tensor) RandInit(r Rand64, scale float64) {
	for i := range t.Data {
		t.Data[i] = float32((r.Float64()*2 - 1) * scale)
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b, which must have identical shapes.
func MaxAbsDiff(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: MaxAbsDiff on different sizes")
	}
	m := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of a vector.
func ArgMax(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
		_ = i
	}
	return best
}
