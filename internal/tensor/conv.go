package tensor

// Conv2D computes a 2-D convolution of input x (N,C,H,W) with weights
// w (OutC, C, KH, KW) and optional bias (OutC), using im2col + GEMM.
// Output is (N, OutC, OH, OW) with OH = (H + 2*pad - KH)/stride + 1.
func Conv2D(x, w, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, inC, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if inC != c {
		panic(shapeErrf("Conv2D channel mismatch: input has %d channels, weights expect %d", c, inC))
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(shapeErrf("Conv2D produces empty output for input %v, kernel %v", x.Shape, w.Shape))
	}
	out := New(n, outC, oh, ow)
	cols := New(c*kh*kw, oh*ow)
	wmat := w.Reshape(outC, c*kh*kw)
	for b := 0; b < n; b++ {
		im2col(x, b, cols, kh, kw, stride, pad, oh, ow)
		// out[b] = wmat (outC x ckk) * cols (ckk x ohow)
		dst := out.Data[b*outC*oh*ow : (b+1)*outC*oh*ow]
		for i := range dst {
			dst[i] = 0
		}
		GemmInto(dst, wmat.Data, cols.Data, outC, oh*ow, c*kh*kw)
		if bias != nil {
			for oc := 0; oc < outC; oc++ {
				bval := bias.Data[oc]
				plane := dst[oc*oh*ow : (oc+1)*oh*ow]
				for i := range plane {
					plane[i] += bval
				}
			}
		}
	}
	return out
}

// im2col unrolls image b of x into cols (C*KH*KW x OH*OW).
func im2col(x *Tensor, b int, cols *Tensor, kh, kw, stride, pad, oh, ow int) {
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	colW := oh * ow
	for ch := 0; ch < c; ch++ {
		src := x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := cols.Data[((ch*kh+ky)*kw+kx)*colW : ((ch*kh+ky)*kw+kx+1)*colW]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = src[iy*w+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Im2ColTransInto unrolls image b of the NCHW tensor x into dst laid
// out *transposed* relative to im2col: (OH*OW x C*KH*KW), one receptive
// field per row. This is the layout the quantized and half-precision
// conv paths want — each output pixel becomes a contiguous k-vector
// that can be row-quantized and multiplied against (OutC x C*KH*KW)
// weights with the TransB kernels. dst must hold oh*ow*c*kh*kw values.
func Im2ColTransInto(dst []float32, x *Tensor, b, kh, kw, stride, pad, oh, ow int) {
	c, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	ckk := c * kh * kw
	if len(dst) < oh*ow*ckk {
		panic(shapeErrf("Im2ColTransInto dst holds %d values, want %d", len(dst), oh*ow*ckk))
	}
	for ch := 0; ch < c; ch++ {
		src := x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				col := (ch*kh+ky)*kw + kx
				p := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[p*ckk+col] = 0
							p++
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[p*ckk+col] = 0
						} else {
							dst[p*ckk+col] = src[iy*w+ix]
						}
						p++
					}
				}
			}
		}
	}
}

// MaxPool2D applies max pooling with square kernel k and the given
// stride to an NCHW tensor.
func MaxPool2D(x *Tensor, k, stride, pad int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*pad-k)/stride + 1
	ow := (w+2*pad-k)/stride + 1
	out := New(n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			dst := out.Data[(b*c+ch)*oh*ow : (b*c+ch+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(-3.4e38)
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							if v := src[iy*w+ix]; v > best {
								best = v
							}
						}
					}
					dst[oy*ow+ox] = best
				}
			}
		}
	}
	return out
}

// GlobalAvgPool2D reduces an NCHW tensor to (N, C) by averaging each
// spatial plane.
func GlobalAvgPool2D(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c)
	plane := h * w
	inv := float32(1 / float64(plane))
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(b*c+ch)*plane : (b*c+ch+1)*plane]
			var acc float32
			for _, v := range src {
				acc += v
			}
			out.Data[b*c+ch] = acc * inv
		}
	}
	return out
}
