package tensor

import "math"

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// ReLU applies max(0, x) in place.
func ReLU(t *Tensor) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// GELU applies the Gaussian error linear unit (tanh approximation, as
// used by ViT) in place.
func GELU(t *Tensor) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.Data {
		x := float64(v)
		t.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// SoftmaxRows applies a numerically-stable softmax to each row of a 2-D
// tensor in place.
func SoftmaxRows(t *Tensor) {
	if len(t.Shape) != 2 {
		panic("tensor: SoftmaxRows needs a 2-D tensor")
	}
	n := t.Shape[1]
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : i*n+n]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// LayerNorm normalizes each row of a 2-D tensor to zero mean / unit
// variance and applies the affine parameters gamma and beta (len = row
// width). eps guards the variance.
func LayerNorm(t, gamma, beta *Tensor, eps float32) {
	if len(t.Shape) != 2 {
		panic("tensor: LayerNorm needs a 2-D tensor")
	}
	n := t.Shape[1]
	for i := 0; i < t.Shape[0]; i++ {
		row := t.Data[i*n : i*n+n]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(n)
		var varacc float64
		for _, v := range row {
			d := float64(v) - mean
			varacc += d * d
		}
		varacc /= float64(n)
		inv := float32(1 / math.Sqrt(varacc+float64(eps)))
		for j := range row {
			row[j] = (row[j]-float32(mean))*inv*gamma.Data[j] + beta.Data[j]
		}
	}
}

// BatchNormInference applies per-channel y = (x-mean)/sqrt(var+eps) *
// gamma + beta to an NCHW tensor, folding the statistics as TensorRT
// would at engine build time.
func BatchNormInference(t *Tensor, mean, variance, gamma, beta []float32, eps float32) {
	if len(t.Shape) != 4 {
		panic("tensor: BatchNormInference needs NCHW")
	}
	nBatch, c, h, w := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	plane := h * w
	for b := 0; b < nBatch; b++ {
		for ch := 0; ch < c; ch++ {
			inv := float32(1 / math.Sqrt(float64(variance[ch])+float64(eps)))
			scale := gamma[ch] * inv
			shift := beta[ch] - mean[ch]*scale
			base := (b*c + ch) * plane
			px := t.Data[base : base+plane]
			for i := range px {
				px[i] = px[i]*scale + shift
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose2D needs a 2-D tensor")
	}
	m, n := t.Shape[0], t.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// Attention computes single-head scaled dot product attention for
// q, k, v of shape (seq x dim) and returns (seq x dim).
func Attention(q, k, v *Tensor) *Tensor {
	dim := q.Shape[1]
	scores := MatMulTransB(q, k) // (seq x seq)
	scores.Scale(float32(1 / math.Sqrt(float64(dim))))
	SoftmaxRows(scores)
	return MatMul(scores, v)
}

// MeanRows returns the column-wise mean over rows of a 2-D tensor,
// producing a (1 x n) tensor; used for pooled classifier heads.
func MeanRows(t *Tensor) *Tensor {
	m, n := t.Shape[0], t.Shape[1]
	out := New(1, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += t.Data[i*n+j]
		}
	}
	inv := float32(1 / float64(m))
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}
