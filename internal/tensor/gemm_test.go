package tensor

import (
	"testing"
	"testing/quick"

	"harvest/internal/stats"
)

func randTensor(r *stats.RNG, shape ...int) *Tensor {
	x := New(shape...)
	x.RandInit(r, 1)
	return x
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := stats.NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 65, 17}, {128, 64, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		want := MatMulNaive(a, b)
		got := MatMul(a, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Errorf("MatMul(%dx%dx%d) deviates from naive by %v", m, k, n, d)
		}
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	r := stats.NewRNG(2)
	for _, dims := range [][3]int{{3, 4, 5}, {17, 33, 9}, {64, 48, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(r, m, k)
		bt := randTensor(r, n, k)
		b := Transpose2D(bt)
		want := MatMulNaive(a, b)
		got := MatMulTransB(a, bt)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Errorf("MatMulTransB(%dx%dx%d) deviates by %v", m, k, n, d)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := stats.NewRNG(3)
	a := randTensor(r, 8, 8)
	id := New(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(1, i, i)
	}
	if d := MaxAbsDiff(MatMul(a, id), a); d > 1e-6 {
		t.Errorf("A*I differs from A by %v", d)
	}
	if d := MaxAbsDiff(MatMul(id, a), a); d > 1e-6 {
		t.Errorf("I*A differs from A by %v", d)
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulDistributivity(t *testing.T) {
	// Property: A*(B+C) == A*B + A*C within float tolerance.
	r := stats.NewRNG(4)
	f := func(seed uint16) bool {
		rr := stats.NewRNG(uint64(seed))
		m, k, n := 2+rr.Intn(10), 2+rr.Intn(10), 2+rr.Intn(10)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		c := randTensor(r, k, n)
		bc := b.Clone()
		AddInPlace(bc, c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		AddInPlace(right, MatMul(a, c))
		return MaxAbsDiff(left, right) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinearBias(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 1, 2)
	w := FromSlice([]float32{3, 4, 5, 6}, 2, 2) // rows = output features
	bias := FromSlice([]float32{10, 20}, 2)
	y := Linear(x, w, bias)
	// y0 = 1*3+2*4+10 = 21; y1 = 1*5+2*6+20 = 37
	if y.At(0, 0) != 21 || y.At(0, 1) != 37 {
		t.Errorf("Linear = %v, want [21 37]", y.Data)
	}
	// Without bias.
	y2 := Linear(x, w, nil)
	if y2.At(0, 0) != 11 || y2.At(0, 1) != 17 {
		t.Errorf("Linear no-bias = %v, want [11 17]", y2.Data)
	}
}

func TestGemmIntoAccumulates(t *testing.T) {
	a := []float32{1, 0, 0, 1} // 2x2 identity
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	GemmInto(c, a, b, 2, 2, 2)
	want := []float32{6, 7, 8, 9}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("GemmInto accumulate wrong: %v, want %v", c, want)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := stats.NewRNG(1)
	x := randTensor(r, 256, 256)
	y := randTensor(r, 256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
