package tensor

import (
	"testing"
	"testing/quick"

	"harvest/internal/stats"
)

// TestConv2DLinearity checks conv(x+y) == conv(x) + conv(y) for random
// small shapes — convolution is linear in its input.
func TestConv2DLinearity(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		c := 1 + r.Intn(3)
		h := 4 + r.Intn(6)
		wd := 4 + r.Intn(6)
		oc := 1 + r.Intn(4)
		k := 1 + 2*r.Intn(2) // 1 or 3
		x := randTensor(r, 1, c, h, wd)
		y := randTensor(r, 1, c, h, wd)
		w := randTensor(r, oc, c, k, k)
		sum := x.Clone()
		AddInPlace(sum, y)
		left := Conv2D(sum, w, nil, 1, k/2)
		right := Conv2D(x, w, nil, 1, k/2)
		AddInPlace(right, Conv2D(y, w, nil, 1, k/2))
		return MaxAbsDiff(left, right) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConv2DShapeFormula checks the output shape against the standard
// formula for random configurations.
func TestConv2DShapeFormula(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		h := 6 + r.Intn(10)
		wd := 6 + r.Intn(10)
		k := 1 + r.Intn(4)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if h+2*pad < k || wd+2*pad < k {
			return true
		}
		x := New(1, 2, h, wd)
		w := New(3, 2, k, k)
		out := Conv2D(x, w, nil, stride, pad)
		wantH := (h+2*pad-k)/stride + 1
		wantW := (wd+2*pad-k)/stride + 1
		return out.Shape[2] == wantH && out.Shape[3] == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMaxPoolDominatesAvg checks max pooling >= global average for any
// input (max of a set is at least its mean).
func TestMaxPoolDominatesAvg(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		x := randTensor(r, 1, 1, 8, 8)
		pooled := MaxPool2D(x, 8, 8, 0) // one output: global max
		avg := GlobalAvgPool2D(x)
		return pooled.Data[0] >= avg.Data[0]-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
