package tensor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrShape is the typed error wrapped by every shape-mismatch failure in
// this package. Kernel entry points panic with an error value satisfying
// errors.Is(err, ErrShape); API boundaries (engine.InferTensors) recover
// those panics and surface them as ordinary errors so a malformed model
// cannot crash a serving replica.
var ErrShape = errors.New("tensor: shape mismatch")

// shapeErrf builds an ErrShape-wrapping error for panic values.
func shapeErrf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrShape}, args...)...)
}

// Cache-blocking parameters of the packed GEMM, BLIS-style. The kernel
// computes C += A·B by tiling into MC×KC panels of A and KC×NC panels of
// B, packing each panel into contiguous micro-strips, and running an
// MR×NR register micro-kernel over the packed data. Sizes target the
// common x86 hierarchy: a KC×NR B strip (4 KiB) and an MC... the packed
// A block (MC·KC·4 = 128 KiB) live in L1/L2, the packed B panel
// (KC·NC·4 = 512 KiB) in L2.
const (
	gemmMR = 2   // micro-kernel rows
	gemmNR = 4   // micro-kernel columns
	gemmKC = 256 // K blocking (panel depth)
	gemmMC = 128 // M blocking (rows per packed A block)
	gemmNC = 512 // N blocking (columns per packed B panel)

	// gemmMinMACsPerBand is the smallest amount of work (multiply-
	// accumulates) worth a goroutine of its own; products below it run
	// serially and bands are never split finer than this.
	gemmMinMACsPerBand = 1 << 16
)

// Pack-buffer pools, one buffer class per panel kind. Buffers are sized
// for the largest block so every Get can be used for any edge block.
var (
	packAPool = sync.Pool{New: func() any {
		s := make([]float32, gemmMC*gemmKC)
		return &s
	}}
	packBPool = sync.Pool{New: func() any {
		s := make([]float32, gemmKC*gemmNC)
		return &s
	}}
)

// packBFunc fills dst with the packed KC×NC panel of B starting at
// (kOff, nOff), laid out in NR-column strips with zero padding to a
// strip multiple. Implementations exist for row-major B (k×n),
// transposed B (n×k) and half-precision transposed B.
type packBFunc func(dst []float32, kOff, kc, nOff, nc int)

// MatMulNaive computes C = A(MxK) * B(KxN) with the textbook triple
// loop. It is the reference implementation the optimized kernels are
// tested against, and the baseline of the achieved-vs-practical GFLOPS
// methodology in EXPERIMENTS.md.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(shapeErrf("MatMul inner dimension mismatch: %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = acc
		}
	}
	return c
}

// MatMul computes C = A(MxK) * B(KxN) with the packed blocked-parallel
// kernel.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(shapeErrf("MatMul inner dimension mismatch: %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	GemmInto(c.Data, a.Data, b.Data, m, n, k)
	return c
}

// GemmInto computes c += a*b on raw slices (c is assumed zeroed or to be
// accumulated into), with a (m x k), b (k x n), c (m x n), row-major.
func GemmInto(c, a, b []float32, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	packB := func(dst []float32, kOff, kc, nOff, nc int) {
		packBRowMajor(dst, b, n, kOff, kc, nOff, nc)
	}
	gemmParallel(c, a, m, n, k, gemmWorkers(m, n, k), packB)
}

// GemmTransBInto computes c += a*bᵀ with a (m x k), b (n x k), c
// (m x n), all row-major. This is the natural layout for linear layers
// whose weights are stored (out_features x in_features).
func GemmTransBInto(c, a, b []float32, m, n, k int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	packB := func(dst []float32, kOff, kc, nOff, nc int) {
		packBTransposed(dst, b, k, kOff, kc, nOff, nc)
	}
	gemmParallel(c, a, m, n, k, gemmWorkers(m, n, k), packB)
}

// gemmWorkers picks the goroutine count for an m×n×k product: at most
// GOMAXPROCS, at most one band per row, and never so many that a band
// falls under gemmMinMACsPerBand multiply-accumulates. Sizing by flops
// rather than rows keeps skinny products (small m, huge n·k) parallel
// and keeps tiny products serial.
func gemmWorkers(m, n, k int) int {
	return gemmWorkersFor(m, n, k, runtime.GOMAXPROCS(0))
}

func gemmWorkersFor(m, n, k, procs int) int {
	macs := int64(m) * int64(n) * int64(k)
	w := int(macs / gemmMinMACsPerBand)
	if w > procs {
		w = procs
	}
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gemmParallel splits the M dimension into w contiguous row bands of
// near-equal size (the first m%w bands take one extra row, so no band is
// ever empty — including m < w, where w is clamped to m) and runs the
// packed kernel over each band concurrently.
func gemmParallel(c, a []float32, m, n, k, w int, packB packBFunc) {
	if w <= 1 {
		gemmBand(c, a, 0, m, n, k, packB)
		return
	}
	var wg sync.WaitGroup
	base, rem := m/w, m%w
	lo := 0
	for i := 0; i < w; i++ {
		rows := base
		if i < rem {
			rows++
		}
		hi := lo + rows
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmBand(c, a, lo, hi, n, k, packB)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// gemmBand computes rows [rowLo,rowHi) of c += a·B through the blocked
// packed pipeline: for each KC×NC panel of B (packed once per band via
// packB) pack the matching MC×KC block of A into MR strips and sweep the
// MR×NR micro-kernel over the packed panels. Each band owns its pack
// buffers (taken from pools), so bands share nothing but the inputs.
func gemmBand(c, a []float32, rowLo, rowHi, n, k int, packB packBFunc) {
	paPtr := packAPool.Get().(*[]float32)
	pbPtr := packBPool.Get().(*[]float32)
	defer packAPool.Put(paPtr)
	defer packBPool.Put(pbPtr)
	pa, pb := *paPtr, *pbPtr

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(pb, pc, kc, jc, nc)
			for ic := rowLo; ic < rowHi; ic += gemmMC {
				mc := min(gemmMC, rowHi-ic)
				packARows(pa, a, k, ic, mc, pc, kc)
				for jr := 0; jr < nc; jr += gemmNR {
					nr := min(gemmNR, nc-jr)
					bs := pb[(jr/gemmNR)*(kc*gemmNR):]
					for ir := 0; ir < mc; ir += gemmMR {
						mr := min(gemmMR, mc-ir)
						as := pa[(ir/gemmMR)*(kc*gemmMR):]
						micro2x4(as, bs, kc, c[(ic+ir)*n+jc+jr:], n, mr, nr)
					}
				}
			}
		}
	}
}

// packARows packs the mc×kc block of a starting at (rowOff, kOff) into
// MR-row strips: strip s holds rows [rowOff+s·MR, rowOff+s·MR+MR) laid
// out k-major (for each k, the MR row values adjacent), zero-padded when
// mc is not a strip multiple.
func packARows(dst, a []float32, lda, rowOff, mc, kOff, kc int) {
	di := 0
	for i0 := 0; i0 < mc; i0 += gemmMR {
		r0 := a[(rowOff+i0)*lda+kOff:]
		if i0+1 < mc {
			r1 := a[(rowOff+i0+1)*lda+kOff:]
			for p := 0; p < kc; p++ {
				dst[di] = r0[p]
				dst[di+1] = r1[p]
				di += 2
			}
		} else {
			for p := 0; p < kc; p++ {
				dst[di] = r0[p]
				dst[di+1] = 0
				di += 2
			}
		}
	}
}

// packBRowMajor packs the kc×nc panel of row-major b (ldb = n) starting
// at (kOff, nOff) into NR-column strips, zero-padded to a strip
// multiple.
func packBRowMajor(dst, b []float32, ldb, kOff, kc, nOff, nc int) {
	di := 0
	for j0 := 0; j0 < nc; j0 += gemmNR {
		w := min(gemmNR, nc-j0)
		for p := 0; p < kc; p++ {
			row := b[(kOff+p)*ldb+nOff+j0:]
			for e := 0; e < w; e++ {
				dst[di+e] = row[e]
			}
			for e := w; e < gemmNR; e++ {
				dst[di+e] = 0
			}
			di += gemmNR
		}
	}
}

// packBTransposed packs the same logical kc×nc panel when b is stored
// transposed (n×k row-major, ldb = k): column j of B is row j of b.
func packBTransposed(dst, b []float32, ldb, kOff, kc, nOff, nc int) {
	di := 0
	for j0 := 0; j0 < nc; j0 += gemmNR {
		w := min(gemmNR, nc-j0)
		var c0, c1, c2, c3 []float32
		c0 = b[(nOff+j0)*ldb+kOff:]
		if w > 1 {
			c1 = b[(nOff+j0+1)*ldb+kOff:]
		}
		if w > 2 {
			c2 = b[(nOff+j0+2)*ldb+kOff:]
		}
		if w > 3 {
			c3 = b[(nOff+j0+3)*ldb+kOff:]
		}
		switch w {
		case gemmNR:
			for p := 0; p < kc; p++ {
				dst[di] = c0[p]
				dst[di+1] = c1[p]
				dst[di+2] = c2[p]
				dst[di+3] = c3[p]
				di += gemmNR
			}
		default:
			for p := 0; p < kc; p++ {
				dst[di] = c0[p]
				if w > 1 {
					dst[di+1] = c1[p]
				} else {
					dst[di+1] = 0
				}
				if w > 2 {
					dst[di+2] = c2[p]
				} else {
					dst[di+2] = 0
				}
				dst[di+3] = 0
				di += gemmNR
			}
		}
	}
}

// micro2x4 is the register micro-kernel: it accumulates the MR×NR
// (2×4) outer product over a kc-deep packed A strip (MR values per k)
// and packed B strip (NR values per k) into eight register-resident
// accumulators — the inner loop touches no C memory and carries no
// bounds checks beyond the strip loads — then adds the mr×nr valid
// region into C. The k loop is unrolled by two.
func micro2x4(ap, bp []float32, kc int, c []float32, ldc, mr, nr int) {
	var c00, c01, c02, c03, c10, c11, c12, c13 float32
	ai, bi := 0, 0
	for p := 0; p+1 < kc; p += 2 {
		a0, a1 := ap[ai], ap[ai+1]
		b0, b1, b2, b3 := bp[bi], bp[bi+1], bp[bi+2], bp[bi+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[ai+2], ap[ai+3]
		b0, b1, b2, b3 = bp[bi+4], bp[bi+5], bp[bi+6], bp[bi+7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ai += 2 * gemmMR
		bi += 2 * gemmNR
	}
	if kc&1 != 0 {
		a0, a1 := ap[ai], ap[ai+1]
		b0, b1, b2, b3 := bp[bi], bp[bi+1], bp[bi+2], bp[bi+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	if mr == gemmMR && nr == gemmNR {
		c[0] += c00
		c[1] += c01
		c[2] += c02
		c[3] += c03
		c[ldc] += c10
		c[ldc+1] += c11
		c[ldc+2] += c12
		c[ldc+3] += c13
		return
	}
	// Edge tile: the packed strips are zero-padded so the accumulators
	// are exact; only the write-back is masked.
	var tmp [gemmMR][gemmNR]float32
	tmp[0] = [gemmNR]float32{c00, c01, c02, c03}
	tmp[1] = [gemmNR]float32{c10, c11, c12, c13}
	for i := 0; i < mr; i++ {
		for j := 0; j < nr; j++ {
			c[i*ldc+j] += tmp[i][j]
		}
	}
}

// MatMulTransB computes C = A(MxK) * B^T where b is (N x K) row-major.
// This layout is the natural one for linear layers whose weights are
// stored (out_features x in_features).
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(shapeErrf("MatMulTransB inner dimension mismatch: %v x %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	GemmTransBInto(c.Data, a.Data, b.Data, m, n, k)
	return c
}

// Linear applies y = x*W^T + bias for x (B x in), w (out x in),
// bias (out) which may be nil.
func Linear(x, w, bias *Tensor) *Tensor {
	y := MatMulTransB(x, w)
	if bias != nil {
		if len(bias.Data) != y.Shape[1] {
			panic(shapeErrf("Linear bias has %d values, want %d", len(bias.Data), y.Shape[1]))
		}
		n := y.Shape[1]
		for i := 0; i < y.Shape[0]; i++ {
			row := y.Data[i*n : i*n+n]
			for j := range row {
				row[j] += bias.Data[j]
			}
		}
	}
	return y
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
