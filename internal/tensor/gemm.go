package tensor

import (
	"runtime"
	"sync"
)

// gemmBlock is the cache blocking factor for the K dimension.
const gemmBlock = 64

// MatMulNaive computes C = A(MxK) * B(KxN) with the textbook triple
// loop. It is the reference implementation the optimized kernels are
// tested against.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = acc
		}
	}
	return c
}

// MatMul computes C = A(MxK) * B(KxN) using a blocked i-k-j loop order
// (streaming through B rows) parallelized across row bands.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	c := New(m, n)
	GemmInto(c.Data, a.Data, b.Data, m, n, k)
	return c
}

// GemmInto computes c += a*b on raw slices (c is assumed zeroed or to be
// accumulated into), with a (m x k), b (k x n), c (m x n), row-major.
func GemmInto(c, a, b []float32, m, n, k int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*n*k < 1<<15 {
		gemmRows(c, a, b, 0, m, n, k)
		return
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(c, a, b, lo, hi, n, k)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes rows [lo,hi) of c += a*b with K-blocking and an
// i-k-j inner order so the inner loop is a saxpy over contiguous memory.
func gemmRows(c, a, b []float32, lo, hi, n, k int) {
	for kk := 0; kk < k; kk += gemmBlock {
		kend := kk + gemmBlock
		if kend > k {
			kend = k
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			for p := kk; p < kend; p++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				bp := b[p*n : p*n+n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
	}
}

// MatMulTransB computes C = A(MxK) * B^T where b is (N x K) row-major.
// This layout is the natural one for linear layers whose weights are
// stored (out_features x in_features).
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	c := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	rowBand := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : i*k+k]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : j*k+k]
				var acc float32
				for p := range ai {
					acc += ai[p] * bj[p]
				}
				c.Data[i*n+j] = acc
			}
		}
	}
	if workers <= 1 || m*n*k < 1<<15 {
		rowBand(0, m)
		return c
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*rowsPer, (w+1)*rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) { defer wg.Done(); rowBand(lo, hi) }(lo, hi)
	}
	wg.Wait()
	return c
}

// Linear applies y = x*W^T + bias for x (B x in), w (out x in),
// bias (out) which may be nil.
func Linear(x, w, bias *Tensor) *Tensor {
	y := MatMulTransB(x, w)
	if bias != nil {
		n := y.Shape[1]
		for i := 0; i < y.Shape[0]; i++ {
			row := y.Data[i*n : i*n+n]
			for j := range row {
				row[j] += bias.Data[j]
			}
		}
	}
	return y
}
