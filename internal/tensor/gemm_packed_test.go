package tensor

import (
	"errors"
	"math"
	"testing"

	"harvest/internal/quant"
	"harvest/internal/stats"
)

// gemmShapes deliberately hits the kernel's edge geometry: degenerate
// dims (m=1, n=1, k=1), sizes straddling the MR/NR/MC/KC/NC block
// boundaries (non-multiples on every axis), and skinny aspect ratios in
// both orientations.
var gemmShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {3, 1, 5}, {2, 4, 8},
	{5, 5, 5}, {17, 9, 33}, {64, 64, 64},
	{129, 131, 127}, {2, 511, 3}, {257, 2, 260},
	{1, 1024, 9}, {130, 516, 258}, {7, 3, 300},
}

// gemmTol bounds the acceptable packed-vs-naive divergence: both are
// exact algorithms that only differ in summation order, so the gap is
// pure float rounding, which grows with k.
func gemmTol(k int) float32 {
	return 1e-5 * float32(math.Sqrt(float64(k))+8)
}

func TestPackedGemmMatchesNaive(t *testing.T) {
	r := stats.NewRNG(42)
	for _, s := range gemmShapes {
		m, n, k := s[0], s[1], s[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		want := MatMulNaive(a, b)
		got := MatMul(a, b)
		if d := float32(MaxAbsDiff(got, want)); d > gemmTol(k) {
			t.Errorf("(%d,%d,%d): packed vs naive max abs diff %g", m, n, k, d)
		}
	}
}

func TestGemmTransBMatchesNaive(t *testing.T) {
	r := stats.NewRNG(43)
	for _, s := range gemmShapes {
		m, n, k := s[0], s[1], s[2]
		a := randTensor(r, m, k)
		bt := randTensor(r, n, k)
		got := MatMulTransB(a, bt)
		want := MatMulNaive(a, Transpose2D(bt))
		if d := float32(MaxAbsDiff(got, want)); d > gemmTol(k) {
			t.Errorf("(%d,%d,%d): transB vs naive max abs diff %g", m, n, k, d)
		}
	}
}

// TestGemmParallelBandsMatchNaive is the regression test for the old
// ceil-divide band split, which handed the last worker an empty (or
// out-of-range) band whenever m was smaller than the worker count. The
// split must be correct for every (m, w) combination, including w > m.
func TestGemmParallelBandsMatchNaive(t *testing.T) {
	r := stats.NewRNG(44)
	n, k := 37, 19
	for m := 1; m <= 9; m++ {
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		want := MatMulNaive(a, b)
		for w := 1; w <= 8; w++ {
			c := New(m, n)
			packB := func(dst []float32, kOff, kc, nOff, nc int) {
				packBRowMajor(dst, b.Data, n, kOff, kc, nOff, nc)
			}
			gemmParallel(c.Data, a.Data, m, n, k, w, packB)
			if d := float32(MaxAbsDiff(c, want)); d > gemmTol(k) {
				t.Fatalf("m=%d w=%d: parallel bands diverge from naive by %g", m, w, d)
			}
		}
	}
}

func TestGemmWorkersHeuristic(t *testing.T) {
	cases := []struct {
		m, n, k, procs, want int
	}{
		{1, 2048, 2048, 8, 1},    // one row: one band, however big the flops
		{3, 2048, 2048, 8, 3},    // m < procs: clamp to m, never an empty band
		{8, 8, 8, 8, 1},          // tiny product: stay serial
		{2048, 2048, 2048, 8, 8}, // big product: use all procs
		{2048, 4, 4, 8, 1},       // many rows but few MACs/row: stay near-serial
		{100, 256, 256, 64, 64},  // flops-limited below m
	}
	for _, c := range cases {
		if got := gemmWorkersFor(c.m, c.n, c.k, c.procs); got != c.want {
			t.Errorf("gemmWorkersFor(%d,%d,%d,procs=%d) = %d, want %d", c.m, c.n, c.k, c.procs, got, c.want)
		}
	}
	if got := gemmWorkersFor(100, 256, 256, 64); got*gemmMinMACsPerBand > 100*256*256 {
		t.Errorf("band smaller than the minimum MAC floor: w=%d", got)
	}
}

func TestGemmIntoZeroDims(t *testing.T) {
	// Degenerate dims must be no-ops, not panics or OOB writes.
	GemmInto(nil, nil, nil, 0, 4, 4)
	GemmTransBInto(nil, nil, nil, 4, 0, 4)
	GemmTransBF16Into(nil, nil, nil, 4, 4, 0, false)
}

func TestMatMulShapeErrorTyped(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrShape) {
			t.Fatalf("panic value %v is not an ErrShape error", r)
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestGemmF16MatchesRoundTripReference(t *testing.T) {
	r := stats.NewRNG(45)
	for _, s := range [][3]int{{3, 5, 7}, {17, 33, 9}, {64, 129, 260}, {1, 513, 300}} {
		m, n, k := s[0], s[1], s[2]
		a := randTensor(r, m, k)
		bt := randTensor(r, n, k)
		for _, bf16 := range []bool{false, true} {
			half := make([]uint16, n*k)
			ref := New(n, k)
			for i, v := range bt.Data {
				if bf16 {
					h := quant.BF16FromFloat32(v)
					half[i] = uint16(h)
					ref.Data[i] = h.Float32()
				} else {
					h := quant.FromFloat32(v)
					half[i] = uint16(h)
					ref.Data[i] = h.Float32()
				}
			}
			want := MatMulTransB(a, ref)
			got := New(m, n)
			GemmTransBF16Into(got.Data, a.Data, half, m, n, k, bf16)
			if d := float32(MaxAbsDiff(got, want)); d > gemmTol(k) {
				t.Errorf("bf16=%v (%d,%d,%d): f16 gemm vs round-trip reference diff %g", bf16, m, n, k, d)
			}
		}
	}
}

// TestQ7GemmMatchesScalarRef bit-compares the SWAR kernel against the
// plain int32 scalar reference: both are exact integer algorithms, so
// they must agree exactly on every shape, including k not a multiple of
// the 4-codes-per-word packing and n not a multiple of the 4-row inner
// blocking.
func TestQ7GemmMatchesScalarRef(t *testing.T) {
	r := stats.NewRNG(46)
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {4, 4, 4}, {3, 7, 9},
		{17, 13, 31}, {2, 130, 515}, {65, 3, 1024}, {31, 129, 127},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		acts := make([]uint8, m*k)
		for i := range acts {
			acts[i] = uint8(r.Float64() * 128)
		}
		ws := make([]int8, n*k)
		for i := range ws {
			ws[i] = int8(r.Float64()*127 - 63)
		}
		want := make([]int32, m*n)
		Q7GemmTransBRef(want, acts, ws, m, n, k)
		got := make([]int32, m*n)
		Q7GemmTransB(got, PackQ7Acts(acts, m, k), PackQ7Weights(ws, n, k))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("(%d,%d,%d): SWAR kernel differs from scalar ref at %d: %d != %d", m, n, k, i, got[i], want[i])
			}
		}
	}
}

// TestQ7PackReuse checks PackQ7ActsInto reuses backing storage and
// fully overwrites stale state (row sums and padding words).
func TestQ7PackReuse(t *testing.T) {
	var p PackedQ7
	a1 := []uint8{127, 127, 127, 127, 127, 127}
	PackQ7ActsInto(&p, a1, 2, 3)
	d0 := &p.Data[0]
	a2 := []uint8{1, 2, 3, 4, 5, 6}
	PackQ7ActsInto(&p, a2, 2, 3)
	if &p.Data[0] != d0 {
		t.Error("PackQ7ActsInto reallocated despite sufficient capacity")
	}
	if p.RowSum[0] != 6 || p.RowSum[1] != 15 {
		t.Errorf("stale row sums after reuse: %v", p.RowSum)
	}
	want := make([]int32, 4)
	Q7GemmTransBRef(want, a2, []int8{1, 1, 1, 2, 2, 2}, 2, 2, 3)
	got := make([]int32, 4)
	Q7GemmTransB(got, &p, PackQ7Weights([]int8{1, 1, 1, 2, 2, 2}, 2, 3))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused pack wrong at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestIm2ColTransMatchesIm2Col(t *testing.T) {
	r := stats.NewRNG(47)
	x := randTensor(r, 2, 3, 9, 7)
	kh, kw, stride, pad := 3, 3, 2, 1
	oh := (9+2*pad-kh)/stride + 1
	ow := (7+2*pad-kw)/stride + 1
	ckk := 3 * kh * kw
	cols := New(ckk, oh*ow)
	colsT := make([]float32, oh*ow*ckk)
	for b := 0; b < 2; b++ {
		im2col(x, b, cols, kh, kw, stride, pad, oh, ow)
		Im2ColTransInto(colsT, x, b, kh, kw, stride, pad, oh, ow)
		for rr := 0; rr < ckk; rr++ {
			for cc := 0; cc < oh*ow; cc++ {
				if cols.Data[rr*oh*ow+cc] != colsT[cc*ckk+rr] {
					t.Fatalf("b=%d: transposed im2col mismatch at (%d,%d)", b, rr, cc)
				}
			}
		}
	}
}

func BenchmarkGemmPacked1024(b *testing.B) {
	r := stats.NewRNG(1)
	a := randTensor(r, 1024, 1024)
	bb := randTensor(r, 1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb)
	}
	b.ReportMetric(2*1024*1024*1024/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
}

func BenchmarkGemmF16_1024(b *testing.B) {
	r := stats.NewRNG(1)
	a := randTensor(r, 1024, 1024)
	half := make([]uint16, 1024*1024)
	for i := range half {
		half[i] = uint16(quant.FromFloat32(float32(r.Float64())))
	}
	c := New(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTransBF16Into(c.Data, a.Data, half, 1024, 1024, 1024, false)
	}
	b.ReportMetric(2*1024*1024*1024/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
}

func BenchmarkQ7Gemm1024(b *testing.B) {
	r := stats.NewRNG(1)
	acts := make([]uint8, 1024*1024)
	for i := range acts {
		acts[i] = uint8(r.Float64() * 128)
	}
	ws := make([]int8, 1024*1024)
	for i := range ws {
		ws[i] = int8(r.Float64()*127 - 63)
	}
	pa := PackQ7Acts(acts, 1024, 1024)
	pw := PackQ7Weights(ws, 1024, 1024)
	c := make([]int32, 1024*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Q7GemmTransB(c, pa, pw)
	}
	b.ReportMetric(2*1024*1024*1024/float64(b.Elapsed().Nanoseconds())*float64(b.N), "eq-GFLOPS")
}
