package tensor

import (
	"math"
	"testing"

	"harvest/internal/stats"
)

func TestAddInPlace(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddInPlace(a, b)
	if a.Data[0] != 11 || a.Data[1] != 22 {
		t.Errorf("AddInPlace = %v", a.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	AddInPlace(a, New(3))
}

func TestScale(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	a.Scale(2)
	if a.Data[0] != 2 || a.Data[1] != -4 || a.Data[2] != 6 {
		t.Errorf("Scale = %v", a.Data)
	}
}

func TestReLU(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2}, 3)
	ReLU(a)
	if a.Data[0] != 0 || a.Data[1] != 0 || a.Data[2] != 2 {
		t.Errorf("ReLU = %v", a.Data)
	}
}

func TestGELUKnownValues(t *testing.T) {
	a := FromSlice([]float32{0, 1, -1, 10, -10}, 5)
	GELU(a)
	// GELU(0)=0, GELU(1)~0.8412, GELU(-1)~-0.1588, GELU(10)~10,
	// GELU(-10)~0.
	checks := []struct {
		i    int
		want float64
		tol  float64
	}{
		{0, 0, 1e-6}, {1, 0.8412, 1e-3}, {2, -0.1588, 1e-3}, {3, 10, 1e-3}, {4, 0, 1e-3},
	}
	for _, c := range checks {
		if math.Abs(float64(a.Data[c.i])-c.want) > c.tol {
			t.Errorf("GELU[%d] = %v, want ~%v", c.i, a.Data[c.i], c.want)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	SoftmaxRows(x)
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := float64(x.At(r, c))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax value out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d softmax sums to %v", r, sum)
		}
	}
	// Monotonic: larger logits get larger probability.
	if !(x.At(0, 2) > x.At(0, 1) && x.At(0, 1) > x.At(0, 0)) {
		t.Error("softmax not monotone in logits")
	}
	// Huge equal logits must not produce NaN (stability check) and be
	// uniform.
	if math.Abs(float64(x.At(1, 0))-1.0/3) > 1e-5 {
		t.Errorf("stable softmax of equal logits = %v", x.At(1, 0))
	}
}

func TestLayerNorm(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	gamma := New(4)
	gamma.Fill(1)
	beta := New(4)
	LayerNorm(x, gamma, beta, 1e-6)
	var mean, variance float64
	for _, v := range x.Data {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range x.Data {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-5 {
		t.Errorf("layernorm mean %v, want 0", mean)
	}
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("layernorm variance %v, want 1", variance)
	}
}

func TestLayerNormAffine(t *testing.T) {
	x := FromSlice([]float32{-1, 1}, 1, 2)
	gamma := FromSlice([]float32{2, 2}, 2)
	beta := FromSlice([]float32{5, 5}, 2)
	LayerNorm(x, gamma, beta, 1e-6)
	// normalized = [-1, 1]; affine -> [3, 7]
	if math.Abs(float64(x.Data[0])-3) > 1e-3 || math.Abs(float64(x.Data[1])-7) > 1e-3 {
		t.Errorf("affine layernorm = %v, want [3 7]", x.Data)
	}
}

func TestBatchNormInference(t *testing.T) {
	// One image, two channels, 2x2.
	x := New(1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	mean := []float32{0, 0}
	variance := []float32{1, 1}
	gamma := []float32{1, 2}
	beta := []float32{0, 1}
	orig := x.Clone()
	BatchNormInference(x, mean, variance, gamma, beta, 0)
	// Channel 0 unchanged, channel 1 scaled by 2 plus 1.
	for i := 0; i < 4; i++ {
		if x.Data[i] != orig.Data[i] {
			t.Errorf("channel 0 changed at %d", i)
		}
	}
	for i := 4; i < 8; i++ {
		want := orig.Data[i]*2 + 1
		if x.Data[i] != want {
			t.Errorf("channel 1 at %d = %v, want %v", i, x.Data[i], want)
		}
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose2D(x)
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("transpose shape %v", y.Shape)
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", y.Data)
	}
}

func TestAttentionUniform(t *testing.T) {
	// With identical keys, attention weights are uniform, so the output
	// is the mean of the values.
	seq, dim := 3, 4
	q := New(seq, dim)
	k := New(seq, dim) // zeros -> all scores equal
	v := New(seq, dim)
	for i := 0; i < seq; i++ {
		for j := 0; j < dim; j++ {
			v.Set(float32(i), i, j)
		}
	}
	out := Attention(q, k, v)
	for i := 0; i < seq; i++ {
		for j := 0; j < dim; j++ {
			if math.Abs(float64(out.At(i, j))-1) > 1e-5 { // mean of 0,1,2
				t.Fatalf("uniform attention out[%d][%d] = %v, want 1", i, j, out.At(i, j))
			}
		}
	}
}

func TestAttentionSelectsMatchingValue(t *testing.T) {
	// A query strongly aligned with one key should return (nearly) that
	// key's value.
	seq, dim := 2, 4
	q := New(seq, dim)
	k := New(seq, dim)
	v := New(seq, dim)
	q.Set(50, 0, 0)
	k.Set(1, 0, 0) // key 0 aligned with query 0
	v.Set(7, 0, 0)
	v.Set(-7, 1, 0)
	out := Attention(q, k, v)
	if out.At(0, 0) < 6.5 {
		t.Errorf("attention did not select matching value: %v", out.At(0, 0))
	}
}

func TestMeanRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	m := MeanRows(x)
	if m.At(0, 0) != 2 || m.At(0, 1) != 3 {
		t.Errorf("MeanRows = %v", m.Data)
	}
}

func TestOpsPanicOnWrongRank(t *testing.T) {
	three := New(2, 2, 2)
	g := New(2)
	for i, f := range []func(){
		func() { SoftmaxRows(three) },
		func() { LayerNorm(three, g, g, 1e-6) },
		func() { BatchNormInference(New(2, 2), nil, nil, nil, nil, 0) },
		func() { Transpose2D(three) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on wrong rank", i)
				}
			}()
			f()
		}()
	}
}

func TestSoftmaxRandomizedStability(t *testing.T) {
	r := stats.NewRNG(9)
	x := New(16, 32)
	x.RandInit(r, 100)
	SoftmaxRows(x)
	for _, v := range x.Data {
		if math.IsNaN(float64(v)) || v < 0 || v > 1 {
			t.Fatalf("softmax produced %v", v)
		}
	}
}
