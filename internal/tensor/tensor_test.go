package tensor

import (
	"testing"

	"harvest/internal/stats"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 || x.NumDims() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad tensor metadata: %+v", x)
	}
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := x.At(0, 0); got != 0 {
		t.Errorf("fresh tensor not zeroed: %v", got)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dim did not panic")
		}
	}()
	New(2, 0)
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	cases := []func(){
		func() { x.At(2, 0) },
		func() { x.At(0, -1) },
		func() { x.At(0) },
		func() { x.Set(1, 0, 0, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(data, 2, 3)
	if x.At(1, 0) != 4 {
		t.Errorf("FromSlice layout wrong: %v", x.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice size mismatch did not panic")
		}
	}()
	FromSlice(data, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestReshape(t *testing.T) {
	x := New(2, 6)
	x.Set(5, 1, 1)
	y := x.Reshape(3, 4)
	if y.At(1, 3) != 5 { // flat index 7 = row1,col1 of 2x6
		t.Errorf("reshape view broken: %v", y.Data)
	}
	// Views share storage.
	y.Set(8, 0, 0)
	if x.At(0, 0) != 8 {
		t.Error("Reshape copied storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("size-changing reshape did not panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestRandInitRange(t *testing.T) {
	x := New(100)
	x.RandInit(stats.NewRNG(1), 0.5)
	nonzero := 0
	for _, v := range x.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("RandInit out of range: %v", v)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Errorf("RandInit produced %d/100 nonzero values", nonzero)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.5, 2}, 3)
	if d := MaxAbsDiff(a, b); d != 1 {
		t.Errorf("MaxAbsDiff %v, want 1", d)
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float32{-1, 5, 3}); i != 1 {
		t.Errorf("ArgMax = %d, want 1", i)
	}
	if i := ArgMax([]float32{2}); i != 0 {
		t.Errorf("ArgMax single = %d, want 0", i)
	}
}
