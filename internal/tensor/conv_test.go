package tensor

import (
	"testing"

	"harvest/internal/stats"
)

// conv2DNaive is a direct convolution reference.
func conv2DNaive(x, w, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, _, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	out := New(n, outC, oh, ow)
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride - pad + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(b, ic, iy, ix) * w.At(oc, ic, ky, kx)
							}
						}
					}
					if bias != nil {
						acc += bias.Data[oc]
					}
					out.Set(acc, b, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := stats.NewRNG(1)
	cases := []struct{ n, c, h, w, oc, k, stride, pad int }{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{1, 1, 5, 5, 1, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 3, 9, 9, 2, 3, 2, 1},
		{1, 2, 12, 10, 3, 5, 2, 2},
		{1, 4, 7, 7, 8, 1, 1, 0},
		{1, 3, 16, 16, 4, 7, 2, 3}, // ResNet-style stem
	}
	for i, cs := range cases {
		x := randTensor(r, cs.n, cs.c, cs.h, cs.w)
		w := randTensor(r, cs.oc, cs.c, cs.k, cs.k)
		bias := randTensor(r, cs.oc)
		want := conv2DNaive(x, w, bias, cs.stride, cs.pad)
		got := Conv2D(x, w, bias, cs.stride, cs.pad)
		for d := range want.Shape {
			if want.Shape[d] != got.Shape[d] {
				t.Fatalf("case %d: shape %v, want %v", i, got.Shape, want.Shape)
			}
		}
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Errorf("case %d: conv deviates from naive by %v", i, d)
		}
	}
}

func TestConv2DNoBias(t *testing.T) {
	r := stats.NewRNG(2)
	x := randTensor(r, 1, 2, 6, 6)
	w := randTensor(r, 3, 2, 3, 3)
	want := conv2DNaive(x, w, nil, 1, 1)
	got := Conv2D(x, w, nil, 1, 1)
	if d := MaxAbsDiff(want, got); d > 1e-3 {
		t.Errorf("no-bias conv deviates by %v", d)
	}
}

func TestConv2DPanics(t *testing.T) {
	x := New(1, 2, 4, 4)
	w := New(1, 3, 3, 3) // channel mismatch
	func() {
		defer func() {
			if recover() == nil {
				t.Error("channel mismatch did not panic")
			}
		}()
		Conv2D(x, w, nil, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty output did not panic")
			}
		}()
		Conv2D(New(1, 1, 2, 2), New(1, 1, 5, 5), nil, 1, 0)
	}()
}

func TestMaxPool2DKnown(t *testing.T) {
	x := New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := MaxPool2D(x, 2, 2, 0)
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Fatalf("pool shape %v", y.Shape)
	}
	want := []float32{5, 7, 13, 15}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("maxpool[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestMaxPool2DPadding(t *testing.T) {
	x := New(1, 1, 3, 3)
	x.Set(-1, 0, 0, 0, 0)
	for i := range x.Data {
		if x.Data[i] == 0 {
			x.Data[i] = -2
		}
	}
	// With pad 1 the padded border must not win (it is skipped, not
	// treated as zero): the max of an all-negative image stays negative.
	y := MaxPool2D(x, 3, 2, 1)
	for _, v := range y.Data {
		if v >= 0 {
			t.Fatalf("padding leaked into maxpool: %v", v)
		}
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	x := New(2, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := GlobalAvgPool2D(x)
	if y.Shape[0] != 2 || y.Shape[1] != 2 {
		t.Fatalf("gap shape %v", y.Shape)
	}
	// First plane is 0,1,2,3 -> 1.5
	if y.At(0, 0) != 1.5 {
		t.Errorf("gap[0,0] = %v, want 1.5", y.At(0, 0))
	}
	if y.At(1, 1) != 13.5 {
		t.Errorf("gap[1,1] = %v, want 13.5", y.At(1, 1))
	}
}
