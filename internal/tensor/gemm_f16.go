package tensor

import (
	"math"

	"harvest/internal/quant"
)

// GemmTransBF16Into computes c += a*bᵀ where b is a half-precision
// (n x k row-major) weight matrix stored as raw uint16 bit patterns —
// IEEE float16 when bf16 is false, bfloat16 when true. The weights are
// dequantized panel-at-a-time inside the B pack step, so the working
// set stays half-precision in memory and only one KC×NC panel of f32
// values ever exists per band; the micro-kernel is the same one the f32
// path uses.
func GemmTransBF16Into(c, a []float32, b []uint16, m, n, k int, bf16 bool) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if len(b) < n*k {
		panic(shapeErrf("GemmTransBF16Into weights have %d values, want %d", len(b), n*k))
	}
	packB := func(dst []float32, kOff, kc, nOff, nc int) {
		packBTransHalf(dst, b, k, kOff, kc, nOff, nc, bf16)
	}
	gemmParallel(c, a, m, n, k, gemmWorkers(m, n, k), packB)
}

// packBTransHalf packs the kc×nc panel of a transposed half-precision B
// (n×k, ldb = k) into NR-column strips, converting each value to f32 as
// it lands in the pack buffer.
func packBTransHalf(dst []float32, b []uint16, ldb, kOff, kc, nOff, nc int, bf16 bool) {
	conv := func(v uint16) float32 {
		if bf16 {
			return math.Float32frombits(uint32(v) << 16)
		}
		return quant.Float16(v).Float32()
	}
	di := 0
	for j0 := 0; j0 < nc; j0 += gemmNR {
		w := min(gemmNR, nc-j0)
		if w == gemmNR {
			c0 := b[(nOff+j0)*ldb+kOff:]
			c1 := b[(nOff+j0+1)*ldb+kOff:]
			c2 := b[(nOff+j0+2)*ldb+kOff:]
			c3 := b[(nOff+j0+3)*ldb+kOff:]
			for p := 0; p < kc; p++ {
				dst[di] = conv(c0[p])
				dst[di+1] = conv(c1[p])
				dst[di+2] = conv(c2[p])
				dst[di+3] = conv(c3[p])
				di += gemmNR
			}
			continue
		}
		for p := 0; p < kc; p++ {
			for e := 0; e < gemmNR; e++ {
				if e < w {
					dst[di+e] = conv(b[(nOff+j0+e)*ldb+kOff+p])
				} else {
					dst[di+e] = 0
				}
			}
			di += gemmNR
		}
	}
}
