package tensor

import "sync"

// Quantized GEMM over 7-bit codes, vectorized with 64-bit SWAR.
//
// Codes live in the 16-bit fields of a uint64, four per word. With the
// activation word A = a0 + a1·2^16 + a2·2^32 + a3·2^48 and the weight
// word B packed in *reversed* field order and *biased* by +64 so every
// field is in [0, 127], the top field of the product A·B is exactly the
// 4-element dot product:
//
//	(A·B) >> 48  ==  a0·w0' + a1·w1' + a2·w2' + a3·w3'
//
// because every partial coefficient stays below 2^16 (products are at
// most 127² = 16129, and at most four of them sum into one field:
// 4·16129 = 64516 < 65536), so no field ever carries into the top one,
// and the terms above 2^64 wrap away harmlessly. One 64-bit multiply +
// shift therefore retires four multiply-accumulates. The +64 weight
// bias is corrected after accumulation: Σ qa·(qw+64) − 64·Σ qa =
// Σ qa·qw, with Σ qa tracked per activation row at pack time.

// PackedQ7 is a matrix of 7-bit codes packed four-per-uint64 along K.
// Rows are padded to Kp = ceil(K/4) words with zero fields. RowSum
// holds the per-row sum of the *unbiased* codes, used for the
// zero-point and bias corrections.
type PackedQ7 struct {
	Rows   int
	K      int
	Kp     int // words per row = ceil(K/4)
	Data   []uint64
	RowSum []int32
	biased bool // true for weights (fields hold code+64, reversed order)
}

func q7Words(k int) int { return (k + 3) / 4 }

// PackQ7Acts packs unsigned activation codes (rows×k row-major, each in
// [0,127]) in ascending field order.
func PackQ7Acts(codes []uint8, rows, k int) *PackedQ7 {
	p := &PackedQ7{}
	PackQ7ActsInto(p, codes, rows, k)
	return p
}

// PackQ7ActsInto packs into an existing PackedQ7, reusing its storage
// when large enough — the allocation-free entry point for pooled
// buffers on the forward path.
func PackQ7ActsInto(p *PackedQ7, codes []uint8, rows, k int) {
	if len(codes) < rows*k {
		panic(shapeErrf("PackQ7Acts codes have %d values, want %d", len(codes), rows*k))
	}
	kp := q7Words(k)
	p.Rows, p.K, p.Kp, p.biased = rows, k, kp, false
	if cap(p.Data) < rows*kp {
		p.Data = make([]uint64, rows*kp)
	}
	p.Data = p.Data[:rows*kp]
	if cap(p.RowSum) < rows {
		p.RowSum = make([]int32, rows)
	}
	p.RowSum = p.RowSum[:rows]

	for r := 0; r < rows; r++ {
		src := codes[r*k : r*k+k]
		dst := p.Data[r*kp : r*kp+kp]
		var sum int32
		full := k / 4
		for t := 0; t < full; t++ {
			c0, c1, c2, c3 := src[t*4], src[t*4+1], src[t*4+2], src[t*4+3]
			sum += int32(c0) + int32(c1) + int32(c2) + int32(c3)
			dst[t] = uint64(c0) | uint64(c1)<<16 | uint64(c2)<<32 | uint64(c3)<<48
		}
		if full < kp {
			var w uint64
			for e := 0; e < k-full*4; e++ {
				v := src[full*4+e]
				sum += int32(v)
				w |= uint64(v) << (16 * e)
			}
			dst[full] = w
		}
		p.RowSum[r] = sum
	}
}

// PackQ7Weights packs signed weight codes (rows×k row-major, each in
// [-63,63]) biased by +64 in descending field order, so that
// multiplying against an activation word aligns the dot product into
// the top field. RowSum holds the true (unbiased, signed) per-row sums
// for the activation zero-point correction.
func PackQ7Weights(codes []int8, rows, k int) *PackedQ7 {
	if len(codes) < rows*k {
		panic(shapeErrf("PackQ7Weights codes have %d values, want %d", len(codes), rows*k))
	}
	kp := q7Words(k)
	p := &PackedQ7{
		Rows: rows, K: k, Kp: kp,
		Data:   make([]uint64, rows*kp),
		RowSum: make([]int32, rows),
		biased: true,
	}
	for r := 0; r < rows; r++ {
		src := codes[r*k : r*k+k]
		dst := p.Data[r*kp : r*kp+kp]
		var sum int32
		for t := 0; t < kp; t++ {
			// Missing tail codes pack as bias-only fields (64): they
			// only ever multiply the zero padding fields of the
			// activation word, so they contribute nothing.
			var w uint64
			for e := 0; e < 4; e++ {
				var v int32
				if idx := t*4 + e; idx < k {
					v = int32(src[idx])
					sum += v
				}
				w |= uint64(v+64) << (16 * (3 - e))
			}
			dst[t] = w
		}
		p.RowSum[r] = sum
	}
	return p
}

// Q7GemmTransB computes the exact integer product c[i*n+j] =
// Σ_k acts[i,k]·weights[j,k] (unbiased codes) into int32, with acts
// packed plain/ascending and weights packed biased/descending. It is
// the quantized analogue of GemmTransBInto and parallelizes over
// activation-row bands the same way.
func Q7GemmTransB(c []int32, acts, weights *PackedQ7) {
	if acts.biased || !weights.biased {
		panic(shapeErrf("Q7GemmTransB wants plain acts and biased weights"))
	}
	if acts.K != weights.K {
		panic(shapeErrf("Q7GemmTransB inner dimension mismatch: k=%d vs k=%d", acts.K, weights.K))
	}
	m, n := acts.Rows, weights.Rows
	if len(c) < m*n {
		panic(shapeErrf("Q7GemmTransB output has %d values, want %d", len(c), m*n))
	}
	w := gemmWorkers(m, n, acts.K)
	if w <= 1 {
		q7Band(c, acts, weights, 0, m)
		return
	}
	var wg sync.WaitGroup
	base, rem := m/w, m%w
	lo := 0
	for i := 0; i < w; i++ {
		rows := base
		if i < rem {
			rows++
		}
		hi := lo + rows
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			q7Band(c, acts, weights, lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// q7Band computes activation rows [rowLo,rowHi) of the product. The
// inner kernel runs one activation row against four weight rows at a
// time: four independent accumulator chains hide the multiply latency,
// and a uint64 accumulator of 16-bit-bounded terms cannot overflow
// within any feasible K.
func q7Band(c []int32, acts, weights *PackedQ7, rowLo, rowHi int) {
	kp := acts.Kp
	n := weights.Rows
	wd := weights.Data
	for i := rowLo; i < rowHi; i++ {
		ap := acts.Data[i*kp : i*kp+kp]
		corr := 64 * acts.RowSum[i]
		out := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := wd[j*kp : j*kp+kp]
			b1 := wd[(j+1)*kp : (j+1)*kp+kp]
			b2 := wd[(j+2)*kp : (j+2)*kp+kp]
			b3 := wd[(j+3)*kp : (j+3)*kp+kp]
			var r0, r1, r2, r3 uint64
			for t, av := range ap {
				r0 += (av * b0[t]) >> 48
				r1 += (av * b1[t]) >> 48
				r2 += (av * b2[t]) >> 48
				r3 += (av * b3[t]) >> 48
			}
			out[j] = int32(r0) - corr
			out[j+1] = int32(r1) - corr
			out[j+2] = int32(r2) - corr
			out[j+3] = int32(r3) - corr
		}
		for ; j < n; j++ {
			bp := wd[j*kp : j*kp+kp]
			var r uint64
			for t, av := range ap {
				r += (av * bp[t]) >> 48
			}
			out[j] = int32(r) - corr
		}
	}
}

// Q7GemmTransBRef is the scalar reference implementation the SWAR
// kernel is bit-compared against in tests: the same exact integer
// product computed with plain int32 arithmetic over unpacked codes.
func Q7GemmTransBRef(c []int32, acts []uint8, weights []int8, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(acts[i*k+p]) * int32(weights[j*k+p])
			}
			c[i*n+j] = acc
		}
	}
}
