package loadgen

import (
	"context"
	"errors"
	"sync/atomic"

	"harvest/internal/metrics"
	"harvest/internal/serve"
)

// outcome buckets one request completion for error accounting.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeRejected429
	outcomeExpired504
	outcomeServer5xx
	outcomeOtherHTTP
	outcomeTimeout
	outcomeTransport
)

// classify maps a serve.Client error to its outcome bucket. 429 and
// 504 are counted apart from generic 5xx because they are the
// *designed* overload responses (admission shedding and deadline
// eviction), not faults.
func classify(err error) outcome {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, serve.ErrOverloaded):
		return outcomeRejected429
	case errors.Is(err, serve.ErrDeadlineExpired):
		return outcomeExpired504
	}
	var se *serve.StatusError
	if errors.As(err, &se) {
		if se.Code >= 500 {
			return outcomeServer5xx
		}
		return outcomeOtherHTTP
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return outcomeTimeout
	}
	return outcomeTransport
}

// classStats accumulates one class's in-window results. All fields are
// safe for concurrent recording; latency distributions live in the
// shared mergeable histogram layout so per-class stats merge exactly
// into run totals.
type classStats struct {
	cfg ClassConfig
	// offered counts requests whose intended start fell inside the
	// measurement window, whether or not they ever completed.
	offered atomic.Int64
	// counts[o] tallies completions per outcome.
	counts [outcomeTransport + 1]atomic.Int64
	// okItems counts images in successful requests.
	okItems atomic.Int64
	// sloMet counts successes whose intended-start latency was within
	// the class SLO. Attainment is sloMet/offered: unfinished and
	// errored requests are misses, so a collapsing server cannot score
	// well by only answering the easy requests.
	sloMet atomic.Int64
	// service is send→response; intended is scheduled-arrival→response
	// (equal to service for closed-loop classes).
	service  metrics.LatencyRecorder
	intended metrics.LatencyRecorder
	// cells, when non-nil, bucket the whole run (warmup included) by
	// intended-start second — the per-second timeline an autoscaler's
	// reaction shows up in. Cells are indexed by run offset.
	cells []timelineCell
}

// timelineCell is one second of the per-class timeline.
type timelineCell struct {
	offered atomic.Int64
	ok      atomic.Int64
	sloMet  atomic.Int64
}

// cell maps a run offset to its timeline cell (nil when the timeline
// is off or the offset falls outside the run).
func (s *classStats) cell(tSec float64) *timelineCell {
	if s.cells == nil || tSec < 0 {
		return nil
	}
	i := int(tSec)
	if i >= len(s.cells) {
		return nil
	}
	return &s.cells[i]
}

// recordOffered notes one scheduled arrival at run offset tSec;
// inWindow arrivals count toward the report's offered total.
func (s *classStats) recordOffered(tSec float64, inWindow bool) {
	if inWindow {
		s.offered.Add(1)
	}
	if c := s.cell(tSec); c != nil {
		c.offered.Add(1)
	}
}

// record notes one completion at run offset tSec. Window counters and
// latency distributions only accumulate in-window completions; the
// timeline sees the whole run.
func (s *classStats) record(serviceSec, intendedSec float64, err error, tSec float64, inWindow bool) {
	o := classify(err)
	met := o == outcomeOK && intendedSec*1000 <= s.cfg.SLOMs
	if c := s.cell(tSec); c != nil {
		if o == outcomeOK {
			c.ok.Add(1)
		}
		if met {
			c.sloMet.Add(1)
		}
	}
	if !inWindow {
		return
	}
	s.counts[o].Add(1)
	if o != outcomeOK {
		return
	}
	s.okItems.Add(int64(s.cfg.Items))
	s.service.Observe(serviceSec)
	s.intended.Observe(intendedSec)
	if met {
		s.sloMet.Add(1)
	}
}

func (s *classStats) completions() int64 {
	var total int64
	for i := range s.counts {
		total += s.counts[i].Load()
	}
	return total
}
