package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"harvest/internal/core"
	"harvest/internal/serve"
)

// FleetConfig describes a self-hosted system under test: N in-process
// harvest-serve replicas behind an in-process router, all over
// loopback HTTP. It lets `harvest-loadgen` (and `make bench-load`)
// produce a BENCH artifact for this host with a single command, no
// separately launched fleet required.
type FleetConfig struct {
	// Replicas is the number of backing servers (default 2).
	Replicas int
	// Platform is the hw platform model per replica (default A100).
	Platform string
	// Models limits the served models (empty = all four).
	Models []string
	// TimeScale is the fraction of modeled latency replicas really
	// sleep (0 = none; benchmarks wanting realistic queueing should
	// set a small positive value).
	TimeScale float64
	// QueueDelay is the dynamic batching window (0 = server default).
	QueueDelay time.Duration
	// MaxQueueDepth bounds each replica's admission queue (0 = server
	// default); saturation sweeps rely on it to trigger 429 shedding.
	MaxQueueDepth int
	// Preproc optionally enables the encoded-image path ("cpu"/"cv2").
	Preproc string
	// TenantQuotas maps tenant ids ("*" = wildcard) to per-tenant
	// admission quotas on every replica. Note quotas are enforced
	// per-replica: a tenant's fleet-wide budget is rate × Replicas.
	TenantQuotas map[string]serve.TenantQuota
	// TenantQuantum is the DRR quantum in request-items (0 = default).
	TenantQuantum int
	// AntiStarveEvery is the lower-lane guaranteed dispatch interval
	// (0 = default; negative disables).
	AntiStarveEvery int
}

// Fleet is a running self-hosted tier.
type Fleet struct {
	// URL is the router's base URL — the loadgen target.
	URL string
	// ReplicaURLs are the individual backends.
	ReplicaURLs []string
	stops       []func()
}

// listenLoopback serves h on an ephemeral loopback port.
func listenLoopback(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// StartFleet stands up the tier; callers must Close it.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Platform == "" {
		cfg.Platform = "A100"
	}
	f := &Fleet{}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	for i := 0; i < cfg.Replicas; i++ {
		srv, err := core.NewDeployment(core.DeploymentConfig{
			Platform:        cfg.Platform,
			Models:          cfg.Models,
			QueueDelay:      cfg.QueueDelay,
			TimeScale:       cfg.TimeScale,
			MaxQueueDepth:   cfg.MaxQueueDepth,
			Preproc:         cfg.Preproc,
			TenantQuotas:    cfg.TenantQuotas,
			TenantQuantum:   cfg.TenantQuantum,
			AntiStarveEvery: cfg.AntiStarveEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: replica %d: %w", i, err)
		}
		f.stops = append(f.stops, srv.Close)
		url, stop, err := listenLoopback(srv.Handler())
		if err != nil {
			return nil, err
		}
		f.stops = append(f.stops, stop)
		f.ReplicaURLs = append(f.ReplicaURLs, url)
	}
	// Mirror the per-replica tenant quotas at the router, scaled to the
	// fleet aggregate (rate × replicas), so an abusive tenant's rejects
	// are answered in one cheap hop instead of proxying to a replica and
	// spilling across the pool — reject churn at the replicas is exactly
	// the interference the quota exists to prevent. Queue share stays
	// replica-enforced (the router has no queue view).
	var routerQuotas map[string]serve.TenantQuota
	if len(cfg.TenantQuotas) > 0 {
		routerQuotas = make(map[string]serve.TenantQuota, len(cfg.TenantQuotas))
		for tenant, q := range cfg.TenantQuotas {
			q.RatePerSec *= float64(cfg.Replicas)
			q.Burst *= float64(cfg.Replicas)
			q.MaxQueueShare = 0
			routerQuotas[tenant] = q
		}
	}
	router, err := serve.NewRouter(f.ReplicaURLs, serve.RouterConfig{
		Pool: serve.PoolConfig{
			// Refresh load snapshots well inside a short run so
			// queue-depth-aware dispatch works with live data.
			ProbeInterval: 20 * time.Millisecond,
		},
		TenantQuotas: routerQuotas,
	})
	if err != nil {
		return nil, err
	}
	f.stops = append(f.stops, router.Close)
	url, stop, err := listenLoopback(router.Handler())
	if err != nil {
		return nil, err
	}
	f.stops = append(f.stops, stop)
	f.URL = url
	ok = true
	return f, nil
}

// Close tears the tier down, router first.
func (f *Fleet) Close() {
	for i := len(f.stops) - 1; i >= 0; i-- {
		f.stops[i]()
	}
	f.stops = nil
}
