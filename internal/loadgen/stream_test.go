package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestRunStreamAgainstEdgeCloud runs a short streaming scenario over a
// self-hosted continuum and checks the report's accounting closes:
// every frame resolves to exactly one outcome, the static camera hits
// the dedup cache, and the report artifact fields are populated.
func TestRunStreamAgainstEdgeCloud(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up an edge→cloud continuum")
	}
	ec, err := StartEdgeCloud(EdgeCloudConfig{
		// Compressed timescales keep the test fast while preserving
		// queueing behavior.
		EdgeTimeScale:  0.2,
		CloudTimeScale: 0.02,
		LinkTimeScale:  -1,
		QueueThreshold: 2,
		Budget:         200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()

	rep, err := RunStream(context.Background(), StreamConfig{
		Name:            "stream-test",
		URL:             ec.URL,
		Cameras:         2,
		StaticCameras:   1,
		FPS:             120,
		FramesPerCamera: 30,
		Budget:          200 * time.Millisecond,
		FrameSize:       64,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Total
	if tot.Frames != 60 {
		t.Fatalf("total frames = %d, want 60", tot.Frames)
	}
	resolved := tot.ServedEdge + tot.ServedCloud + tot.DedupHits + tot.Dropped + tot.RejectedOrder + tot.Failed
	if resolved != tot.Frames {
		t.Fatalf("outcome accounting open: %d resolved of %d frames (%+v)", resolved, tot.Frames, tot)
	}
	if tot.RejectedOrder != 0 {
		t.Fatalf("in-order cameras saw %d order rejections", tot.RejectedOrder)
	}
	if len(rep.PerCamera) != 2 {
		t.Fatalf("per-camera reports = %d, want 2", len(rep.PerCamera))
	}
	// cam-00 is static at 120 FPS: frames land well inside the dedup
	// TTL and Hamming threshold.
	if rep.PerCamera[0].DedupHits == 0 {
		t.Fatalf("static camera recorded no dedup hits: %+v", rep.PerCamera[0])
	}
	if tot.IntendedStartMs.Count == 0 {
		t.Fatal("no intended-start latency samples recorded")
	}
	if rep.FrameBytes == 0 {
		t.Fatal("report missing frame size")
	}
}
