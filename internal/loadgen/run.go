package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harvest/internal/imaging"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

// runner holds one run's shared state.
type runner struct {
	cfg    Config
	client *serve.Client
	start  time.Time
	// reqCtx bounds every request: caller context capped at
	// horizon + drain, so stragglers cancel instead of leaking.
	reqCtx context.Context
	cols   []*classStats
	// bodies[i] is class i's pre-built request template (payloads are
	// immutable and shared across requests).
	bodies []serve.InferRequestJSON
	reqWG  sync.WaitGroup
}

// Run executes one load-generation run against cfg.Target and returns
// the report. The caller context cancels the run early; the normal end
// is the configured horizon plus a drain for in-flight requests.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	client := serve.NewClient(cfg.Target)
	// The harness measures overload responses instead of retrying
	// through them: a retry would mutate the offered-load schedule.
	client.MaxRetries = -1
	readyCtx, cancelReady := context.WithTimeout(ctx, 30*time.Second)
	defer cancelReady()
	if err := client.WaitReady(readyCtx); err != nil {
		return nil, fmt.Errorf("loadgen: target %s not ready: %w", cfg.Target, err)
	}

	r := &runner{cfg: cfg, client: client}
	for _, cc := range cfg.Classes {
		cs := &classStats{cfg: cc}
		if cfg.Timeline {
			cs.cells = make([]timelineCell, int(cfg.Duration.Seconds())+1)
		}
		r.cols = append(r.cols, cs)
		body, err := buildBody(cfg, cc)
		if err != nil {
			return nil, err
		}
		r.bodies = append(r.bodies, body)
	}

	// Every class draws from its own stream split off one seeded root
	// (the derivation Schedule shares), so the mix's schedules are
	// reproducible and class-independent.
	rngs := cfg.classRNGs()

	r.start = time.Now()
	reqCtx, cancelReq := context.WithDeadline(ctx, r.start.Add(cfg.Duration+cfg.DrainTimeout))
	defer cancelReq()
	r.reqCtx = reqCtx
	// genCtx paces the generators; it ends at the horizon.
	genCtx, cancelGen := context.WithDeadline(ctx, r.start.Add(cfg.Duration))
	defer cancelGen()

	var genWG sync.WaitGroup
	for i, cc := range cfg.Classes {
		genWG.Add(1)
		if cc.Open() {
			go func(i int, cc ClassConfig, rng *stats.RNG) {
				defer genWG.Done()
				r.openLoop(genCtx, i, cc, rng)
			}(i, cc, rngs[i])
		} else {
			go func(i int, cc ClassConfig, rng *stats.RNG) {
				defer genWG.Done()
				r.closedLoop(genCtx, i, cc, rng)
			}(i, cc, rngs[i])
		}
	}
	genWG.Wait()

	// Drain: wait for in-flight requests up to the drain timeout; what
	// remains is reported as unfinished.
	drained := make(chan struct{})
	go func() { r.reqWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
		cancelReq()
		<-drained
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: run cancelled: %w", err)
	}
	return buildReport(cfg, r.cols, time.Now()), nil
}

// buildBody constructs a class's request template, synthesizing PPM
// payloads for the encoded-image path when ImageSide is set.
func buildBody(cfg Config, cc ClassConfig) (serve.InferRequestJSON, error) {
	body := serve.InferRequestJSON{
		Tenant:     cc.Tenant,
		Items:      cc.Items,
		Class:      cc.Class,
		DeadlineMs: cc.DeadlineMs,
	}
	if cc.ImageSide > 0 {
		im := imaging.NewImage(cc.ImageSide, cc.ImageSide)
		for i := range im.Pix {
			// A cheap deterministic gradient; content is irrelevant to
			// the serving path, only payload size and decodability.
			im.Pix[i] = uint8(i * 31)
		}
		enc, err := imaging.EncodeBytes(im, imaging.FormatPPM)
		if err != nil {
			return body, fmt.Errorf("loadgen: encoding class %s payload: %w", cc.Class, err)
		}
		body.ImageFormat = "ppm"
		body.Images = make([][]byte, cc.Items)
		for i := range body.Images {
			body.Images[i] = enc
		}
	}
	return body, nil
}

// openLoop schedules class i's arrivals from its seeded stream,
// firing each request at its intended time regardless of how earlier
// requests are doing — the generator never blocks on a response, so
// offered load is exactly the schedule (no coordinated omission).
func (r *runner) openLoop(genCtx context.Context, i int, cc ClassConfig, rng *stats.RNG) {
	cs := r.cols[i]
	rate, peak := r.cfg.rateFn(cc)
	stream := workload.NewArrivalStream(rng, rate, peak, r.cfg.Duration.Seconds(), cc.Items)
	if stream == nil {
		return
	}
	warmupSec := r.cfg.Warmup.Seconds()
	// sem bounds in-flight requests for memory safety. Acquisition
	// happens inside the request goroutine, after the intended start:
	// a saturated target shows up as intended-start latency (and
	// eventually unfinished requests), never as a silently stretched
	// schedule.
	sem := make(chan struct{}, r.cfg.MaxInflight)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		a, ok := stream.Next()
		if !ok {
			return
		}
		intended := r.start.Add(time.Duration(a.Time * float64(time.Second)))
		if d := time.Until(intended); d > 0 {
			timer.Reset(d)
			select {
			case <-genCtx.Done():
				return
			case <-timer.C:
			}
		}
		inWindow := a.Time >= warmupSec
		cs.recordOffered(a.Time, inWindow)
		r.reqWG.Add(1)
		go func(intended time.Time, inWindow bool) {
			defer r.reqWG.Done()
			select {
			case sem <- struct{}{}:
			case <-r.reqCtx.Done():
				return // abandoned at the inflight cap: stays unfinished
			}
			defer func() { <-sem }()
			r.fire(i, intended, inWindow)
		}(intended, inWindow)
	}
}

// closedLoop runs class i's fixed worker pool: each worker issues
// requests back-to-back until the horizon. Intended start equals the
// actual send, which is exactly the coordinated-omission blind spot
// this mode is documented to have.
func (r *runner) closedLoop(genCtx context.Context, i int, cc ClassConfig, rng *stats.RNG) {
	cs := r.cols[i]
	warmupSec := r.cfg.Warmup.Seconds()
	var wg sync.WaitGroup
	for w := 0; w < cc.Workers; w++ {
		wg.Add(1)
		// Each worker jitters from its own seeded stream so backoff
		// stays reproducible per -seed.
		wrng := rng.Split()
		go func() {
			defer wg.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			if !timer.Stop() {
				<-timer.C
			}
			for genCtx.Err() == nil {
				now := time.Now()
				if off := now.Sub(r.start).Seconds(); off < r.cfg.Duration.Seconds() {
					inWindow := off >= warmupSec
					cs.recordOffered(off, inWindow)
					err := r.fire(i, now, inWindow)
					// Honor an explicit 429 Retry-After before the next
					// iteration: a closed-loop worker that re-fires a shed
					// request at wire speed measures its own reject storm,
					// not the fleet — and on a quota'd tenant turns the
					// isolated 429 budget into CPU pressure on everyone
					// else. The hint is a floor; the added jitter breaks
					// up the thundering herd a whole-second Retry-After
					// would otherwise synchronize across the pool (every
					// worker waking at once dumps a full-burst spike into
					// the admission queue). Open-loop classes keep their
					// schedule; only the worker that was told to back off
					// waits.
					if wait, ok := serve.RetryAfterHint(err); ok && wait > 0 {
						wait += time.Duration(wrng.Float64() * float64(wait))
						timer.Reset(wait)
						select {
						case <-genCtx.Done():
							return
						case <-timer.C:
						}
					}
					continue
				}
				return
			}
		}()
	}
	wg.Wait()
}

// fire sends one request and records its outcome against class i,
// returning the error so closed-loop workers can honor backpressure.
func (r *runner) fire(i int, intended time.Time, inWindow bool) error {
	sent := time.Now()
	_, err := r.client.Infer(r.reqCtx, r.cfg.Model, r.bodies[i])
	done := time.Now()
	r.cols[i].record(done.Sub(sent).Seconds(), done.Sub(intended).Seconds(), err,
		intended.Sub(r.start).Seconds(), inWindow)
	return err
}
