package loadgen

import (
	"context"
	"testing"
	"time"

	"harvest/internal/fleet"
	"harvest/internal/models"
)

// TestManagedFleetStepAndChurn is the control-plane acceptance run in
// miniature: a seeded open-loop ramp with a load step drives an
// autoscaled fleet; the controller must scale up off the sim oracle,
// and a replica killed mid-run (no deregistration — its lease expires)
// must cause zero failed admitted requests. 429 sheds and 504
// deadline evictions are designed overload responses, not failures.
func TestManagedFleetStepAndChurn(t *testing.T) {
	mf, err := StartManagedFleet(ManagedFleetConfig{
		Model:     models.NameViTBase,
		Platform:  "Jetson",
		Min:       1,
		Max:       3,
		Interval:  250 * time.Millisecond,
		SLO:       150 * time.Millisecond,
		LeaseTTL:  500 * time.Millisecond,
		TimeScale: 1,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()

	// Kill a replica once the autoscaler has grown the fleet past the
	// floor: the crash path (connection resets + TTL expiry), not a
	// drain.
	killed := make(chan string, 1)
	killCtx, cancelKill := context.WithCancel(context.Background())
	defer cancelKill()
	go func() {
		for killCtx.Err() == nil {
			if len(mf.Provisioner.URLs()) >= 2 {
				// Let the newcomer take traffic before the crash.
				time.Sleep(300 * time.Millisecond)
				if name, err := mf.KillOne(); err == nil {
					killed <- name
				}
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// 80 rps fits one Jetson ViT_Base replica; the 3× step to 240 rps
	// does not (per-replica knee ≈ 187 img/s), forcing a scale-up.
	report, err := Run(context.Background(), Config{
		Target:   mf.URL,
		Model:    models.NameViTBase,
		Name:     "managed_test",
		Seed:     7,
		Duration: 6 * time.Second,
		Warmup:   500 * time.Millisecond,
		Shape:    ShapeStep,
		PeakMult: 3,
		StepAt:   1500 * time.Millisecond,
		Timeline: true,
		Classes:  []ClassConfig{{Class: "online", Rate: 80, Items: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	report.Fleet = mf.FleetReport()

	tot := report.Total
	if tot.Server5xx != 0 || tot.OtherHTTP != 0 || tot.Timeouts != 0 || tot.Transport != 0 {
		t.Fatalf("admitted requests failed under churn: 5xx=%d other=%d timeouts=%d transport=%d",
			tot.Server5xx, tot.OtherHTTP, tot.Timeouts, tot.Transport)
	}
	if tot.Completed == 0 {
		t.Fatal("no requests completed")
	}

	scaledUp := false
	for _, d := range report.Fleet.Decisions {
		if d.To > d.From {
			scaledUp = true
		}
	}
	if !scaledUp {
		t.Fatalf("autoscaler never scaled up across the load step; decisions: %+v", report.Fleet.Decisions)
	}

	select {
	case name := <-killed:
		expired := false
		for _, e := range report.Fleet.Events {
			if e.Kind == fleet.EventExpire && e.Name == name {
				expired = true
			}
		}
		if !expired {
			// The kill may land so late its expiry postdates the run
			// snapshot; give the sweeper a moment and re-check.
			time.Sleep(time.Second)
			for _, e := range mf.Registry.Events() {
				if e.Kind == fleet.EventExpire && e.Name == name {
					expired = true
				}
			}
		}
		if !expired {
			t.Fatalf("killed replica %s never expired: %+v", name, mf.Registry.Events())
		}
	default:
		t.Fatal("fleet never reached 2 replicas; nothing was killed")
	}

	if len(report.Classes) != 1 || len(report.Classes[0].Timeline) == 0 {
		t.Fatal("timeline missing from the class report")
	}
	var offered int64
	for _, b := range report.Classes[0].Timeline {
		offered += b.Offered
	}
	if offered == 0 {
		t.Fatal("timeline recorded no offered requests")
	}
}
