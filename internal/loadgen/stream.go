package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"harvest/internal/core"
	"harvest/internal/energy"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/metrics"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/stream"
	"harvest/internal/transfer"
)

// StreamConfig drives the streaming-camera scenario: N cameras, each a
// long-lived ingest session sending frames at a fixed FPS, open-loop
// (a camera does not slow down because the server is behind — exactly
// the coordinated-omission discipline of the request scenarios).
type StreamConfig struct {
	// Name labels the report (default "stream").
	Name string
	// URL is the ingest tier base URL (a harvest-serve with -stream, a
	// harvest-router in front of several, or StartEdgeCloud's edge).
	URL string
	// HTTP overrides the client (default: fresh transport).
	HTTP *http.Client
	// Cameras is the camera count (default 4).
	Cameras int
	// StaticCameras is how many of the cameras watch a near-static
	// scene (tiny per-frame sensor noise): their frames are
	// perceptually near-identical, the temporal-dedup target. The rest
	// pan: every frame has fresh content (default 1).
	StaticCameras int
	// FPS is the per-camera frame rate (default 60, the paper's
	// ground-camera scenario).
	FPS float64
	// FramesPerCamera is the stream length (default 120).
	FramesPerCamera int
	// Model is the model query parameter ("" = server default).
	Model string
	// Tenant tags every camera session ("" = server default tenant).
	Tenant string
	// Budget is the per-frame latency budget ("" = server default).
	Budget time.Duration
	// FrameSize is the square frame edge in pixels (default 96).
	FrameSize int
	// Seed makes frame content and noise deterministic (default 1).
	Seed uint64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Name == "" {
		c.Name = "stream"
	}
	if c.Cameras <= 0 {
		c.Cameras = 4
	}
	if c.StaticCameras < 0 {
		c.StaticCameras = 0
	}
	if c.StaticCameras > c.Cameras {
		c.StaticCameras = c.Cameras
	}
	if c.FPS <= 0 {
		c.FPS = 60
	}
	if c.FramesPerCamera <= 0 {
		c.FramesPerCamera = 120
	}
	if c.FrameSize <= 0 {
		c.FrameSize = 96
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{Transport: serve.NewTransport()}
	}
	return c
}

// CameraReport is one camera's (or the whole run's) streaming results.
// Counts come from the server's authoritative session summary;
// latencies from the client's own clock against the intended frame
// schedule.
type CameraReport struct {
	Camera        string `json:"camera"`
	Frames        int64  `json:"frames"`
	ServedEdge    int64  `json:"served_edge"`
	ServedCloud   int64  `json:"served_cloud"`
	DedupHits     int64  `json:"dedup_hits"`
	Dropped       int64  `json:"dropped"`
	RejectedOrder int64  `json:"rejected_order"`
	Failed        int64  `json:"failed"`
	// DropRate is dropped frames over all frames; the admission
	// drop-stale gate's shed fraction.
	DropRate float64 `json:"drop_rate"`
	// DedupHitRate is cache-answered frames over all frames.
	DedupHitRate float64 `json:"dedup_hit_rate"`
	// OffloadFraction is cloud-served over all served (edge + cloud).
	OffloadFraction float64 `json:"offload_fraction"`
	// IntendedStartMs measures intended-frame-time→outcome for served
	// and cached frames: the coordinated-omission-safe per-frame
	// latency, charged from when the camera *meant* to send the frame.
	IntendedStartMs LatencyMs `json:"intended_start_ms"`
	// UploadMs summarizes the server-reported modeled upload cost of
	// this camera's cloud-served frames.
	UploadMs LatencyMs `json:"upload_ms"`
}

// StreamReport is the streaming scenario's artifact (BENCH_PR9.json).
type StreamReport struct {
	Name            string         `json:"name"`
	GeneratedAt     time.Time      `json:"generated_at"`
	Cameras         int            `json:"cameras"`
	StaticCameras   int            `json:"static_cameras"`
	FPS             float64        `json:"fps"`
	FramesPerCamera int            `json:"frames_per_camera"`
	FrameBytes      int            `json:"frame_bytes"`
	BudgetMs        float64        `json:"budget_ms,omitempty"`
	Total           CameraReport   `json:"total"`
	PerCamera       []CameraReport `json:"per_camera"`
}

// Write serializes the report as indented JSON.
func (r *StreamReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (conventionally
// BENCH_<name>.json).
func (r *StreamReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary is a one-line human synopsis.
func (r *StreamReport) Summary() string {
	t := r.Total
	return fmt.Sprintf("%d cams @ %g FPS: %d frames, drop %.1f%%, dedup %.1f%%, offload %.1f%%, intended-start p99 %.1f ms",
		r.Cameras, r.FPS, t.Frames, t.DropRate*100, t.DedupHitRate*100, t.OffloadFraction*100,
		t.IntendedStartMs.P99Ms)
}

// camResult is one camera's in-flight accounting.
type camResult struct {
	camera   string
	summary  stream.Summary
	intended metrics.LatencyRecorder
	upload   metrics.LatencyRecorder
	err      error
}

// RunStream runs the streaming-camera scenario and reports per-camera
// and aggregate drop, dedup, offload and intended-start numbers.
func RunStream(ctx context.Context, cfg StreamConfig) (*StreamReport, error) {
	cfg = cfg.withDefaults()
	period := time.Duration(float64(time.Second) / cfg.FPS)

	results := make([]*camResult, cfg.Cameras)
	var wg sync.WaitGroup
	var frameBytes int
	for i := 0; i < cfg.Cameras; i++ {
		res := &camResult{camera: fmt.Sprintf("cam-%02d", i)}
		results[i] = res
		static := i < cfg.StaticCameras
		frames, err := synthFrames(cfg, uint64(i), static)
		if err != nil {
			return nil, err
		}
		if frameBytes == 0 && len(frames) > 0 {
			frameBytes = len(frames[0])
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res.err = runCamera(ctx, cfg, res, frames, period)
		}()
	}
	wg.Wait()

	rep := &StreamReport{
		Name:            cfg.Name,
		GeneratedAt:     time.Now().UTC(),
		Cameras:         cfg.Cameras,
		StaticCameras:   cfg.StaticCameras,
		FPS:             cfg.FPS,
		FramesPerCamera: cfg.FramesPerCamera,
		FrameBytes:      frameBytes,
		BudgetMs:        float64(cfg.Budget) / float64(time.Millisecond),
	}
	totalIntended := metrics.HistogramSnapshot{}
	totalUpload := metrics.HistogramSnapshot{}
	for _, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: %s: %w", res.camera, res.err)
		}
		cr := cameraReport(res)
		rep.PerCamera = append(rep.PerCamera, cr)
		rep.Total.Frames += cr.Frames
		rep.Total.ServedEdge += cr.ServedEdge
		rep.Total.ServedCloud += cr.ServedCloud
		rep.Total.DedupHits += cr.DedupHits
		rep.Total.Dropped += cr.Dropped
		rep.Total.RejectedOrder += cr.RejectedOrder
		rep.Total.Failed += cr.Failed
		totalIntended = totalIntended.Merge(res.intended.Snapshot())
		totalUpload = totalUpload.Merge(res.upload.Snapshot())
	}
	rep.Total.Camera = "all"
	fillRates(&rep.Total)
	rep.Total.IntendedStartMs = latencyMs(totalIntended)
	rep.Total.UploadMs = latencyMs(totalUpload)
	return rep, nil
}

func cameraReport(res *camResult) CameraReport {
	s := res.summary
	cr := CameraReport{
		Camera:          res.camera,
		Frames:          s.Frames,
		ServedEdge:      s.ServedEdge,
		ServedCloud:     s.ServedCloud,
		DedupHits:       s.DedupHits,
		Dropped:         s.Dropped,
		RejectedOrder:   s.RejectedOrder,
		Failed:          s.Failed,
		IntendedStartMs: latencyMs(res.intended.Snapshot()),
		UploadMs:        latencyMs(res.upload.Snapshot()),
	}
	fillRates(&cr)
	return cr
}

func fillRates(cr *CameraReport) {
	if cr.Frames > 0 {
		cr.DropRate = float64(cr.Dropped) / float64(cr.Frames)
		cr.DedupHitRate = float64(cr.DedupHits) / float64(cr.Frames)
	}
	if served := cr.ServedEdge + cr.ServedCloud; served > 0 {
		cr.OffloadFraction = float64(cr.ServedCloud) / float64(served)
	}
}

// runCamera drives one camera: open the session, pace frames at FPS
// against the intended schedule (never against server progress), and
// charge each outcome's latency from the frame's *intended* send time.
func runCamera(ctx context.Context, cfg StreamConfig, res *camResult, frames [][]byte, period time.Duration) error {
	sess, err := stream.DialSession(ctx, cfg.HTTP, cfg.URL, res.camera, cfg.Model, cfg.Tenant, cfg.Budget)
	if err != nil {
		return err
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for o := range sess.Outcomes() {
			switch o.Outcome {
			case stream.OutcomeServed, stream.OutcomeCached:
				intended := start.Add(time.Duration(o.Seq-1) * period)
				res.intended.Observe(time.Since(intended).Seconds())
			}
			if o.UploadMs > 0 {
				res.upload.Observe(o.UploadMs / 1000)
			}
		}
	}()
	for i, payload := range frames {
		intended := start.Add(time.Duration(i) * period)
		if d := time.Until(intended); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := sess.Send(stream.Frame{Seq: int64(i + 1), Image: payload, Format: "ppm"}); err != nil {
			return fmt.Errorf("send frame %d: %w", i+1, err)
		}
	}
	if err := sess.CloseSend(); err != nil {
		return err
	}
	summary, err := sess.Wait()
	<-done
	if err != nil {
		return err
	}
	res.summary = summary
	return nil
}

// synthFrames renders one camera's frames. A static camera re-observes
// one scene with per-frame sensor noise (dHash-stable, the dedup
// cache's target); a panning camera gets fresh content every frame.
func synthFrames(cfg StreamConfig, cam uint64, static bool) ([][]byte, error) {
	kinds := []imaging.SyntheticKind{imaging.KindLeaf, imaging.KindRows, imaging.KindSoil, imaging.KindFruit}
	kind := kinds[int(cam)%len(kinds)]
	rng := stats.NewRNG(cfg.Seed + 7919*cam)
	frames := make([][]byte, cfg.FramesPerCamera)
	base := imaging.Synthesize(cfg.FrameSize, cfg.FrameSize, kind, rng)
	for i := range frames {
		var im *imaging.Image
		if static || i == 0 {
			im = noisyCopy(base, rng)
		} else {
			im = imaging.Synthesize(cfg.FrameSize, cfg.FrameSize, kinds[(int(cam)+i)%len(kinds)], rng)
		}
		data, err := imaging.EncodeBytes(im, imaging.FormatPPM)
		if err != nil {
			return nil, err
		}
		frames[i] = data
	}
	return frames, nil
}

// noisyCopy perturbs ~10% of pixels by ±2: visually the same scene,
// within the dedup cache's Hamming threshold.
func noisyCopy(base *imaging.Image, rng *stats.RNG) *imaging.Image {
	im := &imaging.Image{W: base.W, H: base.H, Pix: append([]uint8(nil), base.Pix...)}
	for i := range im.Pix {
		if rng.Intn(10) == 0 {
			im.Pix[i] = clampU8(int(im.Pix[i]) + rng.Intn(5) - 2)
		}
	}
	return im
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// EdgeCloudConfig describes a self-hosted edge→cloud continuum for the
// streaming scenario: one streaming-ingest edge replica (Jetson-class,
// full-fidelity sleeps so queueing pressure is real) offloading to a
// router over datacenter replicas, all in-process over loopback.
type EdgeCloudConfig struct {
	// Model is the single served model (default ViT_Tiny).
	Model string
	// EdgePlatform (default Jetson) and CloudPlatform (default A100).
	EdgePlatform  string
	CloudPlatform string
	// CloudReplicas is the datacenter tier size (default 2).
	CloudReplicas int
	// EdgeTimeScale is the fraction of modeled latency the edge really
	// sleeps (default 1: a real Jetson's pace). CloudTimeScale defaults
	// to 0.05 — fast, but nonzero so queueing exists.
	EdgeTimeScale  float64
	CloudTimeScale float64
	// Link models the uplink (default FiveG). ChunkBytes default 64 KiB.
	Link       *transfer.Link
	ChunkBytes int
	// QueueThreshold is the offload trigger depth (default 2).
	QueueThreshold int
	// LinkTimeScale scales uplink sleeps (default 1).
	LinkTimeScale float64
	// EdgePowerBudgetW optionally adds the power pressure signal.
	EdgePowerBudgetW float64
	// Budget is the default per-frame budget (0 = realtime SLO).
	Budget time.Duration
	// MaxQueueDepth bounds the edge admission queue (0 = default).
	MaxQueueDepth int
}

// EdgeCloud is a running self-hosted continuum.
type EdgeCloud struct {
	// URL is the edge's base URL — cameras stream here.
	URL string
	// CloudURL is the cloud router, for metrics inspection.
	CloudURL string
	// Ingest is the edge's ingest tier, for metrics inspection.
	Ingest *stream.Ingest
	stops  []func()
}

// Close tears the continuum down, edge first.
func (ec *EdgeCloud) Close() {
	for i := len(ec.stops) - 1; i >= 0; i-- {
		ec.stops[i]()
	}
	ec.stops = nil
}

// StartEdgeCloud stands the continuum up; callers must Close it.
func StartEdgeCloud(cfg EdgeCloudConfig) (*EdgeCloud, error) {
	if cfg.Model == "" {
		cfg.Model = "ViT_Tiny"
	}
	if cfg.EdgePlatform == "" {
		cfg.EdgePlatform = hw.KeyJetson
	}
	if cfg.CloudPlatform == "" {
		cfg.CloudPlatform = hw.KeyA100
	}
	if cfg.CloudReplicas <= 0 {
		cfg.CloudReplicas = 2
	}
	if cfg.EdgeTimeScale == 0 {
		cfg.EdgeTimeScale = 1
	}
	if cfg.CloudTimeScale == 0 {
		cfg.CloudTimeScale = 0.05
	}
	if cfg.Link == nil {
		l := transfer.FiveG()
		cfg.Link = &l
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 64 << 10
	}
	if cfg.QueueThreshold <= 0 {
		cfg.QueueThreshold = 2
	}
	if cfg.LinkTimeScale == 0 {
		cfg.LinkTimeScale = 1
	}

	ec := &EdgeCloud{}
	ok := false
	defer func() {
		if !ok {
			ec.Close()
		}
	}()

	// Cloud tier: fast replicas behind a router.
	var cloudURLs []string
	for i := 0; i < cfg.CloudReplicas; i++ {
		srv, err := core.NewDeployment(core.DeploymentConfig{
			Platform:  cfg.CloudPlatform,
			Models:    []string{cfg.Model},
			TimeScale: cfg.CloudTimeScale,
			Preproc:   "cpu",
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: cloud replica %d: %w", i, err)
		}
		ec.stops = append(ec.stops, srv.Close)
		url, stop, err := listenLoopback(srv.Handler())
		if err != nil {
			return nil, err
		}
		ec.stops = append(ec.stops, stop)
		cloudURLs = append(cloudURLs, url)
	}
	router, err := serve.NewRouter(cloudURLs, serve.RouterConfig{
		Pool: serve.PoolConfig{ProbeInterval: 20 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	ec.stops = append(ec.stops, router.Close)
	routerURL, stop, err := listenLoopback(router.Handler())
	if err != nil {
		return nil, err
	}
	ec.stops = append(ec.stops, stop)
	ec.CloudURL = routerURL

	// Edge tier: one Jetson-class replica with streaming ingest and
	// offload to the cloud router.
	edge, err := core.NewDeployment(core.DeploymentConfig{
		Platform:      cfg.EdgePlatform,
		Models:        []string{cfg.Model},
		TimeScale:     cfg.EdgeTimeScale,
		Preproc:       "cpu",
		MaxQueueDepth: cfg.MaxQueueDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: edge replica: %w", err)
	}
	ec.stops = append(ec.stops, edge.Close)
	pol := &stream.OffloadPolicy{
		Cloud:          serve.NewClient(routerURL),
		Link:           *cfg.Link,
		ChunkBytes:     cfg.ChunkBytes,
		QueueThreshold: cfg.QueueThreshold,
		LinkTimeScale:  cfg.LinkTimeScale,
	}
	if cfg.EdgePowerBudgetW > 0 {
		p, err := hw.ByName(cfg.EdgePlatform)
		if err != nil {
			return nil, err
		}
		pol.EdgePowerBudgetW = cfg.EdgePowerBudgetW
		pol.Power = energy.New(p)
	}
	ing, err := stream.NewIngest(stream.Config{
		Model:   cfg.Model,
		Local:   edge,
		Budget:  cfg.Budget,
		Offload: pol,
		Trace:   edge.Trace(),
	})
	if err != nil {
		return nil, err
	}
	ec.Ingest = ing
	edge.AddMetricsExtension("stream", ing.MetricsJSON, ing.WriteProm)
	mux := http.NewServeMux()
	mux.Handle("/v2/streams/", ing.Handler())
	mux.Handle("/", edge.Handler())
	edgeURL, stop, err := listenLoopback(mux)
	if err != nil {
		return nil, err
	}
	ec.stops = append(ec.stops, stop)
	ec.URL = edgeURL
	ok = true
	return ec, nil
}
