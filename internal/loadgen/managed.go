package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"harvest/internal/fleet"
	"harvest/internal/serve"
)

// ManagedFleetConfig describes a self-hosted *autoscaled* system under
// test: a dynamic router whose replica set is owned by the fleet
// control plane (lease registry + SLO-driven controller + local
// provisioner) instead of a fixed -spawn count. `make bench-fleet`
// drives one of these through a load step and replica churn.
type ManagedFleetConfig struct {
	// Model is the served (and demand-tracked) model.
	Model string
	// Platform is the replica platform the controller launches and the
	// oracle prices (default Jetson — the edge tier the paper scales
	// out).
	Platform string
	// Min/Max bound the fleet size (defaults 1 and 4).
	Min, Max int
	// Interval is the autoscaler tick (default 2s).
	Interval time.Duration
	// SLO is the per-request queue-wait bound the controller sizes for;
	// SLOClass the class it watches (defaults 100ms, "online").
	SLO      time.Duration
	SLOClass string
	// LeaseTTL is the replica lease length (default registry default).
	LeaseTTL time.Duration
	// Replica shape (see FleetConfig).
	TimeScale     float64
	QueueDelay    time.Duration
	MaxQueueDepth int
	// Logf, when non-nil, receives control-plane lifecycle messages.
	Logf func(format string, args ...any)
}

// ManagedFleet is a running autoscaled tier.
type ManagedFleet struct {
	// URL serves both planes: /v2/fleet/* (control) and everything else
	// (the router's data plane) — the loadgen target.
	URL         string
	Router      *serve.Router
	Registry    *fleet.Registry
	Controller  *fleet.Controller
	Provisioner *fleet.LocalProvisioner

	httpSrv *http.Server
}

// StartManagedFleet stands the tier up and blocks until the Min-floor
// replicas hold leases and pass health probes. Callers must Close it.
func StartManagedFleet(cfg ManagedFleetConfig) (*ManagedFleet, error) {
	if cfg.Model == "" {
		return nil, fmt.Errorf("loadgen: managed fleet needs a model")
	}
	if cfg.Platform == "" {
		cfg.Platform = "Jetson"
	}
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = 4
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 100 * time.Millisecond
	}

	router := serve.NewDynamicRouter(serve.RouterConfig{
		Pool: serve.PoolConfig{ProbeInterval: 20 * time.Millisecond},
	})
	registry := fleet.NewRegistry(router.Pool(), fleet.RegistryConfig{DefaultTTL: cfg.LeaseTTL})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		router.Close()
		registry.Close()
		return nil, err
	}
	url := "http://" + ln.Addr().String()

	prov := &fleet.LocalProvisioner{
		FleetURL:      url,
		Models:        []string{cfg.Model},
		TimeScale:     cfg.TimeScale,
		QueueDelay:    cfg.QueueDelay,
		MaxQueueDepth: cfg.MaxQueueDepth,
		TTL:           cfg.LeaseTTL,
		Logf:          cfg.Logf,
	}
	ctrl := fleet.NewController(router, registry, prov, fleet.ControllerConfig{
		Model: cfg.Model,
		Oracle: fleet.OracleConfig{
			Platforms:   []string{cfg.Platform},
			MaxReplicas: cfg.Max,
		},
		Min:      cfg.Min,
		Max:      cfg.Max,
		Interval: cfg.Interval,
		SLO:      cfg.SLO,
		SLOClass: cfg.SLOClass,
		Logf:     cfg.Logf,
	})

	mf := &ManagedFleet{
		URL:         url,
		Router:      router,
		Registry:    registry,
		Controller:  ctrl,
		Provisioner: prov,
		httpSrv: &http.Server{
			Handler:           fleet.Handler(registry, ctrl, router.Handler()),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = mf.httpSrv.Serve(ln) }()

	startCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ctrl.Start(startCtx); err != nil {
		mf.Close()
		return nil, err
	}
	// Ready means the floor replicas registered AND pass probes: a lease
	// alone does not take traffic.
	for len(registry.Leases()) < cfg.Min || router.Pool().HealthyCount() < cfg.Min {
		if startCtx.Err() != nil {
			mf.Close()
			return nil, fmt.Errorf("loadgen: managed fleet floor (%d replicas) not ready in 30s", cfg.Min)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return mf, nil
}

// KillOne abruptly kills one provisioner-owned replica — no
// deregistration, no drain, connections reset — and returns its lease
// name. The control plane finds out through probes and TTL expiry.
func (m *ManagedFleet) KillOne() (string, error) {
	urls := m.Provisioner.URLs()
	if len(urls) == 0 {
		return "", fmt.Errorf("loadgen: no replica to kill")
	}
	return m.Provisioner.Kill(urls[len(urls)-1])
}

// FleetReport snapshots the control plane's decision and event logs.
func (m *ManagedFleet) FleetReport() *FleetReport {
	return &FleetReport{
		Decisions: m.Controller.Decisions(),
		Events:    m.Registry.Events(),
	}
}

// Close tears the tier down: controller first (no further scaling),
// then the replicas, then the control plane and router.
func (m *ManagedFleet) Close() {
	m.Controller.Close()
	m.Provisioner.Close()
	m.Registry.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = m.httpSrv.Shutdown(ctx)
	m.Router.Close()
}
