package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"harvest/internal/fleet"
	"harvest/internal/metrics"
)

// LatencyMs summarizes one latency distribution in milliseconds,
// derived from the shared mergeable histogram layout (mean, min and
// max exact; percentiles bucket-interpolated).
type LatencyMs struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func latencyMs(h metrics.HistogramSnapshot) LatencyMs {
	s := h.Summary()
	return LatencyMs{
		Count:  s.N,
		MeanMs: s.Mean * 1000,
		P50Ms:  s.P50 * 1000,
		P95Ms:  s.P95 * 1000,
		P99Ms:  s.P99 * 1000,
		MinMs:  s.Min * 1000,
		MaxMs:  s.Max * 1000,
	}
}

// ClassReport is one class's (or the whole run's) measured results
// over the warmup-excluded window.
type ClassReport struct {
	Class string `json:"class"`
	// Tenant echoes the class's tenant tag ("" = default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Mode is "open" or "closed"; "mixed" for the run total when both
	// disciplines were present.
	Mode string `json:"mode"`
	// Offered counts scheduled in-window arrivals; Completed the
	// successful ones; Unfinished those still in flight when the drain
	// timeout expired (a saturation signal).
	Offered    int64 `json:"offered"`
	Completed  int64 `json:"completed"`
	Unfinished int64 `json:"unfinished"`
	// ThroughputRPS / ItemsPerSec are successful requests (images) per
	// second of measurement window.
	ThroughputRPS float64 `json:"throughput_rps"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	// ServiceMs measures send→response; IntendedStartMs measures
	// scheduled-arrival→response, the coordinated-omission-safe number
	// (identical to ServiceMs for closed-loop classes).
	ServiceMs       LatencyMs `json:"service_ms"`
	IntendedStartMs LatencyMs `json:"intended_start_ms"`
	// Outcome counters: the designed overload responses (429
	// admission sheds, 504 deadline evictions) apart from faults.
	Rejected429 int64 `json:"rejected_429"`
	Expired504  int64 `json:"expired_504"`
	Server5xx   int64 `json:"server_5xx"`
	OtherHTTP   int64 `json:"other_http_errors"`
	// Timeouts are client-side deadline expiries; Transport covers
	// connection-level failures.
	Timeouts  int64 `json:"client_timeouts"`
	Transport int64 `json:"transport_errors"`
	// ErrorRate is non-OK completions over all completions.
	ErrorRate float64 `json:"error_rate"`
	// SLOMs is the class threshold; SLOAttainment the fraction of
	// *offered* requests that completed within it on intended-start
	// latency (unfinished and errored requests count as misses).
	SLOMs         float64 `json:"slo_ms"`
	SLOAttainment float64 `json:"slo_attainment"`
	// Timeline, when Config.Timeline is set, buckets the whole run
	// (warmup included) by intended-start second — the view an
	// autoscaler's load-step reaction shows up in. Per class only; the
	// run total omits it.
	Timeline []TimelineBucket `json:"timeline,omitempty"`
}

// TimelineBucket is one second of a class's run.
type TimelineBucket struct {
	TSec    int   `json:"t_sec"`
	Offered int64 `json:"offered"`
	OK      int64 `json:"ok"`
	SLOMet  int64 `json:"slo_met"`
	// Attainment is SLOMet/Offered for the second (1 when nothing was
	// offered).
	Attainment float64 `json:"attainment"`
}

// FleetReport carries the control plane's side of a managed-fleet run:
// the autoscaler's decision log and the registry's membership events.
type FleetReport struct {
	Decisions []fleet.Decision `json:"decisions,omitempty"`
	Events    []fleet.Event    `json:"events,omitempty"`
}

// Report is the machine-readable result of one run: the effective
// config (every default resolved) plus per-class and total results.
// Serialized as BENCH_<name>.json it is the regression artifact the
// perf trajectory is tracked with.
type Report struct {
	Name        string  `json:"name"`
	GeneratedAt string  `json:"generated_at"`
	Config      Config  `json:"config"`
	WindowSec   float64 `json:"window_sec"`
	// Classes reports per-class results in config order; Total merges
	// them (latency histograms merged exactly, counters summed).
	Classes []ClassReport `json:"classes"`
	Total   ClassReport   `json:"total"`
	// Fleet, when the target was a managed fleet, records the control
	// plane's decisions and membership events for the run.
	Fleet *FleetReport `json:"fleet,omitempty"`
}

// buildReport assembles the report from per-class collectors.
func buildReport(cfg Config, cols []*classStats, generatedAt time.Time) *Report {
	window := (cfg.Duration - cfg.Warmup).Seconds()
	r := &Report{
		Name:        cfg.Name,
		GeneratedAt: generatedAt.UTC().Format(time.RFC3339),
		Config:      cfg,
		WindowSec:   window,
	}
	var (
		totService, totIntended metrics.HistogramSnapshot
		totItems                int64
		totSLOMet               int64
		modes                   = map[string]bool{}
	)
	tot := &r.Total
	tot.Class = "total"
	for i, cs := range cols {
		cc := cfg.Classes[i]
		cr := ClassReport{
			Class:       cc.Class,
			Tenant:      cc.Tenant,
			Mode:        "open",
			Offered:     cs.offered.Load(),
			Completed:   cs.counts[outcomeOK].Load(),
			Rejected429: cs.counts[outcomeRejected429].Load(),
			Expired504:  cs.counts[outcomeExpired504].Load(),
			Server5xx:   cs.counts[outcomeServer5xx].Load(),
			OtherHTTP:   cs.counts[outcomeOtherHTTP].Load(),
			Timeouts:    cs.counts[outcomeTimeout].Load(),
			Transport:   cs.counts[outcomeTransport].Load(),
			SLOMs:       cc.SLOMs,
		}
		if !cc.Open() {
			cr.Mode = "closed"
		}
		modes[cr.Mode] = true
		completions := cs.completions()
		if u := cr.Offered - completions; u > 0 {
			cr.Unfinished = u
		}
		if completions > 0 {
			cr.ErrorRate = float64(completions-cr.Completed) / float64(completions)
		}
		if window > 0 {
			cr.ThroughputRPS = float64(cr.Completed) / window
			cr.ItemsPerSec = float64(cs.okItems.Load()) / window
		}
		if cr.Offered > 0 {
			cr.SLOAttainment = float64(cs.sloMet.Load()) / float64(cr.Offered)
		}
		service, intended := cs.service.Snapshot(), cs.intended.Snapshot()
		cr.ServiceMs = latencyMs(service)
		cr.IntendedStartMs = latencyMs(intended)
		for t := range cs.cells {
			cell := &cs.cells[t]
			b := TimelineBucket{
				TSec:       t,
				Offered:    cell.offered.Load(),
				OK:         cell.ok.Load(),
				SLOMet:     cell.sloMet.Load(),
				Attainment: 1,
			}
			if b.Offered > 0 {
				b.Attainment = float64(b.SLOMet) / float64(b.Offered)
			}
			cr.Timeline = append(cr.Timeline, b)
		}
		r.Classes = append(r.Classes, cr)

		tot.Offered += cr.Offered
		tot.Completed += cr.Completed
		tot.Unfinished += cr.Unfinished
		tot.Rejected429 += cr.Rejected429
		tot.Expired504 += cr.Expired504
		tot.Server5xx += cr.Server5xx
		tot.OtherHTTP += cr.OtherHTTP
		tot.Timeouts += cr.Timeouts
		tot.Transport += cr.Transport
		totItems += cs.okItems.Load()
		totSLOMet += cs.sloMet.Load()
		totService = totService.Merge(service)
		totIntended = totIntended.Merge(intended)
	}
	switch {
	case len(modes) > 1:
		tot.Mode = "mixed"
	case modes["closed"]:
		tot.Mode = "closed"
	default:
		tot.Mode = "open"
	}
	completions := tot.Completed + tot.Rejected429 + tot.Expired504 + tot.Server5xx +
		tot.OtherHTTP + tot.Timeouts + tot.Transport
	if completions > 0 {
		tot.ErrorRate = float64(completions-tot.Completed) / float64(completions)
	}
	if window > 0 {
		tot.ThroughputRPS = float64(tot.Completed) / window
		tot.ItemsPerSec = float64(totItems) / window
	}
	if tot.Offered > 0 {
		tot.SLOAttainment = float64(totSLOMet) / float64(tot.Offered)
	}
	tot.ServiceMs = latencyMs(totService)
	tot.IntendedStartMs = latencyMs(totIntended)
	return r
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (conventionally
// BENCH_<name>.json).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DefaultPath returns the conventional artifact path for the run.
func (r *Report) DefaultPath() string { return fmt.Sprintf("BENCH_%s.json", r.Name) }

// Summary renders a short human-readable digest of the run.
func (r *Report) Summary() string {
	out := fmt.Sprintf("%s: %d offered, %d completed (%.1f req/s, %.1f img/s), error rate %.2f%%\n",
		r.Name, r.Total.Offered, r.Total.Completed,
		r.Total.ThroughputRPS, r.Total.ItemsPerSec, r.Total.ErrorRate*100)
	for _, c := range append(r.Classes, r.Total) {
		label := c.Class
		if c.Tenant != "" {
			label = c.Tenant + "/" + c.Class
		}
		out += fmt.Sprintf("  %-16s %-6s offered=%-6d ok=%-6d 429=%-5d 504=%-4d 5xx=%-3d unfin=%-4d "+
			"service p50/p99 = %.1f/%.1f ms, intended p50/p99 = %.1f/%.1f ms, SLO(%.1fms) %.1f%%\n",
			label, c.Mode, c.Offered, c.Completed, c.Rejected429, c.Expired504, c.Server5xx, c.Unfinished,
			c.ServiceMs.P50Ms, c.ServiceMs.P99Ms,
			c.IntendedStartMs.P50Ms, c.IntendedStartMs.P99Ms,
			c.SLOMs, c.SLOAttainment*100)
	}
	return out
}
