package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"harvest/internal/serve"
)

// slowServer fakes the /v2 surface with a deliberately serialized
// backend: one request at a time, serviceTime each, so its capacity is
// 1/serviceTime req/s and any offered load above that queues.
func slowServer(t *testing.T, serviceTime time.Duration) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v2/models/m/infer", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		time.Sleep(serviceTime)
		mu.Unlock()
		json.NewEncoder(w).Encode(serve.InferResponseJSON{Model: "m", Items: 1})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatedOmissionExposed is the demonstration the harness
// exists for. The fake server serves exactly one request at a time
// (2 ms each, capacity 500 req/s).
//
// A closed-loop driver with one worker never offers more than the
// server absorbs: its service-time p99 sits near 2 ms and looks
// healthy, silently omitting the load it *should* have offered — the
// coordinated-omission blind spot.
//
// An open-loop driver at 4x capacity keeps offering on schedule. Its
// intended-start latency (scheduled arrival → response) absorbs the
// growing backlog, so the p99 explodes, exposing the queueing the
// closed-loop number hides.
func TestCoordinatedOmissionExposed(t *testing.T) {
	const serviceTime = 5 * time.Millisecond // capacity: 200 req/s
	ts := slowServer(t, serviceTime)

	base := Config{
		Target:   ts.URL,
		Model:    "m",
		Seed:     11,
		Duration: 1200 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
		// Modest in-flight cap: slot waits land in intended-start
		// latency, so bounding concurrency cannot hide queueing, and it
		// keeps the test stable on small (single-core, race-detector)
		// machines.
		MaxInflight: 64,
	}

	closed := base
	closed.Name = "closed"
	closed.Classes = []ClassConfig{{Class: "online", Workers: 1, Items: 1}}
	closedReport, err := Run(context.Background(), closed)
	if err != nil {
		t.Fatal(err)
	}
	closedC := closedReport.Classes[0]

	open := base
	open.Name = "open"
	// 600 req/s offered against 200 req/s capacity: 3x saturation.
	// Cap the drain — working off the whole deliberate backlog would
	// only slow the test; abandoned stragglers count as unfinished.
	open.DrainTimeout = 2 * time.Second
	open.Classes = []ClassConfig{{Class: "online", Rate: 600, Items: 1}}
	openReport, err := Run(context.Background(), open)
	if err != nil {
		t.Fatal(err)
	}
	openC := openReport.Classes[0]

	if closedC.Completed == 0 || openC.Completed == 0 {
		t.Fatalf("completions closed=%d open=%d, want both > 0", closedC.Completed, openC.Completed)
	}

	// The closed-loop driver self-throttles to the server's capacity:
	// its service p99 looks like a healthy ~service-time system (wide
	// margin for race-detector/single-core overhead).
	if p99 := closedC.ServiceMs.P99Ms; p99 > 100 {
		t.Errorf("closed-loop service p99 %.2f ms — expected it to look deceptively healthy (~%v)",
			p99, serviceTime)
	}
	// Closed loop has no schedule, so intended == service by
	// construction.
	if closedC.IntendedStartMs.P99Ms > 2*closedC.ServiceMs.P99Ms+1 {
		t.Errorf("closed-loop intended p99 %.2f ms far above service p99 %.2f ms",
			closedC.IntendedStartMs.P99Ms, closedC.ServiceMs.P99Ms)
	}

	// The open-loop intended-start p99 must expose the backlog: at 4x
	// saturation for a second, queueing delay reaches hundreds of ms.
	openP99 := openC.IntendedStartMs.P99Ms
	if openP99 < 50 {
		t.Errorf("open-loop intended-start p99 %.2f ms, want >= 50 ms (queueing exposed)", openP99)
	}
	if openP99 < 5*closedC.ServiceMs.P99Ms {
		t.Errorf("open-loop intended-start p99 %.2f ms not >> closed-loop service p99 %.2f ms: "+
			"coordinated omission not exposed", openP99, closedC.ServiceMs.P99Ms)
	}
	// And intended-start latency dominates pure service latency.
	if openP99 < openC.ServiceMs.P99Ms {
		t.Errorf("open-loop intended p99 %.2f ms below its own service p99 %.2f ms",
			openP99, openC.ServiceMs.P99Ms)
	}
}
