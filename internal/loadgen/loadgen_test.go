package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseClassSpec(t *testing.T) {
	cc, err := ParseClassSpec("realtime:rate=60,items=2,deadline=16.7ms")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Class != "realtime" || cc.Rate != 60 || cc.Items != 2 || cc.DeadlineMs != 16.7 {
		t.Errorf("parsed %+v", cc)
	}
	if !cc.Open() {
		t.Error("rate-driven class should be open loop")
	}
	cc, err = ParseClassSpec("offline:workers=3,items=8,slo=2s,image=64")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Class != "offline" || cc.Workers != 3 || cc.Items != 8 || cc.SLOMs != 2000 || cc.ImageSide != 64 {
		t.Errorf("parsed %+v", cc)
	}
	if cc.Open() {
		t.Error("worker-driven class should be closed loop")
	}
	for _, bad := range []string{
		"",                          // no class
		"online",                    // neither rate nor workers
		"online:rate=5,workers=2",   // both disciplines
		"online:rate=banana",        // bad number
		"online:rate=5,turbo=9",     // unknown key
		"online:rate=5,deadline=xx", // bad duration
		"online:rate",               // not key=value
	} {
		if _, err := ParseClassSpec(bad); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{
		Target:   "http://x",
		Model:    "m",
		Duration: 10 * time.Second,
		Classes: []ClassConfig{
			{Class: "realtime", Rate: 10, Items: 1},
			{Class: "online", Rate: 10, Items: 1, DeadlineMs: 250},
			{Class: "offline", Workers: 1, Items: 4},
		},
	}
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape != ShapeConstant || got.PeakMult != 4 || got.MaxInflight != 4096 {
		t.Errorf("defaults %+v", got)
	}
	if got.Period != 2*time.Second || got.BurstDur != 400*time.Millisecond {
		t.Errorf("period defaults %v/%v", got.Period, got.BurstDur)
	}
	// SLO fallbacks: class default, explicit deadline, class default.
	if s := got.Classes[0].SLOMs; s != 16.7 {
		t.Errorf("realtime SLO %v, want 16.7", s)
	}
	if s := got.Classes[1].SLOMs; s != 250 {
		t.Errorf("online SLO %v, want deadline 250", s)
	}
	if s := got.Classes[2].SLOMs; s != 1000 {
		t.Errorf("offline SLO %v, want 1000", s)
	}
	if got.DurationSec != 10 || got.WarmupSec != 0 {
		t.Errorf("echoed seconds %v/%v", got.DurationSec, got.WarmupSec)
	}

	for _, bad := range []Config{
		{Model: "m", Duration: time.Second, Classes: cfg.Classes},                                   // no target
		{Target: "x", Duration: time.Second, Classes: cfg.Classes},                                  // no model
		{Target: "x", Model: "m", Classes: cfg.Classes},                                             // no duration
		{Target: "x", Model: "m", Duration: time.Second},                                            // no classes
		{Target: "x", Model: "m", Duration: time.Second, Warmup: time.Second, Classes: cfg.Classes}, // warmup >= duration
		{Target: "x", Model: "m", Duration: time.Second, Shape: "sawtooth", Classes: cfg.Classes},   // bad shape
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Errorf("config %+v validated, want error", bad)
		}
	}
}

// TestScheduleReproducible pins the acceptance criterion: identical
// seed + config reproduce identical arrival schedules, across every
// shape; a different seed diverges.
func TestScheduleReproducible(t *testing.T) {
	for _, shape := range []Shape{ShapeConstant, ShapeDiurnal, ShapeBurst, ShapeRamp} {
		cfg := Config{
			Target: "http://x", Model: "m", Seed: 99,
			Duration: 20 * time.Second, Shape: shape,
			Classes: []ClassConfig{
				{Class: "realtime", Rate: 40, Items: 1},
				{Class: "offline", Workers: 2, Items: 8},
				{Class: "online", Rate: 15, Items: 2},
			},
		}
		a, err := cfg.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cfg.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 3 || len(a[0]) == 0 || len(a[2]) == 0 {
			t.Fatalf("%s: schedule shape %d/%d/%d", shape, len(a[0]), len(a[1]), len(a[2]))
		}
		if a[1] != nil {
			t.Errorf("%s: closed-loop class has a schedule", shape)
		}
		for ci := range a {
			if len(a[ci]) != len(b[ci]) {
				t.Fatalf("%s: class %d lengths differ: %d vs %d", shape, ci, len(a[ci]), len(b[ci]))
			}
			for i := range a[ci] {
				if a[ci][i] != b[ci][i] {
					t.Fatalf("%s: class %d arrival %d differs: %+v vs %+v", shape, ci, i, a[ci][i], b[ci][i])
				}
			}
		}
		cfg.Seed = 100
		c, err := cfg.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		if len(c[0]) == len(a[0]) && len(c[0]) > 0 && c[0][0] == a[0][0] {
			t.Errorf("%s: different seeds produced the same first arrival", shape)
		}
	}
}

// TestRunAgainstSelfHostedFleet is the end-to-end smoke: a 1-replica
// self-hosted fleet driven with a mixed open+closed mix, report
// written and parsed back as a BENCH artifact.
func TestRunAgainstSelfHostedFleet(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Replicas: 1, Models: []string{"ViT_Tiny"}})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	cfg := Config{
		Target:   fleet.URL,
		Model:    "ViT_Tiny",
		Name:     "smoke",
		Seed:     7,
		Duration: 900 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
		Classes: []ClassConfig{
			{Class: "online", Rate: 120, Items: 1},
			{Class: "offline", Workers: 1, Items: 4},
		},
	}
	report, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Classes) != 2 {
		t.Fatalf("%d class reports, want 2", len(report.Classes))
	}
	on, off := report.Classes[0], report.Classes[1]
	if on.Mode != "open" || off.Mode != "closed" || report.Total.Mode != "mixed" {
		t.Errorf("modes %s/%s/%s", on.Mode, off.Mode, report.Total.Mode)
	}
	if on.Offered == 0 || on.Completed == 0 {
		t.Errorf("open class offered=%d completed=%d, want > 0", on.Offered, on.Completed)
	}
	if off.Completed == 0 {
		t.Errorf("closed class completed=%d, want > 0", off.Completed)
	}
	if report.Total.Completed != on.Completed+off.Completed {
		t.Errorf("total completed %d != %d + %d", report.Total.Completed, on.Completed, off.Completed)
	}
	if on.ServiceMs.Count == 0 || on.IntendedStartMs.Count == 0 {
		t.Error("open class has empty latency distributions")
	}
	if on.ThroughputRPS <= 0 || report.WindowSec <= 0 {
		t.Errorf("throughput %v over window %v", on.ThroughputRPS, report.WindowSec)
	}
	if report.Config.Seed != 7 || report.Config.DurationSec == 0 || len(report.Config.Classes) != 2 {
		t.Errorf("config echo %+v", report.Config)
	}

	path := filepath.Join(t.TempDir(), report.DefaultPath())
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH artifact does not parse: %v", err)
	}
	if back.Name != "smoke" || back.Total.Completed != report.Total.Completed {
		t.Errorf("round-tripped report %+v", back.Total)
	}
	if report.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestRunEncodedImages drives the images_b64 path against a
// preprocessing-enabled fleet.
func TestRunEncodedImages(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Replicas: 1, Models: []string{"ViT_Tiny"}, Preproc: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	report, err := Run(context.Background(), Config{
		Target:   fleet.URL,
		Model:    "ViT_Tiny",
		Name:     "img",
		Duration: 500 * time.Millisecond,
		Classes:  []ClassConfig{{Class: "online", Rate: 30, Items: 1, ImageSide: 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := report.Classes[0]
	if c.Completed == 0 || c.ErrorRate != 0 {
		t.Errorf("encoded-image class completed=%d errors=%.2f (429=%d 504=%d 5xx=%d http=%d timeout=%d transport=%d)",
			c.Completed, c.ErrorRate, c.Rejected429, c.Expired504, c.Server5xx, c.OtherHTTP, c.Timeouts, c.Transport)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config ran, want error")
	}
}
