// Package loadgen is the load harness that proves the serving tier
// scales: it drives a live harvest-serve or harvest-router endpoint
// with mixed scenario-class traffic at controlled arrival rates and
// reports coordinated-omission-safe latency.
//
// Two generation disciplines per traffic class:
//
//   - Open loop (Rate > 0): arrivals follow a seeded Poisson schedule
//     (workload.ArrivalStream) that never waits for responses. Each
//     request records two latencies — service time (send → response)
//     and *intended-start* time (scheduled arrival → response). When
//     the system under test queues, the intended-start distribution
//     absorbs the backlog that a closed-loop driver would silently
//     hide by slowing its own offered load (coordinated omission).
//
//   - Closed loop (Workers > 0): a fixed worker pool issues requests
//     back-to-back. Useful for peak-capacity probes; its latency
//     numbers are only trustworthy below saturation.
//
// Open-loop classes can additionally shape their rate over time
// (diurnal, burst, ramp-to-failure). Results, including the full
// config echo, are written as machine-readable BENCH_<name>.json so
// every PR's perf trajectory is a regression artifact.
package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"harvest/internal/stats"
	"harvest/internal/workload"
)

// Shape names an open-loop rate shape over the run.
type Shape string

// Rate shapes. Constant holds each class's Rate; the others modulate
// it (see rateFn) with PeakMult, Period and BurstDur.
const (
	ShapeConstant Shape = "constant"
	ShapeDiurnal  Shape = "diurnal"
	ShapeBurst    Shape = "burst"
	ShapeRamp     Shape = "ramp"
	ShapeStep     Shape = "step"
)

// ParseShape validates a shape name ("" means constant).
func ParseShape(s string) (Shape, error) {
	switch Shape(strings.ToLower(strings.TrimSpace(s))) {
	case "", ShapeConstant:
		return ShapeConstant, nil
	case ShapeDiurnal:
		return ShapeDiurnal, nil
	case ShapeBurst:
		return ShapeBurst, nil
	case ShapeRamp:
		return ShapeRamp, nil
	case ShapeStep:
		return ShapeStep, nil
	}
	return "", fmt.Errorf("loadgen: unknown rate shape %q (want constant, diurnal, burst, ramp or step)", s)
}

// ClassConfig is one traffic class in the mix. Exactly one of Rate
// (open loop) or Workers (closed loop) must be set.
type ClassConfig struct {
	// Class is the scenario lane: "realtime", "online" or "offline"
	// (serve.ParseClass names).
	Class string `json:"class"`
	// Tenant tags this class's requests with a tenant id ("" = the
	// server's default tenant). Several classes may share one tenant,
	// and one class name may appear under several tenants — that is the
	// multi-tenant fairness scenario's shape.
	Tenant string `json:"tenant,omitempty"`
	// Rate is the open-loop mean arrival rate in requests/second (the
	// base rate when a non-constant Shape applies).
	Rate float64 `json:"rate_per_sec,omitempty"`
	// Workers is the closed-loop concurrency; each worker issues
	// requests back-to-back.
	Workers int `json:"workers,omitempty"`
	// Items is the number of images per request (default 1).
	Items int `json:"items"`
	// DeadlineMs travels as the request's deadline_ms budget; 0 leaves
	// the server's class default in force.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// SLOMs is the latency threshold (on intended-start latency) that
	// counts as attained. Defaults to DeadlineMs when set, else a class
	// default (realtime 16.7 ms, online 100 ms, offline 1000 ms).
	SLOMs float64 `json:"slo_ms"`
	// ImageSide, when > 0, sends Items base64-encoded synthetic PPM
	// images of this side length per request (the encoded-image
	// serving path) instead of an items-only body. Requires a server
	// started with a preprocessing engine.
	ImageSide int `json:"image_side,omitempty"`
}

// Open reports whether the class is driven open-loop.
func (c ClassConfig) Open() bool { return c.Rate > 0 }

// classSLODefaults maps scenario lanes to default SLO thresholds (ms).
var classSLODefaults = map[string]float64{
	"realtime": 16.7, // the paper's 60 FPS frame budget
	"online":   100,
	"offline":  1000,
}

// ParseClassSpec parses the compact CLI form of one class:
//
//	class[:key=value[,key=value...]]
//
// with keys rate (req/s), workers, items, deadline (duration), slo
// (duration), image (side px) and tenant (id). Examples:
//
//	realtime:rate=60,items=1,deadline=16.7ms
//	offline:workers=2,items=8
//	online:rate=30,tenant=farm-a
func ParseClassSpec(spec string) (ClassConfig, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	cc := ClassConfig{Class: strings.ToLower(strings.TrimSpace(name)), Items: 1}
	if cc.Class == "" {
		return cc, fmt.Errorf("loadgen: empty class in spec %q", spec)
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return cc, fmt.Errorf("loadgen: malformed %q in class spec %q (want key=value)", kv, spec)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			var err error
			switch k {
			case "rate":
				cc.Rate, err = strconv.ParseFloat(v, 64)
			case "workers":
				cc.Workers, err = strconv.Atoi(v)
			case "items":
				cc.Items, err = strconv.Atoi(v)
			case "image":
				cc.ImageSide, err = strconv.Atoi(v)
			case "tenant":
				cc.Tenant = v
			case "deadline":
				var d time.Duration
				d, err = time.ParseDuration(v)
				cc.DeadlineMs = float64(d) / float64(time.Millisecond)
			case "slo":
				var d time.Duration
				d, err = time.ParseDuration(v)
				cc.SLOMs = float64(d) / float64(time.Millisecond)
			default:
				return cc, fmt.Errorf("loadgen: unknown key %q in class spec %q", k, spec)
			}
			if err != nil {
				return cc, fmt.Errorf("loadgen: bad value for %q in class spec %q: %v", k, spec, err)
			}
		}
	}
	return cc, cc.validate()
}

func (c ClassConfig) validate() error {
	if c.Rate < 0 || c.Workers < 0 || c.Items <= 0 || c.ImageSide < 0 || c.DeadlineMs < 0 || c.SLOMs < 0 {
		return fmt.Errorf("loadgen: class %q has a negative or zero-items parameter", c.Class)
	}
	if (c.Rate > 0) == (c.Workers > 0) {
		return fmt.Errorf("loadgen: class %q must set exactly one of rate (open loop) or workers (closed loop)", c.Class)
	}
	return nil
}

// Config is one load-generation run.
type Config struct {
	// Target is the base URL of the system under test (a harvest-serve
	// replica or a harvest-router fleet).
	Target string `json:"target"`
	// Model is the model to drive.
	Model string `json:"model"`
	// Name labels the run; the BENCH artifact is BENCH_<Name>.json.
	Name string `json:"name"`
	// Seed makes arrival schedules reproducible: identical seed and
	// config produce identical schedules.
	Seed uint64 `json:"seed"`
	// Duration is the full run length, Warmup the leading slice whose
	// requests are excluded from the measurement window.
	Duration time.Duration `json:"-"`
	Warmup   time.Duration `json:"-"`
	// DurationSec/WarmupSec mirror Duration/Warmup for the JSON echo.
	DurationSec float64 `json:"duration_sec"`
	WarmupSec   float64 `json:"warmup_sec"`
	// Shape modulates every open-loop class's rate over the run.
	Shape Shape `json:"shape"`
	// PeakMult scales the shape: ramp ends (and bursts/diurnal peaks
	// reach) PeakMult × the class base rate. Default 4.
	PeakMult float64 `json:"peak_mult,omitempty"`
	// Period is the diurnal/burst cycle length (default Duration/5).
	Period time.Duration `json:"-"`
	// BurstDur is the in-burst slice of each period (default Period/5).
	BurstDur  time.Duration `json:"-"`
	PeriodSec float64       `json:"period_sec,omitempty"`
	BurstSec  float64       `json:"burst_sec,omitempty"`
	// StepAt is when the step shape jumps to PeakMult × base (default
	// Duration/3, leaving a pre-step baseline and a post-step tail).
	StepAt    time.Duration `json:"-"`
	StepAtSec float64       `json:"step_at_sec,omitempty"`
	// Timeline adds per-second offered/completed/SLO-met buckets to
	// every class report (whole run, warmup included) — the view that
	// shows an autoscaler reacting to a load step.
	Timeline bool `json:"timeline,omitempty"`
	// MaxInflight caps concurrent in-flight requests per class (open
	// loop only; slot waits are part of intended-start latency, so the
	// cap cannot hide queueing). Default 4096.
	MaxInflight int `json:"max_inflight"`
	// DrainTimeout bounds the post-horizon wait for in-flight requests;
	// stragglers beyond it are reported as unfinished. Default 10 s.
	DrainTimeout time.Duration `json:"-"`
	// Classes is the traffic mix.
	Classes []ClassConfig `json:"classes"`
}

// withDefaults validates the config and resolves every default,
// returning the effective config that Run uses and the report echoes.
func (c Config) withDefaults() (Config, error) {
	if c.Target == "" {
		return c, fmt.Errorf("loadgen: no target URL")
	}
	if c.Model == "" {
		return c, fmt.Errorf("loadgen: no model")
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: non-positive duration")
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return c, fmt.Errorf("loadgen: warmup %v must be in [0, duration %v)", c.Warmup, c.Duration)
	}
	if len(c.Classes) == 0 {
		return c, fmt.Errorf("loadgen: no traffic classes")
	}
	var err error
	if c.Shape, err = ParseShape(string(c.Shape)); err != nil {
		return c, err
	}
	if c.Name == "" {
		c.Name = "run"
	}
	if c.PeakMult <= 0 {
		c.PeakMult = 4
	}
	if c.Period <= 0 {
		c.Period = c.Duration / 5
	}
	if c.BurstDur <= 0 {
		c.BurstDur = c.Period / 5
	}
	if c.StepAt <= 0 || c.StepAt >= c.Duration {
		c.StepAt = c.Duration / 3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4096
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	for i := range c.Classes {
		cc := &c.Classes[i]
		if cc.Items <= 0 {
			cc.Items = 1
		}
		if err := cc.validate(); err != nil {
			return c, err
		}
		if cc.SLOMs <= 0 {
			if cc.DeadlineMs > 0 {
				cc.SLOMs = cc.DeadlineMs
			} else if d, ok := classSLODefaults[cc.Class]; ok {
				cc.SLOMs = d
			} else {
				cc.SLOMs = classSLODefaults["online"]
			}
		}
	}
	c.DurationSec = c.Duration.Seconds()
	c.WarmupSec = c.Warmup.Seconds()
	c.PeriodSec = c.Period.Seconds()
	c.BurstSec = c.BurstDur.Seconds()
	c.StepAtSec = c.StepAt.Seconds()
	return c, nil
}

// classRNGs derives one independent deterministic stream per class
// from the run seed, in class order. Run and Schedule share this
// derivation, which is what makes schedules reproducible: identical
// seed and config always yield identical per-class arrival times.
func (c Config) classRNGs() []*stats.RNG {
	root := stats.NewRNG(c.Seed)
	rngs := make([]*stats.RNG, len(c.Classes))
	for i := range rngs {
		rngs[i] = root.Split()
	}
	return rngs
}

// Schedule materializes every open-loop class's arrival schedule — the
// exact offsets Run fires at for this seed and config. Closed-loop
// classes have no schedule and yield a nil entry. Intended for
// inspection and reproducibility checks; Run itself streams arrivals
// in O(1) memory.
func (c Config) Schedule() ([][]workload.Arrival, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	rngs := cfg.classRNGs()
	out := make([][]workload.Arrival, len(cfg.Classes))
	for i, cc := range cfg.Classes {
		if !cc.Open() {
			continue
		}
		rate, peak := cfg.rateFn(cc)
		s := workload.NewArrivalStream(rngs[i], rate, peak, cfg.Duration.Seconds(), cc.Items)
		s.Each(func(a workload.Arrival) bool {
			out[i] = append(out[i], a)
			return true
		})
	}
	return out, nil
}

// rateFn builds the workload rate shape and its peak for one open-loop
// class under the run's shape settings.
func (c Config) rateFn(cc ClassConfig) (workload.RateFn, float64) {
	base := cc.Rate
	horizon := c.Duration.Seconds()
	switch c.Shape {
	case ShapeDiurnal:
		amp := (c.PeakMult - 1) * base
		return workload.DiurnalRate(base, amp, c.Period.Seconds()), base + amp
	case ShapeBurst:
		burst := base * c.PeakMult
		peak := burst
		if base > peak {
			peak = base
		}
		return workload.BurstRate(base, burst, c.Period.Seconds(), c.BurstDur.Seconds()), peak
	case ShapeRamp:
		end := base * c.PeakMult
		peak := end
		if base > peak {
			peak = base
		}
		return workload.RampRate(base, end, horizon), peak
	case ShapeStep:
		stepped := base * c.PeakMult
		peak := stepped
		if base > peak {
			peak = base
		}
		return workload.StepRate(base, stepped, c.StepAt.Seconds()), peak
	default:
		return workload.ConstantRate(base), base
	}
}
