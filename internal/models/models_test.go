package models

import (
	"math"
	"testing"

	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestTable3GFLOPsMatchPaper(t *testing.T) {
	for _, e := range MustTable3() {
		if re := relErr(e.Spec.GFLOPsPerImage(), e.PaperGFLOPs); re > 0.01 {
			t.Errorf("%s GFLOPs %.3f vs paper %.2f (err %.2f%%)",
				e.Spec.Name, e.Spec.GFLOPsPerImage(), e.PaperGFLOPs, re*100)
		}
	}
}

func TestTable3ParamsMatchPaper(t *testing.T) {
	for _, e := range MustTable3() {
		if re := relErr(float64(e.Spec.Params())/1e6, e.PaperParamsM); re > 0.05 {
			t.Errorf("%s params %.2fM vs paper %.2fM (err %.2f%%)",
				e.Spec.Name, float64(e.Spec.Params())/1e6, e.PaperParamsM, re*100)
		}
	}
}

func TestViTTinyBreakdownAnchors(t *testing.T) {
	// Paper §4.0.2: ViT-Tiny MLP 81.73%, attention 18.23%.
	e, err := ByName(NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	mlp, attn := e.Spec.MLPAttentionShares()
	if math.Abs(mlp*100-81.73) > 0.5 {
		t.Errorf("ViT_Tiny MLP share %.2f%%, paper 81.73%%", mlp*100)
	}
	if math.Abs(attn*100-18.23) > 0.5 {
		t.Errorf("ViT_Tiny attention share %.2f%%, paper 18.23%%", attn*100)
	}
}

func TestResNet50ConvShareAnchor(t *testing.T) {
	// Paper §4.0.2: convolutions are 99.5% of ResNet50 compute.
	e, err := ByName(NameResNet50)
	if err != nil {
		t.Fatal(err)
	}
	conv := e.Spec.BreakdownByKind()[KindConv]
	if conv < 0.99 {
		t.Errorf("ResNet50 conv share %.4f, want >= 0.99", conv)
	}
}

func TestResNet50ExactMACs(t *testing.T) {
	// The canonical ResNet-50 @224 with 1000 classes is 4.09 GMACs.
	spec, err := BuildResNet(ResNet50Config(1000))
	if err != nil {
		t.Fatal(err)
	}
	g := spec.GFLOPsPerImage()
	if g < 4.05 || g > 4.13 {
		t.Errorf("ResNet50 GMACs %.3f, want ~4.09", g)
	}
	if p := spec.Params(); p < 25_400_000 || p > 25_700_000 {
		t.Errorf("ResNet50 params %d, want ~25.56M", p)
	}
}

func TestViTSeqLens(t *testing.T) {
	if n := ViTTinyConfig(10).SeqLen(); n != 257 {
		t.Errorf("ViT tiny seq %d, want 257 (16x16 patches + cls)", n)
	}
	if n := ViTBaseConfig(10).SeqLen(); n != 197 {
		t.Errorf("ViT base seq %d, want 197 (14x14 patches + cls)", n)
	}
}

func TestSpecAccountingInvariants(t *testing.T) {
	for _, e := range MustTable3() {
		s := e.Spec
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.ParamMACs() > s.TotalMACs() {
			t.Errorf("%s param MACs exceed total", s.Name)
		}
		if s.PeakActivationElems() <= 0 {
			t.Errorf("%s zero peak activation", s.Name)
		}
		if s.WeightBytes(2) != 2*s.Params() {
			t.Errorf("%s weight bytes wrong", s.Name)
		}
		shares := 0.0
		for _, v := range s.BreakdownByKind() {
			shares += v
		}
		if math.Abs(shares-1) > 1e-9 {
			t.Errorf("%s breakdown sums to %v", s.Name, shares)
		}
	}
}

func TestViTConfigValidate(t *testing.T) {
	bad := []ViTConfig{
		{Name: "x", InputSize: 30, PatchSize: 16, Dim: 64, Depth: 1, Heads: 2, MLPRatio: 4, NumClasses: 2},
		{Name: "x", InputSize: 32, PatchSize: 16, Dim: 65, Depth: 1, Heads: 2, MLPRatio: 4, NumClasses: 2},
		{Name: "x", InputSize: 32, PatchSize: 16, Dim: 64, Depth: 0, Heads: 2, MLPRatio: 4, NumClasses: 2},
		{Name: "x", InputSize: 32, PatchSize: 16, Dim: 64, Depth: 1, Heads: 2, MLPRatio: 4, NumClasses: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := BuildViT(c); err == nil {
			t.Errorf("case %d: BuildViT accepted", i)
		}
		if _, err := NewViTModel(c, stats.NewRNG(1)); err == nil {
			t.Errorf("case %d: NewViTModel accepted", i)
		}
	}
}

func TestResNetConfigValidate(t *testing.T) {
	bad := []ResNetConfig{
		{Name: "x", InputSize: 64, NumClasses: 2, BaseWidth: 8, StemWidth: 8},
		{Name: "x", InputSize: 8, NumClasses: 2, StageBlocks: []int{1}, BaseWidth: 8, StemWidth: 8},
		{Name: "x", InputSize: 64, NumClasses: 0, StageBlocks: []int{1}, BaseWidth: 8, StemWidth: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 4 {
		t.Fatal("want 4 model names")
	}
	for _, n := range Names() {
		e, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
		if e.Spec.Name != n {
			t.Errorf("ByName(%s) returned %s", n, e.Spec.Name)
		}
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestViTForwardShapesAndDeterminism(t *testing.T) {
	cfg := MicroViTConfig(7)
	m, err := NewViTModel(cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, cfg.InputSize, cfg.InputSize)
	x.RandInit(stats.NewRNG(4), 1)
	y1, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y1.Shape[0] != 2 || y1.Shape[1] != 7 {
		t.Fatalf("logits shape %v", y1.Shape)
	}
	y2, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(y1, y2); d != 0 {
		t.Errorf("forward not deterministic: %v", d)
	}
	for _, v := range y1.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite logits")
		}
	}
}

func TestViTForwardBatchConsistency(t *testing.T) {
	// Forward of a batch must equal per-image forwards.
	cfg := MicroViTConfig(5)
	m, err := NewViTModel(cfg, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 3, cfg.InputSize, cfg.InputSize)
	x.RandInit(stats.NewRNG(7), 1)
	batchOut, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	per := cfg.InputSize * cfg.InputSize * 3
	for b := 0; b < 3; b++ {
		single := tensor.FromSlice(append([]float32(nil), x.Data[b*per:(b+1)*per]...),
			1, 3, cfg.InputSize, cfg.InputSize)
		out, err := m.Forward(single)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 5; c++ {
			if math.Abs(float64(out.At(0, c)-batchOut.At(b, c))) > 1e-4 {
				t.Fatalf("image %d class %d: batch %v vs single %v",
					b, c, batchOut.At(b, c), out.At(0, c))
			}
		}
	}
}

func TestViTForwardInputValidation(t *testing.T) {
	m, err := NewViTModel(MicroViTConfig(3), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(tensor.New(1, 3, 16, 16)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := m.Forward(tensor.New(1, 1, 32, 32)); err == nil {
		t.Error("wrong channel count accepted")
	}
}

func TestViTInputSensitivity(t *testing.T) {
	// Different inputs should produce different logits.
	cfg := MicroViTConfig(4)
	m, err := NewViTModel(cfg, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(1, 3, 32, 32)
	b := tensor.New(1, 3, 32, 32)
	a.RandInit(stats.NewRNG(9), 1)
	b.RandInit(stats.NewRNG(10), 1)
	ya, _ := m.Forward(a)
	yb, _ := m.Forward(b)
	if tensor.MaxAbsDiff(ya, yb) == 0 {
		t.Error("model output insensitive to input")
	}
}

func TestResNetForward(t *testing.T) {
	cfg := MiniResNetConfig(6)
	m, err := NewResNetModel(cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, cfg.InputSize, cfg.InputSize)
	x.RandInit(stats.NewRNG(12), 1)
	y, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[0] != 2 || y.Shape[1] != 6 {
		t.Fatalf("resnet logits shape %v", y.Shape)
	}
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite resnet logits")
		}
	}
	if _, err := m.Forward(tensor.New(1, 3, 32, 32)); err == nil {
		t.Error("wrong resnet input accepted")
	}
}

func TestResNetForwardDeterministic(t *testing.T) {
	cfg := MiniResNetConfig(3)
	m, err := NewResNetModel(cfg, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, cfg.InputSize, cfg.InputSize)
	x.RandInit(stats.NewRNG(14), 1)
	y1, _ := m.Forward(x)
	y2, _ := m.Forward(x)
	if tensor.MaxAbsDiff(y1, y2) != 0 {
		t.Error("resnet forward not deterministic")
	}
}

func TestBuildViTIRvsRealModelAgreeOnParams(t *testing.T) {
	// The IR's parameter count must match the real model's allocation.
	cfg := MicroViTConfig(7)
	spec, err := BuildViT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewViTModel(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	real := int64(m.patchW.Len() + m.patchB.Len() + m.posEmbed.Len() + m.clsToken.Len() +
		m.normG.Len() + m.normB.Len() + m.headW.Len() + m.headB.Len())
	for _, b := range m.blocks {
		real += int64(b.norm1G.Len() + b.norm1B.Len() + b.qkvW.Len() + b.qkvB.Len() +
			b.projW.Len() + b.projB.Len() + b.norm2G.Len() + b.norm2B.Len() +
			b.fc1W.Len() + b.fc1B.Len() + b.fc2W.Len() + b.fc2B.Len())
	}
	if real != spec.Params() {
		t.Errorf("IR params %d != real model params %d", spec.Params(), real)
	}
}

func TestArchitectureString(t *testing.T) {
	if ArchTransformer.String() != "Transformer Based" || ArchCNN.String() != "CNN Based" {
		t.Error("architecture names wrong")
	}
}

func TestLayerKindString(t *testing.T) {
	names := map[LayerKind]string{
		KindConv: "conv", KindLinear: "linear", KindAttnMatmul: "attn-matmul",
		KindNorm: "norm", KindPool: "pool", KindAct: "act", KindEmbed: "embed",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []*Spec{
		{},
		{Name: "x", InputSize: 0, Layers: []Layer{{}}},
		{Name: "x", InputSize: 8},
		{Name: "x", InputSize: 8, Layers: []Layer{{MACs: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
