package models

import (
	"fmt"

	"harvest/internal/tensor"
)

// ViTConfig parameterizes a Vision Transformer.
type ViTConfig struct {
	Name       string
	InputSize  int // square input resolution
	PatchSize  int
	Dim        int // embedding dimension
	Depth      int // encoder blocks
	Heads      int
	MLPRatio   int // hidden = MLPRatio * Dim
	NumClasses int
}

// SeqLen returns the token count including the class token.
func (c ViTConfig) SeqLen() int {
	p := c.InputSize / c.PatchSize
	return p*p + 1
}

// Validate sanity-checks the configuration.
func (c ViTConfig) Validate() error {
	if c.InputSize%c.PatchSize != 0 {
		return fmt.Errorf("models: input %d not divisible by patch %d", c.InputSize, c.PatchSize)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("models: dim %d not divisible by heads %d", c.Dim, c.Heads)
	}
	if c.Depth <= 0 || c.MLPRatio <= 0 || c.NumClasses <= 0 {
		return fmt.Errorf("models: non-positive ViT dimension in %+v", c)
	}
	return nil
}

// BuildViT constructs the layer-wise IR of a ViT per the config.
func BuildViT(c ViTConfig) (*Spec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := int64(c.SeqLen())
	nPatch := n - 1
	d := int64(c.Dim)
	hidden := int64(c.MLPRatio) * d
	patchIn := int64(3 * c.PatchSize * c.PatchSize)

	spec := &Spec{Name: c.Name, Arch: ArchTransformer, InputSize: c.InputSize, NumClasses: c.NumClasses}
	add := func(l Layer) { spec.Layers = append(spec.Layers, l) }

	// Patch embedding: a conv with kernel=stride=patch, i.e. a linear
	// projection of each patch.
	add(Layer{Name: "patch_embed", Kind: KindEmbed,
		MACs:     nPatch * d * patchIn,
		Params:   d*patchIn + d,
		OutElems: n * d,
	})
	// Learned position embedding + class token (no MACs).
	add(Layer{Name: "pos_embed", Kind: KindEmbed, Params: n*d + d, OutElems: n * d})

	for b := 0; b < c.Depth; b++ {
		pfx := fmt.Sprintf("block%d.", b)
		add(Layer{Name: pfx + "norm1", Kind: KindNorm, Params: 2 * d, OutElems: n * d})
		add(Layer{Name: pfx + "attn.qkv", Kind: KindLinear,
			MACs: n * d * 3 * d, Params: 3*d*d + 3*d, OutElems: n * 3 * d})
		// QK^T and AV: 2 * n^2 * d MACs total across heads.
		add(Layer{Name: pfx + "attn.matmul", Kind: KindAttnMatmul,
			MACs: 2 * n * n * d, OutElems: n * n * int64(c.Heads)})
		add(Layer{Name: pfx + "attn.proj", Kind: KindLinear,
			MACs: n * d * d, Params: d*d + d, OutElems: n * d})
		add(Layer{Name: pfx + "norm2", Kind: KindNorm, Params: 2 * d, OutElems: n * d})
		add(Layer{Name: pfx + "mlp.fc1", Kind: KindLinear,
			MACs: n * d * hidden, Params: d*hidden + hidden, OutElems: n * hidden})
		add(Layer{Name: pfx + "mlp.act", Kind: KindAct, OutElems: n * hidden})
		add(Layer{Name: pfx + "mlp.fc2", Kind: KindLinear,
			MACs: n * hidden * d, Params: hidden*d + d, OutElems: n * d})
	}
	add(Layer{Name: "norm", Kind: KindNorm, Params: 2 * d, OutElems: n * d})
	add(Layer{Name: "head", Kind: KindLinear,
		MACs: d * int64(c.NumClasses), Params: d*int64(c.NumClasses) + int64(c.NumClasses),
		OutElems: int64(c.NumClasses)})
	return spec, nil
}

// ViTWeights holds the real float32 parameters of one encoder block.
type vitBlock struct {
	norm1G, norm1B *tensor.Tensor
	qkvW, qkvB     *tensor.Tensor // (3d x d), (3d)
	projW, projB   *tensor.Tensor // (d x d), (d)
	norm2G, norm2B *tensor.Tensor
	fc1W, fc1B     *tensor.Tensor // (hidden x d), (hidden)
	fc2W, fc2B     *tensor.Tensor // (d x hidden), (d)
}

// ViTModel is an executable ViT with real weights.
type ViTModel struct {
	Config ViTConfig
	// patchW is (d x 3*p*p); patchB is (d).
	patchW, patchB *tensor.Tensor
	posEmbed       *tensor.Tensor // (n x d)
	clsToken       *tensor.Tensor // (1 x d)
	blocks         []vitBlock
	normG, normB   *tensor.Tensor
	headW, headB   *tensor.Tensor // (classes x d)
}

// vitExec is the set of linear ops one forward pass routes through; the
// float32 model and its precision wrappers share the forward skeleton
// and differ only in this table. Norms, attention matmuls, residuals
// and activations always run in float32.
type vitExec struct {
	patch, head linearOp
	blocks      []vitBlockExec
}

type vitBlockExec struct {
	qkv, proj, fc1, fc2 linearOp
}

// denseExec builds the float32 op table over the model's live weight
// tensors. It is rebuilt per call site cheaply (ops are just pointer
// pairs), so weights loaded in place are always current.
func (m *ViTModel) denseExec() *vitExec {
	e := &vitExec{
		patch: denseLinear{w: m.patchW, b: m.patchB},
		head:  denseLinear{w: m.headW, b: m.headB},
	}
	for i := range m.blocks {
		blk := &m.blocks[i]
		e.blocks = append(e.blocks, vitBlockExec{
			qkv:  denseLinear{w: blk.qkvW, b: blk.qkvB},
			proj: denseLinear{w: blk.projW, b: blk.projB},
			fc1:  denseLinear{w: blk.fc1W, b: blk.fc1B},
			fc2:  denseLinear{w: blk.fc2W, b: blk.fc2B},
		})
	}
	return e
}

// PrecisionViT wraps a ViTModel with reduced-precision linear layers
// (fp16/bf16 storage or int8 SWAR compute). The wrapped model supplies
// the float32-resident parameters (norms, embeddings).
type PrecisionViT struct {
	Base      *ViTModel
	Precision string
	exec      *vitExec
}

// NewPrecisionViT converts the model's linear weights to the requested
// precision. The base model's float32 weights are left untouched.
func NewPrecisionViT(m *ViTModel, precision string) (*PrecisionViT, error) {
	e := &vitExec{}
	var err error
	if e.patch, err = newLinearOp(m.patchW, m.patchB, precision); err != nil {
		return nil, err
	}
	if e.head, err = newLinearOp(m.headW, m.headB, precision); err != nil {
		return nil, err
	}
	for i := range m.blocks {
		blk := &m.blocks[i]
		var be vitBlockExec
		if be.qkv, err = newLinearOp(blk.qkvW, blk.qkvB, precision); err != nil {
			return nil, err
		}
		if be.proj, err = newLinearOp(blk.projW, blk.projB, precision); err != nil {
			return nil, err
		}
		if be.fc1, err = newLinearOp(blk.fc1W, blk.fc1B, precision); err != nil {
			return nil, err
		}
		if be.fc2, err = newLinearOp(blk.fc2W, blk.fc2B, precision); err != nil {
			return nil, err
		}
		e.blocks = append(e.blocks, be)
	}
	return &PrecisionViT{Base: m, Precision: precision, exec: e}, nil
}

// Forward runs the wrapped model through the reduced-precision ops.
func (p *PrecisionViT) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return p.Base.forward(p.exec, x)
}

// NewViTModel allocates a ViT with weights initialized from r.
func NewViTModel(c ViTConfig, r tensor.Rand64) (*ViTModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	d := c.Dim
	hidden := c.MLPRatio * d
	n := c.SeqLen()
	pin := 3 * c.PatchSize * c.PatchSize
	scale := 0.05

	mk := func(shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		t.RandInit(r, scale)
		return t
	}
	ones := func(sz int) *tensor.Tensor {
		t := tensor.New(sz)
		t.Fill(1)
		return t
	}
	m := &ViTModel{
		Config:   c,
		patchW:   mk(d, pin),
		patchB:   mk(d),
		posEmbed: mk(n, d),
		clsToken: mk(1, d),
		normG:    ones(d),
		normB:    tensor.New(d),
		headW:    mk(c.NumClasses, d),
		headB:    mk(c.NumClasses),
	}
	for i := 0; i < c.Depth; i++ {
		m.blocks = append(m.blocks, vitBlock{
			norm1G: ones(d), norm1B: tensor.New(d),
			qkvW: mk(3*d, d), qkvB: mk(3 * d),
			projW: mk(d, d), projB: mk(d),
			norm2G: ones(d), norm2B: tensor.New(d),
			fc1W: mk(hidden, d), fc1B: mk(hidden),
			fc2W: mk(d, hidden), fc2B: mk(d),
		})
	}
	return m, nil
}

// Forward runs a real forward pass over a batch of CHW images
// (batch x 3 x S x S) and returns logits (batch x classes).
func (m *ViTModel) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return m.forward(m.denseExec(), x)
}

func (m *ViTModel) forward(e *vitExec, x *tensor.Tensor) (*tensor.Tensor, error) {
	c := m.Config
	if len(x.Shape) != 4 || x.Shape[1] != 3 || x.Shape[2] != c.InputSize || x.Shape[3] != c.InputSize {
		return nil, fmt.Errorf("models: ViT %s expects (B,3,%d,%d), got %v: %w", c.Name, c.InputSize, c.InputSize, x.Shape, tensor.ErrShape)
	}
	batch := x.Shape[0]
	out := tensor.New(batch, c.NumClasses)
	for b := 0; b < batch; b++ {
		logits := m.forwardOne(e, x, b)
		copy(out.Data[b*c.NumClasses:(b+1)*c.NumClasses], logits.Data)
	}
	return out, nil
}

func (m *ViTModel) forwardOne(e *vitExec, x *tensor.Tensor, b int) *tensor.Tensor {
	c := m.Config
	d := c.Dim
	p := c.PatchSize
	grid := c.InputSize / p
	nPatch := grid * grid
	n := nPatch + 1
	pin := 3 * p * p

	// Extract patches into (nPatch x pin).
	patches := tensor.New(nPatch, pin)
	s := c.InputSize
	for py := 0; py < grid; py++ {
		for px := 0; px < grid; px++ {
			row := patches.Data[(py*grid+px)*pin : (py*grid+px+1)*pin]
			i := 0
			for ch := 0; ch < 3; ch++ {
				for dy := 0; dy < p; dy++ {
					for dx := 0; dx < p; dx++ {
						row[i] = x.Data[((b*3+ch)*s+(py*p+dy))*s+px*p+dx]
						i++
					}
				}
			}
		}
	}
	// Token sequence with class token + position embedding.
	embedded := e.patch.apply(patches) // (nPatch x d)
	tokens := tensor.New(n, d)
	copy(tokens.Data[:d], m.clsToken.Data)
	copy(tokens.Data[d:], embedded.Data)
	tensor.AddInPlace(tokens, m.posEmbed)

	headDim := d / c.Heads
	for bi := range m.blocks {
		blk := &m.blocks[bi]
		ops := &e.blocks[bi]
		// Attention sub-block with pre-norm and residual.
		normed := tokens.Clone()
		tensor.LayerNorm(normed, blk.norm1G, blk.norm1B, 1e-6)
		qkv := ops.qkv.apply(normed) // (n x 3d)
		attnOut := tensor.New(n, d)
		for h := 0; h < c.Heads; h++ {
			q := tensor.New(n, headDim)
			k := tensor.New(n, headDim)
			v := tensor.New(n, headDim)
			for t := 0; t < n; t++ {
				base := t * 3 * d
				copy(q.Data[t*headDim:(t+1)*headDim], qkv.Data[base+h*headDim:base+(h+1)*headDim])
				copy(k.Data[t*headDim:(t+1)*headDim], qkv.Data[base+d+h*headDim:base+d+(h+1)*headDim])
				copy(v.Data[t*headDim:(t+1)*headDim], qkv.Data[base+2*d+h*headDim:base+2*d+(h+1)*headDim])
			}
			o := tensor.Attention(q, k, v)
			for t := 0; t < n; t++ {
				copy(attnOut.Data[t*d+h*headDim:t*d+(h+1)*headDim], o.Data[t*headDim:(t+1)*headDim])
			}
		}
		proj := ops.proj.apply(attnOut)
		tensor.AddInPlace(tokens, proj)

		// MLP sub-block with pre-norm and residual.
		normed = tokens.Clone()
		tensor.LayerNorm(normed, blk.norm2G, blk.norm2B, 1e-6)
		hiddenT := ops.fc1.apply(normed)
		tensor.GELU(hiddenT)
		mlpOut := ops.fc2.apply(hiddenT)
		tensor.AddInPlace(tokens, mlpOut)
	}

	tensor.LayerNorm(tokens, m.normG, m.normB, 1e-6)
	cls := tensor.FromSlice(tokens.Data[:d], 1, d)
	return e.head.apply(cls)
}
