// Package models defines the four vision models of the paper's Table 3
// (ViT Tiny/Small/Base and ResNet50) as layer-wise intermediate
// representations with exact FLOPs/parameter/activation accounting, plus
// real float32 forward-pass implementations over internal/tensor for
// functional validation.
//
// FLOPs convention: following the paper (whose Table 3 values match
// fvcore/timm-style counters), one multiply-accumulate counts as one
// FLOP and the headline "GFLOPs/Image" counts parameterized layers only
// (convolutions and linear projections). The non-parameterized attention
// matmuls (QK^T and AV) are tracked separately; they are what the paper
// calls the "attention layers" share (18.23% for ViT-Tiny vs 81.73% for
// MLP, §4.0.2).
package models

import "fmt"

// LayerKind classifies a layer for the per-kind compute breakdown.
type LayerKind int

// Layer kinds.
const (
	KindConv LayerKind = iota
	KindLinear
	KindAttnMatmul
	KindNorm
	KindPool
	KindAct
	KindEmbed
)

// String names the kind.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindLinear:
		return "linear"
	case KindAttnMatmul:
		return "attn-matmul"
	case KindNorm:
		return "norm"
	case KindPool:
		return "pool"
	case KindAct:
		return "act"
	case KindEmbed:
		return "embed"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// Layer is one entry of the model IR with its per-image costs.
type Layer struct {
	Name string
	Kind LayerKind
	// MACs per image (multiply-accumulates; the paper's FLOPs unit).
	MACs int64
	// Params is the number of learnable parameters.
	Params int64
	// OutElems is the number of output activation elements per image,
	// used by the activation-memory model.
	OutElems int64
}

// Architecture is the family of Table 3's "Architecture" row.
type Architecture int

// Architectures.
const (
	ArchTransformer Architecture = iota
	ArchCNN
)

// String names the architecture as the paper does.
func (a Architecture) String() string {
	if a == ArchCNN {
		return "CNN Based"
	}
	return "Transformer Based"
}

// Spec is a full model IR.
type Spec struct {
	Name       string
	Arch       Architecture
	InputSize  int // square spatial input
	NumClasses int
	Layers     []Layer
}

// Params returns total learnable parameters.
func (s *Spec) Params() int64 {
	var t int64
	for _, l := range s.Layers {
		t += l.Params
	}
	return t
}

// ParamMACs returns per-image MACs of parameterized layers only — the
// paper's headline "GFLOPs/Image" numerator.
func (s *Spec) ParamMACs() int64 {
	var t int64
	for _, l := range s.Layers {
		if l.Kind == KindConv || l.Kind == KindLinear || l.Kind == KindEmbed {
			t += l.MACs
		}
	}
	return t
}

// TotalMACs returns per-image MACs of every layer including the
// non-parameterized attention matmuls.
func (s *Spec) TotalMACs() int64 {
	var t int64
	for _, l := range s.Layers {
		t += l.MACs
	}
	return t
}

// GFLOPsPerImage returns the headline Table 3 metric.
func (s *Spec) GFLOPsPerImage() float64 { return float64(s.ParamMACs()) / 1e9 }

// BreakdownByKind returns each kind's share of TotalMACs, in [0,1].
func (s *Spec) BreakdownByKind() map[LayerKind]float64 {
	total := float64(s.TotalMACs())
	out := make(map[LayerKind]float64)
	if total == 0 {
		return out
	}
	for _, l := range s.Layers {
		out[l.Kind] += float64(l.MACs) / total
	}
	return out
}

// MLPAttentionShares returns the paper's §4.0.2 split for transformer
// models: "MLP layers" are the parameterized linear projections
// (qkv/proj/mlp/head), "attention layers" are the QK^T and AV matmuls.
func (s *Spec) MLPAttentionShares() (mlp, attn float64) {
	b := s.BreakdownByKind()
	return b[KindLinear] + b[KindEmbed], b[KindAttnMatmul]
}

// PeakActivationElems returns a per-image activation working-set
// estimate: the largest adjacent input+output pair across the layer
// graph, approximating ping-pong buffer execution.
func (s *Spec) PeakActivationElems() int64 {
	var peak, prev int64
	// Input activations.
	prev = int64(3 * s.InputSize * s.InputSize)
	for _, l := range s.Layers {
		if l.OutElems == 0 {
			continue
		}
		if v := prev + l.OutElems; v > peak {
			peak = v
		}
		prev = l.OutElems
	}
	return peak
}

// WeightBytes returns the model weight footprint at the given precision
// width in bytes per value.
func (s *Spec) WeightBytes(bytesPerValue int) int64 {
	return s.Params() * int64(bytesPerValue)
}

// TotalActivationElems returns the summed activation outputs of all
// layers per image — the per-image activation memory traffic used by
// the roofline analysis (each activation is written once and read by
// the next layer).
func (s *Spec) TotalActivationElems() int64 {
	var t int64
	for _, l := range s.Layers {
		t += l.OutElems
	}
	return t
}

// Validate checks IR consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("models: unnamed spec")
	}
	if s.InputSize <= 0 {
		return fmt.Errorf("models: %s invalid input size %d", s.Name, s.InputSize)
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("models: %s has no layers", s.Name)
	}
	for _, l := range s.Layers {
		if l.MACs < 0 || l.Params < 0 || l.OutElems < 0 {
			return fmt.Errorf("models: %s layer %s has negative accounting", s.Name, l.Name)
		}
	}
	return nil
}
