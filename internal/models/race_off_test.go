//go:build !race

package models

const raceEnabled = false
