package models

import (
	"errors"
	"math"
	"testing"

	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func execInput(t *testing.T, name string, batch int) *tensor.Tensor {
	t.Helper()
	sz := 32
	if name == "ResNet_Mini" {
		sz = 64
	}
	x := tensor.New(batch, 3, sz, sz)
	x.RandInit(stats.NewRNG(99), 1)
	return x
}

// logitRange returns max-min over all logits, the natural scale for
// bounding quantization-induced deltas.
func logitRange(y *tensor.Tensor) float64 {
	lo, hi := y.Data[0], y.Data[0]
	for _, v := range y.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return float64(hi - lo)
}

// TestPrecisionBackendsCloseToFP32 runs every reduced-precision backend
// on the micro models and bounds the logit delta against the fp32
// reference, relative to the logit range. fp16/bf16 only round weight
// storage; int8 additionally quantizes activations, so it gets the
// loosest (but still small) bound.
func TestPrecisionBackendsCloseToFP32(t *testing.T) {
	bounds := map[string]float64{PrecFP16: 0.01, PrecBF16: 0.05, PrecInt8: 0.15}
	for _, name := range []string{"ViT_Micro", "ResNet_Mini"} {
		base, err := NewExecutable(name, 10, PrecFP32, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		x := execInput(t, name, 2)
		want, err := base.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		scale := logitRange(want)
		if scale == 0 {
			t.Fatalf("%s: degenerate fp32 logits", name)
		}
		for prec, bound := range bounds {
			m, err := NewExecutable(name, 10, prec, stats.NewRNG(1))
			if err != nil {
				t.Fatalf("%s %s: %v", name, prec, err)
			}
			got, err := m.Forward(x)
			if err != nil {
				t.Fatalf("%s %s: %v", name, prec, err)
			}
			if d := tensor.MaxAbsDiff(got, want) / scale; d > bound || math.IsNaN(d) {
				t.Errorf("%s %s: relative logit delta %.4f exceeds %.4f", name, prec, d, bound)
			}
		}
	}
}

func TestNewExecutableErrors(t *testing.T) {
	if _, err := NewExecutable("NoSuchModel", 10, PrecFP32, stats.NewRNG(1)); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := NewExecutable("ViT_Micro", 10, "int4", stats.NewRNG(1)); err == nil {
		t.Error("unknown precision accepted")
	}
}

func TestPrecisionBadInputShape(t *testing.T) {
	for _, prec := range ExecPrecisions() {
		m, err := NewExecutable("ViT_Micro", 10, prec, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Forward(tensor.New(1, 3, 16, 16)); !errors.Is(err, tensor.ErrShape) {
			t.Errorf("%s: wrong-shape input returned %v, want ErrShape", prec, err)
		}
	}
}

// TestLoadTensorsShapeChecked is the regression test for assignTensor
// accepting any same-length tensor: a transposed weight must now be
// rejected at load time with a typed shape error.
func TestLoadTensorsShapeChecked(t *testing.T) {
	m, err := NewViTModel(MicroViTConfig(10), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	lookup := map[string]*tensor.Tensor{}
	for _, nt := range m.NamedTensors() {
		lookup[nt.Name] = nt.Tensor.Clone()
	}
	// Same element count, transposed shape: patchW is (d x 3p²).
	w := lookup["patch_embed.weight"]
	lookup["patch_embed.weight"] = w.Reshape(w.Shape[1], w.Shape[0])
	err = m.LoadTensors(lookup)
	if err == nil {
		t.Fatal("transposed weight accepted by LoadTensors")
	}
	if !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("shape mismatch error %v is not typed as tensor.ErrShape", err)
	}
}

// TestViTBaseInt8LogitsDelta is the end-to-end accuracy bound on the
// full-size ViT_Base: int8 logits must stay within a small fraction of
// the fp32 logit range. ~17 GMACs under fp32 plus the int8 pass; kept
// out of -short and race runs.
func TestViTBaseInt8LogitsDelta(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-size ViT_Base forward is too heavy for -short/race runs")
	}
	base, err := NewExecutable(NameViTBase, 1000, PrecFP32, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 224, 224)
	x.RandInit(stats.NewRNG(99), 1)
	want, err := base.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewExecutable(NameViTBase, 1000, PrecInt8, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	scale := logitRange(want)
	if scale == 0 {
		t.Fatal("degenerate fp32 logits")
	}
	if d := tensor.MaxAbsDiff(got, want) / scale; d > 0.15 {
		t.Errorf("ViT_Base int8 relative logit delta %.4f exceeds 0.15", d)
	}
}
