//go:build race

package models

// raceEnabled reports whether the race detector is compiled in; the
// full-size ViT_Base int8 end-to-end test skips under it (a 17 GMAC
// forward pass with 10-20x race instrumentation would dominate the
// race gate).
const raceEnabled = true
