package models

import "fmt"

// Model names as they appear in the paper's tables and figures.
const (
	NameViTTiny  = "ViT_Tiny"
	NameViTSmall = "ViT_Small"
	NameViTBase  = "ViT_Base"
	NameResNet50 = "ResNet50"
)

// Entry couples a model IR with the paper's Table 3 reference numbers
// used for validation and calibration.
type Entry struct {
	Spec *Spec
	// PaperGFLOPs is Table 3's "GFLOPs/Image".
	PaperGFLOPs float64
	// PaperParamsM is Table 3's parameter count in millions.
	PaperParamsM float64
}

// ViTTinyConfig is the evaluated ViT-Tiny: 32x32 input, patch 2
// (seq 257), dim 192. This reproduces Table 3's 1.37 GFLOPs/image with
// the parameterized-MACs counting convention.
func ViTTinyConfig(numClasses int) ViTConfig {
	return ViTConfig{Name: NameViTTiny, InputSize: 32, PatchSize: 2,
		Dim: 192, Depth: 12, Heads: 3, MLPRatio: 4, NumClasses: numClasses}
}

// ViTSmallConfig is the evaluated ViT-Small: 32x32 input, patch 2,
// dim 384 (Table 3: 5.47 GFLOPs/image).
func ViTSmallConfig(numClasses int) ViTConfig {
	return ViTConfig{Name: NameViTSmall, InputSize: 32, PatchSize: 2,
		Dim: 384, Depth: 12, Heads: 6, MLPRatio: 4, NumClasses: numClasses}
}

// ViTBaseConfig is the evaluated ViT-Base: 224x224 input, patch 16,
// dim 768 (Table 3: 16.86 GFLOPs/image).
func ViTBaseConfig(numClasses int) ViTConfig {
	return ViTConfig{Name: NameViTBase, InputSize: 224, PatchSize: 16,
		Dim: 768, Depth: 12, Heads: 12, MLPRatio: 4, NumClasses: numClasses}
}

// Table3 returns the four evaluated models in the paper's column order,
// with 1000-class heads (the ImageNet-style heads the parameter counts
// correspond to).
func Table3() ([]Entry, error) {
	vt, err := BuildViT(ViTTinyConfig(1000))
	if err != nil {
		return nil, err
	}
	vs, err := BuildViT(ViTSmallConfig(1000))
	if err != nil {
		return nil, err
	}
	vb, err := BuildViT(ViTBaseConfig(1000))
	if err != nil {
		return nil, err
	}
	rn, err := BuildResNet(ResNet50Config(1000))
	if err != nil {
		return nil, err
	}
	return []Entry{
		{Spec: vt, PaperGFLOPs: 1.37, PaperParamsM: 5.39},
		{Spec: vs, PaperGFLOPs: 5.47, PaperParamsM: 21.40},
		{Spec: vb, PaperGFLOPs: 16.86, PaperParamsM: 85.80},
		{Spec: rn, PaperGFLOPs: 4.09, PaperParamsM: 25.56},
	}, nil
}

// MustTable3 is Table3 but panics on error (the configs are constants).
func MustTable3() []Entry {
	e, err := Table3()
	if err != nil {
		panic(err)
	}
	return e
}

// ByName returns the Table 3 entry with the given name.
func ByName(name string) (Entry, error) {
	for _, e := range MustTable3() {
		if e.Spec.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("models: unknown model %q", name)
}

// Names returns the four model names in table order.
func Names() []string {
	return []string{NameViTTiny, NameViTSmall, NameViTBase, NameResNet50}
}

// MicroViTConfig returns a very small ViT used by tests and examples
// that execute real forward passes on the CPU.
func MicroViTConfig(numClasses int) ViTConfig {
	return ViTConfig{Name: "ViT_Micro", InputSize: 32, PatchSize: 8,
		Dim: 48, Depth: 2, Heads: 3, MLPRatio: 2, NumClasses: numClasses}
}

// MiniResNetConfig returns a shallow narrow ResNet for real-execution
// tests and examples.
func MiniResNetConfig(numClasses int) ResNetConfig {
	return ResNetConfig{Name: "ResNet_Mini", InputSize: 64, NumClasses: numClasses,
		StageBlocks: []int{1, 1}, BaseWidth: 8, StemWidth: 8}
}
