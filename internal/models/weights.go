package models

import (
	"fmt"

	"harvest/internal/tensor"
)

// NamedTensor pairs a canonical parameter name with its tensor, for
// serialization (internal/modelio) and engine building.
type NamedTensor struct {
	Name   string
	Tensor *tensor.Tensor
}

// NamedTensors returns every learnable tensor of the ViT in a stable
// order with torchvision-style names.
func (m *ViTModel) NamedTensors() []NamedTensor {
	out := []NamedTensor{
		{"patch_embed.weight", m.patchW},
		{"patch_embed.bias", m.patchB},
		{"pos_embed", m.posEmbed},
		{"cls_token", m.clsToken},
	}
	for i, b := range m.blocks {
		pfx := fmt.Sprintf("blocks.%d.", i)
		out = append(out,
			NamedTensor{pfx + "norm1.weight", b.norm1G},
			NamedTensor{pfx + "norm1.bias", b.norm1B},
			NamedTensor{pfx + "attn.qkv.weight", b.qkvW},
			NamedTensor{pfx + "attn.qkv.bias", b.qkvB},
			NamedTensor{pfx + "attn.proj.weight", b.projW},
			NamedTensor{pfx + "attn.proj.bias", b.projB},
			NamedTensor{pfx + "norm2.weight", b.norm2G},
			NamedTensor{pfx + "norm2.bias", b.norm2B},
			NamedTensor{pfx + "mlp.fc1.weight", b.fc1W},
			NamedTensor{pfx + "mlp.fc1.bias", b.fc1B},
			NamedTensor{pfx + "mlp.fc2.weight", b.fc2W},
			NamedTensor{pfx + "mlp.fc2.bias", b.fc2B},
		)
	}
	out = append(out,
		NamedTensor{"norm.weight", m.normG},
		NamedTensor{"norm.bias", m.normB},
		NamedTensor{"head.weight", m.headW},
		NamedTensor{"head.bias", m.headB},
	)
	return out
}

// LoadTensors replaces the ViT's parameters from a name->tensor lookup.
// Every parameter must be present with a matching shape.
func (m *ViTModel) LoadTensors(lookup map[string]*tensor.Tensor) error {
	for _, nt := range m.NamedTensors() {
		src, ok := lookup[nt.Name]
		if !ok {
			return fmt.Errorf("models: missing tensor %q", nt.Name)
		}
		if err := assignTensor(nt.Tensor, src, nt.Name); err != nil {
			return err
		}
	}
	return nil
}

// namedTensorsResNet enumerates a resnetConv's tensors.
func (rc *resnetConv) namedTensors(pfx string) []NamedTensor {
	return []NamedTensor{
		{pfx + "weight", rc.w},
		{pfx + "bn.mean", tensor.FromSlice(rc.bnMean, len(rc.bnMean))},
		{pfx + "bn.var", tensor.FromSlice(rc.bnVar, len(rc.bnVar))},
		{pfx + "bn.gamma", tensor.FromSlice(rc.bnG, len(rc.bnG))},
		{pfx + "bn.beta", tensor.FromSlice(rc.bnB, len(rc.bnB))},
	}
}

// NamedTensors returns every learnable tensor of the ResNet in a
// stable order. BN statistics are included (they fold into the conv at
// engine-build time but must survive serialization).
func (m *ResNetModel) NamedTensors() []NamedTensor {
	out := m.stem.namedTensors("stem.")
	for i, blk := range m.blocks {
		pfx := fmt.Sprintf("blocks.%d.", i)
		out = append(out, blk.conv1.namedTensors(pfx+"conv1.")...)
		out = append(out, blk.conv2.namedTensors(pfx+"conv2.")...)
		out = append(out, blk.conv3.namedTensors(pfx+"conv3.")...)
		if blk.down != nil {
			out = append(out, blk.down.namedTensors(pfx+"down.")...)
		}
	}
	out = append(out,
		NamedTensor{"fc.weight", m.fcW},
		NamedTensor{"fc.bias", m.fcB},
	)
	return out
}

// LoadTensors replaces the ResNet's parameters from a name->tensor
// lookup. Every parameter must be present with a matching shape.
func (m *ResNetModel) LoadTensors(lookup map[string]*tensor.Tensor) error {
	for _, nt := range m.NamedTensors() {
		src, ok := lookup[nt.Name]
		if !ok {
			return fmt.Errorf("models: missing tensor %q", nt.Name)
		}
		if err := assignTensor(nt.Tensor, src, nt.Name); err != nil {
			return err
		}
	}
	return nil
}

func assignTensor(dst, src *tensor.Tensor, name string) error {
	// Exact shape validation at load time (not just element count):
	// a transposed or mis-reshaped weight would pass a length check and
	// then panic (or silently compute garbage) deep inside a forward
	// pass on a serving replica. Errors wrap tensor.ErrShape so the API
	// boundary can classify them.
	if len(dst.Shape) != len(src.Shape) {
		return fmt.Errorf("models: tensor %q has shape %v, want %v: %w", name, src.Shape, dst.Shape, tensor.ErrShape)
	}
	for i, d := range dst.Shape {
		if src.Shape[i] != d {
			return fmt.Errorf("models: tensor %q has shape %v, want %v: %w", name, src.Shape, dst.Shape, tensor.ErrShape)
		}
	}
	copy(dst.Data, src.Data)
	return nil
}
