package models

import (
	"fmt"

	"harvest/internal/tensor"
)

// ResNetConfig parameterizes a bottleneck ResNet (ResNet-50 style).
type ResNetConfig struct {
	Name       string
	InputSize  int
	NumClasses int
	// StageBlocks is the number of bottleneck blocks per stage
	// ({3,4,6,3} for ResNet50).
	StageBlocks []int
	// BaseWidth is the mid-channel width of stage 0 (64 for ResNet50).
	BaseWidth int
	// StemWidth is the stem conv output channels (64).
	StemWidth int
}

// ResNet50Config returns the canonical ResNet-50 configuration of
// Table 3 (4.09 GFLOPs/image, 25.56M params at 1000 classes).
func ResNet50Config(numClasses int) ResNetConfig {
	return ResNetConfig{
		Name:        "ResNet50",
		InputSize:   224,
		NumClasses:  numClasses,
		StageBlocks: []int{3, 4, 6, 3},
		BaseWidth:   64,
		StemWidth:   64,
	}
}

// Validate sanity-checks the configuration.
func (c ResNetConfig) Validate() error {
	if len(c.StageBlocks) == 0 {
		return fmt.Errorf("models: resnet %s has no stages", c.Name)
	}
	if c.InputSize < 32 || c.BaseWidth <= 0 || c.StemWidth <= 0 || c.NumClasses <= 0 {
		return fmt.Errorf("models: invalid resnet config %+v", c)
	}
	return nil
}

func convMACs(outH, outW, outC, inC, k int) int64 {
	return int64(outH) * int64(outW) * int64(outC) * int64(inC) * int64(k) * int64(k)
}

// BuildResNet constructs the layer-wise IR of a bottleneck ResNet.
func BuildResNet(c ResNetConfig) (*Spec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	spec := &Spec{Name: c.Name, Arch: ArchCNN, InputSize: c.InputSize, NumClasses: c.NumClasses}
	add := func(l Layer) { spec.Layers = append(spec.Layers, l) }

	// Stem: 7x7/2 conv + BN + ReLU + 3x3/2 maxpool.
	s := c.InputSize / 2
	add(Layer{Name: "conv1", Kind: KindConv,
		MACs:     convMACs(s, s, c.StemWidth, 3, 7),
		Params:   int64(c.StemWidth) * 3 * 49,
		OutElems: int64(c.StemWidth) * int64(s) * int64(s)})
	add(Layer{Name: "bn1", Kind: KindNorm, Params: int64(2 * c.StemWidth),
		OutElems: int64(c.StemWidth) * int64(s) * int64(s)})
	s /= 2
	add(Layer{Name: "maxpool", Kind: KindPool,
		OutElems: int64(c.StemWidth) * int64(s) * int64(s)})

	inC := c.StemWidth
	for stage, nBlocks := range c.StageBlocks {
		mid := c.BaseWidth << stage
		outC := mid * 4
		for blk := 0; blk < nBlocks; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			outS := s / stride
			pfx := fmt.Sprintf("layer%d.%d.", stage+1, blk)
			// 1x1 reduce (applies the stride in the torchvision v1.5
			// convention's 3x3; we keep stride on the 3x3).
			add(Layer{Name: pfx + "conv1", Kind: KindConv,
				MACs:     convMACs(s, s, mid, inC, 1),
				Params:   int64(mid) * int64(inC),
				OutElems: int64(mid) * int64(s) * int64(s)})
			add(Layer{Name: pfx + "bn1", Kind: KindNorm, Params: int64(2 * mid),
				OutElems: int64(mid) * int64(s) * int64(s)})
			// 3x3 spatial (carries stride).
			add(Layer{Name: pfx + "conv2", Kind: KindConv,
				MACs:     convMACs(outS, outS, mid, mid, 3),
				Params:   int64(mid) * int64(mid) * 9,
				OutElems: int64(mid) * int64(outS) * int64(outS)})
			add(Layer{Name: pfx + "bn2", Kind: KindNorm, Params: int64(2 * mid),
				OutElems: int64(mid) * int64(outS) * int64(outS)})
			// 1x1 expand.
			add(Layer{Name: pfx + "conv3", Kind: KindConv,
				MACs:     convMACs(outS, outS, outC, mid, 1),
				Params:   int64(outC) * int64(mid),
				OutElems: int64(outC) * int64(outS) * int64(outS)})
			add(Layer{Name: pfx + "bn3", Kind: KindNorm, Params: int64(2 * outC),
				OutElems: int64(outC) * int64(outS) * int64(outS)})
			if blk == 0 {
				// Projection shortcut.
				add(Layer{Name: pfx + "downsample", Kind: KindConv,
					MACs:     convMACs(outS, outS, outC, inC, 1),
					Params:   int64(outC) * int64(inC),
					OutElems: int64(outC) * int64(outS) * int64(outS)})
				add(Layer{Name: pfx + "downsample.bn", Kind: KindNorm, Params: int64(2 * outC),
					OutElems: int64(outC) * int64(outS) * int64(outS)})
			}
			inC = outC
			s = outS
		}
	}
	add(Layer{Name: "avgpool", Kind: KindPool, OutElems: int64(inC)})
	add(Layer{Name: "fc", Kind: KindLinear,
		MACs:     int64(inC) * int64(c.NumClasses),
		Params:   int64(inC)*int64(c.NumClasses) + int64(c.NumClasses),
		OutElems: int64(c.NumClasses)})
	return spec, nil
}

// resnetConv bundles a conv's real weights with folded BN statistics.
type resnetConv struct {
	w          *tensor.Tensor
	bnMean     []float32
	bnVar      []float32
	bnG, bnB   []float32
	stride     int
	pad        int
	activateOn bool // apply ReLU after BN
}

func (rc *resnetConv) apply(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.Conv2D(x, rc.w, nil, rc.stride, rc.pad)
	tensor.BatchNormInference(y, rc.bnMean, rc.bnVar, rc.bnG, rc.bnB, 1e-5)
	if rc.activateOn {
		tensor.ReLU(y)
	}
	return y
}

type resnetBlock struct {
	conv1, conv2, conv3 *resnetConv
	down                *resnetConv // nil when identity shortcut
}

// ResNetModel is an executable bottleneck ResNet with real weights.
type ResNetModel struct {
	Config       ResNetConfig
	stem         *resnetConv
	blocks       []*resnetBlock
	fcW, fcB     *tensor.Tensor
	finalWidth   int
	stemPoolSize int
}

// NewResNetModel allocates a ResNet with random weights and benign BN
// statistics (mean 0, var 1).
func NewResNetModel(c ResNetConfig, r tensor.Rand64) (*ResNetModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	mkConv := func(outC, inC, k, stride, pad int, act bool) *resnetConv {
		w := tensor.New(outC, inC, k, k)
		w.RandInit(r, 0.08)
		mean := make([]float32, outC)
		variance := make([]float32, outC)
		g := make([]float32, outC)
		bta := make([]float32, outC)
		for i := range variance {
			variance[i] = 1
			g[i] = 1
		}
		return &resnetConv{w: w, bnMean: mean, bnVar: variance, bnG: g, bnB: bta,
			stride: stride, pad: pad, activateOn: act}
	}
	m := &ResNetModel{Config: c, stemPoolSize: 3}
	m.stem = mkConv(c.StemWidth, 3, 7, 2, 3, true)
	inC := c.StemWidth
	for stage, nBlocks := range c.StageBlocks {
		mid := c.BaseWidth << stage
		outC := mid * 4
		for blk := 0; blk < nBlocks; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			rb := &resnetBlock{
				conv1: mkConv(mid, inC, 1, 1, 0, true),
				conv2: mkConv(mid, mid, 3, stride, 1, true),
				conv3: mkConv(outC, mid, 1, 1, 0, false),
			}
			if blk == 0 {
				rb.down = mkConv(outC, inC, 1, stride, 0, false)
			}
			m.blocks = append(m.blocks, rb)
			inC = outC
		}
	}
	m.finalWidth = inC
	m.fcW = tensor.New(c.NumClasses, inC)
	m.fcW.RandInit(r, 0.08)
	m.fcB = tensor.New(c.NumClasses)
	return m, nil
}

// resnetExec is the op table one ResNet forward pass routes through;
// the float32 model and its precision wrappers share the skeleton and
// differ only here. Pooling, residual adds and ReLU always run in
// float32.
type resnetExec struct {
	stem   convOp
	blocks []resnetBlockExec
	fc     linearOp
}

type resnetBlockExec struct {
	conv1, conv2, conv3 convOp
	down                convOp // nil when identity shortcut
}

// denseExec builds the float32 op table over the model's live weights.
func (m *ResNetModel) denseExec() *resnetExec {
	e := &resnetExec{stem: m.stem, fc: denseLinear{w: m.fcW, b: m.fcB}}
	for _, blk := range m.blocks {
		be := resnetBlockExec{conv1: blk.conv1, conv2: blk.conv2, conv3: blk.conv3}
		if blk.down != nil {
			be.down = blk.down
		}
		e.blocks = append(e.blocks, be)
	}
	return e
}

// PrecisionResNet wraps a ResNetModel with reduced-precision conv and
// linear layers. BN statistics and the residual arithmetic stay
// float32.
type PrecisionResNet struct {
	Base      *ResNetModel
	Precision string
	exec      *resnetExec
}

// NewPrecisionResNet converts the model's conv/linear weights to the
// requested precision; the base model's float32 weights are untouched.
func NewPrecisionResNet(m *ResNetModel, precision string) (*PrecisionResNet, error) {
	e := &resnetExec{}
	var err error
	if e.stem, err = newConvOp(m.stem, precision); err != nil {
		return nil, err
	}
	if e.fc, err = newLinearOp(m.fcW, m.fcB, precision); err != nil {
		return nil, err
	}
	for _, blk := range m.blocks {
		var be resnetBlockExec
		if be.conv1, err = newConvOp(blk.conv1, precision); err != nil {
			return nil, err
		}
		if be.conv2, err = newConvOp(blk.conv2, precision); err != nil {
			return nil, err
		}
		if be.conv3, err = newConvOp(blk.conv3, precision); err != nil {
			return nil, err
		}
		if blk.down != nil {
			if be.down, err = newConvOp(blk.down, precision); err != nil {
				return nil, err
			}
		}
		e.blocks = append(e.blocks, be)
	}
	return &PrecisionResNet{Base: m, Precision: precision, exec: e}, nil
}

// Forward runs the wrapped model through the reduced-precision ops.
func (p *PrecisionResNet) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return p.Base.forward(p.exec, x)
}

// Forward runs a real forward pass over (B,3,S,S) and returns logits
// (B x classes).
func (m *ResNetModel) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return m.forward(m.denseExec(), x)
}

func (m *ResNetModel) forward(e *resnetExec, x *tensor.Tensor) (*tensor.Tensor, error) {
	c := m.Config
	if len(x.Shape) != 4 || x.Shape[1] != 3 || x.Shape[2] != c.InputSize || x.Shape[3] != c.InputSize {
		return nil, fmt.Errorf("models: ResNet %s expects (B,3,%d,%d), got %v: %w", c.Name, c.InputSize, c.InputSize, x.Shape, tensor.ErrShape)
	}
	h := e.stem.apply(x)
	h = tensor.MaxPool2D(h, 3, 2, 1)
	for _, blk := range e.blocks {
		identity := h
		out := blk.conv1.apply(h)
		out = blk.conv2.apply(out)
		out = blk.conv3.apply(out)
		if blk.down != nil {
			identity = blk.down.apply(h)
		}
		tensor.AddInPlace(out, identity)
		tensor.ReLU(out)
		h = out
	}
	pooled := tensor.GlobalAvgPool2D(h) // (B x width)
	return e.fc.apply(pooled), nil
}
