package models

import (
	"fmt"
	"sync"

	"harvest/internal/quant"
	"harvest/internal/tensor"
)

// Executable backend precisions. FP32 runs the packed f32 GEMM
// directly; FP16/BF16 store weights as 16-bit words dequantized
// panel-at-a-time inside the GEMM pack step; Int8 runs the SWAR integer
// kernel over 7-bit codes (symmetric per-output-channel weights,
// dynamic asymmetric per-row activations) accumulating in int32.
const (
	PrecFP32 = "fp32"
	PrecFP16 = "fp16"
	PrecBF16 = "bf16"
	PrecInt8 = "int8"
)

// ExecPrecisions lists the precisions NewExecutable accepts.
func ExecPrecisions() []string {
	return []string{PrecFP32, PrecFP16, PrecBF16, PrecInt8}
}

// Executor is a real forward-capable model backend. It is structurally
// identical to engine.Forwarder (models cannot import engine).
type Executor interface {
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
}

// linearOp applies y = x·Wᵀ + bias at some storage precision. The
// float32 models and their precision wrappers share one forward
// skeleton parameterized over these ops.
type linearOp interface {
	apply(x *tensor.Tensor) *tensor.Tensor
}

// convOp applies a conv (+ folded BN + optional ReLU) at some storage
// precision.
type convOp interface {
	apply(x *tensor.Tensor) *tensor.Tensor
}

// denseLinear is the float32 op over the packed GEMM.
type denseLinear struct{ w, b *tensor.Tensor }

func (l denseLinear) apply(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Linear(x, l.w, l.b)
}

// halfLinear stores weights as float16/bfloat16 words.
type halfLinear struct {
	w       []uint16 // (out × in)
	bias    []float32
	out, in int
	bf16    bool
}

func newHalfLinear(w, bias *tensor.Tensor, bf16 bool) halfLinear {
	l := halfLinear{
		w:    encodeHalf(w.Data, bf16),
		out:  w.Shape[0],
		in:   w.Shape[1],
		bf16: bf16,
	}
	if bias != nil {
		l.bias = bias.Data
	}
	return l
}

func encodeHalf(xs []float32, bf16 bool) []uint16 {
	out := make([]uint16, len(xs))
	for i, v := range xs {
		if bf16 {
			out[i] = uint16(quant.BF16FromFloat32(v))
		} else {
			out[i] = uint16(quant.FromFloat32(v))
		}
	}
	return out
}

func (l halfLinear) apply(x *tensor.Tensor) *tensor.Tensor {
	m := x.Shape[0]
	y := tensor.New(m, l.out)
	tensor.GemmTransBF16Into(y.Data, x.Data, l.w, m, l.out, l.in, l.bf16)
	addBiasRows(y.Data, l.bias, m, l.out)
	return y
}

func addBiasRows(y, bias []float32, m, n int) {
	if bias == nil {
		return
	}
	for i := 0; i < m; i++ {
		row := y[i*n : i*n+n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// q7Linear holds symmetric per-output-channel 7-bit weights packed for
// the SWAR kernel; activations are quantized dynamically per row.
type q7Linear struct {
	packed  *tensor.PackedQ7
	scales  []float32 // per output channel
	bias    []float32
	out, in int
}

func newQ7Linear(w, bias *tensor.Tensor) q7Linear {
	out, in := w.Shape[0], w.Shape[1]
	l := q7Linear{
		scales: make([]float32, out),
		out:    out,
		in:     in,
	}
	codes := make([]int8, out*in)
	for oc := 0; oc < out; oc++ {
		row := w.Data[oc*in : oc*in+in]
		s := quant.CalibrateQ7Sym(row)
		l.scales[oc] = s
		quant.QuantizeQ7SymInto(codes[oc*in:oc*in+in], row, s)
	}
	l.packed = tensor.PackQ7Weights(codes, out, in)
	if bias != nil {
		l.bias = bias.Data
	}
	return l
}

func (l q7Linear) apply(x *tensor.Tensor) *tensor.Tensor {
	m := x.Shape[0]
	y := tensor.New(m, l.out)
	sc := getExecScratch()
	q7Forward(y.Data, x.Data, m, l.in, l.packed, l.scales, l.bias, sc)
	putExecScratch(sc)
	return y
}

// execScratch pools the per-call working set of the quantized and
// half-precision paths (codes, int32 accumulators, packed activations,
// im2col panels) so steady-state forwards do not allocate per layer.
type execScratch struct {
	codes []uint8
	i32   []int32
	f32   []float32
	f32b  []float32
	acts  tensor.PackedQ7
}

var execScratchPool = sync.Pool{New: func() any { return &execScratch{} }}

func getExecScratch() *execScratch  { return execScratchPool.Get().(*execScratch) }
func putExecScratch(s *execScratch) { execScratchPool.Put(s) }

func growU8(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	return (*buf)[:n]
}

func growI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

// q7Forward computes out(m×n) = x(m×k)·Wᵀ + bias through the integer
// pipeline: per-row asymmetric 7-bit activation quantization, exact
// int32 SWAR GEMM, then dequantization with the zero-point correction
// sa·sw·(Σqa·qw − za·Σqw).
func q7Forward(out, x []float32, m, k int, w *tensor.PackedQ7, scales, bias []float32, sc *execScratch) {
	n := w.Rows
	codes := growU8(&sc.codes, m*k)
	rowParams := growF32(&sc.f32, 2*m) // interleaved scale, zero-point
	for i := 0; i < m; i++ {
		row := x[i*k : i*k+k]
		p, err := quant.CalibrateQ7(row)
		if err != nil {
			panic(fmt.Errorf("models: activation calibration: %w", err))
		}
		p.QuantizeInto(codes[i*k:i*k+k], row)
		rowParams[2*i] = p.Scale
		rowParams[2*i+1] = float32(p.ZeroPoint)
	}
	tensor.PackQ7ActsInto(&sc.acts, codes, m, k)
	raw := growI32(&sc.i32, m*n)
	tensor.Q7GemmTransB(raw, &sc.acts, w)
	for i := 0; i < m; i++ {
		sa, za := rowParams[2*i], rowParams[2*i+1]
		src := raw[i*n : i*n+n]
		dst := out[i*n : i*n+n]
		for j := range dst {
			v := sa * scales[j] * (float32(src[j]) - za*float32(w.RowSum[j]))
			if bias != nil {
				v += bias[j]
			}
			dst[j] = v
		}
	}
}

// bnApply holds the BN-after-conv epilogue shared by the reduced-
// precision conv ops.
type convEpilogue struct {
	bnMean, bnVar, bnG, bnB []float32
	act                     bool
}

func (e *convEpilogue) run(y *tensor.Tensor) {
	tensor.BatchNormInference(y, e.bnMean, e.bnVar, e.bnG, e.bnB, 1e-5)
	if e.act {
		tensor.ReLU(y)
	}
}

// convGeom carries the shared geometry of the reduced-precision conv
// ops, which run im2col transposed (one receptive field per row) so the
// GEMM sees contiguous k-vectors on both sides.
type convGeom struct {
	outC, inC, k, stride, pad int
}

func (g *convGeom) outSize(x *tensor.Tensor) (oh, ow int) {
	oh = (x.Shape[2]+2*g.pad-g.k)/g.stride + 1
	ow = (x.Shape[3]+2*g.pad-g.k)/g.stride + 1
	if x.Shape[1] != g.inC {
		panic(fmt.Errorf("models: conv got %d input channels, want %d: %w", x.Shape[1], g.inC, tensor.ErrShape))
	}
	return oh, ow
}

// scatterConvOut transposes the (ohow × outC) GEMM output into the NCHW
// plane of image b.
func scatterConvOut(out *tensor.Tensor, yT []float32, b, outC, oh, ow int) {
	plane := oh * ow
	for oc := 0; oc < outC; oc++ {
		dst := out.Data[(b*outC+oc)*plane : (b*outC+oc+1)*plane]
		for p := 0; p < plane; p++ {
			dst[p] = yT[p*outC+oc]
		}
	}
}

// halfConv is a conv with float16/bfloat16 weights.
type halfConv struct {
	convGeom
	w    []uint16 // (outC × inC·k·k)
	bf16 bool
	epi  convEpilogue
}

func (c *halfConv) apply(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	oh, ow := c.outSize(x)
	ckk := c.inC * c.k * c.k
	out := tensor.New(n, c.outC, oh, ow)
	sc := getExecScratch()
	cols := growF32(&sc.f32, oh*ow*ckk)
	yT := growF32(&sc.f32b, oh*ow*c.outC)
	for b := 0; b < n; b++ {
		tensor.Im2ColTransInto(cols, x, b, c.k, c.k, c.stride, c.pad, oh, ow)
		for i := range yT {
			yT[i] = 0
		}
		tensor.GemmTransBF16Into(yT, cols, c.w, oh*ow, c.outC, ckk, c.bf16)
		scatterConvOut(out, yT, b, c.outC, oh, ow)
	}
	putExecScratch(sc)
	c.epi.run(out)
	return out
}

// q7Conv is a conv with symmetric per-output-channel 7-bit weights.
type q7Conv struct {
	convGeom
	packed *tensor.PackedQ7 // (outC × inC·k·k)
	scales []float32
	epi    convEpilogue
}

func (c *q7Conv) apply(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	oh, ow := c.outSize(x)
	ckk := c.inC * c.k * c.k
	out := tensor.New(n, c.outC, oh, ow)
	sc := getExecScratch()
	cols := growF32(&sc.f32b, oh*ow*ckk)
	// q7Forward owns sc.f32/codes/i32; yT must not alias them.
	yT := make([]float32, oh*ow*c.outC)
	for b := 0; b < n; b++ {
		tensor.Im2ColTransInto(cols, x, b, c.k, c.k, c.stride, c.pad, oh, ow)
		q7Forward(yT, cols, oh*ow, ckk, c.packed, c.scales, nil, sc)
		scatterConvOut(out, yT, b, c.outC, oh, ow)
	}
	putExecScratch(sc)
	c.epi.run(out)
	return out
}

// newLinearOp builds the linear op for one weight/bias pair at the
// requested precision.
func newLinearOp(w, b *tensor.Tensor, precision string) (linearOp, error) {
	switch precision {
	case PrecFP32:
		return denseLinear{w: w, b: b}, nil
	case PrecFP16:
		return newHalfLinear(w, b, false), nil
	case PrecBF16:
		return newHalfLinear(w, b, true), nil
	case PrecInt8:
		return newQ7Linear(w, b), nil
	}
	return nil, fmt.Errorf("models: unknown precision %q (want one of %v)", precision, ExecPrecisions())
}

// newConvOp builds the conv op for one resnetConv at the requested
// precision, sharing the conv's BN statistics.
func newConvOp(rc *resnetConv, precision string) (convOp, error) {
	if precision == PrecFP32 {
		return rc, nil
	}
	outC, inC, k := rc.w.Shape[0], rc.w.Shape[1], rc.w.Shape[2]
	geom := convGeom{outC: outC, inC: inC, k: k, stride: rc.stride, pad: rc.pad}
	epi := convEpilogue{bnMean: rc.bnMean, bnVar: rc.bnVar, bnG: rc.bnG, bnB: rc.bnB, act: rc.activateOn}
	ckk := inC * k * k
	switch precision {
	case PrecFP16, PrecBF16:
		return &halfConv{convGeom: geom, w: encodeHalf(rc.w.Data, precision == PrecBF16), bf16: precision == PrecBF16, epi: epi}, nil
	case PrecInt8:
		c := &q7Conv{convGeom: geom, scales: make([]float32, outC), epi: epi}
		codes := make([]int8, outC*ckk)
		for oc := 0; oc < outC; oc++ {
			row := rc.w.Data[oc*ckk : oc*ckk+ckk]
			s := quant.CalibrateQ7Sym(row)
			c.scales[oc] = s
			quant.QuantizeQ7SymInto(codes[oc*ckk:oc*ckk+ckk], row, s)
		}
		c.packed = tensor.PackQ7Weights(codes, outC, ckk)
		return c, nil
	}
	return nil, fmt.Errorf("models: unknown precision %q (want one of %v)", precision, ExecPrecisions())
}

// NewExecutable builds a real forward-capable backend for the named
// model at the given precision. Known names are the four Table 3 models
// plus the test-scale "ViT_Micro" and "ResNet_Mini"; weights are
// initialized from r. Precision "" defaults to fp32.
func NewExecutable(name string, numClasses int, precision string, r tensor.Rand64) (Executor, error) {
	if precision == "" {
		precision = PrecFP32
	}
	switch name {
	case NameViTTiny, NameViTSmall, NameViTBase, "ViT_Micro":
		var cfg ViTConfig
		switch name {
		case NameViTTiny:
			cfg = ViTTinyConfig(numClasses)
		case NameViTSmall:
			cfg = ViTSmallConfig(numClasses)
		case NameViTBase:
			cfg = ViTBaseConfig(numClasses)
		default:
			cfg = MicroViTConfig(numClasses)
		}
		m, err := NewViTModel(cfg, r)
		if err != nil {
			return nil, err
		}
		if precision == PrecFP32 {
			return m, nil
		}
		return NewPrecisionViT(m, precision)
	case NameResNet50, "ResNet_Mini":
		cfg := ResNet50Config(numClasses)
		if name == "ResNet_Mini" {
			cfg = MiniResNetConfig(numClasses)
		}
		m, err := NewResNetModel(cfg, r)
		if err != nil {
			return nil, err
		}
		if precision == PrecFP32 {
			return m, nil
		}
		return NewPrecisionResNet(m, precision)
	}
	return nil, fmt.Errorf("models: no executable backend for model %q", name)
}
