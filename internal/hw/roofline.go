package hw

// Roofline analysis (paper §5: "a performance roofline constrained by
// either compute saturation or memory exhaustion"). For a kernel with
// arithmetic intensity AI (FLOPs per byte moved), the attainable
// throughput on a platform is
//
//	attainable(AI) = min(peakFLOPS, AI * memBW)
//
// Batching raises a model's effective AI because weights are read once
// per batch rather than once per image — the mechanism behind the
// paper's Fig. 5 MFU-vs-batch curves.

// MemBWBytesPerSec returns the platform's device memory bandwidth.
// Values are the published numbers for the evaluated parts: V100
// 900 GB/s HBM2, A100-40GB 1555 GB/s HBM2e, Orin Nano 68 GB/s LPDDR5.
func (p *Platform) MemBWBytesPerSec() float64 {
	switch p.Name {
	case KeyV100:
		return 900e9
	case KeyA100:
		return 1555e9
	case KeyJetson:
		return 68e9
	}
	return 100e9
}

// RooflinePoint is one batch size's position on the roofline.
type RooflinePoint struct {
	Batch int
	// AI is the effective arithmetic intensity in FLOPs/byte.
	AI float64
	// AttainableTFLOPS = min(practical peak, AI * BW).
	AttainableTFLOPS float64
	// ComputeBound is true when the compute roof binds.
	ComputeBound bool
}

// ModelTraffic describes a model's per-batch memory traffic for the
// roofline: weight bytes are moved once per batch, activation bytes
// once per image.
type ModelTraffic struct {
	FLOPsPerImage  float64
	WeightBytes    float64
	ActBytesPerImg float64
}

// EffectiveAI returns the batch's arithmetic intensity.
func (m ModelTraffic) EffectiveAI(batch int) float64 {
	if batch <= 0 {
		return 0
	}
	bytes := m.WeightBytes + float64(batch)*m.ActBytesPerImg
	if bytes <= 0 {
		return 0
	}
	return m.FLOPsPerImage * float64(batch) / bytes
}

// Roofline evaluates the attainable throughput for the model across
// batch sizes on the platform.
func Roofline(p *Platform, m ModelTraffic, batches []int) []RooflinePoint {
	peak := p.PracticalTFLOPS * 1e12
	bw := p.MemBWBytesPerSec()
	out := make([]RooflinePoint, 0, len(batches))
	for _, b := range batches {
		ai := m.EffectiveAI(b)
		attainable := ai * bw
		computeBound := attainable >= peak
		if computeBound {
			attainable = peak
		}
		out = append(out, RooflinePoint{
			Batch:            b,
			AI:               ai,
			AttainableTFLOPS: attainable / 1e12,
			ComputeBound:     computeBound,
		})
	}
	return out
}

// RidgeAI returns the platform's ridge point: the arithmetic intensity
// where the memory roof meets the compute roof.
func RidgeAI(p *Platform) float64 {
	return p.PracticalTFLOPS * 1e12 / p.MemBWBytesPerSec()
}
