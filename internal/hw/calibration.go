package hw

import "fmt"

// EngineCalib holds the calibration of one (platform, model) pair.
//
// AnchorBatch/AnchorImgPerSec are the published operating points from
// the Fig. 5/6 legends (e.g. "ViT_Tiny: 22879.3 img/s @ BS1024" on
// A100). BHalf sets the MFU half-saturation batch. The working-set
// constants are fitted so the model reproduces the paper's observed
// largest-batch-before-OOM boundaries; the paper does not publish
// memory traces, so these are the free parameters of the reproduction
// (documented in DESIGN.md §2).
type EngineCalib struct {
	Platform string
	Model    string

	AnchorBatch     int
	AnchorImgPerSec float64
	// BHalf is the batch size at which MFU reaches half of MFUmax.
	// Faster platforms have later knees (they need more work in flight
	// to saturate), matching the paper's §4.1 observations.
	BHalf float64

	// EngineBytesPerImage is the per-image working set of the engine
	// running alone (weights excluded) — activations + TensorRT-style
	// workspace. Fitted to the Fig. 5/6 sweep boundaries.
	EngineBytesPerImage int64
	// PipelineBytesPerImage is the per-image working set in the
	// end-to-end co-located configuration (adds staging, host/device
	// transfer and response buffers). Fitted to the Fig. 8 boundaries.
	PipelineBytesPerImage int64
}

// calibTable holds all twelve (platform, model) calibrations.
// Anchors are verbatim from the paper's Fig. 5 legends.
var calibTable = []EngineCalib{
	// --- A100 (Fig. 5a) ---
	{Platform: KeyA100, Model: "ViT_Tiny", AnchorBatch: 1024, AnchorImgPerSec: 22879.3,
		BHalf: 40, EngineBytesPerImage: 6 * mib, PipelineBytesPerImage: 60 * mib},
	{Platform: KeyA100, Model: "ViT_Small", AnchorBatch: 1024, AnchorImgPerSec: 9344.2,
		BHalf: 28, EngineBytesPerImage: 12 * mib, PipelineBytesPerImage: 150 * mib},
	{Platform: KeyA100, Model: "ViT_Base", AnchorBatch: 1024, AnchorImgPerSec: 4095.9,
		BHalf: 20, EngineBytesPerImage: 30 * mib, PipelineBytesPerImage: 500 * mib},
	{Platform: KeyA100, Model: "ResNet50", AnchorBatch: 1024, AnchorImgPerSec: 16230.7,
		BHalf: 18, EngineBytesPerImage: 12 * mib, PipelineBytesPerImage: 160 * mib},

	// --- V100 (Fig. 5b) ---
	{Platform: KeyV100, Model: "ViT_Tiny", AnchorBatch: 1024, AnchorImgPerSec: 7179.0,
		BHalf: 12, EngineBytesPerImage: 3 * mib, PipelineBytesPerImage: 90 * mib},
	{Platform: KeyV100, Model: "ViT_Small", AnchorBatch: 1024, AnchorImgPerSec: 2929.3,
		BHalf: 8, EngineBytesPerImage: 6 * mib, PipelineBytesPerImage: 300 * mib},
	{Platform: KeyV100, Model: "ViT_Base", AnchorBatch: 1024, AnchorImgPerSec: 1482.6,
		BHalf: 6, EngineBytesPerImage: 12 * mib, PipelineBytesPerImage: 4500 * mib},
	{Platform: KeyV100, Model: "ResNet50", AnchorBatch: 1024, AnchorImgPerSec: 8107.3,
		BHalf: 5, EngineBytesPerImage: 6 * mib, PipelineBytesPerImage: 300 * mib},

	// --- Jetson (Fig. 5c) ---
	{Platform: KeyJetson, Model: "ViT_Tiny", AnchorBatch: 196, AnchorImgPerSec: 1170.1,
		BHalf: 4, EngineBytesPerImage: 28 * mib, PipelineBytesPerImage: 60 * mib},
	{Platform: KeyJetson, Model: "ViT_Small", AnchorBatch: 64, AnchorImgPerSec: 469.4,
		BHalf: 2.5, EngineBytesPerImage: 80 * mib, PipelineBytesPerImage: 120 * mib},
	{Platform: KeyJetson, Model: "ViT_Base", AnchorBatch: 8, AnchorImgPerSec: 201.0,
		BHalf: 1.2, EngineBytesPerImage: 600 * mib, PipelineBytesPerImage: 1800 * mib},
	{Platform: KeyJetson, Model: "ResNet50", AnchorBatch: 64, AnchorImgPerSec: 842.9,
		BHalf: 2, EngineBytesPerImage: 80 * mib, PipelineBytesPerImage: 120 * mib},
}

// Calibration returns the calibration for a (platform, model) pair.
func Calibration(platform, model string) (EngineCalib, error) {
	for _, c := range calibTable {
		if c.Platform == platform && c.Model == model {
			return c, nil
		}
	}
	return EngineCalib{}, fmt.Errorf("hw: no calibration for platform %q model %q", platform, model)
}

// CloudBatchSweep is the batch-size axis of Fig. 5/6 on the cloud
// platforms.
var CloudBatchSweep = []int{1, 2, 4, 8, 16, 32, 64, 96, 128, 196, 256, 384, 512, 640, 768, 1024}

// JetsonBatchSweep is the batch-size axis of Fig. 5c/6c.
var JetsonBatchSweep = []int{1, 2, 4, 8, 16, 32, 64, 128, 196}

// BatchSweep returns the figure batch axis for a platform.
func BatchSweep(platform string) []int {
	if platform == KeyJetson {
		return append([]int(nil), JetsonBatchSweep...)
	}
	return append([]int(nil), CloudBatchSweep...)
}

// EndToEndMaxBatch is the harness cap of the Fig. 8 evaluation ("the
// largest batch size before OOM was used", capped at 64).
const EndToEndMaxBatch = 64

// QPS60LatencyMs is the 16.7 ms threshold of Fig. 6: the per-batch
// latency that sustains 60 queries per second.
const QPS60LatencyMs = 1000.0 / 60.0
