package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlatformTable1Anchors(t *testing.T) {
	cases := []struct {
		p         *Platform
		theory    float64
		practical float64
		cores     int
		memGB     int64
		precision Precision
	}{
		{V100(), 112, 92.6, 40, 16, FP16},
		{A100(), 312, 236.3, 128, 40, BF16},
		{Jetson(), 17, 11.4, 6, 8, FP16},
	}
	for _, c := range cases {
		if c.p.TheoreticalTFLOPS != c.theory {
			t.Errorf("%s theory %v, want %v", c.p.Name, c.p.TheoreticalTFLOPS, c.theory)
		}
		if c.p.PracticalTFLOPS != c.practical {
			t.Errorf("%s practical %v, want %v", c.p.Name, c.p.PracticalTFLOPS, c.practical)
		}
		if c.p.CPUCores != c.cores {
			t.Errorf("%s cores %d, want %d", c.p.Name, c.p.CPUCores, c.cores)
		}
		if c.p.GPUMemBytes != c.memGB<<30 {
			t.Errorf("%s mem %d, want %d GB", c.p.Name, c.p.GPUMemBytes, c.memGB)
		}
		if c.p.Precision != c.precision {
			t.Errorf("%s precision %s", c.p.Name, c.p.Precision)
		}
	}
}

func TestCloudEfficiencyRange(t *testing.T) {
	// Paper: FLOPS efficiency ranges 75.74% to 82.68% on the cloud
	// platforms.
	if e := A100().FLOPSEfficiency(); math.Abs(e-0.7574) > 0.001 {
		t.Errorf("A100 efficiency %.4f, want 0.7574", e)
	}
	if e := V100().FLOPSEfficiency(); math.Abs(e-0.8268) > 0.001 {
		t.Errorf("V100 efficiency %.4f, want 0.8268", e)
	}
}

func TestByNameAndOrders(t *testing.T) {
	for _, name := range []string{KeyA100, KeyV100, KeyJetson} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%s): %v, %v", name, p, err)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("unknown platform accepted")
	}
	if len(All()) != 3 || len(FigureOrder()) != 3 {
		t.Error("platform list sizes wrong")
	}
	if FigureOrder()[0].Name != KeyA100 {
		t.Error("figure order should start with A100")
	}
}

func TestJetsonUnifiedMemory(t *testing.T) {
	j := Jetson()
	if !j.Unified {
		t.Error("Jetson should have unified memory")
	}
	if j.PCIeBytesPerSecond != 0 {
		t.Error("Jetson should have no PCIe copy cost")
	}
	if j.PowerW != 25 {
		t.Errorf("Jetson power %v, want 25W mode", j.PowerW)
	}
}

func TestMemoryBudgets(t *testing.T) {
	for _, p := range All() {
		if p.EngineMemBytes() <= 0 || p.PipelineMemBytes() <= 0 {
			t.Errorf("%s non-positive memory budget", p.Name)
		}
		if p.PipelineMemBytes() >= p.EngineMemBytes() {
			t.Errorf("%s pipeline budget not smaller than engine budget", p.Name)
		}
	}
}

func TestCalibrationLookup(t *testing.T) {
	for _, p := range All() {
		for _, m := range []string{"ViT_Tiny", "ViT_Small", "ViT_Base", "ResNet50"} {
			c, err := Calibration(p.Name, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, m, err)
			}
			if c.AnchorImgPerSec <= 0 || c.BHalf <= 0 || c.EngineBytesPerImage <= 0 {
				t.Errorf("%s/%s degenerate calibration %+v", p.Name, m, c)
			}
			if c.PipelineBytesPerImage < c.EngineBytesPerImage {
				t.Errorf("%s/%s pipeline working set smaller than engine's", p.Name, m)
			}
		}
	}
	if _, err := Calibration("A100", "AlexNet"); err == nil {
		t.Error("unknown calibration accepted")
	}
}

func newPM(t *testing.T, p *Platform, model string) *PerfModel {
	t.Helper()
	flops := map[string]float64{
		"ViT_Tiny": 1.365e9, "ViT_Small": 5.459e9, "ViT_Base": 16.849e9, "ResNet50": 4.089e9,
	}[model]
	pm, err := NewPerfModel(p, model, flops, 50<<20)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestPerfModelAnchorReproduction(t *testing.T) {
	pm := newPM(t, A100(), "ViT_Tiny")
	got := pm.ThroughputImgPerSec(1024)
	if math.Abs(got-22879.3) > 1 {
		t.Errorf("A100 ViT_Tiny @1024 = %.1f, want 22879.3", got)
	}
}

func TestMFUMonotoneAndBounded(t *testing.T) {
	for _, p := range All() {
		for _, m := range []string{"ViT_Tiny", "ViT_Small", "ViT_Base", "ResNet50"} {
			pm := newPM(t, p, m)
			prev := 0.0
			for _, b := range BatchSweep(p.Name) {
				u := pm.MFU(b)
				if u <= prev {
					t.Errorf("%s/%s MFU not strictly increasing at %d", p.Name, m, b)
				}
				if u > pm.MFUMax() || u > 1 {
					t.Errorf("%s/%s MFU %v exceeds max %v", p.Name, m, u, pm.MFUMax())
				}
				prev = u
			}
			if pm.MFU(0) != 0 {
				t.Errorf("MFU(0) = %v", pm.MFU(0))
			}
		}
	}
}

func TestLatencyShape(t *testing.T) {
	// Latency must be strictly increasing in batch and have the
	// flat-then-linear shape: per-image latency decreases with batch.
	pm := newPM(t, V100(), "ViT_Base")
	prevLat := 0.0
	prevPerImage := math.Inf(1)
	for _, b := range CloudBatchSweep {
		lat := pm.LatencySeconds(b)
		if lat <= prevLat {
			t.Fatalf("latency not increasing at batch %d", b)
		}
		per := lat / float64(b)
		if per >= prevPerImage {
			t.Fatalf("per-image latency not decreasing at batch %d", b)
		}
		prevLat, prevPerImage = lat, per
	}
}

func TestTheoreticalLatencyIsLowerBound(t *testing.T) {
	pm := newPM(t, A100(), "ResNet50")
	for _, b := range CloudBatchSweep {
		if pm.TheoreticalLatencySeconds(b) >= pm.LatencySeconds(b) {
			t.Errorf("ideal latency not below actual at batch %d", b)
		}
	}
}

func TestAchievedTFLOPSBelowPractical(t *testing.T) {
	for _, p := range All() {
		for _, m := range []string{"ViT_Tiny", "ViT_Base"} {
			pm := newPM(t, p, m)
			for _, b := range BatchSweep(p.Name) {
				if tf := pm.AchievedTFLOPS(b); tf >= p.PracticalTFLOPS {
					t.Errorf("%s/%s achieved %v >= practical %v", p.Name, m, tf, p.PracticalTFLOPS)
				}
			}
		}
	}
}

func TestMaxBatchRespectsCapAndMemory(t *testing.T) {
	pm := newPM(t, Jetson(), "ViT_Base")
	if got := pm.MaxBatch(JetsonBatchSweep, false, 0); got != 8 {
		t.Errorf("Jetson ViT_Base engine max batch %d, want 8", got)
	}
	if got := pm.MaxBatch(JetsonBatchSweep, true, EndToEndMaxBatch); got != 2 {
		t.Errorf("Jetson ViT_Base pipeline max batch %d, want 2", got)
	}
	if got := pm.MaxBatch(JetsonBatchSweep, false, 4); got != 4 {
		t.Errorf("cap not honored: %d", got)
	}
}

func TestNewPerfModelErrors(t *testing.T) {
	if _, err := NewPerfModel(A100(), "ViT_Tiny", 0, 1); err == nil {
		t.Error("zero FLOPs accepted")
	}
	if _, err := NewPerfModel(A100(), "NoSuchModel", 1e9, 1); err == nil {
		t.Error("uncalibrated model accepted")
	}
}

func TestTransferSeconds(t *testing.T) {
	pm := newPM(t, A100(), "ViT_Tiny")
	if s := pm.TransferSeconds(24_000_000_000); math.Abs(s-1) > 1e-9 {
		t.Errorf("A100 transfer of 24GB = %v s, want 1", s)
	}
	jm := newPM(t, Jetson(), "ViT_Tiny")
	if s := jm.TransferSeconds(1 << 30); s != 0 {
		t.Errorf("unified memory transfer %v, want 0", s)
	}
}

func TestGemmEfficiencyReproducesTable1(t *testing.T) {
	for _, p := range All() {
		if got := PracticalTFLOPSMeasured(p); math.Abs(got-p.PracticalTFLOPS) > 0.01 {
			t.Errorf("%s measured practical %v, want %v", p.Name, got, p.PracticalTFLOPS)
		}
	}
}

func TestGemmSweepMonotone(t *testing.T) {
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	for _, p := range All() {
		pts := GemmSweep(p, sizes)
		for i := 1; i < len(pts); i++ {
			if pts[i].TFLOPS <= pts[i-1].TFLOPS {
				t.Errorf("%s GEMM sweep not increasing at N=%d", p.Name, pts[i].N)
			}
		}
		last := pts[len(pts)-1]
		if last.Efficiency > 1 || last.Efficiency < 0.5 {
			t.Errorf("%s large-GEMM efficiency %v implausible", p.Name, last.Efficiency)
		}
	}
}

func TestHostGemmRuns(t *testing.T) {
	if g := HostGemmGFLOPS(64); g <= 0 {
		t.Errorf("host GEMM reported %v GFLOPS", g)
	}
}

func TestGPUPreprocModelShape(t *testing.T) {
	p := A100()
	// Larger inputs decode slower.
	small := GPUPreprocImageSeconds(p, 100*100, 32*32)
	big := GPUPreprocImageSeconds(p, 3840*2160, 32*32)
	if big <= small {
		t.Error("decode cost not increasing with input pixels")
	}
	// Larger outputs transform slower.
	lo := GPUPreprocImageSeconds(p, 256*256, 32*32)
	hi := GPUPreprocImageSeconds(p, 256*256, 224*224)
	if hi <= lo {
		t.Error("transform cost not increasing with output pixels")
	}
}

func TestGPUPreprocConvergenceAtHighRes(t *testing.T) {
	// Fig. 7: at DALI 224 dataset differences converge (transform
	// dominates); at DALI 32 they don't.
	p := A100()
	sizes := []int{100 * 100, 256 * 256}
	ratioAt := func(out int) float64 {
		a := GPUPreprocImageSeconds(p, sizes[0], out*out)
		b := GPUPreprocImageSeconds(p, sizes[1], out*out)
		return b / a
	}
	if r224, r32 := ratioAt(224), ratioAt(32); r224 >= r32 {
		t.Errorf("dataset cost ratio did not shrink at high res: %.3f vs %.3f", r224, r32)
	}
}

func TestGPUPreprocBatchAndThroughput(t *testing.T) {
	p := V100()
	in := make([]int, 64)
	for i := range in {
		in[i] = 256 * 256
	}
	batchSec := GPUPreprocBatchSeconds(p, in, 224*224)
	per := GPUPreprocImageSeconds(p, 256*256, 224*224)
	if batchSec <= 64*per {
		t.Error("batch cost should include fixed overhead")
	}
	thr := GPUPreprocThroughput(p, 256*256, 224, 64)
	if math.Abs(thr-64/batchSec) > 1e-6 {
		t.Errorf("throughput %v inconsistent with batch seconds %v", thr, batchSec)
	}
}

func TestScaleCPUSeconds(t *testing.T) {
	if s := ScaleCPUSeconds(A100(), 1); s != 1 {
		t.Errorf("A100 CPU scale changed time: %v", s)
	}
	if s := ScaleCPUSeconds(Jetson(), 1); math.Abs(s-1/0.45) > 1e-9 {
		t.Errorf("Jetson CPU scale %v, want %v", s, 1/0.45)
	}
	// Degenerate rel guards.
	p := &Platform{}
	if s := ScaleCPUSeconds(p, 2); s != 2 {
		t.Errorf("zero-rel scale %v", s)
	}
}

func TestBatchSweepCopies(t *testing.T) {
	s := BatchSweep(KeyA100)
	s[0] = 999
	if CloudBatchSweep[0] == 999 {
		t.Error("BatchSweep returned shared slice")
	}
	if len(BatchSweep(KeyJetson)) != len(JetsonBatchSweep) {
		t.Error("Jetson sweep length wrong")
	}
}

func TestThroughputQuickPositive(t *testing.T) {
	pm := newPM(t, A100(), "ViT_Small")
	f := func(raw uint16) bool {
		b := 1 + int(raw)%2048
		thr := pm.ThroughputImgPerSec(b)
		lat := pm.LatencySeconds(b)
		if thr <= 0 || lat <= 0 {
			return false
		}
		// throughput * latency == batch (definition consistency)
		return math.Abs(thr*lat-float64(b)) < 1e-6*float64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
