package hw

import (
	"math"
	"testing"
)

func TestMemBWKnownValues(t *testing.T) {
	if bw := V100().MemBWBytesPerSec(); bw != 900e9 {
		t.Errorf("V100 BW %v", bw)
	}
	if bw := A100().MemBWBytesPerSec(); bw != 1555e9 {
		t.Errorf("A100 BW %v", bw)
	}
	if bw := Jetson().MemBWBytesPerSec(); bw != 68e9 {
		t.Errorf("Jetson BW %v", bw)
	}
}

func TestEffectiveAIGrowsWithBatch(t *testing.T) {
	m := ModelTraffic{FLOPsPerImage: 4e9, WeightBytes: 50e6, ActBytesPerImg: 30e6}
	prev := 0.0
	for _, b := range []int{1, 2, 8, 64, 1024} {
		ai := m.EffectiveAI(b)
		if ai <= prev {
			t.Fatalf("AI not increasing at batch %d", b)
		}
		prev = ai
	}
	// Asymptote: FLOPs/actBytes as weights amortize away.
	asym := m.FLOPsPerImage / m.ActBytesPerImg
	if got := m.EffectiveAI(1 << 20); math.Abs(got-asym)/asym > 0.01 {
		t.Errorf("AI asymptote %v, want ~%v", got, asym)
	}
	if m.EffectiveAI(0) != 0 {
		t.Error("zero batch AI nonzero")
	}
}

func TestRooflineBounds(t *testing.T) {
	p := A100()
	m := ModelTraffic{FLOPsPerImage: 4e9, WeightBytes: 50e6, ActBytesPerImg: 30e6}
	pts := Roofline(p, m, []int{1, 64, 1024})
	for _, pt := range pts {
		if pt.AttainableTFLOPS > p.PracticalTFLOPS+1e-9 {
			t.Errorf("attainable %v exceeds peak", pt.AttainableTFLOPS)
		}
		wantMem := pt.AI * p.MemBWBytesPerSec() / 1e12
		if !pt.ComputeBound && math.Abs(pt.AttainableTFLOPS-wantMem) > 1e-9 {
			t.Errorf("memory-bound attainable %v != AI*BW %v", pt.AttainableTFLOPS, wantMem)
		}
		if pt.ComputeBound && pt.AttainableTFLOPS != p.PracticalTFLOPS {
			t.Errorf("compute-bound attainable %v != peak", pt.AttainableTFLOPS)
		}
	}
}

func TestRooflineComputeBoundAtHighAI(t *testing.T) {
	p := A100()
	// AI far above the ridge: compute-bound.
	m := ModelTraffic{FLOPsPerImage: 1e12, WeightBytes: 1, ActBytesPerImg: 1}
	pts := Roofline(p, m, []int{1})
	if !pts[0].ComputeBound {
		t.Error("extreme-AI kernel not compute bound")
	}
}

func TestRidgeAI(t *testing.T) {
	p := V100()
	want := p.PracticalTFLOPS * 1e12 / p.MemBWBytesPerSec()
	if got := RidgeAI(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("ridge %v, want %v", got, want)
	}
	// Jetson's LPDDR5 gives it a much higher ridge than the HBM cloud
	// parts relative to its peak... actually lower BW and lower peak:
	// just sanity-check positivity and ordering vs A100.
	if RidgeAI(Jetson()) <= 0 {
		t.Error("non-positive ridge")
	}
}

func TestVitTinyIsMemoryBoundEverywhere(t *testing.T) {
	// The characterization insight: ViT_Tiny's AI asymptote
	// (FLOPs/activation-bytes) sits below every platform's ridge, so it
	// can never reach peak FLOPS — matching its low Fig. 5 MFU.
	flops := 1.365e9
	weights := 5.58e6 * 2
	act := 8.3e6 * 2 * 2 // elems * fp16 * write+read
	m := ModelTraffic{FLOPsPerImage: flops, WeightBytes: weights, ActBytesPerImg: act}
	for _, p := range All() {
		pts := Roofline(p, m, []int{1024})
		if pts[0].ComputeBound {
			t.Errorf("%s: ViT_Tiny unexpectedly compute bound", p.Name)
		}
	}
}
