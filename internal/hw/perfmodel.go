package hw

import "fmt"

// PerfModel predicts engine throughput, latency and memory use for one
// model on one platform, from the platform's calibrated anchors.
type PerfModel struct {
	Platform  *Platform
	ModelName string
	// FLOPsPerImage is the headline per-image MAC count (the paper's
	// GFLOPs/Image * 1e9).
	FLOPsPerImage float64
	// WeightBytes is the loaded weight footprint at engine precision.
	WeightBytes int64

	Calib  EngineCalib
	mfuMax float64
}

// NewPerfModel builds a performance model for (platform, model).
func NewPerfModel(p *Platform, modelName string, flopsPerImage float64, weightBytes int64) (*PerfModel, error) {
	if flopsPerImage <= 0 {
		return nil, fmt.Errorf("hw: non-positive FLOPs per image %v", flopsPerImage)
	}
	c, err := Calibration(p.Name, modelName)
	if err != nil {
		return nil, err
	}
	m := &PerfModel{Platform: p, ModelName: modelName,
		FLOPsPerImage: flopsPerImage, WeightBytes: weightBytes, Calib: c}
	// Derive MFUmax from the published anchor:
	//   anchorMFU = anchorThroughput * F / calibPracticalFLOPS
	//   MFUmax    = anchorMFU * (anchorBatch + BHalf) / anchorBatch
	// CalibPractical (not PracticalTFLOPS) keeps the calibration valid
	// on derived platforms like Jetson power modes, whose throughput
	// scales while the anchor measurements stay at the 25W reference.
	anchorMFU := c.AnchorImgPerSec * flopsPerImage / (p.CalibPractical() * 1e12)
	m.mfuMax = anchorMFU * (float64(c.AnchorBatch) + c.BHalf) / float64(c.AnchorBatch)
	if m.mfuMax <= 0 || m.mfuMax > 1 {
		return nil, fmt.Errorf("hw: calibration for %s/%s yields MFUmax=%.3f outside (0,1]",
			p.Name, modelName, m.mfuMax)
	}
	return m, nil
}

// MFUMax returns the saturation model-FLOPs-utilization.
func (m *PerfModel) MFUMax() float64 { return m.mfuMax }

// MFU returns the model FLOPs utilization at batch size b.
func (m *PerfModel) MFU(b int) float64 {
	if b <= 0 {
		return 0
	}
	return m.mfuMax * float64(b) / (float64(b) + m.Calib.BHalf)
}

// ThroughputImgPerSec returns steady-state images/second at batch b.
func (m *PerfModel) ThroughputImgPerSec(b int) float64 {
	return m.Platform.PracticalTFLOPS * 1e12 * m.MFU(b) / m.FLOPsPerImage
}

// LatencySeconds returns the time to execute one batch of size b.
func (m *PerfModel) LatencySeconds(b int) float64 {
	t := m.ThroughputImgPerSec(b)
	if t == 0 {
		return 0
	}
	return float64(b) / t
}

// SaturatedThroughput is the b->inf throughput limit.
func (m *PerfModel) SaturatedThroughput() float64 {
	return m.Platform.PracticalTFLOPS * 1e12 * m.mfuMax / m.FLOPsPerImage
}

// TheoreticalLatencySeconds is the Fig. 6 dashed line: ideal linear
// scaling at the saturated throughput.
func (m *PerfModel) TheoreticalLatencySeconds(b int) float64 {
	return float64(b) / m.SaturatedThroughput()
}

// AchievedTFLOPS is the Fig. 5 solid line: effective tensor-core
// throughput at batch b.
func (m *PerfModel) AchievedTFLOPS(b int) float64 {
	return m.ThroughputImgPerSec(b) * m.FLOPsPerImage / 1e12
}

// MemoryBytes returns device memory needed at batch b. pipeline=true
// selects the end-to-end co-located configuration (Fig. 8), which has a
// larger per-image working set and less available memory.
func (m *PerfModel) MemoryBytes(b int, pipeline bool) int64 {
	per := m.Calib.EngineBytesPerImage
	if pipeline {
		per = m.Calib.PipelineBytesPerImage
	}
	return m.WeightBytes + int64(b)*per
}

// FitsMemory reports whether batch b fits on the device.
func (m *PerfModel) FitsMemory(b int, pipeline bool) bool {
	avail := m.Platform.EngineMemBytes()
	if pipeline {
		avail = m.Platform.PipelineMemBytes()
	}
	return m.MemoryBytes(b, pipeline) <= avail
}

// MaxBatch returns the largest batch from sweep (ascending) that fits in
// memory, additionally capped at maxCap when maxCap > 0. Returns 0 if
// even the smallest batch does not fit.
func (m *PerfModel) MaxBatch(sweep []int, pipeline bool, maxCap int) int {
	best := 0
	for _, b := range sweep {
		if maxCap > 0 && b > maxCap {
			break
		}
		if m.FitsMemory(b, pipeline) {
			best = b
		}
	}
	return best
}

// TransferSeconds models the host-to-device copy of a batch of the
// given total byte size. On unified-memory platforms it returns 0.
func (m *PerfModel) TransferSeconds(bytes int64) float64 {
	if m.Platform.PCIeBytesPerSecond <= 0 {
		return 0
	}
	return float64(bytes) / m.Platform.PCIeBytesPerSecond
}
