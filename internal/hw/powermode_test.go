package hw

import (
	"math"
	"testing"
)

func TestJetsonPowerModeValidation(t *testing.T) {
	for _, w := range JetsonPowerWatts {
		p, err := JetsonPowerMode(w)
		if err != nil {
			t.Fatalf("%vW: %v", w, err)
		}
		if p.PowerW != w {
			t.Errorf("%vW mode reports %vW", w, p.PowerW)
		}
	}
	if _, err := JetsonPowerMode(10); err == nil {
		t.Error("unsupported power mode accepted")
	}
}

func TestJetson25WIsReference(t *testing.T) {
	p, err := JetsonPowerMode(25)
	if err != nil {
		t.Fatal(err)
	}
	ref := Jetson()
	if p.PracticalTFLOPS != ref.PracticalTFLOPS || p.CalibPracticalTFLOPS != 0 {
		t.Errorf("25W mode altered the reference platform: %+v", p)
	}
}

func TestJetsonLowPowerScalesDown(t *testing.T) {
	low, err := JetsonPowerMode(7)
	if err != nil {
		t.Fatal(err)
	}
	ref := Jetson()
	wantScale := math.Pow(7.0/25, 0.8)
	if got := low.PracticalTFLOPS / ref.PracticalTFLOPS; math.Abs(got-wantScale) > 1e-9 {
		t.Errorf("7W GPU scale %v, want %v", got, wantScale)
	}
	// Preprocessing gets slower, not faster.
	if low.PreFixedNs <= ref.PreFixedNs {
		t.Error("7W preprocessing not slower")
	}
	// Memory (and therefore OOM boundaries) unchanged.
	if low.GPUMemBytes != ref.GPUMemBytes || low.MemReserveBytes != ref.MemReserveBytes {
		t.Error("power mode changed memory")
	}
	// Calibration reference preserved.
	if low.CalibPractical() != ref.PracticalTFLOPS {
		t.Errorf("calibration reference %v, want %v", low.CalibPractical(), ref.PracticalTFLOPS)
	}
}

func TestPowerModePerfModelConsistency(t *testing.T) {
	// MFU stays calibrated across modes; throughput scales with the
	// mode's FLOPS; memory boundaries are identical.
	ref := Jetson()
	low, err := JetsonPowerMode(15)
	if err != nil {
		t.Fatal(err)
	}
	flops := 16.849e9
	pmRef, err := NewPerfModel(ref, "ViT_Base", flops, 173<<20)
	if err != nil {
		t.Fatal(err)
	}
	pmLow, err := NewPerfModel(low, "ViT_Base", flops, 173<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmRef.MFUMax()-pmLow.MFUMax()) > 1e-12 {
		t.Errorf("MFUmax changed across power modes: %v vs %v", pmRef.MFUMax(), pmLow.MFUMax())
	}
	scale := low.PracticalTFLOPS / ref.PracticalTFLOPS
	gotScale := pmLow.ThroughputImgPerSec(8) / pmRef.ThroughputImgPerSec(8)
	if math.Abs(gotScale-scale) > 1e-9 {
		t.Errorf("throughput scale %v, want %v", gotScale, scale)
	}
	if pmLow.MaxBatch(JetsonBatchSweep, false, 0) != pmRef.MaxBatch(JetsonBatchSweep, false, 0) {
		t.Error("power mode changed OOM boundary")
	}
}

func TestPowerModeEnergyTradeoff(t *testing.T) {
	// Lower power modes are slower but must win images/joule under the
	// sub-linear scaling: perf drops as W^0.8 while power drops as W.
	ref := Jetson()
	low, err := JetsonPowerMode(7)
	if err != nil {
		t.Fatal(err)
	}
	flops := 1.365e9
	pmRef, err := NewPerfModel(ref, "ViT_Tiny", flops, 11<<20)
	if err != nil {
		t.Fatal(err)
	}
	pmLow, err := NewPerfModel(low, "ViT_Tiny", flops, 11<<20)
	if err != nil {
		t.Fatal(err)
	}
	// img/J at full utilization ~ throughput / power.
	refIPJ := pmRef.ThroughputImgPerSec(64) / ref.PowerW
	lowIPJ := pmLow.ThroughputImgPerSec(64) / low.PowerW
	if lowIPJ <= refIPJ {
		t.Errorf("7W mode img/J %v not above 25W %v", lowIPJ, refIPJ)
	}
}
