// Package hw models the three hardware platforms of the paper's Table 1
// (OSC Pitzer V100, OSU MRI A100, NVIDIA Jetson Orin Nano Super) as
// calibrated analytical performance models.
//
// Since this reproduction runs without GPUs, every published operating
// point of the paper — practical GEMM TFLOPS (Table 1), per-model
// throughput anchors (Fig. 5), latency knees (Fig. 6), OOM boundaries
// (Fig. 5/6/8) — is encoded in internal/hw/calibration.go, and the
// models here interpolate between those anchors with a roofline +
// saturation formulation:
//
//	MFU(b)        = MFUmax * b / (b + Bhalf)
//	throughput(b) = practicalFLOPS * MFU(b) / FLOPsPerImage
//	latency(b)    = b / throughput(b)  =  F*(b+Bhalf) / (P*MFUmax)
//
// which yields exactly the paper's observed behaviour: a flat latency
// region at small batch (compute underutilization), a linear region at
// large batch, and diminishing MFU returns saturating at MFUmax.
package hw

import (
	"fmt"
	"math"
)

// Precision names the numeric format a platform runs inference in.
type Precision string

// Precisions used in the paper's evaluation.
const (
	FP16 Precision = "fp16"
	BF16 Precision = "bf16"
)

// Platform describes one row of Table 1 plus the derived cost-model
// parameters.
type Platform struct {
	Name     string // short key: "A100", "V100", "Jetson"
	FullName string // Table 1 header, e.g. "MRI Cluster (A100)"

	CPUCores int
	GPUDesc  string

	// GPUMemBytes is the memory of the single GPU used (the paper uses
	// one of the two GPUs on the cloud nodes). On Jetson this is the
	// unified CPU+GPU memory.
	GPUMemBytes  int64
	HostMemBytes int64
	Unified      bool

	Scenarios string // Table 1 "Scenario" row
	Precision Precision
	PowerW    float64

	// TheoreticalTFLOPS is the vendor number at the used precision;
	// PracticalTFLOPS is the GEMM-measured value of Table 1.
	TheoreticalTFLOPS float64
	PracticalTFLOPS   float64
	// CalibPracticalTFLOPS is the practical FLOPS the engine
	// calibration anchors were measured at; zero means equal to
	// PracticalTFLOPS. Derived platforms (e.g. Jetson power modes)
	// keep the original value here so MFU calibration stays valid
	// while throughput scales with PracticalTFLOPS.
	CalibPracticalTFLOPS float64

	// MemReserveBytes is memory unavailable to the engine (runtime,
	// CUDA context, and on Jetson the OS share of unified memory).
	MemReserveBytes int64
	// PreprocPoolBytes is the additional reservation when a GPU
	// preprocessing engine is co-located with the model engine
	// (the Fig. 8 end-to-end configuration).
	PreprocPoolBytes int64

	// GPU preprocessing (DALI analogue) cost model: per-image cost =
	// PreFixedNs + DecodeNsPerPixel*inPixels +
	// TransformNsPerPixel*outPixels, plus PreBatchFixedNs per batch.
	PreFixedNs         float64
	DecodeNsPerPixel   float64
	TransformNsPerPix  float64
	PreBatchFixedNs    float64
	PCIeBytesPerSecond float64

	// CPUSingleThreadRel scales single-threaded CPU preprocessing
	// measured on the build host to this platform (1.0 = typical cloud
	// Xeon core; Jetson's Cortex cores are slower).
	CPUSingleThreadRel float64
}

// FLOPSEfficiency returns practical/theoretical, the Table 1 note's
// "75.74% to 82.68%" range.
func (p *Platform) FLOPSEfficiency() float64 {
	return p.PracticalTFLOPS / p.TheoreticalTFLOPS
}

// EngineMemBytes is the memory available to a model engine when running
// alone (Fig. 5/6 configuration).
func (p *Platform) EngineMemBytes() int64 {
	return p.GPUMemBytes - p.MemReserveBytes
}

// PipelineMemBytes is the memory available to the engine in the
// end-to-end configuration with co-located GPU preprocessing (Fig. 8).
func (p *Platform) PipelineMemBytes() int64 {
	return p.GPUMemBytes - p.MemReserveBytes - p.PreprocPoolBytes
}

const (
	gib = int64(1) << 30
	mib = int64(1) << 20
)

// Platform keys.
const (
	KeyA100   = "A100"
	KeyV100   = "V100"
	KeyJetson = "Jetson"
)

// A100 returns the MRI-cluster A100 platform model (Table 1 column 2).
func A100() *Platform {
	return &Platform{
		Name:               KeyA100,
		FullName:           "MRI Cluster (A100)",
		CPUCores:           128,
		GPUDesc:            "NVIDIA A100 40GB x2 (one used)",
		GPUMemBytes:        40 * gib,
		HostMemBytes:       256 * gib,
		Scenarios:          "Online, Offline",
		Precision:          BF16,
		PowerW:             400,
		TheoreticalTFLOPS:  312,
		PracticalTFLOPS:    236.3,
		MemReserveBytes:    1 * gib,
		PreprocPoolBytes:   2 * gib,
		PreFixedNs:         72_000, // ~72us fixed per image (launch+decode setup)
		DecodeNsPerPixel:   0.08,
		TransformNsPerPix:  1.15,
		PreBatchFixedNs:    220_000,
		PCIeBytesPerSecond: 24e9,
		CPUSingleThreadRel: 1.0,
	}
}

// V100 returns the OSC Pitzer V100 platform model (Table 1 column 1).
func V100() *Platform {
	return &Platform{
		Name:               KeyV100,
		FullName:           "OSC Pitzer Cluster (V100)",
		CPUCores:           40,
		GPUDesc:            "NVIDIA V100 16GB x2 (one used)",
		GPUMemBytes:        16 * gib,
		HostMemBytes:       384 * gib,
		Scenarios:          "Online, Offline",
		Precision:          FP16,
		PowerW:             300,
		TheoreticalTFLOPS:  112,
		PracticalTFLOPS:    92.6,
		MemReserveBytes:    1 * gib,
		PreprocPoolBytes:   2 * gib,
		PreFixedNs:         310_000,
		DecodeNsPerPixel:   0.22,
		TransformNsPerPix:  3.0,
		PreBatchFixedNs:    500_000,
		PCIeBytesPerSecond: 12e9,
		CPUSingleThreadRel: 0.9,
	}
}

// Jetson returns the Jetson Orin Nano Super platform model (Table 1
// column 3), 25 W mode with 8 GB unified memory.
func Jetson() *Platform {
	return &Platform{
		Name:               KeyJetson,
		FullName:           "NVIDIA Jetson Orin Nano Super",
		CPUCores:           6,
		GPUDesc:            "Ampere, 1024 CUDA cores, 32 tensor cores",
		GPUMemBytes:        8 * gib,
		HostMemBytes:       8 * gib,
		Unified:            true,
		Scenarios:          "Real-Time",
		Precision:          FP16,
		PowerW:             25,
		TheoreticalTFLOPS:  17,
		PracticalTFLOPS:    11.4,
		MemReserveBytes:    2 * gib, // OS + runtime share of unified memory
		PreprocPoolBytes:   1200 * mib,
		PreFixedNs:         1_250_000,
		DecodeNsPerPixel:   1.4,
		TransformNsPerPix:  14.0,
		PreBatchFixedNs:    1_500_000,
		PCIeBytesPerSecond: 0, // unified memory: no PCIe copy
		CPUSingleThreadRel: 0.45,
	}
}

// CalibPractical returns the practical TFLOPS the calibration anchors
// refer to.
func (p *Platform) CalibPractical() float64 {
	if p.CalibPracticalTFLOPS > 0 {
		return p.CalibPracticalTFLOPS
	}
	return p.PracticalTFLOPS
}

// JetsonPowerWatts lists the Orin Nano Super's selectable power modes;
// the paper's Table 1 evaluation uses the 25 W mode.
var JetsonPowerWatts = []float64{7, 15, 25}

// JetsonPowerMode returns the Jetson platform scaled to one of its
// power modes. GPU throughput follows the sub-linear frequency/voltage
// curve perf ∝ (W/25)^0.8; CPU cores scale as (W/25)^0.5. Memory
// capacity is unchanged, so OOM boundaries are identical across modes.
func JetsonPowerMode(watts float64) (*Platform, error) {
	ok := false
	for _, w := range JetsonPowerWatts {
		if watts == w {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("hw: unsupported Jetson power mode %vW (want one of %v)", watts, JetsonPowerWatts)
	}
	p := Jetson()
	if watts == p.PowerW {
		return p, nil
	}
	gpuScale := math.Pow(watts/p.PowerW, 0.8)
	cpuScale := math.Pow(watts/p.PowerW, 0.5)
	p.CalibPracticalTFLOPS = p.PracticalTFLOPS
	p.PracticalTFLOPS *= gpuScale
	p.TheoreticalTFLOPS *= gpuScale
	p.PreFixedNs /= gpuScale
	p.DecodeNsPerPixel /= gpuScale
	p.TransformNsPerPix /= gpuScale
	p.PreBatchFixedNs /= gpuScale
	p.CPUSingleThreadRel *= cpuScale
	p.PowerW = watts
	p.FullName = fmt.Sprintf("%s (%gW mode)", p.FullName, watts)
	return p, nil
}

// All returns the three evaluated platforms in the paper's order
// (V100, A100, Jetson follows Table 1; figures order A100 first —
// callers pick what they need).
func All() []*Platform {
	return []*Platform{V100(), A100(), Jetson()}
}

// FigureOrder returns platforms in the order the figures present them:
// A100, V100, Jetson.
func FigureOrder() []*Platform {
	return []*Platform{A100(), V100(), Jetson()}
}

// ByName returns the platform with the given short key.
func ByName(name string) (*Platform, error) {
	for _, p := range All() {
		if p.Name == name || p.FullName == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("hw: unknown platform %q", name)
}
