package hw

import (
	"time"

	"harvest/internal/quant"
	"harvest/internal/tensor"
)

// GemmPoint is one entry of a GEMM efficiency sweep.
type GemmPoint struct {
	N          int // square matrix dimension
	TFLOPS     float64
	Efficiency float64 // fraction of theoretical
}

// GemmEfficiency models the fraction of theoretical FLOPS a platform's
// tensor cores reach on an NxNxN half-precision GEMM. Small problems
// are launch/memory bound; the curve saturates at the platform's
// Table 1 practical efficiency:
//
//	eff(N) = effMax * N^2 / (N^2 + N0^2),  N0 = 384
//
// where effMax is back-solved so eff(8192) equals the published
// practical/theoretical ratio — i.e. the simulated benchmark reproduces
// Table 1's practical TFLOPS at the standard benchmark size.
func GemmEfficiency(p *Platform, n int) float64 {
	const n0 = 384.0
	const ref = 8192.0
	plateau := p.FLOPSEfficiency()
	effMax := plateau * (ref*ref + n0*n0) / (ref * ref)
	x := float64(n)
	return effMax * x * x / (x*x + n0*n0)
}

// GemmSweep runs the simulated GEMM benchmark over sizes and returns
// the achieved TFLOPS per size, the Table 1 methodology.
func GemmSweep(p *Platform, sizes []int) []GemmPoint {
	out := make([]GemmPoint, len(sizes))
	for i, n := range sizes {
		eff := GemmEfficiency(p, n)
		out[i] = GemmPoint{N: n, Efficiency: eff, TFLOPS: p.TheoreticalTFLOPS * eff}
	}
	return out
}

// PracticalTFLOPSMeasured returns the simulated benchmark's headline
// number (GEMM at N=8192), which reproduces Table 1's practical TFLOPS.
func PracticalTFLOPSMeasured(p *Platform) float64 {
	return p.TheoreticalTFLOPS * GemmEfficiency(p, 8192)
}

// HostGemmGFLOPS really executes an NxNxN float32 GEMM on this machine
// with internal/tensor's blocked parallel kernel and returns achieved
// GFLOPS (2*N^3 floating point operations). This keeps the Table 1
// methodology honest: the repository measures real GEMM throughput on
// the hardware it actually has.
func HostGemmGFLOPS(n int) float64 {
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = float32(i%13) * 0.1
		b.Data[i] = float32(i%7) * 0.2
	}
	start := time.Now()
	c := tensor.MatMul(a, b)
	elapsed := time.Since(start).Seconds()
	_ = c.Data[0]
	if elapsed <= 0 {
		return 0
	}
	return 2 * float64(n) * float64(n) * float64(n) / elapsed / 1e9
}

// HostGemmResult is one really-executed GEMM measurement on this host
// at one storage precision.
type HostGemmResult struct {
	Precision string  // "fp32-naive", "fp32", "fp16", "bf16", "int8"
	GFLOPS    float64 // effective rate: 2*N^3 ops / elapsed
}

// timeGemm runs f repeatedly until enough wall time accumulates for a
// stable reading and returns the effective GFLOPS of an NxNxN GEMM.
func timeGemm(n int, f func()) float64 {
	const minSec = 0.25
	iters := 0
	start := time.Now()
	for {
		f()
		iters++
		if time.Since(start).Seconds() >= minSec {
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	return 2 * float64(n) * float64(n) * float64(n) * float64(iters) / elapsed / 1e9
}

// HostGemmSuite really executes NxNxN GEMMs on this machine at every
// compute-backend precision and returns the achieved effective GFLOPS
// (always counted as 2*N^3 operations, so rates are comparable across
// precisions). The naive single-threaded kernel comes first as the
// baseline; reduced-precision entries time the kernel over pre-encoded
// operands, matching how the executable models hold their weights.
func HostGemmSuite(n int) []HostGemmResult {
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = float32(i%13)*0.1 - 0.6
		b.Data[i] = float32(i%7)*0.2 - 0.6
	}
	c := make([]float32, n*n)
	var out []HostGemmResult
	out = append(out, HostGemmResult{"fp32-naive", timeGemm(n, func() {
		tensor.MatMulNaive(a, b)
	})})
	out = append(out, HostGemmResult{"fp32", timeGemm(n, func() {
		tensor.GemmInto(c, a.Data, b.Data, n, n, n)
	})})
	// Half-precision weights: b held as encoded 16-bit words, dequantized
	// panel-at-a-time inside the pack step (b row-major == transposed
	// weight layout for a symmetric operand).
	f16 := make([]uint16, n*n)
	bf16 := make([]uint16, n*n)
	for i, v := range b.Data {
		f16[i] = uint16(quant.FromFloat32(v))
		bf16[i] = uint16(quant.BF16FromFloat32(v))
	}
	out = append(out, HostGemmResult{"fp16", timeGemm(n, func() {
		tensor.GemmTransBF16Into(c, a.Data, f16, n, n, n, false)
	})})
	out = append(out, HostGemmResult{"bf16", timeGemm(n, func() {
		tensor.GemmTransBF16Into(c, a.Data, bf16, n, n, n, true)
	})})
	// int8: 7-bit SWAR kernel over packed codes (activations asymmetric
	// uint7, weights symmetric int7), accumulating in integer words.
	ap, err := quant.CalibrateQ7(a.Data)
	if err != nil {
		return out
	}
	acodes := make([]uint8, n*n)
	ap.QuantizeInto(acodes, a.Data)
	wcodes := make([]int8, n*n)
	quant.QuantizeQ7SymInto(wcodes, b.Data, quant.CalibrateQ7Sym(b.Data))
	pa := tensor.PackQ7Acts(acodes, n, n)
	pw := tensor.PackQ7Weights(wcodes, n, n)
	ci := make([]int32, n*n)
	out = append(out, HostGemmResult{"int8", timeGemm(n, func() {
		tensor.Q7GemmTransB(ci, pa, pw)
	})})
	return out
}
