package hw

import (
	"time"

	"harvest/internal/tensor"
)

// GemmPoint is one entry of a GEMM efficiency sweep.
type GemmPoint struct {
	N          int // square matrix dimension
	TFLOPS     float64
	Efficiency float64 // fraction of theoretical
}

// GemmEfficiency models the fraction of theoretical FLOPS a platform's
// tensor cores reach on an NxNxN half-precision GEMM. Small problems
// are launch/memory bound; the curve saturates at the platform's
// Table 1 practical efficiency:
//
//	eff(N) = effMax * N^2 / (N^2 + N0^2),  N0 = 384
//
// where effMax is back-solved so eff(8192) equals the published
// practical/theoretical ratio — i.e. the simulated benchmark reproduces
// Table 1's practical TFLOPS at the standard benchmark size.
func GemmEfficiency(p *Platform, n int) float64 {
	const n0 = 384.0
	const ref = 8192.0
	plateau := p.FLOPSEfficiency()
	effMax := plateau * (ref*ref + n0*n0) / (ref * ref)
	x := float64(n)
	return effMax * x * x / (x*x + n0*n0)
}

// GemmSweep runs the simulated GEMM benchmark over sizes and returns
// the achieved TFLOPS per size, the Table 1 methodology.
func GemmSweep(p *Platform, sizes []int) []GemmPoint {
	out := make([]GemmPoint, len(sizes))
	for i, n := range sizes {
		eff := GemmEfficiency(p, n)
		out[i] = GemmPoint{N: n, Efficiency: eff, TFLOPS: p.TheoreticalTFLOPS * eff}
	}
	return out
}

// PracticalTFLOPSMeasured returns the simulated benchmark's headline
// number (GEMM at N=8192), which reproduces Table 1's practical TFLOPS.
func PracticalTFLOPSMeasured(p *Platform) float64 {
	return p.TheoreticalTFLOPS * GemmEfficiency(p, 8192)
}

// HostGemmGFLOPS really executes an NxNxN float32 GEMM on this machine
// with internal/tensor's blocked parallel kernel and returns achieved
// GFLOPS (2*N^3 floating point operations). This keeps the Table 1
// methodology honest: the repository measures real GEMM throughput on
// the hardware it actually has.
func HostGemmGFLOPS(n int) float64 {
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = float32(i%13) * 0.1
		b.Data[i] = float32(i%7) * 0.2
	}
	start := time.Now()
	c := tensor.MatMul(a, b)
	elapsed := time.Since(start).Seconds()
	_ = c.Data[0]
	if elapsed <= 0 {
		return 0
	}
	return 2 * float64(n) * float64(n) * float64(n) / elapsed / 1e9
}
