package hw

// GPUPreprocImageSeconds models the DALI-analogue GPU preprocessing
// cost of one image: fixed launch/setup cost, decode proportional to
// input pixels, transform (resize+crop+normalize) proportional to
// output pixels. This structure reproduces the paper's Fig. 7
// observations: decode cost is constant per dataset so small output
// resolutions (DALI 32) are fastest, and at large output resolutions
// the transform dominates so datasets converge.
func GPUPreprocImageSeconds(p *Platform, inPixels, outPixels int) float64 {
	ns := p.PreFixedNs +
		p.DecodeNsPerPixel*float64(inPixels) +
		p.TransformNsPerPix*float64(outPixels)
	return ns / 1e9
}

// GPUPreprocBatchSeconds models a batch: per-image costs pipeline on
// the GPU plus one fixed per-batch overhead.
func GPUPreprocBatchSeconds(p *Platform, inPixels []int, outPixels int) float64 {
	total := p.PreBatchFixedNs / 1e9
	for _, px := range inPixels {
		total += GPUPreprocImageSeconds(p, px, outPixels)
	}
	return total
}

// GPUPreprocThroughput returns steady-state images/second for a stream
// of images with meanInPixels input pixels preprocessed to
// outRes x outRes output at the given batch size.
func GPUPreprocThroughput(p *Platform, meanInPixels float64, outRes, batch int) float64 {
	perImage := GPUPreprocImageSeconds(p, int(meanInPixels), outRes*outRes)
	perBatch := perImage*float64(batch) + p.PreBatchFixedNs/1e9
	if perBatch <= 0 {
		return 0
	}
	return float64(batch) / perBatch
}

// ScaleCPUSeconds converts a single-threaded CPU duration measured on
// the build host into the equivalent duration on platform p, using the
// per-core relative speed of Table 1's CPUs. The build host is assumed
// comparable to a modern cloud core (rel = 1.0).
func ScaleCPUSeconds(p *Platform, hostSeconds float64) float64 {
	if p.CPUSingleThreadRel <= 0 {
		return hostSeconds
	}
	return hostSeconds / p.CPUSingleThreadRel
}
