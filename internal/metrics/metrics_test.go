package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	for _, v := range []float64{0.010, 0.020, 0.030} {
		r.Observe(v)
	}
	if r.Count() != 3 {
		t.Fatalf("count %d", r.Count())
	}
	if m := r.MeanMs(); math.Abs(m-20) > 1e-9 {
		t.Errorf("mean %v ms, want 20", m)
	}
	// Percentiles are interpolated from log buckets: exact to within
	// one bucket width ratio (10^(1/8) ≈ 1.33).
	if p := r.PercentileMs(50); p < 20/1.34 || p > 20*1.34 {
		t.Errorf("p50 %v ms, want ~20 within one bucket width", p)
	}
	s := r.Summary()
	if s.N != 3 || s.Min != 0.010 || s.Max != 0.030 {
		t.Errorf("summary %+v", s)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 3200 {
		t.Errorf("count %d, want 3200", r.Count())
	}
}

func TestThroughput(t *testing.T) {
	if v := Throughput(100, 2); v != 50 {
		t.Errorf("throughput %v", v)
	}
	if v := Throughput(100, 0); v != 0 {
		t.Errorf("zero-time throughput %v", v)
	}
}

func TestMFU(t *testing.T) {
	// 1000 img/s * 1e9 FLOPs = 1e12 FLOPS on a 1e13 platform = 10%.
	if v := MFU(1000, 1e9, 1e13); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("MFU %v, want 0.1", v)
	}
	if v := MFU(1, 1, 0); v != 0 {
		t.Errorf("degenerate MFU %v", v)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "Name", "Value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("beta", "raw")
	tb.AddRow("gamma", 42)
	if tb.NumRows() != 3 {
		t.Fatalf("rows %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"My Title", "Name", "Value", "alpha", "3.14", "raw", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Name,Value\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "alpha,3.14") {
		t.Errorf("csv rows wrong: %q", csv)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(3, 20)
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(9); ok {
		t.Error("YAt of absent x succeeded")
	}
	x, y := s.MaxY()
	if x != 2 || y != 30 {
		t.Errorf("MaxY = (%v, %v)", x, y)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Scaling", "batch", "tflops")
	a := f.AddSeries("ViT")
	a.Add(1, 1.5)
	a.Add(2, 2.5)
	b := f.AddSeries("ResNet")
	b.Add(2, 4.5)
	out := f.String()
	for _, want := range []string{"Scaling", "batch", "ViT", "ResNet", "1.50", "4.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Missing points render as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing point placeholder absent")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000+8*5 {
		t.Errorf("counter %d, want %d", got, 8*1000+8*5)
	}
}
