package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), written with the
// standard library only: enough of the format for counters, gauges and
// the shared-layout latency histograms, so harvest-serve and
// harvest-router can be scraped by a stock Prometheus.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promEscape escapes a label value: backslash, double quote and
// newline, per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// PromLabel renders one name="value" label pair with escaping.
func PromLabel(name, value string) string {
	return name + `="` + promEscape(value) + `"`
}

// PromLabels joins rendered label pairs.
func PromLabels(pairs ...string) string { return strings.Join(pairs, ",") }

// promFloat formats a sample value ("+Inf"/"-Inf"/"NaN" per the spec).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromWriter writes exposition-format metric families. Write errors
// are deliberately ignored: the writer targets an HTTP response, where
// a failed scrape is retried by the scraper.
type PromWriter struct {
	W io.Writer
}

// Head writes the HELP/TYPE header of a metric family. typ is
// "counter", "gauge" or "histogram".
func (p PromWriter) Head(name, typ, help string) {
	fmt.Fprintf(p.W, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Val writes one sample with preformatted labels (see PromLabel);
// empty labels write a bare sample.
func (p PromWriter) Val(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(p.W, "%s %s\n", name, promFloat(v))
		return
	}
	fmt.Fprintf(p.W, "%s{%s} %s\n", name, labels, promFloat(v))
}

// Int writes one integer-valued sample.
func (p PromWriter) Int(name, labels string, v int64) { p.Val(name, labels, float64(v)) }

// Hist writes a snapshot as a Prometheus histogram: cumulative
// _bucket{le=...} series over the shared bucket bounds, then _sum and
// _count.
func (p PromWriter) Hist(name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i, upper := range histUpper {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		le := PromLabel("le", promFloat(upper))
		if labels != "" {
			le = labels + "," + le
		}
		fmt.Fprintf(p.W, "%s_bucket{%s} %d\n", name, le, cum)
	}
	p.Val(name+"_sum", labels, s.Sum)
	p.Int(name+"_count", labels, int64(s.Count))
}
