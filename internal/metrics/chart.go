package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ChartOptions control ASCII chart rendering.
type ChartOptions struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)
	// LogX / LogY select logarithmic axes, matching the paper's
	// figure axes (batch size and latency are log-scaled there).
	LogX, LogY bool
}

// seriesGlyphs mark successive series in the plot.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Chart renders the figure's series as an ASCII line chart with a
// shared canvas, legend and axis labels. Non-positive values are
// dropped on log axes.
func (f *Figure) Chart(opts ChartOptions) string {
	if opts.Width <= 0 {
		opts.Width = 72
	}
	if opts.Height <= 0 {
		opts.Height = 18
	}
	tx := func(v float64) (float64, bool) {
		if opts.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if opts.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	// Collect transformed bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y float64
		s    int
	}
	var pts []pt
	for si, s := range f.Series {
		for _, p := range s.Points {
			x, okx := tx(p.X)
			y, oky := ty(p.Y)
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			pts = append(pts, pt{x: x, y: y, s: si})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if len(pts) == 0 {
		b.WriteString("(no drawable points)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]byte, opts.Height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(opts.Width-1))
		row := opts.Height - 1 - int((p.y-minY)/(maxY-minY)*float64(opts.Height-1))
		canvas[row][col] = seriesGlyphs[p.s%len(seriesGlyphs)]
	}

	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	topLabel := fmt.Sprintf("%.4g", inv(maxY, opts.LogY))
	botLabel := fmt.Sprintf("%.4g", inv(minY, opts.LogY))
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range canvas {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case opts.Height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%s  %-12.4g%*s\n", strings.Repeat(" ", labelW),
		inv(minX, opts.LogX), opts.Width-12, fmt.Sprintf("%.4g", inv(maxX, opts.LogX)))
	fmt.Fprintf(&b, "x: %s, y: %s", f.XLabel, f.YLabel)
	if opts.LogX {
		b.WriteString(" (log x)")
	}
	if opts.LogY {
		b.WriteString(" (log y)")
	}
	b.WriteString("\nlegend:")
	for si, s := range f.Series {
		fmt.Fprintf(&b, " %c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}
