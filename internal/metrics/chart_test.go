package metrics

import (
	"strings"
	"testing"
)

func chartFigure() *Figure {
	f := NewFigure("Latency", "batch", "ms")
	s := f.AddSeries("modelA")
	for _, b := range []float64{1, 4, 16, 64, 256, 1024} {
		s.Add(b, 0.5+0.1*b)
	}
	t := f.AddSeries("modelB")
	for _, b := range []float64{1, 4, 16, 64} {
		t.Add(b, 0.2*b)
	}
	return f
}

func TestChartRendersAllSeries(t *testing.T) {
	f := chartFigure()
	out := f.Chart(ChartOptions{})
	for _, want := range []string{"Latency", "legend:", "modelA", "modelB", "x: batch", "y: ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// Both glyphs must appear on the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing from canvas")
	}
}

func TestChartLogAxes(t *testing.T) {
	f := chartFigure()
	out := f.Chart(ChartOptions{LogX: true, LogY: true})
	if !strings.Contains(out, "(log x)") || !strings.Contains(out, "(log y)") {
		t.Error("log axis markers missing")
	}
	// Axis extremes are back-transformed: max x is 1024, not log10.
	if !strings.Contains(out, "1024") {
		t.Errorf("x max label missing:\n%s", out)
	}
}

func TestChartDropsNonPositiveOnLog(t *testing.T) {
	f := NewFigure("t", "x", "y")
	s := f.AddSeries("s")
	s.Add(-1, 5)
	s.Add(0, 5)
	out := f.Chart(ChartOptions{LogX: true})
	if !strings.Contains(out, "no drawable points") {
		t.Error("non-positive log-x points not dropped")
	}
}

func TestChartEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	out := f.Chart(ChartOptions{})
	if !strings.Contains(out, "no drawable points") {
		t.Error("empty figure should say so")
	}
}

func TestChartSinglePoint(t *testing.T) {
	f := NewFigure("single", "x", "y")
	f.AddSeries("s").Add(3, 7)
	out := f.Chart(ChartOptions{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Error("single point not drawn")
	}
}

func TestChartDimensions(t *testing.T) {
	f := chartFigure()
	out := f.Chart(ChartOptions{Width: 30, Height: 6})
	lines := strings.Split(out, "\n")
	// Title + 6 canvas rows + axis + x labels + meta lines.
	canvasRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			canvasRows++
		}
	}
	if canvasRows != 6 {
		t.Errorf("canvas rows %d, want 6", canvasRows)
	}
}
