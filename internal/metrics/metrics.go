// Package metrics provides latency recording, throughput accounting and
// the ASCII table/series renderers the experiment harness uses to print
// the paper's tables and figures.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"harvest/internal/stats"
)

// Counter is a monotonically increasing event counter, safe for
// concurrent use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// LatencyRecorder accumulates latency observations (seconds). It is
// safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []float64
}

// Observe records one latency in seconds.
func (l *LatencyRecorder) Observe(seconds float64) {
	l.mu.Lock()
	l.samples = append(l.samples, seconds)
	l.mu.Unlock()
}

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Summary returns descriptive statistics of the observations.
func (l *LatencyRecorder) Summary() stats.Summary {
	l.mu.Lock()
	cp := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	return stats.Summarize(cp)
}

// MeanMs returns the mean latency in milliseconds.
func (l *LatencyRecorder) MeanMs() float64 { return l.Summary().Mean * 1000 }

// PercentileMs returns the p-th percentile latency in milliseconds.
func (l *LatencyRecorder) PercentileMs(p float64) float64 {
	l.mu.Lock()
	cp := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	return stats.Percentile(cp, p) * 1000
}

// Throughput computes items/second given a count and elapsed seconds.
func Throughput(items int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(items) / seconds
}

// MFU computes model FLOPs utilization from achieved throughput.
func MFU(imgPerSec, flopsPerImage, platformFLOPS float64) float64 {
	if platformFLOPS <= 0 {
		return 0
	}
	return imgPerSec * flopsPerImage / platformFLOPS
}

// Table renders aligned ASCII tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Point is one (x, y) sample of a figure series.
type Point struct{ X, Y float64 }

// Series is a named curve, the unit figures are assembled from.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the y value at the given x, or NaN if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the series maximum y and its x.
func (s *Series) MaxY() (x, y float64) {
	for i, p := range s.Points {
		if i == 0 || p.Y > y {
			x, y = p.X, p.Y
		}
	}
	return x, y
}

// Figure is a titled group of series (one paper sub-figure).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders all series as aligned columns: one row per distinct x.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	// Collect the union of x values.
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	// Header.
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "  %16.2f", y)
			} else {
				fmt.Fprintf(&b, "  %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
