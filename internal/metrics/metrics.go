// Package metrics provides latency recording, throughput accounting and
// the ASCII table/series renderers the experiment harness uses to print
// the paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"harvest/internal/stats"
)

// Counter is a monotonically increasing event counter, safe for
// concurrent use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// LatencyRecorder accumulates latency observations (seconds) into a
// bounded log-bucketed histogram (see histogram.go for the shared
// layout). Memory is O(1) in the number of observations — a long-lived
// server can observe forever without growing — and every operation is
// lock-free (atomic bucket counters), so Observe is cheap on the hot
// path. The zero value is ready to use; it is safe for concurrent use.
//
// Mean, min and max are exact; percentiles are interpolated within the
// containing log bucket (relative error bounded by the bucket width
// ratio 10^(1/8) ≈ 1.33, and exact at the observed extremes).
type LatencyRecorder struct {
	counts    [NumLatencyBuckets]atomic.Uint64
	count     atomic.Uint64
	sumBits   atomic.Uint64
	sumSqBits atomic.Uint64
	minBits   atomic.Uint64 // float bits + 1; 0 = unset
	maxBits   atomic.Uint64 // float bits + 1; 0 = unset
}

// Observe records one latency in seconds. Negative and NaN values are
// clamped to zero.
func (l *LatencyRecorder) Observe(seconds float64) {
	if seconds < 0 || seconds != seconds {
		seconds = 0
	}
	l.counts[bucketIndex(seconds)].Add(1)
	l.count.Add(1)
	addFloat(&l.sumBits, seconds)
	addFloat(&l.sumSqBits, seconds*seconds)
	noteMin(&l.minBits, seconds)
	noteMax(&l.maxBits, seconds)
}

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int { return int(l.count.Load()) }

// Snapshot copies the histogram state. Concurrent observers make the
// snapshot eventually consistent: bucket counts, sum and extremes are
// read individually, so a snapshot taken mid-Observe may be off by the
// in-flight observation — never by more.
func (l *LatencyRecorder) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]uint64, NumLatencyBuckets)}
	var n uint64
	for i := range l.counts {
		c := l.counts[i].Load()
		s.Counts[i] = c
		n += c
	}
	s.Count = n
	s.Sum = math.Float64frombits(l.sumBits.Load())
	s.SumSq = math.Float64frombits(l.sumSqBits.Load())
	s.Min = loadExtreme(&l.minBits)
	s.Max = loadExtreme(&l.maxBits)
	return s
}

// Summary returns descriptive statistics of the observations.
func (l *LatencyRecorder) Summary() stats.Summary { return l.Snapshot().Summary() }

// MeanMs returns the mean latency in milliseconds (exact).
func (l *LatencyRecorder) MeanMs() float64 { return l.Summary().Mean * 1000 }

// PercentileMs returns the p-th percentile latency in milliseconds,
// interpolated from the histogram buckets.
func (l *LatencyRecorder) PercentileMs(p float64) float64 {
	return l.Snapshot().Quantile(p) * 1000
}

// Throughput computes items/second given a count and elapsed seconds.
func Throughput(items int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(items) / seconds
}

// MFU computes model FLOPs utilization from achieved throughput.
func MFU(imgPerSec, flopsPerImage, platformFLOPS float64) float64 {
	if platformFLOPS <= 0 {
		return 0
	}
	return imgPerSec * flopsPerImage / platformFLOPS
}

// Table renders aligned ASCII tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// csvCell quotes a cell per RFC 4180 when it contains a comma, quote,
// or line break; plain cells pass through unquoted.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing commas, quotes or newlines are quoted, embedded quotes
// are doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Point is one (x, y) sample of a figure series.
type Point struct{ X, Y float64 }

// Series is a named curve, the unit figures are assembled from.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the y value at the given x, or NaN if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the series maximum y and its x.
func (s *Series) MaxY() (x, y float64) {
	for i, p := range s.Points {
		if i == 0 || p.Y > y {
			x, y = p.X, p.Y
		}
	}
	return x, y
}

// Figure is a titled group of series (one paper sub-figure).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders all series as aligned columns: one row per distinct x.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	// Collect the union of x values.
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	// Header.
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "  %16.2f", y)
			} else {
				fmt.Fprintf(&b, "  %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
