package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// TestLatencyRecorderBoundedMemory is the regression test for the
// unbounded sample slice: a long-lived server observing forever must
// stay O(1). The recorder is a fixed struct with no per-observation
// storage, and Observe allocates nothing.
func TestLatencyRecorderBoundedMemory(t *testing.T) {
	var r LatencyRecorder
	if allocs := testing.AllocsPerRun(1000, func() { r.Observe(0.003) }); allocs != 0 {
		t.Errorf("Observe allocates %.1f objects per call, want 0", allocs)
	}
	const n = 1_000_000
	for i := 0; i < n; i++ {
		r.Observe(float64(i%1000) * 1e-5) // 0..10ms sweep
	}
	if got := r.Count(); got < n {
		t.Errorf("count %d, want >= %d", got, n)
	}
	// The whole recorder is a fixed-size struct: its footprint after 1M
	// observations is the same few hundred bytes as at zero.
	if size := unsafe.Sizeof(r); size > 1<<10 {
		t.Errorf("recorder footprint %d bytes, want O(1) well under 1KiB", size)
	}
	if got := len(r.Snapshot().Counts); got != NumLatencyBuckets {
		t.Errorf("snapshot has %d buckets, want fixed %d", got, NumLatencyBuckets)
	}
}

// TestLatencyRecorderAccuracy checks the exact moments and the bounded
// relative error of interpolated percentiles.
func TestLatencyRecorderAccuracy(t *testing.T) {
	var r LatencyRecorder
	var sum float64
	const n = 10000
	for i := 1; i <= n; i++ {
		v := float64(i) * 1e-5 // 10µs .. 100ms uniform
		r.Observe(v)
		sum += v
	}
	s := r.Summary()
	if s.N != n {
		t.Fatalf("n %d", s.N)
	}
	if math.Abs(s.Mean-sum/n) > 1e-9 {
		t.Errorf("mean %v, want exact %v", s.Mean, sum/n)
	}
	if s.Min != 1e-5 || s.Max != n*1e-5 {
		t.Errorf("extremes [%v, %v], want exact [1e-5, %v]", s.Min, s.Max, n*1e-5)
	}
	for _, p := range []float64{50, 90, 95, 99} {
		got := r.Snapshot().Quantile(p)
		want := p / 100 * n * 1e-5
		if got < want/1.34 || got > want*1.34 {
			t.Errorf("p%.0f = %v, want %v within one bucket width", p, got, want)
		}
	}
	// Quantiles are monotone in p and clamped to the observed range.
	if s.P50 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max || s.P50 < s.Min {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	bounds := LatencyBucketBounds()
	if len(bounds) != NumLatencyBuckets || !math.IsInf(bounds[NumLatencyBuckets-1], 1) {
		t.Fatalf("bounds %v", bounds)
	}
	for i, upper := range bounds[:NumLatencyBuckets-1] {
		// An observation exactly at an upper bound lands in that bucket
		// (buckets are (lo, hi]), and just above it lands in the next.
		if got := bucketIndex(upper); got != i {
			t.Errorf("bucketIndex(%v) = %d, want %d", upper, got, i)
		}
		if got := bucketIndex(upper * (1 + 1e-12)); got != i+1 {
			t.Errorf("bucketIndex(just above %v) = %d, want %d", upper, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(1e9); got != NumLatencyBuckets-1 {
		t.Errorf("bucketIndex(1e9) = %d, want overflow", got)
	}
}

// TestHistogramMergeIsExact merges two skewed replicas and checks the
// merged quantiles equal those of a single recorder that saw every
// observation — and that the old count-weighted mean of percentiles
// would have been wrong.
func TestHistogramMergeIsExact(t *testing.T) {
	var a, b, all LatencyRecorder
	// Replica A: 900 fast observations at ~1ms.
	for i := 0; i < 900; i++ {
		v := 0.001 + float64(i%10)*1e-6
		a.Observe(v)
		all.Observe(v)
	}
	// Replica B: 100 slow observations at ~1s.
	for i := 0; i < 100; i++ {
		v := 1.0 + float64(i)*1e-3
		b.Observe(v)
		all.Observe(v)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Min != want.Min || merged.Max != want.Max {
		t.Fatalf("merged moments %+v, want %+v", merged, want)
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-9 {
		t.Fatalf("merged sum %v, want %v", merged.Sum, want.Sum)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	for _, p := range []float64{50, 95, 99, 99.5} {
		if got, exact := merged.Quantile(p), want.Quantile(p); got != exact {
			t.Errorf("merged p%g = %v, combined = %v; merge not exact", p, got, exact)
		}
	}
	// Rank 990 of the 1000 merged observations is deep in the slow tail
	// (~1s). The old aggregation — count-weighted mean of per-replica
	// p99s — lands at ~0.9*1ms + 0.1*1s ≈ 0.1s: an order of magnitude
	// low on the merged tail.
	truthP99 := merged.Quantile(99)
	wa, wb := 900.0/1000, 100.0/1000
	weightedMean := wa*a.Snapshot().Quantile(99) + wb*b.Snapshot().Quantile(99)
	if truthP99 < 0.5 {
		t.Fatalf("merged p99 %v, want in the ~1s tail", truthP99)
	}
	if weightedMean > truthP99/2 {
		t.Fatalf("weighted-mean p99 %v is not clearly wrong vs %v; test is vacuous", weightedMean, truthP99)
	}
}

// TestLatencyRecorderConcurrentMerge exercises concurrent Observe and
// Snapshot/Merge under -race, and checks no observation is lost.
func TestLatencyRecorderConcurrentMerge(t *testing.T) {
	var r LatencyRecorder
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: snapshots + merges while observing
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				acc := r.Snapshot().Merge(r.Snapshot())
				_ = acc.Quantile(99)
				_ = acc.Summary()
			}
		}
	}()
	const writers, per = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Observe(float64(i*j%997) * 1e-6)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := r.Snapshot()
	if s.Count != writers*per {
		t.Errorf("count %d, want %d", s.Count, writers*per)
	}
	if r.Count() != writers*per {
		t.Errorf("Count() %d, want %d", r.Count(), writers*per)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note,with,commas")
	tb.AddRow(`plain`, `a,b`)
	tb.AddRow(`quo"te`, "line\nbreak")
	got := tb.CSV()
	want := "name,\"note,with,commas\"\n" +
		"plain,\"a,b\"\n" +
		"\"quo\"\"te\",\"line\nbreak\"\n"
	if got != want {
		t.Errorf("CSV output:\n%q\nwant:\n%q", got, want)
	}
	// Plain tables stay byte-identical to the old renderer.
	plain := NewTable("", "a", "b")
	plain.AddRow("x", 1.0)
	if out := plain.CSV(); out != "a,b\nx,1.00\n" {
		t.Errorf("plain CSV %q", out)
	}
}

func TestPromExposition(t *testing.T) {
	var r LatencyRecorder
	r.Observe(0.002)
	r.Observe(0.004)
	r.Observe(2.5)
	var b strings.Builder
	pw := PromWriter{W: &b}
	pw.Head("harvest_queue_latency_seconds", "histogram", "queue wait")
	pw.Hist("harvest_queue_latency_seconds", PromLabel("model", `Vi"T`), r.Snapshot())
	pw.Head("harvest_requests_total", "counter", "served")
	pw.Int("harvest_requests_total", PromLabels(PromLabel("model", "ViT"), PromLabel("class", "online")), 7)
	out := b.String()
	for _, want := range []string{
		"# TYPE harvest_queue_latency_seconds histogram",
		`le="+Inf"} 3`,
		`harvest_queue_latency_seconds_count{model="Vi\"T"} 3`,
		`harvest_requests_total{model="ViT",class="online"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets are monotone non-decreasing and end at count.
	lastCum := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "harvest_queue_latency_seconds_bucket") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		cum, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Errorf("bucket counts not cumulative: %q after %d", line, lastCum)
		}
		lastCum = cum
	}
	if lastCum != 3 {
		t.Errorf("final cumulative bucket %d, want 3", lastCum)
	}
}
