package metrics

import (
	"math"
	"sync/atomic"

	"harvest/internal/stats"
)

// The latency histogram layout is fixed and shared by every
// LatencyRecorder in the process (and, via the wire snapshot, across
// processes): log-spaced buckets, histBucketsPerDecade per decade,
// covering 1 µs .. 100 s, plus an underflow bucket below 1 µs and an
// overflow bucket above 100 s. A fixed shared layout is what makes
// histograms from different replicas mergeable *exactly*: bucket
// counts add element-wise, so quantiles of the merged distribution are
// computed from the merged counts instead of being approximated from
// per-replica percentiles.
const (
	histMin              = 1e-6 // lower edge of the first log bucket (1 µs)
	histMax              = 1e2  // upper edge of the last log bucket (100 s)
	histBucketsPerDecade = 8    // resolution: bucket width ratio 10^(1/8) ≈ 1.33
	histLogBuckets       = 64   // 8 decades x 8 buckets

	// NumLatencyBuckets is the fixed bucket count of the shared layout:
	// underflow + log buckets + overflow. HistogramSnapshot.Counts and
	// the buckets field of the /v2/metrics wire format have exactly this
	// length.
	NumLatencyBuckets = histLogBuckets + 2
)

// histUpper[i] is the inclusive upper bound (seconds) of bucket i; the
// last bucket is unbounded.
var histUpper = func() [NumLatencyBuckets]float64 {
	var b [NumLatencyBuckets]float64
	b[0] = histMin
	for i := 1; i <= histLogBuckets; i++ {
		b[i] = histMin * math.Pow(10, float64(i)/histBucketsPerDecade)
	}
	b[NumLatencyBuckets-1] = math.Inf(1)
	return b
}()

// LatencyBucketBounds returns a copy of the shared bucket upper bounds
// in seconds (the last is +Inf), in the order of
// HistogramSnapshot.Counts. Prometheus exposition uses these as the
// "le" labels.
func LatencyBucketBounds() []float64 {
	out := make([]float64, NumLatencyBuckets)
	copy(out, histUpper[:])
	return out
}

// bucketIndex maps a non-negative observation to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	if v > histMax {
		return NumLatencyBuckets - 1
	}
	i := 1 + int(math.Log10(v/histMin)*histBucketsPerDecade)
	// Guard against float fuzz at bucket boundaries: buckets are
	// (histUpper[i-1], histUpper[i]].
	if i < 1 {
		i = 1
	}
	if i > histLogBuckets {
		i = histLogBuckets
	}
	for i > 1 && v <= histUpper[i-1] {
		i--
	}
	for i < histLogBuckets && v > histUpper[i] {
		i++
	}
	return i
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Extremes are stored as float bits + 1 so the zero value means
// "unset" (a genuine 0.0 observation encodes to 1, not 0).
func noteMin(bits *atomic.Uint64, v float64) {
	enc := math.Float64bits(v) + 1
	for {
		old := bits.Load()
		if old != 0 && math.Float64frombits(old-1) <= v {
			return
		}
		if bits.CompareAndSwap(old, enc) {
			return
		}
	}
}

func noteMax(bits *atomic.Uint64, v float64) {
	enc := math.Float64bits(v) + 1
	for {
		old := bits.Load()
		if old != 0 && math.Float64frombits(old-1) >= v {
			return
		}
		if bits.CompareAndSwap(old, enc) {
			return
		}
	}
}

func loadExtreme(bits *atomic.Uint64) float64 {
	old := bits.Load()
	if old == 0 {
		return 0
	}
	return math.Float64frombits(old - 1)
}

// HistogramSnapshot is a point-in-time copy of a LatencyRecorder in the
// shared bucket layout. Snapshots merge exactly (bucket counts add), so
// a fleet's latency distribution is reconstructed losslessly from
// per-replica snapshots — the fix for the router's old count-weighted
// mean of percentiles, which is not a percentile of anything.
type HistogramSnapshot struct {
	// Count is the number of observations (the sum of Counts).
	Count uint64
	// Sum and SumSq are the exact running sum and sum of squares of the
	// observations, in seconds (and seconds^2).
	Sum   float64
	SumSq float64
	// Min and Max are the exact observed extremes; valid when Count > 0.
	Min float64
	Max float64
	// Counts holds one count per bucket in the shared layout
	// (LatencyBucketBounds order), length NumLatencyBuckets.
	Counts []uint64
}

// Merge returns the element-wise sum of two snapshots: the exact
// histogram of the union of both observation sets.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		SumSq: s.SumSq + o.SumSq,
		Min:   s.Min,
		Max:   s.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	out.Counts = make([]uint64, NumLatencyBuckets)
	copy(out.Counts, s.Counts)
	for i, c := range o.Counts {
		if i >= len(out.Counts) {
			break
		}
		out.Counts[i] += c
	}
	return out
}

// Quantile returns the p-th percentile (0..100) in seconds,
// interpolated linearly within the containing bucket and clamped to
// the exact observed [Min, Max]. Within a log bucket the relative
// error is bounded by the bucket width ratio (10^(1/8) ≈ 1.33).
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 100 {
		return s.Max
	}
	target := p / 100 * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := 0.0
			if i > 0 {
				lo = histUpper[i-1]
			}
			hi := histUpper[i]
			if math.IsInf(hi, 1) || hi > s.Max {
				hi = s.Max
			}
			if lo < s.Min {
				lo = s.Min
			}
			if hi < lo {
				hi = lo
			}
			v := lo + (hi-lo)*(target-cum)/float64(c)
			return clamp(v, s.Min, s.Max)
		}
		cum = next
	}
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Summary computes descriptive statistics from the snapshot: mean,
// min and max are exact (tracked alongside the buckets), percentiles
// are bucket-interpolated.
func (s HistogramSnapshot) Summary() stats.Summary {
	out := stats.Summary{N: int(s.Count)}
	if s.Count == 0 {
		return out
	}
	n := float64(s.Count)
	out.Mean = s.Sum / n
	if v := s.SumSq/n - out.Mean*out.Mean; v > 0 {
		out.Std = math.Sqrt(v)
	}
	out.Min, out.Max = s.Min, s.Max
	out.P50 = s.Quantile(50)
	out.P90 = s.Quantile(90)
	out.P95 = s.Quantile(95)
	out.P99 = s.Quantile(99)
	return out
}
