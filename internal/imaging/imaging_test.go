package imaging

import (
	"bytes"
	"strings"
	"testing"

	"harvest/internal/stats"
)

func TestNewImage(t *testing.T) {
	im := NewImage(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 36 {
		t.Fatalf("bad image %+v", im)
	}
	if im.Bytes() != 36 {
		t.Errorf("Bytes = %d", im.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,1) did not panic")
		}
	}()
	NewImage(0, 1)
}

func TestSetAt(t *testing.T) {
	im := NewImage(3, 3)
	im.Set(1, 2, 10, 20, 30)
	r, g, b := im.At(1, 2)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
}

func TestCloneIndependence(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 5, 5, 5)
	cp := im.Clone()
	cp.Set(0, 0, 9, 9, 9)
	if r, _, _ := im.At(0, 0); r != 5 {
		t.Error("Clone shares pixels")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	for _, kind := range []SyntheticKind{KindLeaf, KindRows, KindSoil, KindFruit} {
		a := Synthesize(32, 24, kind, stats.NewRNG(7))
		b := Synthesize(32, 24, kind, stats.NewRNG(7))
		if !bytes.Equal(a.Pix, b.Pix) {
			t.Errorf("kind %v not deterministic", kind)
		}
	}
}

func TestSynthesizeKindsDiffer(t *testing.T) {
	a := Synthesize(32, 32, KindLeaf, stats.NewRNG(1))
	b := Synthesize(32, 32, KindSoil, stats.NewRNG(1))
	if bytes.Equal(a.Pix, b.Pix) {
		t.Error("different texture kinds produced identical pixels")
	}
}

func TestSynthesizeNonTrivialContent(t *testing.T) {
	im := Synthesize(64, 64, KindRows, stats.NewRNG(3))
	// Content should not be constant.
	first := im.Pix[0]
	varies := false
	for _, p := range im.Pix {
		if p != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("synthesized image is constant")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	im := Synthesize(17, 9, KindLeaf, stats.NewRNG(5))
	var buf bytes.Buffer
	if err := EncodePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H || !bytes.Equal(back.Pix, im.Pix) {
		t.Error("PPM round trip not exact")
	}
}

func TestDecodePPMErrors(t *testing.T) {
	cases := []string{
		"",
		"P5\n2 2\n255\n",   // wrong magic
		"P6\n2 2\n128\n",   // wrong maxval
		"P6\n-3 2\n255\n",  // bad dims
		"P6\n2 2\n255\nab", // short pixel data
	}
	for i, c := range cases {
		if _, err := DecodePPM(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: DecodePPM accepted malformed input", i)
		}
	}
}

func TestJPEGRoundTripApproximate(t *testing.T) {
	im := Synthesize(48, 32, KindLeaf, stats.NewRNG(6))
	var buf bytes.Buffer
	if err := EncodeJPEG(&buf, im, 90); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJPEG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("JPEG changed dimensions: %dx%d", back.W, back.H)
	}
	// Lossy but close on smooth content.
	var worst int
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(back.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 48 {
		t.Errorf("JPEG round trip worst-pixel error %d too high", worst)
	}
}

func TestEncodeDecodeBytesFormats(t *testing.T) {
	im := Synthesize(20, 20, KindFruit, stats.NewRNG(8))
	for _, f := range []Format{FormatJPEG, FormatPPM} {
		data, err := EncodeBytes(im, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		back, err := DecodeBytes(data, f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if back.W != 20 || back.H != 20 {
			t.Errorf("%v: bad dims", f)
		}
	}
	if _, err := EncodeBytes(im, Format(99)); err == nil {
		t.Error("unknown format encode should fail")
	}
	if _, err := DecodeBytes(nil, Format(99)); err == nil {
		t.Error("unknown format decode should fail")
	}
	if FormatJPEG.String() != "jpeg" || FormatPPM.String() != "ppm" {
		t.Error("format names wrong")
	}
}

func TestJPEGSmallerThanPPMOnSmoothContent(t *testing.T) {
	im := Synthesize(128, 128, KindLeaf, stats.NewRNG(9))
	j, err := EncodeBytes(im, FormatJPEG)
	if err != nil {
		t.Fatal(err)
	}
	p, err := EncodeBytes(im, FormatPPM)
	if err != nil {
		t.Fatal(err)
	}
	if len(j) >= len(p) {
		t.Errorf("JPEG (%d bytes) not smaller than PPM (%d bytes)", len(j), len(p))
	}
}
