package imaging

import (
	"math"
	"testing"

	"harvest/internal/stats"
)

func constantImage(w, h int, v uint8) *Image {
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = v
	}
	return im
}

func TestResizeDimensions(t *testing.T) {
	src := Synthesize(100, 60, KindLeaf, stats.NewRNG(1))
	for _, c := range [][2]int{{50, 30}, {224, 224}, {1, 1}, {200, 120}} {
		dst := Resize(src, c[0], c[1])
		if dst.W != c[0] || dst.H != c[1] {
			t.Errorf("Resize to %v gave %dx%d", c, dst.W, dst.H)
		}
	}
}

func TestResizeConstantInvariance(t *testing.T) {
	src := constantImage(40, 40, 137)
	dst := Resize(src, 17, 23)
	for i, p := range dst.Pix {
		if p != 137 {
			t.Fatalf("constant image resize changed pixel %d to %d", i, p)
		}
	}
}

func TestResizeIdentity(t *testing.T) {
	src := Synthesize(32, 32, KindSoil, stats.NewRNG(2))
	dst := Resize(src, 32, 32)
	for i := range src.Pix {
		if src.Pix[i] != dst.Pix[i] {
			t.Fatal("same-size resize is not identity")
		}
	}
	// And it must be a copy, not a view.
	dst.Pix[0] ^= 0xFF
	if src.Pix[0] == dst.Pix[0] {
		t.Fatal("same-size resize returned a view")
	}
}

func TestResizePanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resize to 0 did not panic")
		}
	}()
	Resize(NewImage(4, 4), 0, 4)
}

func TestResizePreservesMeanApproximately(t *testing.T) {
	src := Synthesize(128, 128, KindRows, stats.NewRNG(3))
	dst := Resize(src, 32, 32)
	mean := func(im *Image) float64 {
		s := 0.0
		for _, p := range im.Pix {
			s += float64(p)
		}
		return s / float64(len(im.Pix))
	}
	if d := math.Abs(mean(src) - mean(dst)); d > 8 {
		t.Errorf("downscale shifted mean by %v", d)
	}
}

func TestCenterCrop(t *testing.T) {
	src := NewImage(10, 10)
	src.Set(4, 4, 200, 0, 0) // near center
	src.Set(0, 0, 0, 200, 0) // corner
	dst := CenterCrop(src, 4, 4)
	if dst.W != 4 || dst.H != 4 {
		t.Fatalf("crop dims %dx%d", dst.W, dst.H)
	}
	// (4,4) in src is (1,1) in the 4x4 crop offset (3,3).
	if r, _, _ := dst.At(1, 1); r != 200 {
		t.Error("center pixel lost by crop")
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if _, g, _ := dst.At(x, y); g == 200 {
				t.Error("corner pixel should be cropped away")
			}
		}
	}
}

func TestCenterCropClampsToSource(t *testing.T) {
	src := NewImage(5, 5)
	dst := CenterCrop(src, 10, 10)
	if dst.W != 5 || dst.H != 5 {
		t.Errorf("oversize crop gave %dx%d, want clamped 5x5", dst.W, dst.H)
	}
}

func TestResizeShortSide(t *testing.T) {
	src := NewImage(100, 50)
	dst := ResizeShortSide(src, 25)
	if dst.H != 25 || dst.W != 50 {
		t.Errorf("short-side resize gave %dx%d, want 50x25", dst.W, dst.H)
	}
	tall := NewImage(50, 100)
	dst2 := ResizeShortSide(tall, 25)
	if dst2.W != 25 || dst2.H != 50 {
		t.Errorf("short-side resize gave %dx%d, want 25x50", dst2.W, dst2.H)
	}
}

func TestNormalizeLayoutAndValues(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, 255, 0, 127)
	im.Set(1, 0, 0, 255, 127)
	out := Normalize(im, [3]float32{0.5, 0.5, 0.5}, [3]float32{0.5, 0.5, 0.5})
	if len(out) != 6 {
		t.Fatalf("normalized length %d, want 6", len(out))
	}
	// CHW layout: out[0..1] = R channel of both pixels.
	if math.Abs(float64(out[0])-1) > 1e-6 { // (1-0.5)/0.5
		t.Errorf("R0 = %v, want 1", out[0])
	}
	if math.Abs(float64(out[1])+1) > 1e-6 { // (0-0.5)/0.5
		t.Errorf("R1 = %v, want -1", out[1])
	}
	if math.Abs(float64(out[2])+1) > 1e-6 { // G0
		t.Errorf("G0 = %v, want -1", out[2])
	}
	// B channel ~0 for 127.
	if math.Abs(float64(out[4])) > 0.01 {
		t.Errorf("B0 = %v, want ~0", out[4])
	}
}

func TestNormalizeImageNetRange(t *testing.T) {
	im := Synthesize(8, 8, KindLeaf, stats.NewRNG(4))
	out := Normalize(im, ImageNetMean, ImageNetStd)
	for _, v := range out {
		if v < -3 || v > 3 {
			t.Fatalf("normalized value %v outside plausible ImageNet range", v)
		}
	}
}
