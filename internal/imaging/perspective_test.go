package imaging

import (
	"math"
	"testing"

	"harvest/internal/stats"
)

func TestSolveHomographyIdentity(t *testing.T) {
	pts := [4]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	h, err := SolveHomography(pts, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{0, 0}, {5, 5}, {10, 10}, {3, 7}} {
		x, y := h.Apply(p.X, p.Y)
		if math.Abs(x-p.X) > 1e-9 || math.Abs(y-p.Y) > 1e-9 {
			t.Errorf("identity homography maps (%v,%v) to (%v,%v)", p.X, p.Y, x, y)
		}
	}
}

func TestSolveHomographyScale(t *testing.T) {
	dst := [4]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	src := [4]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	h, err := SolveHomography(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	x, y := h.Apply(0.5, 0.5)
	if math.Abs(x-1) > 1e-9 || math.Abs(y-1) > 1e-9 {
		t.Errorf("scale homography maps center to (%v,%v), want (1,1)", x, y)
	}
}

func TestSolveHomographyMapsCorrespondences(t *testing.T) {
	dst := [4]Point{{0, 0}, {100, 0}, {100, 100}, {0, 100}}
	src := [4]Point{{20, 30}, {80, 25}, {90, 95}, {10, 85}}
	h, err := SolveHomography(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		x, y := h.Apply(dst[i].X, dst[i].Y)
		if math.Abs(x-src[i].X) > 1e-6 || math.Abs(y-src[i].Y) > 1e-6 {
			t.Errorf("corner %d maps to (%v,%v), want (%v,%v)", i, x, y, src[i].X, src[i].Y)
		}
	}
}

func TestSolveHomographyDegenerate(t *testing.T) {
	// Three collinear destination points -> singular system.
	dst := [4]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	src := [4]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if _, err := SolveHomography(dst, src); err == nil {
		t.Error("degenerate configuration accepted")
	}
}

func TestWarpPerspectiveIdentity(t *testing.T) {
	im := Synthesize(24, 24, KindLeaf, stats.NewRNG(1))
	pts := [4]Point{{0, 0}, {23, 0}, {23, 23}, {0, 23}}
	h, err := SolveHomography(pts, pts)
	if err != nil {
		t.Fatal(err)
	}
	out := WarpPerspective(im, h, 24, 24)
	var worst int
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(out.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 1 {
		t.Errorf("identity warp changed pixels by up to %d", worst)
	}
}

func TestWarpPerspectiveOutOfBoundsBlack(t *testing.T) {
	im := constantImage(10, 10, 255)
	// Map destination far outside the source.
	dst := [4]Point{{0, 0}, {9, 0}, {9, 9}, {0, 9}}
	src := [4]Point{{100, 100}, {109, 100}, {109, 109}, {100, 109}}
	h, err := SolveHomography(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	out := WarpPerspective(im, h, 10, 10)
	for i, p := range out.Pix {
		if p != 0 {
			t.Fatalf("out-of-bounds sample %d = %d, want black", i, p)
		}
	}
}

func TestGroundCameraHomography(t *testing.T) {
	h, err := GroundCameraHomography(3840, 2160, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	// The rectified top-left corner must map into the trapezoid's
	// top-left region of the source frame.
	x, y := h.Apply(0, 0)
	if math.Abs(x-0.30*3840) > 1 || math.Abs(y-0.55*2160) > 1 {
		t.Errorf("dst(0,0) maps to (%v,%v), want (%v,%v)", x, y, 0.30*3840, 0.55*2160)
	}
	// Bottom-right corner.
	x, y = h.Apply(511, 511)
	if math.Abs(x-0.95*3840) > 1 || math.Abs(y-0.95*2160) > 1 {
		t.Errorf("dst(511,511) maps to (%v,%v)", x, y)
	}
}

func TestApplyAtInfinity(t *testing.T) {
	var h Homography // all zeros -> w == 0
	x, y := h.Apply(1, 1)
	if x != 0 || y != 0 {
		t.Errorf("degenerate Apply returned (%v,%v)", x, y)
	}
}
