// Package imaging provides the raster image type and the real CPU image
// operations the HARVEST preprocessing pipeline performs: decoding,
// resizing, cropping, pixel normalization and perspective transforms.
//
// These operations actually run (they are not simulated); the CPU
// preprocessing engine in internal/preprocess times them for real, which
// is what gives the reproduction its genuine CPU-bound preprocessing
// bottleneck (paper §4.2).
package imaging

import (
	"fmt"

	"harvest/internal/stats"
)

// Channels is the number of interleaved color channels (RGB).
const Channels = 3

// Image is an 8-bit RGB raster stored interleaved row-major.
type Image struct {
	W, H int
	Pix  []uint8 // len = W*H*3, order R,G,B
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*Channels)}
}

// At returns the RGB triple at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := (y*im.W + x) * Channels
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the RGB triple at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := (y*im.W + x) * Channels
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Bytes returns the raw pixel buffer size.
func (im *Image) Bytes() int { return len(im.Pix) }

// SyntheticKind selects the texture family for generated content.
type SyntheticKind int

// Texture families used by the synthetic datasets. Each produces content
// with different spatial frequency so JPEG encode/decode costs vary
// across datasets like the paper's real data does.
const (
	// KindLeaf produces smooth blotchy organic texture (plant close-ups).
	KindLeaf SyntheticKind = iota
	// KindRows produces row-crop stripes as seen from a UAS.
	KindRows
	// KindSoil produces high-frequency granular soil/residue texture.
	KindSoil
	// KindFruit produces a bright object centered on a plain background.
	KindFruit
)

// Synthesize generates deterministic image content of the given kind.
// Content realism is irrelevant to the characterization study; what
// matters is that pixel statistics (spatial frequency, contrast) differ
// between dataset families so real encode/decode/transform costs differ.
func Synthesize(w, h int, kind SyntheticKind, rng *stats.RNG) *Image {
	im := NewImage(w, h)
	// Small value-noise lattice for low-frequency structure.
	const lat = 8
	noise := make([]float64, (lat+1)*(lat+1))
	for i := range noise {
		noise[i] = rng.Float64()
	}
	latAt := func(fx, fy float64) float64 {
		x0, y0 := int(fx*lat), int(fy*lat)
		tx, ty := fx*lat-float64(x0), fy*lat-float64(y0)
		n00 := noise[y0*(lat+1)+x0]
		n10 := noise[y0*(lat+1)+x0+1]
		n01 := noise[(y0+1)*(lat+1)+x0]
		n11 := noise[(y0+1)*(lat+1)+x0+1]
		return (n00*(1-tx)+n10*tx)*(1-ty) + (n01*(1-tx)+n11*tx)*ty
	}
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h)
		for x := 0; x < w; x++ {
			fx := float64(x) / float64(w)
			base := latAt(fx*0.999, fy*0.999)
			var r, g, b float64
			switch kind {
			case KindLeaf:
				g = 0.35 + 0.5*base
				r = 0.1 + 0.25*base
				b = 0.05 + 0.15*base
			case KindRows:
				stripe := 0.5 + 0.5*float64((x/12)%2)
				g = 0.25*stripe + 0.4*base
				r = 0.2*stripe + 0.2*base
				b = 0.1 * base
			case KindSoil:
				grain := rng.Float64()*0.35 + 0.65*base
				r = 0.45 * grain
				g = 0.35 * grain
				b = 0.25 * grain
			case KindFruit:
				dx, dy := fx-0.5, fy-0.5
				d := dx*dx + dy*dy
				if d < 0.09 {
					r, g, b = 0.85, 0.35+0.3*base, 0.1
				} else {
					r, g, b = 0.95, 0.95, 0.95
				}
			}
			im.Set(x, y, clamp8(r*255), clamp8(g*255), clamp8(b*255))
		}
	}
	return im
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
