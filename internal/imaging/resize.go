package imaging

import "fmt"

// Resize scales the image to (w, h) using bilinear interpolation,
// matching the default torchvision Resize behaviour.
func Resize(src *Image, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: Resize to invalid %dx%d", w, h))
	}
	if w == src.W && h == src.H {
		return src.Clone()
	}
	dst := NewImage(w, h)
	xRatio := float64(src.W) / float64(w)
	yRatio := float64(src.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y)+0.5)*yRatio - 0.5
		y0 := int(sy)
		if sy < 0 {
			sy, y0 = 0, 0
		}
		ty := sy - float64(y0)
		y1 := y0 + 1
		if y1 >= src.H {
			y1 = src.H - 1
		}
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)*xRatio - 0.5
			x0 := int(sx)
			if sx < 0 {
				sx, x0 = 0, 0
			}
			tx := sx - float64(x0)
			x1 := x0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			i00 := (y0*src.W + x0) * Channels
			i10 := (y0*src.W + x1) * Channels
			i01 := (y1*src.W + x0) * Channels
			i11 := (y1*src.W + x1) * Channels
			di := (y*w + x) * Channels
			for c := 0; c < Channels; c++ {
				top := float64(src.Pix[i00+c])*(1-tx) + float64(src.Pix[i10+c])*tx
				bot := float64(src.Pix[i01+c])*(1-tx) + float64(src.Pix[i11+c])*tx
				dst.Pix[di+c] = clamp8(top*(1-ty) + bot*ty + 0.5)
			}
		}
	}
	return dst
}

// CenterCrop extracts the centered w x h region. If the source is
// smaller in a dimension the crop is clamped to the source size.
func CenterCrop(src *Image, w, h int) *Image {
	if w > src.W {
		w = src.W
	}
	if h > src.H {
		h = src.H
	}
	x0 := (src.W - w) / 2
	y0 := (src.H - h) / 2
	dst := NewImage(w, h)
	for y := 0; y < h; y++ {
		srcOff := ((y0+y)*src.W + x0) * Channels
		copy(dst.Pix[y*w*Channels:(y+1)*w*Channels], src.Pix[srcOff:srcOff+w*Channels])
	}
	return dst
}

// ResizeShortSide scales so the shorter side equals target, preserving
// aspect ratio (the torchvision Resize(int) convention).
func ResizeShortSide(src *Image, target int) *Image {
	if src.W <= src.H {
		h := int(float64(src.H) * float64(target) / float64(src.W))
		if h < 1 {
			h = 1
		}
		return Resize(src, target, h)
	}
	w := int(float64(src.W) * float64(target) / float64(src.H))
	if w < 1 {
		w = 1
	}
	return Resize(src, w, target)
}

// ImageNet normalization constants used by both ViT and ResNet
// preprocessing in the HARVEST pipeline.
var (
	ImageNetMean = [3]float32{0.485, 0.456, 0.406}
	ImageNetStd  = [3]float32{0.229, 0.224, 0.225}
)

// Normalize converts the image to a CHW float32 tensor buffer scaled to
// [0,1] then normalized per channel with (x-mean)/std. The returned
// slice has length 3*W*H in channel-major order, the layout the model
// engines consume.
func Normalize(src *Image, mean, std [3]float32) []float32 {
	n := src.W * src.H
	out := make([]float32, Channels*n)
	for c := 0; c < Channels; c++ {
		inv := 1 / std[c]
		m := mean[c]
		for i := 0; i < n; i++ {
			v := float32(src.Pix[i*Channels+c]) / 255
			out[c*n+i] = (v - m) * inv
		}
	}
	return out
}
