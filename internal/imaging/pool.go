package imaging

import (
	"bytes"
	"sync"
)

// Buffer pooling for the preprocessing hot path. A naive per-image
// pipeline allocates (and for raw frames, zeroes) tens of megabytes
// per sample; under serving load that allocator and GC traffic is pure
// overhead. TensorPool and ImagePool are sync.Pool-backed recyclers
// shared safely across goroutines; ReuseImage is the single-owner
// variant for a worker's pinned scratch buffer.

// TensorPool recycles CHW float32 tensor buffers across requests.
// The zero value is ready to use. Get never returns a smaller buffer
// than requested; undersized pooled buffers are dropped for the GC.
type TensorPool struct {
	p sync.Pool
}

// Get returns a length-n float32 buffer with arbitrary contents.
func (tp *TensorPool) Get(n int) []float32 {
	if v, _ := tp.p.Get().(*[]float32); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float32, n)
}

// Put recycles a buffer obtained from Get (or anywhere else). The
// caller must not retain t afterwards.
func (tp *TensorPool) Put(t []float32) {
	if cap(t) == 0 {
		return
	}
	t = t[:0]
	tp.p.Put(&t)
}

// ImagePool recycles Image rasters across requests. The zero value is
// ready to use. Returned images have undefined pixel contents; callers
// that need a cleared canvas (e.g. perspective warps, whose
// out-of-range regions stay background) must clear Pix themselves or
// use GetZeroed.
type ImagePool struct {
	p sync.Pool
}

// Get returns a w x h image with arbitrary pixel contents.
func (ip *ImagePool) Get(w, h int) *Image {
	n := w * h * Channels
	if v, _ := ip.p.Get().(*Image); v != nil && cap(v.Pix) >= n {
		v.W, v.H = w, h
		v.Pix = v.Pix[:n]
		return v
	}
	return NewImage(w, h)
}

// GetZeroed returns a w x h image with all pixels black.
func (ip *ImagePool) GetZeroed(w, h int) *Image {
	im := ip.Get(w, h)
	clear(im.Pix)
	return im
}

// Put recycles an image. The caller must not retain im afterwards.
func (ip *ImagePool) Put(im *Image) {
	if im == nil || cap(im.Pix) == 0 {
		return
	}
	ip.p.Put(im)
}

// ReuseImage resizes im to w x h reusing its pixel buffer when it is
// large enough, allocating otherwise. Pixel contents are undefined; a
// nil im is allocated fresh. This is the single-owner (per-worker
// pinned scratch) counterpart of ImagePool.
func ReuseImage(im *Image, w, h int) *Image {
	n := w * h * Channels
	if im == nil || cap(im.Pix) < n {
		return NewImage(w, h)
	}
	im.W, im.H = w, h
	im.Pix = im.Pix[:n]
	return im
}

// DecodeBytesInto decodes like DecodeBytes but reuses dst's pixel
// buffer when possible (dst may be nil). The returned image aliases
// dst's storage when it was large enough; the caller must treat dst as
// invalid afterwards and use the returned image.
func DecodeBytesInto(data []byte, f Format, dst *Image) (*Image, error) {
	switch f {
	case FormatJPEG:
		return decodeJPEGInto(bytes.NewReader(data), dst)
	case FormatPPM:
		return decodePPMBytesInto(data, dst)
	}
	return DecodeBytes(data, f) // unknown format: shared error path
}

// WarpPerspectiveInto renders src through the homography into dst
// (whose dimensions define the output), like WarpPerspective but
// without allocating. Out-of-range regions are painted black, so dirty
// recycled buffers are safe.
func WarpPerspectiveInto(dst, src *Image, h Homography) {
	for y := 0; y < dst.H; y++ {
		for x := 0; x < dst.W; x++ {
			sx, sy := h.Apply(float64(x), float64(y))
			di := (y*dst.W + x) * Channels
			if sx < 0 || sy < 0 || sx > float64(src.W-1) || sy > float64(src.H-1) {
				dst.Pix[di], dst.Pix[di+1], dst.Pix[di+2] = 0, 0, 0
				continue
			}
			x0, y0 := int(sx), int(sy)
			x1, y1 := x0+1, y0+1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			if y1 >= src.H {
				y1 = src.H - 1
			}
			tx, ty := sx-float64(x0), sy-float64(y0)
			for c := 0; c < Channels; c++ {
				i00 := (y0*src.W + x0) * Channels
				i10 := (y0*src.W + x1) * Channels
				i01 := (y1*src.W + x0) * Channels
				i11 := (y1*src.W + x1) * Channels
				top := float64(src.Pix[i00+c])*(1-tx) + float64(src.Pix[i10+c])*tx
				bot := float64(src.Pix[i01+c])*(1-tx) + float64(src.Pix[i11+c])*tx
				dst.Pix[di+c] = clamp8(top*(1-ty) + bot*ty + 0.5)
			}
		}
	}
}
