package imaging

import "fmt"

// This file implements the fused preprocessing kernel: the
// ResizeShortSide → CenterCrop → Normalize composition collapsed into
// one pass that writes directly into a caller-supplied CHW float32
// buffer. The naive composition materializes three intermediate
// full-size buffers per image (the resized image, the cropped image,
// the output tensor); the fused kernel materializes none and never
// computes resized pixels that the center crop would discard. The
// arithmetic is kept expression-for-expression identical to the naive
// path (including Resize's bilinear rounding and Normalize's float32
// order of operations), so the fused output is bit-for-bit equal —
// TestFusedMatchesNaive pins this.

// FusedDims returns the post-crop output dimensions the fused kernel
// (and the naive ResizeShortSide→CenterCrop composition) produces for
// a srcW x srcH source at output resolution out. Both are out except
// in the degenerate case where the aspect-preserving resize leaves a
// dimension below out (impossible for out >= 1 and positive sources,
// kept for exact CenterCrop clamp parity).
func FusedDims(srcW, srcH, out int) (w, h int) {
	rw, rh := resizeShortSideDims(srcW, srcH, out)
	w, h = out, out
	if w > rw {
		w = rw
	}
	if h > rh {
		h = rh
	}
	return w, h
}

// FusedLen returns the CHW tensor length the fused kernel produces.
func FusedLen(srcW, srcH, out int) int {
	w, h := FusedDims(srcW, srcH, out)
	return Channels * w * h
}

// resizeShortSideDims mirrors ResizeShortSide's target size
// computation without performing the resize.
func resizeShortSideDims(srcW, srcH, target int) (int, int) {
	if srcW <= srcH {
		h := int(float64(srcH) * float64(target) / float64(srcW))
		if h < 1 {
			h = 1
		}
		return target, h
	}
	w := int(float64(srcW) * float64(target) / float64(srcH))
	if w < 1 {
		w = 1
	}
	return w, target
}

// FusedKernel is a reusable fused-preprocessing kernel. Its scratch
// (per-column sample maps) is retained between calls, so a long-lived
// worker pays the per-row index computation once per image instead of
// allocating. The zero value is ready to use. Not safe for concurrent
// use; give each worker its own.
type FusedKernel struct {
	x0, x1 []int
	tx     []float64
}

// growMaps sizes the per-column scratch to n entries.
func (k *FusedKernel) growMaps(n int) {
	if cap(k.x0) < n {
		k.x0 = make([]int, n)
		k.x1 = make([]int, n)
		k.tx = make([]float64, n)
	}
	k.x0 = k.x0[:n]
	k.x1 = k.x1[:n]
	k.tx = k.tx[:n]
}

// ResizeCropNormalizeInto runs the fused pipeline: aspect-preserving
// resize of the short side to out, centered out x out crop, ImageNet-style
// (x/255 - mean)/std normalization, written channel-major into dst.
// dst must have length FusedLen(src.W, src.H, out); the produced crop
// dimensions are returned. The output is bit-for-bit identical to
// Normalize(CenterCrop(ResizeShortSide(src, out), out, out), mean, std).
func (k *FusedKernel) ResizeCropNormalizeInto(dst []float32, src *Image, out int, mean, std [3]float32) (w, h int, err error) {
	if out <= 0 {
		return 0, 0, fmt.Errorf("imaging: fused resize to invalid output %d", out)
	}
	rw, rh := resizeShortSideDims(src.W, src.H, out)
	w, h = FusedDims(src.W, src.H, out)
	if len(dst) != Channels*w*h {
		return 0, 0, fmt.Errorf("imaging: fused dst length %d, need %d", len(dst), Channels*w*h)
	}
	// Center-crop offsets in resized coordinates.
	cx := (rw - w) / 2
	cy := (rh - h) / 2
	n := w * h
	var inv, m [3]float32
	for c := 0; c < Channels; c++ {
		// Same float32 expressions as Normalize.
		inv[c] = 1 / std[c]
		m[c] = mean[c]
	}
	if rw == src.W && rh == src.H {
		// Identity resize (Resize's Clone fast path): crop + normalize
		// straight from the source pixels.
		for y := 0; y < h; y++ {
			srcOff := ((cy+y)*src.W + cx) * Channels
			for x := 0; x < w; x++ {
				di := y*w + x
				for c := 0; c < Channels; c++ {
					v := float32(src.Pix[srcOff+x*Channels+c]) / 255
					dst[c*n+di] = (v - m[c]) * inv[c]
				}
			}
		}
		return w, h, nil
	}
	xRatio := float64(src.W) / float64(rw)
	yRatio := float64(src.H) / float64(rh)
	// Precompute the horizontal sample map once for all rows; the
	// expressions match Resize exactly, evaluated at the cropped column
	// range [cx, cx+w).
	k.growMaps(w)
	for x := 0; x < w; x++ {
		sx := (float64(cx+x)+0.5)*xRatio - 0.5
		x0 := int(sx)
		if sx < 0 {
			sx, x0 = 0, 0
		}
		tx := sx - float64(x0)
		x1 := x0 + 1
		if x1 >= src.W {
			x1 = src.W - 1
		}
		k.x0[x], k.x1[x], k.tx[x] = x0*Channels, x1*Channels, tx
	}
	for y := 0; y < h; y++ {
		sy := (float64(cy+y)+0.5)*yRatio - 0.5
		y0 := int(sy)
		if sy < 0 {
			sy, y0 = 0, 0
		}
		ty := sy - float64(y0)
		y1 := y0 + 1
		if y1 >= src.H {
			y1 = src.H - 1
		}
		row0 := y0 * src.W * Channels
		row1 := y1 * src.W * Channels
		for x := 0; x < w; x++ {
			i00 := row0 + k.x0[x]
			i10 := row0 + k.x1[x]
			i01 := row1 + k.x0[x]
			i11 := row1 + k.x1[x]
			tx := k.tx[x]
			di := y*w + x
			for c := 0; c < Channels; c++ {
				top := float64(src.Pix[i00+c])*(1-tx) + float64(src.Pix[i10+c])*tx
				bot := float64(src.Pix[i01+c])*(1-tx) + float64(src.Pix[i11+c])*tx
				p := clamp8(top*(1-ty) + bot*ty + 0.5)
				v := float32(p) / 255
				dst[c*n+di] = (v - m[c]) * inv[c]
			}
		}
	}
	return w, h, nil
}

// FusedResizeCropNormalize is the allocating convenience wrapper
// around FusedKernel.ResizeCropNormalizeInto.
func FusedResizeCropNormalize(src *Image, out int, mean, std [3]float32) []float32 {
	var k FusedKernel
	dst := make([]float32, FusedLen(src.W, src.H, out))
	if _, _, err := k.ResizeCropNormalizeInto(dst, src, out, mean, std); err != nil {
		panic(err) // only reachable via invalid out; mirrors Resize's panic contract
	}
	return dst
}
