package imaging

import (
	"testing"

	"harvest/internal/stats"
)

func TestDHashStableUnderNoise(t *testing.T) {
	rng := stats.NewRNG(7)
	im := Synthesize(128, 96, KindLeaf, rng)
	h0 := DHash(im)
	if h0 != DHash(im) {
		t.Fatal("DHash is not deterministic")
	}

	// A near-identical frame: the same scene with tiny per-pixel sensor
	// noise must stay within a small Hamming radius.
	noisy := im.Clone()
	for i := range noisy.Pix {
		if rng.Float64() < 0.1 {
			noisy.Pix[i] = clamp8(float64(noisy.Pix[i]) + float64(rng.Intn(5)-2))
		}
	}
	if d := HammingDistance64(h0, DHash(noisy)); d > 6 {
		t.Fatalf("noisy near-duplicate at Hamming distance %d, want <= 6", d)
	}
}

func TestDHashSeparatesDistinctContent(t *testing.T) {
	rng := stats.NewRNG(7)
	a := Synthesize(128, 96, KindLeaf, rng)
	b := Synthesize(128, 96, KindRows, rng)
	// Invert a third frame entirely: maximal content change.
	inv := a.Clone()
	for i := range inv.Pix {
		inv.Pix[i] = 255 - inv.Pix[i]
	}
	if d := HammingDistance64(DHash(a), DHash(b)); d <= 6 {
		t.Fatalf("distinct scenes at Hamming distance %d, want > 6", d)
	}
	if d := HammingDistance64(DHash(a), DHash(inv)); d <= 6 {
		t.Fatalf("inverted frame at Hamming distance %d, want > 6", d)
	}
}

func TestDHashSizeInvariant(t *testing.T) {
	rng := stats.NewRNG(3)
	im := Synthesize(256, 192, KindFruit, rng)
	down := Resize(im, 128, 96)
	if d := HammingDistance64(DHash(im), DHash(down)); d > 8 {
		t.Fatalf("same scene at half resolution drifted %d bits, want <= 8", d)
	}
}
