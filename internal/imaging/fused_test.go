package imaging

import (
	"bytes"
	"testing"

	"harvest/internal/stats"
)

// naivePreproc is the reference three-pass composition the fused
// kernel must match bit-for-bit.
func naivePreproc(src *Image, out int) []float32 {
	resized := ResizeShortSide(src, out)
	cropped := CenterCrop(resized, out, out)
	return Normalize(cropped, ImageNetMean, ImageNetStd)
}

// TestFusedMatchesNaive is the golden-equality test: across odd and
// even source sizes, portrait/landscape/square aspect, identity-resize
// cases, and both storage formats (JPEG's lossy round-trip changes the
// pixels, so decode first and compare the pipelines on the same
// raster), the fused kernel must equal the naive composition exactly.
func TestFusedMatchesNaive(t *testing.T) {
	sizes := []struct{ w, h int }{
		{33, 47},   // odd portrait
		{47, 33},   // odd landscape
		{64, 64},   // square, identity resize at out=64
		{65, 63},   // off-by-one around out
		{128, 37},  // extreme landscape
		{37, 131},  // extreme portrait
		{224, 224}, // identity at out=224
		{301, 227}, // odd 4:3-ish
	}
	outs := []int{32, 48, 64, 224}
	for _, kind := range []SyntheticKind{KindLeaf, KindSoil} {
		for _, sz := range sizes {
			src := Synthesize(sz.w, sz.h, kind, stats.NewRNG(uint64(sz.w*1000+sz.h)))
			for _, out := range outs {
				if out > sz.w || out > sz.h {
					continue // upscale crops degenerate identically; covered below
				}
				want := naivePreproc(src, out)
				got := FusedResizeCropNormalize(src, out, ImageNetMean, ImageNetStd)
				compareTensors(t, want, got, sz.w, sz.h, out)
			}
		}
	}
}

// TestFusedMatchesNaiveUpscale covers sources smaller than the output
// resolution (the resize upscales, crop is full-frame).
func TestFusedMatchesNaiveUpscale(t *testing.T) {
	src := Synthesize(21, 17, KindFruit, stats.NewRNG(3))
	for _, out := range []int{32, 33, 64} {
		want := naivePreproc(src, out)
		got := FusedResizeCropNormalize(src, out, ImageNetMean, ImageNetStd)
		compareTensors(t, want, got, 21, 17, out)
	}
}

// TestFusedMatchesNaiveAfterCodecRoundTrip runs both pipelines on
// pixels that really went through each storage format's encode/decode,
// so format-specific pixel statistics are represented.
func TestFusedMatchesNaiveAfterCodecRoundTrip(t *testing.T) {
	src := Synthesize(99, 77, KindRows, stats.NewRNG(9))
	for _, f := range []Format{FormatJPEG, FormatPPM} {
		data, err := EncodeBytes(src, f)
		if err != nil {
			t.Fatal(err)
		}
		im, err := DecodeBytes(data, f)
		if err != nil {
			t.Fatal(err)
		}
		want := naivePreproc(im, 48)
		got := FusedResizeCropNormalize(im, 48, ImageNetMean, ImageNetStd)
		compareTensors(t, want, got, im.W, im.H, 48)
	}
}

// TestFusedMatchesNaiveAfterWarp covers perspective items: the warp
// runs first in both pipelines (it is not part of the fused kernel),
// and the fused tail must still match exactly on the warped raster.
func TestFusedMatchesNaiveAfterWarp(t *testing.T) {
	src := Synthesize(161, 121, KindSoil, stats.NewRNG(5))
	hom, err := GroundCameraHomography(src.W, src.H, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	warped := WarpPerspective(src, hom, 96, 96)
	want := naivePreproc(warped, 32)
	got := FusedResizeCropNormalize(warped, 32, ImageNetMean, ImageNetStd)
	compareTensors(t, want, got, warped.W, warped.H, 32)
}

func compareTensors(t *testing.T, want, got []float32, w, h, out int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("src %dx%d out %d: lengths %d vs %d", w, h, out, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("src %dx%d out %d: diverge at %d: naive %v fused %v",
				w, h, out, i, want[i], got[i])
		}
	}
}

func TestFusedKernelReuseAcrossSizes(t *testing.T) {
	// One kernel across varying sizes must not cross-contaminate.
	var k FusedKernel
	for _, sz := range []struct{ w, h int }{{50, 40}, {40, 50}, {200, 100}, {31, 31}} {
		src := Synthesize(sz.w, sz.h, KindLeaf, stats.NewRNG(uint64(sz.w)))
		dst := make([]float32, FusedLen(sz.w, sz.h, 24))
		if _, _, err := k.ResizeCropNormalizeInto(dst, src, 24, ImageNetMean, ImageNetStd); err != nil {
			t.Fatal(err)
		}
		want := naivePreproc(src, 24)
		compareTensors(t, want, dst, sz.w, sz.h, 24)
	}
}

func TestFusedKernelRejectsBadArgs(t *testing.T) {
	var k FusedKernel
	src := NewImage(8, 8)
	if _, _, err := k.ResizeCropNormalizeInto(nil, src, 0, ImageNetMean, ImageNetStd); err == nil {
		t.Error("out=0 accepted")
	}
	if _, _, err := k.ResizeCropNormalizeInto(make([]float32, 5), src, 4, ImageNetMean, ImageNetStd); err == nil {
		t.Error("short dst accepted")
	}
}

func TestTensorPoolRecycles(t *testing.T) {
	var tp TensorPool
	a := tp.Get(64)
	if len(a) != 64 {
		t.Fatalf("got len %d", len(a))
	}
	a[0] = 42
	tp.Put(a)
	b := tp.Get(32)
	if len(b) != 32 {
		t.Fatalf("reused len %d", len(b))
	}
	// Undersized pooled buffers must not be returned.
	tp.Put(make([]float32, 4))
	c := tp.Get(1 << 12)
	if len(c) != 1<<12 {
		t.Fatalf("oversize get len %d", len(c))
	}
	tp.Put(nil) // must not panic
}

func TestImagePoolRecyclesAndZeroes(t *testing.T) {
	var ip ImagePool
	a := ip.Get(8, 8)
	for i := range a.Pix {
		a.Pix[i] = 0xFF
	}
	ip.Put(a)
	b := ip.GetZeroed(4, 4)
	if b.W != 4 || b.H != 4 || len(b.Pix) != 48 {
		t.Fatalf("bad pooled image %dx%d len %d", b.W, b.H, len(b.Pix))
	}
	for i, p := range b.Pix {
		if p != 0 {
			t.Fatalf("GetZeroed left dirty byte at %d", i)
		}
	}
	ip.Put(nil) // must not panic
}

func TestReuseImage(t *testing.T) {
	im := ReuseImage(nil, 4, 4)
	if im.W != 4 || len(im.Pix) != 48 {
		t.Fatal("fresh ReuseImage wrong")
	}
	im.Pix[0] = 7
	re := ReuseImage(im, 2, 2)
	if re.W != 2 || len(re.Pix) != 12 || &re.Pix[0] != &im.Pix[0] {
		t.Error("ReuseImage did not reuse the buffer")
	}
	grown := ReuseImage(re, 16, 16)
	if grown.W != 16 || len(grown.Pix) != 16*16*3 {
		t.Error("ReuseImage did not grow")
	}
}

func TestDecodeBytesIntoReusesBuffer(t *testing.T) {
	src := Synthesize(24, 18, KindRows, stats.NewRNG(2))
	for _, f := range []Format{FormatPPM, FormatJPEG} {
		data, err := EncodeBytes(src, f)
		if err != nil {
			t.Fatal(err)
		}
		scratch := NewImage(64, 64) // plenty of capacity
		buf := &scratch.Pix[0]
		im, err := DecodeBytesInto(data, f, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if im.W != 24 || im.H != 18 {
			t.Fatalf("%v: decoded %dx%d", f, im.W, im.H)
		}
		if &im.Pix[0] != buf {
			t.Errorf("%v: DecodeBytesInto did not reuse the buffer", f)
		}
		plain, err := DecodeBytes(data, f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(im.Pix, plain.Pix) {
			t.Errorf("%v: reused decode differs from plain decode", f)
		}
	}
	if _, err := DecodeBytesInto([]byte("junk"), Format(99), nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestWarpPerspectiveIntoMatchesAlloc(t *testing.T) {
	src := Synthesize(80, 60, KindSoil, stats.NewRNG(4))
	hom, err := GroundCameraHomography(src.W, src.H, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := WarpPerspective(src, hom, 40, 40)
	dst := NewImage(40, 40)
	for i := range dst.Pix {
		dst.Pix[i] = 0xAB // dirty buffer: Into must repaint out-of-range black
	}
	WarpPerspectiveInto(dst, src, hom)
	if !bytes.Equal(want.Pix, dst.Pix) {
		t.Error("WarpPerspectiveInto differs from WarpPerspective")
	}
}
