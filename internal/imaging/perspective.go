package imaging

import (
	"fmt"
	"math"
)

// Homography is a 3x3 projective transform in row-major order mapping
// destination coordinates to source coordinates.
type Homography [9]float64

// Point is a 2-D coordinate.
type Point struct{ X, Y float64 }

// SolveHomography computes the homography mapping each dst[i] to src[i]
// from exactly four point correspondences by solving the standard 8x8
// linear system with Gaussian elimination and partial pivoting.
func SolveHomography(dst, src [4]Point) (Homography, error) {
	// Unknowns h0..h7 (h8 = 1). For each pair:
	//   sx = (h0*dx + h1*dy + h2) / (h6*dx + h7*dy + 1)
	//   sy = (h3*dx + h4*dy + h5) / (h6*dx + h7*dy + 1)
	var a [8][9]float64
	for i := 0; i < 4; i++ {
		dx, dy := dst[i].X, dst[i].Y
		sx, sy := src[i].X, src[i].Y
		a[2*i] = [9]float64{dx, dy, 1, 0, 0, 0, -dx * sx, -dy * sx, sx}
		a[2*i+1] = [9]float64{0, 0, 0, dx, dy, 1, -dx * sy, -dy * sy, sy}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 8; col++ {
		piv := col
		for r := col + 1; r < 8; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return Homography{}, fmt.Errorf("imaging: degenerate point configuration")
		}
		a[col], a[piv] = a[piv], a[col]
		pv := a[col][col]
		for c := col; c < 9; c++ {
			a[col][c] /= pv
		}
		for r := 0; r < 8; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for c := col; c < 9; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var h Homography
	for i := 0; i < 8; i++ {
		h[i] = a[i][8]
	}
	h[8] = 1
	return h, nil
}

// Apply maps a destination point through the homography to source
// coordinates.
func (h Homography) Apply(x, y float64) (float64, float64) {
	w := h[6]*x + h[7]*y + h[8]
	if w == 0 {
		return 0, 0
	}
	return (h[0]*x + h[1]*y + h[2]) / w, (h[3]*x + h[4]*y + h[5]) / w
}

// WarpPerspective renders the source image through the homography into
// a new w x h image using bilinear sampling. This is the task-specific
// preprocessing step the CRSA ground-vehicle camera feed requires
// (paper §3.2: "raw camera streams may require perspective
// transformation").
func WarpPerspective(src *Image, h Homography, w, ht int) *Image {
	dst := NewImage(w, ht)
	for y := 0; y < ht; y++ {
		for x := 0; x < w; x++ {
			sx, sy := h.Apply(float64(x), float64(y))
			if sx < 0 || sy < 0 || sx > float64(src.W-1) || sy > float64(src.H-1) {
				continue // leave black
			}
			x0, y0 := int(sx), int(sy)
			x1, y1 := x0+1, y0+1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			if y1 >= src.H {
				y1 = src.H - 1
			}
			tx, ty := sx-float64(x0), sy-float64(y0)
			di := (y*w + x) * Channels
			for c := 0; c < Channels; c++ {
				i00 := (y0*src.W + x0) * Channels
				i10 := (y0*src.W + x1) * Channels
				i01 := (y1*src.W + x0) * Channels
				i11 := (y1*src.W + x1) * Channels
				top := float64(src.Pix[i00+c])*(1-tx) + float64(src.Pix[i10+c])*tx
				bot := float64(src.Pix[i01+c])*(1-tx) + float64(src.Pix[i11+c])*tx
				dst.Pix[di+c] = clamp8(top*(1-ty) + bot*ty + 0.5)
			}
		}
	}
	return dst
}

// GroundCameraHomography returns the fixed perspective correction used
// for the simulated ground-vehicle camera: it rectifies the trapezoidal
// road-plane view of a forward-tilted camera into a top-down crop.
func GroundCameraHomography(srcW, srcH, dstW, dstH int) (Homography, error) {
	// The trapezoid in the camera frame covering the soil plane.
	src := [4]Point{
		{X: 0.30 * float64(srcW), Y: 0.55 * float64(srcH)}, // top-left
		{X: 0.70 * float64(srcW), Y: 0.55 * float64(srcH)}, // top-right
		{X: 0.95 * float64(srcW), Y: 0.95 * float64(srcH)}, // bottom-right
		{X: 0.05 * float64(srcW), Y: 0.95 * float64(srcH)}, // bottom-left
	}
	dst := [4]Point{
		{X: 0, Y: 0},
		{X: float64(dstW - 1), Y: 0},
		{X: float64(dstW - 1), Y: float64(dstH - 1)},
		{X: 0, Y: float64(dstH - 1)},
	}
	return SolveHomography(dst, src)
}
