package imaging

import "math/bits"

// dHash geometry: a difference hash compares horizontally adjacent
// pixels of a (hashW+1)×hashH grayscale downsample, one bit per
// comparison, yielding a 64-bit signature. Near-identical frames (the
// temporal redundancy of a fixed field camera) land within a few bits
// of each other; unrelated frames differ in ~32.
const (
	dhashW = 8
	dhashH = 8
)

// DHash computes the 64-bit perceptual difference hash of an image:
// bilinear downsample to 9×8 grayscale (the same sampling convention as
// the fused preprocess path), then one bit per horizontal neighbor
// pair, set when the left pixel is brighter. It is translation- and
// noise-tolerant but flips many bits on real content change, which is
// exactly the property a temporal dedup cache needs.
func DHash(im *Image) uint64 {
	small := Resize(im, dhashW+1, dhashH)
	// Luma per BT.601, in fixed point; fits easily in int32.
	var gray [dhashH][dhashW + 1]int32
	for y := 0; y < dhashH; y++ {
		for x := 0; x < dhashW+1; x++ {
			o := (y*(dhashW+1) + x) * 3
			r := int32(small.Pix[o])
			g := int32(small.Pix[o+1])
			b := int32(small.Pix[o+2])
			gray[y][x] = 299*r + 587*g + 114*b
		}
	}
	var h uint64
	for y := 0; y < dhashH; y++ {
		for x := 0; x < dhashW; x++ {
			h <<= 1
			if gray[y][x] > gray[y][x+1] {
				h |= 1
			}
		}
	}
	return h
}

// HammingDistance64 returns the number of differing bits between two
// dHash signatures — the dissimilarity measure for temporal dedup.
func HammingDistance64(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}
