package imaging

import (
	"bufio"
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"io"
)

// EncodePPM writes the image as binary PPM (P6). PPM stands in for the
// uncompressed/TIFF-like formats some HARVEST datasets use; its decode
// cost is memory-bandwidth bound, unlike JPEG's compute-bound decode,
// reproducing the per-dataset preprocessing variance of Fig. 7.
func EncodePPM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("imaging: bad ppm header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("imaging: unsupported magic %q", magic)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imaging: unreasonable ppm dimensions %dx%d", w, h)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imaging: unsupported maxval %d", maxv)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after maxval
		return nil, err
	}
	im := NewImage(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imaging: short ppm pixel data: %w", err)
	}
	return im, nil
}

// EncodeJPEG compresses the image with the standard library encoder at
// the given quality (1..100).
func EncodeJPEG(w io.Writer, im *Image, quality int) error {
	rgba := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			si := (y*im.W + x) * Channels
			di := y*rgba.Stride + x*4
			rgba.Pix[di] = im.Pix[si]
			rgba.Pix[di+1] = im.Pix[si+1]
			rgba.Pix[di+2] = im.Pix[si+2]
			rgba.Pix[di+3] = 255
		}
	}
	return jpeg.Encode(w, rgba, &jpeg.Options{Quality: quality})
}

// DecodeJPEG decompresses a JPEG stream into an Image.
func DecodeJPEG(r io.Reader) (*Image, error) {
	src, err := jpeg.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imaging: jpeg decode: %w", err)
	}
	b := src.Bounds()
	im := NewImage(b.Dx(), b.Dy())
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r16, g16, b16, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			im.Set(x, y, uint8(r16>>8), uint8(g16>>8), uint8(b16>>8))
		}
	}
	return im, nil
}

// Format identifies the on-disk encoding of a dataset's images.
type Format int

// Supported storage formats.
const (
	// FormatJPEG is compute-bound to decode (DCT + Huffman).
	FormatJPEG Format = iota
	// FormatPPM (raw) is bandwidth-bound to decode.
	FormatPPM
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatJPEG:
		return "jpeg"
	case FormatPPM:
		return "ppm"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// EncodeBytes serializes the image in the given format.
func EncodeBytes(im *Image, f Format) ([]byte, error) {
	var buf bytes.Buffer
	switch f {
	case FormatJPEG:
		if err := EncodeJPEG(&buf, im, 85); err != nil {
			return nil, err
		}
	case FormatPPM:
		if err := EncodePPM(&buf, im); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("imaging: unknown format %v", f)
	}
	return buf.Bytes(), nil
}

// DecodeBytes deserializes an image encoded by EncodeBytes.
func DecodeBytes(data []byte, f Format) (*Image, error) {
	switch f {
	case FormatJPEG:
		return DecodeJPEG(bytes.NewReader(data))
	case FormatPPM:
		return DecodePPM(bytes.NewReader(data))
	}
	return nil, fmt.Errorf("imaging: unknown format %v", f)
}
