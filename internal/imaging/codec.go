package imaging

import (
	"bufio"
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"io"
	"strings"
)

// EncodePPM writes the image as binary PPM (P6). PPM stands in for the
// uncompressed/TIFF-like formats some HARVEST datasets use; its decode
// cost is memory-bandwidth bound, unlike JPEG's compute-bound decode,
// reproducing the per-dataset preprocessing variance of Fig. 7.
func EncodePPM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image.
func DecodePPM(r io.Reader) (*Image, error) {
	return decodePPMInto(r, nil)
}

// decodePPMInto decodes a PPM, reusing dst's pixel buffer when it is
// large enough (raw-frame decode is then a pure read, with no
// allocation and no redundant zeroing of the fresh buffer).
func decodePPMInto(r io.Reader, dst *Image) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("imaging: bad ppm header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("imaging: unsupported magic %q", magic)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imaging: unreasonable ppm dimensions %dx%d", w, h)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imaging: unsupported maxval %d", maxv)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after maxval
		return nil, err
	}
	im := ReuseImage(dst, w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imaging: short ppm pixel data: %w", err)
	}
	return im, nil
}

// parsePPMHeader scans a binary PPM header from an in-memory slice
// without fmt/bufio (and therefore without allocating), returning the
// dimensions and the offset of the pixel payload.
func parsePPMHeader(data []byte) (w, h, off int, err error) {
	pos := 0
	skipSpace := func() {
		for pos < len(data) && (data[pos] == ' ' || data[pos] == '\t' ||
			data[pos] == '\n' || data[pos] == '\r') {
			pos++
		}
	}
	readInt := func() (int, bool) {
		skipSpace()
		start, n := pos, 0
		for pos < len(data) && data[pos] >= '0' && data[pos] <= '9' {
			n = n*10 + int(data[pos]-'0')
			pos++
			if n > 1<<30 {
				return 0, false
			}
		}
		return n, pos > start
	}
	skipSpace()
	if pos+2 > len(data) || data[pos] != 'P' || data[pos+1] != '6' {
		return 0, 0, 0, fmt.Errorf("imaging: bad ppm header: missing P6 magic")
	}
	pos += 2
	w, okW := readInt()
	h, okH := readInt()
	maxv, okM := readInt()
	if !okW || !okH || !okM {
		return 0, 0, 0, fmt.Errorf("imaging: bad ppm header: truncated dimensions")
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return 0, 0, 0, fmt.Errorf("imaging: unreasonable ppm dimensions %dx%d", w, h)
	}
	if maxv != 255 {
		return 0, 0, 0, fmt.Errorf("imaging: unsupported maxval %d", maxv)
	}
	pos++ // single whitespace after maxval
	if pos > len(data) {
		return 0, 0, 0, fmt.Errorf("imaging: short ppm pixel data: empty payload")
	}
	return w, h, pos, nil
}

// decodePPMBytesInto is decodePPMInto for in-memory data: the manual
// header scan means decoding a raw frame into a warm reused buffer
// performs no allocations.
func decodePPMBytesInto(data []byte, dst *Image) (*Image, error) {
	w, h, off, err := parsePPMHeader(data)
	if err != nil {
		return nil, err
	}
	im := ReuseImage(dst, w, h)
	if len(data)-off < len(im.Pix) {
		return nil, fmt.Errorf("imaging: short ppm pixel data: have %d bytes, want %d",
			len(data)-off, len(im.Pix))
	}
	copy(im.Pix, data[off:])
	return im, nil
}

// DecodePPMZeroCopy decodes a raw PPM without copying the pixel
// payload: the returned Image aliases data, which the caller must keep
// alive and unmodified while the image is in use. hdr, when non-nil,
// is reused as the returned Image header. For multi-megapixel raw
// frames this skips the single largest cost of decoding — the payload
// memcpy.
func DecodePPMZeroCopy(data []byte, hdr *Image) (*Image, error) {
	w, h, off, err := parsePPMHeader(data)
	if err != nil {
		return nil, err
	}
	n := w * h * Channels
	if len(data)-off < n {
		return nil, fmt.Errorf("imaging: short ppm pixel data: have %d bytes, want %d",
			len(data)-off, n)
	}
	if hdr == nil {
		hdr = &Image{}
	}
	hdr.W, hdr.H, hdr.Pix = w, h, data[off:off+n:off+n]
	return hdr, nil
}

// EncodeJPEG compresses the image with the standard library encoder at
// the given quality (1..100).
func EncodeJPEG(w io.Writer, im *Image, quality int) error {
	rgba := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			si := (y*im.W + x) * Channels
			di := y*rgba.Stride + x*4
			rgba.Pix[di] = im.Pix[si]
			rgba.Pix[di+1] = im.Pix[si+1]
			rgba.Pix[di+2] = im.Pix[si+2]
			rgba.Pix[di+3] = 255
		}
	}
	return jpeg.Encode(w, rgba, &jpeg.Options{Quality: quality})
}

// DecodeJPEG decompresses a JPEG stream into an Image.
func DecodeJPEG(r io.Reader) (*Image, error) {
	return decodeJPEGInto(r, nil)
}

// decodeJPEGInto decodes a JPEG, converting into dst's reused pixel
// buffer when it is large enough. The stdlib decoder still allocates
// its own planes internally; reuse here saves the final RGB raster.
func decodeJPEGInto(r io.Reader, dst *Image) (*Image, error) {
	src, err := jpeg.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imaging: jpeg decode: %w", err)
	}
	b := src.Bounds()
	im := ReuseImage(dst, b.Dx(), b.Dy())
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r16, g16, b16, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			im.Set(x, y, uint8(r16>>8), uint8(g16>>8), uint8(b16>>8))
		}
	}
	return im, nil
}

// Format identifies the on-disk encoding of a dataset's images.
type Format int

// Supported storage formats.
const (
	// FormatJPEG is compute-bound to decode (DCT + Huffman).
	FormatJPEG Format = iota
	// FormatPPM (raw) is bandwidth-bound to decode.
	FormatPPM
)

// ParseFormat maps a wire name to a Format. The empty string means
// JPEG, the dominant encoding of the paper's datasets.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "jpeg", "jpg":
		return FormatJPEG, nil
	case "ppm", "raw":
		return FormatPPM, nil
	}
	return FormatJPEG, fmt.Errorf("imaging: unknown format %q", s)
}

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatJPEG:
		return "jpeg"
	case FormatPPM:
		return "ppm"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// EncodeBytes serializes the image in the given format.
func EncodeBytes(im *Image, f Format) ([]byte, error) {
	var buf bytes.Buffer
	switch f {
	case FormatJPEG:
		if err := EncodeJPEG(&buf, im, 85); err != nil {
			return nil, err
		}
	case FormatPPM:
		if err := EncodePPM(&buf, im); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("imaging: unknown format %v", f)
	}
	return buf.Bytes(), nil
}

// DecodeBytes deserializes an image encoded by EncodeBytes.
func DecodeBytes(data []byte, f Format) (*Image, error) {
	switch f {
	case FormatJPEG:
		return DecodeJPEG(bytes.NewReader(data))
	case FormatPPM:
		return DecodePPM(bytes.NewReader(data))
	}
	return nil, fmt.Errorf("imaging: unknown format %v", f)
}
