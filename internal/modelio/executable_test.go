package modelio

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func microCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	m, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func microInput() *tensor.Tensor {
	x := tensor.New(1, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%97)/97 - 0.5
	}
	return x
}

// The PR 8 follow-up bug: serving with -real at a reduced precision
// ignored the checkpoint and ran random weights, because checkpoint
// load existed only in fp32. Loading at int8 must now produce the
// quantization of the *trained* weights: identical logits to wrapping
// the original fp32 model in the int8 executor.
func TestExecutableQuantizesCheckpointWeights(t *testing.T) {
	orig, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := microCheckpoint(t)

	for _, prec := range models.ExecPrecisions() {
		f, info, err := Executable(cp, prec)
		if err != nil {
			t.Fatalf("%s: %v", prec, err)
		}
		if info.Name != "ViT_Micro" || info.InputSize != 32 || info.NumClasses != 4 {
			t.Fatalf("%s: info %+v", prec, info)
		}
		got, err := f.Forward(microInput())
		if err != nil {
			t.Fatalf("%s forward: %v", prec, err)
		}

		var want *tensor.Tensor
		if prec == models.PrecFP32 {
			want, err = orig.Forward(microInput())
		} else {
			var ref models.Executor
			ref, err = models.NewPrecisionViT(orig, prec)
			if err == nil {
				want, err = ref.Forward(microInput())
			}
		}
		if err != nil {
			t.Fatalf("%s reference: %v", prec, err)
		}
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-6 {
				t.Fatalf("%s: logit %d = %v, want %v (checkpoint weights not used)",
					prec, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestExecutableRejectsUnknownPrecision(t *testing.T) {
	cp := microCheckpoint(t)
	if _, _, err := Executable(cp, "int4"); !errors.Is(err, ErrPrecision) {
		t.Fatalf("int4 error = %v, want ErrPrecision", err)
	}
}

func TestExecutableEmptyPrecisionIsFP32(t *testing.T) {
	cp := microCheckpoint(t)
	f, _, err := Executable(cp, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*models.ViTModel); !ok {
		t.Fatalf("empty precision built %T, want *models.ViTModel", f)
	}
}

func TestExecutableForRejectsMismatch(t *testing.T) {
	cp := microCheckpoint(t)
	// Wrong name: the server hosts ViT_Tiny, the file holds ViT_Micro.
	if _, err := ExecutableFor(cp, models.NameViTTiny, 32, 4, "int8"); !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("name mismatch error = %v, want ErrModelMismatch", err)
	}
	// Wrong geometry: class-count drift must fail fast, not misreport.
	if _, err := ExecutableFor(cp, "ViT_Micro", 32, 1000, "int8"); !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("class mismatch error = %v, want ErrModelMismatch", err)
	}
	if _, err := ExecutableFor(cp, "ViT_Micro", 32, 4, "int8"); err != nil {
		t.Fatalf("matching entry rejected: %v", err)
	}
	// Wrong kind byte entirely.
	cp.Kind = "gbm"
	if _, _, err := Executable(cp, "fp32"); !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("kind error = %v, want ErrModelMismatch", err)
	}
}

func TestConfigName(t *testing.T) {
	cp := microCheckpoint(t)
	if got := cp.ConfigName(); got != "ViT_Micro" {
		t.Fatalf("ConfigName = %q", got)
	}
}
