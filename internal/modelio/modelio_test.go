package modelio

import (
	"bytes"
	"testing"

	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func newViT(t *testing.T) *models.ViTModel {
	t.Helper()
	m, err := models.NewViTModel(models.MicroViTConfig(5), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newResNet(t *testing.T) *models.ResNetModel {
	t.Helper()
	m, err := models.NewResNetModel(models.MiniResNetConfig(4), stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestViTSaveLoadRoundTrip(t *testing.T) {
	m := newViT(t)
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Kind != KindViT {
		t.Fatalf("kind %q", cp.Kind)
	}
	back, err := LoadViT(cp)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded model must produce bit-identical outputs.
	x := tensor.New(1, 3, 32, 32)
	x.RandInit(stats.NewRNG(3), 1)
	y1, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := back.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(y1, y2); d != 0 {
		t.Errorf("round-tripped ViT outputs differ by %v", d)
	}
}

func TestResNetSaveLoadRoundTrip(t *testing.T) {
	m := newResNet(t)
	var buf bytes.Buffer
	if err := SaveResNet(&buf, m); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadResNet(cp)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 64, 64)
	x.RandInit(stats.NewRNG(4), 1)
	y1, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := back.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(y1, y2); d != 0 {
		t.Errorf("round-tripped ResNet outputs differ by %v", d)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	m := newViT(t)
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in the tensor payload region.
	data[len(data)/2] ^= 0x01
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corrupted checkpoint accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a checkpoint"),
		[]byte(Magic), // magic only
	}
	for i, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadTruncated(t *testing.T) {
	m := newViT(t)
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{20, len(data) / 2, len(data) - 2} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestKindMismatch(t *testing.T) {
	m := newViT(t)
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResNet(cp); err == nil {
		t.Error("ViT checkpoint loaded as ResNet")
	}
}

func TestBuildEngineFP16PerturbsBounded(t *testing.T) {
	m := newViT(t)
	var buf bytes.Buffer
	if err := SaveViT(&buf, m); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildEngine(cp, "fp16")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tensors == 0 || rep.Values == 0 {
		t.Errorf("empty build report %+v", rep)
	}
	// Weights are in [-1, 1]-ish; fp16 error there is tiny.
	if rep.MaxAbsError > 1e-3 {
		t.Errorf("fp16 build error %v too large", rep.MaxAbsError)
	}
	// The engine still works and stays close to the fp32 model.
	eng, err := LoadViT(cp)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.RandInit(stats.NewRNG(5), 1)
	y32, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y16, err := eng.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(y32, y16); d > 0.05 {
		t.Errorf("fp16 engine output deviates by %v", d)
	}
	// Agreement on argmax (accuracy proxy).
	if tensor.ArgMax(y32.Data) != tensor.ArgMax(y16.Data) {
		t.Error("fp16 engine changed the prediction")
	}
}

func TestBuildEnginePrecisions(t *testing.T) {
	m := newResNet(t)
	var buf bytes.Buffer
	if err := SaveResNet(&buf, m); err != nil {
		t.Fatal(err)
	}
	for _, prec := range []string{"fp32", "fp16", "bf16"} {
		cp, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := BuildEngine(cp, prec)
		if err != nil {
			t.Fatalf("%s: %v", prec, err)
		}
		if prec == "fp32" && rep.MaxAbsError != 0 {
			t.Errorf("fp32 build perturbed weights by %v", rep.MaxAbsError)
		}
		if prec == "bf16" && rep.MaxAbsError == 0 {
			t.Error("bf16 build left weights untouched")
		}
	}
	cp, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildEngine(cp, "int4"); err == nil {
		t.Error("unsupported precision accepted")
	}
}

func TestNamedTensorsStableAndComplete(t *testing.T) {
	m := newViT(t)
	a := m.NamedTensors()
	b := m.NamedTensors()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("unstable tensor enumeration: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("tensor order unstable at %d", i)
		}
	}
	// Missing tensor on load must fail.
	lookup := map[string]*tensor.Tensor{}
	for _, nt := range a[1:] {
		lookup[nt.Name] = nt.Tensor
	}
	if err := m.LoadTensors(lookup); err == nil {
		t.Error("missing tensor accepted")
	}
	// Shape mismatch must fail.
	lookup[a[0].Name] = tensor.New(1)
	if err := m.LoadTensors(lookup); err == nil {
		t.Error("shape mismatch accepted")
	}
}
