// Package modelio implements model serialization and engine building —
// the analogue of the paper's §4.0.2 model flow where models "are
// provided in the platform-neutral ONNX format and internally converted
// to the inference-oriented TensorRT format".
//
// The on-disk format (".hvt") is: a magic string, a JSON header
// describing the model kind, its configuration and a tensor index, the
// raw little-endian float32 tensor data, and a trailing CRC32 over
// everything before it. Building an "engine" from a checkpoint converts
// the weights to the target platform's precision (fp16/bf16) and, for
// CNNs, is where batch-norm folding would occur (this repository's
// ResNet already folds BN at apply time).
package modelio

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"harvest/internal/models"
	"harvest/internal/quant"
	"harvest/internal/tensor"
)

// Magic identifies a HARVEST checkpoint stream.
const Magic = "HARVESTv1\n"

// Kind identifies the serialized model family.
type Kind string

// Supported model kinds.
const (
	KindViT    Kind = "vit"
	KindResNet Kind = "resnet"
)

// tensorEntry is one tensor's index record in the JSON header.
type tensorEntry struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
	// Count is the number of float32 values (product of Shape, stored
	// redundantly for validation).
	Count int `json:"count"`
}

// header is the JSON header of a checkpoint.
type header struct {
	Kind    Kind            `json:"kind"`
	Config  json.RawMessage `json:"config"`
	Tensors []tensorEntry   `json:"tensors"`
}

// Save writes a checkpoint: kind + config + named tensors.
func Save(w io.Writer, kind Kind, config any, tensors []models.NamedTensor) error {
	cfgJSON, err := json.Marshal(config)
	if err != nil {
		return fmt.Errorf("modelio: marshal config: %w", err)
	}
	h := header{Kind: kind, Config: cfgJSON}
	for _, nt := range tensors {
		h.Tensors = append(h.Tensors, tensorEntry{
			Name: nt.Name, Shape: nt.Tensor.Shape, Count: nt.Tensor.Len(),
		})
	}
	headJSON, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("modelio: marshal header: %w", err)
	}

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := io.WriteString(mw, Magic); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(headJSON))); err != nil {
		return err
	}
	if _, err := mw.Write(headJSON); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, nt := range tensors {
		for _, v := range nt.Tensor.Data {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := mw.Write(buf); err != nil {
				return err
			}
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Checkpoint is a loaded model file.
type Checkpoint struct {
	Kind    Kind
	Config  json.RawMessage
	Tensors map[string]*tensor.Tensor
	// Order preserves the serialized tensor order.
	Order []string
}

// Load reads and verifies a checkpoint.
func Load(r io.Reader) (*Checkpoint, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, fmt.Errorf("modelio: short magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("modelio: bad magic %q", magic)
	}
	var headLen uint32
	if err := binary.Read(tr, binary.LittleEndian, &headLen); err != nil {
		return nil, fmt.Errorf("modelio: header length: %w", err)
	}
	if headLen > 1<<24 {
		return nil, fmt.Errorf("modelio: unreasonable header length %d", headLen)
	}
	headJSON := make([]byte, headLen)
	if _, err := io.ReadFull(tr, headJSON); err != nil {
		return nil, fmt.Errorf("modelio: short header: %w", err)
	}
	var h header
	if err := json.Unmarshal(headJSON, &h); err != nil {
		return nil, fmt.Errorf("modelio: header json: %w", err)
	}

	cp := &Checkpoint{Kind: h.Kind, Config: h.Config, Tensors: make(map[string]*tensor.Tensor)}
	buf := make([]byte, 4)
	for _, e := range h.Tensors {
		n := 1
		for _, d := range e.Shape {
			if d <= 0 {
				return nil, fmt.Errorf("modelio: tensor %q has invalid shape %v", e.Name, e.Shape)
			}
			n *= d
		}
		if n != e.Count {
			return nil, fmt.Errorf("modelio: tensor %q count %d != shape product %d", e.Name, e.Count, n)
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("modelio: tensor %q unreasonably large (%d values)", e.Name, n)
		}
		data := make([]float32, n)
		for i := range data {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return nil, fmt.Errorf("modelio: short tensor %q: %w", e.Name, err)
			}
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
		if _, dup := cp.Tensors[e.Name]; dup {
			return nil, fmt.Errorf("modelio: duplicate tensor %q", e.Name)
		}
		cp.Tensors[e.Name] = tensor.FromSlice(data, e.Shape...)
		cp.Order = append(cp.Order, e.Name)
	}

	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("modelio: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("modelio: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return cp, nil
}

// SaveViT serializes a ViT model with its configuration.
func SaveViT(w io.Writer, m *models.ViTModel) error {
	return Save(w, KindViT, m.Config, m.NamedTensors())
}

// LoadViT reconstructs a ViT model from a checkpoint.
func LoadViT(cp *Checkpoint) (*models.ViTModel, error) {
	if cp.Kind != KindViT {
		return nil, fmt.Errorf("modelio: checkpoint kind %q is not a ViT", cp.Kind)
	}
	var cfg models.ViTConfig
	if err := json.Unmarshal(cp.Config, &cfg); err != nil {
		return nil, fmt.Errorf("modelio: vit config: %w", err)
	}
	m, err := models.NewViTModel(cfg, zeroRand{})
	if err != nil {
		return nil, err
	}
	if err := m.LoadTensors(cp.Tensors); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveResNet serializes a ResNet model with its configuration.
func SaveResNet(w io.Writer, m *models.ResNetModel) error {
	return Save(w, KindResNet, m.Config, m.NamedTensors())
}

// LoadResNet reconstructs a ResNet model from a checkpoint.
func LoadResNet(cp *Checkpoint) (*models.ResNetModel, error) {
	if cp.Kind != KindResNet {
		return nil, fmt.Errorf("modelio: checkpoint kind %q is not a ResNet", cp.Kind)
	}
	var cfg models.ResNetConfig
	if err := json.Unmarshal(cp.Config, &cfg); err != nil {
		return nil, fmt.Errorf("modelio: resnet config: %w", err)
	}
	m, err := models.NewResNetModel(cfg, zeroRand{})
	if err != nil {
		return nil, err
	}
	if err := m.LoadTensors(cp.Tensors); err != nil {
		return nil, err
	}
	return m, nil
}

// zeroRand satisfies tensor.Rand64 for placeholder initialization that
// is immediately overwritten by LoadTensors.
type zeroRand struct{}

func (zeroRand) Float64() float64 { return 0 }

// BuildReport summarizes an engine build.
type BuildReport struct {
	Precision   string
	Tensors     int
	Values      int64
	MaxAbsError float64
}

// BuildEngine converts a checkpoint's weights to the target precision
// in place (the TensorRT-build analogue) and reports the worst-case
// weight perturbation. Supported precisions: fp32 (no-op), fp16, bf16.
func BuildEngine(cp *Checkpoint, precision string) (BuildReport, error) {
	rep := BuildReport{Precision: precision}
	for _, name := range cp.Order {
		t := cp.Tensors[name]
		rep.Tensors++
		rep.Values += int64(t.Len())
		switch precision {
		case "fp32":
			// engine keeps full precision
		case "fp16", "bf16":
			for i, v := range t.Data {
				var back float32
				if precision == "fp16" {
					back = quant.FromFloat32(v).Float32()
				} else {
					back = quant.BF16FromFloat32(v).Float32()
				}
				if d := math.Abs(float64(back - v)); d > rep.MaxAbsError {
					rep.MaxAbsError = d
				}
				t.Data[i] = back
			}
		default:
			return BuildReport{}, fmt.Errorf("modelio: unsupported engine precision %q", precision)
		}
	}
	return rep, nil
}
