package modelio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"harvest/internal/models"
)

// Typed failures of the serving-path checkpoint loader. Callers (the
// deployment builder, harvest-serve startup) match these to fail fast
// instead of silently serving random weights.
var (
	// ErrPrecision reports a serving precision the loader cannot build
	// an executable backend at.
	ErrPrecision = errors.New("modelio: unsupported serving precision")
	// ErrModelMismatch reports a checkpoint whose kind or geometry does
	// not match the model the server is hosting.
	ErrModelMismatch = errors.New("modelio: checkpoint does not match served model")
)

// ExecutableInfo describes the model a checkpoint reconstructs, for
// validation against the serving entry it is meant to back.
type ExecutableInfo struct {
	Name       string
	InputSize  int
	NumClasses int
}

// Executable reconstructs a checkpoint's model as a real
// forward-capable backend at the requested precision ("fp32", "fp16",
// "bf16", "int8"; empty means fp32). Reduced precisions quantize the
// checkpoint's fp32 weights at load time through the same wrappers the
// random-init path uses, so `-real int8` with a checkpoint serves the
// trained weights instead of silently re-initializing random ones.
func Executable(cp *Checkpoint, precision string) (models.Executor, ExecutableInfo, error) {
	if precision == "" {
		precision = models.PrecFP32
	}
	known := false
	for _, p := range models.ExecPrecisions() {
		if p == precision {
			known = true
			break
		}
	}
	if !known {
		return nil, ExecutableInfo{}, fmt.Errorf("%w: %q (want one of %v)",
			ErrPrecision, precision, models.ExecPrecisions())
	}
	switch cp.Kind {
	case KindViT:
		m, err := LoadViT(cp)
		if err != nil {
			return nil, ExecutableInfo{}, err
		}
		info := ExecutableInfo{Name: m.Config.Name, InputSize: m.Config.InputSize, NumClasses: m.Config.NumClasses}
		if precision == models.PrecFP32 {
			return m, info, nil
		}
		pm, err := models.NewPrecisionViT(m, precision)
		if err != nil {
			return nil, ExecutableInfo{}, fmt.Errorf("%w: %v", ErrPrecision, err)
		}
		return pm, info, nil
	case KindResNet:
		m, err := LoadResNet(cp)
		if err != nil {
			return nil, ExecutableInfo{}, err
		}
		info := ExecutableInfo{Name: m.Config.Name, InputSize: m.Config.InputSize, NumClasses: m.Config.NumClasses}
		if precision == models.PrecFP32 {
			return m, info, nil
		}
		pm, err := models.NewPrecisionResNet(m, precision)
		if err != nil {
			return nil, ExecutableInfo{}, fmt.Errorf("%w: %v", ErrPrecision, err)
		}
		return pm, info, nil
	}
	return nil, ExecutableInfo{}, fmt.Errorf("%w: unknown checkpoint kind %q", ErrModelMismatch, cp.Kind)
}

// ExecutableFor builds the serving backend for one named model entry
// from a checkpoint, verifying the checkpoint actually is that model
// (name, input resolution, class count) before any weight touches an
// engine. Mismatches return ErrModelMismatch.
func ExecutableFor(cp *Checkpoint, name string, inputSize, numClasses int, precision string) (models.Executor, error) {
	f, info, err := Executable(cp, precision)
	if err != nil {
		return nil, err
	}
	if info.Name != name {
		return nil, fmt.Errorf("%w: checkpoint holds %q, server hosts %q", ErrModelMismatch, info.Name, name)
	}
	if info.InputSize != inputSize || info.NumClasses != numClasses {
		return nil, fmt.Errorf("%w: checkpoint %s is %d px / %d classes, served entry wants %d px / %d classes",
			ErrModelMismatch, info.Name, info.InputSize, info.NumClasses, inputSize, numClasses)
	}
	return f, nil
}

// LoadFile reads and verifies a checkpoint from disk. Reads are
// buffered: Load consumes the stream in 4-byte values, which against a
// bare file descriptor is one syscall per weight.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReaderSize(f, 1<<20))
}

// SaveFile writes a checkpoint of one model (ViT or ResNet) to disk,
// buffered for the same reason LoadFile is.
func SaveFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ConfigName peeks at the model name recorded in a checkpoint's config
// without building the model.
func (cp *Checkpoint) ConfigName() string {
	var c struct {
		Name string `json:"Name"`
	}
	if err := json.Unmarshal(cp.Config, &c); err != nil {
		return ""
	}
	return c.Name
}
