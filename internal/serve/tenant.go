package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/stats"
)

// DefaultTenant labels traffic that carries no tenant identity. It is
// a real tenant like any other: untagged clients share one DRR
// sub-queue and one quota budget instead of bypassing isolation.
const DefaultTenant = "default"

// TenantHeader carries the caller's tenant identity on the HTTP path.
const TenantHeader = "X-Tenant-ID"

// ErrBadTenant rejects a request whose tenant identifier is malformed.
var ErrBadTenant = errors.New("serve: invalid tenant id")

// DefaultTenantQuantum is the deficit-round-robin quantum, in request
// items, credited to a tenant's sub-queue per scheduler visit. Eight
// items covers the largest offline batch the benchmarks submit, so one
// visit can always serve at least one queued request of any class.
const DefaultTenantQuantum = 8

// DefaultAntiStarveEvery bounds priority-lane starvation: every Nth
// successful dispatch the batcher visits the lanes lowest-priority
// first, guaranteeing offline work a 1-in-N share of dispatches under
// saturating realtime/online load.
const DefaultAntiStarveEvery = 8

// maxTenantStates bounds the per-tenant accounting map. Tenants past
// the cap share one aggregated overflow state (scheduling fairness is
// unaffected: DRR sub-queues key on the wire tenant and are bounded by
// queue depth, not by this cap).
const maxTenantStates = 256

// overflowTenant keys the aggregated state for tenants past
// maxTenantStates. The leading '~' cannot appear in a parsed tenant
// id, so it never collides with a real tenant.
const overflowTenant = "~other"

// maxTenantLen bounds a tenant identifier's length on the wire.
const maxTenantLen = 64

// ParseTenant canonicalizes a wire tenant identifier: empty maps to
// DefaultTenant; otherwise the id must be 1-64 characters drawn from
// [A-Za-z0-9._-].
func ParseTenant(s string) (string, error) {
	if s == "" {
		return DefaultTenant, nil
	}
	if len(s) > maxTenantLen {
		return "", fmt.Errorf("%w: %d chars exceeds %d", ErrBadTenant, len(s), maxTenantLen)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return "", fmt.Errorf("%w: %q", ErrBadTenant, s)
		}
	}
	return s, nil
}

// TenantQuota bounds one tenant's admission budget on a replica. The
// zero value is unlimited.
type TenantQuota struct {
	// RatePerSec is the sustained admission rate in items per second,
	// enforced by a token bucket. 0 = unlimited.
	RatePerSec float64
	// Burst is the token bucket depth in items. 0 = max(RatePerSec,
	// one request's items), i.e. roughly one second of headroom.
	Burst float64
	// MaxQueueShare caps the fraction of the model's MaxQueueDepth
	// this tenant may occupy with queued requests. 0 = no cap.
	MaxQueueShare float64
}

// ParseTenantQuotaSpec parses "tenant:rate=R,burst=B,share=S". The
// tenant "*" applies the quota to every tenant without an explicit
// entry. All keys are optional.
func ParseTenantQuotaSpec(spec string) (string, TenantQuota, error) {
	name, rest, found := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", TenantQuota{}, fmt.Errorf("serve: tenant quota spec %q has no tenant", spec)
	}
	if name != "*" {
		var err error
		if name, err = ParseTenant(name); err != nil {
			return "", TenantQuota{}, err
		}
	}
	var q TenantQuota
	if !found {
		return name, q, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f < 0 {
			return "", TenantQuota{}, fmt.Errorf("serve: tenant quota spec %q: bad value for %q", spec, k)
		}
		switch strings.TrimSpace(k) {
		case "rate":
			q.RatePerSec = f
		case "burst":
			q.Burst = f
		case "share":
			if f > 1 {
				return "", TenantQuota{}, fmt.Errorf("serve: tenant quota spec %q: share %g > 1", spec, f)
			}
			q.MaxQueueShare = f
		default:
			return "", TenantQuota{}, fmt.Errorf("serve: tenant quota spec %q: unknown key %q", spec, k)
		}
	}
	return name, q, nil
}

// QuotaError rejects a submission that exceeded its tenant's quota.
// It unwraps to ErrOverloaded (the request was never admitted;
// retrying after RetryAfter is safe), but carries the tenant and the
// exceeded dimension so the 429 budget stays isolated per tenant.
type QuotaError struct {
	Tenant string
	// Reason names the exceeded dimension: "rate" or "share".
	Reason string
	// RetryAfter estimates when this tenant's budget frees up.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q over %s quota, retry in %s",
		e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

func (e *QuotaError) Unwrap() error { return ErrOverloaded }

// tenantQueue is one tenant's FIFO inside a class lane.
type tenantQueue struct {
	tenant  string
	reqs    []*pending
	deficit int // accumulated DRR credit, in items
}

// drrLane is one class lane: per-tenant FIFO sub-queues drained by
// deficit round-robin. Not safe for concurrent use; the runtime's qmu
// guards it.
type drrLane struct {
	quantum int
	queues  map[string]*tenantQueue
	ring    []*tenantQueue // active tenants in visit order
	cur     int            // ring cursor
	// credited records whether the queue at cur already received its
	// quantum for the current visit, so a pop that resumes on the same
	// queue does not re-credit it.
	credited bool
	reqs     int // total queued requests across tenants
	items    int // total queued items across tenants
}

func newDRRLane(quantum int) *drrLane {
	if quantum < 1 {
		quantum = 1
	}
	return &drrLane{quantum: quantum, queues: make(map[string]*tenantQueue)}
}

// push appends p to its tenant's sub-queue, activating the tenant at
// the back of the ring if it had nothing queued.
func (l *drrLane) push(p *pending) {
	q, ok := l.queues[p.tenant]
	if !ok {
		q = &tenantQueue{tenant: p.tenant}
		l.queues[p.tenant] = q
		l.ring = append(l.ring, q)
	}
	q.reqs = append(q.reqs, p)
	l.reqs++
	l.items += itemsOf(p)
}

// pop serves the next request under deficit round-robin: the cursor's
// queue is credited one quantum per visit and serves heads while its
// deficit covers them; otherwise the cursor advances. A tenant whose
// queue empties leaves the ring and forfeits its deficit. Returns nil
// when the lane is empty.
func (l *drrLane) pop() *pending {
	if len(l.ring) == 0 {
		return nil
	}
	for {
		q := l.ring[l.cur]
		if !l.credited {
			q.deficit += l.quantum
			l.credited = true
		}
		head := q.reqs[0]
		need := itemsOf(head)
		if q.deficit >= need {
			q.deficit -= need
			q.reqs[0] = nil
			q.reqs = q.reqs[1:]
			l.reqs--
			l.items -= need
			if len(q.reqs) == 0 {
				delete(l.queues, q.tenant)
				l.ring = append(l.ring[:l.cur], l.ring[l.cur+1:]...)
				if l.cur >= len(l.ring) {
					l.cur = 0
				}
				l.credited = false
			}
			return head
		}
		l.cur = (l.cur + 1) % len(l.ring)
		l.credited = false
	}
}

func itemsOf(p *pending) int {
	if p.req.Items < 1 {
		return 1
	}
	return p.req.Items
}

// tenantState is one tenant's per-model accounting: queue occupancy
// for the share quota, the rate-limit token bucket, and served/shed
// counters for the per-tenant metrics section.
type tenantState struct {
	tenant      string
	queuedReqs  atomic.Int64 // admitted, not yet dispatched/evicted
	queuedItems atomic.Int64

	mu         sync.Mutex // guards tokens/lastRefill
	tokens     float64
	lastRefill time.Time

	requests metrics.Counter // requests served
	items    metrics.Counter // items served
	shed     metrics.Counter // quota or queue-full rejections
	expired  metrics.Counter // deadline evictions
	queueLat metrics.LatencyRecorder
}

// takeTokens debits n items from the tenant's token bucket. On refusal
// it returns the wait until the bucket covers n.
func (ts *tenantState) takeTokens(n float64, q TenantQuota) (bool, time.Duration) {
	if q.RatePerSec <= 0 {
		return true, 0
	}
	burst := q.Burst
	if burst <= 0 {
		burst = q.RatePerSec
	}
	if burst < n {
		// A request larger than the bucket must still be servable.
		burst = n
	}
	now := time.Now()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.lastRefill.IsZero() {
		ts.tokens = burst
	} else {
		ts.tokens += now.Sub(ts.lastRefill).Seconds() * q.RatePerSec
		if ts.tokens > burst {
			ts.tokens = burst
		}
	}
	ts.lastRefill = now
	if ts.tokens >= n {
		ts.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - ts.tokens) / q.RatePerSec * float64(time.Second))
	return false, wait
}

// TenantMetrics is a point-in-time snapshot of one tenant's activity
// on one model. Latency summaries are in seconds.
type TenantMetrics struct {
	Tenant   string
	Requests int64
	Items    int64
	// Shed counts this tenant's quota and queue-full rejections — its
	// isolated 429 budget.
	Shed    int64
	Expired int64
	// QueueDepth is the tenant's current queued-request occupancy.
	QueueDepth   int64
	QueueLatency stats.Summary
	QueueHist    metrics.HistogramSnapshot
}

// tenantState returns (creating on first use) the accounting state for
// a tenant, aggregating into the overflow state past maxTenantStates.
func (rt *modelRuntime) tenantState(tenant string) *tenantState {
	rt.tmu.Lock()
	defer rt.tmu.Unlock()
	if ts, ok := rt.tenants[tenant]; ok {
		return ts
	}
	key := tenant
	if len(rt.tenants) >= maxTenantStates {
		key = overflowTenant
		if ts, ok := rt.tenants[key]; ok {
			return ts
		}
	}
	ts := &tenantState{tenant: key}
	rt.tenants[key] = ts
	return ts
}

// quotaFor resolves a tenant's quota: an exact entry wins, then the
// "*" wildcard, else unlimited.
func (rt *modelRuntime) quotaFor(tenant string) (TenantQuota, bool) {
	if q, ok := rt.cfg.TenantQuotas[tenant]; ok {
		return q, true
	}
	if q, ok := rt.cfg.TenantQuotas["*"]; ok {
		return q, true
	}
	return TenantQuota{}, false
}

// checkQuota enforces the tenant's queue-share cap and admission rate
// before a queue slot is reserved. Returns a *QuotaError (unwrapping
// to ErrOverloaded) on refusal.
func (rt *modelRuntime) checkQuota(ts *tenantState, tenant string, items int) error {
	q, ok := rt.quotaFor(tenant)
	if !ok {
		return nil
	}
	if q.MaxQueueShare > 0 {
		cap := int64(q.MaxQueueShare * float64(rt.cfg.MaxQueueDepth))
		if cap < 1 {
			cap = 1
		}
		if ts.queuedReqs.Load() >= cap {
			return &QuotaError{Tenant: tenant, Reason: "share",
				RetryAfter: rt.tenantDrainEstimate(ts)}
		}
	}
	if ok, wait := ts.takeTokens(float64(items), q); !ok {
		return &QuotaError{Tenant: tenant, Reason: "rate", RetryAfter: wait}
	}
	return nil
}

// tenantDrainEstimate predicts how long this tenant's queued items
// take to drain, pricing its backlog alone (fair scheduling serves it
// regardless of other tenants' queues).
func (rt *modelRuntime) tenantDrainEstimate(ts *tenantState) time.Duration {
	queued := ts.queuedItems.Load()
	if queued < 1 {
		queued = 1
	}
	maxBatch := int64(rt.cfg.MaxBatch)
	if maxBatch < 1 {
		maxBatch = 1
	}
	batches := (queued + maxBatch - 1) / maxBatch
	instances := int64(rt.cfg.Instances)
	if instances < 1 {
		instances = 1
	}
	rounds := (batches + instances - 1) / instances
	return rt.cfg.QueueDelay + time.Duration(rounds)*rt.estimatedExecDuration(rt.cfg.MaxBatch)
}

// tenantSnapshots builds the per-tenant metrics section, sorted by
// tenant for deterministic output.
func (rt *modelRuntime) tenantSnapshots() map[string]TenantMetrics {
	rt.tmu.Lock()
	states := make([]*tenantState, 0, len(rt.tenants))
	for _, ts := range rt.tenants {
		states = append(states, ts)
	}
	rt.tmu.Unlock()
	if len(states) == 0 {
		return nil
	}
	sort.Slice(states, func(i, j int) bool { return states[i].tenant < states[j].tenant })
	out := make(map[string]TenantMetrics, len(states))
	for _, ts := range states {
		h := ts.queueLat.Snapshot()
		out[ts.tenant] = TenantMetrics{
			Tenant:       ts.tenant,
			Requests:     ts.requests.Load(),
			Items:        ts.items.Load(),
			Shed:         ts.shed.Load(),
			Expired:      ts.expired.Load(),
			QueueDepth:   ts.queuedReqs.Load(),
			QueueLatency: h.Summary(),
			QueueHist:    h,
		}
	}
	return out
}
