package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/models"
)

// newBareReplica builds a pool-attached replica without health loops,
// for direct pick/score table tests.
func newBareReplica(p *Pool, name string) *Replica {
	return &Replica{Name: name, pool: p, done: make(chan struct{})}
}

// TestPoolCloseConcurrent exercises the double-close path: N
// goroutines race Close on one pool. Before the sync.Once fix, two
// callers could both pass the check-then-close select and panic
// closing p.stop twice.
func TestPoolCloseConcurrent(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()
	p, err := NewPool([]string{hs.URL, hs.URL + "/x"}, fastPool())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	// And again after everyone returned: still a no-op.
	p.Close()
}

// TestPoolScoreStaleMetricsFallback regression-tests the stale-snapshot
// bug: a replica that keeps serving /ready but fails /v2/metrics must
// not be ranked on its last snapshot forever. Here the replica's only
// successful metrics fetch reported a deep queue; once the snapshot
// ages past staleMetricsFactor probe intervals, score must fall back
// to the inflight-only estimate instead of avoiding the replica
// indefinitely.
func TestPoolScoreStaleMetricsFallback(t *testing.T) {
	const deepQueue = 1000
	var metricsCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/metrics", func(w http.ResponseWriter, r *http.Request) {
		if metricsCalls.Add(1) > 1 {
			// The metrics probe path breaks after the first answer;
			// readiness keeps succeeding.
			http.Error(w, "metrics collector wedged", http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(MetricsJSON{Models: []ModelMetricsJSON{
			{Model: models.NameViTTiny, QueueDepth: deepQueue},
		}})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	cfg := fastPool()
	p, err := NewPool([]string{hs.URL}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep := p.Replicas()[0]

	// Wait for the one successful metrics fetch.
	deadline := time.Now().Add(2 * time.Second)
	for rep.metrics.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("replica never fetched its first metrics snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rep.score(models.NameViTTiny); got < deepQueue {
		t.Fatalf("fresh snapshot: score = %v, want >= %d (queue depth trusted)", got, deepQueue)
	}
	// Age the snapshot past the staleness horizon while probes keep
	// failing the metrics fetch.
	time.Sleep(time.Duration(staleMetricsFactor+2) * cfg.ProbeInterval)
	if got := rep.score(models.NameViTTiny); got != 0 {
		t.Fatalf("stale snapshot: score = %v, want 0 (inflight-only fallback)", got)
	}
	if !rep.Healthy() {
		t.Fatal("replica went unhealthy: readiness probes were succeeding")
	}
}

// TestPoolPickFallbackClassPolicy is the table-driven pick test for
// the no-healthy-replica fallback: it must apply the same
// offline→busiest / latency→least-loaded rule as the healthy path,
// instead of always taking least-loaded — which spilled offline
// traffic onto exactly the replica realtime retries want.
func TestPoolPickFallbackClassPolicy(t *testing.T) {
	const model = "m"
	mk := func() (*Pool, *Replica, *Replica, *Replica) {
		p := NewDynamicPool(fastPool())
		idle := newBareReplica(p, "idle")
		busy := newBareReplica(p, "busy")
		busiest := newBareReplica(p, "busiest")
		busy.inflight.Store(5)
		busiest.inflight.Store(9)
		p.replicas = []*Replica{idle, busy, busiest}
		return p, idle, busy, busiest
	}

	t.Run("healthy path keeps the policy", func(t *testing.T) {
		p, idle, _, busiest := mk()
		if got := p.pick(model, ClassRealtime, nil); got != idle {
			t.Fatalf("realtime pick = %s, want idle", got.Name)
		}
		if got := p.pick(model, ClassOffline, nil); got != busiest {
			t.Fatalf("offline pick = %s, want busiest", got.Name)
		}
	})

	cases := []struct {
		name  string
		class Class
		tried []string // replica names already tried
		want  string
	}{
		{"offline fallback goes to busiest", ClassOffline, nil, "busiest"},
		{"realtime fallback goes to least loaded", ClassRealtime, nil, "idle"},
		{"online fallback goes to least loaded", ClassOnline, nil, "idle"},
		{"offline fallback skips tried busiest", ClassOffline, []string{"busiest"}, "busy"},
		{"realtime fallback skips tried idle", ClassRealtime, []string{"idle"}, "busy"},
		{"all tried yields nil", ClassOffline, []string{"idle", "busy", "busiest"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, _, _, _ := mk()
			// Every replica unhealthy: force the fallback path.
			for _, rep := range p.replicas {
				rep.state.Store(replicaEjected)
			}
			tried := map[*Replica]bool{}
			for _, rep := range p.replicas {
				for _, name := range tc.tried {
					if rep.Name == name {
						tried[rep] = true
					}
				}
			}
			got := p.pick(model, tc.class, tried)
			switch {
			case tc.want == "" && got != nil:
				t.Fatalf("pick = %s, want nil", got.Name)
			case tc.want != "" && got == nil:
				t.Fatalf("pick = nil, want %s", tc.want)
			case tc.want != "" && got.Name != tc.want:
				t.Fatalf("pick = %s, want %s", got.Name, tc.want)
			}
		})
	}

	t.Run("draining preferred over unhealthy", func(t *testing.T) {
		p, idle, busy, busiest := mk()
		idle.state.Store(replicaEjected)
		busiest.state.Store(replicaEjected)
		busy.SetDraining(true)
		// busy is the only healthy candidate, albeit draining: it wins
		// over the ejected ones.
		if got := p.pick(model, ClassRealtime, nil); got != busy {
			t.Fatalf("pick = %v, want draining-but-healthy busy", got.Name)
		}
	})

	t.Run("draining excluded while others healthy", func(t *testing.T) {
		p, idle, _, _ := mk()
		idle.SetDraining(true)
		if got := p.pick(model, ClassRealtime, nil); got == idle {
			t.Fatal("pick chose a draining replica while non-draining ones were healthy")
		}
	})
}

// TestPoolProbePhaseSpread asserts the health loops are staggered: N
// replicas sharing one ProbeInterval must not fire their first probes
// in one synchronized burst. Phases are deterministic (slot i of
// probePhaseSlots), so the expected spread is exact.
func TestPoolProbePhaseSpread(t *testing.T) {
	const n = 8
	interval := 80 * time.Millisecond

	var mu sync.Mutex
	first := map[string]time.Time{}
	var hss []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			if _, ok := first[r.Host]; !ok {
				first[r.Host] = time.Now()
			}
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}))
		defer hs.Close()
		hss = append(hss, hs)
		urls = append(urls, hs.URL)
	}
	_ = hss
	cfg := fastPool()
	cfg.ProbeInterval = interval
	p, err := NewPool(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	deadline := time.Now().Add(2 * interval)
	for {
		mu.Lock()
		got := len(first)
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d replicas probed within 2 intervals", got, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	var min, max time.Time
	for _, at := range first {
		if min.IsZero() || at.Before(min) {
			min = at
		}
		if at.After(max) {
			max = at
		}
	}
	mu.Unlock()
	spread := max.Sub(min)
	// 8 replicas over 16 slots of an 80 ms interval sit at 0..35 ms:
	// anything clearly above the old zero-spread burst passes.
	if want := interval / 5; spread < want {
		t.Fatalf("first-probe spread = %v, want >= %v (probes still in phase)", spread, want)
	}
	if spread > interval {
		t.Fatalf("first-probe spread = %v exceeds one interval %v", spread, interval)
	}
}

// TestPoolMembershipUnderTraffic mutates pool membership while a
// router is dispatching: replicas are added and removed mid-run and
// every admitted request must still succeed (removal never touches
// in-flight work; new members join dispatch).
func TestPoolMembershipUnderTraffic(t *testing.T) {
	srvA, hsA := newTestReplica(t, 0)
	defer hsA.Close()
	defer srvA.Close()
	srvB, hsB := newTestReplica(t, 0)
	defer hsB.Close()
	defer srvB.Close()

	router, err := NewRouter([]string{hsA.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	pool := router.Pool()

	ctx := t.Context()
	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := router.Infer(ctx, models.NameViTTiny, InferRequestJSON{Items: 1, Class: "online"}); err != nil {
					failures.Add(1)
				}
			}
		}()
	}

	// Churn: add B, wait for it to serve, remove it again, repeatedly.
	for round := 0; round < 5; round++ {
		rep, err := pool.Add("", hsB.URL)
		if err != nil {
			t.Fatalf("round %d: add: %v", round, err)
		}
		time.Sleep(30 * time.Millisecond)
		if !pool.Remove(rep.Name) {
			t.Fatalf("round %d: remove(%s) found nothing", round, rep.Name)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d requests failed during membership churn, want 0", f)
	}
	if got := pool.Size(); got != 1 {
		t.Fatalf("pool size after churn = %d, want 1", got)
	}
}
