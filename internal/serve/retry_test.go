package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// overloadOnceServer replies 429 with the given Retry-After header for
// the first n calls, then succeeds, recording the wall time of each
// call.
func overloadOnceServer(t *testing.T, n int64, retryAfter string) (*httptest.Server, *[]time.Time) {
	t.Helper()
	var calls atomic.Int64
	var mu sync.Mutex
	times := &[]time.Time{}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		*times = append(*times, time.Now())
		mu.Unlock()
		if calls.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(errorJSON{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(InferResponseJSON{ID: "ok", Model: "m", Items: 1})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, times
}

// TestClientRetryAfterIsFloor pins the overload-retry fix: the server's
// Retry-After hint is a floor on the next attempt, so a client whose
// own backoff is shorter must still wait at least the hinted duration
// instead of hammering an overloaded server sooner than asked.
func TestClientRetryAfterIsFloor(t *testing.T) {
	ts, times := overloadOnceServer(t, 1, "1")
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond // far below the 1 s hint
	resp, err := c.Infer(context.Background(), "m", InferRequestJSON{Items: 1})
	if err != nil {
		t.Fatalf("infer after 429: %v", err)
	}
	if resp.ID != "ok" {
		t.Fatalf("resp %+v, want ok", resp)
	}
	if len(*times) != 2 {
		t.Fatalf("%d calls, want 2", len(*times))
	}
	if gap := (*times)[1].Sub((*times)[0]); gap < 900*time.Millisecond {
		t.Errorf("retried %v after the 429, want >= ~1s (Retry-After floor)", gap)
	}
}

// TestClientRetryAfterHTTPDate verifies the RFC 7231 HTTP-date form is
// honored like delta-seconds.
func TestClientRetryAfterHTTPDate(t *testing.T) {
	// HTTP-dates have one-second resolution, so +2s guarantees the
	// parsed floor is at least ~1s regardless of sub-second truncation.
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	ts, times := overloadOnceServer(t, 1, date)
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	if _, err := c.Infer(context.Background(), "m", InferRequestJSON{Items: 1}); err != nil {
		t.Fatalf("infer after 429: %v", err)
	}
	if len(*times) != 2 {
		t.Fatalf("%d calls, want 2", len(*times))
	}
	if gap := (*times)[1].Sub((*times)[0]); gap < 900*time.Millisecond {
		t.Errorf("retried %v after the 429, want >= ~1s (HTTP-date Retry-After)", gap)
	}
}

// TestClientRetryAfterCappedByDeadline verifies a Retry-After floor
// that would outlive the caller's context budget surfaces the overload
// promptly instead of sleeping into the deadline.
func TestClientRetryAfterCappedByDeadline(t *testing.T) {
	ts, _ := overloadOnceServer(t, 1_000_000, "5")
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Infer(ctx, "m", InferRequestJSON{Items: 1})
	if err == nil {
		t.Fatal("infer succeeded, want overload/deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrOverloaded) {
		t.Errorf("error %v, want context.DeadlineExceeded or ErrOverloaded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("Infer took %v, want prompt return (no 5s Retry-After sleep)", el)
	}
}

// TestParseRetryAfter pins both RFC 7231 forms plus the degenerate
// inputs: "0" is an explicit immediate-retry hint (present, zero),
// junk and absence fall back to client backoff (not present).
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"garbage", 0, false},
		{"1.5", 0, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"2", 2 * time.Second, true},
		{" 7 ", 7 * time.Second, true},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true}, // past date: retry now
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestClientNoRetryAfterRequestSent pins the non-idempotent-retry fix:
// a transport failure *after* the infer POST reached the server must
// not be retried by the client — the server may have executed the
// inference, and a blind resend would double-count the work (for a
// camera stream, the frame). The server here receives the request and
// kills the connection without responding; exactly one request may
// arrive.
func TestClientNoRetryAfterRequestSent(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// Read the full body (the request definitely arrived), then
		// destroy the connection mid-exchange.
		_, _ = io.Copy(io.Discard, r.Body)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("no hijacker")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	_, err := c.Infer(context.Background(), "m", InferRequestJSON{Items: 1})
	if err == nil {
		t.Fatal("infer succeeded through a killed connection")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error %T (%v), want *TransportError", err, err)
	}
	if !te.Sent {
		t.Errorf("error classified unsent: %v", err)
	}
	if RequestUnsent(err) {
		t.Error("RequestUnsent true for a sent request")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d requests, want exactly 1 (no blind resend)", n)
	}
}

// TestClientRetriesUnsentTransportFailure verifies the safe half of the
// same fix: a failure before any request bytes were written (here, a
// refused dial) is retried — the server cannot have seen the request,
// so a resend cannot duplicate work.
func TestClientRetriesUnsentTransportFailure(t *testing.T) {
	// Reserve a port with nothing listening behind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	c := NewClient("http://" + addr)
	c.MaxRetries = 10
	c.RetryBackoff = 10 * time.Millisecond

	// First, classification: with no server, every attempt is unsent.
	cctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	_, err = c.Infer(cctx, "m", InferRequestJSON{Items: 1})
	cancel()
	if err == nil {
		t.Fatal("infer succeeded against a dead port")
	}
	if !RequestUnsent(err) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial-refused error %v, want unsent TransportError", err)
	}

	// Then, recovery: the server comes up while the client backs off;
	// the retried request lands exactly once.
	var calls atomic.Int64
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(InferResponseJSON{ID: "ok", Model: "m", Items: 1})
	})}
	up := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten: %v", err)
			close(up)
			return
		}
		close(up)
		_ = srv.Serve(l2)
	}()
	t.Cleanup(func() { srv.Close() })

	resp, err := c.Infer(context.Background(), "m", InferRequestJSON{Items: 1})
	<-up
	if err != nil {
		t.Fatalf("infer with late server: %v", err)
	}
	if resp.ID != "ok" {
		t.Fatalf("resp %+v", resp)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1", n)
	}
}
