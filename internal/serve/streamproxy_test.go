package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// streamEcho fakes a streaming-ingest replica: readiness for the pool
// health loop, and a stream endpoint that records which cameras it
// owned and echoes an NDJSON close.
type streamEcho struct {
	name string
	mu   sync.Mutex
	cams []string
}

func (e *streamEcho) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v2/streams/{camera}", func(w http.ResponseWriter, r *http.Request) {
		e.mu.Lock()
		e.cams = append(e.cams, r.PathValue("camera"))
		e.mu.Unlock()
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintf(w, "{\"summary\":{\"camera\":%q,\"replica\":%q}}\n", r.PathValue("camera"), e.name)
	})
	return mux
}

func (e *streamEcho) owned() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.cams...)
}

// TestRouterStreamProxyAffinity checks that camera streams proxy
// through the router to a replica chosen by camera affinity: the same
// camera always lands on the same replica, the body streams through,
// and the router counts the sessions.
func TestRouterStreamProxyAffinity(t *testing.T) {
	t.Parallel()
	replicas := []*streamEcho{{name: "rep-0"}, {name: "rep-1"}}
	var urls []string
	for _, e := range replicas {
		ts := httptest.NewServer(e.handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	router, err := NewRouter(urls, RouterConfig{
		Pool: PoolConfig{ProbeInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ts := httptest.NewServer(router.Handler())
	defer ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for router.pool.HealthyCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("replicas never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	open := func(camera string) string {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v2/streams/"+camera, "application/x-ndjson",
			strings.NewReader("{\"seq\":1}\n"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("camera %s: HTTP %d: %s", camera, resp.StatusCode, body)
		}
		return string(body)
	}

	cams := []string{"north-field", "south-field", "orchard", "barn"}
	first := map[string]string{}
	for _, cam := range cams {
		first[cam] = open(cam)
	}
	// Reconnects land on the same replica: the replica owns the
	// stream's ordering and dedup state.
	for _, cam := range cams {
		if got := open(cam); got != first[cam] {
			t.Fatalf("camera %s moved replicas across reconnects: %q then %q", cam, first[cam], got)
		}
	}
	for _, cam := range cams {
		owners := 0
		for _, e := range replicas {
			seen := map[string]bool{}
			for _, c := range e.owned() {
				seen[c] = true
			}
			if seen[cam] {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("camera %s owned by %d replicas, want exactly 1", cam, owners)
		}
	}
	if got := router.Metrics(context.Background()).Router.Streams; got != int64(2*len(cams)) {
		t.Fatalf("router streams counter = %d, want %d", got, 2*len(cams))
	}
}
