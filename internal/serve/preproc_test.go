package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/models"
	"harvest/internal/preprocess"
	"harvest/internal/stats"
	"harvest/internal/trace"
)

// preprocConfig builds a model with a real MicroViT backend and an
// encoded-image preprocessor, so the full pipeline — decode, resize,
// normalize, batch, real forward pass — runs end-to-end.
func preprocConfig(t *testing.T) (ModelConfig, *preprocess.CPUEngine) {
	t.Helper()
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = real
	pre := &preprocess.CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true, Workers: 2}
	t.Cleanup(pre.Close)
	return ModelConfig{
		Name: "imagenet", Engine: eng, MaxBatch: 8, InputSize: 32,
		QueueDelay: time.Millisecond, Preproc: pre,
	}, pre
}

// encodedTestImage returns one synthetic leaf image encoded in the
// given format.
func encodedTestImage(t *testing.T, f imaging.Format) []byte {
	t.Helper()
	im := imaging.Synthesize(57, 43, imaging.KindLeaf, stats.NewRNG(99))
	data, err := imaging.EncodeBytes(im, f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEncodedImageMatchesTensorPath is the acceptance test for the
// encoded-image path: submitting image bytes must yield exactly the
// logits the tensor path yields for the same preprocessed image, and
// the response must carry the preprocess stage timing.
func TestEncodedImageMatchesTensorPath(t *testing.T) {
	cfg, pre := preprocConfig(t)
	s := newTestServer(t, cfg)
	data := encodedTestImage(t, imaging.FormatJPEG)

	// Reference: preprocess locally with the same engine and submit the
	// tensor.
	res, err := pre.ProcessBatch([]preprocess.Item{{Encoded: data, Format: imaging.FormatJPEG}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tensorResp, err := s.Submit(ctx, &Request{ID: "tensor", Model: "imagenet", Inputs: res.Tensors})
	if err != nil {
		t.Fatal(err)
	}
	imageResp, err := s.Submit(ctx, &Request{
		ID: "image", Model: "imagenet",
		Images: [][]byte{data}, ImageFormat: imaging.FormatJPEG,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tensorResp.Outputs) != 1 || len(imageResp.Outputs) != 1 {
		t.Fatalf("outputs: tensor %d, image %d", len(tensorResp.Outputs), len(imageResp.Outputs))
	}
	for i := range tensorResp.Outputs[0] {
		if tensorResp.Outputs[0][i] != imageResp.Outputs[0][i] {
			t.Fatalf("logits diverge at %d: tensor %v, image %v",
				i, tensorResp.Outputs[0][i], imageResp.Outputs[0][i])
		}
	}
	if imageResp.PreprocessSeconds <= 0 {
		t.Error("encoded request reported no preprocess time")
	}
	if tensorResp.PreprocessSeconds != 0 {
		t.Errorf("tensor request reported preprocess time %v", tensorResp.PreprocessSeconds)
	}
	m, err := s.MetricsFor("imagenet")
	if err != nil {
		t.Fatal(err)
	}
	if m.PreprocessLatency.N != 1 {
		t.Errorf("preprocess latency count %d, want 1", m.PreprocessLatency.N)
	}
}

// TestEncodedImageOverHTTP drives the encoded path through the full
// HTTP surface: images_b64 in, identical classification out, the
// preprocess stage visible in timings_ms, /v2/metrics, /metrics and
// /v2/trace.
func TestEncodedImageOverHTTP(t *testing.T) {
	cfg, pre := preprocConfig(t)
	rec := trace.NewRing(DefaultTraceCapacity)
	s := NewServer()
	t.Cleanup(s.Close)
	s.SetTrace(rec)
	if err := s.Register(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	data := encodedTestImage(t, imaging.FormatPPM)
	res, err := pre.ProcessBatch([]preprocess.Item{{Encoded: data, Format: imaging.FormatPPM}})
	if err != nil {
		t.Fatal(err)
	}
	tensorOut, err := client.Infer(ctx, "imagenet", InferRequestJSON{ID: "t1", Inputs: res.Tensors, Items: 1})
	if err != nil {
		t.Fatal(err)
	}
	imageOut, err := client.Infer(ctx, "imagenet", InferRequestJSON{
		ID: "i1", Images: [][]byte{data}, ImageFormat: "ppm",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(imageOut.Classification) != 1 || imageOut.Classification[0] != tensorOut.Classification[0] {
		t.Errorf("classification %v via images, %v via tensors",
			imageOut.Classification, tensorOut.Classification)
	}
	if imageOut.Timings == nil || imageOut.Timings.PreprocessMs <= 0 {
		t.Errorf("timings_ms missing preprocess stage: %+v", imageOut.Timings)
	}
	if imageOut.Items != 1 || imageOut.Model != "imagenet" {
		t.Errorf("response identity %+v", imageOut)
	}

	mj, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mj.Models) != 1 || mj.Models[0].PreprocessMs.Count != 1 {
		t.Errorf("/v2/metrics preprocess count: %+v", mj.Models)
	}
	if mj.Models[0].PreprocessMs.MaxMs <= 0 {
		t.Errorf("/v2/metrics preprocess max %v", mj.Models[0].PreprocessMs.MaxMs)
	}

	prom, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(prom.Body)
	prom.Body.Close()
	if !strings.Contains(string(promBody), "harvest_preprocess_latency_seconds") {
		t.Error("/metrics exposition missing harvest_preprocess_latency_seconds")
	}

	found := false
	for _, sp := range rec.Spans() {
		if sp.Name == "preprocess" && sp.Track == "req:i1" {
			found = true
			if sp.Duration <= 0 {
				t.Error("preprocess span has no duration")
			}
		}
	}
	if !found {
		t.Error("/v2/trace recorder has no preprocess span for req i1")
	}
}

// TestEncodedImageValidation covers the failure modes of the encoded
// path at both API layers.
func TestEncodedImageValidation(t *testing.T) {
	cfg, _ := preprocConfig(t)
	cfg.MaxImageBytes = 1 << 16
	plain := tinyConfig(t) // no preprocessor
	s := newTestServer(t, cfg, plain)
	ctx := context.Background()
	data := encodedTestImage(t, imaging.FormatJPEG)

	if _, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Images: [][]byte{data}}); !errors.Is(err, ErrNoPreprocessor) {
		t.Errorf("no-preprocessor model: %v", err)
	}
	in := make([]float32, 3*32*32)
	if _, err := s.Submit(ctx, &Request{Model: "imagenet", Inputs: [][]float32{in}, Images: [][]byte{data}}); !errors.Is(err, ErrMixedInputs) {
		t.Errorf("mixed inputs: %v", err)
	}
	if _, err := s.Submit(ctx, &Request{Model: "imagenet", Items: 2, Images: [][]byte{data}}); !errors.Is(err, ErrItemsMismatch) {
		t.Errorf("items mismatch: %v", err)
	}
	if _, err := s.Submit(ctx, &Request{Model: "imagenet", Images: [][]byte{[]byte("not a jpeg")}}); !errors.Is(err, ErrPreprocess) {
		t.Errorf("corrupt image: %v", err)
	}
	big := make([]byte, 1<<16+1)
	if _, err := s.Submit(ctx, &Request{Model: "imagenet", Images: [][]byte{big}}); !errors.Is(err, ErrImageTooLarge) {
		t.Errorf("oversized image: %v", err)
	}
	// A failed preprocess must release its admission slot.
	m, err := s.MetricsFor("imagenet")
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after failed preprocess, want 0", m.QueueDepth)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		name string
		body InferRequestJSON
		want int
	}{
		{"no-preproc", InferRequestJSON{Images: [][]byte{data}}, http.StatusBadRequest},
		{"corrupt", InferRequestJSON{Images: [][]byte{[]byte("junk")}}, http.StatusBadRequest},
		{"bad-format", InferRequestJSON{Images: [][]byte{data}, ImageFormat: "tiff"}, http.StatusBadRequest},
	} {
		model := "imagenet"
		if tc.name == "no-preproc" {
			model = models.NameViTTiny
		}
		_, err := NewClient(ts.URL).Infer(context.Background(), model, tc.body)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != tc.want {
			t.Errorf("%s: got %v, want HTTP %d", tc.name, err, tc.want)
		}
	}
}

// TestRegisterRejectsMismatchedPreproc pins the registration guard: a
// preprocessor whose output resolution disagrees with the real
// backend's input size would fail every request at inference time.
func TestRegisterRejectsMismatchedPreproc(t *testing.T) {
	cfg, _ := preprocConfig(t)
	cfg.Preproc = &preprocess.CPUEngine{Platform: hw.A100(), Out: 224, Materialize: true}
	s := NewServer()
	defer s.Close()
	if err := s.Register(cfg); err == nil {
		t.Error("mismatched preprocessor output accepted")
	}
}

// TestRouterBodyCapReturns413 pins the router's own body limit: an
// encoded-image batch above -max-body-bytes is rejected at the edge
// with 413, not garbled into a 400, and the cap is configurable
// upward for image traffic.
func TestRouterBodyCapReturns413(t *testing.T) {
	cfg, _ := preprocConfig(t)
	s := newTestServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool(), MaxBodyBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rs := httptest.NewServer(router.Handler())
	defer rs.Close()
	client := NewClient(rs.URL)
	ctx := context.Background()

	big := encodedTestImage(t, imaging.FormatPPM) // ~7.4 KB raw, > cap after base64
	_, err = client.Infer(ctx, "imagenet", InferRequestJSON{Images: [][]byte{big}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized routed body: %v, want 413", err)
	}
	small, err := imaging.EncodeBytes(imaging.Synthesize(8, 8, imaging.KindLeaf, stats.NewRNG(1)), imaging.FormatPPM)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Infer(ctx, "imagenet", InferRequestJSON{Images: [][]byte{small}, ImageFormat: "ppm"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Timings == nil || resp.Timings.PreprocessMs <= 0 {
		t.Errorf("routed encoded request lost preprocess timing: %+v", resp.Timings)
	}
}
