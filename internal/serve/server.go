// Package serve implements the HARVEST backend request orchestration
// layer — the NVIDIA Triton Server analogue of paper §3: a model
// repository hosting per-model engine instances behind dynamic
// batchers, with a decoupled frontend (in-process API here, HTTP in
// http.go) that transmits input data and generates backend requests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/engine"
	"harvest/internal/trace"
)

// serveEpoch anchors wall-clock trace timestamps.
var serveEpoch = time.Now()

// Errors returned by the server.
var (
	ErrUnknownModel  = errors.New("serve: unknown model")
	ErrServerClosed  = errors.New("serve: server closed")
	ErrTooManyItems  = errors.New("serve: request exceeds model max batch")
	ErrEmptyRequest  = errors.New("serve: request has no items")
	ErrDuplicateName = errors.New("serve: model already registered")
)

// Request is one inference request from the frontend. Items counts the
// images in the request; Inputs optionally carries real tensors for
// models with a real compute backend.
type Request struct {
	ID     string
	Model  string
	Items  int
	Inputs [][]float32
}

// Response reports the outcome of a request.
type Response struct {
	ID    string
	Model string
	Items int
	// QueueSeconds is real wall time spent in the dynamic batcher.
	QueueSeconds float64
	// ComputeSeconds is the modeled engine time of the batch the
	// request was folded into.
	ComputeSeconds float64
	// BatchSize is the size of the fused batch that served the request.
	BatchSize int
	// Outputs holds per-image logits when the model has a real backend.
	Outputs [][]float32
}

// ModelConfig configures one served model.
type ModelConfig struct {
	Name string
	// Engine provides (modeled) performance and memory limits.
	Engine *engine.Engine
	// MaxBatch caps the dynamic batcher's fused batch size. 0 means
	// use the engine's memory-derived max batch.
	MaxBatch int
	// QueueDelay is the dynamic batching window: how long the batcher
	// waits for more requests before dispatching a partial batch.
	QueueDelay time.Duration
	// Instances is the number of parallel engine instances (paper §5:
	// multi-instance strategies). Default 1.
	Instances int
	// InputSize is required when Engine.Real is set, to validate and
	// shape real tensor inputs.
	InputSize int
	// TimeScale makes instances really sleep TimeScale * modeled
	// seconds, so closed-loop clients observe platform-like pacing.
	// 0 disables sleeping (tests, max-speed experiments).
	TimeScale float64
	// Trace, when non-nil, receives one span per executed batch
	// (wall-clock, track = model name) with queue/batch metadata.
	Trace *trace.Recorder
}

type pending struct {
	req      *Request
	enqueued time.Time
	done     chan *Response
	err      chan error
}

type modelRuntime struct {
	cfg      ModelConfig
	queue    chan *pending
	closed   chan struct{}
	wg       sync.WaitGroup
	inflight atomic.Int64
	served   atomic.Int64
	batches  atomic.Int64
}

// Stats summarizes a model runtime's activity.
type Stats struct {
	Model          string
	RequestsServed int64
	BatchesRun     int64
	// MeanBatchFill is served items per batch divided by max batch.
	MeanBatchFill float64
}

// Server is the inference server.
type Server struct {
	mu     sync.Mutex
	models map[string]*modelRuntime
	closed bool
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{models: make(map[string]*modelRuntime)}
}

// Register adds a model to the repository and starts its batcher and
// instance goroutines.
func (s *Server) Register(cfg ModelConfig) error {
	if cfg.Name == "" || cfg.Engine == nil {
		return fmt.Errorf("serve: model config needs a name and an engine")
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = cfg.Engine.MaxBatch(0)
	}
	if cfg.MaxBatch <= 0 {
		return fmt.Errorf("serve: model %s does not fit on %s at any batch size",
			cfg.Name, cfg.Engine.Platform.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if _, ok := s.models[cfg.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateName, cfg.Name)
	}
	rt := &modelRuntime{
		cfg:    cfg,
		queue:  make(chan *pending, 1024),
		closed: make(chan struct{}),
	}
	s.models[cfg.Name] = rt

	batches := make(chan []*pending, cfg.Instances*2)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.batcherLoop(batches)
	}()
	for i := 0; i < cfg.Instances; i++ {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.instanceLoop(batches)
		}()
	}
	return nil
}

// batcherLoop implements dynamic batching: it fuses queued requests
// until the fused batch reaches MaxBatch items or QueueDelay elapses
// since the first request.
func (rt *modelRuntime) batcherLoop(batches chan<- []*pending) {
	defer close(batches)
	for {
		var first *pending
		select {
		case p := <-rt.queue:
			first = p
		case <-rt.closed:
			// Dispatch anything already queued, then exit.
			for {
				select {
				case p := <-rt.queue:
					batches <- []*pending{p}
				default:
					return
				}
			}
		}
		batch := []*pending{first}
		items := first.req.Items
		deadline := time.NewTimer(rt.cfg.QueueDelay)
	fill:
		for items < rt.cfg.MaxBatch {
			select {
			case p := <-rt.queue:
				if items+p.req.Items > rt.cfg.MaxBatch {
					// Dispatch current batch; start the next with p.
					batches <- batch
					batch = []*pending{p}
					items = p.req.Items
					if !deadline.Stop() {
						<-deadline.C
					}
					deadline.Reset(rt.cfg.QueueDelay)
					continue
				}
				batch = append(batch, p)
				items += p.req.Items
			case <-deadline.C:
				break fill
			case <-rt.closed:
				// Shutdown: dispatch what we have immediately.
				break fill
			}
		}
		deadline.Stop()
		batches <- batch
	}
}

// instanceLoop executes fused batches on one engine instance.
func (rt *modelRuntime) instanceLoop(batches <-chan []*pending) {
	for batch := range batches {
		rt.runBatch(batch)
	}
}

func (rt *modelRuntime) runBatch(batch []*pending) {
	items := 0
	var inputs [][]float32
	for _, p := range batch {
		items += p.req.Items
		inputs = append(inputs, p.req.Inputs...)
	}
	var stats engine.InferStats
	var outputs [][]float32
	var err error
	if rt.cfg.Engine.Real != nil && len(inputs) > 0 {
		outputs, stats, err = rt.cfg.Engine.InferTensors(inputs, rt.cfg.InputSize)
	} else {
		stats, err = rt.cfg.Engine.Infer(items)
	}
	if err == nil && rt.cfg.TimeScale > 0 {
		time.Sleep(time.Duration(stats.Seconds * rt.cfg.TimeScale * float64(time.Second)))
	}
	if rt.cfg.Trace != nil {
		end := time.Since(serveEpoch).Seconds()
		dur := stats.Seconds
		rt.cfg.Trace.Add(trace.Span{
			Name:     fmt.Sprintf("batch(%d reqs, %d imgs)", len(batch), items),
			Track:    rt.cfg.Name,
			Start:    end - dur,
			Duration: dur,
			Args: map[string]any{
				"requests": len(batch),
				"items":    items,
				"failed":   err != nil,
			},
		})
	}
	rt.batches.Add(1)
	now := time.Now()
	outOff := 0
	for _, p := range batch {
		if err != nil {
			p.err <- fmt.Errorf("serve: model %s: %w", rt.cfg.Name, err)
			continue
		}
		resp := &Response{
			ID:             p.req.ID,
			Model:          rt.cfg.Name,
			Items:          p.req.Items,
			QueueSeconds:   now.Sub(p.enqueued).Seconds() - stats.Seconds*rt.cfg.TimeScale,
			ComputeSeconds: stats.Seconds,
			BatchSize:      items,
		}
		if resp.QueueSeconds < 0 {
			resp.QueueSeconds = 0
		}
		if outputs != nil && len(p.req.Inputs) > 0 {
			resp.Outputs = outputs[outOff : outOff+len(p.req.Inputs)]
			outOff += len(p.req.Inputs)
		}
		rt.served.Add(int64(p.req.Items))
		p.done <- resp
	}
}

// Submit sends a request and blocks until its response, the context's
// cancellation, or server shutdown.
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	if req.Items <= 0 && len(req.Inputs) == 0 {
		return nil, ErrEmptyRequest
	}
	if req.Items == 0 {
		req.Items = len(req.Inputs)
	}
	s.mu.Lock()
	rt, ok := s.models[req.Model]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrServerClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model)
	}
	if req.Items > rt.cfg.MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyItems, req.Items, rt.cfg.MaxBatch)
	}
	p := &pending{
		req:      req,
		enqueued: time.Now(),
		done:     make(chan *Response, 1),
		err:      make(chan error, 1),
	}
	select {
	case rt.queue <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-rt.closed:
		return nil, ErrServerClosed
	}
	select {
	case resp := <-p.done:
		return resp, nil
	case err := <-p.err:
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-rt.closed:
		// Shutdown: prefer a response that raced in, else fail.
		select {
		case resp := <-p.done:
			return resp, nil
		case err := <-p.err:
			return nil, err
		default:
			return nil, ErrServerClosed
		}
	}
}

// Models lists registered model names.
func (s *Server) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	return out
}

// ModelConfigFor returns the configuration of a registered model.
func (s *Server) ModelConfigFor(name string) (ModelConfig, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.models[name]
	if !ok {
		return ModelConfig{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.cfg, nil
}

// StatsFor returns activity counters for a model.
func (s *Server) StatsFor(name string) (Stats, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	st := Stats{
		Model:          name,
		RequestsServed: rt.served.Load(),
		BatchesRun:     rt.batches.Load(),
	}
	if st.BatchesRun > 0 && rt.cfg.MaxBatch > 0 {
		st.MeanBatchFill = float64(st.RequestsServed) / float64(st.BatchesRun) / float64(rt.cfg.MaxBatch)
	}
	return st, nil
}

// Close stops all batchers and instances, failing queued requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	rts := make([]*modelRuntime, 0, len(s.models))
	for _, rt := range s.models {
		rts = append(rts, rt)
	}
	s.mu.Unlock()
	drain := func(rt *modelRuntime) {
		// Fail anything that slipped into the queue after the batcher
		// exited; submitters also observe rt.closed.
		for {
			select {
			case p := <-rt.queue:
				p.err <- ErrServerClosed
			default:
				return
			}
		}
	}
	for _, rt := range rts {
		close(rt.closed)
		rt.wg.Wait()
		drain(rt)
	}
}
