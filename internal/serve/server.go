// Package serve implements the HARVEST backend request orchestration
// layer — the NVIDIA Triton Server analogue of paper §3: a model
// repository hosting per-model engine instances behind dynamic
// batchers, with a decoupled frontend (in-process API here, HTTP in
// http.go) that transmits input data and generates backend requests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/engine"
	"harvest/internal/imaging"
	"harvest/internal/metrics"
	"harvest/internal/preprocess"
	"harvest/internal/stats"
	"harvest/internal/trace"
)

// serveEpoch anchors wall-clock trace timestamps.
var serveEpoch = time.Now()

// Errors returned by the server.
var (
	ErrUnknownModel  = errors.New("serve: unknown model")
	ErrServerClosed  = errors.New("serve: server closed")
	ErrTooManyItems  = errors.New("serve: request exceeds model max batch")
	ErrEmptyRequest  = errors.New("serve: request has no items")
	ErrItemsMismatch = errors.New("serve: request items disagree with inputs")
	ErrDuplicateName = errors.New("serve: model already registered")
	// ErrOverloaded rejects a submission whose model's admission queue
	// is full. The request was never admitted; retrying later is safe.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrDeadlineExpired sheds an admitted request whose deadline can no
	// longer be met: the batcher evicts it instead of burning an engine
	// slot on a guaranteed SLO miss.
	ErrDeadlineExpired = errors.New("serve: deadline expired before execution")
	// ErrBadClass rejects a request with an out-of-range SLO class.
	ErrBadClass = errors.New("serve: invalid SLO class")
	// ErrNoPreprocessor rejects an encoded-image request on a model
	// registered without a preprocessing engine.
	ErrNoPreprocessor = errors.New("serve: model accepts no encoded images")
	// ErrMixedInputs rejects a request carrying both ready tensors and
	// encoded images.
	ErrMixedInputs = errors.New("serve: request has both tensors and encoded images")
	// ErrPreprocess reports a failed preprocessing stage (undecodable
	// image bytes): the caller's payload is at fault.
	ErrPreprocess = errors.New("serve: preprocess failed")
	// ErrImageTooLarge rejects an encoded image above the model's
	// MaxImageBytes.
	ErrImageTooLarge = errors.New("serve: encoded image too large")
)

// DefaultDrainTimeout bounds Close's graceful drain when
// ModelConfig.DrainTimeout is zero.
const DefaultDrainTimeout = 5 * time.Second

// DefaultMaxQueueDepth bounds a model's admission queue when
// ModelConfig.MaxQueueDepth is zero.
const DefaultMaxQueueDepth = 1024

// DefaultRealtimeBudget is the implicit deadline of realtime-class
// requests that carry no explicit deadline: the paper's Fig. 6 SLO of
// 16.7 ms, one frame at the 60 QPS real-time threshold.
const DefaultRealtimeBudget = 16700 * time.Microsecond

// DefaultMaxImageBytes caps one encoded image on the /v2 infer path
// when ModelConfig.MaxImageBytes is zero: 32 MiB covers an
// uncompressed 4K PPM frame (the CRSA ground camera, the largest
// source in the paper's datasets) with headroom.
const DefaultMaxImageBytes = 32 << 20

// Class is a request's SLO class, mapping to the paper's §2.2
// deployment scenarios. The zero value is ClassOnline.
type Class int

const (
	// ClassOnline is interactive online traffic (default): no implicit
	// deadline, normal dispatch priority.
	ClassOnline Class = iota
	// ClassRealtime is the real-time scenario: dispatched ahead of the
	// other lanes and subject to DefaultRealtimeBudget (or the model's
	// RealtimeBudget) when no explicit deadline is given.
	ClassRealtime
	// ClassOffline is throughput-oriented batch work: dispatched only
	// when no higher-priority work is queued.
	ClassOffline
	numClasses
)

// laneOrder lists the classes from highest to lowest dispatch priority.
var laneOrder = [numClasses]Class{ClassRealtime, ClassOnline, ClassOffline}

// String returns the wire name of the class.
func (c Class) String() string {
	switch c {
	case ClassOnline:
		return "online"
	case ClassRealtime:
		return "realtime"
	case ClassOffline:
		return "offline"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass maps a wire name to a Class. The empty string is
// ClassOnline.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(s) {
	case "", "online":
		return ClassOnline, nil
	case "realtime", "real-time":
		return ClassRealtime, nil
	case "offline", "batch":
		return ClassOffline, nil
	}
	return ClassOnline, fmt.Errorf("%w: %q", ErrBadClass, s)
}

// Request is one inference request from the frontend. Items counts the
// images in the request; Inputs optionally carries real tensors for
// models with a real compute backend. When both are set they must
// agree: Items == len(Inputs). Alternatively Images carries encoded
// image bytes for models with a preprocessing engine — the server
// decodes, resizes and normalizes them into Inputs before batching
// (exclusive with Inputs).
type Request struct {
	ID     string
	Model  string
	Items  int
	Inputs [][]float32
	// Images holds encoded image payloads (one per item) for the
	// preprocessing path.
	Images [][]byte
	// ImageFormat is the encoding of every entry in Images.
	ImageFormat imaging.Format
	// Class selects the scenario lane (default ClassOnline). Realtime
	// requests are batched ahead of online ones, which are batched
	// ahead of offline ones.
	Class Class
	// Deadline, when set, is the absolute SLO deadline: the batcher
	// sheds the request with ErrDeadlineExpired once meeting it has
	// become impossible. Unset, it falls back to the submission
	// context's deadline, then to the class default (realtime only).
	Deadline time.Time
	// Tenant identifies the submitting tenant for fair scheduling,
	// quotas and per-tenant metrics. Empty maps to DefaultTenant;
	// otherwise it must satisfy ParseTenant.
	Tenant string
}

// Response reports the outcome of a request.
type Response struct {
	ID    string
	Model string
	Items int
	// AdmitSeconds is wall time spent in admission control, from Submit
	// entry to the admission-slot reservation.
	AdmitSeconds float64
	// PreprocessSeconds is wall time spent decoding and preprocessing
	// the request's encoded images into tensors; zero on the tensor and
	// items-only paths.
	PreprocessSeconds float64
	// QueueSeconds is real wall time spent in the dynamic batcher,
	// measured from enqueue to the batch's execution start. It is the
	// sum of the lane wait (LaneSeconds) and the batch-assembly window
	// (AssembleSeconds).
	QueueSeconds float64
	// LaneSeconds is the lane wait: enqueue to batcher pickup.
	LaneSeconds float64
	// AssembleSeconds is the batch-assembly window: batcher pickup to
	// the fused batch's execution start.
	AssembleSeconds float64
	// ComputeSeconds is the execution time of the batch the request was
	// folded into: measured wall time when the engine really runs or
	// sleeps, the modeled estimate in pure simulation (no real backend
	// and TimeScale == 0). It always equals the value observed by the
	// compute-latency metric.
	ComputeSeconds float64
	// BatchSize is the size of the fused batch that served the request.
	BatchSize int
	// Outputs holds per-image logits when the model has a real backend.
	Outputs [][]float32
}

// ModelConfig configures one served model.
type ModelConfig struct {
	Name string
	// Engine provides (modeled) performance and memory limits.
	Engine *engine.Engine
	// MaxBatch caps the dynamic batcher's fused batch size. 0 means
	// use the engine's memory-derived max batch.
	MaxBatch int
	// QueueDelay is the dynamic batching window: how long the batcher
	// waits for more requests before dispatching a partial batch. The
	// window closes early when the oldest deadline in the forming batch
	// would otherwise be missed.
	QueueDelay time.Duration
	// Instances is the number of parallel engine instances (paper §5:
	// multi-instance strategies). Default 1.
	Instances int
	// InputSize is required when Engine.Real is set, to validate and
	// shape real tensor inputs.
	InputSize int
	// TimeScale makes instances really sleep TimeScale * modeled
	// seconds, so closed-loop clients observe platform-like pacing.
	// 0 disables sleeping (tests, max-speed experiments).
	TimeScale float64
	// DrainTimeout bounds how long Close waits for already-queued
	// requests to be dispatched and served before failing stragglers.
	// 0 means DefaultDrainTimeout; negative means no grace (fail
	// queued work immediately).
	DrainTimeout time.Duration
	// MaxQueueDepth bounds requests admitted but not yet dispatched,
	// across all lanes. A full queue rejects new submissions
	// immediately with ErrOverloaded instead of blocking. 0 means
	// DefaultMaxQueueDepth.
	MaxQueueDepth int
	// RealtimeBudget is the implicit deadline of realtime-class
	// requests with no explicit or context deadline. 0 means
	// DefaultRealtimeBudget; negative disables the implicit deadline.
	RealtimeBudget time.Duration
	// Trace, when non-nil, receives one span per executed batch
	// (wall-clock, track = model name) with queue/batch metadata.
	Trace *trace.Recorder
	// Preproc, when non-nil, enables the encoded-image path: requests
	// carrying Images are decoded/resized/normalized by this engine
	// (which must materialize tensors) between admission and lane
	// enqueue. Must be safe for concurrent ProcessBatch calls — a
	// preprocess.CPUEngine, typically over a shared worker pool. For
	// models with a real backend its OutRes must equal InputSize.
	Preproc preprocess.Engine
	// MaxImageBytes caps one encoded image on the Images path. 0 means
	// DefaultMaxImageBytes.
	MaxImageBytes int64
	// TenantQuotas maps tenant ids to admission quotas. The key "*"
	// applies to every tenant without an explicit entry. Nil or missing
	// entries are unlimited.
	TenantQuotas map[string]TenantQuota
	// TenantQuantum is the deficit-round-robin quantum, in request
	// items, credited per tenant sub-queue visit within a lane. 0 means
	// DefaultTenantQuantum.
	TenantQuantum int
	// AntiStarveEvery makes every Nth dispatch visit the lanes
	// lowest-priority first, so offline work is guaranteed a 1-in-N
	// share under saturating higher-priority load. 0 means
	// DefaultAntiStarveEvery; negative disables (strict priority).
	AntiStarveEvery int
}

// Lifecycle states of a pending request. The submitter and the batcher
// race on the transition out of statePending: the batcher claims a
// request for a dispatched batch, the submitter cancels it. Whoever
// wins the CAS owns the slot, so a cancelled request never occupies a
// dispatched batch slot and a claimed request always gets a response.
const (
	statePending int32 = iota
	stateClaimed
	stateCancelled
)

type pending struct {
	req      *Request
	class    Class
	tenant   string       // canonical tenant id (DRR sub-queue key)
	ts       *tenantState // per-tenant accounting, set at admission
	deadline time.Time    // zero = none
	submitAt time.Time    // Submit entry (admit stage start)
	admitted time.Time    // admission-slot reservation (preprocess stage start)
	// preprocSec is the wall time the preprocess stage took; zero when
	// the request carried no encoded images.
	preprocSec float64
	enqueued   time.Time
	// recvAt is the batcher pickup time, stamped only by the batcher
	// goroutine (stampRecv); the send on the batches channel orders it
	// before any instance read.
	recvAt time.Time
	state  atomic.Int32
	done   chan *Response
	err    chan error
}

// claim attempts to take ownership of the pending for batch dispatch.
func (p *pending) claim() bool {
	return p.state.CompareAndSwap(statePending, stateClaimed)
}

// cancel attempts to withdraw the pending before dispatch.
func (p *pending) cancel() bool {
	return p.state.CompareAndSwap(statePending, stateCancelled)
}

// modelMetrics aggregates per-model serving observability, built on
// internal/metrics primitives. Counters and recorders are individually
// thread-safe; snapshots are eventually consistent.
type modelMetrics struct {
	requests   metrics.Counter // requests completed successfully
	items      metrics.Counter // images served in successful requests
	batches    metrics.Counter // fused batches executed
	errors     metrics.Counter // requests failed by the backend or shutdown
	cancelled  metrics.Counter // requests evicted before dispatch
	shed       metrics.Counter // submissions rejected by admission control
	expired    metrics.Counter // admitted requests evicted past their deadline
	queueLat   metrics.LatencyRecorder
	computeLat metrics.LatencyRecorder
	// preprocLat observes the encoded-image preprocess stage (wall
	// seconds per request).
	preprocLat metrics.LatencyRecorder
	// classQueueLat decomposes queue latency per SLO class.
	classQueueLat [numClasses]metrics.LatencyRecorder
}

// ModelMetrics is a point-in-time snapshot of a model's serving
// metrics. Latency summaries are in seconds.
type ModelMetrics struct {
	Model     string
	Requests  int64
	Items     int64
	Batches   int64
	Errors    int64
	Cancelled int64
	// Shed counts submissions rejected with ErrOverloaded.
	Shed int64
	// Expired counts admitted requests evicted with ErrDeadlineExpired.
	Expired        int64
	QueueDepth     int64
	QueueLatency   stats.Summary
	ComputeLatency stats.Summary
	// PreprocessLatency summarizes the encoded-image preprocess stage
	// (zero-count for models never hit through that path).
	PreprocessLatency stats.Summary
	// ClassQueueLatency holds the queue-latency summary per SLO class
	// (keyed by Class.String()) for classes with observations.
	ClassQueueLatency map[string]stats.Summary
	// QueueHist and ComputeHist are the histogram snapshots the
	// summaries above were computed from, in the shared bucket layout —
	// what /v2/metrics ships so the router can merge distributions
	// exactly.
	QueueHist      metrics.HistogramSnapshot
	ComputeHist    metrics.HistogramSnapshot
	PreprocessHist metrics.HistogramSnapshot
	// ClassQueueHist holds the per-class queue histograms (same keys as
	// ClassQueueLatency).
	ClassQueueHist map[string]metrics.HistogramSnapshot
	// Tenants decomposes activity per tenant (keyed by tenant id) once
	// any request has carried tenant identity (the default tenant
	// included).
	Tenants map[string]TenantMetrics
}

type modelRuntime struct {
	cfg ModelConfig
	// qmu guards the admission lanes: one deficit-round-robin lane per
	// SLO class, each holding per-tenant sub-queues. The batcher drains
	// them in laneOrder (with a bounded anti-starvation share for lower
	// lanes); within a lane, tenants share capacity fairly by DRR.
	qmu   sync.Mutex
	lanes [numClasses]*drrLane
	// polls counts successful pops (under qmu); every AntiStarveEvery-th
	// pop prefers the lowest-priority lane.
	polls uint64
	// notify wakes the single batcher goroutine after an enqueue. It is
	// buffered(1): a pending wakeup is never lost, and an enqueue never
	// blocks.
	notify chan struct{}
	// tmu guards the per-tenant accounting map.
	tmu     sync.Mutex
	tenants map[string]*tenantState

	closing  chan struct{} // closed to start graceful drain
	abort    chan struct{} // closed when the drain timeout expires
	drained  chan struct{} // closed when shutdown has failed all stragglers
	wg       sync.WaitGroup
	inflight atomic.Int64 // requests enqueued but not yet dispatched/evicted
	met      modelMetrics
}

// Stats summarizes a model runtime's activity.
type Stats struct {
	Model string
	// RequestsServed counts requests completed successfully.
	RequestsServed int64
	// ItemsServed counts images in successfully served requests.
	ItemsServed int64
	BatchesRun  int64
	// MeanBatchFill is mean served items per batch divided by MaxBatch.
	MeanBatchFill float64
}

// Server is the inference server.
type Server struct {
	mu     sync.Mutex
	models map[string]*modelRuntime
	closed bool
	// trace, when set, is the default recorder for models registered
	// without their own (ModelConfig.Trace). Request-stage spans and
	// batch spans land here.
	trace *trace.Recorder
	// extensions are extra metric blocks merged into GET /v2/metrics
	// and GET /metrics by layers built on top of the server (the
	// streaming ingest tier); see AddMetricsExtension.
	extensions []metricsExtension
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{models: make(map[string]*modelRuntime)}
}

// SetTrace installs the server-wide trace recorder. Models registered
// afterwards without an explicit ModelConfig.Trace record into it.
// Use a ring recorder (trace.NewRing) on long-lived servers.
func (s *Server) SetTrace(r *trace.Recorder) {
	s.mu.Lock()
	s.trace = r
	s.mu.Unlock()
}

// Trace returns the server-wide trace recorder, or nil.
func (s *Server) Trace() *trace.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace
}

// Register adds a model to the repository and starts its batcher and
// instance goroutines.
func (s *Server) Register(cfg ModelConfig) error {
	if cfg.Name == "" || cfg.Engine == nil {
		return fmt.Errorf("serve: model config needs a name and an engine")
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = cfg.Engine.MaxBatch(0)
	}
	if cfg.MaxBatch <= 0 {
		return fmt.Errorf("serve: model %s does not fit on %s at any batch size",
			cfg.Name, cfg.Engine.Platform.Name)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = DefaultMaxQueueDepth
	}
	if cfg.RealtimeBudget == 0 {
		cfg.RealtimeBudget = DefaultRealtimeBudget
	}
	if cfg.MaxImageBytes <= 0 {
		cfg.MaxImageBytes = DefaultMaxImageBytes
	}
	if cfg.TenantQuantum <= 0 {
		cfg.TenantQuantum = DefaultTenantQuantum
	}
	if cfg.AntiStarveEvery == 0 {
		cfg.AntiStarveEvery = DefaultAntiStarveEvery
	}
	if cfg.Preproc != nil && cfg.Engine.Real != nil && cfg.InputSize > 0 &&
		cfg.Preproc.OutRes() != cfg.InputSize {
		return fmt.Errorf("serve: model %s: preprocessor output %d does not match input size %d",
			cfg.Name, cfg.Preproc.OutRes(), cfg.InputSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if _, ok := s.models[cfg.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateName, cfg.Name)
	}
	if cfg.Trace == nil {
		cfg.Trace = s.trace
	}
	rt := &modelRuntime{
		cfg:     cfg,
		notify:  make(chan struct{}, 1),
		tenants: make(map[string]*tenantState),
		closing: make(chan struct{}),
		abort:   make(chan struct{}),
		drained: make(chan struct{}),
	}
	for c := range rt.lanes {
		rt.lanes[c] = newDRRLane(cfg.TenantQuantum)
	}
	s.models[cfg.Name] = rt

	batches := make(chan []*pending, cfg.Instances*2)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.batcherLoop(batches)
	}()
	for i := 0; i < cfg.Instances; i++ {
		track := cfg.Name
		if cfg.Instances > 1 {
			// One trace track per instance: each instance is a serial
			// resource, so per-instance tracks keep timelines
			// overlap-free under trace.Validate.
			track = fmt.Sprintf("%s#%d", cfg.Name, i)
		}
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.instanceLoop(batches, track)
		}()
	}
	return nil
}

// hasInputs reports whether a request carries real tensors. Batches
// are kept homogeneous in this: fusing tensor-carrying and items-only
// requests would make InferTensors run over fewer tensors than the
// batch's item count claims.
func hasInputs(p *pending) bool { return len(p.req.Inputs) > 0 }

// admit reserves one admission-queue slot, or reports the queue full.
func (rt *modelRuntime) admit() bool {
	max := int64(rt.cfg.MaxQueueDepth)
	for {
		cur := rt.inflight.Load()
		if cur >= max {
			return false
		}
		if rt.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// estimatedExecDuration predicts the wall-clock execution time of a
// fused batch of the given size: the calibrated model latency scaled by
// TimeScale when simulating (0 in pure simulation, which executes in
// microseconds), or the raw modeled latency when a real backend
// computes.
func (rt *modelRuntime) estimatedExecDuration(items int) time.Duration {
	if items <= 0 {
		return 0
	}
	if items > rt.cfg.MaxBatch {
		items = rt.cfg.MaxBatch
	}
	sec := rt.cfg.Engine.Perf.LatencySeconds(items)
	if rt.cfg.Engine.Real == nil {
		sec *= rt.cfg.TimeScale
	}
	return time.Duration(sec * float64(time.Second))
}

// stampRecv marks the batcher pickup time (the end of the lane-wait
// stage) once. Only the batcher goroutine writes it; the batches
// channel send orders the write before any instance read.
func stampRecv(p *pending) *pending {
	if p != nil && p.recvAt.IsZero() {
		p.recvAt = time.Now()
	}
	return p
}

// enqueue places an admitted request into its tenant's sub-queue in
// the class lane and wakes the batcher. It cannot fail: admit()
// bounds lane occupancy, and the lanes are unbounded deques.
func (rt *modelRuntime) enqueue(p *pending) {
	rt.qmu.Lock()
	rt.lanes[p.class].push(p)
	rt.qmu.Unlock()
	select {
	case rt.notify <- struct{}{}:
	default:
	}
}

// poll takes the next queued request without blocking, preferring
// higher-priority lanes. Under backlog this is how realtime work
// overtakes online and offline work — except every AntiStarveEvery-th
// pop, which prefers the lowest lane so sustained realtime load cannot
// starve offline work forever. Within a lane, tenants are served by
// deficit round-robin.
func (rt *modelRuntime) poll() *pending {
	rt.qmu.Lock()
	every := rt.cfg.AntiStarveEvery
	reversed := every > 0 && rt.polls%uint64(every) == uint64(every-1)
	var p *pending
	for i := range laneOrder {
		c := laneOrder[i]
		if reversed {
			c = laneOrder[len(laneOrder)-1-i]
		}
		if p = rt.lanes[c].pop(); p != nil {
			rt.polls++
			break
		}
	}
	rt.qmu.Unlock()
	return stampRecv(p)
}

// recv blocks for the next queued request. Returns nil when the
// runtime starts closing. Safe because the batcher is the lanes' only
// consumer: a producer that enqueues between the failed poll and the
// select has already made a notify send (buffered, never dropped), so
// the wakeup cannot be lost.
func (rt *modelRuntime) recv() *pending {
	for {
		if p := rt.poll(); p != nil {
			return p
		}
		select {
		case <-rt.notify:
		case <-rt.closing:
			return nil
		}
	}
}

// release returns a pending's admission slot and tenant occupancy,
// exactly once per pending, when it leaves the queue for any reason
// (dispatch, eviction, shutdown).
func (rt *modelRuntime) release(p *pending) {
	rt.inflight.Add(-1)
	if p.ts != nil {
		p.ts.queuedReqs.Add(-1)
		p.ts.queuedItems.Add(int64(-itemsOf(p)))
	}
}

// backlogItemsAtOrAbove sums the queued items a new submission of the
// given class would wait behind: its own lane plus every
// higher-priority lane. This is the lane-aware backlog behind
// Retry-After hints — an offline flood must not inflate a realtime
// caller's backoff.
func (rt *modelRuntime) backlogItemsAtOrAbove(class Class) int64 {
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	var items int64
	for _, c := range laneOrder {
		items += int64(rt.lanes[c].items)
		if c == class {
			break
		}
	}
	return items
}

// dispatch claims the batch's pendings and hands the survivors to an
// instance. Requests cancelled while queued, and requests whose
// deadline can no longer be met even if executed right now, are
// evicted here — they never occupy a dispatched batch slot. Returns
// false when the send was aborted by the drain deadline (the claimed
// survivors are failed).
func (rt *modelRuntime) dispatch(batches chan<- []*pending, batch []*pending) bool {
	items := 0
	for _, p := range batch {
		items += p.req.Items
	}
	// The expiry horizon: a request whose remaining slack is below the
	// modeled execution time of this batch is a guaranteed SLO miss.
	est := rt.estimatedExecDuration(items)
	horizon := time.Now().Add(est)
	live := batch[:0]
	for _, p := range batch {
		rt.release(p)
		if !p.claim() {
			rt.met.cancelled.Inc()
			continue
		}
		if !p.deadline.IsZero() && horizon.After(p.deadline) {
			rt.met.expired.Inc()
			if p.ts != nil {
				p.ts.expired.Inc()
			}
			p.err <- fmt.Errorf("%w: model %s, batch of %d", ErrDeadlineExpired, rt.cfg.Name, items)
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return true
	}
	select {
	case batches <- live:
		return true
	case <-rt.abort:
		for _, p := range live {
			rt.met.errors.Inc()
			p.err <- ErrServerClosed
		}
		return false
	}
}

// fireAt returns when the forming batch should be dispatched: at the
// end of the batching window, or earlier so that the batch's earliest
// deadline can still be met after the estimated execution time.
func (rt *modelRuntime) fireAt(windowEnd, earliest time.Time, items int) time.Time {
	at := windowEnd
	if !earliest.IsZero() {
		latest := earliest.Add(-rt.estimatedExecDuration(items))
		if latest.Before(at) {
			at = latest
		}
	}
	return at
}

// earlier folds a pending's deadline into the running earliest.
func earlier(earliest time.Time, p *pending) time.Time {
	if p.deadline.IsZero() {
		return earliest
	}
	if earliest.IsZero() || p.deadline.Before(earliest) {
		return p.deadline
	}
	return earliest
}

// batcherLoop implements deadline-aware dynamic batching: it fuses
// queued requests (highest-priority lane first) until the fused batch
// reaches MaxBatch items, QueueDelay elapses since the first request,
// or waiting any longer would make the batch's earliest deadline
// unmeetable. Tensor-carrying and items-only requests are never fused
// into the same batch (see hasInputs).
func (rt *modelRuntime) batcherLoop(batches chan<- []*pending) {
	defer close(batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// stopTimer quiesces the window timer, draining a pending fire.
	armed := false
	stopTimer := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	for {
		first := rt.recv()
		if first == nil {
			rt.drainQueue(batches)
			return
		}
		batch := []*pending{first}
		items := first.req.Items
		real := hasInputs(first)
		earliest := earlier(time.Time{}, first)
		windowEnd := time.Now().Add(rt.cfg.QueueDelay)
		at := rt.fireAt(windowEnd, earliest, items)
		timer.Reset(time.Until(at))
		armed = true
	fill:
		for items < rt.cfg.MaxBatch {
			p := rt.poll()
			if p == nil {
				select {
				case <-rt.notify:
					// New work enqueued; re-poll through the DRR lanes.
					continue
				case <-timer.C:
					armed = false
					break fill
				case <-rt.closing:
					// Shutdown: dispatch what we have immediately.
					break fill
				}
			}
			if items+p.req.Items > rt.cfg.MaxBatch || hasInputs(p) != real {
				// Dispatch current batch; start the next with p.
				stopTimer()
				if !rt.dispatch(batches, batch) {
					rt.failPending(p)
					rt.drainQueue(batches)
					return
				}
				batch = []*pending{p}
				items = p.req.Items
				real = hasInputs(p)
				earliest = earlier(time.Time{}, p)
				windowEnd = time.Now().Add(rt.cfg.QueueDelay)
				at = rt.fireAt(windowEnd, earliest, items)
				timer.Reset(time.Until(at))
				armed = true
				continue
			}
			batch = append(batch, p)
			items += p.req.Items
			// Growth can only move the dispatch point earlier: a larger
			// batch executes longer, and a new earliest deadline leaves
			// less slack.
			earliest = earlier(earliest, p)
			if next := rt.fireAt(windowEnd, earliest, items); next.Before(at) {
				stopTimer()
				at = next
				timer.Reset(time.Until(at))
				armed = true
			}
		}
		stopTimer()
		if !rt.dispatch(batches, batch) {
			rt.drainQueue(batches)
			return
		}
	}
}

// drainQueue is the graceful-shutdown path: it keeps fusing and
// dispatching whatever is already queued (so queued work is served,
// not failed) until the lanes are empty or the drain deadline aborts.
func (rt *modelRuntime) drainQueue(batches chan<- []*pending) {
	for {
		select {
		case <-rt.abort:
			rt.failQueued()
			return
		default:
		}
		var batch []*pending
		items := 0
		real := false
		for items < rt.cfg.MaxBatch {
			p := rt.poll()
			if p == nil {
				break
			}
			if batch != nil && (items+p.req.Items > rt.cfg.MaxBatch || hasInputs(p) != real) {
				if !rt.dispatch(batches, batch) {
					rt.failPending(p)
					rt.failQueued()
					return
				}
				batch = nil
				items = 0
			}
			if batch == nil {
				real = hasInputs(p)
			}
			batch = append(batch, p)
			items += p.req.Items
		}
		if batch == nil {
			return
		}
		if !rt.dispatch(batches, batch) {
			rt.failQueued()
			return
		}
	}
}

// failQueued fails everything still sitting in the lanes.
func (rt *modelRuntime) failQueued() {
	for {
		p := rt.poll()
		if p == nil {
			return
		}
		rt.failPending(p)
	}
}

// failPending fails one undispatched pending (unless it was already
// cancelled by its submitter).
func (rt *modelRuntime) failPending(p *pending) {
	rt.release(p)
	if p.claim() {
		rt.met.errors.Inc()
		p.err <- ErrServerClosed
	} else {
		rt.met.cancelled.Inc()
	}
}

// instanceLoop executes fused batches on one engine instance. track is
// the instance's trace track name.
func (rt *modelRuntime) instanceLoop(batches <-chan []*pending, track string) {
	for batch := range batches {
		rt.runBatch(batch, track)
	}
}

// evictExpired drops batch members whose remaining slack no longer
// covers the batch's modeled execution time. dispatch performs the same
// check, but a dispatched batch can still wait behind earlier batches
// for a free instance; re-checking at execution start is what turns "a
// served response met its deadline" from a dispatch-time approximation
// into a guarantee.
func (rt *modelRuntime) evictExpired(batch []*pending) []*pending {
	items := 0
	for _, p := range batch {
		items += p.req.Items
	}
	horizon := time.Now().Add(rt.estimatedExecDuration(items))
	live := batch[:0]
	for _, p := range batch {
		if !p.deadline.IsZero() && horizon.After(p.deadline) {
			rt.met.expired.Inc()
			if p.ts != nil {
				p.ts.expired.Inc()
			}
			p.err <- fmt.Errorf("%w: model %s, evicted at execution start", ErrDeadlineExpired, rt.cfg.Name)
			continue
		}
		live = append(live, p)
	}
	return live
}

// sinceEpoch is a trace timestamp: seconds since serveEpoch, clamped
// to zero so timestamps taken before the epoch (or from zero-value
// times) never produce the negative starts trace.Validate rejects.
func sinceEpoch(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	s := t.Sub(serveEpoch).Seconds()
	if s < 0 {
		return 0
	}
	return s
}

// stageDur is a non-negative stage duration between two stamps.
func stageDur(from, to time.Time) float64 {
	if from.IsZero() || to.IsZero() {
		return 0
	}
	if d := to.Sub(from).Seconds(); d > 0 {
		return d
	}
	return 0
}

// recordRequestSpans writes one request's stage decomposition — admit,
// queue (lane wait), batch-assembly, compute — onto its own trace
// track "req:<id>". The stamps are monotone wall-clock times, so the
// track is overlap-free by construction.
func (rt *modelRuntime) recordRequestSpans(p *pending, execStart, execEnd time.Time, batchItems int) {
	if rt.cfg.Trace == nil || p.req.ID == "" {
		return
	}
	track := "req:" + p.req.ID
	add := func(name string, from, to time.Time) {
		d := stageDur(from, to)
		start := sinceEpoch(to) - d
		if start < 0 {
			start = 0
		}
		rt.cfg.Trace.Add(trace.Span{
			Name: name, Track: track, Start: start, Duration: d,
			Args: map[string]any{"model": rt.cfg.Name, "class": p.class.String(), "tenant": p.tenant},
		})
	}
	add("admit", p.submitAt, p.admitted)
	if p.preprocSec > 0 {
		add("preprocess", p.admitted, p.enqueued)
	}
	add("queue", p.enqueued, p.recvAt)
	add("batch-assembly", p.recvAt, execStart)
	rt.cfg.Trace.Add(trace.Span{
		Name: "compute", Track: track,
		Start:    sinceEpoch(execStart),
		Duration: stageDur(execStart, execEnd),
		Args: map[string]any{
			"model": rt.cfg.Name, "class": p.class.String(),
			"tenant":      p.tenant,
			"batch_items": batchItems,
		},
	})
}

func (rt *modelRuntime) runBatch(batch []*pending, track string) {
	if batch = rt.evictExpired(batch); len(batch) == 0 {
		return
	}
	items := 0
	var inputs [][]float32
	for _, p := range batch {
		items += p.req.Items
		inputs = append(inputs, p.req.Inputs...)
	}
	// Stamp the execution start before inference so queue time is
	// measured wall time in the batcher, never inferred by subtracting
	// modeled compute from end-to-end time.
	execStart := time.Now()
	var st engine.InferStats
	var outputs [][]float32
	var err error
	if rt.cfg.Engine.Real != nil && len(inputs) > 0 {
		outputs, st, err = rt.cfg.Engine.InferTensors(inputs, rt.cfg.InputSize)
	} else {
		st, err = rt.cfg.Engine.Infer(items)
	}
	if err == nil && rt.cfg.TimeScale > 0 {
		time.Sleep(time.Duration(st.Seconds * rt.cfg.TimeScale * float64(time.Second)))
	}
	execEnd := time.Now()
	if rt.cfg.Trace != nil {
		// Batch spans sit on the instance's wall-clock timeline
		// ([execStart, execEnd], never negative); the modeled engine
		// estimate rides along in Args instead of skewing the timeline.
		rt.cfg.Trace.Add(trace.Span{
			Name:     fmt.Sprintf("batch(%d reqs, %d imgs)", len(batch), items),
			Track:    track,
			Start:    sinceEpoch(execStart),
			Duration: stageDur(execStart, execEnd),
			Args: map[string]any{
				"requests":        len(batch),
				"items":           items,
				"failed":          err != nil,
				"modeled_seconds": st.Seconds,
			},
		})
	}
	rt.met.batches.Inc()
	// Compute latency: measured wall time of the batch execution when
	// the engine really runs or sleeps; the modeled estimate otherwise
	// (TimeScale 0 pure simulation executes in microseconds).
	computeSec := execEnd.Sub(execStart).Seconds()
	if rt.cfg.Engine.Real == nil && rt.cfg.TimeScale == 0 {
		computeSec = st.Seconds
	}
	rt.met.computeLat.Observe(computeSec)
	outOff := 0
	for _, p := range batch {
		if err != nil {
			rt.met.errors.Inc()
			p.err <- fmt.Errorf("serve: model %s: %w", rt.cfg.Name, err)
			continue
		}
		queueSec := execStart.Sub(p.enqueued).Seconds()
		if queueSec < 0 {
			queueSec = 0
		}
		resp := &Response{
			ID:                p.req.ID,
			Model:             rt.cfg.Name,
			Items:             p.req.Items,
			AdmitSeconds:      stageDur(p.submitAt, p.admitted),
			PreprocessSeconds: p.preprocSec,
			QueueSeconds:      queueSec,
			LaneSeconds:       stageDur(p.enqueued, p.recvAt),
			AssembleSeconds:   stageDur(p.recvAt, execStart),
			ComputeSeconds:    computeSec,
			BatchSize:         items,
		}
		if outputs != nil && len(p.req.Inputs) > 0 {
			resp.Outputs = outputs[outOff : outOff+len(p.req.Inputs)]
			outOff += len(p.req.Inputs)
		}
		rt.recordRequestSpans(p, execStart, execEnd, items)
		rt.met.queueLat.Observe(queueSec)
		rt.met.classQueueLat[p.class].Observe(queueSec)
		rt.met.requests.Inc()
		rt.met.items.Add(int64(p.req.Items))
		if p.ts != nil {
			p.ts.requests.Inc()
			p.ts.items.Add(int64(p.req.Items))
			p.ts.queueLat.Observe(queueSec)
		}
		p.done <- resp
	}
}

// resolveDeadline picks a pending's effective deadline: the request's
// explicit deadline, else the context's, else the class default
// (realtime only).
func (rt *modelRuntime) resolveDeadline(ctx context.Context, req *Request) time.Time {
	if !req.Deadline.IsZero() {
		return req.Deadline
	}
	if dl, ok := ctx.Deadline(); ok {
		return dl
	}
	if req.Class == ClassRealtime && rt.cfg.RealtimeBudget > 0 {
		return time.Now().Add(rt.cfg.RealtimeBudget)
	}
	return time.Time{}
}

// Submit sends a request and blocks until its response, the context's
// cancellation, or server shutdown. Admission is bounded: when the
// model's queue already holds MaxQueueDepth requests, Submit rejects
// immediately with ErrOverloaded instead of blocking. A request whose
// context ends while it is still queued is withdrawn from the batcher
// and never occupies a dispatched batch slot; once a batch has claimed
// it, Submit waits for that batch's outcome. An admitted request whose
// deadline passes before execution could complete is shed with
// ErrDeadlineExpired.
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	submitAt := time.Now()
	if req.Items <= 0 && len(req.Inputs) == 0 && len(req.Images) == 0 {
		return nil, ErrEmptyRequest
	}
	if len(req.Inputs) > 0 && len(req.Images) > 0 {
		return nil, fmt.Errorf("%w: inputs=%d, images=%d", ErrMixedInputs, len(req.Inputs), len(req.Images))
	}
	if req.Items == 0 {
		if req.Items = len(req.Inputs); req.Items == 0 {
			req.Items = len(req.Images)
		}
	}
	if len(req.Inputs) > 0 && req.Items != len(req.Inputs) {
		return nil, fmt.Errorf("%w: items=%d, inputs=%d", ErrItemsMismatch, req.Items, len(req.Inputs))
	}
	if len(req.Images) > 0 && req.Items != len(req.Images) {
		return nil, fmt.Errorf("%w: items=%d, images=%d", ErrItemsMismatch, req.Items, len(req.Images))
	}
	if req.Class < 0 || req.Class >= numClasses {
		return nil, fmt.Errorf("%w: %d", ErrBadClass, int(req.Class))
	}
	tenant, err := ParseTenant(req.Tenant)
	if err != nil {
		return nil, err
	}
	req.Tenant = tenant
	s.mu.Lock()
	rt, ok := s.models[req.Model]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrServerClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model)
	}
	if req.Items > rt.cfg.MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyItems, req.Items, rt.cfg.MaxBatch)
	}
	if len(req.Images) > 0 {
		if rt.cfg.Preproc == nil {
			return nil, fmt.Errorf("%w: model %s", ErrNoPreprocessor, rt.cfg.Name)
		}
		for i, img := range req.Images {
			if int64(len(img)) > rt.cfg.MaxImageBytes {
				return nil, fmt.Errorf("%w: image %d is %d bytes, limit %d",
					ErrImageTooLarge, i, len(img), rt.cfg.MaxImageBytes)
			}
		}
	}
	select {
	case <-rt.closing:
		return nil, ErrServerClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ts := rt.tenantState(tenant)
	deadline := rt.resolveDeadline(ctx, req)
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		// Dead on arrival: shed without occupying a queue slot.
		rt.met.expired.Inc()
		ts.expired.Inc()
		return nil, fmt.Errorf("%w: model %s, expired on submit", ErrDeadlineExpired, rt.cfg.Name)
	}
	// Tenant quotas gate before the shared queue: an over-quota tenant
	// burns its own 429 budget without having touched a queue slot.
	if err := rt.checkQuota(ts, tenant, req.Items); err != nil {
		rt.met.shed.Inc()
		ts.shed.Inc()
		return nil, err
	}
	if !rt.admit() {
		rt.met.shed.Inc()
		ts.shed.Inc()
		return nil, fmt.Errorf("%w: model %s, queue depth %d", ErrOverloaded, rt.cfg.Name, rt.cfg.MaxQueueDepth)
	}
	ts.queuedReqs.Add(1)
	ts.queuedItems.Add(int64(req.Items))
	admitted := time.Now()
	preprocSec := 0.0
	if len(req.Images) > 0 {
		// The preprocess stage runs on the submitter's goroutine between
		// admission and lane enqueue: admission control bounds how many
		// requests can be decoding at once, and the engine's worker pool
		// bounds the CPU they use. The resulting tensors ride the normal
		// tensor path from here on.
		items := make([]preprocess.Item, len(req.Images))
		for i, img := range req.Images {
			items[i] = preprocess.Item{Encoded: img, Format: req.ImageFormat}
		}
		res, err := rt.cfg.Preproc.ProcessBatch(items)
		if err == nil && len(res.Tensors) != len(items) {
			err = fmt.Errorf("preprocessor %s returned no tensors", rt.cfg.Preproc.Name())
		}
		if err != nil {
			rt.inflight.Add(-1)
			ts.queuedReqs.Add(-1)
			ts.queuedItems.Add(int64(-req.Items))
			rt.met.errors.Inc()
			return nil, fmt.Errorf("%w: model %s: %v", ErrPreprocess, rt.cfg.Name, err)
		}
		req.Inputs = res.Tensors
		preprocSec = time.Since(admitted).Seconds()
		rt.met.preprocLat.Observe(preprocSec)
	}
	p := &pending{
		req:        req,
		class:      req.Class,
		tenant:     tenant,
		ts:         ts,
		deadline:   deadline,
		submitAt:   submitAt,
		admitted:   admitted,
		preprocSec: preprocSec,
		enqueued:   time.Now(),
		done:       make(chan *Response, 1),
		err:        make(chan error, 1),
	}
	rt.enqueue(p)
	// Once enqueued, the request is guaranteed an outcome: the batcher
	// either claims it (response, shed, or backend error arrives) or
	// the shutdown path fails it. Queued work is drained, not
	// abandoned, so shutdown-in-progress is not a wait condition; only
	// a fully drained runtime (the enqueue raced past the batcher's
	// exit) is.
	select {
	case resp := <-p.done:
		return resp, nil
	case err := <-p.err:
		return nil, err
	case <-ctx.Done():
		if p.cancel() {
			// Withdrawn before dispatch; the batcher will evict it.
			return nil, ctx.Err()
		}
		// A batch already claimed it; its outcome is imminent.
		select {
		case resp := <-p.done:
			return resp, nil
		case err := <-p.err:
			return nil, err
		}
	case <-rt.drained:
		if p.claim() {
			rt.release(p)
			return nil, ErrServerClosed
		}
		select {
		case resp := <-p.done:
			return resp, nil
		case err := <-p.err:
			return nil, err
		}
	}
}

// Models lists registered model names.
func (s *Server) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ModelConfigFor returns the configuration of a registered model.
func (s *Server) ModelConfigFor(name string) (ModelConfig, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.models[name]
	if !ok {
		return ModelConfig{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.cfg, nil
}

// StatsFor returns activity counters for a model.
func (s *Server) StatsFor(name string) (Stats, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	st := Stats{
		Model:          name,
		RequestsServed: rt.met.requests.Load(),
		ItemsServed:    rt.met.items.Load(),
		BatchesRun:     rt.met.batches.Load(),
	}
	if st.BatchesRun > 0 && rt.cfg.MaxBatch > 0 {
		st.MeanBatchFill = float64(st.ItemsServed) / float64(st.BatchesRun) / float64(rt.cfg.MaxBatch)
	}
	return st, nil
}

// QueueDepth returns a model's current admission-queue depth: requests
// admitted but not yet dispatched to an instance. This is the pressure
// signal the streaming offload policy watches.
func (s *Server) QueueDepth(name string) (int64, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.inflight.Load(), nil
}

// EstimateWait predicts how long a new items-sized submission would
// take to complete if admitted now: the already-queued work plus this
// submission, packed into MaxBatch-sized batches across the model's
// instances, at the calibrated (TimeScale-adjusted) batch execution
// time. It deliberately over-counts batches already executing as still
// queued — for a drop-stale admission gate, a slightly pessimistic
// estimate sheds a frame a touch early rather than queueing one that
// will blow its deadline.
func (s *Server) EstimateWait(name string, items int) (time.Duration, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if items < 1 {
		items = 1
	}
	queued := rt.inflight.Load() + int64(items)
	maxBatch := int64(rt.cfg.MaxBatch)
	if maxBatch < 1 {
		maxBatch = 1
	}
	batches := (queued + maxBatch - 1) / maxBatch
	instances := int64(rt.cfg.Instances)
	if instances < 1 {
		instances = 1
	}
	rounds := (batches + instances - 1) / instances
	// Full rounds execute at MaxBatch; the tail round runs only what
	// is actually queued. On an unloaded tier this matters: one frame
	// executes as a batch of one, not a hypothetical full batch — an
	// always-full-batch estimate would price an idle edge as if
	// saturated and shed realtime frames it could easily serve.
	tail := queued - (rounds-1)*maxBatch*instances
	if tail < 1 {
		tail = 1
	} else if tail > maxBatch {
		tail = maxBatch
	}
	wait := time.Duration(rounds-1)*rt.estimatedExecDuration(rt.cfg.MaxBatch) +
		rt.estimatedExecDuration(int(tail))
	// The batching window delays dispatch of a non-full batch once.
	return rt.cfg.QueueDelay + wait, nil
}

// MetricsFor returns a metrics snapshot for one model.
func (s *Server) MetricsFor(name string) (ModelMetrics, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return ModelMetrics{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.snapshot(), nil
}

// Metrics returns metrics snapshots for all models, sorted by name.
func (s *Server) Metrics() []ModelMetrics {
	s.mu.Lock()
	rts := make([]*modelRuntime, 0, len(s.models))
	for _, rt := range s.models {
		rts = append(rts, rt)
	}
	s.mu.Unlock()
	out := make([]ModelMetrics, 0, len(rts))
	for _, rt := range rts {
		out = append(out, rt.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

func (rt *modelRuntime) snapshot() ModelMetrics {
	qh := rt.met.queueLat.Snapshot()
	ch := rt.met.computeLat.Snapshot()
	ph := rt.met.preprocLat.Snapshot()
	m := ModelMetrics{
		Model:             rt.cfg.Name,
		Requests:          rt.met.requests.Load(),
		Items:             rt.met.items.Load(),
		Batches:           rt.met.batches.Load(),
		Errors:            rt.met.errors.Load(),
		Cancelled:         rt.met.cancelled.Load(),
		Shed:              rt.met.shed.Load(),
		Expired:           rt.met.expired.Load(),
		QueueDepth:        rt.inflight.Load(),
		QueueLatency:      qh.Summary(),
		ComputeLatency:    ch.Summary(),
		PreprocessLatency: ph.Summary(),
		QueueHist:         qh,
		ComputeHist:       ch,
		PreprocessHist:    ph,
	}
	for c := Class(0); c < numClasses; c++ {
		h := rt.met.classQueueLat[c].Snapshot()
		if h.Count == 0 {
			continue
		}
		if m.ClassQueueLatency == nil {
			m.ClassQueueLatency = make(map[string]stats.Summary, int(numClasses))
			m.ClassQueueHist = make(map[string]metrics.HistogramSnapshot, int(numClasses))
		}
		m.ClassQueueLatency[c.String()] = h.Summary()
		m.ClassQueueHist[c.String()] = h
	}
	m.Tenants = rt.tenantSnapshots()
	return m
}

// Close stops the server gracefully: new submissions are rejected,
// requests already queued are dispatched and served within each
// model's DrainTimeout, and only stragglers past the deadline are
// failed with ErrServerClosed. Close blocks until every batcher and
// instance goroutine has exited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	rts := make([]*modelRuntime, 0, len(s.models))
	for _, rt := range s.models {
		rts = append(rts, rt)
	}
	s.mu.Unlock()
	// Start every model's drain concurrently, then wait on each.
	for _, rt := range rts {
		close(rt.closing)
	}
	var wg sync.WaitGroup
	for _, rt := range rts {
		wg.Add(1)
		go func(rt *modelRuntime) {
			defer wg.Done()
			rt.shutdown()
		}(rt)
	}
	wg.Wait()
}

// shutdown waits for the runtime's goroutines to drain queued work,
// aborting the drain if it outlives the configured timeout.
func (rt *modelRuntime) shutdown() {
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	grace := rt.cfg.DrainTimeout
	if grace < 0 {
		grace = 0
	}
	select {
	case <-done:
	case <-time.After(grace):
		close(rt.abort)
		<-done
	}
	// Fail anything that slipped into the lanes after the batcher
	// exited; submitters racing Close also observe rt.closing, and
	// anything enqueued after this final sweep is claimed by its own
	// submitter via rt.drained.
	rt.failQueued()
	close(rt.drained)
}
