// Package serve implements the HARVEST backend request orchestration
// layer — the NVIDIA Triton Server analogue of paper §3: a model
// repository hosting per-model engine instances behind dynamic
// batchers, with a decoupled frontend (in-process API here, HTTP in
// http.go) that transmits input data and generates backend requests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/engine"
	"harvest/internal/metrics"
	"harvest/internal/stats"
	"harvest/internal/trace"
)

// serveEpoch anchors wall-clock trace timestamps.
var serveEpoch = time.Now()

// Errors returned by the server.
var (
	ErrUnknownModel  = errors.New("serve: unknown model")
	ErrServerClosed  = errors.New("serve: server closed")
	ErrTooManyItems  = errors.New("serve: request exceeds model max batch")
	ErrEmptyRequest  = errors.New("serve: request has no items")
	ErrItemsMismatch = errors.New("serve: request items disagree with inputs")
	ErrDuplicateName = errors.New("serve: model already registered")
)

// DefaultDrainTimeout bounds Close's graceful drain when
// ModelConfig.DrainTimeout is zero.
const DefaultDrainTimeout = 5 * time.Second

// Request is one inference request from the frontend. Items counts the
// images in the request; Inputs optionally carries real tensors for
// models with a real compute backend. When both are set they must
// agree: Items == len(Inputs).
type Request struct {
	ID     string
	Model  string
	Items  int
	Inputs [][]float32
}

// Response reports the outcome of a request.
type Response struct {
	ID    string
	Model string
	Items int
	// QueueSeconds is real wall time spent in the dynamic batcher,
	// measured from enqueue to the batch's execution start.
	QueueSeconds float64
	// ComputeSeconds is the modeled engine time of the batch the
	// request was folded into.
	ComputeSeconds float64
	// BatchSize is the size of the fused batch that served the request.
	BatchSize int
	// Outputs holds per-image logits when the model has a real backend.
	Outputs [][]float32
}

// ModelConfig configures one served model.
type ModelConfig struct {
	Name string
	// Engine provides (modeled) performance and memory limits.
	Engine *engine.Engine
	// MaxBatch caps the dynamic batcher's fused batch size. 0 means
	// use the engine's memory-derived max batch.
	MaxBatch int
	// QueueDelay is the dynamic batching window: how long the batcher
	// waits for more requests before dispatching a partial batch.
	QueueDelay time.Duration
	// Instances is the number of parallel engine instances (paper §5:
	// multi-instance strategies). Default 1.
	Instances int
	// InputSize is required when Engine.Real is set, to validate and
	// shape real tensor inputs.
	InputSize int
	// TimeScale makes instances really sleep TimeScale * modeled
	// seconds, so closed-loop clients observe platform-like pacing.
	// 0 disables sleeping (tests, max-speed experiments).
	TimeScale float64
	// DrainTimeout bounds how long Close waits for already-queued
	// requests to be dispatched and served before failing stragglers.
	// 0 means DefaultDrainTimeout; negative means no grace (fail
	// queued work immediately).
	DrainTimeout time.Duration
	// Trace, when non-nil, receives one span per executed batch
	// (wall-clock, track = model name) with queue/batch metadata.
	Trace *trace.Recorder
}

// Lifecycle states of a pending request. The submitter and the batcher
// race on the transition out of statePending: the batcher claims a
// request for a dispatched batch, the submitter cancels it. Whoever
// wins the CAS owns the slot, so a cancelled request never occupies a
// dispatched batch slot and a claimed request always gets a response.
const (
	statePending int32 = iota
	stateClaimed
	stateCancelled
)

type pending struct {
	req      *Request
	enqueued time.Time
	state    atomic.Int32
	done     chan *Response
	err      chan error
}

// claim attempts to take ownership of the pending for batch dispatch.
func (p *pending) claim() bool {
	return p.state.CompareAndSwap(statePending, stateClaimed)
}

// cancel attempts to withdraw the pending before dispatch.
func (p *pending) cancel() bool {
	return p.state.CompareAndSwap(statePending, stateCancelled)
}

// modelMetrics aggregates per-model serving observability, built on
// internal/metrics primitives. Counters and recorders are individually
// thread-safe; snapshots are eventually consistent.
type modelMetrics struct {
	requests   metrics.Counter // requests completed successfully
	items      metrics.Counter // images served in successful requests
	batches    metrics.Counter // fused batches executed
	errors     metrics.Counter // requests failed by the backend or shutdown
	cancelled  metrics.Counter // requests evicted before dispatch
	queueLat   metrics.LatencyRecorder
	computeLat metrics.LatencyRecorder
}

// ModelMetrics is a point-in-time snapshot of a model's serving
// metrics. Latency summaries are in seconds.
type ModelMetrics struct {
	Model          string
	Requests       int64
	Items          int64
	Batches        int64
	Errors         int64
	Cancelled      int64
	QueueDepth     int64
	QueueLatency   stats.Summary
	ComputeLatency stats.Summary
}

type modelRuntime struct {
	cfg      ModelConfig
	queue    chan *pending
	closing  chan struct{} // closed to start graceful drain
	abort    chan struct{} // closed when the drain timeout expires
	drained  chan struct{} // closed when shutdown has failed all stragglers
	wg       sync.WaitGroup
	inflight atomic.Int64 // requests enqueued but not yet dispatched/evicted
	met      modelMetrics
}

// Stats summarizes a model runtime's activity.
type Stats struct {
	Model string
	// RequestsServed counts requests completed successfully.
	RequestsServed int64
	// ItemsServed counts images in successfully served requests.
	ItemsServed int64
	BatchesRun  int64
	// MeanBatchFill is mean served items per batch divided by MaxBatch.
	MeanBatchFill float64
}

// Server is the inference server.
type Server struct {
	mu     sync.Mutex
	models map[string]*modelRuntime
	closed bool
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{models: make(map[string]*modelRuntime)}
}

// Register adds a model to the repository and starts its batcher and
// instance goroutines.
func (s *Server) Register(cfg ModelConfig) error {
	if cfg.Name == "" || cfg.Engine == nil {
		return fmt.Errorf("serve: model config needs a name and an engine")
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = cfg.Engine.MaxBatch(0)
	}
	if cfg.MaxBatch <= 0 {
		return fmt.Errorf("serve: model %s does not fit on %s at any batch size",
			cfg.Name, cfg.Engine.Platform.Name)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if _, ok := s.models[cfg.Name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateName, cfg.Name)
	}
	rt := &modelRuntime{
		cfg:     cfg,
		queue:   make(chan *pending, 1024),
		closing: make(chan struct{}),
		abort:   make(chan struct{}),
		drained: make(chan struct{}),
	}
	s.models[cfg.Name] = rt

	batches := make(chan []*pending, cfg.Instances*2)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.batcherLoop(batches)
	}()
	for i := 0; i < cfg.Instances; i++ {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.instanceLoop(batches)
		}()
	}
	return nil
}

// hasInputs reports whether a request carries real tensors. Batches
// are kept homogeneous in this: fusing tensor-carrying and items-only
// requests would make InferTensors run over fewer tensors than the
// batch's item count claims.
func hasInputs(p *pending) bool { return len(p.req.Inputs) > 0 }

// dispatch claims the batch's pendings and hands the survivors to an
// instance. Requests cancelled while queued are evicted here — they
// never occupy a dispatched batch slot. Returns false when the send
// was aborted by the drain deadline (the claimed survivors are failed).
func (rt *modelRuntime) dispatch(batches chan<- []*pending, batch []*pending) bool {
	live := batch[:0]
	for _, p := range batch {
		rt.inflight.Add(-1)
		if p.claim() {
			live = append(live, p)
		} else {
			rt.met.cancelled.Inc()
		}
	}
	if len(live) == 0 {
		return true
	}
	select {
	case batches <- live:
		return true
	case <-rt.abort:
		for _, p := range live {
			rt.met.errors.Inc()
			p.err <- ErrServerClosed
		}
		return false
	}
}

// batcherLoop implements dynamic batching: it fuses queued requests
// until the fused batch reaches MaxBatch items or QueueDelay elapses
// since the first request. Tensor-carrying and items-only requests are
// never fused into the same batch (see hasInputs).
func (rt *modelRuntime) batcherLoop(batches chan<- []*pending) {
	defer close(batches)
	for {
		var first *pending
		select {
		case p := <-rt.queue:
			first = p
		case <-rt.closing:
			rt.drainQueue(batches)
			return
		}
		batch := []*pending{first}
		items := first.req.Items
		real := hasInputs(first)
		deadline := time.NewTimer(rt.cfg.QueueDelay)
	fill:
		for items < rt.cfg.MaxBatch {
			select {
			case p := <-rt.queue:
				if items+p.req.Items > rt.cfg.MaxBatch || hasInputs(p) != real {
					// Dispatch current batch; start the next with p.
					if !rt.dispatch(batches, batch) {
						rt.failPending(p)
						deadline.Stop()
						rt.drainQueue(batches)
						return
					}
					batch = []*pending{p}
					items = p.req.Items
					real = hasInputs(p)
					if !deadline.Stop() {
						<-deadline.C
					}
					deadline.Reset(rt.cfg.QueueDelay)
					continue
				}
				batch = append(batch, p)
				items += p.req.Items
			case <-deadline.C:
				break fill
			case <-rt.closing:
				// Shutdown: dispatch what we have immediately.
				break fill
			}
		}
		deadline.Stop()
		if !rt.dispatch(batches, batch) {
			rt.drainQueue(batches)
			return
		}
	}
}

// drainQueue is the graceful-shutdown path: it keeps fusing and
// dispatching whatever is already queued (so queued work is served,
// not failed) until the queue is empty or the drain deadline aborts.
func (rt *modelRuntime) drainQueue(batches chan<- []*pending) {
	for {
		select {
		case <-rt.abort:
			rt.failQueued()
			return
		default:
		}
		var batch []*pending
		items := 0
		real := false
	gather:
		for items < rt.cfg.MaxBatch {
			select {
			case p := <-rt.queue:
				if batch != nil && (items+p.req.Items > rt.cfg.MaxBatch || hasInputs(p) != real) {
					if !rt.dispatch(batches, batch) {
						rt.failPending(p)
						rt.failQueued()
						return
					}
					batch = nil
					items = 0
				}
				if batch == nil {
					real = hasInputs(p)
				}
				batch = append(batch, p)
				items += p.req.Items
			default:
				break gather
			}
		}
		if batch == nil {
			return
		}
		if !rt.dispatch(batches, batch) {
			rt.failQueued()
			return
		}
	}
}

// failQueued fails everything still sitting in the queue.
func (rt *modelRuntime) failQueued() {
	for {
		select {
		case p := <-rt.queue:
			rt.failPending(p)
		default:
			return
		}
	}
}

// failPending fails one undispatched pending (unless it was already
// cancelled by its submitter).
func (rt *modelRuntime) failPending(p *pending) {
	rt.inflight.Add(-1)
	if p.claim() {
		rt.met.errors.Inc()
		p.err <- ErrServerClosed
	} else {
		rt.met.cancelled.Inc()
	}
}

// instanceLoop executes fused batches on one engine instance.
func (rt *modelRuntime) instanceLoop(batches <-chan []*pending) {
	for batch := range batches {
		rt.runBatch(batch)
	}
}

func (rt *modelRuntime) runBatch(batch []*pending) {
	items := 0
	var inputs [][]float32
	for _, p := range batch {
		items += p.req.Items
		inputs = append(inputs, p.req.Inputs...)
	}
	// Stamp the execution start before inference so queue time is
	// measured wall time in the batcher, never inferred by subtracting
	// modeled compute from end-to-end time.
	execStart := time.Now()
	var st engine.InferStats
	var outputs [][]float32
	var err error
	if rt.cfg.Engine.Real != nil && len(inputs) > 0 {
		outputs, st, err = rt.cfg.Engine.InferTensors(inputs, rt.cfg.InputSize)
	} else {
		st, err = rt.cfg.Engine.Infer(items)
	}
	if err == nil && rt.cfg.TimeScale > 0 {
		time.Sleep(time.Duration(st.Seconds * rt.cfg.TimeScale * float64(time.Second)))
	}
	execEnd := time.Now()
	if rt.cfg.Trace != nil {
		end := time.Since(serveEpoch).Seconds()
		dur := st.Seconds
		rt.cfg.Trace.Add(trace.Span{
			Name:     fmt.Sprintf("batch(%d reqs, %d imgs)", len(batch), items),
			Track:    rt.cfg.Name,
			Start:    end - dur,
			Duration: dur,
			Args: map[string]any{
				"requests": len(batch),
				"items":    items,
				"failed":   err != nil,
			},
		})
	}
	rt.met.batches.Inc()
	// Compute latency: measured wall time of the batch execution when
	// the engine really runs or sleeps; the modeled estimate otherwise
	// (TimeScale 0 pure simulation executes in microseconds).
	computeSec := execEnd.Sub(execStart).Seconds()
	if rt.cfg.Engine.Real == nil && rt.cfg.TimeScale == 0 {
		computeSec = st.Seconds
	}
	rt.met.computeLat.Observe(computeSec)
	outOff := 0
	for _, p := range batch {
		if err != nil {
			rt.met.errors.Inc()
			p.err <- fmt.Errorf("serve: model %s: %w", rt.cfg.Name, err)
			continue
		}
		queueSec := execStart.Sub(p.enqueued).Seconds()
		if queueSec < 0 {
			queueSec = 0
		}
		resp := &Response{
			ID:             p.req.ID,
			Model:          rt.cfg.Name,
			Items:          p.req.Items,
			QueueSeconds:   queueSec,
			ComputeSeconds: st.Seconds,
			BatchSize:      items,
		}
		if outputs != nil && len(p.req.Inputs) > 0 {
			resp.Outputs = outputs[outOff : outOff+len(p.req.Inputs)]
			outOff += len(p.req.Inputs)
		}
		rt.met.queueLat.Observe(queueSec)
		rt.met.requests.Inc()
		rt.met.items.Add(int64(p.req.Items))
		p.done <- resp
	}
}

// Submit sends a request and blocks until its response, the context's
// cancellation, or server shutdown. A request whose context ends while
// it is still queued is withdrawn from the batcher and never occupies
// a dispatched batch slot; once a batch has claimed it, Submit waits
// for that batch's outcome.
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	if req.Items <= 0 && len(req.Inputs) == 0 {
		return nil, ErrEmptyRequest
	}
	if req.Items == 0 {
		req.Items = len(req.Inputs)
	}
	if len(req.Inputs) > 0 && req.Items != len(req.Inputs) {
		return nil, fmt.Errorf("%w: items=%d, inputs=%d", ErrItemsMismatch, req.Items, len(req.Inputs))
	}
	s.mu.Lock()
	rt, ok := s.models[req.Model]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrServerClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model)
	}
	if req.Items > rt.cfg.MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyItems, req.Items, rt.cfg.MaxBatch)
	}
	p := &pending{
		req:      req,
		enqueued: time.Now(),
		done:     make(chan *Response, 1),
		err:      make(chan error, 1),
	}
	rt.inflight.Add(1)
	select {
	case rt.queue <- p:
	case <-ctx.Done():
		rt.inflight.Add(-1)
		return nil, ctx.Err()
	case <-rt.closing:
		rt.inflight.Add(-1)
		return nil, ErrServerClosed
	}
	// Once enqueued, the request is guaranteed an outcome: the batcher
	// either claims it (response or backend error arrives) or the
	// shutdown path fails it. Queued work is drained, not abandoned, so
	// shutdown-in-progress is not a wait condition; only a fully
	// drained runtime (the enqueue raced past the batcher's exit) is.
	select {
	case resp := <-p.done:
		return resp, nil
	case err := <-p.err:
		return nil, err
	case <-ctx.Done():
		if p.cancel() {
			// Withdrawn before dispatch; the batcher will evict it.
			return nil, ctx.Err()
		}
		// A batch already claimed it; its outcome is imminent.
		select {
		case resp := <-p.done:
			return resp, nil
		case err := <-p.err:
			return nil, err
		}
	case <-rt.drained:
		if p.claim() {
			rt.inflight.Add(-1)
			return nil, ErrServerClosed
		}
		select {
		case resp := <-p.done:
			return resp, nil
		case err := <-p.err:
			return nil, err
		}
	}
}

// Models lists registered model names.
func (s *Server) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ModelConfigFor returns the configuration of a registered model.
func (s *Server) ModelConfigFor(name string) (ModelConfig, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.models[name]
	if !ok {
		return ModelConfig{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.cfg, nil
}

// StatsFor returns activity counters for a model.
func (s *Server) StatsFor(name string) (Stats, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	st := Stats{
		Model:          name,
		RequestsServed: rt.met.requests.Load(),
		ItemsServed:    rt.met.items.Load(),
		BatchesRun:     rt.met.batches.Load(),
	}
	if st.BatchesRun > 0 && rt.cfg.MaxBatch > 0 {
		st.MeanBatchFill = float64(st.ItemsServed) / float64(st.BatchesRun) / float64(rt.cfg.MaxBatch)
	}
	return st, nil
}

// MetricsFor returns a metrics snapshot for one model.
func (s *Server) MetricsFor(name string) (ModelMetrics, error) {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return ModelMetrics{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return rt.snapshot(), nil
}

// Metrics returns metrics snapshots for all models, sorted by name.
func (s *Server) Metrics() []ModelMetrics {
	s.mu.Lock()
	rts := make([]*modelRuntime, 0, len(s.models))
	for _, rt := range s.models {
		rts = append(rts, rt)
	}
	s.mu.Unlock()
	out := make([]ModelMetrics, 0, len(rts))
	for _, rt := range rts {
		out = append(out, rt.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

func (rt *modelRuntime) snapshot() ModelMetrics {
	return ModelMetrics{
		Model:          rt.cfg.Name,
		Requests:       rt.met.requests.Load(),
		Items:          rt.met.items.Load(),
		Batches:        rt.met.batches.Load(),
		Errors:         rt.met.errors.Load(),
		Cancelled:      rt.met.cancelled.Load(),
		QueueDepth:     rt.inflight.Load(),
		QueueLatency:   rt.met.queueLat.Summary(),
		ComputeLatency: rt.met.computeLat.Summary(),
	}
}

// Close stops the server gracefully: new submissions are rejected,
// requests already queued are dispatched and served within each
// model's DrainTimeout, and only stragglers past the deadline are
// failed with ErrServerClosed. Close blocks until every batcher and
// instance goroutine has exited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	rts := make([]*modelRuntime, 0, len(s.models))
	for _, rt := range s.models {
		rts = append(rts, rt)
	}
	s.mu.Unlock()
	// Start every model's drain concurrently, then wait on each.
	for _, rt := range rts {
		close(rt.closing)
	}
	var wg sync.WaitGroup
	for _, rt := range rts {
		wg.Add(1)
		go func(rt *modelRuntime) {
			defer wg.Done()
			rt.shutdown()
		}(rt)
	}
	wg.Wait()
}

// shutdown waits for the runtime's goroutines to drain queued work,
// aborting the drain if it outlives the configured timeout.
func (rt *modelRuntime) shutdown() {
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	grace := rt.cfg.DrainTimeout
	if grace < 0 {
		grace = 0
	}
	select {
	case <-done:
	case <-time.After(grace):
		close(rt.abort)
		<-done
	}
	// Fail anything that slipped into the queue after the batcher
	// exited; submitters racing Close also observe rt.closing, and
	// anything enqueued after this final sweep is claimed by its own
	// submitter via rt.drained.
	rt.failQueued()
	close(rt.drained)
}
