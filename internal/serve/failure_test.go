package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/tensor"
)

// failingBackend simulates a crashed real-compute backend.
type failingBackend struct{ calls int }

func (f *failingBackend) Forward(*tensor.Tensor) (*tensor.Tensor, error) {
	f.calls++
	return nil, errors.New("backend crashed")
}

func TestBackendFailurePropagatesToAllFusedRequests(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	fb := &failingBackend{}
	eng.Real = fb
	s := newTestServer(t, ModelConfig{
		Name: "crash", Engine: eng, MaxBatch: 16,
		QueueDelay: 20 * time.Millisecond, InputSize: 32,
	})
	in := make([]float32, 3*32*32)
	var wg sync.WaitGroup
	failures := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), &Request{Model: "crash", Inputs: [][]float32{in}})
			failures <- err
		}()
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		if err == nil {
			t.Error("request succeeded despite backend crash")
		} else if !strings.Contains(err.Error(), "backend crashed") {
			t.Errorf("error lost its cause: %v", err)
		}
	}
	// The batcher must keep running after the failure.
	if _, err := s.Submit(context.Background(), &Request{Model: "crash", Items: 2}); err != nil {
		t.Errorf("server wedged after backend failure: %v", err)
	}
}

func TestSlowClientContextTimeout(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	// A very long batching window holds the request in the queue.
	s := newTestServer(t, ModelConfig{
		Name: "slow", Engine: eng, MaxBatch: 64, QueueDelay: 10 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Submit(ctx, &Request{Model: "slow", Items: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected deadline exceeded, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout did not fire promptly")
	}
}

func TestMalformedHTTPRequests(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/v2/models/ViT_Tiny/infer", "{not json", http.StatusBadRequest},
		{"POST", "/v2/models/ViT_Tiny/infer", `{"items": -5}`, http.StatusBadRequest},
		{"POST", "/v2/models//infer", `{"items": 1}`, http.StatusNotFound},
		{"POST", "/v2/models/ViT_Tiny/predict", `{"items": 1}`, http.StatusNotFound},
		{"GET", "/v2/models/ghost/stats", "", http.StatusNotFound},
		{"GET", "/v2/models/ViT_Tiny/wrong", "", http.StatusNotFound},
	}
	for i, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("case %d (%s %s): status %d, want %d",
				i, c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Infer(ctx, models.NameViTTiny,
			InferRequestJSON{ID: fmt.Sprintf("q%d", i), Items: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats(ctx, models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestsServed != 6 {
		t.Errorf("stats served %d items, want 6", st.RequestsServed)
	}
	if st.BatchesRun < 1 || st.BatchesRun > 3 {
		t.Errorf("stats batches %d", st.BatchesRun)
	}
	if _, err := client.Stats(ctx, "ghost"); err == nil {
		t.Error("stats for unknown model succeeded")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if client.Ready(ctx) {
		t.Error("dead server reported ready")
	}
	if err := client.WaitReady(ctx); err == nil {
		t.Error("WaitReady succeeded against dead server")
	}
	if _, err := client.Models(ctx); err == nil {
		t.Error("Models succeeded against dead server")
	}
	if _, err := client.Infer(ctx, "m", InferRequestJSON{Items: 1}); err == nil {
		t.Error("Infer succeeded against dead server")
	}
	if _, err := client.Stats(ctx, "m"); err == nil {
		t.Error("Stats succeeded against dead server")
	}
}

func TestOOMViaOversizedExplicitMaxBatch(t *testing.T) {
	// A config whose MaxBatch exceeds the engine's memory limit lets a
	// fused batch OOM at execution time; the error must reach every
	// caller and the server must survive.
	eng, err := engine.New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: "oom", Engine: eng, MaxBatch: 128, // engine limit is 8
		QueueDelay: 20 * time.Millisecond,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), &Request{Model: "oom", Items: 16})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, engine.ErrOOM) {
			t.Errorf("expected OOM, got %v", err)
		}
	}
	// Small request still works afterwards.
	if _, err := s.Submit(context.Background(), &Request{Model: "oom", Items: 4}); err != nil {
		t.Errorf("server wedged after OOM: %v", err)
	}
}
