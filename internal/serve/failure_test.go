package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

// failingBackend simulates a crashed real-compute backend.
type failingBackend struct{ calls int }

func (f *failingBackend) Forward(*tensor.Tensor) (*tensor.Tensor, error) {
	f.calls++
	return nil, errors.New("backend crashed")
}

func TestBackendFailurePropagatesToAllFusedRequests(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	fb := &failingBackend{}
	eng.Real = fb
	s := newTestServer(t, ModelConfig{
		Name: "crash", Engine: eng, MaxBatch: 16,
		QueueDelay: 20 * time.Millisecond, InputSize: 32,
	})
	in := make([]float32, 3*32*32)
	var wg sync.WaitGroup
	failures := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), &Request{Model: "crash", Inputs: [][]float32{in}})
			failures <- err
		}()
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		if err == nil {
			t.Error("request succeeded despite backend crash")
		} else if !strings.Contains(err.Error(), "backend crashed") {
			t.Errorf("error lost its cause: %v", err)
		}
	}
	// The batcher must keep running after the failure.
	if _, err := s.Submit(context.Background(), &Request{Model: "crash", Items: 2}); err != nil {
		t.Errorf("server wedged after backend failure: %v", err)
	}
}

func TestSlowClientContextCancel(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	// A very long batching window holds the request in the queue. A
	// cancel (not a deadline — a context deadline would legitimately
	// close the batching window early) must withdraw it promptly.
	s := newTestServer(t, ModelConfig{
		Name: "slow", Engine: eng, MaxBatch: 64, QueueDelay: 10 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Submit(ctx, &Request{Model: "slow", Items: 1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("expected context cancelled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not fire promptly")
	}
}

func TestMalformedHTTPRequests(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/v2/models/ViT_Tiny/infer", "{not json", http.StatusBadRequest},
		{"POST", "/v2/models/ViT_Tiny/infer", `{"items": -5}`, http.StatusBadRequest},
		{"POST", "/v2/models/ViT_Tiny/infer", `{"items": 3, "inputs": [[0.1], [0.2]]}`, http.StatusBadRequest},
		{"POST", "/v2/models//infer", `{"items": 1}`, http.StatusNotFound},
		{"POST", "/v2/models/ViT_Tiny/predict", `{"items": 1}`, http.StatusNotFound},
		{"GET", "/v2/models/ghost/stats", "", http.StatusNotFound},
		{"GET", "/v2/models/ViT_Tiny/wrong", "", http.StatusNotFound},
	}
	for i, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("case %d (%s %s): status %d, want %d",
				i, c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Infer(ctx, models.NameViTTiny,
			InferRequestJSON{ID: fmt.Sprintf("q%d", i), Items: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats(ctx, models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	// requests_served is the deprecated wire alias for items served.
	if st.RequestsServed != 6 {
		t.Errorf("stats served %d items (deprecated field), want 6", st.RequestsServed)
	}
	if st.ItemsServed != 6 {
		t.Errorf("stats served %d items, want 6", st.ItemsServed)
	}
	if st.Requests != 3 {
		t.Errorf("stats served %d requests, want 3", st.Requests)
	}
	if st.BatchesRun < 1 || st.BatchesRun > 3 {
		t.Errorf("stats batches %d", st.BatchesRun)
	}
	if _, err := client.Stats(ctx, "ghost"); err == nil {
		t.Error("stats for unknown model succeeded")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if client.Ready(ctx) {
		t.Error("dead server reported ready")
	}
	if err := client.WaitReady(ctx); err == nil {
		t.Error("WaitReady succeeded against dead server")
	}
	if _, err := client.Models(ctx); err == nil {
		t.Error("Models succeeded against dead server")
	}
	if _, err := client.Infer(ctx, "m", InferRequestJSON{Items: 1}); err == nil {
		t.Error("Infer succeeded against dead server")
	}
	if _, err := client.Stats(ctx, "m"); err == nil {
		t.Error("Stats succeeded against dead server")
	}
}

// TestDrainTimeoutFailsStragglers verifies that Close's graceful drain
// gives up after DrainTimeout: batches dispatched in time are served,
// stragglers fail with ErrServerClosed, and Close still returns.
func TestDrainTimeoutFailsStragglers(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Each batch holds the single instance for ~80 ms, far past the
	// 40 ms drain budget.
	eng.Real = &slowBackend{inner: real, delay: 80 * time.Millisecond}
	s := newTestServer(t, ModelConfig{
		Name: "sluggish", Engine: eng, MaxBatch: 1, InputSize: 32,
		QueueDelay: time.Millisecond, DrainTimeout: 40 * time.Millisecond,
	})
	in := make([]float32, 3*32*32)
	const n = 8
	var wg sync.WaitGroup
	outcomes := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), &Request{Model: "sluggish", Inputs: [][]float32{in}})
			outcomes <- err
		}()
	}
	time.Sleep(30 * time.Millisecond) // first batch mid-execution
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the drain timeout")
	}
	wg.Wait()
	close(outcomes)
	served, failed := 0, 0
	for err := range outcomes {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrServerClosed):
			failed++
		default:
			t.Errorf("unexpected outcome: %v", err)
		}
	}
	if served == 0 {
		t.Error("drain served nothing despite in-flight batches")
	}
	if failed == 0 {
		t.Error("no straggler failed despite the expired drain timeout")
	}
	if served+failed != n {
		t.Errorf("outcomes %d+%d != %d submissions", served, failed, n)
	}
}

// TestCancelAfterDispatchStillGetsOutcome pins the claim semantics: a
// context that ends after a batch has claimed the request waits for
// the batch's outcome instead of abandoning an executing slot.
func TestCancelAfterDispatchStillGetsOutcome(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = &slowBackend{inner: real, delay: 60 * time.Millisecond}
	s := newTestServer(t, ModelConfig{
		Name: "claimed", Engine: eng, MaxBatch: 4, InputSize: 32,
		QueueDelay: time.Millisecond,
	})
	in := make([]float32, 3*32*32)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	resp, err := s.Submit(ctx, &Request{Model: "claimed", Inputs: [][]float32{in}})
	if err != nil {
		t.Fatalf("claimed request lost its outcome: %v", err)
	}
	if len(resp.Outputs) != 1 {
		t.Errorf("outputs %v", resp.Outputs)
	}
	m, err := s.MetricsFor("claimed")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cancelled != 0 {
		t.Errorf("cancelled counter %d for a claimed request, want 0", m.Cancelled)
	}
}

func TestOOMViaOversizedExplicitMaxBatch(t *testing.T) {
	// A config whose MaxBatch exceeds the engine's memory limit lets a
	// fused batch OOM at execution time; the error must reach every
	// caller and the server must survive.
	eng, err := engine.New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: "oom", Engine: eng, MaxBatch: 128, // engine limit is 8
		QueueDelay: 20 * time.Millisecond,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), &Request{Model: "oom", Items: 16})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, engine.ErrOOM) {
			t.Errorf("expected OOM, got %v", err)
		}
	}
	// Small request still works afterwards.
	if _, err := s.Submit(context.Background(), &Request{Model: "oom", Items: 4}); err != nil {
		t.Errorf("server wedged after OOM: %v", err)
	}
}
