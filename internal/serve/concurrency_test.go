package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

// slowBackend wraps a real forwarder with a fixed per-batch delay, so
// tests can hold an instance busy for a controlled amount of time.
type slowBackend struct {
	inner engine.Forwarder
	delay time.Duration
}

func (s *slowBackend) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	time.Sleep(s.delay)
	return s.inner.Forward(x)
}

// TestCancelledRequestEvictedBeforeDispatch verifies the acceptance
// criterion that a request whose context is cancelled while waiting in
// the batcher never occupies a dispatched batch slot.
func TestCancelledRequestEvictedBeforeDispatch(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.QueueDelay = 150 * time.Millisecond
	s := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, &Request{ID: "doomed", Model: models.NameViTTiny, Items: 3})
		errc <- err
	}()
	// Let the request reach the batcher's fill window, then cancel it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit returned %v", err)
	}

	// A second request fused by the same window must not share its
	// batch with the evicted request's items.
	resp, err := s.Submit(context.Background(), &Request{ID: "live", Model: models.NameViTTiny, Items: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.BatchSize != 2 {
		t.Errorf("batch size %d: cancelled request occupied a dispatched slot", resp.BatchSize)
	}
	m, err := s.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cancelled != 1 {
		t.Errorf("cancelled counter %d, want 1", m.Cancelled)
	}
	if m.Requests != 1 || m.Items != 2 {
		t.Errorf("metrics %+v: want 1 request / 2 items served", m)
	}
}

// TestGracefulDrainServesQueuedRequests verifies that Close dispatches
// and serves requests already queued instead of failing them.
func TestGracefulDrainServesQueuedRequests(t *testing.T) {
	cfg := tinyConfig(t)
	// A long window holds submitted requests inside the batcher until
	// Close starts the drain.
	cfg.QueueDelay = 10 * time.Second
	cfg.DrainTimeout = 5 * time.Second
	s := newTestServer(t, cfg)

	const n = 6
	var wg sync.WaitGroup
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(),
				&Request{ID: fmt.Sprintf("q%d", i), Model: models.NameViTTiny, Items: 2})
			results <- err
		}(i)
	}
	// Give the submissions time to enqueue, then close while they are
	// all still waiting on the 10 s batching window.
	time.Sleep(50 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("queued request failed during graceful drain: %v", err)
		}
	}
	st, err := s.StatsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestsServed != n {
		t.Errorf("drain served %d requests, want %d", st.RequestsServed, n)
	}
}

// TestSubmitCloseRace hammers Submit concurrently with Close under the
// race detector: every submission must resolve to a response or
// ErrServerClosed, and nothing may hang.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := NewServer()
		eng, err := engine.New(hw.A100(), models.NameViTTiny)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register(ModelConfig{
			Name: "m", Engine: eng, MaxBatch: 16,
			QueueDelay: 500 * time.Microsecond, Instances: 2,
		}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		outcomes := make(chan error, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := s.Submit(context.Background(), &Request{Model: "m", Items: 1 + i%3})
				outcomes <- err
			}(i)
		}
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		s.Close()
		wg.Wait()
		close(outcomes)
		for err := range outcomes {
			if err != nil && !errors.Is(err, ErrServerClosed) {
				t.Errorf("round %d: unexpected submit outcome: %v", round, err)
			}
		}
	}
}

// TestCancellationDuringBatchingRace mixes cancelling and patient
// submitters under -race and checks the metrics ledger balances.
func TestCancellationDuringBatchingRace(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.QueueDelay = 2 * time.Millisecond
	cfg.Instances = 2
	s := newTestServer(t, cfg)

	var wg sync.WaitGroup
	var served, cancelled metricsLedger
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*500*time.Microsecond)
				defer cancel()
			}
			resp, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Items: 1 + i%4})
			switch {
			case err == nil:
				served.add(int64(resp.Items))
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				cancelled.add(1)
			case errors.Is(err, ErrDeadlineExpired):
				// The context deadline doubles as the request's SLO
				// deadline, so the batcher may shed it first.
				cancelled.add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	m, err := s.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Items != served.load() {
		t.Errorf("server items %d != client-observed served items %d", m.Items, served.load())
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after quiescence, want 0", m.QueueDepth)
	}
	if m.QueueLatency.N != int(m.Requests) {
		t.Errorf("queue latency samples %d != requests %d", m.QueueLatency.N, m.Requests)
	}
}

type metricsLedger struct {
	mu sync.Mutex
	v  int64
}

func (l *metricsLedger) add(n int64) {
	l.mu.Lock()
	l.v += n
	l.mu.Unlock()
}

func (l *metricsLedger) load() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.v
}

// TestMixedBatchPartitioned is the regression test for fusing
// tensor-carrying and items-only requests on a real-backend model: the
// batcher must partition them into separate homogeneous batches.
func TestMixedBatchPartitioned(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	const classes = 4
	real, err := models.NewViTModel(models.MicroViTConfig(classes), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = real
	s := newTestServer(t, ModelConfig{
		Name: "mix", Engine: eng, MaxBatch: 16,
		QueueDelay: 60 * time.Millisecond, InputSize: 32,
	})
	in := make([]float32, 3*32*32)
	var wg sync.WaitGroup
	var withInputs, itemsOnly *Response
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		withInputs, errA = s.Submit(context.Background(),
			&Request{ID: "tensors", Model: "mix", Inputs: [][]float32{in, in}})
	}()
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond) // land inside the same batching window
		itemsOnly, errB = s.Submit(context.Background(),
			&Request{ID: "modeled", Model: "mix", Items: 3})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("mixed-kind submissions failed: %v / %v", errA, errB)
	}
	if len(withInputs.Outputs) != 2 || len(withInputs.Outputs[0]) != classes {
		t.Errorf("tensor request outputs %v", withInputs.Outputs)
	}
	if itemsOnly.Outputs != nil {
		t.Errorf("items-only request got outputs %v", itemsOnly.Outputs)
	}
	// Homogeneous partitioning: neither batch may contain the other
	// request's items.
	if withInputs.BatchSize != 2 {
		t.Errorf("tensor batch size %d, want 2", withInputs.BatchSize)
	}
	if itemsOnly.BatchSize != 3 {
		t.Errorf("items-only batch size %d, want 3", itemsOnly.BatchSize)
	}
}

func TestItemsInputsMismatchRejected(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	in := make([]float32, 3*32*32)
	_, err := s.Submit(context.Background(),
		&Request{Model: models.NameViTTiny, Items: 3, Inputs: [][]float32{in, in}})
	if !errors.Is(err, ErrItemsMismatch) {
		t.Errorf("mismatched items/inputs: %v", err)
	}
}
