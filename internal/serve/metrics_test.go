package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
)

// TestMetricsEndpointReconcilesWithStats drives traffic over HTTP and
// checks that GET /v2/metrics agrees with StatsFor and the stats
// endpoint on every shared counter.
func TestMetricsEndpointReconcilesWithStats(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	const n = 5
	for i := 0; i < n; i++ {
		if _, err := client.Infer(ctx, models.NameViTTiny,
			InferRequestJSON{ID: fmt.Sprintf("m%d", i), Items: 1 + i%3}); err != nil {
			t.Fatal(err)
		}
	}
	mj, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mj.Models) != 1 {
		t.Fatalf("metrics models %v", mj.Models)
	}
	m := mj.Models[0]
	st, err := s.StatsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != st.Model || m.Requests != st.RequestsServed ||
		m.Items != st.ItemsServed || m.Batches != st.BatchesRun {
		t.Errorf("metrics %+v do not reconcile with stats %+v", m, st)
	}
	if m.Requests != n {
		t.Errorf("requests %d, want %d", m.Requests, n)
	}
	if m.Errors != 0 || m.Cancelled != 0 || m.QueueDepth != 0 {
		t.Errorf("unexpected failure counters in %+v", m)
	}
	if m.QueueMs.Count != n || m.ComputeMs.Count != int(m.Batches) {
		t.Errorf("latency sample counts %+v", m)
	}
	for _, l := range []LatencySummaryJSON{m.QueueMs, m.ComputeMs} {
		if l.P50Ms > l.P95Ms || l.P95Ms > l.P99Ms || l.P99Ms > l.MaxMs {
			t.Errorf("percentiles out of order: %+v", l)
		}
	}
	if m.ComputeMs.P50Ms <= 0 {
		t.Errorf("compute p50 %v, want > 0", m.ComputeMs.P50Ms)
	}
}

// TestQueueTimeExcludesRealComputeTime is the regression test for the
// queue-accounting bug: with TimeScale == 0 and a real backend, queue
// time used to absorb the backend's entire wall time.
func TestQueueTimeExcludesRealComputeTime(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	const delay = 60 * time.Millisecond
	eng.Real = &slowBackend{inner: real, delay: delay}
	s := newTestServer(t, ModelConfig{
		Name: "slowreal", Engine: eng, MaxBatch: 4, InputSize: 32,
		QueueDelay: time.Millisecond,
	})
	in := make([]float32, 3*32*32)
	resp, err := s.Submit(context.Background(), &Request{Model: "slowreal", Inputs: [][]float32{in}})
	if err != nil {
		t.Fatal(err)
	}
	// The lone request waits only the 1 ms batching window; before the
	// fix it was charged the backend's 60 ms as queueing.
	if resp.QueueSeconds >= delay.Seconds()/2 {
		t.Errorf("queue time %.1f ms includes real compute time", resp.QueueSeconds*1000)
	}
	m, err := s.MetricsFor("slowreal")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ComputeLatency.P50; got < delay.Seconds() {
		t.Errorf("measured compute p50 %.1f ms, want >= %.0f ms", got*1000, delay.Seconds()*1000)
	}
	if got := m.QueueLatency.P50; got >= delay.Seconds()/2 {
		t.Errorf("queue latency p50 %.1f ms includes compute", got*1000)
	}
}

// TestMetricsErrorCounting checks the error counter via a crashing
// backend.
func TestMetricsErrorCounting(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = &failingBackend{}
	s := newTestServer(t, ModelConfig{
		Name: "crashy", Engine: eng, MaxBatch: 8, InputSize: 32,
		QueueDelay: time.Millisecond,
	})
	in := make([]float32, 3*32*32)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), &Request{Model: "crashy", Inputs: [][]float32{in}}); err == nil {
			t.Fatal("crashing backend produced a response")
		}
	}
	m, err := s.MetricsFor("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 3 || m.Requests != 0 || m.Items != 0 {
		t.Errorf("error accounting %+v", m)
	}
	if m.Batches == 0 {
		t.Error("failed batches not counted")
	}
}

func TestMetricsForUnknownModel(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	if _, err := s.MetricsFor("ghost"); err == nil {
		t.Error("metrics for unknown model succeeded")
	}
	if got := len(s.Metrics()); got != 1 {
		t.Errorf("metrics list length %d, want 1", got)
	}
}
