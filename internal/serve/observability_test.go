package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/trace"
)

// postInfer sends one infer request to a handler and returns the
// recorder and decoded body.
func postInfer(t *testing.T, h http.Handler, model string, body InferRequestJSON, hdr map[string]string) (*httptest.ResponseRecorder, InferResponseJSON) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, FormatInferPath(model), bytes.NewReader(payload))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out InferResponseJSON
	if rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
			t.Fatalf("decode infer response: %v", err)
		}
	}
	return rec, out
}

func TestInferAssignsAndEchoesRequestID(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	h := s.Handler()

	// No id anywhere: the server generates one and echoes it in both
	// the header and the body.
	rec, out := postInfer(t, h, models.NameViTTiny, InferRequestJSON{Items: 1}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get(RequestIDHeader)
	if id == "" {
		t.Fatal("no X-Request-ID on response")
	}
	if out.ID != id {
		t.Errorf("body id %q != header id %q", out.ID, id)
	}

	// Header-only id: adopted.
	rec, out = postInfer(t, h, models.NameViTTiny, InferRequestJSON{Items: 1},
		map[string]string{RequestIDHeader: "hdr-42"})
	if got := rec.Header().Get(RequestIDHeader); got != "hdr-42" || out.ID != "hdr-42" {
		t.Errorf("header id not adopted: header %q body %q", got, out.ID)
	}

	// Body id wins over header.
	rec, out = postInfer(t, h, models.NameViTTiny, InferRequestJSON{ID: "body-7", Items: 1},
		map[string]string{RequestIDHeader: "hdr-42"})
	if got := rec.Header().Get(RequestIDHeader); got != "body-7" || out.ID != "body-7" {
		t.Errorf("body id not preferred: header %q body %q", got, out.ID)
	}
}

func TestInferTimingsBreakdown(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	rec, out := postInfer(t, s.Handler(), models.NameViTTiny, InferRequestJSON{Items: 2}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	tm := out.Timings
	if tm == nil {
		t.Fatal("response has no timings_ms")
	}
	if tm.ComputeMs <= 0 {
		t.Errorf("compute_ms %v, want > 0", tm.ComputeMs)
	}
	for name, v := range map[string]float64{
		"admit_ms": tm.AdmitMs, "queue_ms": tm.QueueMs,
		"batch_assembly_ms": tm.BatchAssemblyMs, "total_ms": tm.TotalMs,
	} {
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	// The legacy queue_ms (enqueue to execution start) decomposes into
	// lane wait + batch assembly.
	if got, want := tm.QueueMs+tm.BatchAssemblyMs, out.QueueMs; got < want-0.001 || got > want+0.001 {
		t.Errorf("stage decomposition %v + %v != queue_ms %v", tm.QueueMs, tm.BatchAssemblyMs, want)
	}
	// Total covers at least the wall-clock stages (compute is modeled
	// in pure simulation, so it is excluded from this bound).
	if tm.TotalMs < tm.AdmitMs+tm.QueueMs+tm.BatchAssemblyMs {
		t.Errorf("total_ms %v below stage sum", tm.TotalMs)
	}
}

func TestServerPrometheusEndpoint(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	h := s.Handler()
	for i := 0; i < 5; i++ {
		if rec, _ := postInfer(t, h, models.NameViTTiny, InferRequestJSON{Items: 1}, nil); rec.Code != http.StatusOK {
			t.Fatalf("HTTP %d", rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("content type %q", ct)
	}
	out := rec.Body.String()
	label := fmt.Sprintf("{model=%q}", models.NameViTTiny)
	for _, want := range []string{
		"# TYPE harvest_requests_total counter",
		"harvest_requests_total" + label + " 5",
		"# TYPE harvest_queue_depth gauge",
		"# TYPE harvest_queue_latency_seconds histogram",
		"harvest_queue_latency_seconds_count" + label + " 5",
		"harvest_compute_latency_seconds_bucket",
		`le="+Inf"`,
		"harvest_class_queue_latency_seconds_count{model=\"" + models.NameViTTiny + "\",class=\"online\"} 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestServerTraceEndpoint(t *testing.T) {
	s := NewServer()
	t.Cleanup(s.Close)
	s.SetTrace(trace.NewRing(256))
	if err := s.Register(tinyConfig(t)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 3; i++ {
		body := InferRequestJSON{ID: fmt.Sprintf("trace-%d", i), Items: 1}
		if rec, _ := postInfer(t, h, models.NameViTTiny, body, nil); rec.Code != http.StatusOK {
			t.Fatalf("HTTP %d", rec.Code)
		}
	}
	// The recorded timeline is consistent: non-negative durations, no
	// per-track overlap — including in pure simulation (TimeScale 0).
	if err := s.Trace().Validate(); err != nil {
		t.Fatalf("server trace invalid: %v", err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v2/trace", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var events []map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	tracks := map[string]bool{}
	stages := map[string]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if name, ok := args["name"].(string); ok {
					tracks[name] = true
				}
			}
		case "X":
			if name, ok := ev["name"].(string); ok {
				stages[name] = true
			}
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Errorf("event %v has negative/missing ts", ev["name"])
			}
		}
	}
	if !tracks["req:trace-0"] {
		t.Errorf("no request track in trace; tracks: %v", tracks)
	}
	for _, stage := range []string{"admit", "queue", "batch-assembly", "compute", "respond"} {
		if !stages[stage] {
			t.Errorf("stage %q missing from trace; stages: %v", stage, stages)
		}
	}
}

// TestRouterRequestIDPropagation drives a request through the real
// router and replica HTTP stack and asserts one id follows it end to
// end: assigned at the router, carried to the replica (which records
// it in its trace), and echoed back to the client.
func TestRouterRequestIDPropagation(t *testing.T) {
	srv, hs := newTestReplica(t, 0)
	defer hs.Close()
	defer srv.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	rec, out := postInfer(t, router.Handler(), models.NameViTTiny, InferRequestJSON{Items: 1}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get(RequestIDHeader)
	if id == "" {
		t.Fatal("router response has no X-Request-ID")
	}
	if out.ID != id {
		t.Errorf("replica body id %q != router header id %q", out.ID, id)
	}
	// The router's own trace saw the same request id.
	found := false
	for _, sp := range router.Trace().Spans() {
		if sp.Track == "req:"+id && strings.HasPrefix(sp.Name, "route:") {
			found = true
			if sp.Args["outcome"] != "ok" {
				t.Errorf("route span outcome %v", sp.Args["outcome"])
			}
		}
	}
	if !found {
		t.Errorf("router trace has no route span on track req:%s", id)
	}
	if err := router.Trace().Validate(); err != nil {
		t.Errorf("router trace invalid: %v", err)
	}
}

// fakeReplica serves canned /v2/metrics (healthy probe included), for
// aggregation tests with controlled distributions.
func fakeReplica(t *testing.T, m MetricsJSON) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

// observeN records n observations around the given latency.
func observeN(r *metrics.LatencyRecorder, n int, seconds float64) {
	for i := 0; i < n; i++ {
		r.Observe(seconds * (1 + float64(i%10)/1000))
	}
}

// TestRouterMergesPercentilesExactly is the regression test for the
// router's percentile aggregation: two replicas with skewed latency
// distributions (one fast, one slow) must merge to the percentiles of
// the combined distribution. The old count-weighted mean of per-replica
// p99s lands an order of magnitude below the true merged tail and must
// fail this test.
func TestRouterMergesPercentilesExactly(t *testing.T) {
	var fast, slow, combined metrics.LatencyRecorder
	observeN(&fast, 900, 0.001)
	observeN(&slow, 100, 1.0)
	observeN(&combined, 900, 0.001)
	observeN(&combined, 100, 1.0)

	mkMetrics := func(r *metrics.LatencyRecorder, n int64) MetricsJSON {
		return MetricsJSON{Models: []ModelMetricsJSON{{
			Model:    models.NameViTTiny,
			Requests: n,
			QueueMs:  histToJSON(r.Snapshot()),
		}}}
	}
	fastRep := fakeReplica(t, mkMetrics(&fast, 900))
	slowRep := fakeReplica(t, mkMetrics(&slow, 100))

	router, err := NewRouter([]string{fastRep.URL, slowRep.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	agg := router.Metrics(context.Background())
	if len(agg.Models) != 1 {
		t.Fatalf("aggregated models: %+v", agg.Models)
	}
	got := agg.Models[0].QueueMs
	exact := combined.Snapshot()
	wantP99 := exact.Quantile(99) * 1000
	if got.P99Ms != wantP99 {
		t.Errorf("merged p99 %v ms, want exact %v ms", got.P99Ms, wantP99)
	}
	if got.Count != 1000 {
		t.Errorf("merged count %d, want 1000", got.Count)
	}
	if got.MaxMs != exact.Max*1000 || got.MinMs != exact.Min*1000 {
		t.Errorf("merged extremes [%v, %v] ms, want [%v, %v]", got.MinMs, got.MaxMs, exact.Min*1000, exact.Max*1000)
	}
	// The true merged p99 sits in the slow second: the weighted-mean
	// answer (~0.9*1ms + 0.1*1000ms ≈ 100ms) must be far from it.
	fastP99 := fast.Snapshot().Quantile(99) * 1000
	slowP99 := slow.Snapshot().Quantile(99) * 1000
	weightedMean := 0.9*fastP99 + 0.1*slowP99
	if wantP99 < 500 {
		t.Fatalf("merged p99 %v ms, want deep in the slow tail", wantP99)
	}
	if diff := wantP99 - weightedMean; diff < wantP99/2 {
		t.Fatalf("weighted mean %v too close to truth %v; regression test is vacuous", weightedMean, wantP99)
	}
	// Buckets survive the merge, so a second aggregation tier (router
	// of routers) could merge exactly again.
	if len(got.Buckets) != metrics.NumLatencyBuckets {
		t.Errorf("merged summary lost its buckets: %d", len(got.Buckets))
	}
}

func TestRouterPrometheusEndpoint(t *testing.T) {
	srv, hs := newTestReplica(t, 0)
	defer hs.Close()
	defer srv.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	h := router.Handler()
	for i := 0; i < 3; i++ {
		if rec, _ := postInfer(t, h, models.NameViTTiny, InferRequestJSON{Items: 1}, nil); rec.Code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"harvest_router_requests_total 3",
		"# TYPE harvest_router_latency_seconds histogram",
		"harvest_router_latency_seconds_count 3",
		"# TYPE harvest_replica_healthy gauge",
		`harvest_replica_healthy{replica=`,
		"harvest_replica_ejections_total{replica=",
		"harvest_queue_latency_seconds_count{model=\"" + models.NameViTTiny + "\"} 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
}

func TestTraceEndpointDisabledRouterStillServes(t *testing.T) {
	srv, hs := newTestReplica(t, 0)
	defer hs.Close()
	defer srv.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool(), TraceCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if router.Trace() != nil {
		t.Fatal("negative TraceCapacity should disable tracing")
	}
	req := httptest.NewRequest(http.MethodGet, "/v2/trace", nil)
	rec := httptest.NewRecorder()
	router.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var events []any
	if err := json.NewDecoder(rec.Body).Decode(&events); err != nil && rec.Body.Len() > 0 {
		t.Fatalf("disabled trace endpoint body not JSON: %v", err)
	}
}

// TestReplicaStageTraceThroughRouter exercises the full stack — router
// in front of a traced replica — and asserts the replica's trace holds
// the request's stage spans on the propagated id and validates.
func TestReplicaStageTraceThroughRouter(t *testing.T) {
	rec := trace.NewRing(DefaultTraceCapacity)
	cfg := tinyConfig(t)
	cfg.Trace = rec
	srv := newTestServer(t, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	httpRec, _ := postInfer(t, router.Handler(), models.NameViTTiny,
		InferRequestJSON{ID: "e2e-1", Items: 1}, nil)
	if httpRec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", httpRec.Code, httpRec.Body)
	}
	if got := httpRec.Header().Get(RequestIDHeader); got != "e2e-1" {
		t.Errorf("router echoed id %q, want e2e-1", got)
	}
	// Give the replica's respond span a moment (written after the
	// response body).
	deadline := time.Now().Add(time.Second)
	stages := map[string]bool{}
	for time.Now().Before(deadline) {
		stages = map[string]bool{}
		for _, sp := range rec.Spans() {
			if sp.Track == "req:e2e-1" {
				stages[sp.Name] = true
			}
		}
		if len(stages) >= 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, stage := range []string{"admit", "queue", "batch-assembly", "compute", "respond"} {
		if !stages[stage] {
			t.Errorf("replica trace missing stage %q for propagated id; got %v", stage, stages)
		}
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("replica trace invalid: %v", err)
	}
}
