package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
)

// waitQueueDepth polls a model's queue depth until it reaches want.
func waitQueueDepth(t *testing.T, s *Server, model string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m, err := s.MetricsFor(model)
		if err != nil {
			t.Fatal(err)
		}
		if m.QueueDepth == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d", want)
}

// TestQueueFullShedsImmediately pins the admission-control contract: a
// full queue rejects with ErrOverloaded without blocking, the shed
// request is counted, and graceful drain still serves everything that
// was admitted.
func TestQueueFullShedsImmediately(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.QueueDelay = 10 * time.Second // hold admitted work in the batcher
	cfg.MaxQueueDepth = 2
	s := newTestServer(t, cfg)

	const admitted = 2
	var wg sync.WaitGroup
	results := make(chan error, admitted)
	for i := 0; i < admitted; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(),
				&Request{ID: fmt.Sprintf("a%d", i), Model: models.NameViTTiny, Items: 1})
			results <- err
		}(i)
	}
	waitQueueDepth(t, s, models.NameViTTiny, admitted)

	start := time.Now()
	_, err := s.Submit(context.Background(), &Request{Model: models.NameViTTiny, Items: 1})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("overloaded rejection blocked instead of failing fast")
	}
	m, err := s.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed != 1 {
		t.Errorf("shed counter %d, want 1", m.Shed)
	}

	// Drain: everything admitted is served, the shed request is not.
	s.Close()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("admitted request failed during drain: %v", err)
		}
	}
	st, err := s.StatsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.RequestsServed != admitted {
		t.Errorf("drain served %d requests, want %d", st.RequestsServed, admitted)
	}
	if _, err := s.Submit(context.Background(), &Request{Model: models.NameViTTiny, Items: 1}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("post-close submit returned %v, want ErrServerClosed", err)
	}
}

// TestDeadlineExpiredEvictedWithoutBatchSlot verifies that a request
// whose deadline cannot be met is shed with ErrDeadlineExpired and
// never occupies a dispatched batch slot, while deadline-free requests
// in the same window are served.
func TestDeadlineExpiredEvictedWithoutBatchSlot(t *testing.T) {
	// Jetson ViT_Base at TimeScale 1 models tens of milliseconds per
	// batch, so a ~2 ms deadline is a guaranteed miss.
	eng, err := engine.New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: "rt", Engine: eng, MaxBatch: 8,
		QueueDelay: 30 * time.Millisecond, TimeScale: 1,
	})

	doomed := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), &Request{
			ID: "doomed", Model: "rt", Items: 1,
			Class: ClassRealtime, Deadline: time.Now().Add(2 * time.Millisecond),
		})
		doomed <- err
	}()
	time.Sleep(5 * time.Millisecond)
	resp, err := s.Submit(context.Background(), &Request{ID: "patient", Model: "rt", Items: 2})
	if err != nil {
		t.Fatalf("deadline-free request failed: %v", err)
	}
	if resp.BatchSize != 2 {
		t.Errorf("batch size %d: expired request occupied a dispatched slot", resp.BatchSize)
	}
	if err := <-doomed; !errors.Is(err, ErrDeadlineExpired) {
		t.Errorf("doomed request returned %v, want ErrDeadlineExpired", err)
	}
	m, err := s.MetricsFor("rt")
	if err != nil {
		t.Fatal(err)
	}
	if m.Expired != 1 {
		t.Errorf("expired counter %d, want 1", m.Expired)
	}
	if m.Requests != 1 || m.Items != 2 {
		t.Errorf("metrics %+v: want exactly the patient request served", m)
	}
}

// TestRealtimeBudgetAppliesByDefault verifies the class-to-SLO mapping:
// a realtime request with no explicit deadline inherits the model's
// realtime budget and is shed once that budget is unmeetable.
func TestRealtimeBudgetAppliesByDefault(t *testing.T) {
	eng, err := engine.New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	// Budget far below the modeled Jetson ViT_Base batch latency at
	// TimeScale 1: the implicit deadline can never be met.
	s := newTestServer(t, ModelConfig{
		Name: "rt", Engine: eng, MaxBatch: 8,
		QueueDelay: time.Millisecond, TimeScale: 1,
		RealtimeBudget: 2 * time.Millisecond,
	})
	_, err = s.Submit(context.Background(), &Request{Model: "rt", Items: 1, Class: ClassRealtime})
	if !errors.Is(err, ErrDeadlineExpired) {
		t.Errorf("realtime request returned %v, want ErrDeadlineExpired via class budget", err)
	}
	// Offline class carries no implicit budget and is served.
	if _, err := s.Submit(context.Background(), &Request{Model: "rt", Items: 1, Class: ClassOffline}); err != nil {
		t.Errorf("offline request failed: %v", err)
	}
}

// TestPriorityOrderingUnderSustainedOverload holds the single instance
// busy, queues offline work first and realtime work after, and checks
// that the realtime lane is dispatched ahead of the offline backlog.
func TestPriorityOrderingUnderSustainedOverload(t *testing.T) {
	eng, err := engine.New(hw.Jetson(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = &slowBackend{inner: real, delay: 250 * time.Millisecond}
	s := newTestServer(t, ModelConfig{
		Name: "lanes", Engine: eng, MaxBatch: 1, InputSize: 32,
		QueueDelay: time.Millisecond, TimeScale: 1,
		RealtimeBudget: -1, // isolate lane priority from deadline shedding
	})

	var seq atomic.Int64
	var mu sync.Mutex
	positions := map[Class][]int64{}
	var wg sync.WaitGroup
	submit := func(class Class, id string) {
		defer wg.Done()
		_, err := s.Submit(context.Background(),
			&Request{ID: id, Model: "lanes", Items: 1, Class: class})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			return
		}
		pos := seq.Add(1)
		mu.Lock()
		positions[class] = append(positions[class], pos)
		mu.Unlock()
	}

	// Blocker: a tensor request that holds the instance ~250 ms while
	// the lanes fill up.
	in := make([]float32, 3*32*32)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(),
			&Request{ID: "blocker", Model: "lanes", Inputs: [][]float32{in}}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	time.Sleep(30 * time.Millisecond)

	const perClass = 10
	for i := 0; i < perClass; i++ {
		wg.Add(1)
		go submit(ClassOffline, fmt.Sprintf("off%d", i))
	}
	time.Sleep(40 * time.Millisecond) // offline fully enqueued first
	for i := 0; i < perClass; i++ {
		wg.Add(1)
		go submit(ClassRealtime, fmt.Sprintf("rt%d", i))
	}
	wg.Wait()

	mean := func(xs []int64) float64 {
		var sum int64
		for _, x := range xs {
			sum += x
		}
		return float64(sum) / float64(len(xs))
	}
	rt, off := positions[ClassRealtime], positions[ClassOffline]
	if len(rt) != perClass || len(off) != perClass {
		t.Fatalf("served %d realtime / %d offline, want %d each", len(rt), len(off), perClass)
	}
	if mean(rt) >= mean(off) {
		t.Errorf("realtime completed at mean position %.1f, offline at %.1f: "+
			"priority lanes ineffective (realtime should finish first despite arriving last)",
			mean(rt), mean(off))
	}
	m, err := s.MetricsFor("lanes")
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed != 0 || m.Expired != 0 {
		t.Errorf("unexpected shedding during priority test: %+v", m)
	}
	if got := len(m.ClassQueueLatency); got < 2 {
		t.Errorf("per-class queue latency has %d classes, want >= 2", got)
	}
}

// TestHTTPOverloadEndToEnd is the acceptance scenario: sustained
// offered load far above capacity at TimeScale > 0. The server must
// shed excess work with HTTP 429 + Retry-After instead of blocking,
// evict unmeetable deadlines with 504, keep the outcome ledger exact,
// and keep served realtime queue latency within the deadline.
func TestHTTPOverloadEndToEnd(t *testing.T) {
	eng, err := engine.New(hw.Jetson(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: "edge", Engine: eng, MaxBatch: 4,
		QueueDelay: 2 * time.Millisecond, TimeScale: 5,
		MaxQueueDepth: 4,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 40
	const deadlineMs = 50
	var served, shed, expired, retryAfterOK atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"id":"o%d","items":1,"class":"offline"}`, i)
			if i%2 == 0 {
				body = fmt.Sprintf(`{"id":"r%d","items":1,"class":"realtime","deadline_ms":%d}`, i, deadlineMs)
			}
			resp, err := http.Post(ts.URL+FormatInferPath("edge"), "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if ra := resp.Header.Get("Retry-After"); ra != "" && ra != "0" {
					retryAfterOK.Add(1)
				}
			case http.StatusGatewayTimeout:
				expired.Add(1)
			default:
				t.Errorf("request %d: unexpected status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if shed.Load() == 0 {
		t.Error("no request shed despite offered load far above MaxQueueDepth")
	}
	if retryAfterOK.Load() != shed.Load() {
		t.Errorf("%d of %d 429 responses carried a Retry-After hint", retryAfterOK.Load(), shed.Load())
	}
	if total := served.Load() + shed.Load() + expired.Load(); total != n {
		t.Errorf("outcome ledger %d served + %d shed + %d expired != %d submitted",
			served.Load(), shed.Load(), expired.Load(), n)
	}
	m, err := s.MetricsFor("edge")
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed != shed.Load() || m.Expired != expired.Load() || m.Requests != served.Load() {
		t.Errorf("server metrics %+v disagree with client outcomes (%d/%d/%d)",
			m, served.Load(), shed.Load(), expired.Load())
	}
	// Admitted realtime requests must meet their SLO: shedding and
	// deadline eviction keep served realtime queue latency within the
	// deadline budget.
	if sum, ok := m.ClassQueueLatency[ClassRealtime.String()]; ok {
		if p99 := sum.P99 * 1000; p99 > deadlineMs {
			t.Errorf("served realtime p99 queue latency %.2f ms exceeds the %d ms deadline", p99, deadlineMs)
		}
	}
}

// TestHTTPBodyLimit verifies the infer endpoint caps request bodies and
// answers 413 on overflow.
func TestHTTPBodyLimit(t *testing.T) {
	s := newTestServer(t, tinyConfig(t)) // items-only model: ~1 MiB limit
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	huge := strings.Repeat("0.123456,", 1<<18)
	body := fmt.Sprintf(`{"items":1,"inputs":[[%s0.1]]}`, huge)
	resp, err := http.Post(ts.URL+FormatInferPath(models.NameViTTiny), "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A normal request still fits comfortably.
	resp2, err := http.Post(ts.URL+FormatInferPath(models.NameViTTiny), "application/json",
		strings.NewReader(`{"items":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("normal request after limit check: status %d", resp2.StatusCode)
	}
}

// TestHTTPBadClassRejected verifies class parsing surfaces as 400.
func TestHTTPBadClassRejected(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+FormatInferPath(models.NameViTTiny), "application/json",
		strings.NewReader(`{"items":1,"class":"warp-speed"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad class: status %d, want 400", resp.StatusCode)
	}
}

// TestClientRetriesOn429 verifies the client backs off and resubmits
// shed requests, honoring the Retry-After hint ("0" = retry
// immediately, no backoff).
func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(errorJSON{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(InferResponseJSON{ID: "ok", Model: "m", Items: 1})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	resp, err := c.Infer(context.Background(), "m", InferRequestJSON{Items: 1})
	if err != nil {
		t.Fatalf("infer after 429s: %v", err)
	}
	if resp.ID != "ok" || calls.Load() != 3 {
		t.Errorf("resp %+v after %d calls, want success on 3rd", resp, calls.Load())
	}

	// With retries disabled, the 429 surfaces as ErrOverloaded.
	calls.Store(0)
	c2 := NewClient(ts.URL)
	c2.MaxRetries = -1
	if _, err := c2.Infer(context.Background(), "m", InferRequestJSON{Items: 1}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("unretried 429 returned %v, want ErrOverloaded", err)
	}
}

// TestClientPropagatesContextDeadline verifies the remaining context
// budget travels as deadline_ms when the body doesn't set one.
func TestClientPropagatesContextDeadline(t *testing.T) {
	var got atomic.Value
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body InferRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Error(err)
		}
		got.Store(body.DeadlineMs)
		json.NewEncoder(w).Encode(InferResponseJSON{Model: "m", Items: 1})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Infer(ctx, "m", InferRequestJSON{Items: 1}); err != nil {
		t.Fatal(err)
	}
	ms, _ := got.Load().(float64)
	if ms <= 0 || ms > 500 {
		t.Errorf("propagated deadline_ms %.2f, want in (0, 500]", ms)
	}

	// An explicit body deadline wins over the context deadline.
	if _, err := c.Infer(ctx, "m", InferRequestJSON{Items: 1, DeadlineMs: 1234}); err != nil {
		t.Fatal(err)
	}
	if ms, _ := got.Load().(float64); ms != 1234 {
		t.Errorf("explicit deadline_ms %.2f, want 1234", ms)
	}
}

// TestParseClass pins the wire names.
func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{
		"": ClassOnline, "online": ClassOnline,
		"realtime": ClassRealtime, "real-time": ClassRealtime, "REALTIME": ClassRealtime,
		"offline": ClassOffline, "batch": ClassOffline,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("bogus"); !errors.Is(err, ErrBadClass) {
		t.Errorf("bogus class error %v", err)
	}
	if _, err := (&Server{models: map[string]*modelRuntime{}}).Submit(context.Background(),
		&Request{Model: "m", Items: 1, Class: Class(99)}); !errors.Is(err, ErrBadClass) {
		t.Errorf("out-of-range class error %v", err)
	}
}
