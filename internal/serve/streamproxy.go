package serve

import (
	"hash/fnv"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
)

// handleStreamProxy proxies a long-lived camera ingest stream
// (POST /v2/streams/{camera}) to one replica. Unlike infer requests,
// a stream is stateful — the replica holds the camera's sequence
// high-water mark and dedup cache — so the router pins each camera to
// a replica by consistent hashing over the healthy set instead of
// load-balancing per request, and does not fail over mid-stream (the
// camera reconnects and re-hashes if its replica dies).
func (r *Router) handleStreamProxy(w http.ResponseWriter, req *http.Request) {
	camera := req.PathValue("camera")
	rep := r.pickStreamReplica(camera)
	if rep == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: ErrNoReplicas.Error()})
		return
	}
	target, err := url.Parse(rep.URL)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: "stream: bad replica URL: " + err.Error()})
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "router closed"})
		return
	}
	r.inflight.Add(1)
	r.mu.Unlock()
	defer r.inflight.Done()
	r.met.streams.Inc()

	// The proxied exchange interleaves reads (frames) with writes
	// (outcomes); without full duplex the router would drain the
	// endless request body before forwarding the first outcome line.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: "stream: full-duplex unsupported: " + err.Error()})
		return
	}

	proxy := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.URL.Path = req.URL.Path
			pr.Out.URL.RawQuery = req.URL.RawQuery
		},
		// Outcome lines must reach the camera as frames resolve:
		// flush every write instead of buffering the response.
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
			rep.noteError()
			writeJSON(w, http.StatusBadGateway, errorJSON{Error: "stream proxy: " + err.Error()})
		},
	}
	proxy.ServeHTTP(w, req)
}

// pickStreamReplica maps a camera ID onto the healthy replica set with
// an FNV-1a hash over the name-sorted members, so a camera lands on
// the same replica across reconnects as long as membership is stable.
func (r *Router) pickStreamReplica(camera string) *Replica {
	var healthy []*Replica
	for _, rep := range r.pool.Replicas() {
		if rep.Healthy() && !rep.Draining() {
			healthy = append(healthy, rep)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	sort.Slice(healthy, func(i, j int) bool { return healthy[i].Name < healthy[j].Name })
	h := fnv.New32a()
	h.Write([]byte(camera))
	return healthy[int(h.Sum32())%len(healthy)]
}
