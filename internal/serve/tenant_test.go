package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

func TestParseTenant(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", DefaultTenant, true},
		{"farm-a", "farm-a", true},
		{"Farm_2.cluster-1", "Farm_2.cluster-1", true},
		{strings.Repeat("a", 64), strings.Repeat("a", 64), true},
		{strings.Repeat("a", 65), "", false},
		{"farm a", "", false},
		{"farm/a", "", false},
		{"~other", "", false},
		{"ünïcode", "", false},
	}
	for _, c := range cases {
		got, err := ParseTenant(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseTenant(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && !errors.Is(err, ErrBadTenant) {
			t.Errorf("ParseTenant(%q) err = %v, want ErrBadTenant", c.in, err)
		}
	}
}

func TestParseTenantQuotaSpec(t *testing.T) {
	tenant, q, err := ParseTenantQuotaSpec("hog:rate=40,burst=80,share=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "hog" || q.RatePerSec != 40 || q.Burst != 80 || q.MaxQueueShare != 0.25 {
		t.Errorf("parsed %q %+v", tenant, q)
	}
	tenant, q, err = ParseTenantQuotaSpec("*:rate=100")
	if err != nil || tenant != "*" || q.RatePerSec != 100 {
		t.Errorf("wildcard spec: %q %+v %v", tenant, q, err)
	}
	if _, _, err := ParseTenantQuotaSpec("hog"); err != nil {
		t.Errorf("bare tenant (unlimited) rejected: %v", err)
	}
	for _, bad := range []string{
		"", ":rate=1", "hog:rate=-1", "hog:share=1.5", "hog:bogus=1", "bad tenant:rate=1",
	} {
		if _, _, err := ParseTenantQuotaSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// mkPending builds a minimal queued request for DRR lane unit tests.
func mkPending(tenant string, items int) *pending {
	return &pending{req: &Request{Items: items}, tenant: tenant}
}

// TestDRRLaneFairness: two tenants with equal-size requests share a
// lane's dispatches 1:1 while both are backlogged, regardless of how
// lopsided the offered load is (10:1 here).
func TestDRRLaneFairness(t *testing.T) {
	l := newDRRLane(DefaultTenantQuantum)
	// Hog offers 10x the victim's load, interleaved as it would arrive.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			l.push(mkPending("hog", 1))
		}
		l.push(mkPending("victim", 1))
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		p := l.pop()
		if p == nil {
			t.Fatal("lane empty early")
		}
		counts[p.tenant]++
	}
	// Both tenants still backlogged after 20 pops: the split must be
	// quantum-fair, i.e. ~1:1, not 10:1.
	if counts["victim"] < 8 {
		t.Errorf("victim got %d of first 20 dispatches (hog %d), want ~10",
			counts["victim"], counts["hog"])
	}
	// Drain the rest; totals must be exact and the lane must empty.
	for p := l.pop(); p != nil; p = l.pop() {
		counts[p.tenant]++
	}
	if counts["hog"] != 100 || counts["victim"] != 10 {
		t.Errorf("drained hog=%d victim=%d, want 100/10", counts["hog"], counts["victim"])
	}
	if l.reqs != 0 || l.items != 0 || len(l.ring) != 0 {
		t.Errorf("drained lane not empty: reqs=%d items=%d ring=%d", l.reqs, l.items, len(l.ring))
	}
}

// TestDRRLaneItemWeighting: fairness is accounted in items, so a
// tenant sending 8-item batches and one sending single items get equal
// item shares, not equal request shares.
func TestDRRLaneItemWeighting(t *testing.T) {
	l := newDRRLane(8)
	for i := 0; i < 10; i++ {
		l.push(mkPending("batcher", 8))
	}
	for i := 0; i < 80; i++ {
		l.push(mkPending("single", 1))
	}
	items := map[string]int{}
	popped := 0
	for popped < 18 { // 2 batcher visits + 16 singles = 32 items even
		p := l.pop()
		items[p.tenant] += itemsOf(p)
		popped++
	}
	if items["batcher"] != items["single"] {
		t.Errorf("item split batcher=%d single=%d, want equal", items["batcher"], items["single"])
	}
}

// TestSubmitFairnessUnderUnequalLoad drives a saturated single-slot
// model with a 10:1 hog:victim backlog through the public Submit path
// and asserts the victim's requests are interleaved near the front of
// the dispatch order instead of waiting behind the hog's entire queue.
func TestSubmitFairnessUnderUnequalLoad(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: models.NameViTTiny, Engine: eng,
		MaxBatch:      1, // one request per batch: dispatch order == pop order
		QueueDelay:    50 * time.Microsecond,
		TimeScale:     0.2, // each batch really sleeps ~0.2x modeled latency
		MaxQueueDepth: 512,
	})
	const hogN, victimN = 120, 12
	var order atomic.Int64
	var wg sync.WaitGroup
	var fails atomic.Int64
	victimIdx := make([]int64, victimN)
	submit := func(tenant string, slot *int64) {
		defer wg.Done()
		_, err := s.Submit(context.Background(), &Request{
			Model: models.NameViTTiny, Items: 1, Tenant: tenant,
		})
		if err != nil {
			fails.Add(1)
			return
		}
		idx := order.Add(1)
		if slot != nil {
			*slot = idx
		}
	}
	wg.Add(hogN)
	for i := 0; i < hogN; i++ {
		go submit("hog", nil)
	}
	// Wait for a real hog backlog before the victim shows up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d, err := s.QueueDepth(models.NameViTTiny)
		if err != nil {
			t.Fatal(err)
		}
		if d >= hogN*3/4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hog backlog never built: depth %d", d)
		}
		time.Sleep(200 * time.Microsecond)
	}
	wg.Add(victimN)
	for i := 0; i < victimN; i++ {
		go submit("victim", &victimIdx[i])
	}
	wg.Wait()
	if fails.Load() != 0 {
		t.Fatalf("%d submissions failed", fails.Load())
	}
	// With DRR the victim's 12 requests alternate quantum-for-quantum
	// with the hog and finish within a few ring cycles of arriving.
	// Under the old per-lane FIFO they would all land behind the ~90+
	// queued hog requests. Completion-order recording races a little, so
	// assert a generous bound well below the FIFO outcome.
	var worst int64
	for i, idx := range victimIdx {
		if idx == 0 {
			t.Fatalf("victim %d has no completion index", i)
		}
		if idx > worst {
			worst = idx
		}
	}
	if worst > hogN {
		t.Errorf("slowest victim finished at dispatch %d of %d: not interleaved",
			worst, hogN+victimN)
	}
}

// TestTenantQuotaRateIsolation: a rate-quota'd hog sheds with its own
// 429 budget while an unquota'd tenant on the same model sees zero.
func TestTenantQuotaRateIsolation(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.TenantQuotas = map[string]TenantQuota{
		"hog": {RatePerSec: 5, Burst: 5},
	}
	s := newTestServer(t, cfg)
	ctx := context.Background()
	var hogShed int
	for i := 0; i < 25; i++ {
		_, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Items: 1, Tenant: "hog"})
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("hog submit %d: %v, want ErrOverloaded", i, err)
		}
		var qe *QuotaError
		if !errors.As(err, &qe) {
			t.Fatalf("hog 429 is not a QuotaError: %v", err)
		}
		if qe.Tenant != "hog" || qe.Reason != "rate" || qe.RetryAfter <= 0 {
			t.Fatalf("quota error %+v", qe)
		}
		hogShed++
	}
	if hogShed < 10 {
		t.Fatalf("hog shed only %d of 25 at rate 5/s burst 5", hogShed)
	}
	for i := 0; i < 25; i++ {
		if _, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Items: 1, Tenant: "farm"}); err != nil {
			t.Fatalf("victim submit %d failed beside quota'd hog: %v", i, err)
		}
	}
	m, err := s.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tenants["hog"].Shed; got != int64(hogShed) {
		t.Errorf("hog shed counter %d, want %d", got, hogShed)
	}
	if got := m.Tenants["farm"]; got.Shed != 0 || got.Requests != 25 {
		t.Errorf("victim tenant metrics %+v, want shed=0 requests=25", got)
	}
}

// TestTenantQuotaQueueShare: the share quota caps a tenant's queue
// occupancy at MaxQueueShare x MaxQueueDepth.
func TestTenantQuotaQueueShare(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.MaxQueueDepth = 16
	cfg.TenantQuotas = map[string]TenantQuota{"hog": {MaxQueueShare: 0.25}}
	s := newTestServer(t, cfg)
	rt := s.models[models.NameViTTiny]
	ts := rt.tenantState("hog")
	if err := rt.checkQuota(ts, "hog", 1); err != nil {
		t.Fatalf("under-cap submission refused: %v", err)
	}
	ts.queuedReqs.Store(4) // at 0.25 * 16
	err := rt.checkQuota(ts, "hog", 1)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "share" {
		t.Fatalf("at-cap submission: %v, want share QuotaError", err)
	}
	if !errors.Is(err, ErrOverloaded) || qe.RetryAfter <= 0 {
		t.Errorf("share QuotaError %+v must unwrap to ErrOverloaded with a retry hint", qe)
	}
	// Other tenants are not capped.
	other := rt.tenantState("farm")
	other.queuedReqs.Store(10)
	if err := rt.checkQuota(other, "farm", 1); err != nil {
		t.Errorf("unquota'd tenant refused: %v", err)
	}
}

// TestRetryAfterLaneAware: a huge offline backlog must not inflate the
// Retry-After hint handed to a realtime caller — only the caller's lane
// and the lanes above it count.
func TestRetryAfterLaneAware(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	rt := &modelRuntime{cfg: ModelConfig{
		Name: "m", Engine: eng, MaxBatch: 8, Instances: 1, TimeScale: 1,
	}}
	for c := range rt.lanes {
		rt.lanes[c] = newDRRLane(DefaultTenantQuantum)
	}
	for i := 0; i < 2500; i++ { // 20k offline items: seconds of drain
		rt.lanes[ClassOffline].push(mkPending("batch", 8))
	}
	rt.lanes[ClassRealtime].push(mkPending("rt", 1))
	if got := rt.backlogItemsAtOrAbove(ClassRealtime); got != 1 {
		t.Errorf("realtime backlog %d, want 1 (own lane only)", got)
	}
	if got := rt.backlogItemsAtOrAbove(ClassOnline); got != 1 {
		t.Errorf("online backlog %d, want 1 (realtime + empty online)", got)
	}
	if got := rt.backlogItemsAtOrAbove(ClassOffline); got != 20001 {
		t.Errorf("offline backlog %d, want 20001", got)
	}
	s := &Server{models: map[string]*modelRuntime{"m": rt}}
	rtRetry := s.retryAfterSeconds("m", ClassRealtime)
	offRetry := s.retryAfterSeconds("m", ClassOffline)
	if rtRetry != 1 {
		t.Errorf("realtime Retry-After %ds behind an offline flood, want 1", rtRetry)
	}
	if offRetry <= rtRetry {
		t.Errorf("offline Retry-After %ds not above realtime's %ds despite 20k queued items",
			offRetry, rtRetry)
	}
	// Quota rejections carry the tenant's own drain estimate instead.
	qerr := fmt.Errorf("wrapped: %w", &QuotaError{Tenant: "hog", Reason: "rate", RetryAfter: 2 * time.Second})
	if got := s.retryAfterFor(qerr, "m", ClassRealtime); got != 3 {
		t.Errorf("quota Retry-After %d, want 3 (2s rounded up)", got)
	}
}

// TestOfflineCompletesUnderRealtimeSaturation is the anti-starvation
// regression test: with the realtime lane never empty, an offline
// request must still complete via its guaranteed 1-in-N dispatch share
// instead of starving behind strict priority.
func TestOfflineCompletesUnderRealtimeSaturation(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: models.NameViTTiny, Engine: eng,
		MaxBatch:       1,
		QueueDelay:     50 * time.Microsecond,
		TimeScale:      0.3,
		MaxQueueDepth:  256,
		RealtimeBudget: -1, // no implicit deadline: nothing evicts, the lane stays full
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 8 // closed-loop saturation: ~7 realtime requests always queued
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Submit(context.Background(), &Request{
					Model: models.NameViTTiny, Items: 1, Class: ClassRealtime,
				})
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	time.Sleep(5 * time.Millisecond) // let the realtime backlog establish
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := s.Submit(ctx, &Request{
		Model: models.NameViTTiny, Items: 1, Class: ClassOffline,
	}); err != nil {
		t.Fatalf("offline request starved under sustained realtime load: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("offline request took %v under realtime saturation", d)
	}
}

// TestTenantPropagationThroughRouter: the tenant tag set by a client
// survives client -> router -> replica, shows up in the response echo,
// the replica's per-tenant metrics, and the router's merged view.
func TestTenantPropagationThroughRouter(t *testing.T) {
	srv, hs := newTestReplica(t, 0)
	defer func() { hs.Close(); srv.Close() }()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(router.Handler())
	defer func() { rhs.Close(); router.Close() }()

	c := NewClient(rhs.URL)
	resp, err := c.Infer(context.Background(), models.NameViTTiny,
		InferRequestJSON{Items: 1, Tenant: "farm-a"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "farm-a" {
		t.Errorf("response tenant %q, want farm-a", resp.Tenant)
	}

	// Header-only identity (no body field) must work too.
	req, _ := http.NewRequest("POST", rhs.URL+"/v2/models/"+models.NameViTTiny+"/infer",
		strings.NewReader(`{"items":1}`))
	req.Header.Set(TenantHeader, "farm-b")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("header-tenant request status %d", hr.StatusCode)
	}
	if got := hr.Header.Get(TenantHeader); got != "farm-b" {
		t.Errorf("response %s header %q, want farm-b", TenantHeader, got)
	}

	// Malformed tenant ids are rejected at the router edge.
	req, _ = http.NewRequest("POST", rhs.URL+"/v2/models/"+models.NameViTTiny+"/infer",
		strings.NewReader(`{"items":1}`))
	req.Header.Set(TenantHeader, "bad tenant!")
	hr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed tenant status %d, want 400", hr.StatusCode)
	}

	// The replica accounted both tenants.
	m, err := srv.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tenants["farm-a"].Requests != 1 || m.Tenants["farm-b"].Requests != 1 {
		t.Errorf("replica tenant metrics: %+v", m.Tenants)
	}
	// The router's merged metrics carry the per-tenant sections and its
	// own per-tenant routing counter.
	met := router.Metrics(context.Background())
	if len(met.Models) != 1 {
		t.Fatalf("router models %d, want 1", len(met.Models))
	}
	if met.Models[0].Tenants["farm-a"].Requests != 1 {
		t.Errorf("router merged tenant metrics: %+v", met.Models[0].Tenants)
	}
	if met.Router.RequestsByTenant["farm-a"] != 1 || met.Router.RequestsByTenant["farm-b"] != 1 {
		t.Errorf("router requests_by_tenant: %+v", met.Router.RequestsByTenant)
	}
}

// TestHTTPQuota429 drives an over-quota tenant through the HTTP
// surface: isolated 429s with a positive Retry-After, while another
// tenant against the same server sails through.
func TestHTTPQuota429(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.TenantQuotas = map[string]TenantQuota{"hog": {RatePerSec: 2, Burst: 2}}
	s := newTestServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	inferURL := hs.URL + "/v2/models/" + models.NameViTTiny + "/infer"

	saw429 := false
	for i := 0; i < 10; i++ {
		resp, err := http.Post(inferURL, "application/json",
			strings.NewReader(`{"items":1,"tenant":"hog"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
				t.Errorf("429 Retry-After header %q, want >= 1", ra)
			}
		default:
			t.Fatalf("hog infer %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("hog tenant never hit its rate quota over HTTP")
	}
	c := NewClient(hs.URL)
	c.MaxRetries = -1 // any victim 429 must surface, not be retried away
	for i := 0; i < 10; i++ {
		if _, err := c.Infer(context.Background(), models.NameViTTiny,
			InferRequestJSON{Items: 1, Tenant: "farm"}); err != nil {
			t.Fatalf("victim infer %d failed: %v", i, err)
		}
	}
}

// TestRouterQuotaGate exercises the router-level tenant admission
// gate: with a quota configured on the router and none on the replica,
// an over-rate tenant is shed at the router — one hop, no proxy, no
// spill — with a QuotaError Retry-After, while another tenant is
// untouched. The rejections land in the router's isolated per-tenant
// shed counters.
func TestRouterQuotaGate(t *testing.T) {
	_, hs := newTestReplica(t, 0)
	defer hs.Close()
	router, err := NewRouter([]string{hs.URL}, RouterConfig{
		Pool:         fastPool(),
		TenantQuotas: map[string]TenantQuota{"hog": {RatePerSec: 1, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	ctx := context.Background()
	shed := 0
	for i := 0; i < 5; i++ {
		_, err := router.Infer(ctx, models.NameViTTiny, InferRequestJSON{Items: 1, Tenant: "hog"})
		if err == nil {
			continue
		}
		var qe *QuotaError
		if !errors.As(err, &qe) {
			t.Fatalf("request %d: want QuotaError, got %v", i, err)
		}
		if qe.Tenant != "hog" || qe.Reason != "rate" {
			t.Fatalf("request %d: QuotaError = %+v, want tenant hog reason rate", i, qe)
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("request %d: QuotaError must unwrap to ErrOverloaded", i)
		}
		shed++
	}
	// Burst 1 admits the first request; the rest of the burst is over
	// rate (refill is 1/s and the loop takes far less than a second).
	if shed < 3 {
		t.Fatalf("router gate shed %d of 5 hog requests, want >= 3", shed)
	}
	// An unquota'd tenant passes the gate untouched.
	if _, err := router.Infer(ctx, models.NameViTTiny, InferRequestJSON{Items: 1, Tenant: "farm-a"}); err != nil {
		t.Fatalf("farm-a through quota'd router: %v", err)
	}
	met := router.Metrics(ctx)
	if met.Router.QuotaRejects != int64(shed) {
		t.Fatalf("QuotaRejects = %d, want %d", met.Router.QuotaRejects, shed)
	}
	if met.Router.ShedByTenant["hog"] != int64(shed) {
		t.Fatalf("ShedByTenant[hog] = %d, want %d", met.Router.ShedByTenant["hog"], shed)
	}
	if met.Router.ShedByTenant["farm-a"] != 0 {
		t.Fatalf("ShedByTenant[farm-a] = %d, want 0", met.Router.ShedByTenant["farm-a"])
	}
}
