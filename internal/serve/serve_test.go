package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/trace"
)

func newTestServer(t *testing.T, cfgs ...ModelConfig) *Server {
	t.Helper()
	s := NewServer()
	t.Cleanup(s.Close)
	for _, cfg := range cfgs {
		if err := s.Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func tinyConfig(t *testing.T) ModelConfig {
	t.Helper()
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	return ModelConfig{Name: models.NameViTTiny, Engine: eng, MaxBatch: 64,
		QueueDelay: time.Millisecond}
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if err := s.Register(ModelConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ModelConfig{Name: "m", Engine: eng}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ModelConfig{Name: "m", Engine: eng}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate registration: %v", err)
	}
}

func TestSubmitBasic(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	resp, err := s.Submit(context.Background(), &Request{ID: "r1", Model: models.NameViTTiny, Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "r1" || resp.Items != 4 || resp.ComputeSeconds <= 0 {
		t.Errorf("response %+v", resp)
	}
	if resp.BatchSize < 4 {
		t.Errorf("batch size %d < request items", resp.BatchSize)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ctx := context.Background()
	if _, err := s.Submit(ctx, &Request{Model: "ghost", Items: 1}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", err)
	}
	if _, err := s.Submit(ctx, &Request{Model: models.NameViTTiny}); !errors.Is(err, ErrEmptyRequest) {
		t.Errorf("empty request: %v", err)
	}
	if _, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Items: 1000}); !errors.Is(err, ErrTooManyItems) {
		t.Errorf("oversized request: %v", err)
	}
}

func TestDynamicBatchingFusesRequests(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.QueueDelay = 50 * time.Millisecond
	s := newTestServer(t, cfg)
	const n = 8
	var wg sync.WaitGroup
	fused := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(),
				&Request{ID: fmt.Sprintf("r%d", i), Model: models.NameViTTiny, Items: 2})
			if err != nil {
				t.Error(err)
				return
			}
			fused[i] = resp.BatchSize
		}(i)
	}
	wg.Wait()
	// With a 50 ms window and instant submissions, most requests must
	// have been fused into batches larger than their own 2 items.
	maxBatch := 0
	for _, b := range fused {
		if b > maxBatch {
			maxBatch = b
		}
	}
	if maxBatch <= 2 {
		t.Errorf("dynamic batching never fused requests (max batch %d)", maxBatch)
	}
	st, err := s.StatsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if st.ItemsServed != 2*n {
		t.Errorf("served %d items, want %d", st.ItemsServed, 2*n)
	}
	if st.RequestsServed != n {
		t.Errorf("served %d requests, want %d", st.RequestsServed, n)
	}
	if st.BatchesRun >= n {
		t.Errorf("ran %d batches for %d requests; batching ineffective", st.BatchesRun, n)
	}
}

func TestBatcherRespectsMaxBatch(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.MaxBatch = 4
	cfg.QueueDelay = 50 * time.Millisecond
	s := newTestServer(t, cfg)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var batches []int
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), &Request{Model: models.NameViTTiny, Items: 3})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			batches = append(batches, resp.BatchSize)
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, b := range batches {
		if b > 4 {
			t.Errorf("fused batch %d exceeds max batch 4", b)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Submit(ctx, &Request{Model: models.NameViTTiny, Items: 1})
	if err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestMultiInstanceAndTimeScale(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTSmall)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ModelConfig{
		Name: "multi", Engine: eng, MaxBatch: 8,
		QueueDelay: time.Millisecond, Instances: 4, TimeScale: 0.1,
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), &Request{Model: "multi", Items: 8}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st, err := s.StatsFor("multi")
	if err != nil {
		t.Fatal(err)
	}
	if st.ItemsServed != 128 {
		t.Errorf("served %d items, want 128", st.ItemsServed)
	}
	if st.RequestsServed != 16 {
		t.Errorf("served %d requests, want 16", st.RequestsServed)
	}
}

func TestServerCloseRejectsNewWork(t *testing.T) {
	s := NewServer()
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ModelConfig{Name: "m", Engine: eng, QueueDelay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(context.Background(), &Request{Model: "m", Items: 1}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("submit after close: %v", err)
	}
	if err := s.Register(ModelConfig{Name: "m2", Engine: eng}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("register after close: %v", err)
	}
	s.Close() // double close must be safe
}

func TestRealBackendThroughServer(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	const classes = 4
	real, err := models.NewViTModel(models.MicroViTConfig(classes), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = real
	s := newTestServer(t, ModelConfig{
		Name: "real", Engine: eng, MaxBatch: 8,
		QueueDelay: time.Millisecond, InputSize: 32,
	})
	in := make([]float32, 3*32*32)
	for i := range in {
		in[i] = 0.1
	}
	resp, err := s.Submit(context.Background(), &Request{Model: "real", Inputs: [][]float32{in, in}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Outputs) != 2 || len(resp.Outputs[0]) != classes {
		t.Fatalf("outputs %v", resp.Outputs)
	}
	// Identical inputs -> identical logits.
	for c := 0; c < classes; c++ {
		if resp.Outputs[0][c] != resp.Outputs[1][c] {
			t.Error("identical inputs produced different logits")
		}
	}
}

func TestModelsAndConfigLookup(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	names := s.Models()
	if len(names) != 1 || names[0] != models.NameViTTiny {
		t.Errorf("models %v", names)
	}
	cfg, err := s.ModelConfigFor(models.NameViTTiny)
	if err != nil || cfg.MaxBatch != 64 {
		t.Errorf("config %+v, %v", cfg, err)
	}
	if _, err := s.ModelConfigFor("ghost"); err == nil {
		t.Error("unknown config lookup succeeded")
	}
	if _, err := s.StatsFor("ghost"); err == nil {
		t.Error("unknown stats lookup succeeded")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	if err := client.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	names, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != models.NameViTTiny {
		t.Errorf("models over HTTP: %v", names)
	}
	resp, err := client.Infer(ctx, models.NameViTTiny, InferRequestJSON{ID: "h1", Items: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "h1" || resp.Items != 3 || resp.ComputeMs <= 0 {
		t.Errorf("http response %+v", resp)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t, tinyConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.Infer(ctx, "ghost", InferRequestJSON{Items: 1}); err == nil {
		t.Error("unknown model over HTTP succeeded")
	}
	if _, err := client.Infer(ctx, models.NameViTTiny, InferRequestJSON{Items: 0}); err == nil {
		t.Error("empty request over HTTP succeeded")
	}
	if _, err := client.Infer(ctx, models.NameViTTiny, InferRequestJSON{Items: 100000}); err == nil {
		t.Error("oversized request over HTTP succeeded")
	}
}

func TestHTTPRealClassification(t *testing.T) {
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	real, err := models.NewViTModel(models.MicroViTConfig(6), stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = real
	s := newTestServer(t, ModelConfig{
		Name: "cls", Engine: eng, MaxBatch: 8, QueueDelay: time.Millisecond, InputSize: 32,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	in := make([]float32, 3*32*32)
	resp, err := client.Infer(context.Background(), "cls", InferRequestJSON{Inputs: [][]float32{in}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Classification) != 1 || resp.Classification[0] < 0 || resp.Classification[0] >= 6 {
		t.Errorf("classification %v", resp.Classification)
	}
}

func TestFormatInferPath(t *testing.T) {
	if got := FormatInferPath("ViT_Tiny"); got != "/v2/models/ViT_Tiny/infer" {
		t.Errorf("path %q", got)
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Instances = 2
	s := newTestServer(t, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(),
				&Request{ID: fmt.Sprintf("s%d", i), Model: models.NameViTTiny, Items: 1 + i%4})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("stress submit failed: %v", err)
	}
	st, err := s.StatsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	var wantItems int64
	for i := 0; i < 200; i++ {
		wantItems += int64(1 + i%4)
	}
	if st.ItemsServed != wantItems {
		t.Errorf("item conservation violated: served %d items, want %d", st.ItemsServed, wantItems)
	}
	if st.RequestsServed != 200 {
		t.Errorf("request conservation violated: served %d requests, want 200", st.RequestsServed)
	}
}

func TestServerTraceRecordsBatches(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := tinyConfig(t)
	cfg.Trace = rec
	s := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(),
			&Request{ID: fmt.Sprintf("t%d", i), Model: models.NameViTTiny, Items: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	batches, reqSpans := 0, 0
	for _, sp := range rec.Spans() {
		if sp.Start < 0 {
			t.Errorf("span %q on %q starts at %v; wall-clock spans must not be negative", sp.Name, sp.Track, sp.Start)
		}
		if sp.Duration < 0 {
			t.Errorf("span %q duration %v", sp.Name, sp.Duration)
		}
		switch {
		case sp.Track == models.NameViTTiny:
			// Batch spans on the instance track.
			batches++
			if sp.Args["items"].(int) <= 0 {
				t.Errorf("batch span args %v", sp.Args)
			}
			if _, ok := sp.Args["modeled_seconds"]; !ok {
				t.Errorf("batch span missing modeled_seconds: %v", sp.Args)
			}
		case strings.HasPrefix(sp.Track, "req:t"):
			reqSpans++
		default:
			t.Errorf("span on unexpected track %q", sp.Track)
		}
	}
	if batches == 0 {
		t.Error("no batch spans on the model track")
	}
	// Each served request records its stage decomposition.
	if reqSpans < 3*4 {
		t.Errorf("%d request-stage spans, want >= %d", reqSpans, 3*4)
	}
	// Pure simulation (TimeScale 0) must still produce a consistent
	// timeline: this is the regression test for batch spans whose start
	// was back-computed from modeled durations and could go negative or
	// overlap.
	if err := rec.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}
