package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

// listenAt rebinds the host:port of a replica URL, for reviving a
// killed replica at its original address.
func listenAt(rawURL string) (net.Listener, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	return net.Listen("tcp", u.Host)
}

// newTestReplica stands up one single-model in-process replica over
// HTTP and returns its server, its httptest wrapper, and its URL.
func newTestReplica(t *testing.T, timeScale float64) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.Register(ModelConfig{
		Name:       models.NameViTTiny,
		Engine:     eng,
		MaxBatch:   8,
		QueueDelay: 200 * time.Microsecond,
		TimeScale:  timeScale,
	}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, hs
}

// fastPool returns a PoolConfig with probe cadence suitable for tests.
func fastPool() PoolConfig {
	return PoolConfig{
		ProbeInterval:    10 * time.Millisecond,
		EjectAfter:       2,
		EjectionDuration: 50 * time.Millisecond,
		ProbeTimeout:     time.Second,
	}
}

// TestRouterFailoverMidFlight kills one of three replicas while a load
// of already-accepted requests is in flight and asserts that every
// single request still succeeds: in-flight requests on the dead
// replica fail over to the survivors, and the dead replica is ejected.
func TestRouterFailoverMidFlight(t *testing.T) {
	const replicas = 3
	var srvs []*Server
	var https []*httptest.Server
	var urls []string
	for i := 0; i < replicas; i++ {
		s, hs := newTestReplica(t, 2) // ~4ms real per batch so requests overlap the kill
		srvs = append(srvs, s)
		https = append(https, hs)
		urls = append(urls, hs.URL)
	}
	router, err := NewRouter(urls, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		router.Close()
		for i := range srvs {
			https[i].Close()
			srvs[i].Close()
		}
	}()

	const total = 120
	var wg sync.WaitGroup
	var failed atomic.Int64
	var served atomic.Int64
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := router.Infer(ctx, models.NameViTTiny,
				InferRequestJSON{ID: fmt.Sprintf("req-%d", i), Items: 2})
			if err != nil {
				failed.Add(1)
				errs <- err
				return
			}
			served.Add(1)
		}(i)
		time.Sleep(500 * time.Microsecond)
		if i == total/3 {
			// Kill replica 0 mid-run: in-flight connections are cut and
			// the listener stops accepting.
			https[0].CloseClientConnections()
			https[0].Close()
		}
	}
	wg.Wait()
	close(errs)
	if failed.Load() != 0 {
		t.Fatalf("%d/%d accepted requests failed after replica kill, first: %v",
			failed.Load(), total, <-errs)
	}
	if served.Load() != total {
		t.Fatalf("served %d of %d", served.Load(), total)
	}
	// The dead replica must be out of rotation.
	deadline := time.Now().Add(2 * time.Second)
	for router.Pool().HealthyCount() != replicas-1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead replica not ejected: %d healthy, want %d",
				router.Pool().HealthyCount(), replicas-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	met := router.Metrics(context.Background())
	if met.Router.Failovers == 0 {
		t.Error("no failovers recorded despite a replica kill under load")
	}
	if met.Router.Requests != total {
		t.Errorf("router served counter %d, want %d", met.Router.Requests, total)
	}
}

// TestRouterHalfOpenRecovery ejects a replica via a dead backend, then
// revives the backend at the same address and asserts the health loop
// readmits it through a half-open probe and traffic reaches it again.
func TestRouterHalfOpenRecovery(t *testing.T) {
	// The steady replica is slow (TimeScale 2) and the flaky one fast,
	// so once the flaky one is readmitted, least-loaded placement is
	// guaranteed to route overlapping requests to it.
	sGood, hsGood := newTestReplica(t, 2)
	defer func() { hsGood.Close(); sGood.Close() }()
	sFlaky, hsFlaky := newTestReplica(t, 0)
	defer sFlaky.Close()
	flakyURL := hsFlaky.URL

	router, err := NewRouter([]string{hsGood.URL, flakyURL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	waitHealthy := func(want int) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for router.Pool().HealthyCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("healthy count %d, want %d", router.Pool().HealthyCount(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitHealthy(2)

	// Kill the flaky replica; consecutive probe failures must eject it.
	hsFlaky.CloseClientConnections()
	hsFlaky.Close()
	waitHealthy(1)

	// While it is down, requests must keep succeeding on the survivor.
	for i := 0; i < 5; i++ {
		if _, err := router.Infer(context.Background(), models.NameViTTiny,
			InferRequestJSON{Items: 1}); err != nil {
			t.Fatalf("request during ejection failed: %v", err)
		}
	}

	// Revive at the same address (fresh http.Server, same backend):
	// the ejection window lapses, a half-open probe succeeds, and the
	// replica is readmitted.
	l, err := listenAt(flakyURL)
	if err != nil {
		t.Skipf("could not rebind replica address: %v", err)
	}
	hsRevived := &httptest.Server{Listener: l, Config: &http.Server{Handler: sFlaky.Handler()}}
	hsRevived.Start()
	defer hsRevived.Close()
	waitHealthy(2)

	// Traffic must reach the recovered replica again: drive enough
	// concurrent requests that least-loaded placement spreads them.
	before := requestsServed(t, sFlaky)
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = router.Infer(context.Background(), models.NameViTTiny, InferRequestJSON{Items: 1})
		}()
	}
	wg.Wait()
	if after := requestsServed(t, sFlaky); after == before {
		t.Error("recovered replica received no traffic after readmission")
	}
}

// TestRouterClassPlacement asserts scenario-class-aware placement:
// offline requests concentrate on the busy replica while realtime
// requests go to the least-loaded one — and the class lane is
// preserved through the router onto the replica.
func TestRouterClassPlacement(t *testing.T) {
	// TimeScale 50: an 8-item offline batch really takes ~100ms, so
	// the offline load is still in flight when the realtime request
	// arrives.
	s0, hs0 := newTestReplica(t, 50)
	defer func() { hs0.Close(); s0.Close() }()
	s1, hs1 := newTestReplica(t, 50)
	defer func() { hs1.Close(); s1.Close() }()

	router, err := NewRouter([]string{hs0.URL, hs1.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// A batch of concurrent offline requests: the first lands on r0
	// (tie broken by order), and every subsequent offline request must
	// spill onto the same now-busiest replica.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := router.Infer(context.Background(), models.NameViTTiny,
				InferRequestJSON{Items: 8, Class: "offline"}); err != nil {
				t.Errorf("offline infer: %v", err)
			}
		}()
		time.Sleep(2 * time.Millisecond) // let local inflight counts update
	}
	// With offline load pinned on one replica, a realtime request must
	// pick the other (least-loaded) one.
	if _, err := router.Infer(context.Background(), models.NameViTTiny,
		InferRequestJSON{Items: 1, Class: "realtime", DeadlineMs: 2000}); err != nil {
		t.Fatalf("realtime infer: %v", err)
	}
	wg.Wait()

	r0, r1 := requestsServed(t, s0), requestsServed(t, s1)
	if r0+r1 != 7 {
		t.Fatalf("served %d+%d requests, want 7", r0, r1)
	}
	// One replica took all six offline requests, the other exactly the
	// realtime one.
	lo, hi := r0, r1
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi != 6 || lo != 1 {
		t.Errorf("placement split %d/%d, want 6 offline on one replica and 1 realtime on the other", hi, lo)
	}
	// The class lane must survive the hop: exactly one replica saw
	// realtime-class queue latency, and one saw offline-class.
	met := router.Metrics(context.Background())
	if len(met.Models) != 1 {
		t.Fatalf("aggregated models %d, want 1", len(met.Models))
	}
	byClass := met.Models[0].QueueMsByClass
	if byClass["realtime"].Count != 1 {
		t.Errorf("realtime lane count %d through router, want 1", byClass["realtime"].Count)
	}
	if byClass["offline"].Count != 6 {
		t.Errorf("offline lane count %d through router, want 6", byClass["offline"].Count)
	}
}

// TestRouterDrainComposesWithReplicaDrain closes the router while
// proxied requests are in flight, then closes the replicas: every
// already-accepted request must be served (router drain waits for its
// in-flight work; replica drain serves whatever is queued), and new
// work is refused with ErrServerClosed.
func TestRouterDrainComposesWithReplicaDrain(t *testing.T) {
	s0, hs0 := newTestReplica(t, 2)
	s1, hs1 := newTestReplica(t, 2)
	router, err := NewRouter([]string{hs0.URL, hs1.URL},
		RouterConfig{Pool: fastPool(), DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	const total = 40
	var wg sync.WaitGroup
	var served atomic.Int64
	started := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, err := router.Infer(context.Background(), models.NameViTTiny,
				InferRequestJSON{Items: 4}); err != nil {
				t.Errorf("in-flight request failed across drain: %v", err)
				return
			}
			served.Add(1)
		}()
	}
	for i := 0; i < total; i++ {
		<-started
	}
	// Router drain first: must wait for all in-flight proxied work.
	router.Close()
	if _, err := router.Infer(context.Background(), models.NameViTTiny,
		InferRequestJSON{Items: 1}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("post-close submit error = %v, want ErrServerClosed", err)
	}
	wg.Wait()
	if served.Load() != total {
		t.Fatalf("served %d of %d across router drain", served.Load(), total)
	}
	// Then the replicas' own graceful drain.
	hs0.Close()
	hs1.Close()
	s0.Close()
	s1.Close()
	if got := requestsServed(t, s0) + requestsServed(t, s1); got != total {
		t.Errorf("replicas served %d, want %d", got, total)
	}
}

// TestRouterSpillsOnOverload: a replica answering 429 is
// backpressure, not a fault — the request spills to the next replica
// and succeeds, and the shedding replica stays in rotation.
func TestRouterSpillsOnOverload(t *testing.T) {
	// r0: admission queue of depth 1 and a long batching window, so
	// one parked request makes it shed everything else.
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	s0 := NewServer()
	if err := s0.Register(ModelConfig{
		Name: models.NameViTTiny, Engine: eng, MaxBatch: 8,
		QueueDelay: 200 * time.Millisecond, MaxQueueDepth: 1,
	}); err != nil {
		t.Fatal(err)
	}
	hs0 := httptest.NewServer(s0.Handler())
	defer func() { hs0.Close(); s0.Close() }()
	s1, hs1 := newTestReplica(t, 0)
	defer func() { hs1.Close(); s1.Close() }()

	router, err := NewRouter([]string{hs0.URL, hs1.URL}, RouterConfig{Pool: fastPool()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// Park one request in r0's only queue slot (directly, not through
	// the router) and let a metrics refresh pick up the depth.
	parked := make(chan error, 1)
	go func() {
		c := NewClient(hs0.URL)
		_, err := c.Infer(context.Background(), models.NameViTTiny, InferRequestJSON{Items: 4})
		parked <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Offline placement prefers the *most* loaded replica — r0 — which
	// must answer 429; the router spills to r1 and succeeds without
	// ejecting r0.
	if _, err := router.Infer(context.Background(), models.NameViTTiny,
		InferRequestJSON{Items: 8, Class: "offline"}); err != nil {
		t.Fatalf("offline infer under partial overload: %v", err)
	}
	met := router.Metrics(context.Background())
	if met.Router.Spills == 0 {
		t.Error("overloaded replica did not cause a spill")
	}
	for _, st := range router.Pool().Status() {
		if !st.Healthy {
			t.Errorf("replica %s ejected by 429 backpressure", st.Name)
		}
	}
	if err := <-parked; err != nil {
		t.Errorf("parked request failed: %v", err)
	}
	if got := requestsServed(t, s1); got != 1 {
		t.Errorf("spill target served %d requests, want 1", got)
	}
}

// requestsServed reads a replica server's successful request count.
func requestsServed(t *testing.T, s *Server) int64 {
	t.Helper()
	m, err := s.MetricsFor(models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	return m.Requests
}
