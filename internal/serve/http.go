package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"harvest/internal/stats"
)

// HTTP wire types, loosely following the Triton KServe v2 layout.

// InferRequestJSON is the POST body of /v2/models/{name}/infer.
type InferRequestJSON struct {
	ID string `json:"id,omitempty"`
	// Items is the number of images in the request.
	Items int `json:"items"`
	// Inputs optionally carries flattened CHW tensors for real-compute
	// models.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Class selects the scenario lane: "realtime", "online" (default)
	// or "offline" (paper §2.2 deployment scenarios).
	Class string `json:"class,omitempty"`
	// DeadlineMs is the request's latency budget in milliseconds,
	// counted from server receipt. 0 means the class default (16.7 ms
	// for realtime, none otherwise). Requests that cannot meet their
	// budget are shed with HTTP 504 instead of executed.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// InferResponseJSON is the response body.
type InferResponseJSON struct {
	ID             string      `json:"id,omitempty"`
	Model          string      `json:"model"`
	Items          int         `json:"items"`
	BatchSize      int         `json:"batch_size"`
	QueueMs        float64     `json:"queue_ms"`
	ComputeMs      float64     `json:"compute_ms"`
	Outputs        [][]float32 `json:"outputs,omitempty"`
	Classification []int       `json:"classification,omitempty"`
}

// ModelListJSON is the response of GET /v2/models.
type ModelListJSON struct {
	Models []string `json:"models"`
}

// StatsJSON is the response of GET /v2/models/{name}/stats.
type StatsJSON struct {
	Model string `json:"model"`
	// RequestsServed historically reported the number of served
	// *images*, not requests, and keeps that meaning for wire
	// compatibility.
	//
	// Deprecated: use ItemsServed for image counts and Requests for
	// request counts.
	RequestsServed int64 `json:"requests_served"`
	// Requests counts requests completed successfully.
	Requests int64 `json:"requests"`
	// ItemsServed counts images in successfully served requests.
	ItemsServed   int64   `json:"items_served"`
	BatchesRun    int64   `json:"batches_run"`
	MeanBatchFill float64 `json:"mean_batch_fill"`
}

// LatencySummaryJSON summarizes a latency distribution in
// milliseconds.
type LatencySummaryJSON struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ModelMetricsJSON is one model's entry in GET /v2/metrics.
type ModelMetricsJSON struct {
	Model     string `json:"model"`
	Requests  int64  `json:"requests"`
	Items     int64  `json:"items"`
	Batches   int64  `json:"batches"`
	Errors    int64  `json:"errors"`
	Cancelled int64  `json:"cancelled"`
	// Shed counts submissions rejected with HTTP 429 by admission
	// control (queue full).
	Shed int64 `json:"shed"`
	// Expired counts admitted requests evicted past their deadline
	// (HTTP 504).
	Expired    int64              `json:"expired"`
	QueueDepth int64              `json:"queue_depth"`
	QueueMs    LatencySummaryJSON `json:"queue_ms"`
	ComputeMs  LatencySummaryJSON `json:"compute_ms"`
	// QueueMsByClass decomposes queue latency per SLO class, keyed by
	// class name, for classes that served requests.
	QueueMsByClass map[string]LatencySummaryJSON `json:"queue_ms_by_class,omitempty"`
}

// MetricsJSON is the response of GET /v2/metrics.
type MetricsJSON struct {
	Models []ModelMetricsJSON `json:"models"`
}

// errorJSON is the error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

// inferBodyLimit caps the infer request body: a fixed overhead plus
// room for MaxBatch JSON-encoded input tensors when the model takes
// real tensor inputs (~16 bytes per float32 in decimal text).
func inferBodyLimit(cfg ModelConfig) int64 {
	const overhead = 1 << 20
	if cfg.InputSize <= 0 {
		return overhead
	}
	perImage := int64(3*cfg.InputSize*cfg.InputSize) * 16
	return overhead + int64(cfg.MaxBatch)*perImage
}

// retryAfterSeconds estimates how long an overloaded model needs to
// work off its backlog, for the 429 Retry-After header (whole seconds,
// at least 1).
func (s *Server) retryAfterSeconds(name string) int {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return 1
	}
	drain := float64(rt.inflight.Load()) / float64(rt.cfg.MaxBatch) *
		rt.estimatedExecDuration(rt.cfg.MaxBatch).Seconds()
	sec := int(drain + 1)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// Handler exposes the server over HTTP:
//
//	GET  /v2/health/ready
//	GET  /v2/models
//	GET  /v2/metrics
//	GET  /v2/models/{name}/stats
//	POST /v2/models/{name}/infer
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ModelListJSON{Models: s.Models()})
	})
	mux.HandleFunc("GET /v2/metrics", func(w http.ResponseWriter, r *http.Request) {
		var out MetricsJSON
		for _, m := range s.Metrics() {
			out.Models = append(out.Models, metricsToJSON(m))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v2/models/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v2/models/")
		name, action, ok := strings.Cut(rest, "/")
		if !ok || action != "stats" || name == "" {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		st, err := s.StatsFor(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, StatsJSON{
			Model:          st.Model,
			RequestsServed: st.ItemsServed, // deprecated alias, see StatsJSON
			Requests:       st.RequestsServed,
			ItemsServed:    st.ItemsServed,
			BatchesRun:     st.BatchesRun,
			MeanBatchFill:  st.MeanBatchFill,
		})
	})
	mux.HandleFunc("POST /v2/models/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v2/models/")
		name, action, ok := strings.Cut(rest, "/")
		if !ok || action != "infer" || name == "" {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		cfg, err := s.ModelConfigFor(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
			return
		}
		// Bound the body before decoding: an items-only request is tiny,
		// a tensor request at most MaxBatch full-size inputs.
		r.Body = http.MaxBytesReader(w, r.Body, inferBodyLimit(cfg))
		var body InferRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorJSON{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
			return
		}
		class, err := ParseClass(body.Class)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		req := &Request{
			ID: body.ID, Model: name, Items: body.Items, Inputs: body.Inputs,
			Class: class,
		}
		if body.DeadlineMs > 0 {
			req.Deadline = time.Now().Add(time.Duration(body.DeadlineMs * float64(time.Millisecond)))
		}
		resp, err := s.Submit(r.Context(), req)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrUnknownModel):
				status = http.StatusNotFound
			case errors.Is(err, ErrEmptyRequest), errors.Is(err, ErrTooManyItems),
				errors.Is(err, ErrItemsMismatch), errors.Is(err, ErrBadClass):
				status = http.StatusBadRequest
			case errors.Is(err, ErrOverloaded):
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(name)))
			case errors.Is(err, ErrDeadlineExpired):
				status = http.StatusGatewayTimeout
			case errors.Is(err, ErrServerClosed):
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, errorJSON{Error: err.Error()})
			return
		}
		out := InferResponseJSON{
			ID:        resp.ID,
			Model:     resp.Model,
			Items:     resp.Items,
			BatchSize: resp.BatchSize,
			QueueMs:   resp.QueueSeconds * 1000,
			ComputeMs: resp.ComputeSeconds * 1000,
			Outputs:   resp.Outputs,
		}
		for _, logits := range resp.Outputs {
			out.Classification = append(out.Classification, argmax(logits))
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

func metricsToJSON(m ModelMetrics) ModelMetricsJSON {
	out := ModelMetricsJSON{
		Model:      m.Model,
		Requests:   m.Requests,
		Items:      m.Items,
		Batches:    m.Batches,
		Errors:     m.Errors,
		Cancelled:  m.Cancelled,
		Shed:       m.Shed,
		Expired:    m.Expired,
		QueueDepth: m.QueueDepth,
		QueueMs:    summaryToMs(m.QueueLatency),
		ComputeMs:  summaryToMs(m.ComputeLatency),
	}
	for class, sum := range m.ClassQueueLatency {
		if out.QueueMsByClass == nil {
			out.QueueMsByClass = make(map[string]LatencySummaryJSON, len(m.ClassQueueLatency))
		}
		out.QueueMsByClass[class] = summaryToMs(sum)
	}
	return out
}

func summaryToMs(s stats.Summary) LatencySummaryJSON {
	return LatencySummaryJSON{
		Count:  s.N,
		MeanMs: s.Mean * 1000,
		P50Ms:  s.P50 * 1000,
		P95Ms:  s.P95 * 1000,
		P99Ms:  s.P99 * 1000,
		MaxMs:  s.Max * 1000,
	}
}

func argmax(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more we can do.
		_ = err
	}
}

// FormatInferPath returns the infer endpoint path for a model.
func FormatInferPath(model string) string {
	return fmt.Sprintf("/v2/models/%s/infer", model)
}
