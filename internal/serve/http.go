package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"harvest/internal/imaging"
	"harvest/internal/metrics"
	"harvest/internal/trace"
)

// RequestIDHeader carries the request id end-to-end: a client (or the
// router) sets it, the replica adopts it, and every tier echoes it on
// the response, so one id follows the request through logs, traces and
// response bodies across the compute continuum.
const RequestIDHeader = "X-Request-ID"

// NewRequestID returns a fresh random request id (16 hex chars).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; fall back
		// to a constant rather than panic in the request path.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// requestID picks the request's id: body id first, then the propagated
// header, then a freshly generated one.
func requestID(body string, r *http.Request) string {
	if body != "" {
		return body
	}
	if h := r.Header.Get(RequestIDHeader); h != "" {
		return h
	}
	return NewRequestID()
}

// HTTP wire types, loosely following the Triton KServe v2 layout.

// InferRequestJSON is the POST body of /v2/models/{name}/infer.
type InferRequestJSON struct {
	ID string `json:"id,omitempty"`
	// Items is the number of images in the request.
	Items int `json:"items"`
	// Inputs optionally carries flattened CHW tensors for real-compute
	// models.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Images carries base64-encoded image payloads (JSON's []byte
	// encoding), one per item, for models with a preprocessing engine:
	// the server decodes, resizes and normalizes them into tensors.
	// Exclusive with Inputs.
	Images [][]byte `json:"images_b64,omitempty"`
	// ImageFormat names the encoding of Images: "jpeg" (default) or
	// "ppm".
	ImageFormat string `json:"image_format,omitempty"`
	// Class selects the scenario lane: "realtime", "online" (default)
	// or "offline" (paper §2.2 deployment scenarios).
	Class string `json:"class,omitempty"`
	// DeadlineMs is the request's latency budget in milliseconds,
	// counted from server receipt. 0 means the class default (16.7 ms
	// for realtime, none otherwise). Requests that cannot meet their
	// budget are shed with HTTP 504 instead of executed.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Tenant identifies the submitting tenant for fair scheduling and
	// quotas. Empty falls back to the X-Tenant-ID header, then to the
	// default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// tenantOf resolves the request's canonical tenant id: body field
// first, then the X-Tenant-ID header, else the default tenant.
func tenantOf(body string, r *http.Request) (string, error) {
	if body == "" {
		body = r.Header.Get(TenantHeader)
	}
	return ParseTenant(body)
}

// TimingsJSON is the per-stage latency breakdown of one served
// request, in milliseconds: where the time went between submission and
// response.
type TimingsJSON struct {
	// AdmitMs is admission control: request receipt to the
	// admission-slot reservation.
	AdmitMs float64 `json:"admit_ms"`
	// PreprocessMs is the encoded-image preprocess stage: decode, warp,
	// resize, normalize. Zero on the tensor and items-only paths.
	PreprocessMs float64 `json:"preprocess_ms"`
	// QueueMs is the lane wait: enqueue to batcher pickup.
	QueueMs float64 `json:"queue_ms"`
	// BatchAssemblyMs is the dynamic-batching window: pickup to the
	// fused batch's execution start.
	BatchAssemblyMs float64 `json:"batch_assembly_ms"`
	// ComputeMs is the execution time of the fused batch.
	ComputeMs float64 `json:"compute_ms"`
	// TotalMs is wall time from HTTP receipt to response writing.
	TotalMs float64 `json:"total_ms"`
}

// InferResponseJSON is the response body.
type InferResponseJSON struct {
	ID             string       `json:"id,omitempty"`
	Model          string       `json:"model"`
	Items          int          `json:"items"`
	BatchSize      int          `json:"batch_size"`
	QueueMs        float64      `json:"queue_ms"`
	ComputeMs      float64      `json:"compute_ms"`
	Timings        *TimingsJSON `json:"timings_ms,omitempty"`
	Outputs        [][]float32  `json:"outputs,omitempty"`
	Classification []int        `json:"classification,omitempty"`
	// Tenant echoes the canonical tenant the request was accounted to.
	Tenant string `json:"tenant,omitempty"`
}

// ModelListJSON is the response of GET /v2/models.
type ModelListJSON struct {
	Models []string `json:"models"`
}

// StatsJSON is the response of GET /v2/models/{name}/stats.
type StatsJSON struct {
	Model string `json:"model"`
	// RequestsServed historically reported the number of served
	// *images*, not requests, and keeps that meaning for wire
	// compatibility.
	//
	// Deprecated: use ItemsServed for image counts and Requests for
	// request counts.
	RequestsServed int64 `json:"requests_served"`
	// Requests counts requests completed successfully.
	Requests int64 `json:"requests"`
	// ItemsServed counts images in successfully served requests.
	ItemsServed   int64   `json:"items_served"`
	BatchesRun    int64   `json:"batches_run"`
	MeanBatchFill float64 `json:"mean_batch_fill"`
}

// LatencySummaryJSON summarizes a latency distribution in
// milliseconds. Alongside the derived percentiles it ships the raw
// histogram (shared bucket layout, see metrics.LatencyBucketBounds)
// plus sum and extremes, so an aggregator can merge distributions from
// many replicas exactly instead of averaging percentiles.
type LatencySummaryJSON struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MinMs  float64 `json:"min_ms,omitempty"`
	MaxMs  float64 `json:"max_ms"`
	SumMs  float64 `json:"sum_ms,omitempty"`
	// Buckets holds per-bucket observation counts in the shared layout;
	// empty when the producer predates histogram shipping.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// histToJSON converts a histogram snapshot to the wire summary.
func histToJSON(h metrics.HistogramSnapshot) LatencySummaryJSON {
	s := h.Summary()
	return LatencySummaryJSON{
		Count:   s.N,
		MeanMs:  s.Mean * 1000,
		P50Ms:   s.P50 * 1000,
		P95Ms:   s.P95 * 1000,
		P99Ms:   s.P99 * 1000,
		MinMs:   s.Min * 1000,
		MaxMs:   s.Max * 1000,
		SumMs:   h.Sum * 1000,
		Buckets: h.Counts,
	}
}

// histFromJSON reconstructs a mergeable snapshot from the wire
// summary. ok is false when the producer did not ship buckets (or
// shipped an incompatible layout) and only percentile fields are
// usable.
func histFromJSON(j LatencySummaryJSON) (metrics.HistogramSnapshot, bool) {
	if len(j.Buckets) != metrics.NumLatencyBuckets {
		return metrics.HistogramSnapshot{}, false
	}
	h := metrics.HistogramSnapshot{
		Sum:    j.SumMs / 1000,
		Min:    j.MinMs / 1000,
		Max:    j.MaxMs / 1000,
		Counts: append([]uint64(nil), j.Buckets...),
	}
	for _, c := range h.Counts {
		h.Count += c
	}
	return h, true
}

// ModelMetricsJSON is one model's entry in GET /v2/metrics.
type ModelMetricsJSON struct {
	Model     string `json:"model"`
	Requests  int64  `json:"requests"`
	Items     int64  `json:"items"`
	Batches   int64  `json:"batches"`
	Errors    int64  `json:"errors"`
	Cancelled int64  `json:"cancelled"`
	// Shed counts submissions rejected with HTTP 429 by admission
	// control (queue full).
	Shed int64 `json:"shed"`
	// Expired counts admitted requests evicted past their deadline
	// (HTTP 504).
	Expired    int64              `json:"expired"`
	QueueDepth int64              `json:"queue_depth"`
	QueueMs    LatencySummaryJSON `json:"queue_ms"`
	ComputeMs  LatencySummaryJSON `json:"compute_ms"`
	// PreprocessMs summarizes the encoded-image preprocess stage
	// (count 0 for models never hit through that path).
	PreprocessMs LatencySummaryJSON `json:"preprocess_ms"`
	// QueueMsByClass decomposes queue latency per SLO class, keyed by
	// class name, for classes that served requests.
	QueueMsByClass map[string]LatencySummaryJSON `json:"queue_ms_by_class,omitempty"`
	// Tenants decomposes activity per tenant, keyed by tenant id.
	Tenants map[string]TenantMetricsJSON `json:"tenants,omitempty"`
}

// TenantMetricsJSON is one tenant's entry in a model's metrics block.
type TenantMetricsJSON struct {
	Requests int64 `json:"requests"`
	Items    int64 `json:"items"`
	// Shed is the tenant's isolated 429 budget: its own quota and
	// queue-full rejections.
	Shed       int64              `json:"shed"`
	Expired    int64              `json:"expired"`
	QueueDepth int64              `json:"queue_depth"`
	QueueMs    LatencySummaryJSON `json:"queue_ms"`
}

// MetricsJSON is the response of GET /v2/metrics.
type MetricsJSON struct {
	Models []ModelMetricsJSON `json:"models"`
	// Extensions holds the JSON blocks of registered metrics
	// extensions, keyed by extension name (absent when none are
	// registered).
	Extensions map[string]json.RawMessage `json:"extensions,omitempty"`
}

// metricsExtension is one named block a higher layer contributes to the
// server's metrics surfaces.
type metricsExtension struct {
	name string
	json func() any
	prom func(io.Writer)
}

// AddMetricsExtension registers a named metrics block that rides the
// server's existing observability surfaces: jsonFn's value appears
// under "extensions" in GET /v2/metrics, and promFn (optional) is
// appended to the GET /metrics Prometheus exposition. This is how the
// streaming ingest tier exports its per-camera counters without serve
// importing it.
func (s *Server) AddMetricsExtension(name string, jsonFn func() any, promFn func(io.Writer)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extensions = append(s.extensions, metricsExtension{name: name, json: jsonFn, prom: promFn})
}

// metricsExtensions snapshots the registered extensions.
func (s *Server) metricsExtensions() []metricsExtension {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]metricsExtension(nil), s.extensions...)
}

// errorJSON is the error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

// inferBodyLimit caps the infer request body: a fixed overhead plus
// room for MaxBatch JSON-encoded input tensors when the model takes
// real tensor inputs (~16 bytes per float32 in decimal text), plus
// room for MaxBatch base64-encoded images (4/3 expansion over
// MaxImageBytes) when the model has a preprocessing engine.
func inferBodyLimit(cfg ModelConfig) int64 {
	const overhead = 1 << 20
	limit := int64(overhead)
	if cfg.InputSize > 0 {
		perImage := int64(3*cfg.InputSize*cfg.InputSize) * 16
		limit += int64(cfg.MaxBatch) * perImage
	}
	if cfg.Preproc != nil {
		limit += int64(cfg.MaxBatch) * (cfg.MaxImageBytes*4/3 + 4)
	}
	return limit
}

// retryAfterSeconds estimates how long an overloaded model needs to
// work off the backlog ahead of the caller's class, for the 429
// Retry-After header (whole seconds, clamped to [1, 60]). Only the
// caller's lane and higher-priority lanes count: an offline-flooded
// queue must not tell a realtime client to back off for the offline
// drain time.
func (s *Server) retryAfterSeconds(name string, class Class) int {
	s.mu.Lock()
	rt, ok := s.models[name]
	s.mu.Unlock()
	if !ok {
		return 1
	}
	queued := rt.backlogItemsAtOrAbove(class)
	maxBatch := int64(rt.cfg.MaxBatch)
	if maxBatch < 1 {
		maxBatch = 1
	}
	batches := (queued + maxBatch - 1) / maxBatch
	instances := int64(rt.cfg.Instances)
	if instances < 1 {
		instances = 1
	}
	rounds := (batches + instances - 1) / instances
	drain := float64(rounds) * rt.estimatedExecDuration(rt.cfg.MaxBatch).Seconds()
	return clampRetrySeconds(int(drain + 1))
}

// clampRetrySeconds bounds a Retry-After hint to [1, 60] whole
// seconds.
func clampRetrySeconds(sec int) int {
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// retryAfterFor picks the Retry-After hint for one 429: a quota
// rejection carries the tenant's own budget estimate; a shared
// queue-full rejection prices the lane-aware backlog.
func (s *Server) retryAfterFor(err error, name string, class Class) int {
	var qe *QuotaError
	if errors.As(err, &qe) {
		return clampRetrySeconds(int(qe.RetryAfter.Seconds()) + 1)
	}
	return s.retryAfterSeconds(name, class)
}

// Handler exposes the server over HTTP:
//
//	GET  /v2/health/ready
//	GET  /v2/models
//	GET  /v2/metrics
//	GET  /v2/trace
//	GET  /metrics
//	GET  /v2/models/{name}/stats
//	POST /v2/models/{name}/infer
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ModelListJSON{Models: s.Models()})
	})
	mux.HandleFunc("GET /v2/metrics", func(w http.ResponseWriter, r *http.Request) {
		var out MetricsJSON
		for _, m := range s.Metrics() {
			out.Models = append(out.Models, metricsToJSON(m))
		}
		for _, ext := range s.metricsExtensions() {
			raw, err := json.Marshal(ext.json())
			if err != nil {
				continue
			}
			if out.Extensions == nil {
				out.Extensions = make(map[string]json.RawMessage)
			}
			out.Extensions[ext.name] = raw
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v2/trace", func(w http.ResponseWriter, r *http.Request) {
		rec := s.Trace()
		if rec == nil {
			rec = trace.NewRecorder()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteChromeFiltered(w, tenantSpanFilter(r.URL.Query().Get("tenant")))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		s.writeProm(w)
		for _, ext := range s.metricsExtensions() {
			if ext.prom != nil {
				ext.prom(w)
			}
		}
	})
	mux.HandleFunc("GET /v2/models/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v2/models/")
		name, action, ok := strings.Cut(rest, "/")
		if !ok || action != "stats" || name == "" {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		st, err := s.StatsFor(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, StatsJSON{
			Model:          st.Model,
			RequestsServed: st.ItemsServed, // deprecated alias, see StatsJSON
			Requests:       st.RequestsServed,
			ItemsServed:    st.ItemsServed,
			BatchesRun:     st.BatchesRun,
			MeanBatchFill:  st.MeanBatchFill,
		})
	})
	mux.HandleFunc("POST /v2/models/", func(w http.ResponseWriter, r *http.Request) {
		arrived := time.Now()
		rest := strings.TrimPrefix(r.URL.Path, "/v2/models/")
		name, action, ok := strings.Cut(rest, "/")
		if !ok || action != "infer" || name == "" {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		cfg, err := s.ModelConfigFor(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error()})
			return
		}
		// Bound the body before decoding: an items-only request is tiny,
		// a tensor request at most MaxBatch full-size inputs.
		r.Body = http.MaxBytesReader(w, r.Body, inferBodyLimit(cfg))
		var body InferRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorJSON{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
			return
		}
		class, err := ParseClass(body.Class)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		format, err := imaging.ParseFormat(body.ImageFormat)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		tenant, err := tenantOf(body.Tenant, r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		id := requestID(body.ID, r)
		w.Header().Set(RequestIDHeader, id)
		w.Header().Set(TenantHeader, tenant)
		req := &Request{
			ID: id, Model: name, Items: body.Items, Inputs: body.Inputs,
			Images: body.Images, ImageFormat: format,
			Class: class, Tenant: tenant,
		}
		if body.DeadlineMs > 0 {
			req.Deadline = time.Now().Add(time.Duration(body.DeadlineMs * float64(time.Millisecond)))
		}
		resp, err := s.Submit(r.Context(), req)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrUnknownModel):
				status = http.StatusNotFound
			case errors.Is(err, ErrEmptyRequest), errors.Is(err, ErrTooManyItems),
				errors.Is(err, ErrItemsMismatch), errors.Is(err, ErrBadClass),
				errors.Is(err, ErrNoPreprocessor), errors.Is(err, ErrMixedInputs),
				errors.Is(err, ErrPreprocess):
				status = http.StatusBadRequest
			case errors.Is(err, ErrImageTooLarge):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, ErrOverloaded):
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterFor(err, name, class)))
			case errors.Is(err, ErrDeadlineExpired):
				status = http.StatusGatewayTimeout
			case errors.Is(err, ErrServerClosed):
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, errorJSON{Error: err.Error()})
			return
		}
		out := InferResponseJSON{
			ID:        resp.ID,
			Model:     resp.Model,
			Items:     resp.Items,
			Tenant:    tenant,
			BatchSize: resp.BatchSize,
			QueueMs:   resp.QueueSeconds * 1000,
			ComputeMs: resp.ComputeSeconds * 1000,
			Timings: &TimingsJSON{
				AdmitMs:         resp.AdmitSeconds * 1000,
				PreprocessMs:    resp.PreprocessSeconds * 1000,
				QueueMs:         resp.LaneSeconds * 1000,
				BatchAssemblyMs: resp.AssembleSeconds * 1000,
				ComputeMs:       resp.ComputeSeconds * 1000,
			},
			Outputs: resp.Outputs,
		}
		for _, logits := range resp.Outputs {
			out.Classification = append(out.Classification, argmax(logits))
		}
		respondStart := time.Now()
		out.Timings.TotalMs = respondStart.Sub(arrived).Seconds() * 1000
		writeJSON(w, http.StatusOK, out)
		if cfg.Trace != nil {
			cfg.Trace.Add(trace.Span{
				Name:  "respond",
				Track: "req:" + id,
				Start: sinceEpoch(respondStart), Duration: stageDur(respondStart, time.Now()),
				Args: map[string]any{"model": name, "tenant": tenant},
			})
		}
	})
	return mux
}

// writeProm writes the server's Prometheus text exposition: per-model
// request counters, queue-depth gauges, and the queue/compute latency
// histograms in the shared bucket layout.
func (s *Server) writeProm(w http.ResponseWriter) {
	ms := s.Metrics()
	pw := metrics.PromWriter{W: w}
	counters := []struct {
		name, help string
		get        func(ModelMetrics) int64
	}{
		{"harvest_requests_total", "Requests completed successfully.", func(m ModelMetrics) int64 { return m.Requests }},
		{"harvest_items_total", "Images served in successful requests.", func(m ModelMetrics) int64 { return m.Items }},
		{"harvest_batches_total", "Fused batches executed.", func(m ModelMetrics) int64 { return m.Batches }},
		{"harvest_errors_total", "Requests failed by the backend or shutdown.", func(m ModelMetrics) int64 { return m.Errors }},
		{"harvest_cancelled_total", "Requests withdrawn before dispatch.", func(m ModelMetrics) int64 { return m.Cancelled }},
		{"harvest_shed_total", "Submissions rejected by admission control.", func(m ModelMetrics) int64 { return m.Shed }},
		{"harvest_expired_total", "Admitted requests shed past their deadline.", func(m ModelMetrics) int64 { return m.Expired }},
	}
	for _, c := range counters {
		pw.Head(c.name, "counter", c.help)
		for _, m := range ms {
			pw.Int(c.name, metrics.PromLabel("model", m.Model), c.get(m))
		}
	}
	pw.Head("harvest_queue_depth", "gauge", "Requests admitted but not yet dispatched.")
	for _, m := range ms {
		pw.Int("harvest_queue_depth", metrics.PromLabel("model", m.Model), m.QueueDepth)
	}
	pw.Head("harvest_queue_latency_seconds", "histogram", "Wall time from enqueue to batch execution start.")
	for _, m := range ms {
		pw.Hist("harvest_queue_latency_seconds", metrics.PromLabel("model", m.Model), m.QueueHist)
	}
	pw.Head("harvest_compute_latency_seconds", "histogram", "Execution time of the fused batch.")
	for _, m := range ms {
		pw.Hist("harvest_compute_latency_seconds", metrics.PromLabel("model", m.Model), m.ComputeHist)
	}
	pw.Head("harvest_preprocess_latency_seconds", "histogram", "Encoded-image preprocess stage duration per request.")
	for _, m := range ms {
		if m.PreprocessHist.Count > 0 {
			pw.Hist("harvest_preprocess_latency_seconds", metrics.PromLabel("model", m.Model), m.PreprocessHist)
		}
	}
	pw.Head("harvest_class_queue_latency_seconds", "histogram", "Queue latency per SLO class.")
	for _, m := range ms {
		for _, class := range classKeysSorted(m.ClassQueueHist) {
			pw.Hist("harvest_class_queue_latency_seconds",
				metrics.PromLabels(metrics.PromLabel("model", m.Model), metrics.PromLabel("class", class)),
				m.ClassQueueHist[class])
		}
	}
	tenantCounters := []struct {
		name, help string
		get        func(TenantMetrics) int64
	}{
		{"harvest_tenant_requests_total", "Requests served per tenant.", func(t TenantMetrics) int64 { return t.Requests }},
		{"harvest_tenant_items_total", "Images served per tenant.", func(t TenantMetrics) int64 { return t.Items }},
		{"harvest_tenant_shed_total", "Per-tenant quota and queue-full rejections.", func(t TenantMetrics) int64 { return t.Shed }},
		{"harvest_tenant_expired_total", "Per-tenant deadline evictions.", func(t TenantMetrics) int64 { return t.Expired }},
	}
	for _, c := range tenantCounters {
		pw.Head(c.name, "counter", c.help)
		for _, m := range ms {
			for _, tenant := range tenantKeysSorted(m.Tenants) {
				pw.Int(c.name,
					metrics.PromLabels(metrics.PromLabel("model", m.Model), metrics.PromLabel("tenant", tenant)),
					c.get(m.Tenants[tenant]))
			}
		}
	}
	pw.Head("harvest_tenant_queue_depth", "gauge", "Queued requests per tenant.")
	for _, m := range ms {
		for _, tenant := range tenantKeysSorted(m.Tenants) {
			pw.Int("harvest_tenant_queue_depth",
				metrics.PromLabels(metrics.PromLabel("model", m.Model), metrics.PromLabel("tenant", tenant)),
				m.Tenants[tenant].QueueDepth)
		}
	}
	pw.Head("harvest_tenant_queue_latency_seconds", "histogram", "Queue latency per tenant.")
	for _, m := range ms {
		for _, tenant := range tenantKeysSorted(m.Tenants) {
			if h := m.Tenants[tenant].QueueHist; h.Count > 0 {
				pw.Hist("harvest_tenant_queue_latency_seconds",
					metrics.PromLabels(metrics.PromLabel("model", m.Model), metrics.PromLabel("tenant", tenant)), h)
			}
		}
	}
	if rec := s.Trace(); rec != nil {
		pw.Head("harvest_trace_spans_dropped_total", "counter", "Trace spans evicted from the ring buffer.")
		pw.Int("harvest_trace_spans_dropped_total", "", int64(rec.Dropped()))
	}
}

// tenantKeysSorted returns tenant map keys in sorted order for
// deterministic exposition output.
func tenantKeysSorted(m map[string]TenantMetrics) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// tenantSpanFilter builds the ?tenant= span predicate for /v2/trace:
// nil (keep everything) for the empty filter, else spans whose
// "tenant" arg matches.
func tenantSpanFilter(tenant string) func(trace.Span) bool {
	if tenant == "" {
		return nil
	}
	return func(sp trace.Span) bool {
		v, ok := sp.Args["tenant"]
		return ok && v == tenant
	}
}

// classKeysSorted returns map keys in sorted order for deterministic
// exposition output.
func classKeysSorted(m map[string]metrics.HistogramSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func metricsToJSON(m ModelMetrics) ModelMetricsJSON {
	out := ModelMetricsJSON{
		Model:        m.Model,
		Requests:     m.Requests,
		Items:        m.Items,
		Batches:      m.Batches,
		Errors:       m.Errors,
		Cancelled:    m.Cancelled,
		Shed:         m.Shed,
		Expired:      m.Expired,
		QueueDepth:   m.QueueDepth,
		QueueMs:      histToJSON(m.QueueHist),
		ComputeMs:    histToJSON(m.ComputeHist),
		PreprocessMs: histToJSON(m.PreprocessHist),
	}
	for class, h := range m.ClassQueueHist {
		if out.QueueMsByClass == nil {
			out.QueueMsByClass = make(map[string]LatencySummaryJSON, len(m.ClassQueueHist))
		}
		out.QueueMsByClass[class] = histToJSON(h)
	}
	for tenant, tm := range m.Tenants {
		if out.Tenants == nil {
			out.Tenants = make(map[string]TenantMetricsJSON, len(m.Tenants))
		}
		out.Tenants[tenant] = TenantMetricsJSON{
			Requests:   tm.Requests,
			Items:      tm.Items,
			Shed:       tm.Shed,
			Expired:    tm.Expired,
			QueueDepth: tm.QueueDepth,
			QueueMs:    histToJSON(tm.QueueHist),
		}
	}
	return out
}

func argmax(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more we can do.
		_ = err
	}
}

// FormatInferPath returns the infer endpoint path for a model.
func FormatInferPath(model string) string {
	return fmt.Sprintf("/v2/models/%s/infer", model)
}
