// Replica-pool router: the horizontal scale-out tier of the serving
// stack. A Router fronts multiple harvest-serve backends behind the
// same /v2/* surface a single Server exposes, so serve.Client works
// unchanged against either. Placement is queue-depth-aware and
// scenario-class-aware (pool.go), failed replicas are ejected and
// recovered via half-open probes, and in-flight requests fail over to
// the surviving replicas — the real counterpart of the
// internal/scaleout least-loaded dispatcher model.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/trace"
)

// ErrNoReplicas means every replica was tried (or none exists) and the
// request could not be placed.
var ErrNoReplicas = errors.New("serve: no replica available")

// routerBodyLimit caps an infer body at the router when
// RouterConfig.MaxBodyBytes is zero. The router does not know
// per-model tensor shapes; replicas enforce the precise per-model cap,
// this only bounds memory per connection.
const routerBodyLimit = 64 << 20

// RouterConfig configures a replica-pool router.
type RouterConfig struct {
	// Pool configures health checking and ejection.
	Pool PoolConfig
	// MaxBodyBytes caps an infer request body at the router. Raise it
	// for encoded-image (images_b64) workloads whose frames exceed the
	// default — e.g. batches of uncompressed 4K ground-camera frames.
	// 0 means routerBodyLimit (64 MiB); negative disables the cap.
	MaxBodyBytes int64
	// MaxAttempts bounds how many replicas one request may try before
	// failing. 0 means every replica once (resolved per request, so a
	// dynamic pool that grows under a fleet controller raises the
	// bound automatically).
	MaxAttempts int
	// DrainTimeout bounds Close's wait for proxied requests still in
	// flight. 0 means DefaultDrainTimeout; negative means no grace.
	DrainTimeout time.Duration
	// TraceCapacity bounds the router's trace ring buffer (spans
	// retained for GET /v2/trace). 0 means DefaultTraceCapacity;
	// negative disables tracing.
	TraceCapacity int
	// TenantQuotas optionally enforces per-tenant admission rates at
	// the router itself, before any replica is tried. Rates here are
	// fleet-aggregate (per-replica rate × replica count, typically),
	// with exact/"*"-wildcard resolution like replica quotas. A request
	// rejected here costs one token-bucket check and no proxy hop —
	// under an abusive tenant, letting every reject travel
	// router→replica→spill→replica turns the 429 budget into pool-wide
	// churn that inflates innocent tenants' tails. MaxQueueShare is
	// ignored at this tier (the router has no queue view); replicas
	// remain the authoritative enforcement point for share and for
	// rate when no router quota is set.
	TenantQuotas map[string]TenantQuota
}

// DefaultTraceCapacity is the trace ring-buffer size used when a
// router or deployment does not configure one.
const DefaultTraceCapacity = 4096

// routerMetrics is router-level observability, on top of the
// aggregated per-replica model metrics.
type routerMetrics struct {
	requests  metrics.Counter // proxied requests answered successfully
	errors    metrics.Counter // proxied requests that ultimately failed
	failovers metrics.Counter // replica faults that moved a request to another replica
	spills    metrics.Counter // 429 rejections that moved a request to another replica
	quotaShed metrics.Counter // requests refused by the router-level tenant quota
	streams   metrics.Counter // camera ingest streams proxied to a replica
	latency   metrics.LatencyRecorder
}

// Router load-balances inference across a health-checked replica pool.
type Router struct {
	cfg   RouterConfig
	pool  *Pool
	trace *trace.Recorder // ring buffer of routing spans; nil = disabled

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	met routerMetrics

	tmu        sync.Mutex
	tenantReqs map[string]int64 // successfully routed requests per tenant
	tenantShed map[string]int64 // router-quota rejections per tenant

	qmu         sync.Mutex
	quotaStates map[string]*tenantState // router-level token buckets, by tenant
}

// NewRouter builds a router over the given replica base URLs and
// starts the pool's health loops.
func NewRouter(urls []string, cfg RouterConfig) (*Router, error) {
	pool, err := NewPool(urls, cfg.Pool)
	if err != nil {
		return nil, err
	}
	return newRouter(pool, cfg), nil
}

// NewDynamicRouter builds a router over an initially empty pool whose
// membership is managed at runtime — the fleet control plane's shape,
// where replicas register leases instead of being listed up front.
// Until the first replica registers, requests fail with ErrNoReplicas
// and readiness reports 503.
func NewDynamicRouter(cfg RouterConfig) *Router {
	return newRouter(NewDynamicPool(cfg.Pool), cfg)
}

func newRouter(pool *Pool, cfg RouterConfig) *Router {
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = routerBodyLimit
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = DefaultTraceCapacity
	}
	r := &Router{cfg: cfg, pool: pool,
		tenantReqs: map[string]int64{}, tenantShed: map[string]int64{}}
	if len(cfg.TenantQuotas) > 0 {
		r.quotaStates = map[string]*tenantState{}
	}
	if cfg.TraceCapacity > 0 {
		r.trace = trace.NewRing(cfg.TraceCapacity)
	}
	return r
}

// Trace returns the router's trace recorder, or nil when disabled.
func (r *Router) Trace() *trace.Recorder { return r.trace }

// Pool exposes the replica pool (status snapshots, tests).
func (r *Router) Pool() *Pool { return r.pool }

// routerQuotaFor resolves a tenant's router-level quota: an exact
// entry wins, then the "*" wildcard, else none.
func (r *Router) routerQuotaFor(tenant string) (TenantQuota, bool) {
	if q, ok := r.cfg.TenantQuotas[tenant]; ok {
		return q, true
	}
	if q, ok := r.cfg.TenantQuotas["*"]; ok {
		return q, true
	}
	return TenantQuota{}, false
}

// quotaState returns (creating on first use) the router's token-bucket
// state for a tenant, aggregating into the overflow bucket past
// maxTenantStates like the replica-side accounting does.
func (r *Router) quotaState(tenant string) *tenantState {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	if ts, ok := r.quotaStates[tenant]; ok {
		return ts
	}
	key := tenant
	if len(r.quotaStates) >= maxTenantStates {
		key = overflowTenant
		if ts, ok := r.quotaStates[key]; ok {
			return ts
		}
	}
	ts := &tenantState{tenant: key}
	r.quotaStates[key] = ts
	return ts
}

// checkTenantQuota applies the router-level admission rate for one
// request. On refusal it returns a *QuotaError (unwrapping to
// ErrOverloaded → HTTP 429) carrying the tenant's own token-bucket
// wait, and charges the rejection to the tenant's isolated router-side
// shed counter. Only the rate gate runs here; queue share needs the
// replicas' queue view.
func (r *Router) checkTenantQuota(body *InferRequestJSON) error {
	if r.quotaStates == nil {
		return nil
	}
	q, ok := r.routerQuotaFor(body.Tenant)
	if !ok || q.RatePerSec <= 0 {
		return nil
	}
	items := body.Items
	if items <= 0 {
		items = len(body.Inputs) + len(body.Images)
	}
	if items <= 0 {
		items = 1
	}
	ts := r.quotaState(body.Tenant)
	if ok, wait := ts.takeTokens(float64(items), q); !ok {
		r.met.quotaShed.Inc()
		r.tmu.Lock()
		r.tenantShed[body.Tenant]++
		r.tmu.Unlock()
		if r.trace != nil && body.ID != "" {
			now := time.Now()
			r.trace.Add(trace.Span{
				Name:  "route:quota",
				Track: "req:" + body.ID,
				Start: sinceEpoch(now), Duration: 0,
				Args: map[string]any{"tenant": body.Tenant, "outcome": "quota-shed"},
			})
		}
		return &QuotaError{Tenant: body.Tenant, Reason: "rate", RetryAfter: wait}
	}
	return nil
}

// begin registers one in-flight proxied request, refusing after Close.
func (r *Router) begin() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.inflight.Add(1)
	return true
}

// Close drains the router: new requests are refused with
// ErrServerClosed, requests already being proxied get up to
// DrainTimeout to finish, then the health loops stop. Replicas are
// not touched — their own graceful drain (Server.Close) composes with
// this one: drain the router first, then the replicas.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	grace := r.cfg.DrainTimeout
	if grace < 0 {
		grace = 0
	}
	select {
	case <-done:
	case <-time.After(grace):
	}
	r.pool.Close()
}

// Infer routes one inference request. Placement is class-aware and
// least-loaded (Pool.pick); on a replica fault (transport error, 5xx)
// the replica is charged an error toward ejection and the request
// fails over to the next candidate, and on a 429 the request spills to
// the next candidate without charging the replica. 4xx responses and
// 504 deadline expiries are final: the first is the caller's fault,
// the second cannot be cured by a retry that spends even more of the
// deadline.
func (r *Router) Infer(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	if !r.begin() {
		return nil, ErrServerClosed
	}
	defer r.inflight.Done()
	start := time.Now()
	class, err := ParseClass(body.Class)
	if err != nil {
		return nil, err
	}
	if err := r.checkTenantQuota(&body); err != nil {
		return nil, err
	}
	maxAttempts := r.cfg.MaxAttempts
	if maxAttempts <= 0 {
		// Every current member once; resolved per request so dynamic
		// pools (fleet registration) keep full failover coverage as
		// they grow.
		maxAttempts = r.pool.Size()
	}
	tried := make(map[*Replica]bool, maxAttempts)
	var lastErr error
	overloaded := 0
	var minRetryAfter time.Duration
	// noteAttempt records one routing attempt on the request's trace
	// track (sequential attempts, so the track never overlaps).
	noteAttempt := func(rep *Replica, began time.Time, outcome string) {
		if r.trace == nil || body.ID == "" {
			return
		}
		r.trace.Add(trace.Span{
			Name:  "route:" + rep.Name,
			Track: "req:" + body.ID,
			Start: sinceEpoch(began), Duration: stageDur(began, time.Now()),
			Args: map[string]any{"model": model, "replica": rep.Name, "outcome": outcome, "tenant": body.Tenant},
		})
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rep := r.pool.pick(model, class, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		began := time.Now()
		rep.inflight.Add(1)
		resp, err := rep.client.Infer(ctx, model, body)
		rep.inflight.Add(-1)
		if err == nil {
			noteAttempt(rep, began, "ok")
			rep.noteSuccess()
			r.met.requests.Inc()
			r.met.latency.Observe(time.Since(start).Seconds())
			if body.Tenant != "" {
				r.tmu.Lock()
				r.tenantReqs[body.Tenant]++
				r.tmu.Unlock()
			}
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		var oe *overloadError
		if errors.As(err, &oe) {
			// Backpressure, not a fault: the replica is alive and
			// shedding. Spill to the next one.
			overloaded++
			if oe.retryAfter > 0 && (minRetryAfter == 0 || oe.retryAfter < minRetryAfter) {
				minRetryAfter = oe.retryAfter
			}
			r.met.spills.Inc()
			noteAttempt(rep, began, "spill")
			continue
		}
		var se *StatusError
		if errors.As(err, &se) {
			if se.Code == http.StatusGatewayTimeout || se.Code < 500 {
				r.met.errors.Inc()
				noteAttempt(rep, began, "final-error")
				return nil, err
			}
			// 5xx: replica fault — charge it and fail over.
			rep.noteError()
			r.met.failovers.Inc()
			noteAttempt(rep, began, "failover")
			continue
		}
		// Transport-level failure (dial refused, connection reset
		// mid-flight): the replica is gone or going; fail over.
		rep.noteError()
		r.met.failovers.Inc()
		noteAttempt(rep, began, "failover")
	}
	r.met.errors.Inc()
	if lastErr == nil {
		return nil, ErrNoReplicas
	}
	if overloaded == len(tried) && overloaded > 0 {
		// Every candidate shed: surface a retryable 429, with the
		// soonest Retry-After any replica offered.
		return nil, &overloadError{
			err:        fmt.Errorf("%w: all %d replicas overloaded: %w", ErrOverloaded, overloaded, lastErr),
			retryAfter: minRetryAfter,
		}
	}
	return nil, fmt.Errorf("serve: router: %d replica(s) failed: %w", len(tried), lastErr)
}

// Models returns the union of model names across replicas, preferring
// live answers from healthy replicas and falling back to cached
// metrics snapshots.
func (r *Router) Models(ctx context.Context) ([]string, error) {
	seen := map[string]bool{}
	ok := false
	for _, rep := range r.pool.Replicas() {
		if rep.Healthy() {
			if names, err := rep.client.Models(ctx); err == nil {
				ok = true
				for _, n := range names {
					seen[n] = true
				}
				continue
			}
		}
		if m := rep.metrics.Load(); m != nil {
			ok = true
			for _, mm := range m.Models {
				seen[mm.Model] = true
			}
		}
	}
	if !ok {
		return nil, ErrNoReplicas
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// RouterReplicaJSON is one replica's entry in the router section of
// GET /v2/metrics.
type RouterReplicaJSON struct {
	Name              string `json:"name"`
	URL               string `json:"url"`
	Healthy           bool   `json:"healthy"`
	Draining          bool   `json:"draining,omitempty"`
	ConsecutiveErrors int    `json:"consecutive_errors"`
	Ejections         int64  `json:"ejections"`
	Inflight          int64  `json:"inflight"`
	QueueDepth        int64  `json:"queue_depth"`
}

// RouterJSON is the router section of GET /v2/metrics.
type RouterJSON struct {
	Requests         int64               `json:"requests"`
	Errors           int64               `json:"errors"`
	Failovers        int64               `json:"failovers"`
	Spills           int64               `json:"spills"`
	QuotaRejects     int64               `json:"quota_rejects,omitempty"`
	Streams          int64               `json:"streams"`
	HealthyReplicas  int                 `json:"healthy_replicas"`
	LatencyMs        LatencySummaryJSON  `json:"latency_ms"`
	RequestsByTenant map[string]int64    `json:"requests_by_tenant,omitempty"`
	ShedByTenant     map[string]int64    `json:"shed_by_tenant,omitempty"`
	Replicas         []RouterReplicaJSON `json:"replicas"`
}

// RouterMetricsJSON is the router's GET /v2/metrics body: the models
// section aggregates every replica's per-model metrics (so
// serve.Client.Metrics decodes it unchanged), and the router section
// adds routing and per-replica health detail.
type RouterMetricsJSON struct {
	Models []ModelMetricsJSON `json:"models"`
	Router RouterJSON         `json:"router"`
}

// Metrics aggregates per-model metrics across replicas: counters and
// queue depths are summed; latency summaries are merged with
// count-weighted means (percentiles included — an approximation, since
// exact quantile merging would need the raw histograms over the wire)
// and max-of-max.
func (r *Router) Metrics(ctx context.Context) RouterMetricsJSON {
	byModel := map[string]*ModelMetricsJSON{}
	var order []string
	for _, rep := range r.pool.Replicas() {
		m := rep.metrics.Load()
		if rep.Healthy() {
			if fresh, err := rep.client.Metrics(ctx); err == nil {
				rep.storeMetrics(fresh)
				m = fresh
			}
		}
		if m == nil {
			continue
		}
		for _, mm := range m.Models {
			agg, ok := byModel[mm.Model]
			if !ok {
				cp := mm
				cp.QueueMsByClass = nil
				cp.Tenants = nil
				byModel[mm.Model] = &cp
				order = append(order, mm.Model)
				agg = byModel[mm.Model]
				agg.QueueMs = mm.QueueMs
				agg.ComputeMs = mm.ComputeMs
				for class, sum := range mm.QueueMsByClass {
					if agg.QueueMsByClass == nil {
						agg.QueueMsByClass = map[string]LatencySummaryJSON{}
					}
					agg.QueueMsByClass[class] = sum
				}
				mergeTenantMetrics(agg, mm.Tenants)
				continue
			}
			agg.Requests += mm.Requests
			agg.Items += mm.Items
			agg.Batches += mm.Batches
			agg.Errors += mm.Errors
			agg.Cancelled += mm.Cancelled
			agg.Shed += mm.Shed
			agg.Expired += mm.Expired
			agg.QueueDepth += mm.QueueDepth
			agg.QueueMs = mergeLatency(agg.QueueMs, mm.QueueMs)
			agg.ComputeMs = mergeLatency(agg.ComputeMs, mm.ComputeMs)
			agg.PreprocessMs = mergeLatency(agg.PreprocessMs, mm.PreprocessMs)
			for class, sum := range mm.QueueMsByClass {
				if agg.QueueMsByClass == nil {
					agg.QueueMsByClass = map[string]LatencySummaryJSON{}
				}
				agg.QueueMsByClass[class] = mergeLatency(agg.QueueMsByClass[class], sum)
			}
			mergeTenantMetrics(agg, mm.Tenants)
		}
	}
	sort.Strings(order)
	out := RouterMetricsJSON{
		Router: RouterJSON{
			Requests:        r.met.requests.Load(),
			Errors:          r.met.errors.Load(),
			Failovers:       r.met.failovers.Load(),
			Spills:          r.met.spills.Load(),
			QuotaRejects:    r.met.quotaShed.Load(),
			Streams:         r.met.streams.Load(),
			HealthyReplicas: r.pool.HealthyCount(),
			LatencyMs:       histToJSON(r.met.latency.Snapshot()),
		},
	}
	r.tmu.Lock()
	if len(r.tenantReqs) > 0 {
		out.Router.RequestsByTenant = make(map[string]int64, len(r.tenantReqs))
		for tenant, n := range r.tenantReqs {
			out.Router.RequestsByTenant[tenant] = n
		}
	}
	if len(r.tenantShed) > 0 {
		out.Router.ShedByTenant = make(map[string]int64, len(r.tenantShed))
		for tenant, n := range r.tenantShed {
			out.Router.ShedByTenant[tenant] = n
		}
	}
	r.tmu.Unlock()
	for _, name := range order {
		out.Models = append(out.Models, *byModel[name])
	}
	for _, st := range r.pool.Status() {
		out.Router.Replicas = append(out.Router.Replicas, RouterReplicaJSON{
			Name:              st.Name,
			URL:               st.URL,
			Healthy:           st.Healthy,
			Draining:          st.Draining,
			ConsecutiveErrors: st.ConsecutiveErrors,
			Ejections:         st.Ejections,
			Inflight:          st.Inflight,
			QueueDepth:        st.QueueDepth,
		})
	}
	return out
}

// mergeTenantMetrics folds one replica's per-tenant metrics block into
// the fleet aggregate for a model: counters and queue depths sum,
// queue-latency summaries merge like every other histogram.
func mergeTenantMetrics(agg *ModelMetricsJSON, tenants map[string]TenantMetricsJSON) {
	if len(tenants) == 0 {
		return
	}
	if agg.Tenants == nil {
		agg.Tenants = make(map[string]TenantMetricsJSON, len(tenants))
	}
	for tenant, tm := range tenants {
		cur := agg.Tenants[tenant]
		cur.Requests += tm.Requests
		cur.Items += tm.Items
		cur.Shed += tm.Shed
		cur.Expired += tm.Expired
		cur.QueueDepth += tm.QueueDepth
		cur.QueueMs = mergeLatency(cur.QueueMs, tm.QueueMs)
		agg.Tenants[tenant] = cur
	}
}

// mergeLatency folds two latency summaries. When both carry their
// histogram buckets (shared layout), the merge is exact: bucket counts
// add element-wise and the merged percentiles are recomputed from the
// merged distribution. Only when a peer predates histogram shipping
// does the merge degrade to the legacy count-weighted mean of
// percentiles — which is an approximation, not a percentile of the
// merged distribution (a count-weighted mean of two p99s can sit far
// below the true merged p99 when replicas have skewed tails).
func mergeLatency(a, b LatencySummaryJSON) LatencySummaryJSON {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	if ha, ok := histFromJSON(a); ok {
		if hb, ok := histFromJSON(b); ok {
			return histToJSON(ha.Merge(hb))
		}
	}
	n := a.Count + b.Count
	wa, wb := float64(a.Count)/float64(n), float64(b.Count)/float64(n)
	out := LatencySummaryJSON{
		Count:  n,
		MeanMs: wa*a.MeanMs + wb*b.MeanMs,
		P50Ms:  wa*a.P50Ms + wb*b.P50Ms,
		P95Ms:  wa*a.P95Ms + wb*b.P95Ms,
		P99Ms:  wa*a.P99Ms + wb*b.P99Ms,
		SumMs:  a.SumMs + b.SumMs,
		MinMs:  a.MinMs,
		MaxMs:  a.MaxMs,
	}
	if b.MinMs > 0 && (out.MinMs == 0 || b.MinMs < out.MinMs) {
		out.MinMs = b.MinMs
	}
	if b.MaxMs > out.MaxMs {
		out.MaxMs = b.MaxMs
	}
	return out
}

// Stats aggregates one model's stats across replicas.
func (r *Router) Stats(ctx context.Context, model string) (StatsJSON, error) {
	out := StatsJSON{Model: model}
	var fill float64
	found := false
	var lastErr error
	for _, rep := range r.pool.Replicas() {
		if !rep.Healthy() {
			continue
		}
		st, err := rep.client.Stats(ctx, model)
		if err != nil {
			lastErr = err
			continue
		}
		found = true
		out.RequestsServed += st.RequestsServed
		out.Requests += st.Requests
		out.ItemsServed += st.ItemsServed
		out.BatchesRun += st.BatchesRun
		fill += st.MeanBatchFill * float64(st.BatchesRun)
	}
	if !found {
		if lastErr != nil {
			return StatsJSON{}, lastErr
		}
		return StatsJSON{}, ErrNoReplicas
	}
	if out.BatchesRun > 0 {
		out.MeanBatchFill = fill / float64(out.BatchesRun)
	}
	return out, nil
}

// Handler exposes the router over HTTP with the same /v2/* surface as
// a single Server, so serve.Client (and anything else speaking the
// KServe-v2-flavored API) works unchanged against a router:
//
//	GET  /v2/health/ready       ready iff >=1 healthy replica
//	GET  /v2/models             union across replicas
//	GET  /v2/metrics            aggregated + router/replica detail
//	GET  /v2/models/{name}/stats aggregated across replicas
//	POST /v2/models/{name}/infer routed with failover
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/health/ready", func(w http.ResponseWriter, req *http.Request) {
		if r.pool.HealthyCount() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: ErrNoReplicas.Error()})
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/models", func(w http.ResponseWriter, req *http.Request) {
		names, err := r.Models(req.Context())
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, ModelListJSON{Models: names})
	})
	mux.HandleFunc("GET /v2/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Metrics(req.Context()))
	})
	mux.HandleFunc("GET /v2/trace", func(w http.ResponseWriter, req *http.Request) {
		rec := r.trace
		if rec == nil {
			rec = trace.NewRecorder()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteChromeFiltered(w, tenantSpanFilter(req.URL.Query().Get("tenant")))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		r.writeProm(w, req.Context())
	})
	mux.HandleFunc("GET /v2/models/", func(w http.ResponseWriter, req *http.Request) {
		name, ok := cutModelAction(req.URL.Path, "stats")
		if !ok {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		st, err := r.Stats(req.Context(), name)
		if err != nil {
			writeJSON(w, routerErrStatus(err), errorJSON{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v2/models/", func(w http.ResponseWriter, req *http.Request) {
		name, ok := cutModelAction(req.URL.Path, "infer")
		if !ok {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "not found"})
			return
		}
		if r.cfg.MaxBodyBytes > 0 {
			req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		}
		var body InferRequestJSON
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorJSON{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
				return
			}
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
			return
		}
		// Fix the request id at the edge: the same id rides the body and
		// the X-Request-ID header to the replica, and is echoed back, so
		// one id follows the request across tiers.
		body.ID = requestID(body.ID, req)
		w.Header().Set(RequestIDHeader, body.ID)
		// Canonicalize the tenant at the edge too, so router-side
		// accounting, trace spans, and the replica all see one id.
		tenant, err := tenantOf(body.Tenant, req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
			return
		}
		body.Tenant = tenant
		w.Header().Set(TenantHeader, tenant)
		resp, err := r.Infer(req.Context(), name, body)
		if err != nil {
			var qe *QuotaError
			var oe *overloadError
			if errors.As(err, &qe) {
				// Router-level quota shed: Retry-After prices the
				// tenant's own token-bucket refill, not fleet backlog.
				w.Header().Set("Retry-After", strconv.Itoa(clampRetrySeconds(int(qe.RetryAfter.Seconds())+1)))
			} else if errors.As(err, &oe) && oe.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(oe.retryAfter/time.Second)+1))
			}
			writeJSON(w, routerErrStatus(err), errorJSON{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v2/streams/{camera}", r.handleStreamProxy)
	return mux
}

// writeProm writes the router's Prometheus text exposition: routing
// counters, the end-to-end routed latency histogram, per-replica
// health gauges, and the per-model latency histograms merged exactly
// across replicas.
func (r *Router) writeProm(w http.ResponseWriter, ctx context.Context) {
	pw := metrics.PromWriter{W: w}
	pw.Head("harvest_router_requests_total", "counter", "Proxied requests answered successfully.")
	pw.Int("harvest_router_requests_total", "", r.met.requests.Load())
	pw.Head("harvest_router_errors_total", "counter", "Proxied requests that ultimately failed.")
	pw.Int("harvest_router_errors_total", "", r.met.errors.Load())
	pw.Head("harvest_router_failovers_total", "counter", "Replica faults that moved a request to another replica.")
	pw.Int("harvest_router_failovers_total", "", r.met.failovers.Load())
	pw.Head("harvest_router_spills_total", "counter", "Overload rejections that moved a request to another replica.")
	pw.Int("harvest_router_spills_total", "", r.met.spills.Load())
	pw.Head("harvest_router_quota_rejects_total", "counter", "Requests refused by the router-level tenant quota.")
	pw.Int("harvest_router_quota_rejects_total", "", r.met.quotaShed.Load())
	pw.Head("harvest_router_streams_total", "counter", "Camera ingest streams proxied to a replica.")
	pw.Int("harvest_router_streams_total", "", r.met.streams.Load())
	pw.Head("harvest_router_latency_seconds", "histogram", "End-to-end latency of successfully routed requests.")
	pw.Hist("harvest_router_latency_seconds", "", r.met.latency.Snapshot())

	r.tmu.Lock()
	tenants := make([]string, 0, len(r.tenantReqs))
	for tenant := range r.tenantReqs {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	if len(tenants) > 0 {
		pw.Head("harvest_router_tenant_requests_total", "counter", "Successfully routed requests per tenant.")
		for _, tenant := range tenants {
			pw.Int("harvest_router_tenant_requests_total", metrics.PromLabel("tenant", tenant), r.tenantReqs[tenant])
		}
	}
	shedTenants := make([]string, 0, len(r.tenantShed))
	for tenant := range r.tenantShed {
		shedTenants = append(shedTenants, tenant)
	}
	sort.Strings(shedTenants)
	if len(shedTenants) > 0 {
		pw.Head("harvest_router_tenant_shed_total", "counter", "Router-quota rejections per tenant.")
		for _, tenant := range shedTenants {
			pw.Int("harvest_router_tenant_shed_total", metrics.PromLabel("tenant", tenant), r.tenantShed[tenant])
		}
	}
	r.tmu.Unlock()

	pw.Head("harvest_replica_healthy", "gauge", "1 if the replica is in rotation, 0 if ejected.")
	status := r.pool.Status()
	for _, st := range status {
		v := int64(0)
		if st.Healthy {
			v = 1
		}
		pw.Int("harvest_replica_healthy", metrics.PromLabel("replica", st.Name), v)
	}
	pw.Head("harvest_replica_inflight", "gauge", "Router-proxied requests currently on the replica.")
	for _, st := range status {
		pw.Int("harvest_replica_inflight", metrics.PromLabel("replica", st.Name), st.Inflight)
	}
	pw.Head("harvest_replica_queue_depth", "gauge", "Replica-reported total admission queue depth.")
	for _, st := range status {
		pw.Int("harvest_replica_queue_depth", metrics.PromLabel("replica", st.Name), st.QueueDepth)
	}
	pw.Head("harvest_replica_ejections_total", "counter", "Times the replica was ejected from rotation.")
	for _, st := range status {
		pw.Int("harvest_replica_ejections_total", metrics.PromLabel("replica", st.Name), st.Ejections)
	}

	// Per-model latency across the fleet, merged exactly from replica
	// histograms (weighted-mean fallback summaries carry no buckets and
	// are skipped here rather than exposed as a fake distribution).
	agg := r.Metrics(ctx)
	pw.Head("harvest_queue_latency_seconds", "histogram", "Fleet-wide queue latency, merged across replicas.")
	for _, m := range agg.Models {
		if h, ok := histFromJSON(m.QueueMs); ok {
			pw.Hist("harvest_queue_latency_seconds", metrics.PromLabel("model", m.Model), h)
		}
	}
	pw.Head("harvest_compute_latency_seconds", "histogram", "Fleet-wide compute latency, merged across replicas.")
	for _, m := range agg.Models {
		if h, ok := histFromJSON(m.ComputeMs); ok {
			pw.Hist("harvest_compute_latency_seconds", metrics.PromLabel("model", m.Model), h)
		}
	}
	pw.Head("harvest_preprocess_latency_seconds", "histogram", "Fleet-wide preprocess latency, merged across replicas.")
	for _, m := range agg.Models {
		if h, ok := histFromJSON(m.PreprocessMs); ok && h.Count > 0 {
			pw.Hist("harvest_preprocess_latency_seconds", metrics.PromLabel("model", m.Model), h)
		}
	}
	if r.trace != nil {
		pw.Head("harvest_trace_spans_dropped_total", "counter", "Trace spans evicted from the ring buffer.")
		pw.Int("harvest_trace_spans_dropped_total", "", int64(r.trace.Dropped()))
	}
}

// cutModelAction parses /v2/models/{name}/{action} paths.
func cutModelAction(path, action string) (string, bool) {
	rest := strings.TrimPrefix(path, "/v2/models/")
	name, got, ok := strings.Cut(rest, "/")
	return name, ok && got == action && name != ""
}

// routerErrStatus maps a routing error to the status the router
// surfaces: replica statuses pass through, overload is 429, a closed
// or empty router is 503, and transport-level replica failures are
// 502 (the router itself is fine; the tier behind it is not).
func routerErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadlineExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrServerClosed), errors.Is(err, ErrNoReplicas):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadClass):
		return http.StatusBadRequest
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	return http.StatusBadGateway
}
