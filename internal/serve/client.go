package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the Go frontend client for a HARVEST inference server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the given base URL (e.g.
// "http://127.0.0.1:8000").
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 60 * time.Second},
	}
}

// Ready reports whether the server's readiness probe succeeds.
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/health/ready", nil)
	if err != nil {
		return false
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls readiness until success or the context ends.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		if c.Ready(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: server not ready: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Models lists the models served.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: list models: HTTP %d", resp.StatusCode)
	}
	var out ModelListJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Stats fetches a model's serving statistics.
func (c *Client) Stats(ctx context.Context, model string) (*StatsJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v2/models/"+model+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: stats for %s: HTTP %d", model, resp.StatusCode)
	}
	var out StatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Infer submits one inference request.
func (c *Client) Infer(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+FormatInferPath(model), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return nil, fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("serve: HTTP %d", resp.StatusCode)
	}
	var out InferResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
