package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go frontend client for a HARVEST inference server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxRetries bounds retry attempts for idempotent GETs (transport
	// errors and 5xx responses) and for 429-rejected inferences (safe:
	// a shed request was never admitted). 0 means defaultMaxRetries;
	// negative disables retries.
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubled per
	// attempt. 0 means defaultRetryBackoff.
	RetryBackoff time.Duration
}

const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 25 * time.Millisecond
)

// NewClient creates a client for the given base URL (e.g.
// "http://127.0.0.1:8000").
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 60 * time.Second},
	}
}

// retries and backoff resolve the client's retry knobs.
func (c *Client) retries() int {
	if c.MaxRetries == 0 {
		return defaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c *Client) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return c.RetryBackoff
}

// drainClose exhausts and closes a response body so the underlying
// HTTP connection can be reused instead of torn down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	body.Close()
}

// getJSON fetches path with bounded retry-with-backoff (safe: GETs are
// idempotent) and decodes a 200 response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	retries := c.retries()
	backoff := c.backoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("serve: GET %s: %w (last error: %v)", path, ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		err := c.getJSONOnce(ctx, path, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var re *retryableError
		if attempt >= retries || ctx.Err() != nil || !errors.As(err, &re) {
			return err
		}
	}
}

// retryableError marks transport failures and 5xx responses.
type retryableError struct{ err error }

func (r *retryableError) Error() string { return r.err.Error() }
func (r *retryableError) Unwrap() error { return r.err }

func (c *Client) getJSONOnce(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return &retryableError{fmt.Errorf("serve: GET %s: %w", path, err)}
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("serve: GET %s: HTTP %d", path, resp.StatusCode)
		if resp.StatusCode >= 500 {
			return &retryableError{err}
		}
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Ready reports whether the server's readiness probe succeeds.
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/health/ready", nil)
	if err != nil {
		return false
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls readiness until success or the context ends.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		if c.Ready(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: server not ready: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Models lists the models served.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	var out ModelListJSON
	if err := c.getJSON(ctx, "/v2/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Stats fetches a model's serving statistics.
func (c *Client) Stats(ctx context.Context, model string) (*StatsJSON, error) {
	var out StatsJSON
	if err := c.getJSON(ctx, "/v2/models/"+model+"/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the per-model serving metrics of every model.
func (c *Client) Metrics(ctx context.Context) (*MetricsJSON, error) {
	var out MetricsJSON
	if err := c.getJSON(ctx, "/v2/metrics", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// overloadError marks a 429 rejection, carrying the server's
// Retry-After hint.
type overloadError struct {
	err        error
	retryAfter time.Duration
}

func (o *overloadError) Error() string { return o.err.Error() }
func (o *overloadError) Unwrap() error { return o.err }

// Infer submits one inference request. Ordinary failures are not
// retried (POSTs are not idempotent from the server's point of view),
// but a 429 rejection is: the request was shed before admission, so
// resubmitting after the server's Retry-After hint (capped at the
// client's doubling backoff schedule) cannot duplicate work. When the
// body carries no deadline_ms and the context has a deadline, the
// remaining context budget propagates as the request's deadline.
func (c *Client) Infer(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	retries := c.retries()
	backoff := c.backoff()
	explicitDeadline := body.DeadlineMs > 0
	for attempt := 0; ; attempt++ {
		if !explicitDeadline {
			// Re-derive per attempt: the remaining budget shrinks while
			// we back off.
			body.DeadlineMs = 0
			if dl, ok := ctx.Deadline(); ok {
				if ms := float64(time.Until(dl)) / float64(time.Millisecond); ms > 0 {
					body.DeadlineMs = ms
				}
			}
		}
		out, err := c.inferOnce(ctx, model, body)
		if err == nil {
			return out, nil
		}
		var oe *overloadError
		if attempt >= retries || ctx.Err() != nil || !errors.As(err, &oe) {
			return nil, err
		}
		wait := backoff
		if oe.retryAfter > 0 && oe.retryAfter < wait {
			wait = oe.retryAfter
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: infer %s: %w (last error: %v)", model, ctx.Err(), err)
		case <-time.After(wait):
		}
		backoff *= 2
	}
}

func (c *Client) inferOnce(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+FormatInferPath(model), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		msg := ""
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil {
			msg = e.Error
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			var after time.Duration
			if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
				after = time.Duration(sec) * time.Second
			}
			return nil, &overloadError{
				err:        fmt.Errorf("%w: HTTP 429: %s", ErrOverloaded, msg),
				retryAfter: after,
			}
		case http.StatusGatewayTimeout:
			return nil, fmt.Errorf("%w: HTTP 504: %s", ErrDeadlineExpired, msg)
		}
		if msg != "" {
			return nil, fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, msg)
		}
		return nil, fmt.Errorf("serve: HTTP %d", resp.StatusCode)
	}
	var out InferResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
