package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Client is the Go frontend client for a HARVEST inference server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxRetries bounds retry attempts for idempotent GETs (transport
	// errors and 5xx responses) and for 429-rejected inferences (safe:
	// a shed request was never admitted). 0 means defaultMaxRetries;
	// negative disables retries.
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubled per
	// attempt. 0 means defaultRetryBackoff.
	RetryBackoff time.Duration
	// RequestTimeout bounds one HTTP attempt when the request carries
	// no deadline of its own. Requests with a deadline_ms instead get a
	// per-attempt timeout of deadline + a fixed slack, so a tight SLO
	// is not fought by a long global cap and a long offline deadline is
	// not cut short by it. 0 means defaultRequestTimeout; negative
	// disables the attempt timeout entirely.
	RequestTimeout time.Duration
}

const (
	defaultMaxRetries     = 3
	defaultRetryBackoff   = 25 * time.Millisecond
	defaultRequestTimeout = 60 * time.Second
	// deadlineSlack pads a deadline-derived attempt timeout: the server
	// answers an unmeetable deadline with 504 almost immediately, but
	// the response still has to cross the network.
	deadlineSlack = time.Second
)

// NewTransport returns an HTTP transport tuned for serving fan-out:
// enough idle connections per host that a router probing and proxying
// to many replicas reuses connections instead of exhausting ephemeral
// ports, and bounded dial/handshake times so a dead replica fails fast.
func NewTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// NewClient creates a client for the given base URL (e.g.
// "http://127.0.0.1:8000"). The underlying transport is owned by the
// client; replace or share one via the HTTP field (a router fanning
// out to many replicas should share a single NewTransport across its
// per-replica clients). Attempt timeouts are per-request (see
// RequestTimeout), not a global http.Client.Timeout, so per-request
// deadlines are honored.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Transport: NewTransport()},
	}
}

// retries and backoff resolve the client's retry knobs.
func (c *Client) retries() int {
	if c.MaxRetries == 0 {
		return defaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c *Client) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return c.RetryBackoff
}

// requestTimeout resolves the no-deadline attempt timeout.
func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout < 0 {
		return 0
	}
	if c.RequestTimeout == 0 {
		return defaultRequestTimeout
	}
	return c.RequestTimeout
}

// attemptCtx bounds one HTTP attempt: by the request's own deadline
// plus slack when it carries one, by RequestTimeout otherwise.
func (c *Client) attemptCtx(ctx context.Context, deadlineMs float64) (context.Context, context.CancelFunc) {
	timeout := c.requestTimeout()
	if deadlineMs > 0 {
		if t := time.Duration(deadlineMs*float64(time.Millisecond)) + deadlineSlack; timeout == 0 || t < timeout {
			timeout = t
		}
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// StatusError reports a non-2xx HTTP response from the server,
// preserving the status code so callers (the replica router in
// particular) can distinguish replica faults (5xx, eject-worthy) from
// backpressure (429, spill elsewhere) and caller errors (4xx, final).
type StatusError struct {
	Code int
	Msg  string
	// base is the matching sentinel error (ErrOverloaded,
	// ErrDeadlineExpired, ErrServerClosed) when the code maps to one.
	base error
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("serve: HTTP %d", e.Code)
}

func (e *StatusError) Unwrap() error { return e.base }

// statusError builds the StatusError for a non-OK response.
func statusError(code int, msg string) *StatusError {
	e := &StatusError{Code: code, Msg: msg}
	switch code {
	case http.StatusTooManyRequests:
		e.base = ErrOverloaded
	case http.StatusGatewayTimeout:
		e.base = ErrDeadlineExpired
	case http.StatusServiceUnavailable:
		e.base = ErrServerClosed
	}
	return e
}

// drainClose exhausts and closes a response body so the underlying
// HTTP connection can be reused instead of torn down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	body.Close()
}

// getJSON fetches path with bounded retry-with-backoff (safe: GETs are
// idempotent) and decodes a 200 response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	retries := c.retries()
	backoff := c.backoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("serve: GET %s: %w (last error: %v)", path, ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		err := c.getJSONOnce(ctx, path, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var re *retryableError
		if attempt >= retries || ctx.Err() != nil || !errors.As(err, &re) {
			return err
		}
	}
}

// retryableError marks transport failures and 5xx responses.
type retryableError struct{ err error }

func (r *retryableError) Error() string { return r.err.Error() }
func (r *retryableError) Unwrap() error { return r.err }

func (c *Client) getJSONOnce(ctx context.Context, path string, out any) error {
	ctx, cancel := c.attemptCtx(ctx, 0)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return &retryableError{fmt.Errorf("serve: GET %s: %w", path, err)}
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("serve: GET %s: HTTP %d", path, resp.StatusCode)
		if resp.StatusCode >= 500 {
			return &retryableError{err}
		}
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Ready reports whether the server's readiness probe succeeds.
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v2/health/ready", nil)
	if err != nil {
		return false
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// WaitReady polls readiness until success or the context ends.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		if c.Ready(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: server not ready: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Models lists the models served.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	var out ModelListJSON
	if err := c.getJSON(ctx, "/v2/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Stats fetches a model's serving statistics.
func (c *Client) Stats(ctx context.Context, model string) (*StatsJSON, error) {
	var out StatsJSON
	if err := c.getJSON(ctx, "/v2/models/"+model+"/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the per-model serving metrics of every model.
func (c *Client) Metrics(ctx context.Context) (*MetricsJSON, error) {
	var out MetricsJSON
	if err := c.getJSON(ctx, "/v2/metrics", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TransportError classifies a failed infer round trip by whether any of
// the request reached the wire. Sent == false means the failure struck
// before the request was written (dial refused, TLS failure, a dead
// replica's port): the server cannot have seen the request, so
// resending cannot duplicate work. Sent == true means the request — or
// part of it — was written and the transport failed afterwards (reset
// mid-body, connection killed before the response): the server may have
// executed the inference, so a non-idempotent retry is unsafe and the
// error is final from the client's point of view.
type TransportError struct {
	Sent bool
	Err  error
}

func (e *TransportError) Error() string {
	if e.Sent {
		return fmt.Sprintf("serve: transport failure after request was sent (may have executed): %v", e.Err)
	}
	return fmt.Sprintf("serve: transport failure before request was sent: %v", e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// RequestUnsent reports whether err is a transport failure that struck
// before any request bytes were written — the only transport failure a
// non-idempotent request may be blindly retried after.
func RequestUnsent(err error) bool {
	var te *TransportError
	return errors.As(err, &te) && !te.Sent
}

// overloadError marks a 429 rejection, carrying the server's
// Retry-After hint.
type overloadError struct {
	err        error
	retryAfter time.Duration
	// hasRetryAfter distinguishes an explicit "Retry-After: 0" (the
	// server says retry immediately) from an absent or unparseable
	// header (fall back to the client's own backoff).
	hasRetryAfter bool
}

func (o *overloadError) Error() string { return o.err.Error() }
func (o *overloadError) Unwrap() error { return o.err }

// RetryAfterHint extracts the server's Retry-After hint from a 429
// error returned by Infer, for callers that disable the client's
// internal retries (MaxRetries < 0) and manage backoff themselves —
// e.g. a closed-loop load driver that must not hammer rejects in a
// tight loop.
func RetryAfterHint(err error) (time.Duration, bool) {
	var oe *overloadError
	if errors.As(err, &oe) && oe.hasRetryAfter {
		return oe.retryAfter, true
	}
	return 0, false
}

// parseRetryAfter parses a Retry-After header value in either RFC 7231
// form: delta-seconds ("120") or an HTTP-date. ok reports whether the
// header was present and parseable. Negative deltas and past dates
// yield 0 (retry immediately).
func parseRetryAfter(h string, now time.Time) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if sec, err := strconv.Atoi(h); err == nil {
		if sec < 0 {
			return 0, true
		}
		return time.Duration(sec) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := t.Sub(now)
		if d < 0 {
			return 0, true
		}
		return d, true
	}
	return 0, false
}

// Infer submits one inference request. Ordinary failures are not
// retried (POSTs are not idempotent from the server's point of view),
// but a 429 rejection is: the request was shed before admission, so
// resubmitting after the server's Retry-After hint (capped at the
// client's doubling backoff schedule) cannot duplicate work. When the
// body carries no deadline_ms and the context has a deadline, the
// remaining context budget propagates as the request's deadline.
func (c *Client) Infer(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	retries := c.retries()
	backoff := c.backoff()
	explicitDeadline := body.DeadlineMs > 0
	for attempt := 0; ; attempt++ {
		if !explicitDeadline {
			// Re-derive per attempt: the remaining budget shrinks while
			// we back off.
			body.DeadlineMs = 0
			if dl, ok := ctx.Deadline(); ok {
				if ms := float64(time.Until(dl)) / float64(time.Millisecond); ms > 0 {
					body.DeadlineMs = ms
				}
			}
		}
		out, err := c.inferOnce(ctx, model, body)
		if err == nil {
			return out, nil
		}
		// Retry only failures that provably never reached the batcher: a
		// 429 (shed before admission) or a transport failure before the
		// request was written. A mid-body or mid-response transport error
		// is final here — the server may have executed the inference, and
		// resending would double-count the work (for a camera stream, the
		// frame). Callers that can failover safely (the router, with its
		// replica-side accounting) make that decision themselves.
		var oe *overloadError
		retryable := errors.As(err, &oe) || RequestUnsent(err)
		if attempt >= retries || ctx.Err() != nil || !retryable {
			return nil, err
		}
		// The server's Retry-After is a *floor* on the next attempt, not
		// a cap: retrying sooner than the server asked amplifies the very
		// congestion that caused the 429. An explicit "Retry-After: 0"
		// means retry immediately. Absent a hint, the client's own
		// doubling backoff applies.
		wait := backoff
		if oe != nil && oe.hasRetryAfter {
			if oe.retryAfter == 0 {
				wait = 0
			} else if oe.retryAfter > wait {
				wait = oe.retryAfter
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < wait {
			// Honoring the floor would outlive the caller's budget:
			// surface the overload instead of sleeping into the deadline.
			return nil, fmt.Errorf("serve: infer %s: retry-after %s exceeds context budget: %w (last error: %v)",
				model, wait, context.DeadlineExceeded, err)
		}
		if wait > 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("serve: infer %s: %w (last error: %v)", model, ctx.Err(), err)
			case <-time.After(wait):
			}
		}
		backoff *= 2
	}
}

func (c *Client) inferOnce(ctx context.Context, model string, body InferRequestJSON) (*InferResponseJSON, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	ctx, cancel := c.attemptCtx(ctx, body.DeadlineMs)
	defer cancel()
	// Track whether this attempt's bytes ever hit the wire, so a
	// transport failure can be classified sent vs unsent. WroteHeaders
	// fires once the transport has written the header block to the
	// connection; from that moment the server may have seen (and begun
	// executing) the request, so mid-body and mid-response failures must
	// not be blindly retried the way a refused dial is.
	var sent atomic.Bool
	ctx = httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
		WroteHeaders: func() { sent.Store(true) },
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+FormatInferPath(model), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if body.ID != "" {
		// Propagate the request id so every tier logs and traces the
		// same identity for this request.
		req.Header.Set(RequestIDHeader, body.ID)
	}
	if body.Tenant != "" {
		// Same for the tenant: the header rides alongside the body so
		// intermediaries that only look at headers still see it.
		req.Header.Set(TenantHeader, body.Tenant)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, &TransportError{Sent: sent.Load(), Err: err}
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		msg := ""
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil {
			msg = e.Error
		}
		se := statusError(resp.StatusCode, msg)
		if resp.StatusCode == http.StatusTooManyRequests {
			after, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			return nil, &overloadError{err: se, retryAfter: after, hasRetryAfter: ok}
		}
		return nil, se
	}
	var out InferResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
