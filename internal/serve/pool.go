package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Replica health states. A replica starts healthy, is ejected after
// EjectAfter consecutive errors (circuit open), and re-enters service
// through a half-open probe once its ejection window lapses.
const (
	replicaHealthy int32 = iota
	replicaEjected
)

// Pool defaults.
const (
	// DefaultProbeInterval is the period of the per-replica health loop
	// (readiness probe + /v2/metrics refresh).
	DefaultProbeInterval = 250 * time.Millisecond
	// DefaultEjectAfter is the consecutive-error threshold that ejects
	// a replica from dispatch.
	DefaultEjectAfter = 3
	// DefaultEjectionDuration is how long an ejected replica sits out
	// before a half-open probe may readmit it.
	DefaultEjectionDuration = 2 * time.Second
	// DefaultProbeTimeout bounds one readiness/metrics probe.
	DefaultProbeTimeout = 2 * time.Second
)

// staleMetricsFactor is how many probe intervals a metrics snapshot
// stays trusted for load scoring. A replica whose /v2/metrics probe
// keeps failing (while /ready still answers) would otherwise be ranked
// on its last snapshot forever — e.g. avoided indefinitely because it
// reported a deep queue just before the probe path broke, even though
// the queue drained long ago. Past the horizon, score falls back to
// the router's own in-flight count, which is always current.
const staleMetricsFactor = 3

// probePhaseSlots spreads replica health loops across the probe
// interval: replica i starts its loop at offset (i mod slots)/slots of
// one interval. Without the offset every loop in a pool ticks in phase
// (they all start at the same instant with the same period), so N
// replicas receive a synchronized probe burst every interval.
const probePhaseSlots = 16

// PoolConfig configures replica health checking and outlier ejection.
type PoolConfig struct {
	// ProbeInterval is the health-loop period (default
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// EjectAfter ejects a replica after this many consecutive errors
	// (probe failures, transport errors, 5xx responses). Default
	// DefaultEjectAfter.
	EjectAfter int
	// EjectionDuration is how long an ejection lasts before the health
	// loop half-opens the circuit with a single readiness probe:
	// success readmits the replica, failure re-ejects it for another
	// window. Default DefaultEjectionDuration.
	EjectionDuration time.Duration
	// ProbeTimeout bounds one probe round trip (default
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// Transport, when non-nil, is shared by every per-replica client
	// (fan-out reuses one connection pool). nil means NewTransport().
	Transport http.RoundTripper
}

func (cfg *PoolConfig) fillDefaults() {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.EjectionDuration <= 0 {
		cfg.EjectionDuration = DefaultEjectionDuration
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.Transport == nil {
		cfg.Transport = NewTransport()
	}
}

// Replica is one backend in a Pool: a serve.Client plus health and
// load state maintained by the health loop and the request path.
type Replica struct {
	Name string
	URL  string

	client *Client
	pool   *Pool
	// done is closed when the replica is removed from the pool,
	// stopping its health loop. Requests already holding the replica
	// are unaffected: the client stays usable until they finish.
	done chan struct{}
	// phase staggers this replica's health loop within the probe
	// interval (see probePhaseSlots).
	phase time.Duration

	state        atomic.Int32 // replicaHealthy / replicaEjected
	draining     atomic.Bool  // excluded from new picks; in-flight work finishes
	consecErrs   atomic.Int32
	ejectedUntil atomic.Int64 // unix nanos; valid while state == replicaEjected
	ejections    atomic.Int64 // total ejections (observability)
	inflight     atomic.Int64 // router-proxied requests currently on this replica
	metrics      atomic.Pointer[MetricsJSON]
	metricsAt    atomic.Int64 // unix nanos of the last successful metrics fetch
}

// Client returns the replica's HTTP client.
func (rep *Replica) Client() *Client { return rep.client }

// Healthy reports whether the replica is in dispatch rotation.
func (rep *Replica) Healthy() bool { return rep.state.Load() == replicaHealthy }

// Inflight returns the router-proxied requests currently on the
// replica (the drain signal for lease deregistration).
func (rep *Replica) Inflight() int64 { return rep.inflight.Load() }

// SetDraining marks the replica as draining: it stops receiving new
// picks (except as the very last untried resort) while in-flight
// requests finish. A fleet control plane sets it before removing the
// replica so scale-down never fails admitted requests.
func (rep *Replica) SetDraining(v bool) { rep.draining.Store(v) }

// Draining reports whether the replica is excluded from new dispatch.
func (rep *Replica) Draining() bool { return rep.draining.Load() }

// storeMetrics records a fresh metrics snapshot with its fetch time,
// so score can tell a live snapshot from a fossil.
func (rep *Replica) storeMetrics(m *MetricsJSON) {
	rep.metrics.Store(m)
	rep.metricsAt.Store(time.Now().UnixNano())
}

// score is the replica's load estimate for one model and the dispatch
// key of the least-loaded policy: requests the router currently has in
// flight on the replica (immediate, covers the window between metrics
// refreshes) plus the replica's last-reported admission-queue depth
// (covers load from other frontends). The queue-depth term is only
// trusted while the snapshot is fresh — within staleMetricsFactor
// probe intervals of its fetch; after that score degrades to
// inflight-only rather than ranking the replica on stale state.
func (rep *Replica) score(model string) float64 {
	s := float64(rep.inflight.Load())
	m := rep.metrics.Load()
	if m == nil {
		return s
	}
	if age := time.Now().UnixNano() - rep.metricsAt.Load(); age > int64(staleMetricsFactor*rep.pool.cfg.ProbeInterval) {
		return s
	}
	for _, mm := range m.Models {
		if mm.Model == model {
			s += float64(mm.QueueDepth)
			break
		}
	}
	return s
}

// noteError records a request/probe failure attributable to the
// replica. Crossing the consecutive-error threshold ejects it.
func (rep *Replica) noteError() {
	n := rep.consecErrs.Add(1)
	if int(n) >= rep.pool.cfg.EjectAfter {
		rep.eject()
	}
}

// noteSuccess records a successful round trip, closing the circuit:
// an ejected replica that answers (a half-open probe or a
// no-healthy-replica fallback request) is readmitted immediately.
func (rep *Replica) noteSuccess() {
	rep.consecErrs.Store(0)
	rep.state.Store(replicaHealthy)
}

// eject opens the circuit for a fresh ejection window.
func (rep *Replica) eject() {
	rep.ejectedUntil.Store(time.Now().Add(rep.pool.cfg.EjectionDuration).UnixNano())
	if rep.state.Swap(replicaEjected) != replicaEjected {
		rep.ejections.Add(1)
	}
}

// halfOpenDue reports whether the ejection window has lapsed, making
// the replica eligible for a recovery probe.
func (rep *Replica) halfOpenDue() bool {
	return rep.state.Load() == replicaEjected &&
		time.Now().UnixNano() >= rep.ejectedUntil.Load()
}

// ReplicaStatus is a point-in-time snapshot of one replica.
type ReplicaStatus struct {
	Name              string
	URL               string
	Healthy           bool
	Draining          bool
	ConsecutiveErrors int
	Ejections         int64
	Inflight          int64
	// QueueDepth sums the replica's last-reported per-model admission
	// queue depths (-1 when no metrics snapshot has been fetched yet).
	QueueDepth int64
}

func (rep *Replica) status() ReplicaStatus {
	st := ReplicaStatus{
		Name:              rep.Name,
		URL:               rep.URL,
		Healthy:           rep.Healthy(),
		Draining:          rep.Draining(),
		ConsecutiveErrors: int(rep.consecErrs.Load()),
		Ejections:         rep.ejections.Load(),
		Inflight:          rep.inflight.Load(),
		QueueDepth:        -1,
	}
	if m := rep.metrics.Load(); m != nil {
		st.QueueDepth = 0
		for _, mm := range m.Models {
			st.QueueDepth += mm.QueueDepth
		}
	}
	return st
}

// Pool is a health-checked replica set with mutable membership. It
// owns one goroutine per replica running periodic readiness probes and
// /v2/metrics refreshes, and serves load-aware replica picks to the
// Router. Members can be added and removed at runtime (the fleet
// control plane's lease registry does both under churn); removal stops
// the health loop and future picks but never touches requests already
// holding the replica.
type Pool struct {
	cfg PoolConfig

	mu       sync.RWMutex
	replicas []*Replica // replaced wholesale on mutation; safe to iterate a snapshot
	added    int        // total Add calls, names anonymous replicas and assigns probe phases
	closed   bool

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewPool builds a pool over the given backend base URLs and starts
// its health loops. Every per-replica client shares one transport.
func NewPool(urls []string, cfg PoolConfig) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("serve: pool needs at least one replica URL")
	}
	p := NewDynamicPool(cfg)
	for _, u := range urls {
		if _, err := p.Add("", u); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// NewDynamicPool builds an empty pool whose membership is managed at
// runtime via Add/Remove — the shape a fleet control plane needs,
// where replicas register and expire instead of being listed up front.
func NewDynamicPool(cfg PoolConfig) *Pool {
	cfg.fillDefaults()
	return &Pool{cfg: cfg, stop: make(chan struct{})}
}

// Add registers a new replica and starts its health loop. An empty
// name is assigned automatically ("r0", "r1", ...). Adding a name the
// pool already holds is an error (renewal is the registry's job, not
// the pool's).
func (p *Pool) Add(name, url string) (*Replica, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("serve: pool is closed")
	}
	if name == "" {
		name = fmt.Sprintf("r%d", p.added)
	}
	for _, rep := range p.replicas {
		if rep.Name == name {
			return nil, fmt.Errorf("serve: pool already has replica %q", name)
		}
	}
	rep := &Replica{
		Name: name,
		URL:  url,
		pool: p,
		done: make(chan struct{}),
		phase: p.cfg.ProbeInterval *
			time.Duration(p.added%probePhaseSlots) / probePhaseSlots,
		client: &Client{
			BaseURL: url,
			HTTP:    &http.Client{Transport: p.cfg.Transport},
			// The router does its own failover and 429 spilling;
			// client-level retries would fight it.
			MaxRetries: -1,
		},
	}
	p.added++
	next := make([]*Replica, len(p.replicas)+1)
	copy(next, p.replicas)
	next[len(p.replicas)] = rep
	p.replicas = next
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.healthLoop(rep)
	}()
	return rep, nil
}

// Remove takes the named replica out of the pool: its health loop
// stops and it is never picked again. In-flight requests holding the
// replica finish normally (the client object outlives membership), so
// removing a live replica under traffic fails nothing.
func (p *Pool) Remove(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, rep := range p.replicas {
		if rep.Name != name {
			continue
		}
		next := make([]*Replica, 0, len(p.replicas)-1)
		next = append(next, p.replicas[:i]...)
		next = append(next, p.replicas[i+1:]...)
		p.replicas = next
		close(rep.done)
		return true
	}
	return false
}

// snapshot returns the current member slice. The slice is replaced
// wholesale on every mutation, so iterating a snapshot is race-free.
func (p *Pool) snapshot() []*Replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas
}

// Replicas returns the current pool members.
func (p *Pool) Replicas() []*Replica { return p.snapshot() }

// Size returns the current member count.
func (p *Pool) Size() int { return len(p.snapshot()) }

// Status snapshots every replica.
func (p *Pool) Status() []ReplicaStatus {
	reps := p.snapshot()
	out := make([]ReplicaStatus, len(reps))
	for i, rep := range reps {
		out[i] = rep.status()
	}
	return out
}

// HealthyCount counts replicas currently in dispatch rotation.
func (p *Pool) HealthyCount() int {
	n := 0
	for _, rep := range p.snapshot() {
		if rep.Healthy() && !rep.Draining() {
			n++
		}
	}
	return n
}

// Close stops the health loops. It does not touch the replicas. Safe
// to call concurrently and more than once.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.stop)
	})
	p.wg.Wait()
}

// healthLoop probes one replica forever: readiness (+ metrics refresh)
// while healthy, and half-open recovery probes once an ejection window
// lapses. The loop starts at the replica's phase offset so probes
// spread across the interval instead of bursting in lockstep.
func (p *Pool) healthLoop(rep *Replica) {
	if rep.phase > 0 {
		t := time.NewTimer(rep.phase)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-rep.done:
			t.Stop()
			return
		case <-t.C:
		}
	}
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	p.probe(rep)
	for {
		select {
		case <-p.stop:
			return
		case <-rep.done:
			return
		case <-ticker.C:
			p.probe(rep)
		}
	}
}

func (p *Pool) probe(rep *Replica) {
	if rep.state.Load() == replicaEjected && !rep.halfOpenDue() {
		return // sitting out its ejection window
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	if !rep.client.Ready(ctx) {
		if rep.state.Load() == replicaEjected {
			// Failed half-open probe: re-eject for a fresh window.
			rep.eject()
		} else {
			rep.noteError()
		}
		return
	}
	rep.noteSuccess()
	// Refresh the load snapshot feeding least-loaded dispatch. Best
	// effort: a stale snapshot only degrades placement, not health —
	// and score stops trusting it once it ages past the staleness
	// horizon.
	if m, err := rep.client.Metrics(ctx); err == nil {
		rep.storeMetrics(m)
	}
}

// pickBest applies the class placement policy over the replicas that
// pass the filter: latency-sensitive lanes (realtime, online) take the
// least-loaded candidate, offline takes the *most* loaded — drained
// and slow replicas soak up throughput-oriented batches, keeping the
// fast path clear for deadline traffic (the paper's §2.2 scenario
// split).
func pickBest(reps []*Replica, model string, class Class, ok func(*Replica) bool) *Replica {
	var best *Replica
	var bestScore float64
	for _, rep := range reps {
		if !ok(rep) {
			continue
		}
		s := rep.score(model)
		if best == nil ||
			(class == ClassOffline && s > bestScore) ||
			(class != ClassOffline && s < bestScore) {
			best, bestScore = rep, s
		}
	}
	return best
}

// pick selects the dispatch target for one request, skipping replicas
// the request already tried. Healthy non-draining replicas are
// preferred; with none left, draining replicas are used (they are
// alive, just being retired), and as a last resort any untried replica
// is returned — a success there readmits it (request-path half-open).
// The class placement policy applies at every tier: the fallback also
// sends offline work to the busiest candidate, so a no-healthy-replica
// window doesn't spill batch traffic onto the least-loaded replica
// that realtime retries are about to want.
func (p *Pool) pick(model string, class Class, tried map[*Replica]bool) *Replica {
	reps := p.snapshot()
	if best := pickBest(reps, model, class, func(rep *Replica) bool {
		return !tried[rep] && rep.Healthy() && !rep.Draining()
	}); best != nil {
		return best
	}
	if best := pickBest(reps, model, class, func(rep *Replica) bool {
		return !tried[rep] && rep.Healthy()
	}); best != nil {
		return best
	}
	return pickBest(reps, model, class, func(rep *Replica) bool {
		return !tried[rep]
	})
}
