package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Replica health states. A replica starts healthy, is ejected after
// EjectAfter consecutive errors (circuit open), and re-enters service
// through a half-open probe once its ejection window lapses.
const (
	replicaHealthy int32 = iota
	replicaEjected
)

// Pool defaults.
const (
	// DefaultProbeInterval is the period of the per-replica health loop
	// (readiness probe + /v2/metrics refresh).
	DefaultProbeInterval = 250 * time.Millisecond
	// DefaultEjectAfter is the consecutive-error threshold that ejects
	// a replica from dispatch.
	DefaultEjectAfter = 3
	// DefaultEjectionDuration is how long an ejected replica sits out
	// before a half-open probe may readmit it.
	DefaultEjectionDuration = 2 * time.Second
	// DefaultProbeTimeout bounds one readiness/metrics probe.
	DefaultProbeTimeout = 2 * time.Second
)

// PoolConfig configures replica health checking and outlier ejection.
type PoolConfig struct {
	// ProbeInterval is the health-loop period (default
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// EjectAfter ejects a replica after this many consecutive errors
	// (probe failures, transport errors, 5xx responses). Default
	// DefaultEjectAfter.
	EjectAfter int
	// EjectionDuration is how long an ejection lasts before the health
	// loop half-opens the circuit with a single readiness probe:
	// success readmits the replica, failure re-ejects it for another
	// window. Default DefaultEjectionDuration.
	EjectionDuration time.Duration
	// ProbeTimeout bounds one probe round trip (default
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// Transport, when non-nil, is shared by every per-replica client
	// (fan-out reuses one connection pool). nil means NewTransport().
	Transport http.RoundTripper
}

func (cfg *PoolConfig) fillDefaults() {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.EjectionDuration <= 0 {
		cfg.EjectionDuration = DefaultEjectionDuration
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.Transport == nil {
		cfg.Transport = NewTransport()
	}
}

// Replica is one backend in a Pool: a serve.Client plus health and
// load state maintained by the health loop and the request path.
type Replica struct {
	Name string
	URL  string

	client *Client
	pool   *Pool

	state        atomic.Int32 // replicaHealthy / replicaEjected
	consecErrs   atomic.Int32
	ejectedUntil atomic.Int64 // unix nanos; valid while state == replicaEjected
	ejections    atomic.Int64 // total ejections (observability)
	inflight     atomic.Int64 // router-proxied requests currently on this replica
	metrics      atomic.Pointer[MetricsJSON]
}

// Client returns the replica's HTTP client.
func (rep *Replica) Client() *Client { return rep.client }

// Healthy reports whether the replica is in dispatch rotation.
func (rep *Replica) Healthy() bool { return rep.state.Load() == replicaHealthy }

// score is the replica's load estimate for one model and the dispatch
// key of the least-loaded policy: requests the router currently has in
// flight on the replica (immediate, covers the window between metrics
// refreshes) plus the replica's last-reported admission-queue depth
// (covers load from other frontends).
func (rep *Replica) score(model string) float64 {
	s := float64(rep.inflight.Load())
	if m := rep.metrics.Load(); m != nil {
		for _, mm := range m.Models {
			if mm.Model == model {
				s += float64(mm.QueueDepth)
				break
			}
		}
	}
	return s
}

// noteError records a request/probe failure attributable to the
// replica. Crossing the consecutive-error threshold ejects it.
func (rep *Replica) noteError() {
	n := rep.consecErrs.Add(1)
	if int(n) >= rep.pool.cfg.EjectAfter {
		rep.eject()
	}
}

// noteSuccess records a successful round trip, closing the circuit:
// an ejected replica that answers (a half-open probe or a
// no-healthy-replica fallback request) is readmitted immediately.
func (rep *Replica) noteSuccess() {
	rep.consecErrs.Store(0)
	rep.state.Store(replicaHealthy)
}

// eject opens the circuit for a fresh ejection window.
func (rep *Replica) eject() {
	rep.ejectedUntil.Store(time.Now().Add(rep.pool.cfg.EjectionDuration).UnixNano())
	if rep.state.Swap(replicaEjected) != replicaEjected {
		rep.ejections.Add(1)
	}
}

// halfOpenDue reports whether the ejection window has lapsed, making
// the replica eligible for a recovery probe.
func (rep *Replica) halfOpenDue() bool {
	return rep.state.Load() == replicaEjected &&
		time.Now().UnixNano() >= rep.ejectedUntil.Load()
}

// ReplicaStatus is a point-in-time snapshot of one replica.
type ReplicaStatus struct {
	Name              string
	URL               string
	Healthy           bool
	ConsecutiveErrors int
	Ejections         int64
	Inflight          int64
	// QueueDepth sums the replica's last-reported per-model admission
	// queue depths (-1 when no metrics snapshot has been fetched yet).
	QueueDepth int64
}

func (rep *Replica) status() ReplicaStatus {
	st := ReplicaStatus{
		Name:              rep.Name,
		URL:               rep.URL,
		Healthy:           rep.Healthy(),
		ConsecutiveErrors: int(rep.consecErrs.Load()),
		Ejections:         rep.ejections.Load(),
		Inflight:          rep.inflight.Load(),
		QueueDepth:        -1,
	}
	if m := rep.metrics.Load(); m != nil {
		st.QueueDepth = 0
		for _, mm := range m.Models {
			st.QueueDepth += mm.QueueDepth
		}
	}
	return st
}

// Pool is a health-checked replica set. It owns one goroutine per
// replica running periodic readiness probes and /v2/metrics refreshes,
// and serves load-aware replica picks to the Router.
type Pool struct {
	cfg      PoolConfig
	replicas []*Replica
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewPool builds a pool over the given backend base URLs and starts
// its health loops. Every per-replica client shares one transport.
func NewPool(urls []string, cfg PoolConfig) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("serve: pool needs at least one replica URL")
	}
	cfg.fillDefaults()
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	for i, u := range urls {
		rep := &Replica{
			Name: fmt.Sprintf("r%d", i),
			URL:  u,
			pool: p,
			client: &Client{
				BaseURL: u,
				HTTP:    &http.Client{Transport: cfg.Transport},
				// The router does its own failover and 429 spilling;
				// client-level retries would fight it.
				MaxRetries: -1,
			},
		}
		p.replicas = append(p.replicas, rep)
	}
	for _, rep := range p.replicas {
		p.wg.Add(1)
		go func(rep *Replica) {
			defer p.wg.Done()
			p.healthLoop(rep)
		}(rep)
	}
	return p, nil
}

// Replicas returns the pool members (fixed after construction).
func (p *Pool) Replicas() []*Replica { return p.replicas }

// Status snapshots every replica.
func (p *Pool) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(p.replicas))
	for i, rep := range p.replicas {
		out[i] = rep.status()
	}
	return out
}

// HealthyCount counts replicas currently in dispatch rotation.
func (p *Pool) HealthyCount() int {
	n := 0
	for _, rep := range p.replicas {
		if rep.Healthy() {
			n++
		}
	}
	return n
}

// Close stops the health loops. It does not touch the replicas.
func (p *Pool) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}

// healthLoop probes one replica forever: readiness (+ metrics refresh)
// while healthy, and half-open recovery probes once an ejection window
// lapses.
func (p *Pool) healthLoop(rep *Replica) {
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	p.probe(rep)
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probe(rep)
		}
	}
}

func (p *Pool) probe(rep *Replica) {
	if rep.state.Load() == replicaEjected && !rep.halfOpenDue() {
		return // sitting out its ejection window
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	if !rep.client.Ready(ctx) {
		if rep.state.Load() == replicaEjected {
			// Failed half-open probe: re-eject for a fresh window.
			rep.eject()
		} else {
			rep.noteError()
		}
		return
	}
	rep.noteSuccess()
	// Refresh the load snapshot feeding least-loaded dispatch. Best
	// effort: a stale snapshot only degrades placement, not health.
	if m, err := rep.client.Metrics(ctx); err == nil {
		rep.metrics.Store(m)
	}
}

// pick selects the dispatch target for one request, skipping replicas
// the request already tried. Healthy replicas are preferred:
// latency-sensitive lanes (realtime, online) take the least-loaded
// one, while offline work spills to the *most* loaded — drained and
// slow replicas soak up throughput-oriented batches, keeping the
// fast path clear for deadline traffic (the paper's §2.2 scenario
// split). With no healthy candidate left, any untried replica is
// returned as a last resort; a success there readmits it (request-path
// half-open).
func (p *Pool) pick(model string, class Class, tried map[*Replica]bool) *Replica {
	var best *Replica
	var bestScore float64
	for _, rep := range p.replicas {
		if tried[rep] || !rep.Healthy() {
			continue
		}
		s := rep.score(model)
		if best == nil {
			best, bestScore = rep, s
			continue
		}
		if (class == ClassOffline && s > bestScore) ||
			(class != ClassOffline && s < bestScore) {
			best, bestScore = rep, s
		}
	}
	if best != nil {
		return best
	}
	// Fallback: least-loaded among the untried regardless of health.
	for _, rep := range p.replicas {
		if tried[rep] {
			continue
		}
		if s := rep.score(model); best == nil || s < bestScore {
			best, bestScore = rep, s
		}
	}
	return best
}
