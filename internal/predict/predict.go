// Package predict implements the paper's stated future work (§5):
// "comprehensive quantitative models for scalable performance
// prediction and deployment toolkits that enable practitioners to
// establish performance expectations before deployment."
//
// The method mirrors what a practitioner can actually do: run a small
// number of profiling batches on the target (here, against the
// calibrated engines), fit the two-parameter latency law
//
//	latency(b) = base + b / satThroughput
//
// (the linear law the paper's Fig. 6 exhibits past the underutilized
// region), and predict latency/throughput/feasible batch sizes for the
// whole operating range without running it.
package predict

import (
	"fmt"
	"math"
)

// Sample is one profiling measurement.
type Sample struct {
	Batch   int
	Seconds float64
}

// Predictor is a fitted latency/throughput model for one
// (platform, model) deployment.
type Predictor struct {
	// Base is the fixed per-batch cost in seconds (the underutilized
	// region's intercept).
	Base float64
	// SecondsPerImage is the marginal per-image cost; its inverse is
	// the saturated throughput.
	SecondsPerImage float64
}

// Fit least-squares fits the latency law to profiling samples. At
// least two samples with distinct batch sizes are required.
func Fit(samples []Sample) (*Predictor, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("predict: need >= 2 profiling samples, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		if s.Batch <= 0 || s.Seconds <= 0 {
			return nil, fmt.Errorf("predict: invalid sample %+v", s)
		}
		x := float64(s.Batch)
		sx += x
		sy += s.Seconds
		sxx += x * x
		sxy += x * s.Seconds
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("predict: samples share one batch size; cannot fit slope")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return nil, fmt.Errorf("predict: non-positive fitted slope %v (latency must grow with batch)", slope)
	}
	if intercept < 0 {
		intercept = 0
	}
	return &Predictor{Base: intercept, SecondsPerImage: slope}, nil
}

// LatencySeconds predicts per-batch latency.
func (p *Predictor) LatencySeconds(batch int) float64 {
	return p.Base + float64(batch)*p.SecondsPerImage
}

// Throughput predicts steady-state images/second at the batch size.
func (p *Predictor) Throughput(batch int) float64 {
	lat := p.LatencySeconds(batch)
	if lat <= 0 {
		return 0
	}
	return float64(batch) / lat
}

// SaturatedThroughput is the b->inf throughput limit.
func (p *Predictor) SaturatedThroughput() float64 {
	return 1 / p.SecondsPerImage
}

// KneeBatch is the batch size at which throughput reaches half its
// saturated value — the paper's "diminishing returns" knee. It equals
// Base/SecondsPerImage under the linear law.
func (p *Predictor) KneeBatch() float64 {
	return p.Base / p.SecondsPerImage
}

// BatchForLatency returns the largest batch (from the candidate list,
// ascending) whose predicted latency is within sloSeconds, or 0 if
// none fits.
func (p *Predictor) BatchForLatency(sloSeconds float64, candidates []int) int {
	best := 0
	for _, b := range candidates {
		if p.LatencySeconds(b) <= sloSeconds {
			best = b
		}
	}
	return best
}

// BatchForThroughput returns the smallest candidate batch predicted to
// reach the target throughput, or 0 if none does.
func (p *Predictor) BatchForThroughput(target float64, candidates []int) int {
	for _, b := range candidates {
		if p.Throughput(b) >= target {
			return b
		}
	}
	return 0
}

// ValidationReport quantifies prediction error against ground truth.
type ValidationReport struct {
	Points      int
	MaxRelErr   float64
	MeanRelErr  float64
	WorstBatch  int
	WorstActual float64
	WorstPred   float64
}

// Validate compares predictions against measured (batch, seconds)
// ground truth.
func (p *Predictor) Validate(truth []Sample) ValidationReport {
	var rep ValidationReport
	var sum float64
	for _, s := range truth {
		if s.Batch <= 0 || s.Seconds <= 0 {
			continue
		}
		pred := p.LatencySeconds(s.Batch)
		re := math.Abs(pred-s.Seconds) / s.Seconds
		sum += re
		rep.Points++
		if re > rep.MaxRelErr {
			rep.MaxRelErr = re
			rep.WorstBatch = s.Batch
			rep.WorstActual = s.Seconds
			rep.WorstPred = pred
		}
	}
	if rep.Points > 0 {
		rep.MeanRelErr = sum / float64(rep.Points)
	}
	return rep
}
