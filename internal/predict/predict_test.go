package predict

import (
	"math"
	"testing"
	"testing/quick"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

func TestFitRecoversLinearLaw(t *testing.T) {
	// latency = 0.002 + 0.0001*b
	samples := []Sample{{Batch: 1, Seconds: 0.0021}, {Batch: 100, Seconds: 0.012}}
	p, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Base-0.002) > 1e-9 || math.Abs(p.SecondsPerImage-0.0001) > 1e-12 {
		t.Errorf("fitted %+v", p)
	}
	if math.Abs(p.LatencySeconds(50)-0.007) > 1e-9 {
		t.Errorf("predicted latency %v", p.LatencySeconds(50))
	}
	if math.Abs(p.SaturatedThroughput()-10000) > 1e-6 {
		t.Errorf("saturated throughput %v", p.SaturatedThroughput())
	}
	if math.Abs(p.KneeBatch()-20) > 1e-9 {
		t.Errorf("knee %v, want 20", p.KneeBatch())
	}
}

func TestFitLeastSquaresManyPoints(t *testing.T) {
	var samples []Sample
	for b := 1; b <= 64; b *= 2 {
		samples = append(samples, Sample{Batch: b, Seconds: 0.005 + 0.0002*float64(b)})
	}
	p, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Validate(samples)
	if rep.MaxRelErr > 1e-9 {
		t.Errorf("exact linear data mispredicted: %+v", rep)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([]Sample{{Batch: 1, Seconds: 1}}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Fit([]Sample{{Batch: 2, Seconds: 1}, {Batch: 2, Seconds: 2}}); err == nil {
		t.Error("duplicate batch sizes accepted")
	}
	if _, err := Fit([]Sample{{Batch: 1, Seconds: 2}, {Batch: 10, Seconds: 1}}); err == nil {
		t.Error("negative slope accepted")
	}
	if _, err := Fit([]Sample{{Batch: 0, Seconds: 1}, {Batch: 2, Seconds: 2}}); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestBatchSelectors(t *testing.T) {
	p := &Predictor{Base: 0.002, SecondsPerImage: 0.0001}
	candidates := []int{1, 2, 4, 8, 16, 32, 64, 128}
	// SLO 5 ms -> largest b with 0.002+0.0001b <= 0.005 is 30 -> 16.
	if b := p.BatchForLatency(0.005, candidates); b != 16 {
		t.Errorf("BatchForLatency = %d, want 16", b)
	}
	if b := p.BatchForLatency(0.0001, candidates); b != 0 {
		t.Errorf("impossible SLO gave %d", b)
	}
	// Throughput target 8000 img/s: b/(0.002+0.0001b) >= 8000 -> b >= 80 -> 128.
	if b := p.BatchForThroughput(8000, candidates); b != 128 {
		t.Errorf("BatchForThroughput = %d, want 128", b)
	}
	if b := p.BatchForThroughput(1e9, candidates); b != 0 {
		t.Errorf("impossible throughput gave %d", b)
	}
}

func TestTwoPointProfilePredictsCalibratedEngines(t *testing.T) {
	// The toolkit's core claim: profile two batches, predict the whole
	// sweep. The calibrated engines follow the linear law exactly, so
	// the prediction error must be negligible.
	for _, p := range hw.All() {
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				t.Fatal(err)
			}
			second := 16
			if mb := eng.MaxBatch(0); mb < second {
				second = mb
			}
			var samples, truth []Sample
			for _, b := range []int{1, second} {
				st, err := eng.Infer(b)
				if err != nil {
					t.Fatal(err)
				}
				samples = append(samples, Sample{Batch: b, Seconds: st.Seconds})
			}
			for _, b := range hw.BatchSweep(p.Name) {
				st, err := eng.Infer(b)
				if err != nil {
					break
				}
				truth = append(truth, Sample{Batch: b, Seconds: st.Seconds})
			}
			pr, err := Fit(samples)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, name, err)
			}
			rep := pr.Validate(truth)
			if rep.MaxRelErr > 1e-6 {
				t.Errorf("%s/%s two-point prediction max err %.2e", p.Name, name, rep.MaxRelErr)
			}
		}
	}
}

func TestValidateSkipsInvalid(t *testing.T) {
	p := &Predictor{Base: 0.001, SecondsPerImage: 0.001}
	rep := p.Validate([]Sample{{Batch: 0, Seconds: 1}, {Batch: 1, Seconds: 0}})
	if rep.Points != 0 {
		t.Errorf("invalid truth counted: %+v", rep)
	}
}

func TestPlanOnline60QPS(t *testing.T) {
	opts, err := Plan(Requirements{
		SLOSeconds: hw.QPS60LatencyMs / 1000,
		Objective:  MaxThroughput,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		t.Fatal("no options")
	}
	best := opts[0]
	if best.PredLatencySeconds > hw.QPS60LatencyMs/1000+1e-9 {
		t.Errorf("best option violates SLO: %+v", best)
	}
	// Throughput ordering.
	for i := 1; i < len(opts); i++ {
		if opts[i].PredImgPerSec > opts[i-1].PredImgPerSec+1e-9 {
			t.Errorf("options not sorted by throughput at %d", i)
		}
	}
}

func TestPlanMinLatencyPicksSmallBatch(t *testing.T) {
	opts, err := Plan(Requirements{Objective: MinLatency}, []*hw.Platform{hw.A100()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].Batch != 1 {
		t.Errorf("min-latency plan picked batch %d", opts[0].Batch)
	}
}

func TestPlanEnergyObjective(t *testing.T) {
	opts, err := Plan(Requirements{
		SLOSeconds: 0.5,
		Objective:  MaxImagesPerJoule,
		Pipeline:   true,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].ImagesPerJoule > opts[i-1].ImagesPerJoule+1e-9 {
			t.Errorf("options not sorted by img/J at %d", i)
		}
	}
}

func TestPlanInfeasible(t *testing.T) {
	if _, err := Plan(Requirements{MinImgPerSec: 1e12}, nil, nil); err == nil {
		t.Error("impossible requirement produced a plan")
	}
}

func TestPlanJetsonOnlyRespectsMemory(t *testing.T) {
	opts, err := Plan(Requirements{Objective: MaxThroughput, Pipeline: true},
		[]*hw.Platform{hw.Jetson()}, []string{models.NameViTBase})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].Batch > 2 {
		t.Errorf("Jetson ViT_Base pipeline plan batch %d exceeds OOM boundary 2", opts[0].Batch)
	}
}

func TestObjectiveString(t *testing.T) {
	if MaxThroughput.String() != "max-throughput" ||
		MinLatency.String() != "min-latency" ||
		MaxImagesPerJoule.String() != "max-images-per-joule" {
		t.Error("objective names wrong")
	}
	if Objective(9).String() == "" {
		t.Error("unknown objective empty")
	}
}

func TestLatencyQuickMonotone(t *testing.T) {
	p := &Predictor{Base: 0.003, SecondsPerImage: 0.0002}
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return p.LatencySeconds(x) <= p.LatencySeconds(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
