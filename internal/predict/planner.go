package predict

import (
	"fmt"
	"sort"

	"harvest/internal/energy"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

// Objective selects what the planner optimizes once requirements are
// met.
type Objective int

// Planner objectives.
const (
	// MaxThroughput picks the highest-throughput feasible config
	// (cloud/offline campaigns).
	MaxThroughput Objective = iota
	// MinLatency picks the lowest-latency feasible config (real-time).
	MinLatency
	// MaxImagesPerJoule picks the most energy-efficient feasible
	// config (battery-powered edge).
	MaxImagesPerJoule
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "max-throughput"
	case MinLatency:
		return "min-latency"
	case MaxImagesPerJoule:
		return "max-images-per-joule"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Requirements describe a target deployment before it exists.
type Requirements struct {
	// SLOSeconds bounds per-batch latency (0 = unconstrained).
	SLOSeconds float64
	// MinImgPerSec bounds throughput (0 = unconstrained).
	MinImgPerSec float64
	// Pipeline selects the co-located-preprocessing memory budget
	// (the end-to-end deployment shape).
	Pipeline  bool
	Objective Objective
	// ProfileBatches are the batch sizes used as profiling runs
	// (default {1, 16}).
	ProfileBatches []int
}

// Option is one feasible deployment configuration with its predictions.
type Option struct {
	Platform string
	Model    string
	Batch    int

	PredLatencySeconds float64
	PredImgPerSec      float64
	ImagesPerJoule     float64
	MemoryBytes        int64
	// FitReport is the predictor's validation against the engine's
	// full sweep, i.e. how much the two-point profile mispredicts.
	FitReport ValidationReport
}

// Plan evaluates every (platform, model) pair by running the profiling
// batches against its engine, fitting a Predictor, and selecting batch
// sizes that meet the requirements. Options are returned best-first
// under the requirement's objective; an error is returned only when no
// configuration is feasible.
func Plan(req Requirements, platforms []*hw.Platform, modelNames []string) ([]Option, error) {
	if len(platforms) == 0 {
		platforms = hw.FigureOrder()
	}
	if len(modelNames) == 0 {
		modelNames = models.Names()
	}
	profile := req.ProfileBatches
	if len(profile) == 0 {
		profile = []int{1, 16}
	}
	var opts []Option
	for _, p := range platforms {
		for _, name := range modelNames {
			eng, err := engine.New(p, name)
			if err != nil {
				return nil, err
			}
			eng.Pipeline = req.Pipeline

			// Profiling runs; clamp profile batches to the engine's
			// memory limit so small devices still get two points.
			maxb := eng.MaxBatch(0)
			var samples []Sample
			seen := map[int]bool{}
			for _, b := range profile {
				if b > maxb {
					b = maxb
				}
				if b <= 0 || seen[b] {
					continue
				}
				seen[b] = true
				st, err := eng.Infer(b)
				if err != nil {
					continue
				}
				samples = append(samples, Sample{Batch: b, Seconds: st.Seconds})
			}
			if len(samples) < 2 && maxb > 1 {
				// Fall back to the extremes.
				for _, b := range []int{1, maxb} {
					if seen[b] {
						continue
					}
					if st, err := eng.Infer(b); err == nil {
						samples = append(samples, Sample{Batch: b, Seconds: st.Seconds})
						seen[b] = true
					}
				}
			}
			pred, err := Fit(samples)
			if err != nil {
				continue
			}

			// Ground truth over the feasible sweep for validation and
			// feasibility checks.
			sweep := hw.BatchSweep(p.Name)
			var truth []Sample
			feasible := sweep[:0:0]
			for _, b := range sweep {
				st, err := eng.Infer(b)
				if err != nil {
					break // OOM: larger batches also fail
				}
				truth = append(truth, Sample{Batch: b, Seconds: st.Seconds})
				feasible = append(feasible, b)
			}
			if len(feasible) == 0 {
				continue
			}
			rep := pred.Validate(truth)

			batch := chooseBatch(req, pred, feasible)
			if batch == 0 {
				continue
			}
			st, err := eng.Infer(batch)
			if err != nil {
				continue
			}
			em := energy.New(p)
			ipj, err := em.ImagesPerJoule(st.ImgPerSec, st.MFU)
			if err != nil {
				continue
			}
			opts = append(opts, Option{
				Platform:           p.Name,
				Model:              name,
				Batch:              batch,
				PredLatencySeconds: pred.LatencySeconds(batch),
				PredImgPerSec:      pred.Throughput(batch),
				ImagesPerJoule:     ipj,
				MemoryBytes:        eng.Perf.MemoryBytes(batch, req.Pipeline),
				FitReport:          rep,
			})
		}
	}
	if len(opts) == 0 {
		return nil, fmt.Errorf("predict: no feasible configuration for %+v", req)
	}
	sort.SliceStable(opts, func(i, j int) bool {
		switch req.Objective {
		case MinLatency:
			return opts[i].PredLatencySeconds < opts[j].PredLatencySeconds
		case MaxImagesPerJoule:
			return opts[i].ImagesPerJoule > opts[j].ImagesPerJoule
		default:
			return opts[i].PredImgPerSec > opts[j].PredImgPerSec
		}
	})
	return opts, nil
}

// chooseBatch picks the batch meeting the requirements under the
// objective, from the feasible (memory-fitting) candidates.
func chooseBatch(req Requirements, pred *Predictor, feasible []int) int {
	meets := func(b int) bool {
		if req.SLOSeconds > 0 && pred.LatencySeconds(b) > req.SLOSeconds {
			return false
		}
		if req.MinImgPerSec > 0 && pred.Throughput(b) < req.MinImgPerSec {
			return false
		}
		return true
	}
	switch req.Objective {
	case MinLatency:
		// Smallest batch that still meets throughput.
		for _, b := range feasible {
			if meets(b) {
				return b
			}
		}
	default:
		// Largest batch within the SLO (throughput increases with
		// batch under the linear law).
		best := 0
		for _, b := range feasible {
			if meets(b) {
				best = b
			}
		}
		return best
	}
	return 0
}
