package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d has %d of 70000, badly skewed", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(29)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(31)
	child := parent.Split()
	// The child stream must not mirror the parent's subsequent output.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestUint64QuickNotConstant(t *testing.T) {
	// Property: for any seed, the first 16 outputs are not all equal.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		first := r.Uint64()
		for i := 0; i < 15; i++ {
			if r.Uint64() != first {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
