package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramMassConservation(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	vals := []float64{-1, 0, 1, 2.5, 5, 9.999, 10, 42}
	for _, v := range vals {
		h.Add(v)
	}
	inRange := 0
	for _, c := range h.Counts {
		inRange += c
	}
	if got := inRange + h.Under + h.Over; got != len(vals) {
		t.Fatalf("mass not conserved: %d of %d", got, len(vals))
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d, want 1 and 2", h.Under, h.Over)
	}
	if h.Total() != len(vals) {
		t.Errorf("Total() = %d, want %d", h.Total(), len(vals))
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		h.Add(35) // bin 3, center 35
	}
	h.Add(5)
	if m := h.Mode(); m != 35 {
		t.Errorf("mode %v, want 35", m)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 1, 20)
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		h.Add(r.Float64())
	}
	dens := h.Density()
	w := 1.0 / 20
	integral := 0.0
	for _, d := range dens {
		integral += d * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integral %v, want 1", integral)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
		func() { NewHist2D(0, 0, 4, 0, 1, 4) },
		func() { NewHist2D(0, 1, 0, 0, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid histogram params")
				}
			}()
			f()
		}()
	}
}

func TestHist2DModeAndClamping(t *testing.T) {
	h := NewHist2D(0, 400, 40, 0, 400, 40)
	for i := 0; i < 100; i++ {
		h.Add(233, 233)
	}
	h.Add(-5, 1000) // clamped, not lost
	mx, my := h.Mode()
	if math.Abs(mx-235) > 10 || math.Abs(my-235) > 10 {
		t.Errorf("2d mode (%v,%v), want near (233,233)", mx, my)
	}
	if h.Total() != 101 {
		t.Errorf("total %d, want 101", h.Total())
	}
	if d := h.DensityAt(233, 233); d <= 0 {
		t.Errorf("density at mode %v, want > 0", d)
	}
	if d := h.DensityAt(-10, -10); d != 0 {
		t.Errorf("density outside range %v, want 0", d)
	}
}

func TestKDE1DIntegratesToOne(t *testing.T) {
	r := NewRNG(2)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.NormFloat64()
	}
	// Integrate the KDE over a wide grid.
	const lo, hi, n = -8.0, 8.0, 400
	points := make([]float64, n)
	for i := range points {
		points[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	dens := KDE1D(samples, points, 0)
	integral := 0.0
	for i := 1; i < n; i++ {
		integral += (dens[i] + dens[i-1]) / 2 * (points[i] - points[i-1])
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("KDE integral %v, want ~1", integral)
	}
}

func TestKDE1DEmptyAndPeak(t *testing.T) {
	if out := KDE1D(nil, []float64{0, 1}, 1); out[0] != 0 || out[1] != 0 {
		t.Error("KDE of empty sample should be zero")
	}
	// A spike of identical samples peaks at the spike.
	samples := []float64{5, 5, 5, 5}
	d := KDE1D(samples, []float64{0, 5, 10}, 1)
	if !(d[1] > d[0] && d[1] > d[2]) {
		t.Errorf("KDE not peaked at sample location: %v", d)
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	if b := SilvermanBandwidth([]float64{1}); b != 1 {
		t.Errorf("degenerate bandwidth %v, want 1", b)
	}
	if b := SilvermanBandwidth([]float64{3, 3, 3}); b != 1 {
		t.Errorf("zero-variance bandwidth %v, want 1", b)
	}
	xs := make([]float64, 100)
	r := NewRNG(3)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	b := SilvermanBandwidth(xs)
	if b <= 0 || b > 2 {
		t.Errorf("suspicious bandwidth %v for standard normal n=100", b)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile %v, want 0", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("interpolated P50 = %v, want 5", got)
	}
	if got := Percentile(xs, 75); got != 7.5 {
		t.Errorf("interpolated P75 = %v, want 7.5", got)
	}
}

func TestPercentileQuickWithinBounds(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("bad summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary %+v", empty)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate mean/std wrong")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Errorf("std %v, want 2", sd)
	}
}
