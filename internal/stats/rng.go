// Package stats provides deterministic random number generation,
// probability distributions, histograms and summary statistics used by
// the synthetic dataset generators and the workload generators.
//
// Everything in this package is fully deterministic given a seed so that
// experiments are reproducible run-to-run and platform-to-platform.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo random number generator
// based on the SplitMix64 mixer feeding an xoshiro256** state. It is not
// cryptographically secure; it exists so that dataset generation and
// workload arrival processes are reproducible.
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box-Muller.
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded from seed via SplitMix64 so that
// nearby seeds produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform with caching of the second variate.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, mirroring
// math/rand.Shuffle semantics.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new generator whose stream is independent of r.
// It is used to hand child components their own deterministic streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
