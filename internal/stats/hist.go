package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin 1-D histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count out-of-range observations.
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.Lo {
		h.Under++
		return
	}
	if v >= h.Hi {
		h.Over++
		return
	}
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Density returns normalized bin heights integrating to ~1 over [Lo,Hi).
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.total) * w)
	}
	return out
}

// Hist2D is a fixed-bin 2-D histogram, used for the width x height image
// size densities of Fig. 4.
type Hist2D struct {
	XLo, XHi, YLo, YHi float64
	XBins, YBins       int
	Counts             []int // row-major: y*XBins + x
	total              int
}

// NewHist2D creates a 2-D histogram.
func NewHist2D(xlo, xhi float64, xbins int, ylo, yhi float64, ybins int) *Hist2D {
	if xbins <= 0 || ybins <= 0 || xhi <= xlo || yhi <= ylo {
		panic("stats: invalid hist2d parameters")
	}
	return &Hist2D{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		XBins: xbins, YBins: ybins, Counts: make([]int, xbins*ybins)}
}

// Add records an (x, y) observation; out-of-range points are clamped to
// the boundary bins so no mass is lost.
func (h *Hist2D) Add(x, y float64) {
	h.total++
	xi := int((x - h.XLo) / (h.XHi - h.XLo) * float64(h.XBins))
	yi := int((y - h.YLo) / (h.YHi - h.YLo) * float64(h.YBins))
	if xi < 0 {
		xi = 0
	}
	if xi >= h.XBins {
		xi = h.XBins - 1
	}
	if yi < 0 {
		yi = 0
	}
	if yi >= h.YBins {
		yi = h.YBins - 1
	}
	h.Counts[yi*h.XBins+xi]++
}

// Total returns the number of observations.
func (h *Hist2D) Total() int { return h.total }

// Mode returns the (x, y) center of the fullest cell.
func (h *Hist2D) Mode() (float64, float64) {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	xi, yi := best%h.XBins, best/h.XBins
	xw := (h.XHi - h.XLo) / float64(h.XBins)
	yw := (h.YHi - h.YLo) / float64(h.YBins)
	return h.XLo + (float64(xi)+0.5)*xw, h.YLo + (float64(yi)+0.5)*yw
}

// DensityAt returns the normalized density of the cell containing (x,y).
func (h *Hist2D) DensityAt(x, y float64) float64 {
	if h.total == 0 {
		return 0
	}
	xi := int((x - h.XLo) / (h.XHi - h.XLo) * float64(h.XBins))
	yi := int((y - h.YLo) / (h.YHi - h.YLo) * float64(h.YBins))
	if xi < 0 || xi >= h.XBins || yi < 0 || yi >= h.YBins {
		return 0
	}
	xw := (h.XHi - h.XLo) / float64(h.XBins)
	yw := (h.YHi - h.YLo) / float64(h.YBins)
	return float64(h.Counts[yi*h.XBins+xi]) / (float64(h.total) * xw * yw)
}

// KDE1D evaluates a Gaussian kernel density estimate of samples at each
// of the points, with the given bandwidth. Used to produce the smooth
// density curves of Fig. 4.
func KDE1D(samples, points []float64, bandwidth float64) []float64 {
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(samples)
	}
	out := make([]float64, len(points))
	if len(samples) == 0 {
		return out
	}
	norm := 1 / (float64(len(samples)) * bandwidth * math.Sqrt(2*math.Pi))
	for i, p := range points {
		acc := 0.0
		for _, s := range samples {
			z := (p - s) / bandwidth
			acc += math.Exp(-0.5 * z * z)
		}
		out[i] = acc * norm
	}
	return out
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth.
func SilvermanBandwidth(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 1
	}
	sd := StdDev(samples)
	if sd == 0 {
		return 1
	}
	return 1.06 * sd * math.Pow(float64(n), -0.2)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.P50 = Percentile(xs, 50)
	s.P90 = Percentile(xs, 90)
	s.P95 = Percentile(xs, 95)
	s.P99 = Percentile(xs, 99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
	return b.String()
}
