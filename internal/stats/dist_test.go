package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(d Distribution, n int, seed uint64) float64 {
	r := NewRNG(seed)
	s := 0.0
	for i := 0; i < n; i++ {
		s += d.Sample(r)
	}
	return s / float64(n)
}

func TestUniformMean(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	if m := sampleMean(d, 50000, 1); math.Abs(m-d.Mean()) > 0.05 {
		t.Errorf("uniform sample mean %v, want ~%v", m, d.Mean())
	}
}

func TestNormalMean(t *testing.T) {
	d := Normal{Mu: -3, Sigma: 2}
	if m := sampleMean(d, 50000, 2); math.Abs(m-d.Mean()) > 0.05 {
		t.Errorf("normal sample mean %v, want ~%v", m, d.Mean())
	}
}

func TestTruncNormalBounds(t *testing.T) {
	d := TruncNormal{Mu: 100, Sigma: 50, Lo: 40, Hi: 400}
	r := NewRNG(3)
	for i := 0; i < 20000; i++ {
		v := d.Sample(r)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("truncated sample %v outside [%v,%v]", v, d.Lo, d.Hi)
		}
	}
}

func TestTruncNormalClampFallback(t *testing.T) {
	// Mean far outside the window forces the clamping fallback.
	d := TruncNormal{Mu: 1000, Sigma: 0.001, Lo: 0, Hi: 1}
	r := NewRNG(4)
	v := d.Sample(r)
	if v != 1 {
		t.Errorf("clamp fallback returned %v, want 1", v)
	}
}

func TestLogNormalPositiveAndMean(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 0.25}
	r := NewRNG(5)
	s := 0.0
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v <= 0 {
			t.Fatalf("non-positive lognormal sample %v", v)
		}
		s += v
	}
	if m := s / 50000; math.Abs(m-d.Mean()) > 0.02 {
		t.Errorf("lognormal mean %v, want ~%v", m, d.Mean())
	}
}

func TestConstant(t *testing.T) {
	d := Constant{V: 256}
	r := NewRNG(6)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 256 {
			t.Fatal("constant distribution not constant")
		}
	}
	if d.Mean() != 256 {
		t.Fatal("constant mean wrong")
	}
}

func TestMixtureWeights(t *testing.T) {
	d := Mixture{Components: []Component{
		{Weight: 0.8, Dist: Constant{V: 0}},
		{Weight: 0.2, Dist: Constant{V: 1}},
	}}
	r := NewRNG(7)
	ones := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if d.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.2) > 0.01 {
		t.Errorf("mixture picked component 2 %.3f of the time, want ~0.2", frac)
	}
	if math.Abs(d.Mean()-0.2) > 1e-12 {
		t.Errorf("mixture mean %v, want 0.2", d.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Lambda: 4}
	if m := sampleMean(d, 50000, 8); math.Abs(m-0.25) > 0.01 {
		t.Errorf("exponential mean %v, want ~0.25", m)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(9)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		s := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			s += float64(Poisson(r, lambda))
		}
		m := s / n
		if math.Abs(m-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, m)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := NewRNG(10)
	if Poisson(r, -1) != 0 || Poisson(r, 0) != 0 {
		t.Error("Poisson with non-positive lambda should be 0")
	}
	f := func(l uint8) bool {
		return Poisson(r, float64(l)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Distribution{
		Uniform{Lo: 5, Hi: 5},
		Normal{Sigma: -1},
		TruncNormal{Lo: 2, Hi: 1, Sigma: 1},
		TruncNormal{Lo: 0, Hi: 1, Sigma: -1},
		LogNormal{Sigma: -0.1},
		Exponential{Lambda: 0},
		Mixture{},
		Mixture{Components: []Component{{Weight: -1, Dist: Constant{}}}},
		Mixture{Components: []Component{{Weight: 1, Dist: Uniform{Lo: 1, Hi: 0}}}},
	}
	for i, d := range bad {
		if err := Validate(d); err == nil {
			t.Errorf("case %d (%T): Validate accepted invalid params", i, d)
		}
	}
	good := []Distribution{
		Uniform{Lo: 0, Hi: 1},
		Normal{Mu: 1, Sigma: 2},
		TruncNormal{Mu: 0, Sigma: 1, Lo: -1, Hi: 1},
		LogNormal{Sigma: 1},
		Constant{V: 3},
		Exponential{Lambda: 2},
		Mixture{Components: []Component{{Weight: 1, Dist: Constant{V: 1}}}},
	}
	for i, d := range good {
		if err := Validate(d); err != nil {
			t.Errorf("case %d (%T): Validate rejected valid params: %v", i, d, err)
		}
	}
}
