package stats

import (
	"fmt"
	"math"
)

// Distribution samples float64 values. All implementations are
// deterministic given the RNG they draw from.
type Distribution interface {
	Sample(r *RNG) float64
	// Mean returns the analytic mean of the distribution.
	Mean() float64
}

// Uniform is the continuous uniform distribution over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws from the uniform distribution.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean of the uniform distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the Gaussian distribution.
type Normal struct{ Mu, Sigma float64 }

// Sample draws a Gaussian variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean of the Gaussian.
func (n Normal) Mean() float64 { return n.Mu }

// TruncNormal is a Gaussian truncated to [Lo, Hi] via rejection with a
// clamping fallback after a bounded number of attempts.
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample draws a truncated Gaussian variate.
func (t TruncNormal) Sample(r *RNG) float64 {
	for i := 0; i < 64; i++ {
		v := t.Mu + t.Sigma*r.NormFloat64()
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	v := t.Mu
	if v < t.Lo {
		v = t.Lo
	}
	if v > t.Hi {
		v = t.Hi
	}
	return v
}

// Mean returns the untruncated mean; adequate for the narrow truncations
// used by the dataset generators.
func (t TruncNormal) Mean() float64 { return t.Mu }

// LogNormal is the log-normal distribution parameterized by the mean and
// standard deviation of the underlying normal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 { return math.Exp(l.Mu + l.Sigma*r.NormFloat64()) }

// Mean of the log-normal.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Constant always returns V. It models datasets with perfectly uniform
// image dimensions (e.g. Plant Village at 256x256).
type Constant struct{ V float64 }

// Sample returns the constant.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean returns the constant.
func (c Constant) Mean() float64 { return c.V }

// Component is one weighted member of a Mixture.
type Component struct {
	Weight float64
	Dist   Distribution
}

// Mixture is a finite mixture distribution; used for the bimodal /
// multi-modal image-size spreads in Fig. 4 of the paper.
type Mixture struct{ Components []Component }

// Sample picks a component proportionally to weight and samples it.
func (m Mixture) Sample(r *RNG) float64 {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	u := r.Float64() * total
	acc := 0.0
	for _, c := range m.Components {
		acc += c.Weight
		if u < acc {
			return c.Dist.Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Dist.Sample(r)
}

// Mean is the weight-averaged component mean.
func (m Mixture) Mean() float64 {
	total, acc := 0.0, 0.0
	for _, c := range m.Components {
		total += c.Weight
		acc += c.Weight * c.Dist.Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// Exponential has rate Lambda (>0).
type Exponential struct{ Lambda float64 }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Lambda }

// Mean of the exponential.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Poisson draws integer counts with mean Lambda using Knuth's method for
// small lambda and a normal approximation above 64.
func Poisson(r *RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Validate checks that a distribution's parameters are sane; used by
// dataset specs at construction time.
func Validate(d Distribution) error {
	switch v := d.(type) {
	case Uniform:
		if v.Hi <= v.Lo {
			return fmt.Errorf("stats: uniform hi %v <= lo %v", v.Hi, v.Lo)
		}
	case Normal:
		if v.Sigma < 0 {
			return fmt.Errorf("stats: normal sigma %v < 0", v.Sigma)
		}
	case TruncNormal:
		if v.Hi <= v.Lo {
			return fmt.Errorf("stats: truncnormal hi %v <= lo %v", v.Hi, v.Lo)
		}
		if v.Sigma < 0 {
			return fmt.Errorf("stats: truncnormal sigma %v < 0", v.Sigma)
		}
	case LogNormal:
		if v.Sigma < 0 {
			return fmt.Errorf("stats: lognormal sigma %v < 0", v.Sigma)
		}
	case Exponential:
		if v.Lambda <= 0 {
			return fmt.Errorf("stats: exponential lambda %v <= 0", v.Lambda)
		}
	case Mixture:
		if len(v.Components) == 0 {
			return fmt.Errorf("stats: empty mixture")
		}
		for _, c := range v.Components {
			if c.Weight < 0 {
				return fmt.Errorf("stats: negative mixture weight %v", c.Weight)
			}
			if err := Validate(c.Dist); err != nil {
				return err
			}
		}
	}
	return nil
}
