package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/serve"
)

// newTestBackend stands up one single-model replica over HTTP.
// timeScale stretches the modeled service time into real time (0 = as
// fast as the model runs).
func newTestBackend(t *testing.T, timeScale float64) (*serve.Server, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer()
	if err := srv.Register(serve.ModelConfig{
		Name:       models.NameViTTiny,
		Engine:     eng,
		MaxBatch:   8,
		QueueDelay: 200 * time.Microsecond,
		TimeScale:  timeScale,
	}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func fastPoolCfg() serve.PoolConfig {
	return serve.PoolConfig{
		ProbeInterval:    10 * time.Millisecond,
		EjectAfter:       2,
		EjectionDuration: 50 * time.Millisecond,
		ProbeTimeout:     time.Second,
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRegistryLeaseLifecycle covers register → renew → deregister and
// the replace-on-new-URL path.
func TestRegistryLeaseLifecycle(t *testing.T) {
	_, hs := newTestBackend(t, 0)
	pool := serve.NewDynamicPool(fastPoolCfg())
	defer pool.Close()
	g := NewRegistry(pool, RegistryConfig{DefaultTTL: time.Second})
	defer g.Close()

	if _, err := g.Register("", hs.URL, "", 0); err == nil {
		t.Fatal("registration with no name succeeded")
	}
	l, err := g.Register("r1", hs.URL, hw.KeyA100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.TTL != time.Second {
		t.Fatalf("granted TTL = %v, want registry default 1s", l.TTL)
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size after register = %d, want 1", pool.Size())
	}

	// Renewal extends the lease without a second pool member.
	time.Sleep(5 * time.Millisecond)
	l2, err := g.Register("r1", hs.URL, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Expires.After(l.Expires) {
		t.Fatalf("renewal did not extend expiry: %v -> %v", l.Expires, l2.Expires)
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size after renewal = %d, want 1", pool.Size())
	}

	// TTL requests are clamped.
	if l3, _ := g.Register("clamped", hs.URL, "", time.Nanosecond); l3.TTL != MinTTL {
		t.Fatalf("tiny TTL granted %v, want clamp to %v", l3.TTL, MinTTL)
	}
	if err := g.Deregister("clamped", false); err != nil {
		t.Fatal(err)
	}

	// Same name at a new URL replaces the member.
	_, hs2 := newTestBackend(t, 0)
	if _, err := g.Register("r1", hs2.URL, "", 0); err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size after replace = %d, want 1", pool.Size())
	}
	if ls := g.Leases(); len(ls) != 1 || ls[0].URL != hs2.URL {
		t.Fatalf("lease after replace = %+v, want URL %s", ls, hs2.URL)
	}

	if err := g.Deregister("r1", false); err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 0 {
		t.Fatalf("pool size after deregister = %d, want 0", pool.Size())
	}
	if err := g.Deregister("r1", false); err == nil {
		t.Fatal("deregistering a missing lease succeeded")
	}

	kinds := map[EventKind]int{}
	for _, e := range g.Events() {
		kinds[e.Kind]++
	}
	if kinds[EventRegister] < 2 || kinds[EventRenew] < 1 || kinds[EventDeregister] < 3 {
		t.Fatalf("event mix %v missing expected transitions", kinds)
	}
}

// TestRegistryTTLExpiryMidTraffic lets one replica's lease expire under
// live dispatch: the expired member leaves the pool, in-flight work on
// it still completes, and zero admitted requests fail.
func TestRegistryTTLExpiryMidTraffic(t *testing.T) {
	_, hsA := newTestBackend(t, 0)
	_, hsB := newTestBackend(t, 0)

	router := serve.NewDynamicRouter(serve.RouterConfig{Pool: fastPoolCfg()})
	defer router.Close()
	g := NewRegistry(router.Pool(), RegistryConfig{DefaultTTL: 300 * time.Millisecond})
	defer g.Close()

	if _, err := g.Register("a", hsA.URL, "", 0); err != nil {
		t.Fatal(err)
	}

	ctx := t.Context()
	var wg sync.WaitGroup
	var failures, ok atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := router.Infer(ctx, models.NameViTTiny, serve.InferRequestJSON{Items: 1, Class: "online"}); err != nil {
					failures.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	// Keep a's lease alive while b joins and then silently dies
	// (renewals stop; the TTL sweeper evicts it).
	renewStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-renewStop:
				return
			case <-time.After(75 * time.Millisecond):
				if _, err := g.Register("a", hsA.URL, "", 0); err != nil {
					t.Errorf("renew a: %v", err)
				}
			}
		}
	}()

	if _, err := g.Register("b", hsB.URL, "", 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "b to join the pool", func() bool { return router.Pool().Size() == 2 })
	// No renewals for b: it must expire and leave the pool while
	// traffic keeps flowing.
	waitFor(t, 2*time.Second, "b's lease to expire", func() bool { return router.Pool().Size() == 1 })
	// A little more traffic after the eviction, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	close(renewStop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d requests failed across lease expiry, want 0 (ok=%d)", f, ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no requests completed; the test drove no traffic")
	}
	expired := false
	for _, e := range g.Events() {
		if e.Kind == EventExpire && e.Name == "b" {
			expired = true
		}
	}
	if !expired {
		t.Fatalf("no expire event for b in %v", g.Events())
	}
}

// TestRegistryDrainBeforeDeregister verifies the scale-down path: a
// drain-aware deregistration marks the replica draining (no new
// picks), waits out its in-flight request, then removes it — the
// admitted request succeeds.
func TestRegistryDrainBeforeDeregister(t *testing.T) {
	// ~100ms real per batch so a request is reliably in flight when the
	// drain starts.
	_, hs := newTestBackend(t, 50)

	router := serve.NewDynamicRouter(serve.RouterConfig{Pool: fastPoolCfg()})
	defer router.Close()
	g := NewRegistry(router.Pool(), RegistryConfig{DefaultTTL: 5 * time.Second})
	defer g.Close()
	if _, err := g.Register("slow", hs.URL, "", 0); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := router.Infer(t.Context(), models.NameViTTiny, serve.InferRequestJSON{Items: 1, Class: "online"})
		errc <- err
	}()
	rep := router.Pool().Replicas()[0]
	waitFor(t, 2*time.Second, "request in flight", func() bool { return rep.Inflight() > 0 })

	if err := g.Deregister("slow", true); err != nil {
		t.Fatal(err)
	}
	ls := g.Leases()
	if len(ls) != 1 || !ls[0].Draining {
		t.Fatalf("lease after drain-deregister = %+v, want draining", ls)
	}
	if router.Pool().Size() != 1 {
		t.Fatal("draining replica left the pool before its in-flight work finished")
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	waitFor(t, 2*time.Second, "drained replica removal", func() bool { return router.Pool().Size() == 0 })
	if ls := g.Leases(); len(ls) != 0 {
		t.Fatalf("leases after drain completed = %+v, want none", ls)
	}
}

// TestPlanCapacity checks the oracle's shape: more demand needs more
// replicas, the chosen candidate is the cheapest that meets the SLO,
// and an impossible ask falls back to best effort.
func TestPlanCapacity(t *testing.T) {
	cfg := OracleConfig{Model: models.NameViTBase, Platforms: []string{hw.KeyJetson}, MaxReplicas: 6}
	slo := 500 * time.Millisecond

	low, err := PlanCapacity(cfg, 50, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !low.Chosen.MeetsSLO || low.Chosen.Replicas != 1 {
		t.Fatalf("50 rps plan = %+v, want 1 meeting replica", low.Chosen)
	}
	high, err := PlanCapacity(cfg, 400, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !high.Chosen.MeetsSLO {
		t.Fatalf("400 rps plan does not meet SLO: %+v", high.Chosen)
	}
	if high.Chosen.Replicas <= low.Chosen.Replicas {
		t.Fatalf("8x demand chose %d replicas, low-rate chose %d; want growth", high.Chosen.Replicas, low.Chosen.Replicas)
	}

	// Across platforms the chosen candidate is the cheapest that meets
	// the SLO.
	multi, err := PlanCapacity(OracleConfig{
		Model:     models.NameViTBase,
		Platforms: []string{hw.KeyA100, hw.KeyJetson},
	}, 100, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Chosen.MeetsSLO {
		t.Fatalf("multi-platform plan does not meet SLO: %+v", multi.Chosen)
	}
	for _, c := range multi.Candidates {
		if c.MeetsSLO && c.PowerW < multi.Chosen.PowerW {
			t.Fatalf("chosen %+v costs more than meeting candidate %+v", multi.Chosen, c)
		}
	}

	// Impossible demand: best-effort fallback at the ceiling.
	capped, err := PlanCapacity(OracleConfig{
		Model:       models.NameViTBase,
		Platforms:   []string{hw.KeyJetson},
		MaxReplicas: 1,
	}, 5000, slo)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Chosen.MeetsSLO || capped.Chosen.Replicas != 1 {
		t.Fatalf("impossible plan = %+v, want best-effort single replica with MeetsSLO=false", capped.Chosen)
	}

	if _, err := PlanCapacity(cfg, 0, slo); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	if _, err := PlanCapacity(cfg, 10, 0); err == nil {
		t.Fatal("zero SLO accepted")
	}
}

// TestAttainment unit-tests the windowed histogram-diff attainment,
// including the negative-delta clamp replica removal causes.
func TestAttainment(t *testing.T) {
	nb := metrics.NumLatencyBuckets
	prev := make([]uint64, nb)
	cur := make([]uint64, nb)
	// All new observations in bucket 0 (fastest): attainment 1.
	cur[0] = 10
	if got := attainment(prev, cur, 50*time.Millisecond); got != 1 {
		t.Fatalf("fast-bucket attainment = %v, want 1", got)
	}
	// Half the new observations in the +Inf bucket: attainment 0.5.
	cur[nb-1] = 10
	if got := attainment(prev, cur, 50*time.Millisecond); got != 0.5 {
		t.Fatalf("split attainment = %v, want 0.5", got)
	}
	// Shrinking counters (replica removed) clamp, not underflow.
	prev[0], cur[0] = 20, 10
	prev[nb-1], cur[nb-1] = 0, 10
	if got := attainment(prev, cur, 50*time.Millisecond); got != 0 {
		t.Fatalf("clamped attainment = %v, want 0 (only slow bucket grew)", got)
	}
	// Empty window: vacuously attained.
	if got := attainment(cur, cur, 50*time.Millisecond); got != 1 {
		t.Fatalf("empty-window attainment = %v, want 1", got)
	}
	// Malformed buckets: treated as no data.
	if got := attainment(nil, []uint64{1, 2}, 50*time.Millisecond); got != 1 {
		t.Fatalf("malformed-bucket attainment = %v, want 1", got)
	}
}

// TestControllerAdvisory drives real traffic through a one-replica
// fleet and checks the controller, with no provisioner, records
// advisory decisions with a positive demand estimate.
func TestControllerAdvisory(t *testing.T) {
	_, hs := newTestBackend(t, 0)
	router := serve.NewDynamicRouter(serve.RouterConfig{Pool: fastPoolCfg()})
	defer router.Close()
	g := NewRegistry(router.Pool(), RegistryConfig{DefaultTTL: 5 * time.Second})
	defer g.Close()
	if _, err := g.Register("r0", hs.URL, hw.KeyA100, 0); err != nil {
		t.Fatal(err)
	}

	c := NewController(router, g, nil, ControllerConfig{
		Model:    models.NameViTTiny,
		Oracle:   OracleConfig{Platforms: []string{hw.KeyA100}, HorizonSeconds: 2},
		Interval: 100 * time.Millisecond,
		SLO:      100 * time.Millisecond,
		Max:      4,
	})
	if err := c.Start(t.Context()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := router.Infer(t.Context(), models.NameViTTiny, serve.InferRequestJSON{Items: 1, Class: "online"}); err != nil {
			t.Fatal(err)
		}
		ds := c.Decisions()
		if len(ds) >= 2 && ds[len(ds)-1].ArrivalRPS > 0 {
			last := ds[len(ds)-1]
			if last.Attainment < 0 || last.Attainment > 1 {
				t.Fatalf("attainment %v out of [0,1]", last.Attainment)
			}
			if last.Reason == "" {
				t.Fatalf("decision with empty reason: %+v", last)
			}
			return
		}
	}
	t.Fatalf("controller never recorded a demand-bearing decision: %+v", c.Decisions())
}

// TestLocalProvisionerAgentLifecycle runs the full agent protocol over
// HTTP: Launch self-registers and renews, Stop deregisters with drain,
// and Kill leaves the lease to expire by TTL (the crash path).
func TestLocalProvisionerAgentLifecycle(t *testing.T) {
	router := serve.NewDynamicRouter(serve.RouterConfig{Pool: fastPoolCfg()})
	defer router.Close()
	g := NewRegistry(router.Pool(), RegistryConfig{DefaultTTL: 400 * time.Millisecond})
	defer g.Close()
	cp := httptest.NewServer(Handler(g, nil, router.Handler()))
	defer cp.Close()

	lp := &LocalProvisioner{
		FleetURL: cp.URL,
		Models:   []string{models.NameViTTiny},
		TTL:      400 * time.Millisecond,
	}
	defer lp.Close()

	url, err := lp.Launch(context.Background(), hw.KeyJetson)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "launched replica to register", func() bool {
		return len(g.Leases()) == 1
	})
	l := g.Leases()[0]
	if l.URL != url || l.Platform != hw.KeyJetson {
		t.Fatalf("lease = %+v, want url %s platform Jetson", l, url)
	}
	// Renewals must outlive several TTLs.
	time.Sleep(3 * l.TTL)
	if len(g.Leases()) != 1 {
		t.Fatal("lease expired despite a live agent renewing it")
	}

	// Stop: graceful, drain-aware deregistration.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lp.Stop(ctx, url); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "stopped replica to deregister", func() bool {
		return len(g.Leases()) == 0 && router.Pool().Size() == 0
	})
	gotDereg := false
	for _, e := range g.Events() {
		if e.Kind == EventDeregister {
			gotDereg = true
		}
	}
	if !gotDereg {
		t.Fatalf("no deregister event after Stop: %v", g.Events())
	}

	// Kill: abrupt death. No deregistration — the lease must linger
	// until its TTL sweeps it out as an expiry.
	url2, err := lp.Launch(context.Background(), hw.KeyJetson)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "second replica to register", func() bool {
		return len(g.Leases()) == 1
	})
	name, err := lp.Kill(url2)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "killed replica's lease to expire", func() bool {
		return len(g.Leases()) == 0
	})
	gotExpire := false
	for _, e := range g.Events() {
		if e.Kind == EventExpire && e.Name == name {
			gotExpire = true
		}
	}
	if !gotExpire {
		t.Fatalf("killed replica %s did not expire (events %v) — it must not deregister", name, g.Events())
	}
}
