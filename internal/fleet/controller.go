package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/serve"
)

// Controller defaults.
const (
	// DefaultControlInterval is the autoscaler tick period.
	DefaultControlInterval = 2 * time.Second
	// DefaultAttainTarget is the SLO attainment fraction below which
	// the controller scales up even when the sim disagrees.
	DefaultAttainTarget = 0.95
	// DefaultHeadroomFactor over-provisions the demand estimate fed to
	// the capacity oracle, so the chosen fleet is not sized exactly at
	// the knee.
	DefaultHeadroomFactor = 1.2
	// DefaultScaleDownAfter is how many consecutive healthy ticks must
	// agree before the controller sheds a replica (scale-down is
	// deliberate; scale-up is immediate).
	DefaultScaleDownAfter = 3
	// maxDecisions bounds the decision log.
	maxDecisions = 256
)

// ControllerConfig tunes the SLO-driven autoscaler.
type ControllerConfig struct {
	// Model is the served model whose demand drives scaling (and the
	// model the oracle prices capacity for).
	Model string
	// Oracle configures the capacity oracle; its Model field is
	// overridden with Model above.
	Oracle OracleConfig
	// Min/Max bound the fleet size the controller will act toward
	// (defaults 1 and Oracle.MaxReplicas).
	Min, Max int
	// Interval is the control-loop period (default 2s).
	Interval time.Duration
	// SLOClass is the class whose queue-latency attainment the loop
	// watches (default "online").
	SLOClass string
	// SLO is the per-request queue-latency bound attainment is measured
	// against, and the bound the oracle sizes for.
	SLO time.Duration
	// AttainTarget is the attainment fraction considered healthy
	// (default 0.95).
	AttainTarget float64
	// HeadroomFactor multiplies the demand estimate before asking the
	// oracle (default 1.2).
	HeadroomFactor float64
	// ScaleDownAfter is the consecutive-healthy-tick requirement before
	// shedding a replica (default 3).
	ScaleDownAfter int
	// Logf, when non-nil, receives decision logs.
	Logf func(format string, args ...any)
}

func (cfg *ControllerConfig) fillDefaults() {
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	cfg.Oracle.Model = cfg.Model
	cfg.Oracle.fillDefaults()
	if cfg.Max <= 0 {
		cfg.Max = cfg.Oracle.MaxReplicas
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	cfg.Oracle.MaxReplicas = cfg.Max
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultControlInterval
	}
	if cfg.SLOClass == "" {
		cfg.SLOClass = serve.ClassOnline.String()
	}
	if cfg.AttainTarget <= 0 || cfg.AttainTarget > 1 {
		cfg.AttainTarget = DefaultAttainTarget
	}
	if cfg.HeadroomFactor < 1 {
		cfg.HeadroomFactor = DefaultHeadroomFactor
	}
	if cfg.ScaleDownAfter <= 0 {
		cfg.ScaleDownAfter = DefaultScaleDownAfter
	}
}

// Decision records one autoscaler tick's observation and action.
type Decision struct {
	At time.Time `json:"at"`
	// Observed demand over the last interval.
	ArrivalRPS float64 `json:"arrival_rps"`
	QueueDepth int64   `json:"queue_depth"`
	// Attainment is the fraction of SLOClass requests whose queue wait
	// met the SLO during the window (1 when the window saw none).
	Attainment float64 `json:"attainment"`
	// From/To are the fleet sizes before and after the action (equal
	// when the tick held steady or the controller is advisory).
	From int `json:"from"`
	To   int `json:"to"`
	// Oracle outputs backing the action.
	Platform           string  `json:"platform,omitempty"`
	PredictedImgPerSec float64 `json:"predicted_img_per_sec,omitempty"`
	PredictedP99Ms     float64 `json:"predicted_p99_ms,omitempty"`
	PowerW             float64 `json:"power_w,omitempty"`
	Reason             string  `json:"reason"`
}

// Controller is the SLO-driven autoscaler: each tick it estimates the
// arrival rate and per-class SLO attainment from the router's merged
// metrics, asks the discrete-event sim (PlanCapacity) for the cheapest
// fleet serving that demand, and moves the fleet toward it through the
// Provisioner. With a nil provisioner it is advisory: decisions are
// recorded but never acted on.
type Controller struct {
	cfg      ControllerConfig
	router   *serve.Router
	registry *Registry
	prov     Provisioner

	mu        sync.Mutex
	decisions []Decision
	launched  []string // provisioner-owned replica URLs, launch order
	healthy   int      // consecutive ticks eligible for scale-down
	lastCum   float64  // cumulative arrival counter at last tick
	lastAt    time.Time
	lastHist  []uint64 // SLOClass queue-latency buckets at last tick

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewController builds the autoscaler. Callers must Close it; Start
// launches the Min-replica floor and the control loop.
func NewController(router *serve.Router, registry *Registry, prov Provisioner, cfg ControllerConfig) *Controller {
	cfg.fillDefaults()
	return &Controller{
		cfg:      cfg,
		router:   router,
		registry: registry,
		prov:     prov,
		stop:     make(chan struct{}),
	}
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Start brings the fleet to the Min floor (blocking until the launches
// are issued, not until the replicas register) and starts the control
// loop.
func (c *Controller) Start(ctx context.Context) error {
	if c.prov != nil {
		for i := len(c.launchedURLs()); i < c.cfg.Min; i++ {
			url, err := c.prov.Launch(ctx, c.platform())
			if err != nil {
				return fmt.Errorf("fleet: floor launch: %w", err)
			}
			c.mu.Lock()
			c.launched = append(c.launched, url)
			c.mu.Unlock()
		}
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.tick()
			}
		}
	}()
	return nil
}

// Close stops the control loop. Launched replicas are left to the
// provisioner's owner (LocalProvisioner.Close stops them).
func (c *Controller) Close() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Decisions returns the decision log, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

func (c *Controller) launchedURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.launched...)
}

// platform returns the single platform the controller launches; the
// oracle may rank several, but launches follow its cheapest choice
// (falling back to the first configured).
func (c *Controller) platform() string {
	return c.cfg.Oracle.Platforms[0]
}

// attainment computes the fraction of SLOClass queue-latency
// observations within the SLO during the window between cur and the
// previous tick's buckets. Aggregated cumulative counters shrink when
// a replica leaves the pool, so negative per-bucket deltas are
// clamped. Returns 1 and the new baseline when the window saw nothing.
func attainment(prev, cur []uint64, slo time.Duration) float64 {
	if len(cur) != metrics.NumLatencyBuckets {
		return 1
	}
	bounds := metrics.LatencyBucketBounds()
	sloSec := slo.Seconds()
	var met, total uint64
	for i, c := range cur {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		if c <= p {
			continue // clamp: replica removal shrank the aggregate
		}
		d := c - p
		total += d
		if bounds[i] <= sloSec {
			met += d
		}
	}
	if total == 0 {
		return 1
	}
	return float64(met) / float64(total)
}

// tick runs one control iteration: observe, consult the oracle, act.
func (c *Controller) tick() {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Interval)
	defer cancel()
	m := c.router.Metrics(ctx)

	var mm *serve.ModelMetricsJSON
	for i := range m.Models {
		if m.Models[i].Model == c.cfg.Model {
			mm = &m.Models[i]
			break
		}
	}
	now := time.Now()
	c.mu.Lock()
	lastCum, lastAt, lastHist := c.lastCum, c.lastAt, c.lastHist
	c.mu.Unlock()

	var cum float64
	var queueDepth int64
	att := 1.0
	var curHist []uint64
	if mm != nil {
		// Everything that arrived: completions, rejections, evictions.
		cum = float64(mm.Requests + mm.Errors + mm.Cancelled + mm.Shed + mm.Expired)
		queueDepth = mm.QueueDepth
		if sum, ok := mm.QueueMsByClass[c.cfg.SLOClass]; ok {
			curHist = sum.Buckets
			att = attainment(lastHist, curHist, c.cfg.SLO)
		}
	}
	window := c.cfg.Interval.Seconds()
	if !lastAt.IsZero() {
		if w := now.Sub(lastAt).Seconds(); w > 0 {
			window = w
		}
	}
	delta := cum - lastCum
	if delta < 0 {
		delta = 0 // aggregate counters shrink on replica removal
	}
	// Demand estimate: the window's arrivals plus the standing backlog
	// amortized over one interval (a backlog is demand the fleet has
	// not kept up with).
	rate := delta/window + float64(queueDepth)/window

	c.mu.Lock()
	c.lastCum, c.lastAt = cum, now
	if curHist != nil {
		c.lastHist = append([]uint64(nil), curHist...)
	}
	c.mu.Unlock()
	// Fleet size is what holds a live, non-retiring lease — launched
	// replicas that crashed (lease expired) no longer count.
	cur := 0
	for _, l := range c.registry.Leases() {
		if !l.Draining {
			cur++
		}
	}

	d := Decision{
		At:         now,
		ArrivalRPS: rate,
		QueueDepth: queueDepth,
		Attainment: att,
		From:       cur,
		To:         cur,
	}

	desired := cur
	if rate > 0 {
		plan, err := PlanCapacity(c.cfg.Oracle, rate*c.cfg.HeadroomFactor, c.cfg.SLO)
		if err != nil {
			d.Reason = "oracle error: " + err.Error()
			c.record(d)
			return
		}
		desired = plan.Chosen.Replicas
		d.Platform = plan.Chosen.Platform
		d.PredictedImgPerSec = plan.Chosen.PredictedImgPerSec
		d.PredictedP99Ms = plan.Chosen.PredictedP99Ms
		d.PowerW = plan.Chosen.PowerW
		if !plan.Chosen.MeetsSLO {
			d.Reason = fmt.Sprintf("no candidate meets SLO at %.1f rps; best effort %d× %s", rate, desired, plan.Chosen.Platform)
		}
	}
	if att < c.cfg.AttainTarget && desired <= cur {
		// The sim thinks the fleet suffices but reality disagrees —
		// queue wait is blowing the SLO. Trust the measurement.
		desired = cur + 1
		d.Reason = fmt.Sprintf("attainment %.2f below target %.2f", att, c.cfg.AttainTarget)
	}
	if desired < c.cfg.Min {
		desired = c.cfg.Min
	}
	if desired > c.cfg.Max {
		desired = c.cfg.Max
	}

	switch {
	case desired > cur:
		c.mu.Lock()
		c.healthy = 0
		c.mu.Unlock()
		switch {
		case d.Reason != "":
		case d.Platform == "":
			d.Reason = fmt.Sprintf("below floor; scaling to min %d", c.cfg.Min)
		default:
			d.Reason = fmt.Sprintf("sim: %d× %s serves %.1f rps at p99 %.0f ms for %.0f W", desired, d.Platform, rate*c.cfg.HeadroomFactor, d.PredictedP99Ms, d.PowerW)
		}
		d.To = c.scaleUp(ctx, cur, desired)
	case desired < cur:
		c.mu.Lock()
		c.healthy++
		healthy := c.healthy
		c.mu.Unlock()
		if att < c.cfg.AttainTarget {
			c.mu.Lock()
			c.healthy = 0
			c.mu.Unlock()
			d.Reason = fmt.Sprintf("hold %d: attainment %.2f below target", cur, att)
			break
		}
		if healthy < c.cfg.ScaleDownAfter {
			d.Reason = fmt.Sprintf("hold %d: scale-down to %d pending %d/%d healthy ticks", cur, desired, healthy, c.cfg.ScaleDownAfter)
			break
		}
		c.mu.Lock()
		c.healthy = 0
		c.mu.Unlock()
		d.Reason = fmt.Sprintf("sim: %d× %s suffices for %.1f rps; shedding idle capacity", desired, d.Platform, rate*c.cfg.HeadroomFactor)
		d.To = c.scaleDown(ctx, cur, desired)
	default:
		if d.Reason == "" {
			d.Reason = fmt.Sprintf("hold %d", cur)
		}
	}
	c.record(d)
}

// scaleUp launches to-cur replicas; returns the resulting size. With
// no provisioner the decision is advisory: it reports the target size
// without acting.
func (c *Controller) scaleUp(ctx context.Context, cur, to int) int {
	if c.prov == nil {
		return to // advisory
	}
	n := cur
	for ; n < to; n++ {
		url, err := c.prov.Launch(ctx, c.platform())
		if err != nil {
			c.logf("fleet controller: launch: %v", err)
			break
		}
		c.mu.Lock()
		c.launched = append(c.launched, url)
		c.mu.Unlock()
	}
	return n
}

// scaleDown retires the most recently launched replicas (LIFO) down to
// `to`, drain-aware through Provisioner.Stop; returns the resulting
// size. Advisory (no provisioner): reports the target without acting.
func (c *Controller) scaleDown(ctx context.Context, cur, to int) int {
	if c.prov == nil {
		return to // advisory
	}
	alive := map[string]bool{}
	for _, l := range c.registry.Leases() {
		alive[l.URL] = true
	}
	n := cur
	for n > to && n > c.cfg.Min {
		c.mu.Lock()
		if len(c.launched) == 0 {
			c.mu.Unlock()
			break
		}
		url := c.launched[len(c.launched)-1]
		c.launched = c.launched[:len(c.launched)-1]
		c.mu.Unlock()
		if !alive[url] {
			continue // crashed earlier; its lease already expired
		}
		if err := c.prov.Stop(ctx, url); err != nil {
			c.logf("fleet controller: stop %s: %v", url, err)
		}
		n--
	}
	return n
}

// record appends to the bounded decision log.
func (c *Controller) record(d Decision) {
	c.logf("fleet controller: %s (%d→%d, %.1f rps, attain %.2f)", d.Reason, d.From, d.To, d.ArrivalRPS, d.Attainment)
	c.mu.Lock()
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > maxDecisions {
		c.decisions = c.decisions[len(c.decisions)-maxDecisions:]
	}
	c.mu.Unlock()
}
