package fleet

import (
	"fmt"
	"time"

	"harvest/internal/energy"
	"harvest/internal/hw"
	"harvest/internal/scaleout"
)

// OracleConfig describes the capacity question the autoscaler asks the
// discrete-event simulation: which (platform, replica-count) fleet is
// the cheapest that serves a given arrival rate within the SLO?
type OracleConfig struct {
	// Model is the served model the sim prices capacity for.
	Model string
	// Platforms are the candidate platform kinds for new replicas
	// (hw keys, e.g. "A100", "Jetson"). Empty means ["A100"]. The
	// oracle evaluates homogeneous fleets per platform and picks the
	// cheapest across platforms; heterogeneous mixes reduce to running
	// the oracle per pool segment.
	Platforms []string
	// MaxReplicas bounds the candidate fleet size (default 8).
	MaxReplicas int
	// Batch is the per-request image count the sim's jobs carry
	// (default 1, matching single-image online/realtime requests).
	Batch int
	// HorizonSeconds is the simulated horizon per candidate (default
	// 10 — long enough for queueing to reach steady state, short
	// enough that a full candidate sweep costs milliseconds).
	HorizonSeconds float64
	// Seed drives the sim's arrival process; fixed seed makes
	// decisions reproducible for a given demand estimate.
	Seed uint64
	// StabilityMargin is the fraction of offered load a candidate must
	// complete within the horizon to count as stable (default 0.95;
	// saturated fleets complete less because backlog grows without
	// bound).
	StabilityMargin float64
}

func (cfg *OracleConfig) fillDefaults() {
	if len(cfg.Platforms) == 0 {
		cfg.Platforms = []string{hw.KeyA100}
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.HorizonSeconds <= 0 {
		cfg.HorizonSeconds = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.StabilityMargin <= 0 || cfg.StabilityMargin >= 1 {
		cfg.StabilityMargin = 0.95
	}
}

// Candidate is one fleet configuration the oracle evaluated.
type Candidate struct {
	Platform string `json:"platform"`
	Replicas int    `json:"replicas"`
	// PredictedImgPerSec / PredictedP99Ms / PredictedUtilization come
	// from the discrete-event sim at the asked arrival rate.
	PredictedImgPerSec   float64 `json:"predicted_img_per_sec"`
	PredictedP99Ms       float64 `json:"predicted_p99_ms"`
	PredictedUtilization float64 `json:"predicted_utilization"`
	// PowerW is the modeled fleet power draw at that utilization
	// (internal/energy), the cost the oracle minimizes.
	PowerW float64 `json:"power_w"`
	// MeetsSLO reports whether predicted P99 is within the SLO and the
	// candidate is stable (completes ≥ StabilityMargin of offered).
	MeetsSLO bool `json:"meets_slo"`
}

// Plan is the oracle's answer for one demand estimate.
type Plan struct {
	ArrivalRPS float64       `json:"arrival_rps"`
	SLO        time.Duration `json:"-"`
	SLOMs      float64       `json:"slo_ms"`
	// Chosen is the cheapest candidate meeting the SLO; when no
	// candidate meets it, the highest-throughput candidate (best
	// effort at the MaxReplicas ceiling) with MeetsSLO=false.
	Chosen Candidate `json:"chosen"`
	// Candidates lists everything evaluated, in evaluation order.
	Candidates []Candidate `json:"candidates,omitempty"`
}

// PlanCapacity asks the sim for the cheapest fleet that serves
// arrivalRPS requests/second of Batch-image requests within slo. For
// each candidate platform it grows the replica count until the sim
// predicts a stable fleet whose P99 (queueing included) is within the
// SLO, prices that fleet with the energy model, and returns the
// cheapest across platforms. This is the control plane's
// model-predictive step: the same simulator that scaleout.Validate
// shows tracks live throughput within 0.9% prices a scale-up before
// the fleet commits to it.
func PlanCapacity(cfg OracleConfig, arrivalRPS float64, slo time.Duration) (Plan, error) {
	cfg.fillDefaults()
	if arrivalRPS <= 0 {
		return Plan{}, fmt.Errorf("fleet: non-positive arrival rate %v", arrivalRPS)
	}
	if slo <= 0 {
		return Plan{}, fmt.Errorf("fleet: non-positive SLO %v", slo)
	}
	plan := Plan{
		ArrivalRPS: arrivalRPS,
		SLO:        slo,
		SLOMs:      float64(slo) / float64(time.Millisecond),
	}
	var chosen *Candidate
	var fallback *Candidate // best effort when nothing meets the SLO
	for _, key := range cfg.Platforms {
		p, err := hw.ByName(key)
		if err != nil {
			return Plan{}, err
		}
		em := energy.New(p)
		for n := 1; n <= cfg.MaxReplicas; n++ {
			res, err := scaleout.Run(scaleout.Config{
				Platform:             p,
				Model:                cfg.Model,
				Replicas:             n,
				Batch:                cfg.Batch,
				OfferedBatchesPerSec: arrivalRPS,
				HorizonSeconds:       cfg.HorizonSeconds,
				Seed:                 cfg.Seed,
			})
			if err != nil {
				return Plan{}, err
			}
			c := Candidate{
				Platform:             key,
				Replicas:             n,
				PredictedImgPerSec:   res.Throughput,
				PredictedP99Ms:       res.P99LatencySeconds * 1000,
				PredictedUtilization: res.Utilization,
				// Utilization stands in for MFU here: it is the busy
				// fraction the dynamic power scales with.
				PowerW:   float64(n) * em.PowerAt(res.Utilization),
				MeetsSLO: res.P99LatencySeconds <= slo.Seconds() && res.Throughput >= cfg.StabilityMargin*res.OfferedImgPerSec,
			}
			plan.Candidates = append(plan.Candidates, c)
			if fallback == nil || c.PredictedImgPerSec > fallback.PredictedImgPerSec {
				cc := c
				fallback = &cc
			}
			if c.MeetsSLO {
				// Within one platform, the first meeting size is the
				// cheapest (every extra replica adds idle power), so
				// stop growing this platform's fleet.
				if chosen == nil || c.PowerW < chosen.PowerW {
					cc := c
					chosen = &cc
				}
				break
			}
		}
	}
	if chosen != nil {
		plan.Chosen = *chosen
	} else if fallback != nil {
		plan.Chosen = *fallback
	}
	return plan, nil
}
