package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"harvest/internal/core"
)

// Provisioner launches and stops replicas on the autoscaler's behalf.
// Real deployments plug in an implementation that talks to their
// scheduler (k8s, slurm, a VM API); LocalProvisioner spawns in-process
// replicas for benchmarks and self-hosted runs.
type Provisioner interface {
	// Launch starts one replica of the platform. The replica is
	// responsible for registering itself with the control plane (the
	// Agent protocol); Launch returns its base URL once it is starting.
	Launch(ctx context.Context, platform string) (url string, err error)
	// Stop retires the replica previously launched at url: deregister
	// with drain, then tear it down.
	Stop(ctx context.Context, url string) error
}

// LocalProvisioner spawns in-process harvest-serve replicas over
// loopback HTTP — the same mechanism loadgen.StartFleet uses — each
// with an Agent that self-registers against FleetURL and deregisters
// (drain-aware) on Stop. It lets `harvest-fleet -local` and `make
// bench-fleet` autoscale a real serving tier with no external
// scheduler.
type LocalProvisioner struct {
	// FleetURL is the control plane the spawned replicas register with.
	FleetURL string
	// Replica shape (see core.DeploymentConfig / loadgen.FleetConfig).
	Models        []string
	TimeScale     float64
	QueueDelay    time.Duration
	MaxQueueDepth int
	// TTL is the lease length replicas request (0 = registry default).
	TTL time.Duration
	// Logf, when non-nil, receives replica lifecycle messages.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	seq  int
	reps map[string]*localReplica
}

type localReplica struct {
	name      string
	agent     *Agent
	cancel    context.CancelFunc // stops the agent (it deregisters with drain)
	agentDone chan struct{}
	httpSrv   *http.Server
	deploy    interface{ Close() }
}

// Launch starts one in-process replica and its registration agent.
// The pool gains the replica as soon as its agent's registration
// lands (milliseconds later).
func (lp *LocalProvisioner) Launch(_ context.Context, platform string) (string, error) {
	srv, err := core.NewDeployment(core.DeploymentConfig{
		Platform:      platform,
		Models:        lp.Models,
		QueueDelay:    lp.QueueDelay,
		TimeScale:     lp.TimeScale,
		MaxQueueDepth: lp.MaxQueueDepth,
	})
	if err != nil {
		return "", fmt.Errorf("fleet: local launch: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	lp.mu.Lock()
	name := fmt.Sprintf("local-%s-%d", platform, lp.seq)
	lp.seq++
	if lp.reps == nil {
		lp.reps = map[string]*localReplica{}
	}
	agentCtx, cancel := context.WithCancel(context.Background())
	rep := &localReplica{
		name: name,
		agent: &Agent{
			FleetURL: lp.FleetURL,
			Name:     name,
			URL:      url,
			Platform: platform,
			TTL:      lp.TTL,
			Logf:     lp.Logf,
		},
		cancel:    cancel,
		agentDone: make(chan struct{}),
		httpSrv:   httpSrv,
		deploy:    srv,
	}
	lp.reps[url] = rep
	lp.mu.Unlock()

	go func() {
		defer close(rep.agentDone)
		_ = rep.agent.Run(agentCtx)
	}()
	return url, nil
}

// Stop retires the replica at url: the agent deregisters with drain
// (the registry stops routing to it and waits out in-flight work),
// then the HTTP server shuts down gracefully and the deployment's
// batchers drain. Admitted requests never fail.
func (lp *LocalProvisioner) Stop(ctx context.Context, url string) error {
	lp.mu.Lock()
	rep, ok := lp.reps[url]
	if ok {
		delete(lp.reps, url)
	}
	lp.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: no local replica at %s", url)
	}
	rep.cancel()
	select {
	case <-rep.agentDone:
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = rep.httpSrv.Shutdown(shutCtx)
	rep.deploy.Close()
	return nil
}

// Kill tears the replica at url down abruptly — no deregistration, no
// drain, connections reset — simulating a crash. The control plane
// only learns of it through failed probes and the lease's TTL expiry.
// Returns the replica's lease name.
func (lp *LocalProvisioner) Kill(url string) (string, error) {
	lp.mu.Lock()
	rep, ok := lp.reps[url]
	if ok {
		delete(lp.reps, url)
	}
	lp.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("fleet: no local replica at %s", url)
	}
	rep.agent.Abort() // die without deregistering; the lease must expire
	rep.cancel()
	_ = rep.httpSrv.Close()
	rep.deploy.Close()
	return rep.name, nil
}

// URLs lists the replicas currently owned by the provisioner.
func (lp *LocalProvisioner) URLs() []string {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	out := make([]string, 0, len(lp.reps))
	for url := range lp.reps {
		out = append(out, url)
	}
	return out
}

// Close stops every remaining replica (drain-aware).
func (lp *LocalProvisioner) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, url := range lp.URLs() {
		_ = lp.Stop(ctx, url)
	}
}
