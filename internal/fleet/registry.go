// Package fleet is the serving tier's control plane: replicas hold
// TTL leases in a Registry (register/renew/deregister instead of a
// static -replicas list), and a Controller autoscales the fleet by
// reading per-class SLO attainment from the router's merged metrics
// and consulting the discrete-event simulation (internal/scaleout) as
// a capacity oracle before acting — model-predictive autoscaling,
// licensed by scaleout.Validate's ≤0.9% sim-vs-real throughput
// agreement. Replicas are spawned and stopped through a pluggable
// Provisioner; the in-process LocalProvisioner reuses the
// loadgen.StartFleet mechanism (core deployments over loopback HTTP).
package fleet

import (
	"fmt"
	"sync"
	"time"

	"harvest/internal/serve"
)

// Registry defaults.
const (
	// DefaultTTL is the lease length granted when a registration does
	// not request one.
	DefaultTTL = 3 * time.Second
	// MinTTL/MaxTTL clamp requested lease lengths.
	MinTTL = 200 * time.Millisecond
	MaxTTL = time.Minute
	// DefaultDrainTimeout bounds how long a drain-aware deregistration
	// waits for in-flight requests before removing the replica anyway.
	DefaultDrainTimeout = 10 * time.Second
	// maxEvents bounds the registry's event ring for /v2/fleet/status.
	maxEvents = 256
)

// EventKind labels one membership transition.
type EventKind string

// Membership events.
const (
	EventRegister   EventKind = "register"
	EventRenew      EventKind = "renew"
	EventExpire     EventKind = "expire"
	EventDeregister EventKind = "deregister"
)

// Event records one membership transition for observability.
type Event struct {
	Kind EventKind `json:"kind"`
	Name string    `json:"name"`
	URL  string    `json:"url"`
	At   time.Time `json:"at"`
}

// Lease is one replica's registration snapshot.
type Lease struct {
	Name     string        `json:"name"`
	URL      string        `json:"url"`
	Platform string        `json:"platform,omitempty"`
	TTL      time.Duration `json:"-"`
	TTLMs    float64       `json:"ttl_ms"`
	Expires  time.Time     `json:"expires"`
	Draining bool          `json:"draining,omitempty"`
}

type lease struct {
	Lease
	rep *serve.Replica
}

// RegistryConfig tunes lease management.
type RegistryConfig struct {
	// DefaultTTL is granted when a registration requests no TTL
	// (default DefaultTTL).
	DefaultTTL time.Duration
	// SweepInterval is the expiry-scan period (default min(DefaultTTL/4,
	// 250ms)).
	SweepInterval time.Duration
	// DrainTimeout bounds drain-aware deregistration (default
	// DefaultDrainTimeout).
	DrainTimeout time.Duration
}

func (cfg *RegistryConfig) fillDefaults() {
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = DefaultTTL
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.DefaultTTL / 4
		if cfg.SweepInterval > 250*time.Millisecond {
			cfg.SweepInterval = 250 * time.Millisecond
		}
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
}

// Registry manages replica leases over a serve.Pool: registration adds
// a pool member, renewal extends its lease, TTL expiry removes it, and
// deregistration removes it immediately or after a drain. Removal
// never touches requests already dispatched to the replica — the pool
// keeps in-flight work alive — so lease churn under traffic fails
// nothing that was admitted.
type Registry struct {
	cfg  RegistryConfig
	pool *serve.Pool

	mu     sync.Mutex
	leases map[string]*lease
	events []Event

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewRegistry builds a registry over the pool and starts its expiry
// sweeper. Callers must Close it.
func NewRegistry(pool *serve.Pool, cfg RegistryConfig) *Registry {
	cfg.fillDefaults()
	g := &Registry{
		cfg:    cfg,
		pool:   pool,
		leases: map[string]*lease{},
		stop:   make(chan struct{}),
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sweepLoop()
	}()
	return g
}

// Close stops the expiry sweeper. Leases and pool members are left in
// place (the pool's owner closes the pool).
func (g *Registry) Close() {
	g.once.Do(func() { close(g.stop) })
	g.wg.Wait()
}

func clampTTL(ttl, def time.Duration) time.Duration {
	switch {
	case ttl <= 0:
		return def
	case ttl < MinTTL:
		return MinTTL
	case ttl > MaxTTL:
		return MaxTTL
	}
	return ttl
}

func (g *Registry) note(kind EventKind, name, url string) {
	g.events = append(g.events, Event{Kind: kind, Name: name, URL: url, At: time.Now()})
	if len(g.events) > maxEvents {
		g.events = g.events[len(g.events)-maxEvents:]
	}
}

// Register grants or renews a lease. A fresh name joins the pool; a
// known name has its lease extended (re-registering a draining replica
// readmits it — the replica owner changed its mind about retiring). A
// known name at a *different* URL is replaced: the old pool member is
// removed and the new one registered.
func (g *Registry) Register(name, url, platform string, ttl time.Duration) (Lease, error) {
	if name == "" || url == "" {
		return Lease{}, fmt.Errorf("fleet: registration needs a name and a url")
	}
	ttl = clampTTL(ttl, g.cfg.DefaultTTL)
	g.mu.Lock()
	defer g.mu.Unlock()
	if l, ok := g.leases[name]; ok {
		if l.URL == url {
			l.TTL = ttl
			l.TTLMs = float64(ttl) / float64(time.Millisecond)
			l.Expires = time.Now().Add(ttl)
			if l.Draining {
				l.Draining = false
				l.rep.SetDraining(false)
			}
			if platform != "" {
				l.Platform = platform
			}
			g.note(EventRenew, name, url)
			return l.Lease, nil
		}
		// Same name, new address: the replica moved. Retire the old
		// member before admitting the new one.
		g.pool.Remove(name)
		delete(g.leases, name)
		g.note(EventDeregister, name, l.URL)
	}
	rep, err := g.pool.Add(name, url)
	if err != nil {
		return Lease{}, err
	}
	l := &lease{
		Lease: Lease{
			Name:     name,
			URL:      url,
			Platform: platform,
			TTL:      ttl,
			TTLMs:    float64(ttl) / float64(time.Millisecond),
			Expires:  time.Now().Add(ttl),
		},
		rep: rep,
	}
	g.leases[name] = l
	g.note(EventRegister, name, url)
	return l.Lease, nil
}

// Deregister removes a lease. With drain=false the replica leaves the
// pool immediately. With drain=true it is first marked draining (no
// new picks) and removed once its in-flight count reaches zero or the
// drain timeout lapses — the scale-down path that never fails an
// admitted request.
func (g *Registry) Deregister(name string, drain bool) error {
	g.mu.Lock()
	l, ok := g.leases[name]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("fleet: no lease named %q", name)
	}
	if !drain {
		delete(g.leases, name)
		g.pool.Remove(name)
		g.note(EventDeregister, name, l.URL)
		g.mu.Unlock()
		return nil
	}
	if l.Draining {
		g.mu.Unlock()
		return nil // drain already under way
	}
	l.Draining = true
	l.rep.SetDraining(true)
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		deadline := time.Now().Add(g.cfg.DrainTimeout)
		for l.rep.Inflight() > 0 && time.Now().Before(deadline) {
			select {
			case <-g.stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		if cur, ok := g.leases[name]; ok && cur == l && cur.Draining {
			delete(g.leases, name)
			g.pool.Remove(name)
			g.note(EventDeregister, name, l.URL)
		}
	}()
	return nil
}

// Leases snapshots every active lease, registration-order-free.
func (g *Registry) Leases() []Lease {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Lease, 0, len(g.leases))
	for _, l := range g.leases {
		out = append(out, l.Lease)
	}
	return out
}

// Events returns the recent membership transitions (bounded ring).
func (g *Registry) Events() []Event {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Event(nil), g.events...)
}

// sweepLoop removes expired leases. Expiry is abrupt by design — a
// replica that stops renewing is presumed dead — but pool removal
// still leaves in-flight requests to finish or fail over, so admitted
// work survives the eviction.
func (g *Registry) sweepLoop() {
	ticker := time.NewTicker(g.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			now := time.Now()
			g.mu.Lock()
			for name, l := range g.leases {
				if now.After(l.Expires) {
					delete(g.leases, name)
					g.pool.Remove(name)
					g.note(EventExpire, name, l.URL)
				}
			}
			g.mu.Unlock()
		}
	}
}
