package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Agent is a replica's client side of the lease protocol: it registers
// the replica with the fleet control plane, renews the lease at TTL/3,
// and deregisters with drain on shutdown. harvest-serve runs one when
// started with -fleet; the LocalProvisioner runs one per in-process
// replica it spawns.
type Agent struct {
	// FleetURL is the control plane's base URL.
	FleetURL string
	// Name is the replica's lease name (must be fleet-unique).
	Name string
	// URL is the replica's advertised base URL — where the router will
	// dispatch to.
	URL string
	// Platform is the replica's hw platform key (capacity-oracle
	// metadata).
	Platform string
	// TTL is the requested lease length (0 = the registry default).
	TTL time.Duration
	// HTTP is the client used for control-plane calls (nil = a
	// 5s-timeout default).
	HTTP *http.Client
	// Logf, when non-nil, receives agent lifecycle messages.
	Logf func(format string, args ...any)

	aborted atomic.Bool
}

// Abort makes the next Run exit skip the shutdown deregistration —
// the crash-simulation path: renewals just stop and the lease is left
// to expire by TTL.
func (a *Agent) Abort() { a.aborted.Store(true) }

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Agent) client() *http.Client {
	if a.HTTP != nil {
		return a.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (a *Agent) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.FleetURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// register sends one registration/renewal and returns the granted TTL.
func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	var resp RegisterResponseJSON
	err := a.post(ctx, "/v2/fleet/register", RegisterRequestJSON{
		Name:     a.Name,
		URL:      a.URL,
		Platform: a.Platform,
		TTLMs:    float64(a.TTL) / float64(time.Millisecond),
	}, &resp)
	if err != nil {
		return 0, err
	}
	return time.Duration(resp.TTLMs * float64(time.Millisecond)), nil
}

// Run registers the replica (retrying until the control plane
// answers), renews the lease at a third of its TTL, and deregisters
// with drain when ctx is cancelled. It returns the shutdown
// deregistration error, nil on a clean retirement.
func (a *Agent) Run(ctx context.Context) error {
	if a.FleetURL == "" || a.Name == "" || a.URL == "" {
		return fmt.Errorf("fleet: agent needs FleetURL, Name and URL")
	}
	backoff := 50 * time.Millisecond
	var ttl time.Duration
	for {
		var err error
		if ttl, err = a.register(ctx); err == nil {
			break
		}
		a.logf("fleet agent %s: register: %v (retrying in %v)", a.Name, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	a.logf("fleet agent %s: registered %s (lease %v)", a.Name, a.URL, ttl)
	renew := ttl / 3
	if renew < 50*time.Millisecond {
		renew = 50 * time.Millisecond
	}
	ticker := time.NewTicker(renew)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if a.aborted.Load() {
				return ctx.Err() // crashed, not retired: leave the lease to expire
			}
			// Retire gracefully: a drain-aware deregistration on a
			// fresh context (the run context is already dead).
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			err := a.post(dctx, "/v2/fleet/deregister", DeregisterRequestJSON{Name: a.Name, Drain: true}, nil)
			if err != nil {
				a.logf("fleet agent %s: deregister: %v", a.Name, err)
			} else {
				a.logf("fleet agent %s: deregistered (draining)", a.Name)
			}
			return err
		case <-ticker.C:
			if granted, err := a.register(ctx); err != nil {
				a.logf("fleet agent %s: renew: %v", a.Name, err)
			} else if granted != ttl && granted > 0 {
				ttl = granted
				ticker.Reset(max(granted/3, 50*time.Millisecond))
			}
		}
	}
}
