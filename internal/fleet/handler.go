package fleet

import (
	"encoding/json"
	"net/http"
	"time"
)

// RegisterRequestJSON is the body of POST /v2/fleet/register — one
// registration or renewal (the protocol does not distinguish; a known
// name renews).
type RegisterRequestJSON struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Platform string `json:"platform,omitempty"`
	// TTLMs is the requested lease length; 0 asks for the registry
	// default. The response carries the granted (clamped) value.
	TTLMs float64 `json:"ttl_ms,omitempty"`
}

// RegisterResponseJSON acknowledges a registration with the granted
// lease.
type RegisterResponseJSON struct {
	Name    string    `json:"name"`
	TTLMs   float64   `json:"ttl_ms"`
	Expires time.Time `json:"expires"`
}

// DeregisterRequestJSON is the body of POST /v2/fleet/deregister.
type DeregisterRequestJSON struct {
	Name string `json:"name"`
	// Drain requests a drain-aware removal: stop new picks, wait for
	// in-flight work, then leave the pool.
	Drain bool `json:"drain,omitempty"`
}

// StatusJSON is the response of GET /v2/fleet/status: current leases,
// recent membership events, and — when an autoscaler runs — its
// decision log.
type StatusJSON struct {
	Leases    []Lease    `json:"leases"`
	Events    []Event    `json:"events,omitempty"`
	Decisions []Decision `json:"decisions,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Handler serves the fleet control-plane API over a registry and
// optional controller, delegating everything else to next (typically
// the router's data-plane handler, so one listener serves both).
//
//	POST /v2/fleet/register    — register or renew a lease
//	POST /v2/fleet/deregister  — retire a replica (drain-aware optional)
//	GET  /v2/fleet/status      — leases, events, autoscaler decisions
func Handler(g *Registry, c *Controller, next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad register body: "+err.Error())
			return
		}
		l, err := g.Register(req.Name, req.URL, req.Platform, time.Duration(req.TTLMs*float64(time.Millisecond)))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, RegisterResponseJSON{Name: l.Name, TTLMs: l.TTLMs, Expires: l.Expires})
	})
	mux.HandleFunc("POST /v2/fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad deregister body: "+err.Error())
			return
		}
		if err := g.Deregister(req.Name, req.Drain); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v2/fleet/status", func(w http.ResponseWriter, r *http.Request) {
		st := StatusJSON{Leases: g.Leases(), Events: g.Events()}
		if c != nil {
			st.Decisions = c.Decisions()
		}
		writeJSON(w, http.StatusOK, st)
	})
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}
