// Package preprocess implements the HARVEST preprocessing engines
// (paper §3.2, §4.2): a real CPU engine (the Torchvision/PyTorch
// baseline), a CV2-style CPU engine doing full-resolution perspective
// rectification for the CRSA camera feed, and a GPU engine modeling
// NVIDIA DALI on the calibrated platform models.
//
// The CPU engines really decode, warp, resize and normalize pixels and
// report measured time scaled to the target platform's CPU; the GPU
// engine reports modeled time from internal/hw. Both can materialize
// the normalized CHW tensors the model engines consume.
package preprocess

import (
	"fmt"
	"sync"
	"time"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/imaging"
)

// Item is one image entering a preprocessing engine. Either Encoded or
// Decoded must be set; W/H always describe the source size.
type Item struct {
	Encoded []byte
	Format  imaging.Format
	Decoded *imaging.Image
	W, H    int
	Task    datasets.TaskPreproc
}

// ItemFromDataset loads sample i of ds as an encoded Item.
func ItemFromDataset(ds *datasets.Dataset, i int) (Item, error) {
	data, rec, err := ds.Encoded(i)
	if err != nil {
		return Item{}, err
	}
	return Item{Encoded: data, Format: ds.Spec().Format,
		W: rec.W, H: rec.H, Task: ds.Spec().Task}, nil
}

// Result is the outcome of preprocessing one batch.
type Result struct {
	// Tensors holds the normalized CHW float32 tensors (3*out*out per
	// image) when the engine materializes outputs; nil otherwise.
	Tensors [][]float32
	// Seconds is the batch's duration on the target platform: measured
	// host time scaled for CPU engines, modeled time for GPU engines.
	Seconds float64
}

// Engine transforms batches of raw images into model-ready tensors.
type Engine interface {
	// Name identifies the engine as Fig. 7 labels it (e.g. "DALI 224",
	// "PyTorch", "CV2").
	Name() string
	// OutRes is the square output resolution.
	OutRes() int
	// ProcessBatch preprocesses the items.
	ProcessBatch(items []Item) (Result, error)
}

func decodeItem(it Item) (*imaging.Image, error) {
	if it.Decoded != nil {
		return it.Decoded, nil
	}
	if it.Encoded == nil {
		return nil, fmt.Errorf("preprocess: item has neither decoded nor encoded pixels")
	}
	return imaging.DecodeBytes(it.Encoded, it.Format)
}

// CPUEngine is the Torchvision-style CPU baseline: decode, optional
// task-specific transform, resize to the output resolution, center
// crop, ImageNet normalization. All work is real; the reported Seconds
// scale the measured single-thread host time to the target platform.
type CPUEngine struct {
	Platform *hw.Platform
	Out      int
	// Label overrides the reported name (default "PyTorch").
	Label string
	// FullResWarp makes the perspective rectification run at full
	// source resolution before resizing (the OpenCV CRSA pipeline);
	// otherwise perspective items are warped directly to a working
	// resolution. Full-resolution warping on 4K frames is what makes
	// the paper's CV2 bars so tall.
	FullResWarp bool
	// Materialize controls whether normalized tensors are returned.
	Materialize bool
	// Workers parallelizes the batch across CPU cores (paper §4.2
	// flags parallel acceleration of the CPU-bound path as future
	// work). 0 or 1 keeps the single-threaded baseline the paper's
	// PyTorch@BS1 numbers correspond to.
	Workers int
}

// Name returns the Fig. 7 label.
func (e *CPUEngine) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "PyTorch"
}

// OutRes returns the output resolution.
func (e *CPUEngine) OutRes() int { return e.Out }

// processOne runs the full CPU pipeline for one item.
func (e *CPUEngine) processOne(it Item) ([]float32, error) {
	im, err := decodeItem(it)
	if err != nil {
		return nil, err
	}
	if it.Task == datasets.TaskPerspective {
		if e.FullResWarp {
			hom, err := imaging.GroundCameraHomography(im.W, im.H, im.W, im.H)
			if err != nil {
				return nil, err
			}
			im = imaging.WarpPerspective(im, hom, im.W, im.H)
		} else {
			work := 4 * e.Out
			if work > im.W {
				work = im.W
			}
			hom, err := imaging.GroundCameraHomography(im.W, im.H, work, work)
			if err != nil {
				return nil, err
			}
			im = imaging.WarpPerspective(im, hom, work, work)
		}
	}
	resized := imaging.ResizeShortSide(im, e.Out)
	cropped := imaging.CenterCrop(resized, e.Out, e.Out)
	return imaging.Normalize(cropped, imaging.ImageNetMean, imaging.ImageNetStd), nil
}

// ProcessBatch really preprocesses every item on the CPU, across
// Workers goroutines when configured.
func (e *CPUEngine) ProcessBatch(items []Item) (Result, error) {
	if len(items) == 0 {
		return Result{}, fmt.Errorf("preprocess: empty batch")
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	tensors := make([][]float32, len(items))
	start := time.Now()
	var err error
	if workers == 1 {
		for i, it := range items {
			tensors[i], err = e.processOne(it)
			if err != nil {
				return Result{}, err
			}
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(items); i += workers {
					t, err := e.processOne(items[i])
					if err != nil {
						errs[w] = err
						return
					}
					tensors[i] = t
				}
			}(w)
		}
		wg.Wait()
		for _, werr := range errs {
			if werr != nil {
				return Result{}, werr
			}
		}
	}
	host := time.Since(start).Seconds()
	out := Result{Seconds: hw.ScaleCPUSeconds(e.Platform, host)}
	if e.Materialize {
		out.Tensors = tensors
	}
	return out, nil
}

// NewCV2Engine returns the OpenCV-style engine the paper uses for the
// CRSA dataset: full-resolution perspective rectification followed by
// resize/normalize, all on the CPU.
func NewCV2Engine(p *hw.Platform, out int) *CPUEngine {
	return &CPUEngine{Platform: p, Out: out, Label: "CV2", FullResWarp: true}
}

// GPUEngine models NVIDIA DALI on the calibrated platform: constant
// per-image decode cost plus output-resolution-dependent transform
// cost. Set Materialize to additionally produce real tensors (at real
// host cost, excluded from the reported Seconds).
type GPUEngine struct {
	Platform    *hw.Platform
	Out         int
	Materialize bool
}

// Name returns the Fig. 7 label, e.g. "DALI 224".
func (e *GPUEngine) Name() string { return fmt.Sprintf("DALI %d", e.Out) }

// OutRes returns the output resolution.
func (e *GPUEngine) OutRes() int { return e.Out }

// ProcessBatch models the batch's GPU cost; pixels are only touched if
// Materialize is set.
func (e *GPUEngine) ProcessBatch(items []Item) (Result, error) {
	if len(items) == 0 {
		return Result{}, fmt.Errorf("preprocess: empty batch")
	}
	inPixels := make([]int, len(items))
	for i, it := range items {
		if it.W <= 0 || it.H <= 0 {
			return Result{}, fmt.Errorf("preprocess: item %d has unknown size", i)
		}
		inPixels[i] = it.W * it.H
	}
	res := Result{Seconds: hw.GPUPreprocBatchSeconds(e.Platform, inPixels, e.Out*e.Out)}
	if e.Materialize {
		res.Tensors = make([][]float32, 0, len(items))
		for _, it := range items {
			im, err := decodeItem(it)
			if err != nil {
				return Result{}, err
			}
			// Same geometry as the CPU engines: aspect-preserving resize
			// plus center crop, so the same image yields the same tensor
			// on either engine (DALI parity with the Torchvision path).
			resized := imaging.ResizeShortSide(im, e.Out)
			cropped := imaging.CenterCrop(resized, e.Out, e.Out)
			res.Tensors = append(res.Tensors, imaging.Normalize(cropped, imaging.ImageNetMean, imaging.ImageNetStd))
		}
	}
	return res, nil
}

// DeviceBytes estimates the GPU memory a DALI-style engine needs for a
// batch: decode buffers for the largest input plus double-buffered
// output tensors.
func (e *GPUEngine) DeviceBytes(maxInPixels, batch int) int64 {
	decode := int64(maxInPixels) * 3
	out := int64(e.Out) * int64(e.Out) * 3 * 4 * 2
	return (decode + out) * int64(batch)
}
