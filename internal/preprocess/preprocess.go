// Package preprocess implements the HARVEST preprocessing engines
// (paper §3.2, §4.2): a real CPU engine (the Torchvision/PyTorch
// baseline), a CV2-style CPU engine doing full-resolution perspective
// rectification for the CRSA camera feed, and a GPU engine modeling
// NVIDIA DALI on the calibrated platform models.
//
// The CPU engines really decode, warp, resize and normalize pixels —
// through the fused single-pass kernel in internal/imaging and, with
// Workers > 1, a persistent worker pool with per-worker pinned scratch
// buffers (the §4.2 "parallel acceleration of the CPU-bound path") —
// and report measured work scaled to the target platform's CPU; the
// GPU engine reports modeled time from internal/hw. Both can
// materialize the normalized CHW tensors the model engines consume.
package preprocess

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/imaging"
)

// Item is one image entering a preprocessing engine. Either Encoded or
// Decoded must be set; W/H always describe the source size.
type Item struct {
	Encoded []byte
	Format  imaging.Format
	Decoded *imaging.Image
	W, H    int
	Task    datasets.TaskPreproc
}

// ItemFromDataset loads sample i of ds as an encoded Item.
func ItemFromDataset(ds *datasets.Dataset, i int) (Item, error) {
	data, rec, err := ds.Encoded(i)
	if err != nil {
		return Item{}, err
	}
	return Item{Encoded: data, Format: ds.Spec().Format,
		W: rec.W, H: rec.H, Task: ds.Spec().Task}, nil
}

// Result is the outcome of preprocessing one batch.
type Result struct {
	// Tensors holds the normalized CHW float32 tensors (3*out*out per
	// image) when the engine materializes outputs; nil otherwise.
	Tensors [][]float32
	// Seconds is the batch's duration on the target platform. For CPU
	// engines it is the aggregate CPU work: each item's host processing
	// time is measured on the worker that ran it, summed across the
	// batch, and scaled by the platform's single-thread core speed
	// (hw.ScaleCPUSeconds) — so the modeled platform cost of the batch
	// is independent of how many host workers happened to run it.
	// (Previously the parallel path scaled the parallel *wall-clock*
	// through the single-thread model, silently deflating modeled
	// platform time by up to the worker count.) For GPU engines it is
	// the modeled batch time. Note: under host CPU oversubscription
	// (more workers than cores), per-item measurements include
	// scheduler interleaving and Seconds overestimates.
	Seconds float64
	// WallSeconds is the real host wall-clock duration of the batch —
	// what the caller actually waited, which shrinks as Workers grows.
	// Zero for purely modeled (GPU) engines.
	WallSeconds float64
}

// Engine transforms batches of raw images into model-ready tensors.
type Engine interface {
	// Name identifies the engine as Fig. 7 labels it (e.g. "DALI 224",
	// "PyTorch", "CV2").
	Name() string
	// OutRes is the square output resolution.
	OutRes() int
	// ProcessBatch preprocesses the items.
	ProcessBatch(items []Item) (Result, error)
}

// CPUEngine is the Torchvision-style CPU baseline: decode, optional
// task-specific transform, then the fused resize+crop+normalize kernel
// writing straight into the output tensor. All pixel work is real; see
// Result.Seconds for the platform-time semantics. Safe for concurrent
// ProcessBatch calls.
type CPUEngine struct {
	Platform *hw.Platform
	Out      int
	// Label overrides the reported name (default "PyTorch").
	Label string
	// FullResWarp makes the perspective rectification run at full
	// source resolution before resizing (the OpenCV CRSA pipeline);
	// otherwise perspective items are warped directly to a working
	// resolution. Full-resolution warping on 4K frames is what makes
	// the paper's CV2 bars so tall.
	FullResWarp bool
	// Materialize controls whether normalized tensors are returned.
	Materialize bool
	// Workers parallelizes the batch across a persistent worker pool
	// (paper §4.2's parallel acceleration of the CPU-bound path). 0 or
	// 1 keeps the single-threaded baseline the paper's PyTorch@BS1
	// numbers correspond to.
	Workers int
	// Pool, when set, is the persistent worker pool used for parallel
	// batches — share one across engines to bound total preprocessing
	// CPU. When nil and Workers > 1, the engine lazily starts its own
	// pool of Workers workers (released by Close).
	Pool *Pool
	// Tensors, when set, supplies output tensor buffers: callers that
	// are done with a materialized tensor hand it back via Recycle and
	// the next batch reuses the memory instead of allocating.
	Tensors *imaging.TensorPool

	poolOnce sync.Once
	ownPool  *Pool
	// discard recycles output buffers internally when Materialize is
	// off (the tensor is produced, measured, and dropped).
	discard imaging.TensorPool
	// scratches recycles single-threaded scratch sets across
	// concurrent ProcessBatch callers.
	scratches sync.Pool
}

// Name returns the Fig. 7 label.
func (e *CPUEngine) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "PyTorch"
}

// OutRes returns the output resolution.
func (e *CPUEngine) OutRes() int { return e.Out }

// pool returns the engine's worker pool, lazily starting an owned one.
func (e *CPUEngine) pool(workers int) *Pool {
	if e.Pool != nil {
		return e.Pool
	}
	e.poolOnce.Do(func() { e.ownPool = NewPool(workers) })
	return e.ownPool
}

// Close releases the engine's owned worker pool, if one was started.
// Call only after the last ProcessBatch has returned. A shared Pool
// (the Pool field) is the caller's to close.
func (e *CPUEngine) Close() {
	e.poolOnce.Do(func() {}) // pin: no pool may start after Close
	if e.ownPool != nil {
		e.ownPool.Close()
	}
}

// Recycle returns materialized tensors to the engine's tensor pool so
// subsequent batches reuse their memory. Safe to call with tensors
// from any source; a no-op when the engine has no Tensors pool.
func (e *CPUEngine) Recycle(tensors [][]float32) {
	if e.Tensors == nil {
		return
	}
	for _, t := range tensors {
		e.Tensors.Put(t)
	}
}

// getTensor obtains an output buffer for one item.
func (e *CPUEngine) getTensor(n int) []float32 {
	if e.Tensors != nil {
		return e.Tensors.Get(n)
	}
	if !e.Materialize {
		return e.discard.Get(n)
	}
	return make([]float32, n)
}

func (e *CPUEngine) getScratch() *scratch {
	if s, _ := e.scratches.Get().(*scratch); s != nil {
		return s
	}
	return &scratch{}
}

// decodeInto resolves an item's pixels. Raw (PPM) frames are decoded
// zero-copy — the pipeline only reads the source raster, so it can
// alias the encoded payload directly. Compressed formats decode into
// the reused scratch buffer.
func decodeInto(it Item, s *scratch) (*imaging.Image, error) {
	if it.Decoded != nil {
		return it.Decoded, nil
	}
	if it.Encoded == nil {
		return nil, fmt.Errorf("preprocess: item has neither decoded nor encoded pixels")
	}
	if it.Format == imaging.FormatPPM {
		return imaging.DecodePPMZeroCopy(it.Encoded, &s.ppm)
	}
	im, err := imaging.DecodeBytesInto(it.Encoded, it.Format, s.decode)
	if err != nil {
		return nil, err
	}
	s.decode = im
	return im, nil
}

// processItem runs the full CPU pipeline for one item into a tensor
// obtained from alloc: decode (reusing s.decode), optional perspective
// warp (reusing s.warp), then the fused resize+crop+normalize kernel.
// The pixel arithmetic is identical to the historical
// decode→warp→ResizeShortSide→CenterCrop→Normalize composition.
func processItem(it Item, out int, fullResWarp bool, s *scratch, alloc func(int) []float32) ([]float32, error) {
	im, err := decodeInto(it, s)
	if err != nil {
		return nil, err
	}
	if it.Task == datasets.TaskPerspective {
		var ww, wh int
		if fullResWarp {
			ww, wh = im.W, im.H
		} else {
			work := 4 * out
			if work > im.W {
				work = im.W
			}
			ww, wh = work, work
		}
		hom, err := imaging.GroundCameraHomography(im.W, im.H, ww, wh)
		if err != nil {
			return nil, err
		}
		s.warp = imaging.ReuseImage(s.warp, ww, wh)
		imaging.WarpPerspectiveInto(s.warp, im, hom)
		im = s.warp
	}
	dst := alloc(imaging.FusedLen(im.W, im.H, out))
	if _, _, err := s.kernel.ResizeCropNormalizeInto(dst, im, out, imaging.ImageNetMean, imaging.ImageNetStd); err != nil {
		return nil, err
	}
	return dst, nil
}

// processInto runs one item with the engine's configuration.
func (e *CPUEngine) processInto(it Item, s *scratch) ([]float32, error) {
	return processItem(it, e.Out, e.FullResWarp, s, e.getTensor)
}

// ProcessEach really preprocesses every item, streaming each completed
// tensor to fn as it finishes (in completion order, which under
// Workers > 1 is not batch order) instead of holding results to a
// batch barrier. The returned Result carries the timing but a nil
// Tensors (delivery happened through fn). On an item error the rest of
// the batch is cancelled and the error of the lowest-index failing
// item is returned; fn may have been invoked for other items already.
func (e *CPUEngine) ProcessEach(items []Item, fn func(i int, tensor []float32)) (Result, error) {
	if len(items) == 0 {
		return Result{}, fmt.Errorf("preprocess: empty batch")
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	hostCPU := 0.0
	if workers == 1 || len(items) == 1 {
		s := e.getScratch()
		defer e.scratches.Put(s)
		for i, it := range items {
			t0 := time.Now()
			tensor, err := e.processInto(it, s)
			if err != nil {
				return Result{}, fmt.Errorf("preprocess: item %d: %w", i, err)
			}
			hostCPU += time.Since(t0).Seconds()
			fn(i, tensor)
		}
	} else {
		var cancelFrom atomic.Int64
		cancelFrom.Store(math.MaxInt64)
		var firstErr error
		e.pool(workers).process(e, items, &cancelFrom, func(r itemResult) {
			if r.skipped {
				return
			}
			hostCPU += r.cpuSec
			if r.err != nil {
				// Lowest failing index wins; items below it are never
				// skipped, so the winner is deterministic.
				if int64(r.idx) < cancelFrom.Load() {
					cancelFrom.Store(int64(r.idx))
					firstErr = fmt.Errorf("preprocess: item %d: %w", r.idx, r.err)
				}
				return
			}
			fn(r.idx, r.tensor)
		})
		if firstErr != nil {
			return Result{}, firstErr
		}
	}
	return Result{
		Seconds:     hw.ScaleCPUSeconds(e.Platform, hostCPU),
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}

// ProcessBatch really preprocesses every item on the CPU, across the
// persistent worker pool when Workers > 1.
func (e *CPUEngine) ProcessBatch(items []Item) (Result, error) {
	var tensors [][]float32
	if e.Materialize {
		tensors = make([][]float32, len(items))
	}
	res, err := e.ProcessEach(items, func(i int, tensor []float32) {
		if tensors != nil {
			tensors[i] = tensor
		} else if e.Tensors == nil {
			e.discard.Put(tensor)
		}
	})
	if err != nil {
		return Result{}, err
	}
	res.Tensors = tensors
	return res, nil
}

// NewCV2Engine returns the OpenCV-style engine the paper uses for the
// CRSA dataset: full-resolution perspective rectification followed by
// resize/normalize, all on the CPU.
func NewCV2Engine(p *hw.Platform, out int) *CPUEngine {
	return &CPUEngine{Platform: p, Out: out, Label: "CV2", FullResWarp: true}
}

// GPUEngine models NVIDIA DALI on the calibrated platform: constant
// per-image decode cost plus output-resolution-dependent transform
// cost. Set Materialize to additionally produce real tensors (at real
// host cost, excluded from the reported Seconds).
type GPUEngine struct {
	Platform    *hw.Platform
	Out         int
	Materialize bool

	scratches sync.Pool
}

// Name returns the Fig. 7 label, e.g. "DALI 224".
func (e *GPUEngine) Name() string { return fmt.Sprintf("DALI %d", e.Out) }

// OutRes returns the output resolution.
func (e *GPUEngine) OutRes() int { return e.Out }

// ProcessBatch models the batch's GPU cost; pixels are only touched if
// Materialize is set.
func (e *GPUEngine) ProcessBatch(items []Item) (Result, error) {
	if len(items) == 0 {
		return Result{}, fmt.Errorf("preprocess: empty batch")
	}
	inPixels := make([]int, len(items))
	for i, it := range items {
		if it.W <= 0 || it.H <= 0 {
			return Result{}, fmt.Errorf("preprocess: item %d has unknown size", i)
		}
		inPixels[i] = it.W * it.H
	}
	res := Result{Seconds: hw.GPUPreprocBatchSeconds(e.Platform, inPixels, e.Out*e.Out)}
	if e.Materialize {
		s, _ := e.scratches.Get().(*scratch)
		if s == nil {
			s = &scratch{}
		}
		defer e.scratches.Put(s)
		res.Tensors = make([][]float32, 0, len(items))
		for i, it := range items {
			// Same geometry as the CPU engine's default path, including
			// the working-resolution perspective warp for CRSA ground
			// camera items, so the same image yields the same tensor on
			// either engine (DALI parity with the Torchvision path).
			tensor, err := processItem(it, e.Out, false, s,
				func(n int) []float32 { return make([]float32, n) })
			if err != nil {
				return Result{}, fmt.Errorf("preprocess: item %d: %w", i, err)
			}
			res.Tensors = append(res.Tensors, tensor)
		}
	}
	return res, nil
}

// DeviceBytes estimates the GPU memory a DALI-style engine needs for a
// batch: decode buffers for the largest input plus double-buffered
// output tensors.
func (e *GPUEngine) DeviceBytes(maxInPixels, batch int) int64 {
	decode := int64(maxInPixels) * 3
	out := int64(e.Out) * int64(e.Out) * 3 * 4 * 2
	return (decode + out) * int64(batch)
}
