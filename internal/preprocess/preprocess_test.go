package preprocess

import (
	"runtime"
	"testing"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/stats"
)

func testItems(t *testing.T, slug string, n int) []Item {
	t.Helper()
	spec, err := datasets.ByName(slug)
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.MustNew(spec, 42)
	items := make([]Item, n)
	for i := range items {
		items[i], err = ItemFromDataset(ds, i)
		if err != nil {
			t.Fatal(err)
		}
	}
	return items
}

func TestCPUEngineMaterializesNormalizedTensors(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	e := &CPUEngine{Platform: hw.A100(), Out: 64, Materialize: true}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 3 {
		t.Fatalf("got %d tensors", len(res.Tensors))
	}
	for _, tensor := range res.Tensors {
		if len(tensor) != 3*64*64 {
			t.Fatalf("tensor length %d, want %d", len(tensor), 3*64*64)
		}
		for _, v := range tensor {
			if v < -3 || v > 3 {
				t.Fatalf("unnormalized value %v", v)
			}
		}
	}
	if res.Seconds <= 0 {
		t.Error("no time reported")
	}
}

func TestCPUEngineNoMaterialize(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 2)
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tensors != nil {
		t.Error("tensors returned without Materialize")
	}
	if e.Name() != "PyTorch" || e.OutRes() != 32 {
		t.Error("engine identity wrong")
	}
}

func TestCPUEngineEmptyBatch(t *testing.T) {
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestCPUEngineScalesToPlatform(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 4)
	fast := &CPUEngine{Platform: hw.A100(), Out: 32}
	slow := &CPUEngine{Platform: hw.Jetson(), Out: 32}
	rf, err := fast.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	// Jetson cores are ~2.2x slower; allow wide tolerance for host
	// timing noise but require a clear ordering.
	if rs.Seconds <= rf.Seconds {
		t.Errorf("Jetson-scaled time %.4f not above cloud time %.4f", rs.Seconds, rf.Seconds)
	}
}

func TestItemFromDatasetCarriesTask(t *testing.T) {
	items := testItems(t, datasets.SlugCRSA, 1)
	if items[0].Task != datasets.TaskPerspective {
		t.Error("CRSA item lost its perspective task")
	}
	if items[0].W != 3840 || items[0].H != 2160 {
		t.Errorf("CRSA item size %dx%d", items[0].W, items[0].H)
	}
}

func TestPerspectiveItemProcessing(t *testing.T) {
	// A moderately sized synthetic frame keeps the test fast while the
	// full-res vs working-res warp cost difference stays measurable.
	im := imaging.Synthesize(960, 540, imaging.KindSoil, stats.NewRNG(1))
	item := Item{Decoded: im, W: im.W, H: im.H, Task: datasets.TaskPerspective}
	py := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true}
	if _, err := py.ProcessBatch([]Item{item}); err != nil { // warm-up
		t.Fatal(err)
	}
	res, err := py.ProcessBatch([]Item{item})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 1 || len(res.Tensors[0]) != 3*32*32 {
		t.Fatal("perspective item produced wrong tensor")
	}
	cv := NewCV2Engine(hw.A100(), 32)
	cv.Materialize = true
	res2, err := cv.ProcessBatch([]Item{item})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Name() != "CV2" {
		t.Errorf("CV2 engine name %q", cv.Name())
	}
	if len(res2.Tensors) != 1 {
		t.Fatal("CV2 produced no tensor")
	}
	// Full-res warp must cost more than working-res warp.
	if res2.Seconds <= res.Seconds {
		t.Errorf("CV2 (%.5fs) not slower than PyTorch (%.5fs) on perspective input",
			res2.Seconds, res.Seconds)
	}
}

func TestDecodeItemErrors(t *testing.T) {
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch([]Item{{}}); err == nil {
		t.Error("pixel-less item accepted")
	}
	if _, err := e.ProcessBatch([]Item{{Encoded: []byte("garbage"), Format: imaging.FormatJPEG}}); err == nil {
		t.Error("corrupt encoding accepted")
	}
}

func TestGPUEngineModeledSeconds(t *testing.T) {
	items := testItems(t, datasets.SlugPlantVillage, 4)
	e32 := &GPUEngine{Platform: hw.A100(), Out: 32}
	e224 := &GPUEngine{Platform: hw.A100(), Out: 224}
	r32, err := e32.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	r224, err := e224.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if r32.Seconds <= 0 || r224.Seconds <= r32.Seconds {
		t.Errorf("DALI 224 (%.5f) not slower than DALI 32 (%.5f)", r224.Seconds, r32.Seconds)
	}
	if r32.Tensors != nil {
		t.Error("GPU engine materialized without request")
	}
	if e224.Name() != "DALI 224" {
		t.Errorf("GPU engine name %q", e224.Name())
	}
}

func TestGPUEngineMaterialize(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 2)
	e := &GPUEngine{Platform: hw.V100(), Out: 48, Materialize: true}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 2 || len(res.Tensors[0]) != 3*48*48 {
		t.Fatal("materialized GPU tensors wrong")
	}
}

func TestGPUEngineRequiresSizes(t *testing.T) {
	e := &GPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch([]Item{{Encoded: []byte("x")}}); err == nil {
		t.Error("item without dimensions accepted")
	}
	if _, err := e.ProcessBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestGPUEngineDeviceBytes(t *testing.T) {
	e := &GPUEngine{Platform: hw.A100(), Out: 224}
	b1 := e.DeviceBytes(256*256, 1)
	b64 := e.DeviceBytes(256*256, 64)
	if b64 != 64*b1 {
		t.Errorf("device bytes not linear in batch: %d vs %d", b64, 64*b1)
	}
	if b1 <= 0 {
		t.Error("non-positive device bytes")
	}
}

func TestGPUFasterThanCPUAtScale(t *testing.T) {
	// The paper's central preprocessing finding: DALI beats CPU per
	// image. Compare modeled GPU seconds vs real CPU seconds per image
	// on Plant Village at 224.
	items := testItems(t, datasets.SlugPlantVillage, 4)
	gpu := &GPUEngine{Platform: hw.A100(), Out: 224}
	cpu := &CPUEngine{Platform: hw.A100(), Out: 224}
	rg, err := gpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Seconds >= rc.Seconds {
		t.Errorf("GPU preprocessing (%.5fs) not faster than CPU (%.5fs)", rg.Seconds, rc.Seconds)
	}
}

func TestCPUEngineWorkersProduceIdenticalTensors(t *testing.T) {
	items := testItems(t, datasets.SlugPlantVillage, 6)
	serial := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	parallel := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true, Workers: 4}
	rs, err := serial.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tensors) != len(rp.Tensors) {
		t.Fatalf("tensor counts differ: %d vs %d", len(rs.Tensors), len(rp.Tensors))
	}
	for i := range rs.Tensors {
		for j := range rs.Tensors[i] {
			if rs.Tensors[i][j] != rp.Tensors[i][j] {
				t.Fatalf("tensor %d differs at %d between serial and parallel", i, j)
			}
		}
	}
}

func TestCPUEngineWorkersSpeedUpWallClock(t *testing.T) {
	// Use CRSA-free medium images so per-item work dominates goroutine
	// overhead; compare wall-clock (Seconds scales with it).
	items := testItems(t, datasets.SlugPlantVillage, 8)
	serial := &CPUEngine{Platform: hw.A100(), Out: 224}
	parallel := &CPUEngine{Platform: hw.A100(), Out: 224, Workers: 4}
	if _, err := serial.ProcessBatch(items); err != nil { // warm-up
		t.Fatal(err)
	}
	rs, err := serial.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled || runtime.GOMAXPROCS(0) < 2 {
		// Race instrumentation distorts goroutine timing, and a
		// single-CPU host cannot show a speedup; only require that
		// parallelism is not catastrophically slower.
		if rp.Seconds > rs.Seconds*2 {
			t.Errorf("4 workers (%.4fs) far slower than 1 (%.4fs)", rp.Seconds, rs.Seconds)
		}
		return
	}
	if rp.Seconds >= rs.Seconds {
		t.Errorf("4 workers (%.4fs) not faster than 1 (%.4fs)", rp.Seconds, rs.Seconds)
	}
}

func TestCPUEngineWorkerErrorPropagates(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	items = append(items, Item{Encoded: []byte("corrupt"), Format: imaging.FormatJPEG})
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Workers: 4}
	if _, err := e.ProcessBatch(items); err == nil {
		t.Error("corrupt item in parallel batch accepted")
	}
}

// TestCPUGPUTensorParity pins the regression where the GPU engine used
// an aspect-distorting resize: for non-perspective items both engines
// must produce bit-identical tensors (resize-short-side, center crop,
// ImageNet normalize).
func TestCPUGPUTensorParity(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	cpu := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	gpu := &GPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	rc, err := cpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Tensors) != len(items) || len(rg.Tensors) != len(items) {
		t.Fatalf("tensor counts %d / %d, want %d", len(rc.Tensors), len(rg.Tensors), len(items))
	}
	for i := range rc.Tensors {
		if len(rc.Tensors[i]) != len(rg.Tensors[i]) {
			t.Fatalf("item %d: tensor lengths %d vs %d", i, len(rc.Tensors[i]), len(rg.Tensors[i]))
		}
		for j := range rc.Tensors[i] {
			if rc.Tensors[i][j] != rg.Tensors[i][j] {
				t.Fatalf("item %d: CPU and GPU tensors diverge at %d: %v vs %v",
					i, j, rc.Tensors[i][j], rg.Tensors[i][j])
			}
		}
	}
}
