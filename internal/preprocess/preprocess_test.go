package preprocess

import (
	"runtime"
	"testing"
	"time"

	"harvest/internal/datasets"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/stats"
)

func testItems(t *testing.T, slug string, n int) []Item {
	t.Helper()
	spec, err := datasets.ByName(slug)
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.MustNew(spec, 42)
	items := make([]Item, n)
	for i := range items {
		items[i], err = ItemFromDataset(ds, i)
		if err != nil {
			t.Fatal(err)
		}
	}
	return items
}

func TestCPUEngineMaterializesNormalizedTensors(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	e := &CPUEngine{Platform: hw.A100(), Out: 64, Materialize: true}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 3 {
		t.Fatalf("got %d tensors", len(res.Tensors))
	}
	for _, tensor := range res.Tensors {
		if len(tensor) != 3*64*64 {
			t.Fatalf("tensor length %d, want %d", len(tensor), 3*64*64)
		}
		for _, v := range tensor {
			if v < -3 || v > 3 {
				t.Fatalf("unnormalized value %v", v)
			}
		}
	}
	if res.Seconds <= 0 {
		t.Error("no time reported")
	}
}

func TestCPUEngineNoMaterialize(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 2)
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tensors != nil {
		t.Error("tensors returned without Materialize")
	}
	if e.Name() != "PyTorch" || e.OutRes() != 32 {
		t.Error("engine identity wrong")
	}
}

func TestCPUEngineEmptyBatch(t *testing.T) {
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestCPUEngineScalesToPlatform(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 4)
	fast := &CPUEngine{Platform: hw.A100(), Out: 32}
	slow := &CPUEngine{Platform: hw.Jetson(), Out: 32}
	rf, err := fast.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	// Jetson cores are ~2.2x slower; allow wide tolerance for host
	// timing noise but require a clear ordering.
	if rs.Seconds <= rf.Seconds {
		t.Errorf("Jetson-scaled time %.4f not above cloud time %.4f", rs.Seconds, rf.Seconds)
	}
}

func TestItemFromDatasetCarriesTask(t *testing.T) {
	items := testItems(t, datasets.SlugCRSA, 1)
	if items[0].Task != datasets.TaskPerspective {
		t.Error("CRSA item lost its perspective task")
	}
	if items[0].W != 3840 || items[0].H != 2160 {
		t.Errorf("CRSA item size %dx%d", items[0].W, items[0].H)
	}
}

func TestPerspectiveItemProcessing(t *testing.T) {
	// A moderately sized synthetic frame keeps the test fast while the
	// full-res vs working-res warp cost difference stays measurable.
	im := imaging.Synthesize(960, 540, imaging.KindSoil, stats.NewRNG(1))
	item := Item{Decoded: im, W: im.W, H: im.H, Task: datasets.TaskPerspective}
	py := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true}
	if _, err := py.ProcessBatch([]Item{item}); err != nil { // warm-up
		t.Fatal(err)
	}
	res, err := py.ProcessBatch([]Item{item})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 1 || len(res.Tensors[0]) != 3*32*32 {
		t.Fatal("perspective item produced wrong tensor")
	}
	cv := NewCV2Engine(hw.A100(), 32)
	cv.Materialize = true
	res2, err := cv.ProcessBatch([]Item{item})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Name() != "CV2" {
		t.Errorf("CV2 engine name %q", cv.Name())
	}
	if len(res2.Tensors) != 1 {
		t.Fatal("CV2 produced no tensor")
	}
	// Full-res warp must cost more than working-res warp.
	if res2.Seconds <= res.Seconds {
		t.Errorf("CV2 (%.5fs) not slower than PyTorch (%.5fs) on perspective input",
			res2.Seconds, res.Seconds)
	}
}

func TestDecodeItemErrors(t *testing.T) {
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch([]Item{{}}); err == nil {
		t.Error("pixel-less item accepted")
	}
	if _, err := e.ProcessBatch([]Item{{Encoded: []byte("garbage"), Format: imaging.FormatJPEG}}); err == nil {
		t.Error("corrupt encoding accepted")
	}
}

func TestGPUEngineModeledSeconds(t *testing.T) {
	items := testItems(t, datasets.SlugPlantVillage, 4)
	e32 := &GPUEngine{Platform: hw.A100(), Out: 32}
	e224 := &GPUEngine{Platform: hw.A100(), Out: 224}
	r32, err := e32.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	r224, err := e224.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if r32.Seconds <= 0 || r224.Seconds <= r32.Seconds {
		t.Errorf("DALI 224 (%.5f) not slower than DALI 32 (%.5f)", r224.Seconds, r32.Seconds)
	}
	if r32.Tensors != nil {
		t.Error("GPU engine materialized without request")
	}
	if e224.Name() != "DALI 224" {
		t.Errorf("GPU engine name %q", e224.Name())
	}
}

func TestGPUEngineMaterialize(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 2)
	e := &GPUEngine{Platform: hw.V100(), Out: 48, Materialize: true}
	res, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tensors) != 2 || len(res.Tensors[0]) != 3*48*48 {
		t.Fatal("materialized GPU tensors wrong")
	}
}

func TestGPUEngineRequiresSizes(t *testing.T) {
	e := &GPUEngine{Platform: hw.A100(), Out: 32}
	if _, err := e.ProcessBatch([]Item{{Encoded: []byte("x")}}); err == nil {
		t.Error("item without dimensions accepted")
	}
	if _, err := e.ProcessBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestGPUEngineDeviceBytes(t *testing.T) {
	e := &GPUEngine{Platform: hw.A100(), Out: 224}
	b1 := e.DeviceBytes(256*256, 1)
	b64 := e.DeviceBytes(256*256, 64)
	if b64 != 64*b1 {
		t.Errorf("device bytes not linear in batch: %d vs %d", b64, 64*b1)
	}
	if b1 <= 0 {
		t.Error("non-positive device bytes")
	}
}

func TestGPUFasterThanCPUAtScale(t *testing.T) {
	// The paper's central preprocessing finding: DALI beats CPU per
	// image. Compare modeled GPU seconds vs real CPU seconds per image
	// on Plant Village at 224.
	items := testItems(t, datasets.SlugPlantVillage, 4)
	gpu := &GPUEngine{Platform: hw.A100(), Out: 224}
	cpu := &CPUEngine{Platform: hw.A100(), Out: 224}
	rg, err := gpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Seconds >= rc.Seconds {
		t.Errorf("GPU preprocessing (%.5fs) not faster than CPU (%.5fs)", rg.Seconds, rc.Seconds)
	}
}

func TestCPUEngineWorkersProduceIdenticalTensors(t *testing.T) {
	items := testItems(t, datasets.SlugPlantVillage, 6)
	serial := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	parallel := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true, Workers: 4}
	rs, err := serial.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tensors) != len(rp.Tensors) {
		t.Fatalf("tensor counts differ: %d vs %d", len(rs.Tensors), len(rp.Tensors))
	}
	for i := range rs.Tensors {
		for j := range rs.Tensors[i] {
			if rs.Tensors[i][j] != rp.Tensors[i][j] {
				t.Fatalf("tensor %d differs at %d between serial and parallel", i, j)
			}
		}
	}
}

func TestCPUEngineWorkersSpeedUpWallClock(t *testing.T) {
	// Use CRSA-free medium images so per-item work dominates scheduling
	// overhead; workers shrink WallSeconds (what the caller waits),
	// never the platform-modeled Seconds.
	items := testItems(t, datasets.SlugPlantVillage, 8)
	serial := &CPUEngine{Platform: hw.A100(), Out: 224}
	parallel := &CPUEngine{Platform: hw.A100(), Out: 224, Workers: 4}
	defer parallel.Close()
	if _, err := serial.ProcessBatch(items); err != nil { // warm-up
		t.Fatal(err)
	}
	rs, err := serial.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if rs.WallSeconds <= 0 || rp.WallSeconds <= 0 {
		t.Fatal("wall-clock not reported")
	}
	if raceEnabled || runtime.GOMAXPROCS(0) < 2 {
		// Race instrumentation distorts goroutine timing, and a
		// single-CPU host cannot show a speedup; only require that
		// parallelism is not catastrophically slower.
		if rp.WallSeconds > rs.WallSeconds*2 {
			t.Errorf("4 workers (%.4fs) far slower than 1 (%.4fs)", rp.WallSeconds, rs.WallSeconds)
		}
		return
	}
	if rp.WallSeconds >= rs.WallSeconds {
		t.Errorf("4 workers (%.4fs wall) not faster than 1 (%.4fs wall)", rp.WallSeconds, rs.WallSeconds)
	}
}

// TestCPUEngineWorkersDoNotDeflateModeledSeconds pins the Seconds
// semantics fix: the platform-modeled time is the sum of per-item CPU
// work, so running the same batch with 4 workers must not report ~1/4
// the modeled platform time the single-worker run reports. (The old
// code scaled the parallel wall-clock through the single-thread core
// model, silently deflating modeled platform cost by the worker count.)
func TestCPUEngineWorkersDoNotDeflateModeledSeconds(t *testing.T) {
	items := testItems(t, datasets.SlugPlantVillage, 8)
	serial := &CPUEngine{Platform: hw.A100(), Out: 224}
	parallel := &CPUEngine{Platform: hw.A100(), Out: 224, Workers: 4}
	defer parallel.Close()
	if _, err := serial.ProcessBatch(items); err != nil { // warm-up
		t.Fatal(err)
	}
	rs, err := serial.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate CPU work is worker-count independent up to host timing
	// noise; a 4x deflation would put the parallel figure near 0.25x.
	if rp.Seconds < rs.Seconds*0.5 {
		t.Errorf("4-worker modeled Seconds %.4f deflated vs single-worker %.4f",
			rp.Seconds, rs.Seconds)
	}
}

func TestCPUEngineWorkerErrorPropagates(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	items = append(items, Item{Encoded: []byte("corrupt"), Format: imaging.FormatJPEG})
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Workers: 4}
	defer e.Close()
	if _, err := e.ProcessBatch(items); err == nil {
		t.Error("corrupt item in parallel batch accepted")
	}
}

// TestCPUEngineWorkerErrorDeterministic pins both halves of the
// cancellation fix: with several failing items scattered through a
// batch, the parallel path must always report the lowest-index failure
// (not whichever worker lost the race), and it must match the serial
// path's error.
func TestCPUEngineWorkerErrorDeterministic(t *testing.T) {
	good := testItems(t, datasets.SlugFruits360, 2)
	bad := Item{Encoded: []byte("corrupt"), Format: imaging.FormatJPEG}
	// Failures at 1, 4, 5 among 6 items; index 1 must always win.
	items := []Item{good[0], bad, good[1], good[0], bad, bad}
	serial := &CPUEngine{Platform: hw.A100(), Out: 32}
	_, wantErr := serial.ProcessBatch(items)
	if wantErr == nil {
		t.Fatal("serial run accepted corrupt batch")
	}
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Workers: 4}
	defer e.Close()
	for trial := 0; trial < 10; trial++ {
		_, err := e.ProcessBatch(items)
		if err == nil {
			t.Fatal("parallel run accepted corrupt batch")
		}
		if err.Error() != wantErr.Error() {
			t.Fatalf("trial %d: parallel error %q, serial error %q", trial, err, wantErr)
		}
	}
}

// TestCPUEngineWorkerErrorCancelsBatch checks that the first error
// actually stops the remaining items instead of letting siblings run
// the batch to completion: with the failure at index 0 of a large
// batch, most trailing items should be skipped, so the parallel run
// must complete far faster than full processing would.
func TestCPUEngineWorkerErrorCancelsBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive; race instrumentation distorts it")
	}
	good := testItems(t, datasets.SlugPlantVillage, 1)[0]
	items := make([]Item, 64)
	items[0] = Item{Encoded: []byte("corrupt"), Format: imaging.FormatJPEG}
	for i := 1; i < len(items); i++ {
		items[i] = good
	}
	full := &CPUEngine{Platform: hw.A100(), Out: 224, Workers: 2}
	defer full.Close()
	allGood := make([]Item, len(items))
	for i := range allGood {
		allGood[i] = good
	}
	rFull, err := full.ProcessBatch(allGood)
	if err != nil {
		t.Fatal(err)
	}
	// The cancelled run skips nearly all real work; require a large
	// margin so scheduler noise cannot flake the assertion.
	start := time.Now()
	if _, err := full.ProcessBatch(items); err == nil {
		t.Fatal("corrupt batch accepted")
	}
	cancelled := time.Since(start).Seconds()
	if cancelled > rFull.WallSeconds*0.5 {
		t.Errorf("cancelled batch took %.4fs, full batch %.4fs — cancellation not effective",
			cancelled, rFull.WallSeconds)
	}
}

// TestProcessEachStreams checks the streaming contract: every index is
// delivered exactly once with a correctly shaped tensor, with no batch
// barrier required of the caller.
func TestProcessEachStreams(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 5)
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true, Workers: 3}
	defer e.Close()
	seen := make([]int, len(items))
	res, err := e.ProcessEach(items, func(i int, tensor []float32) {
		seen[i]++
		if len(tensor) != 3*32*32 {
			t.Errorf("item %d: tensor length %d", i, len(tensor))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tensors != nil {
		t.Error("ProcessEach returned batch tensors")
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("item %d delivered %d times", i, n)
		}
	}
}

// TestSharedPoolAcrossEngines runs two engines over one shared Pool —
// the serving-layer configuration, where total preprocessing CPU is
// bounded globally rather than per model.
func TestSharedPoolAcrossEngines(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	items := testItems(t, datasets.SlugFruits360, 4)
	a := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true, Workers: 3, Pool: pool}
	b := &CPUEngine{Platform: hw.Jetson(), Out: 48, Materialize: true, Workers: 3, Pool: pool}
	ra, err := a.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Tensors) != 4 || len(rb.Tensors) != 4 {
		t.Fatal("shared-pool batches incomplete")
	}
	if len(ra.Tensors[0]) != 3*32*32 || len(rb.Tensors[0]) != 3*48*48 {
		t.Error("engines over a shared pool produced wrong shapes")
	}
	if pool.Workers() != 3 {
		t.Errorf("pool workers %d", pool.Workers())
	}
}

// TestPoolCloseIdempotent pins the Close contract.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	e := &CPUEngine{Platform: hw.A100(), Out: 32}
	e.Close() // engine that never started a pool
	e.Close()
}

// TestTensorRecycling exercises the caller-recycled tensor path: with
// a Tensors pool attached and tensors handed back between batches, the
// output buffers are reused.
func TestTensorRecycling(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true,
		Tensors: &imaging.TensorPool{}}
	r1, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), r1.Tensors[0]...)
	e.Recycle(r1.Tensors)
	r2, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if r2.Tensors[0][i] != v {
			t.Fatalf("recycled batch diverges at %d", i)
		}
	}
	e.Recycle(r2.Tensors)
}

// TestCPUGPUTensorParity pins two regressions: the GPU engine once
// used an aspect-distorting resize, and later ignored the perspective
// rectification for TaskPerspective (ground-camera) items entirely —
// so a deployment moving the CRSA feed from the CPU engine to DALI
// silently changed every tensor. Both engines must now produce
// bit-identical tensors for plain and perspective items alike.
func TestCPUGPUTensorParity(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 3)
	ground := imaging.Synthesize(400, 300, imaging.KindSoil, stats.NewRNG(7))
	items = append(items, Item{Decoded: ground, W: ground.W, H: ground.H,
		Task: datasets.TaskPerspective})
	cpu := &CPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	gpu := &GPUEngine{Platform: hw.A100(), Out: 48, Materialize: true}
	rc, err := cpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gpu.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Tensors) != len(items) || len(rg.Tensors) != len(items) {
		t.Fatalf("tensor counts %d / %d, want %d", len(rc.Tensors), len(rg.Tensors), len(items))
	}
	for i := range rc.Tensors {
		if len(rc.Tensors[i]) != len(rg.Tensors[i]) {
			t.Fatalf("item %d: tensor lengths %d vs %d", i, len(rc.Tensors[i]), len(rg.Tensors[i]))
		}
		for j := range rc.Tensors[i] {
			if rc.Tensors[i][j] != rg.Tensors[i][j] {
				t.Fatalf("item %d: CPU and GPU tensors diverge at %d: %v vs %v",
					i, j, rc.Tensors[i][j], rg.Tensors[i][j])
			}
		}
	}
}
