//go:build !race

package preprocess

// raceEnabled reports whether the race detector is active; timing
// assertions relax under it because instrumentation distorts relative
// goroutine costs.
const raceEnabled = false
