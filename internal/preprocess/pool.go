package preprocess

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/imaging"
)

// Pool is a persistent preprocessing worker pool: long-lived workers
// fed over a channel, each owning pinned scratch buffers (decode
// raster, warp raster, fused-kernel sample maps) that are reused
// across every item the worker ever processes. This replaces the
// throwaway per-batch goroutines the CPU engine used to spawn — under
// serving load, batch arrival rate times goroutine+allocation setup
// cost was pure overhead on the paper's CPU-bound path (§4.2).
//
// Results stream to the submitter as items complete; there is no
// batch barrier inside the pool, so a caller consuming results can
// overlap downstream work with the remaining items.
type Pool struct {
	jobs      chan job
	workers   int
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// job is one item dispatched to a worker.
type job struct {
	eng  *CPUEngine
	item Item
	idx  int
	// out receives the item's result; it must have capacity for the
	// whole batch so workers never block on delivery.
	out chan<- itemResult
	// cancelFrom holds the lowest item index known to have failed
	// (math.MaxInt64 while none has): workers skip jobs above it, so
	// the first error stops the rest of the batch while any item that
	// could still become the lowest-index failure runs to completion —
	// which is what makes the batch's returned error deterministic.
	cancelFrom *atomic.Int64
}

// itemResult is one item's streamed outcome.
type itemResult struct {
	idx    int
	tensor []float32
	// cpuSec is the host CPU time this item took (decode + transform),
	// measured on the worker.
	cpuSec float64
	err    error
	// skipped marks items abandoned after another item's error
	// cancelled the batch.
	skipped bool
}

// scratch is a worker's pinned buffer set.
type scratch struct {
	kernel imaging.FusedKernel
	decode *imaging.Image
	warp   *imaging.Image
	// ppm is the reused header for zero-copy raw-frame decodes; its
	// Pix aliases the item's encoded bytes, never an owned buffer.
	ppm imaging.Image
}

// NewPool starts a pool of n persistent workers (n < 1 means
// GOMAXPROCS). Close releases them; a Pool must not be used after
// Close.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan job, 4*n), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after in-flight jobs finish. Safe to call
// more than once; submitting after Close panics.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

// worker is the long-lived loop: one pinned scratch set for the
// worker's whole lifetime.
func (p *Pool) worker() {
	defer p.wg.Done()
	var s scratch
	for j := range p.jobs {
		if j.cancelFrom != nil && int64(j.idx) > j.cancelFrom.Load() {
			j.out <- itemResult{idx: j.idx, skipped: true}
			continue
		}
		start := time.Now()
		tensor, err := j.eng.processInto(j.item, &s)
		j.out <- itemResult{
			idx: j.idx, tensor: tensor,
			cpuSec: time.Since(start).Seconds(), err: err,
		}
	}
}

// process runs one batch through the pool, streaming each completed
// item to deliver in completion order. It returns once every item has
// completed, errored, or been skipped by cancellation.
func (p *Pool) process(e *CPUEngine, items []Item, cancelFrom *atomic.Int64, deliver func(itemResult)) {
	out := make(chan itemResult, len(items))
	go func() {
		for i, it := range items {
			p.jobs <- job{eng: e, item: it, idx: i, out: out, cancelFrom: cancelFrom}
		}
	}()
	for range items {
		deliver(<-out)
	}
}
