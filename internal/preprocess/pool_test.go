package preprocess

import (
	"sync"
	"testing"

	"harvest/internal/datasets"
	"harvest/internal/hw"
)

// TestConcurrentProcessBatchOnSharedPool hammers one shared worker
// pool — and one shared engine — from many concurrent ProcessBatch
// callers, the shape the serving layer produces when several requests
// hit the preprocess stage at once. Run under -race (the Makefile race
// gate includes this package) it pins that per-worker pinned scratch,
// the lazily started owned pool, and the streaming result path are
// data-race free, and that results never cross between interleaved
// batches.
func TestConcurrentProcessBatchOnSharedPool(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	items := testItems(t, datasets.SlugFruits360, 4)
	shared := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true,
		Workers: 4, Pool: pool}
	want, err := (&CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true}).ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				res, err := shared.ProcessBatch(items)
				if err != nil {
					errs[c] = err
					return
				}
				for i := range res.Tensors {
					for j, v := range res.Tensors[i] {
						if v != want.Tensors[i][j] {
							t.Errorf("caller %d iter %d: tensor %d diverges at %d", c, iter, i, j)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", c, err)
		}
	}
}

// TestConcurrentSingleThreadedCallers covers the workers==1 path under
// concurrency: the scratch sync.Pool must hand each caller its own
// buffers.
func TestConcurrentSingleThreadedCallers(t *testing.T) {
	items := testItems(t, datasets.SlugFruits360, 2)
	e := &CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true}
	want, err := e.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.ProcessBatch(items)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range res.Tensors {
				for j, v := range res.Tensors[i] {
					if v != want.Tensors[i][j] {
						t.Errorf("tensor %d diverges at %d", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
