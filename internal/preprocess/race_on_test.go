//go:build race

package preprocess

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
